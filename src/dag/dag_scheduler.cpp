#include "dag/dag_scheduler.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace rupam {

DagScheduler::DagScheduler(Simulator& sim, SubmitFn submit)
    : sim_(sim), submit_(std::move(submit)) {
  if (!submit_) throw std::invalid_argument("DagScheduler: null submit function");
}

void DagScheduler::run(const Application& app, DoneFn on_done) {
  if (!finished_) throw std::logic_error("DagScheduler: application already running");
  app_ = &app;
  on_done_ = std::move(on_done);
  current_job_index_ = -1;
  finished_ = false;
  start_next_job();
}

void DagScheduler::start_next_job() {
  ++current_job_index_;
  progress_.clear();
  outputs_.clear();  // shuffle outputs are per-job; nothing outlives it
  if (static_cast<std::size_t>(current_job_index_) >= app_->jobs.size()) {
    finished_ = true;
    RUPAM_INFO(sim_.now(), "application '", app_->name, "' finished");
    if (on_done_) on_done_();
    return;
  }
  const Job& job = app_->jobs[static_cast<std::size_t>(current_job_index_)];
  RUPAM_INFO(sim_.now(), "starting job ", job.id, " (", job.name, ") with ", job.stages.size(),
             " stages");
  for (const auto& stage : job.stages) {
    StageProgress p;
    p.stage = &stage;
    for (const auto& t : stage.tasks.tasks) p.remaining_partitions.insert(t.partition);
    if (p.remaining_partitions.empty()) p.complete = true;  // degenerate empty stage
    progress_.emplace(stage.id, std::move(p));
  }
  submit_ready_stages();
}

void DagScheduler::submit_ready_stages() {
  bool all_complete = true;
  for (auto& [id, p] : progress_) {
    if (p.complete) continue;
    all_complete = false;
    if (p.submitted) continue;
    bool ready = true;
    for (StageId parent : p.stage->parents) {
      auto it = progress_.find(parent);
      if (it != progress_.end() && !it->second.complete) {
        ready = false;
        break;
      }
    }
    if (ready) {
      p.submitted = true;
      RUPAM_INFO(sim_.now(), "submitting stage ", id, " (", p.stage->name, ", ",
                 p.stage->num_tasks(), " tasks)");
      submit_(p.stage->tasks);
    }
  }
  if (all_complete) start_next_job();
}

void DagScheduler::on_partition_success(StageId stage, int partition, NodeId node) {
  auto it = progress_.find(stage);
  if (it == progress_.end()) return;  // stale report from a previous job
  StageProgress& p = it->second;
  if (p.stage->is_shuffle_map && node != kInvalidNode) {
    outputs_.record(stage, partition, node);
  }
  p.remaining_partitions.erase(partition);
  if (!p.complete && p.remaining_partitions.empty()) {
    p.complete = true;
    RUPAM_INFO(sim_.now(), "stage ", stage, " (", p.stage->name, ") complete");
    submit_ready_stages();
  }
}

bool DagScheduler::needed_by_incomplete_child(StageId stage) const {
  for (const auto& [id, p] : progress_) {
    if (p.complete) continue;
    for (StageId parent : p.stage->parents) {
      if (parent == stage) return true;
    }
  }
  return false;
}

std::size_t DagScheduler::on_node_lost(NodeId node) {
  if (finished_) return 0;
  auto lost = outputs_.invalidate_node(node);
  std::size_t resubmitted = 0;
  for (const auto& [stage_id, partitions] : lost) {
    auto it = progress_.find(stage_id);
    if (it == progress_.end()) continue;
    StageProgress& p = it->second;
    // Outputs nobody will read again are dead weight — Spark only
    // recomputes on a FetchFailed, i.e. when a consumer still wants them.
    if (!needed_by_incomplete_child(stage_id)) continue;
    TaskSet partial = p.stage->tasks;
    partial.tasks.clear();
    for (const auto& spec : p.stage->tasks.tasks) {
      for (int lost_part : partitions) {
        if (spec.partition == lost_part) {
          partial.tasks.push_back(spec);
          break;
        }
      }
    }
    if (partial.tasks.empty()) continue;
    for (const auto& spec : partial.tasks) {
      p.remaining_partitions.insert(spec.partition);
      ++recompute_counts_[{stage_id, spec.partition}];
    }
    p.complete = false;
    resubmitted += partial.tasks.size();
    recomputed_partitions_ += partial.tasks.size();
    RUPAM_WARN(sim_.now(), "node ", node, " lost ", partial.tasks.size(),
               " map output(s) of stage ", stage_id, " (", p.stage->name,
               ") — resubmitting");
    (resubmit_ ? resubmit_ : submit_)(partial);
  }
  return resubmitted;
}

}  // namespace rupam
