#include "dag/dag_scheduler.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace rupam {

DagScheduler::DagScheduler(Simulator& sim, SubmitFn submit)
    : sim_(sim), submit_(std::move(submit)) {
  if (!submit_) throw std::invalid_argument("DagScheduler: null submit function");
}

void DagScheduler::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    jobs_counter_ = apps_counter_ = nullptr;
    stages_submitted_counter_ = stages_completed_counter_ = resubmitted_counter_ = nullptr;
    return;
  }
  jobs_counter_ = &metrics->counter("rupam_sim_jobs_completed_total", {}, "Jobs completed");
  apps_counter_ =
      &metrics->counter("rupam_sim_apps_completed_total", {}, "Applications completed");
  stages_submitted_counter_ =
      &metrics->counter("rupam_sim_stages_submitted_total", {}, "Stages submitted");
  stages_completed_counter_ =
      &metrics->counter("rupam_sim_stages_completed_total", {}, "Stages completed");
  resubmitted_counter_ =
      &metrics->counter("rupam_sim_partitions_resubmitted_total", {},
                        "Partitions recomputed after losing their map output");
}

void DagScheduler::run(const Application& app, DoneFn on_done) {
  if (!apps_.empty()) throw std::logic_error("DagScheduler: application already running");
  submit_app(app, std::move(on_done));
}

void DagScheduler::submit_app(const Application& app, DoneFn on_done) {
  // Concurrent applications must live in disjoint stage-id spaces: StageId
  // keys the task scheduler's active-stage map and partition-success
  // routing (see offset_ids).
  for (const auto& other : apps_) {
    std::set<StageId> taken;
    for (const auto& job : other->app->jobs) {
      for (const auto& stage : job.stages) taken.insert(stage.id);
    }
    for (const auto& job : app.jobs) {
      for (const auto& stage : job.stages) {
        if (taken.count(stage.id) > 0) {
          throw std::invalid_argument(
              "DagScheduler: stage id collision between concurrent applications");
        }
      }
    }
  }
  apps_.push_back(std::make_unique<AppRun>());
  AppRun& run = *apps_.back();
  run.app = &app;
  run.on_done = std::move(on_done);
  run.next_job = 0;
  start_next_job(run);
}

void DagScheduler::start_next_job(AppRun& run) {
  if (run.next_job >= run.app->jobs.size()) {
    // Application finished: detach it before firing the completion
    // callback so finished()/active_jobs() are consistent inside it.
    RUPAM_INFO(sim_.now(), "application '", run.app->name, "' finished");
    DoneFn done = std::move(run.on_done);
    for (auto it = apps_.begin(); it != apps_.end(); ++it) {
      if (it->get() == &run) {
        apps_.erase(it);
        break;
      }
    }
    ++apps_completed_;
    if (apps_counter_ != nullptr) apps_counter_->inc();
    if (done) done();
    return;
  }
  const Job& job = run.app->jobs[run.next_job++];
  run.job = &job;
  run.job_submitted = sim_.now();
  run.progress.clear();
  RUPAM_INFO(sim_.now(), "starting job ", job.id, " (", job.name, ") with ", job.stages.size(),
             " stages");
  for (const auto& stage : job.stages) {
    StageProgress p;
    p.stage = &stage;
    for (const auto& t : stage.tasks.tasks) p.remaining_partitions.insert(t.partition);
    if (p.remaining_partitions.empty()) p.complete = true;  // degenerate empty stage
    run.progress.emplace(stage.id, std::move(p));
    stage_index_[stage.id] = &run;
  }
  submit_ready_stages(run);
}

void DagScheduler::submit_ready_stages(AppRun& run) {
  bool all_complete = true;
  for (auto& [id, p] : run.progress) {
    if (p.complete) continue;
    all_complete = false;
    if (p.submitted) continue;
    bool ready = true;
    for (StageId parent : p.stage->parents) {
      auto it = run.progress.find(parent);
      if (it != run.progress.end() && !it->second.complete) {
        ready = false;
        break;
      }
    }
    if (ready) {
      p.submitted = true;
      if (stages_submitted_counter_ != nullptr) stages_submitted_counter_->inc();
      RUPAM_INFO(sim_.now(), "submitting stage ", id, " (", p.stage->name, ", ",
                 p.stage->num_tasks(), " tasks)");
      submit_(p.stage->tasks);
    }
  }
  if (all_complete) finish_job(run);
}

void DagScheduler::finish_job(AppRun& run) {
  const Job& job = *run.job;
  // Shuffle outputs are per-job; nothing fetches them once it is done.
  for (const auto& stage : job.stages) {
    outputs_.forget(job.id, stage.id);
    stage_index_.erase(stage.id);
  }
  ++jobs_completed_;
  if (jobs_counter_ != nullptr) jobs_counter_->inc();
  if (job_observer_) {
    JobStats stats;
    stats.job = job.id;
    stats.name = job.name;
    stats.app = run.app->name;
    stats.pool = run.app->pool;
    stats.submitted = run.job_submitted;
    stats.finished = sim_.now();
    job_observer_(stats);
  }
  start_next_job(run);  // may finish the application and free `run`
}

void DagScheduler::on_partition_success(StageId stage, int partition, NodeId node) {
  auto owner = stage_index_.find(stage);
  if (owner == stage_index_.end()) return;  // stale report from a finished job
  AppRun& run = *owner->second;
  auto it = run.progress.find(stage);
  if (it == run.progress.end()) return;
  StageProgress& p = it->second;
  if (p.stage->is_shuffle_map && node != kInvalidNode) {
    outputs_.record(run.job->id, stage, partition, node);
  }
  p.remaining_partitions.erase(partition);
  if (!p.complete && p.remaining_partitions.empty()) {
    p.complete = true;
    if (stages_completed_counter_ != nullptr) stages_completed_counter_->inc();
    RUPAM_INFO(sim_.now(), "stage ", stage, " (", p.stage->name, ") complete");
    submit_ready_stages(run);  // may finish the job/application; last use of `run`
  }
}

bool DagScheduler::needed_by_incomplete_child(const AppRun& run, StageId stage) const {
  for (const auto& [id, p] : run.progress) {
    if (p.complete) continue;
    for (StageId parent : p.stage->parents) {
      if (parent == stage) return true;
    }
  }
  return false;
}

std::size_t DagScheduler::on_node_lost(NodeId node) {
  if (apps_.empty()) return 0;
  auto lost = outputs_.invalidate_node(node);
  std::size_t resubmitted = 0;
  for (const auto& [key, partitions] : lost) {
    StageId stage_id = key.second;
    auto owner = stage_index_.find(stage_id);
    if (owner == stage_index_.end()) continue;
    AppRun& run = *owner->second;
    auto it = run.progress.find(stage_id);
    if (it == run.progress.end()) continue;
    StageProgress& p = it->second;
    // Outputs nobody will read again are dead weight — Spark only
    // recomputes on a FetchFailed, i.e. when a consumer still wants them.
    if (!needed_by_incomplete_child(run, stage_id)) continue;
    TaskSet partial = p.stage->tasks;
    partial.tasks.clear();
    for (const auto& spec : p.stage->tasks.tasks) {
      for (int lost_part : partitions) {
        if (spec.partition == lost_part) {
          partial.tasks.push_back(spec);
          break;
        }
      }
    }
    if (partial.tasks.empty()) continue;
    for (const auto& spec : partial.tasks) {
      p.remaining_partitions.insert(spec.partition);
      ++recompute_counts_[{stage_id, spec.partition}];
    }
    p.complete = false;
    resubmitted += partial.tasks.size();
    recomputed_partitions_ += partial.tasks.size();
    if (resubmitted_counter_ != nullptr) {
      resubmitted_counter_->inc(static_cast<double>(partial.tasks.size()));
    }
    RUPAM_WARN(sim_.now(), "node ", node, " lost ", partial.tasks.size(),
               " map output(s) of stage ", stage_id, " (", p.stage->name,
               ") — resubmitting");
    (resubmit_ ? resubmit_ : submit_)(partial);
  }
  return resubmitted;
}

std::size_t DagScheduler::active_jobs() const { return apps_.size(); }

std::vector<JobId> DagScheduler::active_job_ids() const {
  std::vector<JobId> out;
  out.reserve(apps_.size());
  for (const auto& run : apps_) {
    if (run->job != nullptr) out.push_back(run->job->id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rupam
