#include "dag/dag_scheduler.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace rupam {

DagScheduler::DagScheduler(Simulator& sim, SubmitFn submit)
    : sim_(sim), submit_(std::move(submit)) {
  if (!submit_) throw std::invalid_argument("DagScheduler: null submit function");
}

void DagScheduler::run(const Application& app, DoneFn on_done) {
  if (!finished_) throw std::logic_error("DagScheduler: application already running");
  app_ = &app;
  on_done_ = std::move(on_done);
  current_job_index_ = -1;
  finished_ = false;
  start_next_job();
}

void DagScheduler::start_next_job() {
  ++current_job_index_;
  progress_.clear();
  if (static_cast<std::size_t>(current_job_index_) >= app_->jobs.size()) {
    finished_ = true;
    RUPAM_INFO(sim_.now(), "application '", app_->name, "' finished");
    if (on_done_) on_done_();
    return;
  }
  const Job& job = app_->jobs[static_cast<std::size_t>(current_job_index_)];
  RUPAM_INFO(sim_.now(), "starting job ", job.id, " (", job.name, ") with ", job.stages.size(),
             " stages");
  for (const auto& stage : job.stages) {
    StageProgress p;
    p.stage = &stage;
    for (const auto& t : stage.tasks.tasks) p.remaining_partitions.insert(t.partition);
    if (p.remaining_partitions.empty()) p.complete = true;  // degenerate empty stage
    progress_.emplace(stage.id, std::move(p));
  }
  submit_ready_stages();
}

void DagScheduler::submit_ready_stages() {
  bool all_complete = true;
  for (auto& [id, p] : progress_) {
    if (p.complete) continue;
    all_complete = false;
    if (p.submitted) continue;
    bool ready = true;
    for (StageId parent : p.stage->parents) {
      auto it = progress_.find(parent);
      if (it != progress_.end() && !it->second.complete) {
        ready = false;
        break;
      }
    }
    if (ready) {
      p.submitted = true;
      RUPAM_INFO(sim_.now(), "submitting stage ", id, " (", p.stage->name, ", ",
                 p.stage->num_tasks(), " tasks)");
      submit_(p.stage->tasks);
    }
  }
  if (all_complete) start_next_job();
}

void DagScheduler::on_partition_success(StageId stage, int partition) {
  auto it = progress_.find(stage);
  if (it == progress_.end()) return;  // stale report from a previous job
  StageProgress& p = it->second;
  p.remaining_partitions.erase(partition);
  if (!p.complete && p.remaining_partitions.empty()) {
    p.complete = true;
    RUPAM_INFO(sim_.now(), "stage ", stage, " (", p.stage->name, ") complete");
    submit_ready_stages();
  }
}

}  // namespace rupam
