// DAGScheduler: walks an application's jobs sequentially (one action at a
// time, like a driver program); within a job, submits every stage whose
// parents have completed — independent stages run concurrently, which is
// what lets RUPAM overlap tasks with different resource demands
// (paper §III-C2).
//
// Recovery: completed shuffle-map partitions register their output
// location in a MapOutputTracker. When a node crashes, every map output it
// held is invalidated and — if a child stage still needs them — the parent
// stage's lost partitions are resubmitted for recomputation (Spark's
// FetchFailed → parent-stage retry path, applied eagerly on node loss).
#pragma once

#include <functional>
#include <map>
#include <set>

#include "dag/job.hpp"
#include "dag/map_output_tracker.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

class DagScheduler {
 public:
  using SubmitFn = std::function<void(const TaskSet&)>;
  using DoneFn = std::function<void()>;

  DagScheduler(Simulator& sim, SubmitFn submit);

  /// Optional separate path for lost-partition recomputation (wired to
  /// SchedulerBase::resubmit, which revives tasks inside a still-active
  /// stage). Falls back to the submit function when unset.
  void set_resubmit(SubmitFn resubmit) { resubmit_ = std::move(resubmit); }

  /// Start executing `app`; `on_done` fires when the last job completes.
  void run(const Application& app, DoneFn on_done);

  /// The task scheduler reports each partition's first successful attempt;
  /// `node` (when valid) registers a shuffle-map output location.
  void on_partition_success(StageId stage, int partition, NodeId node = kInvalidNode);

  /// Node crash: invalidate its map outputs and resubmit the lost
  /// partitions of any stage a still-incomplete child depends on. Returns
  /// the number of partitions resubmitted.
  std::size_t on_node_lost(NodeId node);

  bool finished() const { return finished_; }
  JobId current_job() const { return current_job_index_ >= 0 ? current_job_index_ : -1; }

  const MapOutputTracker& map_outputs() const { return outputs_; }
  /// Total partitions resubmitted due to lost map outputs.
  std::size_t recomputed_partitions() const { return recomputed_partitions_; }
  /// Per-(stage, partition) recompute counts — the chaos suite checks
  /// completions == 1 + recomputes for every partition.
  const std::map<std::pair<StageId, int>, int>& recompute_counts() const {
    return recompute_counts_;
  }

 private:
  void start_next_job();
  void submit_ready_stages();
  bool needed_by_incomplete_child(StageId stage) const;

  Simulator& sim_;
  SubmitFn submit_;
  SubmitFn resubmit_;
  DoneFn on_done_;
  const Application* app_ = nullptr;
  int current_job_index_ = -1;
  bool finished_ = true;

  struct StageProgress {
    const Stage* stage = nullptr;
    std::set<int> remaining_partitions;
    bool submitted = false;
    bool complete = false;
  };
  std::map<StageId, StageProgress> progress_;  // stages of the current job
  MapOutputTracker outputs_;
  std::size_t recomputed_partitions_ = 0;
  std::map<std::pair<StageId, int>, int> recompute_counts_;
};

}  // namespace rupam
