// DAGScheduler: walks an application's jobs sequentially (one action at a
// time, like a driver program); within a job, submits every stage whose
// parents have completed — independent stages run concurrently, which is
// what lets RUPAM overlap tasks with different resource demands
// (paper §III-C2).
#pragma once

#include <functional>
#include <map>
#include <set>

#include "dag/job.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

class DagScheduler {
 public:
  using SubmitFn = std::function<void(const TaskSet&)>;
  using DoneFn = std::function<void()>;

  DagScheduler(Simulator& sim, SubmitFn submit);

  /// Start executing `app`; `on_done` fires when the last job completes.
  void run(const Application& app, DoneFn on_done);

  /// The task scheduler reports each partition's first successful attempt.
  void on_partition_success(StageId stage, int partition);

  bool finished() const { return finished_; }
  JobId current_job() const { return current_job_index_ >= 0 ? current_job_index_ : -1; }

 private:
  void start_next_job();
  void submit_ready_stages();

  Simulator& sim_;
  SubmitFn submit_;
  DoneFn on_done_;
  const Application* app_ = nullptr;
  int current_job_index_ = -1;
  bool finished_ = true;

  struct StageProgress {
    const Stage* stage = nullptr;
    std::set<int> remaining_partitions;
    bool submitted = false;
    bool complete = false;
  };
  std::map<StageId, StageProgress> progress_;  // stages of the current job
};

}  // namespace rupam
