// DAGScheduler: tracks the stage DAGs of every application in flight.
//
// Within one application, jobs run strictly sequentially (a driver program
// blocks on each action), but any number of applications can be submitted
// concurrently via submit_app() — the multi-tenant regime. Each in-flight
// job keeps its own stage-progress map and shuffle-recovery state; all jobs
// share one MapOutputTracker keyed by (job, stage). Within a job, every
// stage whose parents have completed is submitted — independent stages run
// concurrently, which is what lets RUPAM overlap tasks with different
// resource demands (paper §III-C2).
//
// Recovery: completed shuffle-map partitions register their output
// location in the MapOutputTracker. When a node crashes, every map output
// it held is invalidated and — if a child stage still needs them — the
// parent stage's lost partitions are resubmitted for recomputation, for
// whichever concurrent jobs depended on that node (Spark's FetchFailed →
// parent-stage retry path, applied eagerly on node loss).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "dag/job.hpp"
#include "dag/map_output_tracker.hpp"
#include "obs/metrics_registry.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

class DagScheduler {
 public:
  using SubmitFn = std::function<void(const TaskSet&)>;
  using DoneFn = std::function<void()>;

  /// Lifecycle record of one finished job (feeds JCT accounting).
  struct JobStats {
    JobId job = -1;
    std::string name;
    std::string app;
    std::string pool;
    SimTime submitted = 0.0;  // when the driver issued the action
    SimTime finished = 0.0;
  };
  using JobObserverFn = std::function<void(const JobStats&)>;

  DagScheduler(Simulator& sim, SubmitFn submit);

  /// Optional separate path for lost-partition recomputation (wired to
  /// SchedulerBase::resubmit, which revives tasks inside a still-active
  /// stage). Falls back to the submit function when unset.
  void set_resubmit(SubmitFn resubmit) { resubmit_ = std::move(resubmit); }

  /// Fires once per completed job with its lifecycle record.
  void set_job_observer(JobObserverFn fn) { job_observer_ = std::move(fn); }

  /// Optional metrics registry (not owned): job/stage lifecycle counters
  /// and shuffle-recovery resubmissions.
  void set_metrics(MetricsRegistry* metrics);

  /// Single-application entry point: start executing `app`; `on_done`
  /// fires when its last job completes. Throws if anything is already
  /// running — use submit_app for concurrent applications.
  void run(const Application& app, DoneFn on_done);

  /// Multi-tenant entry point: start `app` now, alongside whatever else is
  /// in flight. Its jobs still run sequentially relative to each other.
  /// The application's stage/task ids must be disjoint from every active
  /// application's (see offset_ids); collisions throw.
  void submit_app(const Application& app, DoneFn on_done = nullptr);

  /// The task scheduler reports each partition's first successful attempt;
  /// `node` (when valid) registers a shuffle-map output location.
  void on_partition_success(StageId stage, int partition, NodeId node = kInvalidNode);

  /// Node crash: invalidate its map outputs and resubmit the lost
  /// partitions of any stage a still-incomplete child depends on — across
  /// every job in flight. Returns the number of partitions resubmitted.
  std::size_t on_node_lost(NodeId node);

  /// No application in flight.
  bool finished() const { return apps_.empty(); }
  /// Jobs currently executing (one per in-flight application).
  std::size_t active_jobs() const;
  /// Ids of the jobs currently executing, ascending.
  std::vector<JobId> active_job_ids() const;
  /// Jobs completed since construction, across all applications.
  std::size_t jobs_completed() const { return jobs_completed_; }
  /// Applications completed since construction.
  std::size_t apps_completed() const { return apps_completed_; }

  const MapOutputTracker& map_outputs() const { return outputs_; }
  /// Total partitions resubmitted due to lost map outputs.
  std::size_t recomputed_partitions() const { return recomputed_partitions_; }
  /// Per-(stage, partition) recompute counts — the chaos suite checks
  /// completions == 1 + recomputes for every partition.
  const std::map<std::pair<StageId, int>, int>& recompute_counts() const {
    return recompute_counts_;
  }

 private:
  struct StageProgress {
    const Stage* stage = nullptr;
    std::set<int> remaining_partitions;
    bool submitted = false;
    bool complete = false;
  };
  /// One in-flight application with its active job's stage progress.
  struct AppRun {
    const Application* app = nullptr;
    DoneFn on_done;
    std::size_t next_job = 0;      // index into app->jobs of the next job
    const Job* job = nullptr;      // the active job (jobs are sequential)
    SimTime job_submitted = 0.0;
    std::map<StageId, StageProgress> progress;  // stages of the active job
  };

  void start_next_job(AppRun& run);
  void submit_ready_stages(AppRun& run);
  void finish_job(AppRun& run);
  bool needed_by_incomplete_child(const AppRun& run, StageId stage) const;

  Simulator& sim_;
  SubmitFn submit_;
  SubmitFn resubmit_;
  JobObserverFn job_observer_;
  std::vector<std::unique_ptr<AppRun>> apps_;
  std::map<StageId, AppRun*> stage_index_;  // active jobs' stages → owner
  MapOutputTracker outputs_;
  std::size_t jobs_completed_ = 0;
  std::size_t apps_completed_ = 0;
  std::size_t recomputed_partitions_ = 0;
  // Bound in set_metrics; null while metrics are off.
  Counter* jobs_counter_ = nullptr;
  Counter* apps_counter_ = nullptr;
  Counter* stages_submitted_counter_ = nullptr;
  Counter* stages_completed_counter_ = nullptr;
  Counter* resubmitted_counter_ = nullptr;
  std::map<std::pair<StageId, int>, int> recompute_counts_;
};

}  // namespace rupam
