// Stage: a set of tasks separated from its parents by shuffle boundaries.
#pragma once

#include <string>
#include <vector>

#include "tasks/task_set.hpp"

namespace rupam {

struct Stage {
  StageId id = 0;
  std::string name;  // stable across iterations, keys DB_task_char
  bool is_shuffle_map = true;
  std::vector<StageId> parents;  // within the same job
  TaskSet tasks;

  std::size_t num_tasks() const { return tasks.size(); }
  void validate() const;
};

}  // namespace rupam
