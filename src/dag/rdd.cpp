#include "dag/rdd.hpp"

#include <stdexcept>

namespace rupam {

Bytes Rdd::total_bytes() const {
  Bytes total = 0.0;
  for (Bytes b : partition_bytes) total += b;
  return total;
}

std::string Rdd::block_key(int partition) const {
  return "rdd_" + std::to_string(id) + "_" + std::to_string(partition);
}

std::vector<std::vector<NodeId>> place_blocks(std::size_t partitions,
                                              const std::vector<NodeId>& nodes, int replication,
                                              Rng& rng, const std::vector<double>& weights) {
  if (nodes.empty()) throw std::invalid_argument("place_blocks: no nodes");
  if (replication < 1) throw std::invalid_argument("place_blocks: replication < 1");
  if (!weights.empty() && weights.size() != nodes.size()) {
    throw std::invalid_argument("place_blocks: weights/nodes size mismatch");
  }
  auto n = nodes.size();
  auto reps = std::min<std::size_t>(static_cast<std::size_t>(replication), n);

  // Build a weighted round-robin ring: each node appears proportionally to
  // its weight, interleaved for even short-range spread.
  std::vector<std::size_t> ring;
  double min_w = 1e300;
  for (std::size_t i = 0; i < n; ++i) {
    double w = weights.empty() ? 1.0 : weights[i];
    if (w > 0.0) min_w = std::min(min_w, w);
  }
  for (std::size_t i = 0; i < n; ++i) {
    double w = weights.empty() ? 1.0 : weights[i];
    auto copies = static_cast<std::size_t>(w / min_w + 0.5);
    for (std::size_t c = 0; c < copies; ++c) ring.push_back(i);
  }
  // Deterministic shuffle so same-node copies do not clump.
  for (std::size_t i = ring.size(); i > 1; --i) {
    std::size_t j = rng.uniform_index(i);
    std::swap(ring[i - 1], ring[j]);
  }

  std::vector<std::vector<NodeId>> out(partitions);
  std::size_t cursor = rng.uniform_index(ring.size());
  for (std::size_t p = 0; p < partitions; ++p) {
    for (std::size_t r = 0; r < reps; ++r) {
      // Pick the next ring slot whose node is not already a replica.
      for (std::size_t probe = 0; probe < ring.size(); ++probe) {
        NodeId candidate = nodes[ring[(cursor + probe) % ring.size()]];
        bool dup = false;
        for (NodeId existing : out[p]) dup = dup || existing == candidate;
        if (!dup) {
          out[p].push_back(candidate);
          cursor = (cursor + probe + 1) % ring.size();
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace rupam
