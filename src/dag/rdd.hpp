// Minimal RDD/partition bookkeeping: identity, sizes, block placement.
//
// The simulator does not execute transformations; RDDs exist so that
// (a) input partitions have stable block locations (data locality), and
// (b) cached partitions have stable cache keys across iterations.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rupam {

struct Rdd {
  int id = 0;
  std::string name;
  std::vector<Bytes> partition_bytes;
  /// Block locations per partition (HDFS-style replicas).
  std::vector<std::vector<NodeId>> locations;

  std::size_t num_partitions() const { return partition_bytes.size(); }
  Bytes total_bytes() const;
  /// Cache key of one partition ("rdd_<id>_<p>", Spark block-id style).
  std::string block_key(int partition) const;
};

/// Spread `partitions` blocks over `nodes` with `replication` replicas
/// each (deterministic given rng). `weights` biases placement the way
/// HDFS does — proportionally to each datanode's storage capacity (in the
/// paper's cluster the 1 TB HDD nodes hold ~2x the blocks of the 512 GB
/// SSD thor nodes, which is what pins cached partitions, and hence later
/// iterations under locality-only scheduling, onto the weak nodes).
/// Empty weights = uniform.
std::vector<std::vector<NodeId>> place_blocks(std::size_t partitions,
                                              const std::vector<NodeId>& nodes, int replication,
                                              Rng& rng, const std::vector<double>& weights = {});

}  // namespace rupam
