#include "dag/stage.hpp"

#include <stdexcept>

namespace rupam {

void Stage::validate() const {
  if (tasks.stage != id) throw std::invalid_argument("Stage: task set stage id mismatch");
  for (StageId p : parents) {
    if (p == id) throw std::invalid_argument("Stage: stage cannot depend on itself");
  }
  tasks.validate();
}

}  // namespace rupam
