#include "dag/map_output_tracker.hpp"

namespace rupam {

void MapOutputTracker::record(JobId job, StageId stage, int partition, NodeId node) {
  outputs_[{job, stage}][partition] = node;
}

std::map<MapOutputTracker::ShuffleKey, std::vector<int>> MapOutputTracker::invalidate_node(
    NodeId node) {
  std::map<ShuffleKey, std::vector<int>> lost;
  for (auto stage_it = outputs_.begin(); stage_it != outputs_.end();) {
    auto& parts = stage_it->second;
    for (auto it = parts.begin(); it != parts.end();) {
      if (it->second == node) {
        lost[stage_it->first].push_back(it->first);
        it = parts.erase(it);
      } else {
        ++it;
      }
    }
    stage_it = parts.empty() ? outputs_.erase(stage_it) : std::next(stage_it);
  }
  return lost;
}

const NodeId* MapOutputTracker::location(JobId job, StageId stage, int partition) const {
  auto stage_it = outputs_.find({job, stage});
  if (stage_it == outputs_.end()) return nullptr;
  auto it = stage_it->second.find(partition);
  return it == stage_it->second.end() ? nullptr : &it->second;
}

void MapOutputTracker::forget(JobId job, StageId stage) { outputs_.erase({job, stage}); }

std::size_t MapOutputTracker::tracked() const {
  std::size_t n = 0;
  for (const auto& [key, parts] : outputs_) n += parts.size();
  return n;
}

}  // namespace rupam
