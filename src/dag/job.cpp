#include "dag/job.hpp"

#include <set>
#include <stdexcept>

namespace rupam {

void Job::validate() const {
  std::set<StageId> ids;
  for (const auto& s : stages) {
    s.validate();
    if (!ids.insert(s.id).second) throw std::invalid_argument("Job: duplicate stage id");
  }
  for (const auto& s : stages) {
    for (StageId p : s.parents) {
      if (ids.count(p) == 0) throw std::invalid_argument("Job: parent stage not in job");
    }
  }
}

std::size_t Application::total_tasks() const {
  std::size_t n = 0;
  for (const auto& j : jobs) {
    for (const auto& s : j.stages) n += s.num_tasks();
  }
  return n;
}

std::size_t Application::total_stages() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.stages.size();
  return n;
}

void assign_pool(Application& app, const std::string& pool) {
  app.pool = pool;
  for (auto& job : app.jobs) {
    for (auto& stage : job.stages) stage.tasks.pool = pool;
  }
}

void offset_ids(Application& app, JobId job_base, StageId stage_base, TaskId task_base,
                const std::string& cache_tag) {
  auto retag = [&cache_tag](std::string& key) {
    if (!cache_tag.empty() && !key.empty()) key = cache_tag + key;
  };
  for (auto& job : app.jobs) {
    job.id += job_base;
    for (auto& stage : job.stages) {
      stage.id += stage_base;
      for (StageId& parent : stage.parents) parent += stage_base;
      stage.tasks.job = job.id;
      stage.tasks.stage = stage.id;
      for (auto& task : stage.tasks.tasks) {
        task.id += task_base;
        task.job = job.id;
        task.stage = stage.id;
        retag(task.input_cache_key);
        retag(task.cache_output_key);
      }
    }
  }
}

void Application::validate() const {
  std::set<StageId> stage_ids;
  std::set<TaskId> task_ids;
  for (const auto& j : jobs) {
    j.validate();
    for (const auto& s : j.stages) {
      if (!stage_ids.insert(s.id).second) {
        throw std::invalid_argument("Application: stage id reused across jobs");
      }
      for (const auto& t : s.tasks.tasks) {
        if (!task_ids.insert(t.id).second) {
          throw std::invalid_argument("Application: duplicate task id");
        }
      }
    }
  }
}

}  // namespace rupam
