#include "dag/job.hpp"

#include <set>
#include <stdexcept>

namespace rupam {

void Job::validate() const {
  std::set<StageId> ids;
  for (const auto& s : stages) {
    s.validate();
    if (!ids.insert(s.id).second) throw std::invalid_argument("Job: duplicate stage id");
  }
  for (const auto& s : stages) {
    for (StageId p : s.parents) {
      if (ids.count(p) == 0) throw std::invalid_argument("Job: parent stage not in job");
    }
  }
}

std::size_t Application::total_tasks() const {
  std::size_t n = 0;
  for (const auto& j : jobs) {
    for (const auto& s : j.stages) n += s.num_tasks();
  }
  return n;
}

void Application::validate() const {
  std::set<StageId> stage_ids;
  std::set<TaskId> task_ids;
  for (const auto& j : jobs) {
    j.validate();
    for (const auto& s : j.stages) {
      if (!stage_ids.insert(s.id).second) {
        throw std::invalid_argument("Application: stage id reused across jobs");
      }
      for (const auto& t : s.tasks.tasks) {
        if (!task_ids.insert(t.id).second) {
          throw std::invalid_argument("Application: duplicate task id");
        }
      }
    }
  }
}

}  // namespace rupam
