// Job: the stage DAG triggered by one Spark action. An Application is the
// sequence of jobs a driver program submits (iterative workloads submit one
// job per iteration).
#pragma once

#include <string>
#include <vector>

#include "dag/stage.hpp"

namespace rupam {

struct Job {
  JobId id = 0;
  std::string name;
  std::vector<Stage> stages;  // ids unique within the application

  void validate() const;
};

struct Application {
  std::string name;
  /// Fair-scheduler pool (tenant) this application's jobs are billed to;
  /// empty = the default pool. Use assign_pool to keep the per-taskset
  /// pool tags consistent with this field.
  std::string pool;
  std::vector<Job> jobs;

  std::size_t total_tasks() const;
  std::size_t total_stages() const;
  void validate() const;
};

/// Stamp `pool` on the application and every taskset inside it.
void assign_pool(Application& app, const std::string& pool);

/// Shift every job/stage/task id by the given bases and, when `cache_tag`
/// is non-empty, prefix all RDD cache keys with it. The workload driver
/// uses this to keep concurrently running applications in disjoint id and
/// cache-key spaces (stage ids key the task scheduler; cache keys name
/// blocks in the executors' shared caches).
void offset_ids(Application& app, JobId job_base, StageId stage_base, TaskId task_base,
                const std::string& cache_tag = "");

}  // namespace rupam
