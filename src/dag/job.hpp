// Job: the stage DAG triggered by one Spark action. An Application is the
// sequence of jobs a driver program submits (iterative workloads submit one
// job per iteration).
#pragma once

#include <string>
#include <vector>

#include "dag/stage.hpp"

namespace rupam {

struct Job {
  JobId id = 0;
  std::string name;
  std::vector<Stage> stages;  // ids unique within the application

  void validate() const;
};

struct Application {
  std::string name;
  std::vector<Job> jobs;

  std::size_t total_tasks() const;
  void validate() const;
};

}  // namespace rupam
