// MapOutputTracker: which node holds each completed shuffle-map
// partition's output (Spark's MapOutputTrackerMaster, minus the
// per-reducer block sizes — the simulator only needs locations so a node
// crash can invalidate them and trigger recomputation).
//
// One tracker is shared by every job in flight; registrations are keyed by
// (job, stage) so concurrent jobs — possibly from different applications —
// never shadow each other's shuffle outputs. A job's entries are dropped
// with forget() as it completes.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace rupam {

class MapOutputTracker {
 public:
  using ShuffleKey = std::pair<JobId, StageId>;

  /// Record (or overwrite, on recompute) the location of one partition's
  /// map output.
  void record(JobId job, StageId stage, int partition, NodeId node);

  /// Every registered output on `node` is lost (node crash). Removes the
  /// registrations and returns (job, stage) → sorted lost partitions.
  std::map<ShuffleKey, std::vector<int>> invalidate_node(NodeId node);

  /// Location of a partition's output, or nullptr if unregistered/lost.
  const NodeId* location(JobId job, StageId stage, int partition) const;

  /// Drop one completed stage's registrations (nothing will fetch them
  /// again once the owning job has finished).
  void forget(JobId job, StageId stage);

  std::size_t tracked() const;
  void clear() { outputs_.clear(); }

 private:
  std::map<ShuffleKey, std::map<int, NodeId>> outputs_;
};

}  // namespace rupam
