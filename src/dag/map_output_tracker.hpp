// MapOutputTracker: which node holds each completed shuffle-map
// partition's output (Spark's MapOutputTrackerMaster, minus the
// per-reducer block sizes — the simulator only needs locations so a node
// crash can invalidate them and trigger recomputation).
#pragma once

#include <map>
#include <vector>

#include "common/types.hpp"

namespace rupam {

class MapOutputTracker {
 public:
  /// Record (or overwrite, on recompute) the location of one partition's
  /// map output.
  void record(StageId stage, int partition, NodeId node);

  /// Every registered output on `node` is lost (node crash). Removes the
  /// registrations and returns stage → sorted lost partitions.
  std::map<StageId, std::vector<int>> invalidate_node(NodeId node);

  /// Location of a partition's output, or nullptr if unregistered/lost.
  const NodeId* location(StageId stage, int partition) const;

  std::size_t tracked() const;
  void clear() { outputs_.clear(); }

 private:
  std::map<StageId, std::map<int, NodeId>> outputs_;
};

}  // namespace rupam
