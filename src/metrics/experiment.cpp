#include "metrics/experiment.hpp"

#include <algorithm>
#include <stdexcept>

namespace rupam {

double ExperimentResult::mean_makespan() const {
  RunningStats s;
  for (const auto& r : runs) s.add(r.makespan);
  return s.mean();
}

double ExperimentResult::ci95_makespan() const {
  RunningStats s;
  for (const auto& r : runs) s.add(r.makespan);
  return confidence_interval_95(s.stddev(), s.count());
}

KernelStats ExperimentResult::kernel_total() const {
  KernelStats total;
  for (const auto& r : runs) total += r.kernel;
  return total;
}

const RunRecord& ExperimentResult::median_run() const {
  if (runs.empty()) throw std::logic_error("ExperimentResult: no runs");
  std::vector<std::size_t> order(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this](std::size_t a, std::size_t b) { return runs[a].makespan < runs[b].makespan; });
  return runs[order[order.size() / 2]];
}

RunRecord run_workload_once(const WorkloadPreset& preset, const ExperimentConfig& config,
                            std::uint64_t seed) {
  SimulationConfig sim_cfg = config.sim;
  sim_cfg.scheduler = config.scheduler;
  sim_cfg.seed = seed;
  sim_cfg.sample_utilization = config.sample_utilization;

  Simulation sim(sim_cfg);
  Application app = build_workload(preset, sim.cluster().node_ids(), seed,
                                   config.iterations_override,
                                   hdfs_placement_weights(sim.cluster()));

  RunRecord rec;
  rec.makespan = sim.run(app);
  rec.kernel = sim.sim().stats();
  const auto& completed = sim.scheduler().completed();
  rec.locality = count_locality(completed);
  rec.breakdown = aggregate_breakdown(completed);
  rec.oom_kills = sim.total_oom_kills();
  rec.executor_losses = sim.total_executor_losses();
  rec.failed_attempts = sim.scheduler().failures().size();
  rec.straggler_copies = sim.scheduler().straggler_copies();
  rec.relocations = sim.scheduler().relocations();
  if (const UtilizationSampler* sampler = sim.sampler()) {
    rec.avg_cpu_util = sampler->avg_cpu_util();
    rec.avg_memory_used = sampler->avg_memory_used();
    rec.avg_net_rate = sampler->avg_net_rate();
    rec.avg_disk_rate = sampler->avg_disk_rate();
  }
  if (config.keep_task_metrics) rec.completed = completed;
  return rec;
}

ExperimentResult run_experiment(const WorkloadPreset& preset, const ExperimentConfig& config) {
  if (config.repetitions <= 0) throw std::invalid_argument("run_experiment: repetitions <= 0");
  ExperimentResult result;
  result.workload = preset.name;
  result.scheduler = std::string(to_string(config.scheduler));
  for (int r = 0; r < config.repetitions; ++r) {
    result.runs.push_back(
        run_workload_once(preset, config, config.base_seed + static_cast<std::uint64_t>(r)));
  }
  return result;
}

}  // namespace rupam
