// Per-job completion-time (JCT) accounting for multi-tenant runs.
//
// The DagScheduler reports each finished job's lifecycle (submit → finish)
// and the task scheduler reports first task launches; the accountant joins
// the two into JobCompletion records and summarizes them — mean/p50/p95/p99
// JCT plus mean queueing delay (submission → first launch), overall and per
// fair-scheduler pool.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rupam {

/// Lifecycle of one completed job.
struct JobCompletion {
  JobId job = -1;
  std::string app;   // owning application's name
  std::string pool;  // fair-scheduler pool ("" = default)
  std::string name;  // job name
  SimTime submitted = 0.0;
  SimTime first_launch = -1.0;  // < 0: no task launch was observed
  SimTime finished = 0.0;

  SimTime jct() const { return finished - submitted; }
  SimTime queueing_delay() const {
    return first_launch >= submitted ? first_launch - submitted : 0.0;
  }
};

struct JctSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean_queueing = 0.0;
};

JctSummary summarize_jct(const std::vector<JobCompletion>& jobs);

/// Joins the scheduler's launch stream with the DAG scheduler's finished-job
/// stream. Wired up automatically by Simulation::run(SubmissionStream).
class JctAccountant {
 public:
  /// First call per job wins (the scheduler reports every launch).
  void note_launch(JobId job, SimTime now);
  void note_finished(JobId job, std::string app, std::string pool, std::string name,
                     SimTime submitted, SimTime finished);

  const std::vector<JobCompletion>& jobs() const { return jobs_; }
  JctSummary overall() const { return summarize_jct(jobs_); }
  std::map<std::string, JctSummary> by_pool() const;

 private:
  std::map<JobId, SimTime> first_launch_;
  std::vector<JobCompletion> jobs_;
};

/// Result of one multi-tenant run (Simulation::run over a stream).
struct TenantRunReport {
  SimTime makespan = 0.0;  // first submission → last application finish
  std::vector<JobCompletion> jobs;
  JctSummary overall;
  std::map<std::string, JctSummary> per_pool;
};

}  // namespace rupam
