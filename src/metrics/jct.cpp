#include "metrics/jct.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace rupam {

JctSummary summarize_jct(const std::vector<JobCompletion>& jobs) {
  JctSummary s;
  s.count = jobs.size();
  if (jobs.empty()) return s;
  std::vector<double> jcts;
  jcts.reserve(jobs.size());
  double queueing = 0.0;
  for (const JobCompletion& j : jobs) {
    jcts.push_back(j.jct());
    queueing += j.queueing_delay();
  }
  s.mean = mean_of(jcts);
  s.max = *std::max_element(jcts.begin(), jcts.end());
  s.p50 = percentile_inplace(jcts, 50.0);
  s.p95 = percentile_inplace(jcts, 95.0);
  s.p99 = percentile_inplace(jcts, 99.0);
  s.mean_queueing = queueing / static_cast<double>(jobs.size());
  return s;
}

void JctAccountant::note_launch(JobId job, SimTime now) {
  first_launch_.emplace(job, now);  // first launch only
}

void JctAccountant::note_finished(JobId job, std::string app, std::string pool,
                                  std::string name, SimTime submitted, SimTime finished) {
  JobCompletion jc;
  jc.job = job;
  jc.app = std::move(app);
  jc.pool = std::move(pool);
  jc.name = std::move(name);
  jc.submitted = submitted;
  jc.finished = finished;
  auto it = first_launch_.find(job);
  if (it != first_launch_.end()) {
    jc.first_launch = it->second;
    first_launch_.erase(it);
  }
  jobs_.push_back(std::move(jc));
}

std::map<std::string, JctSummary> JctAccountant::by_pool() const {
  std::map<std::string, std::vector<JobCompletion>> grouped;
  for (const JobCompletion& j : jobs_) grouped[j.pool].push_back(j);
  std::map<std::string, JctSummary> out;
  for (const auto& [pool, jobs] : grouped) out[pool] = summarize_jct(jobs);
  return out;
}

}  // namespace rupam
