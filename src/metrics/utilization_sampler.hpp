// Periodic per-node utilization sampler — the measurement layer behind
// Fig 2 (timelines), Fig 8 (averages), and Fig 9 (cross-node stddev).
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "simcore/timeseries.hpp"

namespace rupam {

class UtilizationSampler {
 public:
  UtilizationSampler(Cluster& cluster, SimTime period = 1.0);

  void start();
  void stop();

  /// Begin sampling a node that joined after construction: its series start
  /// at the join instant (no retroactive zeros) and its net/disk rates are
  /// baselined against the counters at join time.
  void node_joined(NodeId node);
  /// Stop sampling a decommissioned node: its series simply end, so its
  /// averages cover its membership window, not the full run wall time.
  void node_left(NodeId node);
  /// True while the node is being sampled.
  bool sampling(NodeId node) const;

  /// Per-node series, indexed by NodeId.
  const TimeSeries& cpu_util(NodeId node) const;      // fraction [0,1]
  const TimeSeries& memory_used(NodeId node) const;   // bytes
  const TimeSeries& net_rate(NodeId node) const;      // bytes/s
  const TimeSeries& disk_rate(NodeId node) const;     // bytes/s

  /// Cluster-wide averages over nodes and samples (Fig 8 bars).
  double avg_cpu_util() const;
  double avg_memory_used() const;
  double avg_net_rate() const;
  double avg_disk_rate() const;

  /// Aligned per-node series resampled on the sampling grid, for Fig 9's
  /// cross-node standard deviation.
  std::vector<std::vector<double>> cpu_series(SimTime horizon) const;
  std::vector<std::vector<double>> net_series(SimTime horizon) const;
  std::vector<std::vector<double>> disk_series(SimTime horizon) const;

  SimTime period() const { return period_; }

 private:
  void sample();
  void ensure_capacity(std::size_t n, bool active);

  Cluster& cluster_;
  SimTime period_;
  bool running_ = false;
  EventHandle next_;
  std::vector<char> active_;  // nodes currently sampled
  std::vector<TimeSeries> cpu_;
  std::vector<TimeSeries> mem_;
  std::vector<TimeSeries> net_;
  std::vector<TimeSeries> disk_;
  std::vector<Bytes> last_net_bytes_;
  std::vector<Bytes> last_disk_bytes_;
  SimTime last_sample_ = 0.0;
};

}  // namespace rupam
