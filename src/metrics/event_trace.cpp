#include "metrics/event_trace.hpp"

#include <stdexcept>

#include "common/json_writer.hpp"
#include "common/table.hpp"

namespace rupam {

std::string_view to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kStageSubmitted: return "stage_submitted";
    case TraceEventType::kTaskLaunched: return "task_launched";
    case TraceEventType::kSpeculativeLaunched: return "speculative_launched";
    case TraceEventType::kTaskFinished: return "task_finished";
    case TraceEventType::kTaskFailed: return "task_failed";
    case TraceEventType::kTaskRelocated: return "task_relocated";
    case TraceEventType::kExecutorLost: return "executor_lost";
    case TraceEventType::kFaultInjected: return "fault_injected";
    case TraceEventType::kNodeDead: return "node_dead";
    case TraceEventType::kNodeRecovered: return "node_recovered";
    case TraceEventType::kNodeBlacklisted: return "node_blacklisted";
    case TraceEventType::kNodeUnblacklisted: return "node_unblacklisted";
    case TraceEventType::kPartitionResubmitted: return "partition_resubmitted";
    case TraceEventType::kNodeProvisioned: return "node_provisioned";
    case TraceEventType::kNodeJoined: return "node_joined";
    case TraceEventType::kNodeDraining: return "node_draining";
    case TraceEventType::kNodeDecommissioned: return "node_decommissioned";
    case TraceEventType::kTaskPreempted: return "task_preempted";
  }
  return "?";
}

void EventTrace::record(TraceEvent event) {
  if (!events_.empty() && event.time < events_.back().time) {
    throw std::invalid_argument("EventTrace: non-monotonic event time");
  }
  counts_[static_cast<std::size_t>(event.type)]++;
  events_.push_back(std::move(event));
}

std::size_t EventTrace::count(TraceEventType type) const {
  return counts_[static_cast<std::size_t>(type)];
}

void EventTrace::clear() {
  events_.clear();
  counts_.fill(0);
}

void EventTrace::write_csv(std::ostream& os) const {
  CsvWriter csv(os);
  csv.write_row({"time", "type", "stage", "task", "attempt", "node", "duration", "detail"});
  for (const auto& e : events_) {
    csv.write_row({format_fixed(e.time, 6), std::string(to_string(e.type)),
                   std::to_string(e.stage), std::to_string(e.task),
                   std::to_string(e.attempt), std::to_string(e.node),
                   format_fixed(e.duration, 6), e.detail});
  }
}

// JSON escaping is shared with every other exporter (common/json_writer);
// the line format here stays hand-rolled to keep the compact one-event-
// per-line layout.
void EventTrace::write_chrome_tracing(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << "  " << line;
  };
  for (const auto& e : events_) {
    double ts_us = e.time * 1e6;
    switch (e.type) {
      case TraceEventType::kTaskFinished:
      case TraceEventType::kTaskFailed: {
        // Completed attempt: a duration slice on the node's lane.
        std::string name = "task " + std::to_string(e.task) + "#" + std::to_string(e.attempt);
        emit("{\"name\": \"" + json_escape(name) + "\", \"cat\": \"" +
             std::string(to_string(e.type)) + "\", \"ph\": \"X\", \"ts\": " +
             format_fixed(ts_us - e.duration * 1e6, 3) + ", \"dur\": " +
             format_fixed(e.duration * 1e6, 3) + ", \"pid\": " + std::to_string(e.node) +
             ", \"tid\": " + std::to_string(e.task % 64) + ", \"args\": {\"detail\": \"" +
             json_escape(e.detail) + "\"}}");
        break;
      }
      case TraceEventType::kExecutorLost:
      case TraceEventType::kTaskRelocated:
      case TraceEventType::kFaultInjected:
      case TraceEventType::kNodeDead:
      case TraceEventType::kNodeRecovered:
      case TraceEventType::kNodeBlacklisted:
      case TraceEventType::kNodeUnblacklisted:
      case TraceEventType::kPartitionResubmitted:
      case TraceEventType::kNodeProvisioned:
      case TraceEventType::kNodeJoined:
      case TraceEventType::kNodeDraining:
      case TraceEventType::kNodeDecommissioned:
      case TraceEventType::kTaskPreempted:
      case TraceEventType::kStageSubmitted: {
        emit("{\"name\": \"" + std::string(to_string(e.type)) + "\", \"ph\": \"i\", \"ts\": " +
             format_fixed(ts_us, 3) + ", \"pid\": " +
             std::to_string(e.node == kInvalidNode ? 0 : e.node) +
             ", \"tid\": 0, \"s\": \"g\", \"args\": {\"detail\": \"" + json_escape(e.detail) +
             "\"}}");
        break;
      }
      default:
        break;  // launches are implied by the X events
    }
  }
  os << "\n]\n";
}

}  // namespace rupam
