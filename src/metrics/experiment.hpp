// Experiment runner: N seeded repetitions of (workload, scheduler) on the
// Hydra cluster — the protocol behind Fig 5 ("run all workloads five
// times, clear DB_task_char after each run, report average and 95% CI").
// Each repetition constructs a fresh Simulation, so the characteristics
// DB never leaks across runs; it *does* warm up across the iterations
// within one run, which is the effect Fig 6 sweeps.
#pragma once

#include <string>
#include <vector>

#include "app/simulation.hpp"
#include "common/stats.hpp"
#include "metrics/breakdown.hpp"
#include "metrics/locality_counter.hpp"
#include "workloads/presets.hpp"

namespace rupam {

struct ExperimentConfig {
  SchedulerKind scheduler = SchedulerKind::kSpark;
  int repetitions = 5;
  /// 0 = the preset's paper-default iteration count.
  int iterations_override = 0;
  std::uint64_t base_seed = 1;
  bool sample_utilization = false;
  /// Keep per-attempt task metrics of every run (Figs 3 & 7, Table V).
  bool keep_task_metrics = false;
  /// Base simulation configuration (scheduler/seed fields are overridden).
  SimulationConfig sim;
};

struct RunRecord {
  SimTime makespan = 0.0;
  /// Kernel work/allocation counters of this run's Simulator.
  KernelStats kernel{};
  LocalityCounts locality{};
  Breakdown breakdown;
  std::size_t oom_kills = 0;
  std::size_t executor_losses = 0;
  std::size_t failed_attempts = 0;
  std::size_t straggler_copies = 0;
  std::size_t relocations = 0;
  double avg_cpu_util = 0.0;   // fraction
  double avg_memory_used = 0.0;  // bytes
  double avg_net_rate = 0.0;   // bytes/s
  double avg_disk_rate = 0.0;  // bytes/s
  std::vector<TaskMetrics> completed;  // only when keep_task_metrics
};

struct ExperimentResult {
  std::string workload;
  std::string scheduler;
  std::vector<RunRecord> runs;

  double mean_makespan() const;
  double ci95_makespan() const;
  const RunRecord& median_run() const;
  /// Summed kernel counters across every run (bench JSON footers).
  KernelStats kernel_total() const;
};

/// One repetition with an explicit seed.
RunRecord run_workload_once(const WorkloadPreset& preset, const ExperimentConfig& config,
                            std::uint64_t seed);

/// The full protocol: `repetitions` runs with seeds base_seed, base_seed+1, ...
ExperimentResult run_experiment(const WorkloadPreset& preset, const ExperimentConfig& config);

}  // namespace rupam
