#include "metrics/locality_counter.hpp"

namespace rupam {

LocalityCounts count_locality(const std::vector<TaskMetrics>& metrics) {
  LocalityCounts counts{};
  for (const auto& m : metrics) {
    if (m.failed) continue;
    counts[static_cast<std::size_t>(m.locality)]++;
  }
  return counts;
}

}  // namespace rupam
