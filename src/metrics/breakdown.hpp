// Execution-time breakdown aggregation (Fig 3's per-task categories and
// Fig 7's per-workload stacks).
#pragma once

#include <vector>

#include "tasks/task_metrics.hpp"

namespace rupam {

/// Fig 7 categories, summed over task attempts (seconds of task time).
struct Breakdown {
  SimTime gc = 0.0;
  SimTime compute = 0.0;  // includes input read + serialization (Spark UI)
  SimTime scheduler = 0.0;
  SimTime shuffle_disk = 0.0;
  SimTime shuffle_net = 0.0;

  SimTime total() const { return gc + compute + scheduler + shuffle_disk + shuffle_net; }
};

Breakdown aggregate_breakdown(const std::vector<TaskMetrics>& metrics);

/// Fig 3 categories for one task attempt.
struct TaskBreakdown {
  TaskId task = 0;
  NodeId node = kInvalidNode;
  SimTime compute = 0.0;
  SimTime shuffle = 0.0;
  SimTime serialization = 0.0;
  SimTime scheduler_delay = 0.0;
};

TaskBreakdown task_breakdown(const TaskMetrics& m);

}  // namespace rupam
