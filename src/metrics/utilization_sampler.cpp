#include "metrics/utilization_sampler.hpp"

#include <stdexcept>

namespace rupam {

UtilizationSampler::UtilizationSampler(Cluster& cluster, SimTime period)
    : cluster_(cluster), period_(period) {
  if (period <= 0.0) throw std::invalid_argument("UtilizationSampler: period must be > 0");
  ensure_capacity(cluster_.size(), /*active=*/true);
}

void UtilizationSampler::ensure_capacity(std::size_t n, bool active) {
  if (cpu_.size() >= n) return;
  cpu_.resize(n);
  mem_.resize(n);
  net_.resize(n);
  disk_.resize(n);
  last_net_bytes_.resize(n, 0.0);
  last_disk_bytes_.resize(n, 0.0);
  active_.resize(n, active ? 1 : 0);
}

void UtilizationSampler::start() {
  if (running_) return;
  running_ = true;
  last_sample_ = cluster_.sim().now();
  for (std::size_t i = 0; i < cpu_.size(); ++i) {
    if (!active_[i]) continue;
    auto id = static_cast<NodeId>(i);
    last_net_bytes_[i] = cluster_.node(id).net_bytes_total();
    last_disk_bytes_[i] = cluster_.node(id).disk_bytes_total();
  }
  next_ = cluster_.sim().schedule_after(period_, [this] { sample(); });
}

void UtilizationSampler::stop() {
  running_ = false;
  next_.cancel();
}

void UtilizationSampler::node_joined(NodeId node) {
  auto idx = static_cast<std::size_t>(node);
  if (idx >= cluster_.size()) throw std::out_of_range("UtilizationSampler: bad node id");
  // Nodes created after construction default to inactive until they join.
  ensure_capacity(cluster_.size(), /*active=*/false);
  if (active_[idx]) return;
  active_[idx] = 1;
  last_net_bytes_[idx] = cluster_.node(node).net_bytes_total();
  last_disk_bytes_[idx] = cluster_.node(node).disk_bytes_total();
}

void UtilizationSampler::node_left(NodeId node) {
  auto idx = static_cast<std::size_t>(node);
  if (idx < active_.size()) active_[idx] = 0;
}

bool UtilizationSampler::sampling(NodeId node) const {
  auto idx = static_cast<std::size_t>(node);
  return idx < active_.size() && active_[idx] != 0;
}

void UtilizationSampler::sample() {
  if (!running_) return;
  SimTime now = cluster_.sim().now();
  SimTime dt = now - last_sample_;
  last_sample_ = now;
  for (std::size_t i = 0; i < cpu_.size(); ++i) {
    if (!active_[i]) continue;
    auto id = static_cast<NodeId>(i);
    Node& node = cluster_.node(id);
    cpu_[i].add(now, node.cpu().utilization());
    mem_[i].add(now, node.memory_in_use());
    Bytes net_total = node.net_bytes_total();
    Bytes disk_total = node.disk_bytes_total();
    net_[i].add(now, dt > 0.0 ? (net_total - last_net_bytes_[i]) / dt : 0.0);
    disk_[i].add(now, dt > 0.0 ? (disk_total - last_disk_bytes_[i]) / dt : 0.0);
    last_net_bytes_[i] = net_total;
    last_disk_bytes_[i] = disk_total;
  }
  next_ = cluster_.sim().schedule_after(period_, [this] { sample(); });
}

namespace {
const TimeSeries& at(const std::vector<TimeSeries>& v, NodeId node) {
  if (node < 0 || static_cast<std::size_t>(node) >= v.size()) {
    throw std::out_of_range("UtilizationSampler: bad node id");
  }
  return v[static_cast<std::size_t>(node)];
}

double avg_of(const std::vector<TimeSeries>& v) {
  RunningStats s;
  for (const auto& ts : v) {
    for (const auto& p : ts.points()) s.add(p.value);
  }
  return s.mean();
}

std::vector<std::vector<double>> aligned(const std::vector<TimeSeries>& v, SimTime dt,
                                         SimTime horizon) {
  std::vector<std::vector<double>> out;
  out.reserve(v.size());
  for (const auto& ts : v) out.push_back(ts.resample(dt, horizon));
  return out;
}
}  // namespace

const TimeSeries& UtilizationSampler::cpu_util(NodeId node) const { return at(cpu_, node); }
const TimeSeries& UtilizationSampler::memory_used(NodeId node) const { return at(mem_, node); }
const TimeSeries& UtilizationSampler::net_rate(NodeId node) const { return at(net_, node); }
const TimeSeries& UtilizationSampler::disk_rate(NodeId node) const { return at(disk_, node); }

double UtilizationSampler::avg_cpu_util() const { return avg_of(cpu_); }
double UtilizationSampler::avg_memory_used() const { return avg_of(mem_); }
double UtilizationSampler::avg_net_rate() const { return avg_of(net_); }
double UtilizationSampler::avg_disk_rate() const { return avg_of(disk_); }

std::vector<std::vector<double>> UtilizationSampler::cpu_series(SimTime horizon) const {
  return aligned(cpu_, period_, horizon);
}
std::vector<std::vector<double>> UtilizationSampler::net_series(SimTime horizon) const {
  return aligned(net_, period_, horizon);
}
std::vector<std::vector<double>> UtilizationSampler::disk_series(SimTime horizon) const {
  return aligned(disk_, period_, horizon);
}

}  // namespace rupam
