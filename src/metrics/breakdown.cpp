#include "metrics/breakdown.hpp"

namespace rupam {

Breakdown aggregate_breakdown(const std::vector<TaskMetrics>& metrics) {
  Breakdown b;
  for (const auto& m : metrics) {
    b.gc += m.gc_time;
    b.compute += m.compute_time;
    b.scheduler += m.scheduler_delay;
    b.shuffle_disk += m.shuffle_disk_time;
    b.shuffle_net += m.shuffle_net_time;
  }
  return b;
}

TaskBreakdown task_breakdown(const TaskMetrics& m) {
  TaskBreakdown b;
  b.task = m.task;
  b.node = m.node;
  // Fig 3 folds serialization out of compute and lumps all shuffle I/O.
  b.serialization = m.serialization_time;
  b.compute = m.compute_time - m.serialization_time + m.gc_time;
  b.shuffle = m.shuffle_read_time + m.shuffle_write_time + m.output_time;
  b.scheduler_delay = m.scheduler_delay;
  return b;
}

}  // namespace rupam
