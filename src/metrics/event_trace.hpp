// Structured scheduling-event trace — the simulator's equivalent of the
// Spark history server. Records every scheduling decision and failure,
// exportable as CSV (analysis) or Chrome-tracing JSON (load either file
// into chrome://tracing or Perfetto to see per-node task lanes).
#pragma once

#include <array>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rupam {

enum class TraceEventType : std::uint8_t {
  kStageSubmitted = 0,
  kTaskLaunched,
  kSpeculativeLaunched,
  kTaskFinished,
  kTaskFailed,
  kTaskRelocated,
  kExecutorLost,
  // Fault-injection & recovery events.
  kFaultInjected,          // the injector applied a FaultEvent
  kNodeDead,               // liveness: missed-heartbeat threshold crossed
  kNodeRecovered,          // liveness: heartbeats resumed
  kNodeBlacklisted,        // failure count tripped the blacklist
  kNodeUnblacklisted,      // timed un-blacklist elapsed
  kPartitionResubmitted,   // lost map output → parent partition recompute
  // Elastic-fleet lifecycle & preemption events.
  kNodeProvisioned,        // autoscale-up decision: instance requested
  kNodeJoined,             // boot finished: node is live and schedulable
  kNodeDraining,           // scale-down or spot notice: no new tasks
  kNodeDecommissioned,     // node permanently left the fleet
  kTaskPreempted,          // FAIR reclaim: attempt killed, task requeued
};
inline constexpr int kNumTraceEventTypes = 18;

std::string_view to_string(TraceEventType type);

struct TraceEvent {
  SimTime time = 0.0;
  TraceEventType type = TraceEventType::kTaskLaunched;
  StageId stage = -1;
  TaskId task = -1;
  AttemptId attempt = 0;
  NodeId node = kInvalidNode;
  /// Free-form context: failure reason, stage name, locality.
  std::string detail;
  /// Duration (finished/failed events), 0 otherwise.
  SimTime duration = 0.0;
};

class EventTrace {
 public:
  void record(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t count(TraceEventType type) const;
  bool empty() const { return events_.empty(); }
  void clear();

  /// One row per event: time,type,stage,task,attempt,node,duration,detail.
  void write_csv(std::ostream& os) const;

  /// Chrome-tracing "Trace Event Format": task attempts become complete
  /// ("X") events, one process lane per node; instant events for failures
  /// and executor losses.
  void write_chrome_tracing(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
  std::array<std::size_t, kNumTraceEventTypes> counts_{};
};

}  // namespace rupam
