// Locality-level accounting for Table V.
#pragma once

#include <array>
#include <vector>

#include "tasks/task_metrics.hpp"

namespace rupam {

using LocalityCounts = std::array<std::size_t, kNumLocalityLevels>;

/// Count successful attempts per locality level.
LocalityCounts count_locality(const std::vector<TaskMetrics>& metrics);

}  // namespace rupam
