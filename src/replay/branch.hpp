// Counterfactual branching: fork a recorded run at a dispatch decision
// and replay the alternative. A branch re-executes the base RunSpec with
// exactly one intervention:
//
//   node:stage=S:task=T:node=N[:attempt=A]   redirect one launch
//   scheduler=NAME                           swap the whole scheduler
//   suppress:kind=K[:node=N]                 drop matching fault events
//                                            (K: crash|slow|hbdrop|degrade|spot)
//
// (grammar in DESIGN.md §14). The node override rides the dispatch
// interceptor seam in SchedulerBase::launch_task and is one-shot: it
// fires on the first matching (stage, task, attempt) and never again,
// even if the forced node turns out unusable — otherwise a dead target
// would livelock the retry loop. Everything before the intervention is
// identical to the base run by determinism; everything after is the
// counterfactual. The BranchReport diffs the two outcomes with the
// cross-run comparator (obs/comparator.hpp).
#pragma once

#include <iosfwd>
#include <string>

#include "metrics/jct.hpp"
#include "obs/comparator.hpp"
#include "replay/checkpoint.hpp"

namespace rupam {

enum class BranchKind : std::uint8_t {
  kNodeOverride = 0,  // redirect one task launch
  kScheduler,         // rerun under a different scheduler
  kSuppressFault,     // remove matching fault events
};

struct BranchSpec {
  BranchKind kind = BranchKind::kNodeOverride;
  std::string label;  // the spec text this was parsed from

  // kNodeOverride
  StageId stage = 0;
  TaskId task = 0;
  AttemptId attempt = 0;
  NodeId node = kInvalidNode;

  // kScheduler
  SchedulerKind scheduler = SchedulerKind::kRupam;

  // kSuppressFault: events of `fault` (on `fault_node`, or any node when
  // kInvalidNode) are dropped; a seeded chaos plan is expanded first so
  // its events can be filtered too.
  FaultKind fault = FaultKind::kCrash;
  NodeId fault_node = kInvalidNode;
};

/// Parse the branch grammar above; throws std::runtime_error with a
/// field-specific message on malformed specs.
BranchSpec parse_branch_spec(const std::string& text);

/// Flat scalar outcome of one finished run — the comparator-facing
/// projection (every numeric field lands in outcome_to_json).
struct RunOutcome {
  std::string scheduler;
  SimTime makespan = 0.0;
  JctSummary jct;
  std::size_t stragglers = 0;
  std::size_t launches = 0;
  std::size_t failures = 0;
  std::size_t oom_kills = 0;
  std::size_t executor_losses = 0;
  std::size_t relocations = 0;
  std::size_t recomputed_partitions = 0;
};

/// Flat JSON object compare_json_text understands (BENCH-style).
std::string outcome_to_json(const RunOutcome& outcome);

struct BranchReport {
  BranchSpec spec;
  RunOutcome base;
  RunOutcome branch;
  ComparisonReport comparison;  // base vs. branch, CI-aware verdicts

  /// Positive = the branch finished its jobs faster (seconds saved).
  double p95_jct_saving() const { return base.jct.p95 - branch.jct.p95; }
  double makespan_saving() const { return base.makespan - branch.makespan; }
};

/// Run `spec` straight through with full analysis observability and
/// summarize it. `analyze_k` is the straggler threshold (obs/analyzer).
RunOutcome run_base(const RunSpec& spec, double analyze_k = 1.5);

/// Execute one branch of `spec` (base run + intervened run) and diff.
/// `base` may be a precomputed run_base(spec) outcome to avoid repeating
/// the straight run across branches; pass nullptr to compute it here.
BranchReport run_branch(const RunSpec& spec, const BranchSpec& branch,
                        const RunOutcome* base = nullptr, double analyze_k = 1.5);

/// Run only the intervened side (the base-sharing building block behind
/// run_branch and the what-if advisor).
RunOutcome run_branch_side(const RunSpec& spec, const BranchSpec& branch,
                           double analyze_k = 1.5);

/// Project a finished full-observability run into its flat outcome (the
/// building block behind the runners above and the CLI's --report-out).
/// The simulation must have spans/audit/trace/analysis enabled.
RunOutcome summarize_outcome(Simulation& sim, SimTime makespan, double analyze_k = 1.5);

/// Machine-readable report: {"branch": ..., "base": {...}, "branch_run":
/// {...}, "comparison": {...}, "p95_jct_saving_s": ...}.
void write_branch_report_json(const BranchReport& report, std::ostream& os);

}  // namespace rupam
