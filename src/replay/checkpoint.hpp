// Checkpoints as deterministic re-execution. The simulator is a pure
// function of (RunSpec, seed), so a checkpoint does not serialize heap
// state — it records the run's identity plus the prefix of dispatch
// decisions made by time T:
//
//   Checkpoint = { RunSpec (fleet embedded by value), time T,
//                  decision pins: one (stage, task, attempt, node)
//                  per launch with decision time <= T }
//
// restore_checkpoint rebuilds the Simulation from the embedded spec and
// replays to T at event boundaries (Simulation::advance_until), then
// verifies the recorded audit prefix matches the pins bit for bit. A
// divergence means the binary no longer reproduces the checkpointed run
// (code drift, wrong build) and restore throws rather than silently
// continuing a different run. Format in DESIGN.md §14; byte-identity of
// restore-then-finish vs. a straight run is gated by bench/replay.cpp.
//
// Checkpoints cover single-application runs (arrivals == 0) — the only
// mode the replay layer branches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "app/run_spec.hpp"
#include "app/simulation.hpp"
#include "dag/job.hpp"

namespace rupam {

/// One pinned dispatch decision (the replay-relevant projection of
/// obs::DispatchDecision).
struct DecisionPin {
  StageId stage = 0;
  TaskId task = 0;
  AttemptId attempt = 0;
  NodeId node = 0;

  friend bool operator==(const DecisionPin& a, const DecisionPin& b) {
    return a.stage == b.stage && a.task == b.task && a.attempt == b.attempt &&
           a.node == b.node;
  }
};

struct Checkpoint {
  RunSpec run;          // fleet embedded by value (self-describing)
  SimTime time = 0.0;   // quiescent point the run was advanced to
  std::vector<DecisionPin> pins;  // decision prefix with time <= `time`
};

/// JSON round-trip ({"format":"rupam-checkpoint-v1", ...}); strict like
/// every other spec parser — unknown keys and type mismatches throw.
std::string checkpoint_to_json(const Checkpoint& cp);
Checkpoint parse_checkpoint_json(const std::string& text);
Checkpoint load_checkpoint_file(const std::string& path);

/// A simulation mid-flight plus the application it is running. Both are
/// heap-held: the DAG scheduler keeps a pointer to the application for
/// the whole run, so its address must survive moving a ReplayRun. Audit
/// recording is always on — branch/restore flows need the decision log —
/// which is safe because observability never perturbs the run.
struct ReplayRun {
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Application> app;
};

/// Build the run a spec describes with audit (and any extra observability
/// in `base`) enabled, and begin() it. `base` supplies observability
/// defaults; run identity always comes from `spec`.
ReplayRun start_replay_run(const RunSpec& spec, const SimulationConfig& base = {});

/// Capture a checkpoint of `spec`'s run at quiescent time `t`: start,
/// advance_until(t), pin the decision prefix. The returned run is still
/// active — callers may finish() it (capture-and-continue) or drop it.
Checkpoint capture_checkpoint(const RunSpec& spec, SimTime t, ReplayRun* keep_run = nullptr);

/// Re-execute `cp.run` up to cp.time and verify the decision prefix
/// equals cp.pins; throws std::runtime_error on divergence. The returned
/// run is paused at the checkpoint — finish() runs it to completion.
ReplayRun restore_checkpoint(const Checkpoint& cp, const SimulationConfig& base = {});

/// The pins for every decision with time <= t (decisions are recorded in
/// launch order, so this is a prefix).
std::vector<DecisionPin> pin_prefix(const DecisionAudit& audit, SimTime t);

}  // namespace rupam
