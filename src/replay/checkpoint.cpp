#include "replay/checkpoint.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json_reader.hpp"
#include "common/json_writer.hpp"

namespace rupam {

namespace {

constexpr const char* kFormatTag = "rupam-checkpoint-v1";

[[noreturn]] void cp_error(const std::string& message) {
  throw std::runtime_error("checkpoint: " + message);
}

long long require_integer(const JsonValue& v, const std::string& what) {
  if (!v.is_number()) cp_error(what + " must be a number");
  double d = v.as_number();
  if (d != std::floor(d)) cp_error(what + " must be an integer");
  return static_cast<long long>(d);
}

DecisionPin parse_pin(const JsonValue& v, std::size_t index) {
  const std::string what = "pins[" + std::to_string(index) + "]";
  if (!v.is_array() || v.as_array().size() != 4) {
    cp_error(what + " must be a [stage, task, attempt, node] array");
  }
  const JsonValue::Array& a = v.as_array();
  DecisionPin pin;
  pin.stage = static_cast<StageId>(require_integer(a[0], what + " stage"));
  pin.task = static_cast<TaskId>(require_integer(a[1], what + " task"));
  pin.attempt = static_cast<AttemptId>(require_integer(a[2], what + " attempt"));
  pin.node = static_cast<NodeId>(require_integer(a[3], what + " node"));
  return pin;
}

}  // namespace

std::vector<DecisionPin> pin_prefix(const DecisionAudit& audit, SimTime t) {
  std::vector<DecisionPin> pins;
  pins.reserve(audit.size());
  for (const DispatchDecision& d : audit.decisions()) {
    if (d.time > t) break;  // decisions are recorded in launch order
    pins.push_back({d.stage, d.task, d.attempt, d.node});
  }
  return pins;
}

std::string checkpoint_to_json(const Checkpoint& cp) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("format").value(kFormatTag);
  w.key("time").raw(json_number(cp.time, 12));
  w.key("run");
  write_run_spec_json(cp.run, w);
  w.key("pins").begin_array();
  for (const DecisionPin& pin : cp.pins) {
    w.begin_array();
    w.value(static_cast<long long>(pin.stage));
    w.value(static_cast<long long>(pin.task));
    w.value(static_cast<long long>(pin.attempt));
    w.value(static_cast<long long>(pin.node));
    w.end_array();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return os.str();
}

Checkpoint parse_checkpoint_json(const std::string& text) {
  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const JsonParseError& e) {
    cp_error(e.what());
  }
  if (!doc.is_object()) cp_error("top level must be an object");
  Checkpoint cp;
  bool have_format = false, have_run = false, have_time = false;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "format") {
      if (!value.is_string() || value.as_string() != kFormatTag) {
        cp_error("format must be \"" + std::string(kFormatTag) + "\"");
      }
      have_format = true;
    } else if (key == "time") {
      if (!value.is_number()) cp_error("time must be a number");
      cp.time = value.as_number();
      if (cp.time < 0.0) cp_error("time must be >= 0");
      have_time = true;
    } else if (key == "run") {
      try {
        cp.run = parse_run_spec_value(value);
      } catch (const std::exception& e) {
        cp_error(std::string("run: ") + e.what());
      }
      have_run = true;
    } else if (key == "pins") {
      if (!value.is_array()) cp_error("pins must be an array");
      const JsonValue::Array& pins = value.as_array();
      cp.pins.reserve(pins.size());
      for (std::size_t i = 0; i < pins.size(); ++i) cp.pins.push_back(parse_pin(pins[i], i));
    } else {
      cp_error("unknown key '" + key + "'");
    }
  }
  if (!have_format) cp_error("missing \"format\"");
  if (!have_time) cp_error("missing \"time\"");
  if (!have_run) cp_error("missing \"run\"");
  return cp;
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot read checkpoint '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  try {
    return parse_checkpoint_json(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

ReplayRun start_replay_run(const RunSpec& spec, const SimulationConfig& base) {
  if (spec.arrivals > 0.0) {
    cp_error("multi-tenant runs (arrivals > 0) cannot be checkpointed or branched");
  }
  SimulationConfig cfg = make_simulation_config(spec);
  // Observability is output routing, inert to the event sequence — copy
  // whatever the caller wants, then force the audit on: the decision log
  // IS the replay layer's state.
  cfg.enable_trace = base.enable_trace;
  cfg.enable_metrics = base.enable_metrics;
  cfg.enable_spans = base.enable_spans;
  cfg.enable_analysis = base.enable_analysis;
  cfg.enable_audit = true;
  ReplayRun run;
  run.sim = std::make_unique<Simulation>(cfg);
  run.app = std::make_unique<Application>(make_run_application(spec, *run.sim));
  run.sim->begin(*run.app);
  return run;
}

Checkpoint capture_checkpoint(const RunSpec& spec, SimTime t, ReplayRun* keep_run) {
  Checkpoint cp;
  cp.run = spec;
  // Resolve a fleet path into the embedded spec so the checkpoint stays
  // restorable when the referenced file moves or changes.
  if (!cp.run.fleet.empty()) {
    cp.run.fleet_spec = load_fleet_file(cp.run.fleet);
    cp.run.fleet.clear();
  }
  cp.time = t;
  ReplayRun run = start_replay_run(cp.run);
  run.sim->advance_until(t);
  cp.pins = pin_prefix(*run.sim->audit(), t);
  if (keep_run != nullptr) *keep_run = std::move(run);
  return cp;
}

ReplayRun restore_checkpoint(const Checkpoint& cp, const SimulationConfig& base) {
  ReplayRun run = start_replay_run(cp.run, base);
  run.sim->advance_until(cp.time);
  std::vector<DecisionPin> got = pin_prefix(*run.sim->audit(), cp.time);
  if (got.size() != cp.pins.size()) {
    cp_error("restore diverged: replay made " + std::to_string(got.size()) +
             " decisions by t=" + std::to_string(cp.time) + ", checkpoint pinned " +
             std::to_string(cp.pins.size()) +
             " — the binary no longer reproduces this run");
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!(got[i] == cp.pins[i])) {
      cp_error("restore diverged at decision " + std::to_string(i) + ": replay launched (stage " +
               std::to_string(got[i].stage) + ", task " + std::to_string(got[i].task) +
               ", attempt " + std::to_string(got[i].attempt) + ") on node " +
               std::to_string(got[i].node) + ", checkpoint pinned node " +
               std::to_string(cp.pins[i].node));
    }
  }
  return run;
}

}  // namespace rupam
