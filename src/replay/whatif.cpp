#include "replay/whatif.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/json_reader.hpp"
#include "common/json_writer.hpp"
#include "sweep/sweep_spec.hpp"
#include "sweep/work_queue.hpp"

namespace rupam {

namespace {

[[noreturn]] void whatif_error(const std::string& message) {
  throw std::runtime_error("whatif: " + message);
}

long long require_integer(const JsonValue& v, const std::string& what) {
  if (!v.is_number()) whatif_error(what + " must be a number");
  double d = v.as_number();
  if (d != std::floor(d)) whatif_error(what + " must be an integer");
  return static_cast<long long>(d);
}

DiagnosedStraggler parse_straggler(const JsonValue& v, std::size_t index) {
  const std::string what = "stragglers[" + std::to_string(index) + "]";
  if (!v.is_object()) whatif_error(what + " must be an object");
  DiagnosedStraggler s;
  for (const auto& [key, value] : v.as_object()) {
    if (key == "stage") {
      s.stage = static_cast<StageId>(require_integer(value, what + ".stage"));
    } else if (key == "task") {
      s.task = static_cast<TaskId>(require_integer(value, what + ".task"));
    } else if (key == "attempt") {
      s.attempt = static_cast<AttemptId>(require_integer(value, what + ".attempt"));
    } else if (key == "node") {
      s.node = static_cast<NodeId>(require_integer(value, what + ".node"));
    } else if (key == "duration") {
      if (!value.is_number()) whatif_error(what + ".duration must be a number");
      s.duration = value.as_number();
    } else if (key == "stage_median") {
      if (!value.is_number()) whatif_error(what + ".stage_median must be a number");
      s.stage_median = value.as_number();
    } else if (key == "cause") {
      if (!value.is_string()) whatif_error(what + ".cause must be a string");
      s.cause = value.as_string();
    } else if (key == "detail") {
      if (!value.is_string()) whatif_error(what + ".detail must be a string");
      s.detail = value.as_string();
    } else if (key == "node_class" || key == "ratio") {
      // Present in the document, irrelevant to branch generation.
    } else {
      whatif_error(what + ": unknown key '" + key + "'");
    }
  }
  if (s.cause.empty()) whatif_error(what + " missing \"cause\"");
  return s;
}

double excess(const DiagnosedStraggler& s) {
  return std::max(0.0, s.duration - s.stage_median);
}

/// The fleet's fastest node by cpu_perf (ties to the lowest id) — the
/// slow-node counterfactual target.
NodeId best_cpu_node(const RunSpec& spec) {
  SimulationConfig cfg = make_simulation_config(spec);
  std::vector<NodeSpec> nodes =
      cfg.nodes.empty() ? generate_fleet(hydra_fleet_spec()) : cfg.nodes;
  NodeId best = 0;
  double best_perf = -1.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].cpu_perf > best_perf) {
      best_perf = nodes[i].cpu_perf;
      best = static_cast<NodeId>(i);
    }
  }
  return best;
}

BranchSpec scheduler_branch(SchedulerKind kind) {
  BranchSpec b;
  b.kind = BranchKind::kScheduler;
  b.scheduler = kind;
  b.label = "scheduler=" + std::string(scheduler_cli_name(kind));
  return b;
}

BranchSpec suppress_branch(const std::string& kind_token) {
  BranchSpec b = parse_branch_spec("suppress:kind=" + kind_token);
  return b;
}

BranchSpec override_branch(const DiagnosedStraggler& s, NodeId target) {
  std::ostringstream label;
  label << "node:stage=" << s.stage << ":task=" << s.task << ":node=" << target;
  if (s.attempt != 0) label << ":attempt=" << s.attempt;
  return parse_branch_spec(label.str());
}

std::string blame(const DiagnosedStraggler& s) {
  std::ostringstream os;
  os << s.cause << ": task " << s.task << " of stage " << s.stage << " on node " << s.node
     << " ran " << json_number(s.duration, 3) << "s vs stage median "
     << json_number(s.stage_median, 3) << "s";
  return os.str();
}

}  // namespace

std::vector<DiagnosedStraggler> parse_diagnosis_stragglers(const std::string& text) {
  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const JsonParseError& e) {
    whatif_error(e.what());
  }
  if (!doc.is_object()) whatif_error("diagnosis must be an object");
  const JsonValue* stragglers = doc.find("stragglers");
  if (stragglers == nullptr) whatif_error("diagnosis has no \"stragglers\" array");
  if (!stragglers->is_array()) whatif_error("\"stragglers\" must be an array");
  std::vector<DiagnosedStraggler> out;
  const JsonValue::Array& rows = stragglers->as_array();
  out.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) out.push_back(parse_straggler(rows[i], i));
  return out;
}

std::vector<std::pair<BranchSpec, std::string>> propose_branches(
    const RunSpec& spec, const std::vector<DiagnosedStraggler>& stragglers,
    std::size_t max_candidates) {
  // Rank causes by their total excess time over the stage median — the
  // seconds the run demonstrably lost to each cause.
  std::map<std::string, double> cause_excess;
  std::map<std::string, const DiagnosedStraggler*> cause_worst;
  for (const DiagnosedStraggler& s : stragglers) {
    cause_excess[s.cause] += excess(s);
    const DiagnosedStraggler*& worst = cause_worst[s.cause];
    if (worst == nullptr || excess(s) > excess(*worst)) worst = &s;
  }
  std::vector<std::pair<std::string, double>> causes(cause_excess.begin(), cause_excess.end());
  std::stable_sort(causes.begin(), causes.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });

  std::vector<std::pair<BranchSpec, std::string>> proposals;
  auto add = [&proposals](BranchSpec b, std::string motivation) {
    for (const auto& [existing, why] : proposals) {
      (void)why;
      if (existing.label == b.label) return;  // dedupe, first motivation wins
    }
    proposals.emplace_back(std::move(b), std::move(motivation));
  };

  for (const auto& [cause, total] : causes) {
    (void)total;
    const DiagnosedStraggler& worst = *cause_worst[cause];
    if (cause == "slow_node_class") {
      // The paper's Fig 3 case: redirect the blamed dispatch to the
      // fastest node, and let RUPAM make that choice everywhere.
      add(override_branch(worst, best_cpu_node(spec)), blame(worst));
      if (spec.scheduler != SchedulerKind::kRupam) {
        add(scheduler_branch(SchedulerKind::kRupam), blame(worst));
      }
    } else if (cause == "node_fault") {
      add(suppress_branch("crash"), blame(worst));
    } else if (cause == "spot_drain") {
      add(suppress_branch("spot"), blame(worst));
    } else if (spec.scheduler != SchedulerKind::kRupam) {
      // gc_pressure / shuffle_skew / gpu_contention / pool_preemption /
      // blacklist_rebound / unknown: placement-quality causes RUPAM's
      // heterogeneity awareness addresses wholesale.
      add(scheduler_branch(SchedulerKind::kRupam), blame(worst));
    }
  }
  // Always offer the classic list-scheduling yardstick.
  if (spec.scheduler != SchedulerKind::kHeft) {
    add(scheduler_branch(SchedulerKind::kHeft), "baseline: upward-rank list scheduling");
  }
  if (proposals.size() > max_candidates) proposals.resize(max_candidates);
  return proposals;
}

WhatIfReport advise_whatif(const RunSpec& spec, const std::vector<DiagnosedStraggler>& stragglers,
                           const WhatIfConfig& config) {
  WhatIfReport report;
  report.base = run_base(spec, config.analyze_k);
  auto proposals = propose_branches(spec, stragglers, config.max_candidates);

  // Branch replays are independent cells — same worker-pool shape as the
  // sweep engine, with results written into pre-sized slots so thread
  // scheduling cannot reorder the aggregation.
  std::vector<WhatIfFinding> findings(proposals.size());
  std::vector<std::exception_ptr> errors(proposals.size());
  WorkQueue<std::size_t> queue;
  for (std::size_t i = 0; i < proposals.size(); ++i) queue.push(i);
  queue.close();
  unsigned hw = std::thread::hardware_concurrency();
  std::size_t workers = config.threads > 0 ? static_cast<std::size_t>(config.threads)
                                           : static_cast<std::size_t>(hw != 0 ? hw : 1);
  workers = std::min(workers, proposals.size());
  workers = std::max<std::size_t>(workers, proposals.empty() ? 0 : 1);
  auto worker = [&] {
    std::size_t index = 0;
    while (queue.pop(index)) {
      try {
        WhatIfFinding& f = findings[index];
        f.branch = proposals[index].first;
        f.motivation = proposals[index].second;
        f.outcome = run_branch_side(spec, f.branch, config.analyze_k);
        f.p95_jct_saving = report.base.jct.p95 - f.outcome.jct.p95;
        f.makespan_saving = report.base.makespan - f.outcome.makespan;
      } catch (...) {
        errors[index] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  std::stable_sort(findings.begin(), findings.end(), [](const WhatIfFinding& a,
                                                        const WhatIfFinding& b) {
    if (a.p95_jct_saving != b.p95_jct_saving) return a.p95_jct_saving > b.p95_jct_saving;
    if (a.makespan_saving != b.makespan_saving) return a.makespan_saving > b.makespan_saving;
    return a.branch.label < b.branch.label;
  });
  report.findings = std::move(findings);
  return report;
}

void write_whatif_json(const WhatIfReport& report, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.key("base");
  w.raw(outcome_to_json(report.base).substr(0, outcome_to_json(report.base).size() - 1));
  w.key("candidates").begin_array();
  for (const WhatIfFinding& f : report.findings) {
    w.begin_object();
    w.key("branch").value(f.branch.label);
    w.key("motivation").value(f.motivation);
    w.key("p95_jct_saving_s").raw(json_number(f.p95_jct_saving, 12));
    w.key("makespan_saving_s").raw(json_number(f.makespan_saving, 12));
    w.key("outcome");
    std::string rendered = outcome_to_json(f.outcome);
    while (!rendered.empty() && rendered.back() == '\n') rendered.pop_back();
    w.raw(rendered);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

}  // namespace rupam
