// What-if advisor: from a post-run diagnosis (obs/analyzer, --analyze),
// pick the top straggler causes, generate counterfactual branches that
// would have removed them, replay each branch (sweep-style worker pool —
// every branch is one independent cell), and rank the interventions by
// how many seconds of p95 JCT they would have saved:
//
//   slow_node_class → redirect the blamed dispatch to the fastest node,
//                     and swap the scheduler to RUPAM (heterogeneity-
//                     aware placement is the paper's fix for exactly
//                     this cause)
//   node_fault      → suppress:kind=crash        (what if it hadn't died?)
//   spot_drain      → suppress:kind=spot
//   gpu_contention / gc_pressure / shuffle_skew / pool_preemption /
//   blacklist_rebound / unknown → scheduler=rupam
//   always          → scheduler=heft as the list-scheduling yardstick
//
// Deterministic: candidate order, seeds and aggregation are fixed by the
// diagnosis content, so the same (diagnosis, RunSpec) always produces the
// same ranked report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "replay/branch.hpp"

namespace rupam {

/// One straggler row of a diagnosis document (the replay-relevant
/// projection of obs::StragglerReport, parsed back from its JSON form).
struct DiagnosedStraggler {
  StageId stage = -1;
  TaskId task = -1;
  AttemptId attempt = 0;
  NodeId node = kInvalidNode;
  double duration = 0.0;
  double stage_median = 0.0;
  std::string cause;  // machine token, e.g. "slow_node_class"
  std::string detail;
};

/// Parse the "stragglers" array out of a --analyze JSON document; throws
/// std::runtime_error on malformed input.
std::vector<DiagnosedStraggler> parse_diagnosis_stragglers(const std::string& text);

struct WhatIfConfig {
  /// Replay at most this many counterfactual branches (deduped by label).
  std::size_t max_candidates = 6;
  /// Worker threads for branch replays; 0 = hardware concurrency.
  int threads = 0;
  double analyze_k = 1.5;
};

/// One candidate intervention: the branch, why it was generated, and what
/// it would have changed.
struct WhatIfFinding {
  BranchSpec branch;
  std::string motivation;  // cause token + blamed decision
  RunOutcome outcome;
  double p95_jct_saving = 0.0;  // base p95 - branch p95 (positive = faster)
  double makespan_saving = 0.0;
};

struct WhatIfReport {
  RunOutcome base;
  /// Ranked best-first by p95 JCT saving (ties: makespan saving, label).
  std::vector<WhatIfFinding> findings;
};

/// Candidate generation only (exposed for tests): stragglers → deduped,
/// capped branch list with motivations, ordered by the causes' total
/// excess time. `spec` supplies the base scheduler and fleet (the
/// slow-node target is the fleet's best cpu_perf node).
std::vector<std::pair<BranchSpec, std::string>> propose_branches(
    const RunSpec& spec, const std::vector<DiagnosedStraggler>& stragglers,
    std::size_t max_candidates);

/// Full advisor: base run + every proposed branch on a worker pool.
WhatIfReport advise_whatif(const RunSpec& spec, const std::vector<DiagnosedStraggler>& stragglers,
                           const WhatIfConfig& config = {});

/// {"base": {...}, "candidates": [{"branch", "kind", "motivation",
/// "p95_jct_saving_s", "makespan_saving_s", "outcome": {...}}, ...]}
/// ranked best-first.
void write_whatif_json(const WhatIfReport& report, std::ostream& os);

}  // namespace rupam
