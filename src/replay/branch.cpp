#include "replay/branch.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/json_writer.hpp"
#include "faults/fault_plan.hpp"
#include "obs/analyzer.hpp"

namespace rupam {

namespace {

[[noreturn]] void branch_error(const std::string& message) {
  throw std::runtime_error("branch spec: " + message);
}

std::vector<std::string> split_fields(const std::string& text) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(text);
  while (std::getline(ss, field, ':')) fields.push_back(field);
  return fields;
}

/// "key=value" → (key, value); throws when there is no '='.
std::pair<std::string, std::string> split_kv(const std::string& field) {
  std::size_t eq = field.find('=');
  if (eq == std::string::npos || eq == 0) {
    branch_error("expected key=value, got '" + field + "'");
  }
  return {field.substr(0, eq), field.substr(eq + 1)};
}

long long parse_ll(const std::string& value, const std::string& what) {
  try {
    std::size_t pos = 0;
    long long v = std::stoll(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    branch_error(what + " must be an integer, got '" + value + "'");
  }
}

FaultKind fault_kind_from_name(const std::string& name) {
  if (name == "crash") return FaultKind::kCrash;
  if (name == "slow") return FaultKind::kSlowdown;
  if (name == "hbdrop") return FaultKind::kHeartbeatDrop;
  if (name == "degrade") return FaultKind::kDiskDegrade;
  if (name == "spot") return FaultKind::kSpotRevoke;
  branch_error("unknown fault kind '" + name + "' (expected crash|slow|hbdrop|degrade|spot)");
}

BranchSpec parse_node_override(const std::vector<std::string>& fields, const std::string& text) {
  BranchSpec spec;
  spec.kind = BranchKind::kNodeOverride;
  spec.label = text;
  bool have_stage = false, have_task = false, have_node = false;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    auto [key, value] = split_kv(fields[i]);
    if (key == "stage") {
      spec.stage = static_cast<StageId>(parse_ll(value, "stage"));
      have_stage = true;
    } else if (key == "task") {
      spec.task = static_cast<TaskId>(parse_ll(value, "task"));
      have_task = true;
    } else if (key == "node") {
      spec.node = static_cast<NodeId>(parse_ll(value, "node"));
      have_node = true;
    } else if (key == "attempt") {
      spec.attempt = static_cast<AttemptId>(parse_ll(value, "attempt"));
    } else {
      branch_error("unknown node-override key '" + key + "'");
    }
  }
  if (!have_stage || !have_task || !have_node) {
    branch_error("node override needs stage=, task= and node=");
  }
  if (spec.node < 0) branch_error("node must be >= 0");
  return spec;
}

BranchSpec parse_suppress(const std::vector<std::string>& fields, const std::string& text) {
  BranchSpec spec;
  spec.kind = BranchKind::kSuppressFault;
  spec.label = text;
  bool have_kind = false;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    auto [key, value] = split_kv(fields[i]);
    if (key == "kind") {
      spec.fault = fault_kind_from_name(value);
      have_kind = true;
    } else if (key == "node") {
      spec.fault_node = static_cast<NodeId>(parse_ll(value, "node"));
    } else {
      branch_error("unknown suppress key '" + key + "'");
    }
  }
  if (!have_kind) branch_error("suppress needs kind=");
  return spec;
}

/// Build the intervened run: spec's config + forced replay observability
/// (analysis outputs are the whole point of a branch) + the optional
/// pre-begin hook that installs the dispatch interceptor.
ReplayRun launch_with(const RunSpec& spec, SimulationConfig cfg,
                      const std::function<void(Simulation&)>& prepare) {
  if (spec.arrivals > 0.0) {
    throw std::runtime_error("branch: multi-tenant runs (arrivals > 0) cannot be branched");
  }
  cfg.enable_audit = true;
  cfg.enable_spans = true;
  cfg.enable_trace = true;
  cfg.enable_analysis = true;
  ReplayRun run;
  run.sim = std::make_unique<Simulation>(cfg);
  if (prepare) prepare(*run.sim);
  run.app = std::make_unique<Application>(make_run_application(spec, *run.sim));
  run.sim->begin(*run.app);
  return run;
}

void write_outcome(const RunOutcome& o, JsonWriter& w) {
  w.begin_object();
  w.key("makespan_s").raw(json_number(o.makespan, 12));
  w.key("jct_mean_s").raw(json_number(o.jct.mean, 12));
  w.key("jct_p50_s").raw(json_number(o.jct.p50, 12));
  w.key("jct_p95_s").raw(json_number(o.jct.p95, 12));
  w.key("jct_p99_s").raw(json_number(o.jct.p99, 12));
  w.key("jct_max_s").raw(json_number(o.jct.max, 12));
  w.key("jct_queueing_s").raw(json_number(o.jct.mean_queueing, 12));
  w.key("stragglers").value(static_cast<unsigned long long>(o.stragglers));
  w.key("task_launches").value(static_cast<unsigned long long>(o.launches));
  w.key("task_failures").value(static_cast<unsigned long long>(o.failures));
  w.key("oom_kills").value(static_cast<unsigned long long>(o.oom_kills));
  w.key("executor_losses").value(static_cast<unsigned long long>(o.executor_losses));
  w.key("relocations").value(static_cast<unsigned long long>(o.relocations));
  w.key("recomputed_partitions").value(static_cast<unsigned long long>(o.recomputed_partitions));
  w.end_object();
}

std::string_view kind_name(BranchKind kind) {
  switch (kind) {
    case BranchKind::kNodeOverride: return "node_override";
    case BranchKind::kScheduler: return "scheduler";
    case BranchKind::kSuppressFault: return "suppress_fault";
  }
  return "?";
}

}  // namespace

RunOutcome summarize_outcome(Simulation& sim, SimTime makespan, double analyze_k) {
  RunOutcome o;
  o.scheduler = sim.scheduler().name();
  o.makespan = makespan;
  RunArtifacts artifacts = sim.run_artifacts();
  o.jct = summarize_jct(artifacts.jobs);
  AnalyzerConfig acfg;
  acfg.straggler_k = analyze_k;
  o.stragglers = analyze_run(artifacts, acfg).stragglers.size();
  o.launches = sim.audit()->size();
  o.failures = sim.scheduler().failures().size();
  o.oom_kills = sim.total_oom_kills();
  o.executor_losses = sim.total_executor_losses();
  o.relocations = sim.scheduler().relocations();
  o.recomputed_partitions = sim.recomputed_partitions();
  return o;
}

BranchSpec parse_branch_spec(const std::string& text) {
  if (text.empty()) branch_error("empty spec");
  std::vector<std::string> fields = split_fields(text);
  if (fields.empty()) branch_error("empty spec");
  const std::string& head = fields[0];
  if (head == "node") return parse_node_override(fields, text);
  if (head == "suppress") return parse_suppress(fields, text);
  if (head.rfind("scheduler=", 0) == 0) {
    if (fields.size() != 1) branch_error("scheduler= takes no further fields");
    BranchSpec spec;
    spec.kind = BranchKind::kScheduler;
    spec.label = text;
    std::string name = head.substr(std::string("scheduler=").size());
    auto kind = scheduler_kind_from_name(name);
    if (!kind) branch_error("unknown scheduler '" + name + "'");
    spec.scheduler = *kind;
    return spec;
  }
  branch_error("expected node:..., scheduler=NAME, or suppress:... (got '" + head + "')");
}

std::string outcome_to_json(const RunOutcome& outcome) {
  std::ostringstream os;
  JsonWriter w(os);
  write_outcome(outcome, w);
  os << "\n";
  return os.str();
}

RunOutcome run_base(const RunSpec& spec, double analyze_k) {
  ReplayRun run = launch_with(spec, make_simulation_config(spec), nullptr);
  SimTime makespan = run.sim->finish();
  return summarize_outcome(*run.sim, makespan, analyze_k);
}

RunOutcome run_branch_side(const RunSpec& spec, const BranchSpec& branch, double analyze_k) {
  SimulationConfig cfg = make_simulation_config(spec);
  std::function<void(Simulation&)> prepare;
  switch (branch.kind) {
    case BranchKind::kScheduler:
      cfg.scheduler = branch.scheduler;
      break;
    case BranchKind::kNodeOverride:
      prepare = [b = branch](Simulation& sim) {
        // One-shot: mark applied on the first (stage, task, attempt)
        // match whether or not the forced launch sticks — a dead target
        // node must not pin every retry into a livelock.
        auto applied = std::make_shared<bool>(false);
        sim.set_dispatch_interceptor(
            [b, applied](StageId stage, TaskId task, AttemptId attempt,
                         NodeId chosen) -> std::optional<NodeId> {
              if (*applied) return std::nullopt;
              if (stage != b.stage || task != b.task || attempt != b.attempt) {
                return std::nullopt;
              }
              *applied = true;
              if (chosen == b.node) return std::nullopt;  // counterfactual == factual
              return b.node;
            });
      };
      break;
    case BranchKind::kSuppressFault: {
      // Expand the seeded chaos plan into explicit events so they are
      // filterable, then drop everything the branch suppresses. With
      // nothing suppressed this reproduces the base plan bit for bit
      // (same merge order and sort the Simulation constructor applies).
      FaultPlan plan = cfg.faults;
      if (cfg.chaos_seed != 0) {
        FaultPlan chaos = make_chaos_plan(cfg.chaos_seed, static_cast<int>(cfg.nodes.empty()
                                                                               ? 12
                                                                               : cfg.nodes.size()),
                                          cfg.chaos_horizon);
        plan.events.insert(plan.events.end(), chaos.events.begin(), chaos.events.end());
        cfg.chaos_seed = 0;
      }
      plan.events.erase(
          std::remove_if(plan.events.begin(), plan.events.end(),
                         [&branch](const FaultEvent& e) {
                           return e.kind == branch.fault &&
                                  (branch.fault_node == kInvalidNode ||
                                   e.node == branch.fault_node);
                         }),
          plan.events.end());
      plan.sort();
      cfg.faults = std::move(plan);
      break;
    }
  }
  ReplayRun run = launch_with(spec, std::move(cfg), prepare);
  SimTime makespan = run.sim->finish();
  return summarize_outcome(*run.sim, makespan, analyze_k);
}

BranchReport run_branch(const RunSpec& spec, const BranchSpec& branch, const RunOutcome* base,
                        double analyze_k) {
  BranchReport report;
  report.spec = branch;
  report.base = base != nullptr ? *base : run_base(spec, analyze_k);
  report.branch = run_branch_side(spec, branch, analyze_k);
  report.comparison =
      compare_json_text(outcome_to_json(report.base), outcome_to_json(report.branch));
  return report;
}

void write_branch_report_json(const BranchReport& report, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.key("branch").value(report.spec.label);
  w.key("kind").value(kind_name(report.spec.kind));
  w.key("base_scheduler").value(report.base.scheduler);
  w.key("branch_scheduler").value(report.branch.scheduler);
  w.key("p95_jct_saving_s").raw(json_number(report.p95_jct_saving(), 12));
  w.key("makespan_saving_s").raw(json_number(report.makespan_saving(), 12));
  w.key("base");
  write_outcome(report.base, w);
  w.key("branch_run");
  write_outcome(report.branch, w);
  std::ostringstream comparison;
  write_comparison_json(report.comparison, comparison);
  std::string rendered = comparison.str();
  while (!rendered.empty() && (rendered.back() == '\n' || rendered.back() == ' ')) {
    rendered.pop_back();
  }
  w.key("comparison").raw(rendered);
  w.end_object();
  os << "\n";
}

}  // namespace rupam
