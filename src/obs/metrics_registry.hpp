// MetricsRegistry — labeled counters, gauges and histograms with
// Prometheus-text and JSON exposition (DESIGN.md §8 lists the full metric
// catalog). The simulator's equivalent of a /metrics endpoint: every
// subsystem (DAG scheduler, task scheduler, cluster, executors, fault
// injector) increments its series here when a registry is attached, and
// `rupam_sim --metrics-out` dumps the exposition after the run.
//
// Series handles are stable pointers: instrumented hot paths resolve
// their (name, labels) series once and bump a double thereafter, so the
// per-event cost is an indirection and an add — and exactly zero when no
// registry is attached (all instrumentation is pointer-gated).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace rupam {

/// A label set, e.g. {{"locality", "NODE_LOCAL"}}. Order is preserved in
/// the exposition; keep it consistent per metric family.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  /// `bounds` are upper bucket bounds, ascending; an implicit +Inf bucket
  /// is always present.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i].
  std::vector<std::uint64_t> cumulative_counts() const;
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> per_bucket_;  // bounds_.size() + 1 (+Inf last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Get-or-create a series. `help` is recorded on first use of the family
  /// name. Returned references are stable for the registry's lifetime.
  /// Throws std::invalid_argument on a malformed metric/label name.
  Counter& counter(const std::string& name, const MetricLabels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const MetricLabels& labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const MetricLabels& labels = {}, const std::string& help = "");

  /// Series registered so far (families x label sets).
  std::size_t series_count() const;

  /// Prometheus text exposition format v0.0.4: # HELP / # TYPE headers,
  /// one sample line per series, histograms expanded into _bucket/_sum/
  /// _count. Families and label sets are emitted in lexicographic order,
  /// so the output is deterministic.
  void write_prometheus(std::ostream& os) const;

  /// The same data as a JSON object keyed by family name: each family has
  /// "type", "help", and "series" (label object + value / histogram data).
  void write_json(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    MetricLabels labels;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    /// Keyed by the rendered label string for cheap get-or-create.
    std::map<std::string, Series> series;
  };

  Family& family(const std::string& name, Kind kind, const std::string& help);
  static std::string render_labels(const MetricLabels& labels);

  std::map<std::string, Family> families_;
};

}  // namespace rupam
