// Task-phase spans — per-attempt duration events covering the executor's
// phase machine (queued → input read → shuffle read → compute (+GC) →
// shuffle write (+spill) → output send), exported as a Perfetto/Chrome
// "Trace Event Format" JSON with one process per node, greedy per-node
// lanes, and flow arrows from map-stage attempts to the reduce-stage
// attempts that fetch their shuffle output.
//
// TaskExecution records spans when an SpanTrace is attached to its
// executor (`rupam_sim --trace-perfetto`); recording never schedules
// simulator events, so flags-off runs are bit-identical.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rupam {

enum class TaskPhase : std::uint8_t {
  kQueued = 0,       // submit → launch (scheduler delay)
  kInputRead,        // HDFS / cache input
  kShuffleDiskRead,  // local map-output read
  kShuffleNetRead,   // remote map-output fetch
  kCompute,          // CPU or GPU service (GC nested at the tail)
  kGc,               // GC wall time (tail of compute, or cache-churn GC)
  kShuffleWrite,     // map-output write (includes spill merge I/O)
  kSpill,            // portion of the write attributable to spilled bytes
  kOutputSend,       // result send to the driver / next stage
};
inline constexpr int kNumTaskPhases = 9;

std::string_view to_string(TaskPhase phase);

struct PhaseSpan {
  SimTime start = 0.0;
  SimTime end = 0.0;
  TaskPhase phase = TaskPhase::kQueued;
  StageId stage = -1;
  TaskId task = -1;
  AttemptId attempt = 0;
  NodeId node = kInvalidNode;
  /// Phase-specific magnitude: bytes moved for I/O phases, GC seconds for
  /// kGc, scheduler-delay seconds for kQueued.
  double arg = 0.0;
  /// The attempt was killed mid-phase (OOM, executor loss, relocation).
  bool truncated = false;
};

class SpanTrace {
 public:
  void record(PhaseSpan span) { spans_.push_back(span); }

  /// Shuffle topology for flow arrows: `parents` are the map stages whose
  /// output `stage` fetches. Registered by the Simulation from the DAG.
  void set_stage_parents(StageId stage, std::vector<StageId> parents);

  const std::vector<PhaseSpan>& spans() const { return spans_; }
  std::size_t count(TaskPhase phase) const;
  bool empty() const { return spans_.empty(); }

  /// Chrome "Trace Event Format" JSON loadable in Perfetto: "M" process
  /// metadata per node, nested "X" slices (attempt → phases), and legacy
  /// flow events ("s"/"f" with bp:"e") from each parent stage's
  /// latest-finishing attempt to every child attempt's first shuffle-read
  /// span.
  void write_perfetto(std::ostream& os) const;

 private:
  std::vector<PhaseSpan> spans_;
  std::map<StageId, std::vector<StageId>> stage_parents_;
};

}  // namespace rupam
