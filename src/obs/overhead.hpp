// Overhead profiler — host wall-clock (steady_clock) timing of the
// scheduler's own decision path, separate from simulated time. Reproduces
// the paper's "negligible scheduling overhead" claim: bench/sched_overhead
// runs every scheduler under the same workload and reports mean
// nanoseconds per dispatch round / per launch from these stats.
//
// Scopes are null-safe RAII: with no profiler attached the hot path pays
// a single pointer test and no clock reads.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace rupam {

enum class ProfileSection : std::uint8_t {
  kDispatch = 0,      // one try_dispatch round (the decision path)
  kHeapMaintenance,   // RUPAM ResourceMonitor heap rebuilds / reorders
  kHeartbeat,         // scheduler-side heartbeat processing
  kEnqueue,           // taskset submission / characterization
};
inline constexpr int kNumProfileSections = 4;

std::string_view to_string(ProfileSection section);

struct SectionStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  double mean_ns() const { return count == 0 ? 0.0 : static_cast<double>(total_ns) / count; }
};

class OverheadProfiler {
 public:
  /// RAII timing scope. Null profiler → no clock reads.
  class Scope {
   public:
    Scope(OverheadProfiler* profiler, ProfileSection section)
        : profiler_(profiler), section_(section) {
      if (profiler_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (profiler_ == nullptr) return;
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
      profiler_->add(section_, static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    OverheadProfiler* profiler_;
    ProfileSection section_;
    std::chrono::steady_clock::time_point start_;
  };

  void add(ProfileSection section, std::uint64_t ns) {
    SectionStats& s = sections_[static_cast<std::size_t>(section)];
    s.count += 1;
    s.total_ns += ns;
    if (ns > s.max_ns) s.max_ns = ns;
  }

  const SectionStats& section(ProfileSection section) const {
    return sections_[static_cast<std::size_t>(section)];
  }

  void reset() { sections_ = {}; }

 private:
  std::array<SectionStats, kNumProfileSections> sections_{};
};

}  // namespace rupam
