// Overhead profiler — host wall-clock (steady_clock) timing of the
// scheduler's own decision path, separate from simulated time. Reproduces
// the paper's "negligible scheduling overhead" claim: bench/sched_overhead
// runs every scheduler under the same workload and reports mean
// nanoseconds per dispatch round / per launch from these stats.
//
// Scopes are null-safe RAII: with no profiler attached the hot path pays
// a single pointer test and no clock reads.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace rupam {

enum class ProfileSection : std::uint8_t {
  kDispatch = 0,      // one try_dispatch round (the decision path)
  kHeapMaintenance,   // RUPAM ResourceMonitor heap rebuilds / reorders
  kHeartbeat,         // scheduler-side heartbeat processing
  kEnqueue,           // taskset submission / characterization
};
inline constexpr int kNumProfileSections = 4;

std::string_view to_string(ProfileSection section);

struct SectionStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  double mean_ns() const { return count == 0 ? 0.0 : static_cast<double>(total_ns) / count; }
};

/// Heap-allocation accounting for try_dispatch rounds, split by outcome.
/// Scan rounds (no task launched) are the steady state the zero-allocation
/// gate covers; launch rounds legitimately allocate (the attempt's
/// TaskExecution and completion callbacks outlive the round).
struct AllocStats {
  std::uint64_t scan_rounds = 0;
  std::uint64_t scan_allocs = 0;
  std::uint64_t launch_rounds = 0;
  std::uint64_t launch_allocs = 0;

  std::uint64_t rounds() const { return scan_rounds + launch_rounds; }
  double scan_allocs_per_round() const {
    return scan_rounds == 0 ? 0.0 : static_cast<double>(scan_allocs) / scan_rounds;
  }
  double launch_allocs_per_round() const {
    return launch_rounds == 0 ? 0.0 : static_cast<double>(launch_allocs) / launch_rounds;
  }
};

class OverheadProfiler {
 public:
  /// RAII timing scope. Null profiler → no clock reads.
  class Scope {
   public:
    Scope(OverheadProfiler* profiler, ProfileSection section)
        : profiler_(profiler), section_(section) {
      if (profiler_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (profiler_ == nullptr) return;
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
      profiler_->add(section_, static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    OverheadProfiler* profiler_;
    ProfileSection section_;
    std::chrono::steady_clock::time_point start_;
  };

  void add(ProfileSection section, std::uint64_t ns) {
    SectionStats& s = sections_[static_cast<std::size_t>(section)];
    s.count += 1;
    s.total_ns += ns;
    if (ns > s.max_ns) s.max_ns = ns;
  }

  const SectionStats& section(ProfileSection section) const {
    return sections_[static_cast<std::size_t>(section)];
  }

  /// Process-wide allocation counter hook (bench-provided: a replaced
  /// operator new bumping a counter). Unset in normal runs — the dispatch
  /// path then skips allocation accounting entirely.
  using AllocCounterFn = std::uint64_t (*)();
  void set_alloc_counter(AllocCounterFn fn) { alloc_counter_ = fn; }
  bool counting_allocs() const { return alloc_counter_ != nullptr; }
  std::uint64_t read_allocs() const { return alloc_counter_(); }

  /// Rounds to exclude from allocation accounting before stats accumulate.
  /// Scratch buffers grow to their high-water capacity over a run's early
  /// rounds; the zero-allocation gate covers the steady state after them.
  void set_alloc_warmup(std::uint64_t rounds) { alloc_warmup_remaining_ = rounds; }

  /// One try_dispatch round's allocation delta, classified by whether the
  /// round launched anything.
  void note_dispatch_allocs(bool launched, std::uint64_t allocs) {
    if (alloc_warmup_remaining_ > 0) {
      --alloc_warmup_remaining_;
      return;
    }
    if (launched) {
      allocs_.launch_rounds += 1;
      allocs_.launch_allocs += allocs;
    } else {
      allocs_.scan_rounds += 1;
      allocs_.scan_allocs += allocs;
    }
  }
  const AllocStats& alloc_stats() const { return allocs_; }

  void reset() {
    sections_ = {};
    allocs_ = {};
  }

 private:
  std::array<SectionStats, kNumProfileSections> sections_{};
  AllocStats allocs_{};
  AllocCounterFn alloc_counter_ = nullptr;
  std::uint64_t alloc_warmup_remaining_ = 0;
};

}  // namespace rupam
