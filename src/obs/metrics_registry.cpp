#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/json_writer.hpp"

namespace rupam {
namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto ok_first = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!ok_first(name[0])) return false;
  return std::all_of(name.begin(), name.end(), [&](char c) {
    return ok_first(c) || (c >= '0' && c <= '9');
  });
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  auto ok_first = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!ok_first(name[0])) return false;
  return std::all_of(name.begin(), name.end(), [&](char c) {
    return ok_first(c) || (c >= '0' && c <= '9');
  });
}

/// Prometheus label values escape \, ", and newline.
std::string escape_label_value(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string format_value(double v) {
  if (v == std::numeric_limits<double>::infinity()) return "+Inf";
  // Integral values (the common case for counters) print without a
  // fraction; everything else uses shortest-ish %g.
  double rounded = std::nearbyint(v);
  if (v == rounded && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(rounded));
  }
  return json_number(v, 9);
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  // Strictly ascending and finite: duplicates would create dead buckets
  // whose cumulative counts silently coincide, and a non-finite bound
  // would shadow the implicit +Inf bucket.
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i])) {
      throw std::invalid_argument("Histogram bounds must be finite");
    }
    if (i > 0 && bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram bounds must be strictly ascending");
    }
  }
  per_bucket_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  std::size_t i = std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  // upper_bound gives first bound > value; Prometheus buckets are
  // inclusive (le), so a value equal to a bound belongs in that bucket.
  if (i > 0 && bounds_[i - 1] == value) i -= 1;
  per_bucket_[i] += 1;
  count_ += 1;
  sum_ += value;
}

std::vector<std::uint64_t> Histogram::cumulative_counts() const {
  std::vector<std::uint64_t> out(per_bucket_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < per_bucket_.size(); ++i) {
    running += per_bucket_[i];
    out[i] = running;
  }
  return out;
}

std::string MetricsRegistry::render_labels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  out += '}';
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name, Kind kind,
                                                 const std::string& help) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("invalid metric name: " + name);
  }
  auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.kind = kind;
    fam.help = help;
  } else if (fam.kind != kind) {
    throw std::invalid_argument("metric " + name + " re-registered with a different type");
  } else if (fam.help.empty() && !help.empty()) {
    fam.help = help;
  }
  return fam;
}

Counter& MetricsRegistry::counter(const std::string& name, const MetricLabels& labels,
                                  const std::string& help) {
  for (const auto& [k, _] : labels) {
    if (!valid_label_name(k)) throw std::invalid_argument("invalid label name: " + k);
  }
  Family& fam = family(name, Kind::kCounter, help);
  auto [it, inserted] = fam.series.try_emplace(render_labels(labels));
  if (inserted) it->second.labels = labels;
  return it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const MetricLabels& labels,
                              const std::string& help) {
  for (const auto& [k, _] : labels) {
    if (!valid_label_name(k)) throw std::invalid_argument("invalid label name: " + k);
  }
  Family& fam = family(name, Kind::kGauge, help);
  auto [it, inserted] = fam.series.try_emplace(render_labels(labels));
  if (inserted) it->second.labels = labels;
  return it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                      const MetricLabels& labels, const std::string& help) {
  for (const auto& [k, _] : labels) {
    if (!valid_label_name(k)) throw std::invalid_argument("invalid label name: " + k);
  }
  Family& fam = family(name, Kind::kHistogram, help);
  auto [it, inserted] = fam.series.try_emplace(render_labels(labels));
  if (inserted) {
    it->second.labels = labels;
    it->second.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *it->second.histogram;
}

std::size_t MetricsRegistry::series_count() const {
  std::size_t n = 0;
  for (const auto& [_, fam] : families_) n += fam.series.size();
  return n;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) os << "# HELP " << name << " " << fam.help << "\n";
    os << "# TYPE " << name << " " << kind_name(static_cast<int>(fam.kind)) << "\n";
    for (const auto& [rendered, series] : fam.series) {
      switch (fam.kind) {
        case Kind::kCounter:
          os << name << rendered << " " << format_value(series.counter.value()) << "\n";
          break;
        case Kind::kGauge:
          os << name << rendered << " " << format_value(series.gauge.value()) << "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          auto cumulative = h.cumulative_counts();
          // Splice le="..." into the existing label set.
          auto bucket_labels = [&](const std::string& le) {
            MetricLabels labels = series.labels;
            labels.emplace_back("le", le);
            return render_labels(labels);
          };
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            os << name << "_bucket" << bucket_labels(format_value(h.bounds()[i])) << " "
               << cumulative[i] << "\n";
          }
          os << name << "_bucket" << bucket_labels("+Inf") << " " << h.count() << "\n";
          os << name << "_sum" << rendered << " " << json_number(h.sum(), 9) << "\n";
          os << name << "_count" << rendered << " " << h.count() << "\n";
          break;
        }
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  for (const auto& [name, fam] : families_) {
    w.key(name).begin_object();
    w.key("type").value(kind_name(static_cast<int>(fam.kind)));
    w.key("help").value(fam.help);
    w.key("series").begin_array();
    for (const auto& [_, series] : fam.series) {
      w.begin_object();
      w.key("labels").begin_object();
      for (const auto& [k, v] : series.labels) w.key(k).value(v);
      w.end_object();
      switch (fam.kind) {
        case Kind::kCounter:
          w.key("value").value(series.counter.value());
          break;
        case Kind::kGauge:
          w.key("value").value(series.gauge.value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          w.key("count").value(static_cast<unsigned long long>(h.count()));
          w.key("sum").value(h.sum());
          w.key("buckets").begin_array();
          auto cumulative = h.cumulative_counts();
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            w.begin_object();
            w.key("le").value(h.bounds()[i]);
            w.key("count").value(static_cast<unsigned long long>(cumulative[i]));
            w.end_object();
          }
          w.end_array();
          break;
        }
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  os << "\n";
}

}  // namespace rupam
