// Cross-run regression detection — diff two machine-readable run reports
// (flat BENCH_*.json objects or sweep matrix JSONs) metric by metric, with
// CI-aware significance: a delta only counts as improved/regressed when it
// clears both the combined 95% confidence half-widths and a relative
// tolerance, everything else is within-noise. This is what lets the
// checked-in BENCH baselines gate themselves in CI (DESIGN.md §13).
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rupam {

class JsonValue;

enum class Verdict : std::uint8_t {
  kImproved = 0,
  kRegressed,
  kWithinNoise,
};

std::string_view to_string(Verdict verdict);

/// One metric present in both documents.
struct MetricDelta {
  std::string key;  // bench key, or "cell[...].metric" for matrices
  double base = 0.0;
  double base_ci = 0.0;  // 95% CI half-width (0 for single-value reports)
  double test = 0.0;
  double test_ci = 0.0;
  double delta = 0.0;      // test - base
  double delta_pct = 0.0;  // delta / |base| * 100 (0 when base == 0)
  bool lower_is_better = true;
  Verdict verdict = Verdict::kWithinNoise;
};

struct ComparisonConfig {
  /// Relative significance floor: |delta| must exceed this fraction of the
  /// larger magnitude even when the CIs don't overlap.
  double rel_tolerance = 0.02;
};

struct ComparisonReport {
  std::vector<MetricDelta> deltas;
  std::vector<std::string> only_in_base;  // metrics the test run dropped
  std::vector<std::string> only_in_test;  // metrics the test run added
  std::size_t improved = 0;
  std::size_t regressed = 0;
  std::size_t within_noise = 0;

  bool has_regressions() const { return regressed > 0; }
};

/// Whether a metric key is compared at all, and in which direction. Keys
/// carrying identity rather than performance (seeds, replication counts)
/// are skipped; direction comes from a substring heuristic (documented in
/// DESIGN.md §13) defaulting to lower-is-better.
bool metric_is_comparable(std::string_view key);
bool metric_lower_is_better(std::string_view key);

/// Diff two parsed documents. Formats are auto-detected per document: an
/// object with a "cells" array is a sweep matrix (cells matched by their
/// five grid coordinates, aggregate means compared with their CIs); any
/// other object is a flat metric→number report (BENCH_*.json). Throws
/// std::invalid_argument when a document is neither.
ComparisonReport compare_runs(const JsonValue& base, const JsonValue& test,
                              const ComparisonConfig& config = {});

/// Parse both texts (throws JsonParseError on malformed input) and diff.
ComparisonReport compare_json_text(const std::string& base_text, const std::string& test_text,
                                   const ComparisonConfig& config = {});

/// Machine-readable comparison document (schema in DESIGN.md §13).
void write_comparison_json(const ComparisonReport& report, std::ostream& os);

/// Human-readable verdict table via common/table.
void print_comparison(const ComparisonReport& report, std::ostream& os);

}  // namespace rupam
