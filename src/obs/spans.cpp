#include "obs/spans.hpp"

#include <algorithm>
#include <tuple>

#include "common/json_writer.hpp"

namespace rupam {

std::string_view to_string(TaskPhase phase) {
  switch (phase) {
    case TaskPhase::kQueued: return "queued";
    case TaskPhase::kInputRead: return "input_read";
    case TaskPhase::kShuffleDiskRead: return "shuffle_disk_read";
    case TaskPhase::kShuffleNetRead: return "shuffle_net_read";
    case TaskPhase::kCompute: return "compute";
    case TaskPhase::kGc: return "gc";
    case TaskPhase::kShuffleWrite: return "shuffle_write";
    case TaskPhase::kSpill: return "spill";
    case TaskPhase::kOutputSend: return "output_send";
  }
  return "?";
}

void SpanTrace::set_stage_parents(StageId stage, std::vector<StageId> parents) {
  stage_parents_[stage] = std::move(parents);
}

std::size_t SpanTrace::count(TaskPhase phase) const {
  return static_cast<std::size_t>(
      std::count_if(spans_.begin(), spans_.end(),
                    [phase](const PhaseSpan& s) { return s.phase == phase; }));
}

namespace {

using AttemptKey = std::tuple<StageId, TaskId, AttemptId>;

struct AttemptInfo {
  NodeId node = kInvalidNode;
  SimTime start = 0.0;
  SimTime end = 0.0;
  int lane = 0;
  std::vector<std::size_t> span_indices;  // into SpanTrace::spans(), in order
};

double to_us(SimTime t) { return t * 1e6; }

}  // namespace

void SpanTrace::write_perfetto(std::ostream& os) const {
  // Collapse spans into attempts and compute each attempt's envelope.
  std::map<AttemptKey, AttemptInfo> attempts;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const PhaseSpan& s = spans_[i];
    AttemptKey key{s.stage, s.task, s.attempt};
    auto [it, inserted] = attempts.try_emplace(key);
    AttemptInfo& info = it->second;
    if (inserted) {
      info.node = s.node;
      info.start = s.start;
      info.end = s.end;
    } else {
      info.start = std::min(info.start, s.start);
      info.end = std::max(info.end, s.end);
    }
    info.span_indices.push_back(i);
  }

  // Greedy per-node lane assignment over attempt envelopes so overlapping
  // attempts on a node render side by side instead of mis-nesting.
  std::map<NodeId, std::vector<const AttemptKey*>> by_node;
  for (const auto& [key, info] : attempts) by_node[info.node].push_back(&key);
  for (auto& [node, keys] : by_node) {
    std::sort(keys.begin(), keys.end(), [&](const AttemptKey* a, const AttemptKey* b) {
      const AttemptInfo& ia = attempts.at(*a);
      const AttemptInfo& ib = attempts.at(*b);
      return std::tie(ia.start, *a) < std::tie(ib.start, *b);
    });
    std::vector<SimTime> lane_free;
    for (const AttemptKey* key : keys) {
      AttemptInfo& info = attempts.at(*key);
      int lane = -1;
      for (std::size_t l = 0; l < lane_free.size(); ++l) {
        if (lane_free[l] <= info.start) {
          lane = static_cast<int>(l);
          break;
        }
      }
      if (lane < 0) {
        lane = static_cast<int>(lane_free.size());
        lane_free.push_back(0.0);
      }
      lane_free[static_cast<std::size_t>(lane)] = info.end;
      info.lane = lane;
    }
  }

  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // Process metadata: one pid per node.
  for (const auto& [node, keys] : by_node) {
    (void)keys;
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("process_name");
    w.key("pid").value(node);
    w.key("tid").value(0);
    w.key("args").begin_object().key("name").value("node " + std::to_string(node)).end_object();
    w.end_object();
  }

  auto emit_slice = [&](const char* cat, const std::string& name, NodeId pid, int tid,
                        SimTime start, SimTime end, auto&& args_fn) {
    w.begin_object();
    w.key("ph").value("X");
    w.key("cat").value(cat);
    w.key("name").value(name);
    w.key("pid").value(pid);
    w.key("tid").value(tid);
    w.key("ts").raw(json_number(to_us(start), 12));
    w.key("dur").raw(json_number(to_us(end - start), 12));
    w.key("args").begin_object();
    args_fn();
    w.end_object();
    w.end_object();
  };

  for (const auto& [node, keys] : by_node) {
    (void)node;
    for (const AttemptKey* key : keys) {
      const auto& [stage, task, attempt] = *key;
      const AttemptInfo& info = attempts.at(*key);
      emit_slice("attempt",
                 "S" + std::to_string(stage) + ".T" + std::to_string(task) + "#" +
                     std::to_string(attempt),
                 info.node, info.lane, info.start, info.end, [&] {
                   w.key("stage").value(stage);
                   w.key("task").value(static_cast<long long>(task));
                   w.key("attempt").value(attempt);
                 });
      for (std::size_t i : info.span_indices) {
        const PhaseSpan& s = spans_[i];
        emit_slice("phase", std::string(to_string(s.phase)), s.node, info.lane, s.start, s.end,
                   [&] {
                     w.key("arg").raw(json_number(s.arg, 9));
                     if (s.truncated) w.key("truncated").value(true);
                   });
      }
    }
  }

  // Flow arrows: parent map stage → child attempt's first shuffle read.
  // Source is the parent's latest-finishing attempt (the one the child's
  // fetch actually waited for); the "s"/"f" pair binds to the midpoints of
  // the source and destination slices.
  long long flow_id = 0;
  auto emit_flow = [&](const char* ph, long long id, NodeId pid, int tid, SimTime ts,
                       bool enclosing) {
    w.begin_object();
    w.key("ph").value(ph);
    if (enclosing) w.key("bp").value("e");
    w.key("cat").value("shuffle");
    w.key("name").value("map_output");
    w.key("id").value(id);
    w.key("pid").value(pid);
    w.key("tid").value(tid);
    w.key("ts").raw(json_number(to_us(ts), 12));
    w.end_object();
  };
  for (const auto& [child_stage, parents] : stage_parents_) {
    // Latest-finishing attempt of each parent stage.
    std::map<StageId, const AttemptKey*> parent_source;
    for (const auto& [key, info] : attempts) {
      StageId stage = std::get<0>(key);
      if (std::find(parents.begin(), parents.end(), stage) == parents.end()) continue;
      auto [it, inserted] = parent_source.try_emplace(stage, &key);
      if (!inserted && info.end > attempts.at(*it->second).end) it->second = &key;
    }
    for (const auto& [key, info] : attempts) {
      if (std::get<0>(key) != child_stage) continue;
      // First shuffle-read span of this attempt.
      const PhaseSpan* target = nullptr;
      for (std::size_t i : info.span_indices) {
        const PhaseSpan& s = spans_[i];
        if (s.phase == TaskPhase::kShuffleDiskRead || s.phase == TaskPhase::kShuffleNetRead) {
          target = &s;
          break;
        }
      }
      if (target == nullptr) continue;
      for (StageId parent : parents) {
        auto src_it = parent_source.find(parent);
        if (src_it == parent_source.end()) continue;
        const AttemptInfo& src = attempts.at(*src_it->second);
        long long id = flow_id++;
        emit_flow("s", id, src.node, src.lane, 0.5 * (src.start + src.end), false);
        emit_flow("f", id, info.node, info.lane, 0.5 * (target->start + target->end), true);
      }
    }
  }

  w.end_array();
  w.end_object();
  os << "\n";
}

}  // namespace rupam
