// Post-run analysis engine — turns the raw observability exports (task-phase
// spans, dispatch-decision audit, scheduling-event trace, per-job JCT
// records) into a machine-readable diagnosis:
//
//   * per-job critical path: the chain of attempts that actually gated the
//     job's completion, reconstructed backwards from the finish instant over
//     span envelopes + DAG edges, with every second of the JCT attributed to
//     a phase category (queueing / input / shuffle read / compute / GC /
//     shuffle write / spill / output / driver). The attribution is exact:
//     PhaseAttribution::total() == jct within floating-point addition error.
//
//   * straggler attribution: tasks whose service time exceeds k x their
//     stage median, each joined against the audit and the cluster /
//     membership / fault events to a machine-readable cause (slow node
//     class, blacklist rebound, pool preemption, spot drain, GPU
//     contention, GC pressure, shuffle skew).
//
// The analyzer is a pure function of a RunArtifacts bundle — it never
// touches the simulator, so it can run on any recorded run (DESIGN.md §13).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "metrics/jct.hpp"
#include "obs/audit.hpp"
#include "obs/spans.hpp"

namespace rupam {

class EventTrace;

/// Machine-readable straggler cause vocabulary (DESIGN.md §13). Ordered by
/// attribution priority: event-driven causes (the task demonstrably lost an
/// attempt or a node) outrank capability causes, which outrank phase-shape
/// causes.
enum class StragglerCause : std::uint8_t {
  kPoolPreemption = 0,  // a FAIR reclaim killed an attempt of this task
  kSpotDrain,           // an attempt died to a spot revocation drain
  kNodeFault,           // an attempt died with its node (crash / lost executor)
  kBlacklistRebound,    // launched on a node fresh off the blacklist
  kGpuContention,       // raced for a GPU device (RUPAM gpu queue)
  kSlowNodeClass,       // landed on a node class well below the fleet's best
  kGcPressure,          // GC dominated the winning attempt
  kShuffleSkew,         // shuffle read dominated the winning attempt
  kUnknown,
};
inline constexpr int kNumStragglerCauses = 9;

std::string_view to_string(StragglerCause cause);

/// Disjoint time categories along a critical path (seconds). `driver` is
/// the remainder: inter-stage gaps the DAG driver owns plus any untraced
/// time, so the categories always sum exactly to the window they cover.
struct PhaseAttribution {
  double queueing = 0.0;
  double input_read = 0.0;
  double shuffle_read = 0.0;  // disk + net fetch
  double compute = 0.0;       // GC share excluded
  double gc = 0.0;            // compute-tail GC + cache-churn GC
  double shuffle_write = 0.0;  // spill share excluded
  double spill = 0.0;
  double output_send = 0.0;
  double driver = 0.0;

  double total() const {
    return queueing + input_read + shuffle_read + compute + gc + shuffle_write + spill +
           output_send + driver;
  }
  PhaseAttribution& operator+=(const PhaseAttribution& o);
};

/// One attempt's segment on a job's critical path (chronological order in
/// JobDiagnosis::path). `gap_after` is driver-attributed time between this
/// attempt's end and the next path segment (or the job finish).
struct CriticalPathStep {
  StageId stage = -1;
  TaskId task = -1;
  AttemptId attempt = 0;
  NodeId node = kInvalidNode;
  SimTime start = 0.0;  // segment start (clipped to the job window)
  SimTime end = 0.0;    // segment end
  SimTime gap_after = 0.0;
};

struct JobDiagnosis {
  JobId job = -1;
  std::string name;
  std::string pool;
  SimTime submitted = 0.0;
  SimTime finished = 0.0;
  double jct = 0.0;
  /// Sums to `jct` within 1e-9 (gated by bench/analyzer.cpp).
  PhaseAttribution critical_path;
  std::vector<CriticalPathStep> path;
};

struct StragglerReport {
  StageId stage = -1;
  TaskId task = -1;
  AttemptId attempt = 0;  // the completing attempt
  NodeId node = kInvalidNode;
  std::string node_class;
  double duration = 0.0;      // first launch -> last completion (seconds)
  double stage_median = 0.0;  // median task service time in the stage
  double ratio = 0.0;         // duration / stage_median
  StragglerCause cause = StragglerCause::kUnknown;
  /// Machine-readable key=value context for the cause (space-separated).
  std::string detail;
};

/// Static facts about one node the analyzer joins against (decommissioned
/// nodes included — dispatch decisions may reference them).
struct AnalyzerNodeInfo {
  NodeId id = kInvalidNode;
  std::string name;
  std::string node_class;
  double cpu_perf = 1.0;
  int gpus = 0;
};

/// Everything analyze_run consumes. `spans` and `jobs` are required; the
/// audit and event trace are optional joins (straggler causes degrade to
/// the capability/phase-shape vocabulary without them).
struct RunArtifacts {
  const SpanTrace* spans = nullptr;
  const DecisionAudit* audit = nullptr;
  const EventTrace* trace = nullptr;
  std::vector<JobCompletion> jobs;
  /// DAG facts: owning job and shuffle parents per stage.
  std::map<StageId, JobId> stage_job;
  std::map<StageId, std::vector<StageId>> stage_parents;
  std::vector<AnalyzerNodeInfo> nodes;
};

struct AnalyzerConfig {
  /// Straggler threshold: task service time > k x stage median.
  double straggler_k = 1.5;
  /// Stages with fewer tasks than this have no meaningful median.
  std::size_t min_stage_tasks = 3;
  /// A node class is "slow" when its cpu_perf < margin x the best class.
  double slow_class_margin = 0.9;
  /// GC-pressure straggler: GC wall share of the winning attempt above this.
  double gc_share = 0.25;
  /// Shuffle-skew straggler: shuffle-read share above this.
  double shuffle_share = 0.5;
  /// Blacklist rebound: launch within this window after un-blacklisting.
  SimTime blacklist_rebound_window = 60.0;
};

struct RunDiagnosis {
  std::vector<JobDiagnosis> jobs;
  std::vector<StragglerReport> stragglers;
  /// Critical-path attribution summed over every job.
  PhaseAttribution critical_path_total;
  std::array<std::size_t, kNumStragglerCauses> stragglers_by_cause{};
  std::size_t attempts = 0;  // attempts reconstructed from the span trace
  std::size_t tasks = 0;     // tasks with at least one completed attempt
};

/// Pure analysis: no side effects, deterministic for identical artifacts.
/// Throws std::invalid_argument when `artifacts.spans` is null.
RunDiagnosis analyze_run(const RunArtifacts& artifacts, const AnalyzerConfig& config = {});

/// Compact per-run rollup carried in sweep matrices (one per cell rep).
struct AnalyzerSummary {
  std::size_t stragglers = 0;
  std::array<std::size_t, kNumStragglerCauses> by_cause{};
  PhaseAttribution critical_path;  // summed over the run's jobs
};

AnalyzerSummary summarize_diagnosis(const RunDiagnosis& diagnosis);

class JsonWriter;

/// Emit a summary as one JSON object value on `w` (the sweep matrix embeds
/// these per run and per cell): {"stragglers", "by_cause", "critical_path"}.
void write_analyzer_summary_json(const AnalyzerSummary& summary, JsonWriter& w);

/// Machine-readable diagnosis document (schema in DESIGN.md §13).
void write_diagnosis_json(const RunDiagnosis& diagnosis, std::ostream& os);

/// Human-readable tables (common/table): per-job critical-path breakdown
/// and the straggler list with causes.
void print_diagnosis(const RunDiagnosis& diagnosis, std::ostream& os);

}  // namespace rupam
