#include "obs/analyzer.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>
#include <tuple>

#include "common/json_writer.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "metrics/event_trace.hpp"

namespace rupam {
namespace {

constexpr double kEps = 1e-9;

struct AttemptKey {
  StageId stage = -1;
  TaskId task = -1;
  AttemptId attempt = 0;

  bool operator<(const AttemptKey& o) const {
    return std::tie(stage, task, attempt) < std::tie(o.stage, o.task, o.attempt);
  }
  bool operator==(const AttemptKey& o) const {
    return stage == o.stage && task == o.task && attempt == o.attempt;
  }
};

/// One attempt reconstructed from its spans: the envelope [env_start,
/// env_end] is gap-free (executor phases tile it), `launch` is the end of
/// the queued span (== env_start when the attempt had no queue wait). The
/// attempt's spans are the slice [first_span, first_span + num_spans) of
/// AttemptIndex::span_order — a flat layout, so indexing a trace allocates
/// one vector total instead of one per attempt.
struct AttemptRec {
  AttemptKey key;
  NodeId node = kInvalidNode;
  SimTime env_start = std::numeric_limits<double>::infinity();
  SimTime env_end = -std::numeric_limits<double>::infinity();
  SimTime launch = -1.0;
  bool truncated = false;
  std::size_t first_span = 0;
  std::size_t num_spans = 0;
};

struct AttemptIndex {
  std::vector<AttemptRec> attempts;     // sorted by key
  std::vector<std::size_t> span_order;  // span indices grouped per attempt
};

AttemptIndex build_attempts(const std::vector<PhaseSpan>& spans) {
  AttemptIndex idx;
  // Sort a compact (key, index) array instead of comparing PhaseSpans in
  // place: the comparator then reads contiguous memory, not three fields
  // scattered across a 60-byte struct per probe.
  struct Keyed {
    std::uint64_t stage_task;
    std::uint32_t attempt;
    std::uint32_t index;
  };
  std::vector<Keyed> keyed(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const PhaseSpan& s = spans[i];
    keyed[i] = {(static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.stage)) << 32) |
                    static_cast<std::uint32_t>(s.task),
                static_cast<std::uint32_t>(s.attempt), static_cast<std::uint32_t>(i)};
  }
  std::stable_sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    return std::tie(a.stage_task, a.attempt) < std::tie(b.stage_task, b.attempt);
  });
  idx.span_order.resize(spans.size());
  for (std::size_t i = 0; i < keyed.size(); ++i) idx.span_order[i] = keyed[i].index;
  for (std::size_t i = 0; i < idx.span_order.size(); ++i) {
    const PhaseSpan& s = spans[idx.span_order[i]];
    AttemptKey key{s.stage, s.task, s.attempt};
    if (idx.attempts.empty() || !(idx.attempts.back().key == key)) {
      AttemptRec rec;
      rec.key = key;
      rec.first_span = i;
      idx.attempts.push_back(rec);
    }
    AttemptRec& rec = idx.attempts.back();
    rec.node = s.node;
    rec.env_start = std::min(rec.env_start, s.start);
    rec.env_end = std::max(rec.env_end, s.end);
    if (s.phase == TaskPhase::kQueued) rec.launch = std::max(rec.launch, s.end);
    rec.truncated = rec.truncated || s.truncated;
    ++rec.num_spans;
  }
  for (AttemptRec& rec : idx.attempts) {
    if (rec.launch < 0.0) rec.launch = rec.env_start;
  }
  return idx;
}

double clipped_len(const PhaseSpan& s, double lo, double hi) {
  return std::max(0.0, std::min(s.end, hi) - std::max(s.start, lo));
}

double clipped_overlap(const PhaseSpan& a, const PhaseSpan& b, double lo, double hi) {
  double start = std::max({a.start, b.start, lo});
  double end = std::min({a.end, b.end, hi});
  return std::max(0.0, end - start);
}

/// Attribute the window [lo, hi] of one attempt to phase categories. GC is
/// recorded nested at the tail of compute and spill at the tail of the
/// shuffle write, so their overlap is subtracted from the enclosing phase;
/// whatever the spans do not cover falls to `driver` — the categories sum
/// to exactly (hi - lo) by construction.
void attribute_window(const std::vector<PhaseSpan>& spans, const AttemptIndex& idx,
                      const AttemptRec& rec, double lo, double hi, PhaseAttribution& out) {
  double queued = 0, input = 0, shuffle_read = 0, compute = 0, gc = 0;
  double write = 0, spill = 0, output = 0;
  const std::size_t* begin = idx.span_order.data() + rec.first_span;
  const std::size_t* end = begin + rec.num_spans;
  for (const std::size_t* p = begin; p != end; ++p) {
    const PhaseSpan& s = spans[*p];
    double len = clipped_len(s, lo, hi);
    if (len <= 0.0) continue;
    switch (s.phase) {
      case TaskPhase::kQueued: queued += len; break;
      case TaskPhase::kInputRead: input += len; break;
      case TaskPhase::kShuffleDiskRead:
      case TaskPhase::kShuffleNetRead: shuffle_read += len; break;
      case TaskPhase::kCompute: compute += len; break;
      case TaskPhase::kGc: gc += len; break;
      case TaskPhase::kShuffleWrite: write += len; break;
      case TaskPhase::kSpill: spill += len; break;
      case TaskPhase::kOutputSend: output += len; break;
    }
  }
  // Un-double-count the nested phases.
  for (const std::size_t* p = begin; p != end; ++p) {
    const PhaseSpan& a = spans[*p];
    if (a.phase != TaskPhase::kGc && a.phase != TaskPhase::kSpill) continue;
    for (const std::size_t* q = begin; q != end; ++q) {
      const PhaseSpan& b = spans[*q];
      if (a.phase == TaskPhase::kGc && b.phase == TaskPhase::kCompute) {
        compute -= clipped_overlap(a, b, lo, hi);
      } else if (a.phase == TaskPhase::kSpill && b.phase == TaskPhase::kShuffleWrite) {
        write -= clipped_overlap(a, b, lo, hi);
      }
    }
  }
  double covered = queued + input + shuffle_read + compute + gc + write + spill + output;
  out.queueing += queued;
  out.input_read += input;
  out.shuffle_read += shuffle_read;
  out.compute += compute;
  out.gc += gc;
  out.shuffle_write += write;
  out.spill += spill;
  out.output_send += output;
  out.driver += (hi - lo) - covered;
}

/// Backward critical-path walk for one job: from the finish instant, pick
/// the latest-ending attempt (preferring the current stage's shuffle
/// parents / retries), attribute its window, hop to its submit instant,
/// repeat. Every inter-attempt gap goes to `driver`, so the attribution
/// telescopes to exactly finished - submitted.
JobDiagnosis diagnose_job(const JobCompletion& jc, std::vector<const AttemptRec*>& attempts,
                          const std::map<StageId, std::vector<StageId>>& stage_parents,
                          const AttemptIndex& idx, const std::vector<PhaseSpan>& spans) {
  JobDiagnosis d;
  d.job = jc.job;
  d.name = jc.name;
  d.pool = jc.pool;
  d.submitted = jc.submitted;
  d.finished = jc.finished;
  d.jct = jc.jct();

  // Sorted by envelope end, the "latest attempt finishing by the cursor" is
  // a binary search plus (when stage-filtered) a short backward scan.
  std::stable_sort(attempts.begin(), attempts.end(),
                   [](const AttemptRec* a, const AttemptRec* b) {
                     return a->env_end < b->env_end;
                   });
  auto pick = [&](double cursor, const std::set<StageId>* stages) -> const AttemptRec* {
    auto it = std::upper_bound(attempts.begin(), attempts.end(), cursor + kEps,
                               [](double t, const AttemptRec* a) { return t < a->env_end; });
    while (it != attempts.begin()) {
      const AttemptRec* a = *--it;
      if (stages == nullptr || stages->count(a->key.stage) != 0) return a;
    }
    return nullptr;
  };

  double cursor = jc.finished;
  bool have_stage = false;
  std::set<StageId> candidates;
  std::vector<CriticalPathStep> rev_path;
  for (std::size_t iter = 0; iter <= attempts.size() + 1; ++iter) {
    if (cursor <= jc.submitted + kEps) break;
    const AttemptRec* a = nullptr;
    if (have_stage) a = pick(cursor, &candidates);
    if (a == nullptr) a = pick(cursor, nullptr);
    if (a == nullptr) {
      d.critical_path.driver += cursor - jc.submitted;
      cursor = jc.submitted;
      break;
    }
    double hi = std::min(cursor, a->env_end);
    double gap = cursor - hi;
    d.critical_path.driver += gap;
    double lo = std::max(a->env_start, jc.submitted);
    if (lo >= hi) {  // no forward progress: close out the remainder
      d.critical_path.driver += hi - jc.submitted;
      cursor = jc.submitted;
      break;
    }
    attribute_window(spans, idx, *a, lo, hi, d.critical_path);
    rev_path.push_back({a->key.stage, a->key.task, a->key.attempt, a->node, lo, hi, gap});
    cursor = lo;
    have_stage = true;
    candidates.clear();
    candidates.insert(a->key.stage);  // a retry / earlier attempt of the same stage
    auto it = stage_parents.find(a->key.stage);
    if (it != stage_parents.end()) candidates.insert(it->second.begin(), it->second.end());
  }
  d.critical_path.driver += std::max(0.0, cursor - jc.submitted);
  d.path.assign(rev_path.rbegin(), rev_path.rend());
  return d;
}

/// Per-node time-sorted index of the trace events the cause join consults.
struct EventIndex {
  std::map<std::pair<StageId, TaskId>, std::vector<const TraceEvent*>> preemptions;
  std::map<NodeId, std::vector<const TraceEvent*>> drains;         // draining + decommissioned
  std::map<NodeId, std::vector<const TraceEvent*>> faults;         // lost / dead / injected
  std::map<NodeId, std::vector<const TraceEvent*>> unblacklists;
};

EventIndex index_events(const EventTrace* trace) {
  EventIndex idx;
  if (trace == nullptr) return idx;
  for (const TraceEvent& e : trace->events()) {
    switch (e.type) {
      case TraceEventType::kTaskPreempted:
        idx.preemptions[{e.stage, e.task}].push_back(&e);
        break;
      case TraceEventType::kNodeDraining:
      case TraceEventType::kNodeDecommissioned:
        idx.drains[e.node].push_back(&e);
        break;
      case TraceEventType::kExecutorLost:
      case TraceEventType::kNodeDead:
      case TraceEventType::kFaultInjected:
        idx.faults[e.node].push_back(&e);
        break;
      case TraceEventType::kNodeUnblacklisted:
        idx.unblacklists[e.node].push_back(&e);
        break;
      default: break;
    }
  }
  return idx;
}

const TraceEvent* find_in_window(const std::map<NodeId, std::vector<const TraceEvent*>>& by_node,
                                 NodeId node, double lo, double hi) {
  auto it = by_node.find(node);
  if (it == by_node.end()) return nullptr;
  for (const TraceEvent* e : it->second) {
    if (e->time >= lo - kEps && e->time <= hi + kEps) return e;
  }
  return nullptr;
}

std::string two(double v) { return format_fixed(v, 2); }
std::string secs(double v) { return format_fixed(v, 3); }

}  // namespace

std::string_view to_string(StragglerCause cause) {
  switch (cause) {
    case StragglerCause::kPoolPreemption: return "pool_preemption";
    case StragglerCause::kSpotDrain: return "spot_drain";
    case StragglerCause::kNodeFault: return "node_fault";
    case StragglerCause::kBlacklistRebound: return "blacklist_rebound";
    case StragglerCause::kGpuContention: return "gpu_contention";
    case StragglerCause::kSlowNodeClass: return "slow_node_class";
    case StragglerCause::kGcPressure: return "gc_pressure";
    case StragglerCause::kShuffleSkew: return "shuffle_skew";
    case StragglerCause::kUnknown: return "unknown";
  }
  return "?";
}

PhaseAttribution& PhaseAttribution::operator+=(const PhaseAttribution& o) {
  queueing += o.queueing;
  input_read += o.input_read;
  shuffle_read += o.shuffle_read;
  compute += o.compute;
  gc += o.gc;
  shuffle_write += o.shuffle_write;
  spill += o.spill;
  output_send += o.output_send;
  driver += o.driver;
  return *this;
}

RunDiagnosis analyze_run(const RunArtifacts& artifacts, const AnalyzerConfig& config) {
  if (artifacts.spans == nullptr) {
    throw std::invalid_argument("analyze_run: a span trace is required");
  }
  const std::vector<PhaseSpan>& spans = artifacts.spans->spans();
  AttemptIndex index = build_attempts(spans);
  const std::vector<AttemptRec>& attempts = index.attempts;

  RunDiagnosis diag;
  diag.attempts = attempts.size();

  // --- Per-job critical paths -------------------------------------------
  auto job_of_stage = [&](StageId stage) -> JobId {
    auto it = artifacts.stage_job.find(stage);
    if (it != artifacts.stage_job.end()) return it->second;
    // Single-job artifacts may omit the map: everything belongs to it.
    return artifacts.jobs.size() == 1 ? artifacts.jobs.front().job : -1;
  };
  std::map<JobId, std::vector<const AttemptRec*>> by_job;
  for (const AttemptRec& rec : attempts) by_job[job_of_stage(rec.key.stage)].push_back(&rec);

  std::vector<JobCompletion> jobs = artifacts.jobs;
  std::sort(jobs.begin(), jobs.end(), [](const JobCompletion& a, const JobCompletion& b) {
    return std::tie(a.submitted, a.job) < std::tie(b.submitted, b.job);
  });
  std::vector<const AttemptRec*> no_attempts;
  for (const JobCompletion& jc : jobs) {
    auto it = by_job.find(jc.job);
    auto& job_attempts = it != by_job.end() ? it->second : no_attempts;
    diag.jobs.push_back(diagnose_job(jc, job_attempts, artifacts.stage_parents, index, spans));
    diag.critical_path_total += diag.jobs.back().critical_path;
  }

  // --- Straggler detection ----------------------------------------------
  // Task service time = first attempt's launch → last completed attempt's
  // finish, so retry + relaunch cost counts against the task.
  // `attempts` is sorted by (stage, task, attempt), so a task is a
  // contiguous run of attempts and a stage a contiguous run of tasks — the
  // grouping below is flat passes, no per-task containers.
  struct TaskRec {
    StageId stage = -1;
    TaskId task = -1;
    const AttemptRec* completing = nullptr;
    SimTime first_launch = 0.0;
    std::size_t first_attempt = 0;  // run [first_attempt, +num_attempts)
    std::size_t num_attempts = 0;
    double duration = 0.0;
  };
  std::vector<TaskRec> tasks;
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const AttemptRec& rec = attempts[i];
    if (tasks.empty() || tasks.back().stage != rec.key.stage ||
        tasks.back().task != rec.key.task) {
      TaskRec t;
      t.stage = rec.key.stage;
      t.task = rec.key.task;
      t.first_launch = rec.launch;
      t.first_attempt = i;
      tasks.push_back(t);
    }
    TaskRec& t = tasks.back();
    t.first_launch = std::min(t.first_launch, rec.launch);
    ++t.num_attempts;
    if (!rec.truncated && (t.completing == nullptr || rec.env_end > t.completing->env_end)) {
      t.completing = &rec;
    }
  }
  std::map<StageId, double> stage_median;
  {
    std::vector<double> durations;  // reused per stage run
    std::size_t i = 0;
    while (i < tasks.size()) {
      StageId stage = tasks[i].stage;
      durations.clear();
      for (; i < tasks.size() && tasks[i].stage == stage; ++i) {
        TaskRec& t = tasks[i];
        if (t.completing == nullptr) continue;
        t.duration = t.completing->env_end - t.first_launch;
        durations.push_back(t.duration);
        ++diag.tasks;
      }
      if (durations.size() >= config.min_stage_tasks) {
        stage_median[stage] = percentile_inplace(durations, 50.0);
      }
    }
  }

  // --- Cause joins -------------------------------------------------------
  EventIndex events = index_events(artifacts.trace);
  std::map<NodeId, const AnalyzerNodeInfo*> node_info;
  double best_perf = 0.0;
  for (const AnalyzerNodeInfo& n : artifacts.nodes) {
    node_info[n.id] = &n;
    best_perf = std::max(best_perf, n.cpu_perf);
  }
  // Sorted (key, decision) pairs; stable sort + backward scan preserves the
  // old map's last-write-wins semantics for duplicate keys.
  std::vector<std::pair<AttemptKey, const DispatchDecision*>> decisions;
  if (artifacts.audit != nullptr) {
    decisions.reserve(artifacts.audit->decisions().size());
    for (const DispatchDecision& d : artifacts.audit->decisions()) {
      decisions.push_back({{d.stage, d.task, d.attempt}, &d});
    }
    std::stable_sort(decisions.begin(), decisions.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  auto find_decision = [&decisions](const AttemptKey& key) -> const DispatchDecision* {
    auto it = std::upper_bound(
        decisions.begin(), decisions.end(), key,
        [](const AttemptKey& k, const auto& p) { return k < p.first; });
    if (it == decisions.begin()) return nullptr;
    --it;
    return it->first == key ? it->second : nullptr;
  };

  for (const TaskRec& t : tasks) {
    if (t.completing == nullptr) continue;
    auto med_it = stage_median.find(t.stage);
    if (med_it == stage_median.end() || med_it->second <= 0.0) continue;
    double median = med_it->second;
    if (t.duration <= config.straggler_k * median) continue;

    const AttemptRec& win = *t.completing;
    StragglerReport r;
    r.stage = t.stage;
    r.task = t.task;
    r.attempt = win.key.attempt;
    r.node = win.node;
    r.duration = t.duration;
    r.stage_median = median;
    r.ratio = t.duration / median;
    const AnalyzerNodeInfo* info = nullptr;
    if (auto nit = node_info.find(win.node); nit != node_info.end()) info = nit->second;
    if (info != nullptr) r.node_class = info->node_class;

    // Priority: event-driven causes, then capability, then phase shape.
    const TraceEvent* evt = nullptr;
    const AttemptRec* lost = nullptr;  // earlier attempt killed mid-flight
    for (std::size_t ai = t.first_attempt; ai < t.first_attempt + t.num_attempts; ++ai) {
      const AttemptRec* a = &attempts[ai];
      if (a->truncated && a != &win) { lost = a; break; }
    }
    if (auto pit = events.preemptions.find({t.stage, t.task});
        pit != events.preemptions.end() && !pit->second.empty()) {
      const TraceEvent* p = pit->second.front();
      r.cause = StragglerCause::kPoolPreemption;
      r.detail = "preempted_at=" + secs(p->time) + " node=" + std::to_string(p->node);
    } else if (lost != nullptr &&
               (evt = find_in_window(events.drains, lost->node, lost->env_start,
                                     lost->env_end)) != nullptr) {
      r.cause = StragglerCause::kSpotDrain;
      r.detail = "drained_node=" + std::to_string(lost->node) + " " +
                 std::string(to_string(evt->type)) + "_at=" + secs(evt->time);
    } else if (lost != nullptr &&
               (evt = find_in_window(events.faults, lost->node, lost->env_start,
                                     lost->env_end)) != nullptr) {
      r.cause = StragglerCause::kNodeFault;
      r.detail = "failed_node=" + std::to_string(lost->node) + " " +
                 std::string(to_string(evt->type)) + "_at=" + secs(evt->time);
    } else if ((evt = find_in_window(events.unblacklists, win.node,
                                     win.launch - config.blacklist_rebound_window,
                                     win.launch)) != nullptr) {
      r.cause = StragglerCause::kBlacklistRebound;
      r.detail = "unblacklisted_at=" + secs(evt->time) + " launch=" + secs(win.launch);
    } else {
      const DispatchDecision* dec = find_decision(win.key);
      PhaseAttribution ph;
      attribute_window(spans, index, win, win.env_start, win.env_end, ph);
      double service = win.env_end - win.launch;
      if (dec != nullptr && dec->reason == "rupam_gpu_race") {
        r.cause = StragglerCause::kGpuContention;
        r.detail = "queue=" + std::string(to_string(dec->queue)) + " reason=" + dec->reason;
      } else if (info != nullptr && best_perf > 0.0 &&
                 info->cpu_perf < config.slow_class_margin * best_perf) {
        r.cause = StragglerCause::kSlowNodeClass;
        r.detail = "class=" + info->node_class + " cpu_perf=" + two(info->cpu_perf) +
                   " best=" + two(best_perf);
      } else if (service > 0.0 && ph.gc / service > config.gc_share) {
        r.cause = StragglerCause::kGcPressure;
        r.detail = "gc_s=" + secs(ph.gc) + " share=" + two(ph.gc / service);
      } else if (service > 0.0 && ph.shuffle_read / service > config.shuffle_share) {
        r.cause = StragglerCause::kShuffleSkew;
        r.detail = "shuffle_read_s=" + secs(ph.shuffle_read) +
                   " share=" + two(ph.shuffle_read / service);
      } else {
        r.cause = StragglerCause::kUnknown;
        r.detail = "ratio=" + two(r.ratio);
      }
    }
    ++diag.stragglers_by_cause[static_cast<std::size_t>(r.cause)];
    diag.stragglers.push_back(std::move(r));
  }
  return diag;
}

AnalyzerSummary summarize_diagnosis(const RunDiagnosis& diagnosis) {
  AnalyzerSummary s;
  s.stragglers = diagnosis.stragglers.size();
  s.by_cause = diagnosis.stragglers_by_cause;
  s.critical_path = diagnosis.critical_path_total;
  return s;
}

namespace {

void write_attribution(JsonWriter& w, const PhaseAttribution& a) {
  w.begin_object();
  w.key("queueing").raw(json_number(a.queueing, 9));
  w.key("input_read").raw(json_number(a.input_read, 9));
  w.key("shuffle_read").raw(json_number(a.shuffle_read, 9));
  w.key("compute").raw(json_number(a.compute, 9));
  w.key("gc").raw(json_number(a.gc, 9));
  w.key("shuffle_write").raw(json_number(a.shuffle_write, 9));
  w.key("spill").raw(json_number(a.spill, 9));
  w.key("output_send").raw(json_number(a.output_send, 9));
  w.key("driver").raw(json_number(a.driver, 9));
  w.key("total").raw(json_number(a.total(), 9));
  w.end_object();
}

void write_by_cause(JsonWriter& w, const std::array<std::size_t, kNumStragglerCauses>& counts) {
  w.begin_object();
  for (int c = 0; c < kNumStragglerCauses; ++c) {
    w.key(to_string(static_cast<StragglerCause>(c)))
        .value(static_cast<unsigned long long>(counts[static_cast<std::size_t>(c)]));
  }
  w.end_object();
}

}  // namespace

void write_analyzer_summary_json(const AnalyzerSummary& summary, JsonWriter& w) {
  w.begin_object();
  w.key("stragglers").value(static_cast<unsigned long long>(summary.stragglers));
  w.key("by_cause");
  write_by_cause(w, summary.by_cause);
  w.key("critical_path");
  write_attribution(w, summary.critical_path);
  w.end_object();
}

void write_diagnosis_json(const RunDiagnosis& diagnosis, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.key("summary").begin_object();
  w.key("jobs").value(static_cast<unsigned long long>(diagnosis.jobs.size()));
  w.key("tasks").value(static_cast<unsigned long long>(diagnosis.tasks));
  w.key("attempts").value(static_cast<unsigned long long>(diagnosis.attempts));
  w.key("stragglers").value(static_cast<unsigned long long>(diagnosis.stragglers.size()));
  w.key("stragglers_by_cause");
  write_by_cause(w, diagnosis.stragglers_by_cause);
  w.key("critical_path_total");
  write_attribution(w, diagnosis.critical_path_total);
  w.end_object();

  w.key("jobs").begin_array();
  for (const JobDiagnosis& j : diagnosis.jobs) {
    w.begin_object();
    w.key("job").value(static_cast<long long>(j.job));
    w.key("name").value(j.name);
    w.key("pool").value(j.pool);
    w.key("submitted").raw(json_number(j.submitted, 9));
    w.key("finished").raw(json_number(j.finished, 9));
    w.key("jct").raw(json_number(j.jct, 9));
    w.key("critical_path");
    write_attribution(w, j.critical_path);
    w.key("path").begin_array();
    for (const CriticalPathStep& s : j.path) {
      w.begin_object();
      w.key("stage").value(static_cast<long long>(s.stage));
      w.key("task").value(static_cast<long long>(s.task));
      w.key("attempt").value(static_cast<long long>(s.attempt));
      w.key("node").value(static_cast<long long>(s.node));
      w.key("start").raw(json_number(s.start, 9));
      w.key("end").raw(json_number(s.end, 9));
      w.key("gap_after").raw(json_number(s.gap_after, 9));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("stragglers").begin_array();
  for (const StragglerReport& r : diagnosis.stragglers) {
    w.begin_object();
    w.key("stage").value(static_cast<long long>(r.stage));
    w.key("task").value(static_cast<long long>(r.task));
    w.key("attempt").value(static_cast<long long>(r.attempt));
    w.key("node").value(static_cast<long long>(r.node));
    w.key("node_class").value(r.node_class);
    w.key("duration").raw(json_number(r.duration, 9));
    w.key("stage_median").raw(json_number(r.stage_median, 9));
    w.key("ratio").raw(json_number(r.ratio, 9));
    w.key("cause").value(to_string(r.cause));
    w.key("detail").value(r.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

void print_diagnosis(const RunDiagnosis& diagnosis, std::ostream& os) {
  os << "Critical-path attribution (seconds on each job's critical path):\n";
  TextTable jobs({"job", "name", "jct", "queue", "input", "shuf-rd", "compute", "gc", "shuf-wr",
                  "spill", "output", "driver"});
  for (const JobDiagnosis& j : diagnosis.jobs) {
    const PhaseAttribution& a = j.critical_path;
    jobs.add_row({std::to_string(j.job), j.name, secs(j.jct), secs(a.queueing),
                  secs(a.input_read), secs(a.shuffle_read), secs(a.compute), secs(a.gc),
                  secs(a.shuffle_write), secs(a.spill), secs(a.output_send), secs(a.driver)});
  }
  jobs.print(os);

  os << "\nStragglers (service time > k x stage median):\n";
  if (diagnosis.stragglers.empty()) {
    os << "  none\n";
    return;
  }
  TextTable table({"stage", "task", "node", "class", "duration", "median", "ratio", "cause",
                   "detail"});
  for (const StragglerReport& r : diagnosis.stragglers) {
    table.add_row({std::to_string(r.stage), std::to_string(r.task), std::to_string(r.node),
                   r.node_class, secs(r.duration), secs(r.stage_median), two(r.ratio),
                   std::string(to_string(r.cause)), r.detail});
  }
  table.print(os);
}

}  // namespace rupam
