// Scheduler decision audit — one machine-readable record per dispatch,
// answering "why did THIS task land on THAT node?". SchedulerBase emits a
// record from its launch_task choke point; the concrete scheduler fills
// in the placement rationale (RUPAM bottleneck-tag match + heap rank,
// Spark delay-scheduling level taken vs. allowed, FAIR pool that won,
// fallback path) via explain_next_launch just before launching. Exported
// behind `rupam_sim --explain` as CSV or JSON.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/symbol.hpp"
#include "common/types.hpp"

namespace rupam {

/// One dispatch decision. `reason` is a stable machine-readable token
/// (see DESIGN.md §8 for the vocabulary); `detail` carries scheduler-
/// specific key=value pairs (e.g. "tag=I/O queue=I/O rank=0").
struct DispatchDecision {
  SimTime time = 0.0;
  std::string scheduler;
  StageId stage = 0;
  TaskId task = 0;
  AttemptId attempt = 0;
  NodeId node = kInvalidNode;
  Locality locality = Locality::kAny;
  /// Interned pool id; resolved to the pool name at export time via the
  /// DecisionAudit's name table (see note_pool). Invalid prints as "".
  PoolId pool;
  bool speculative = false;
  /// Resource queue the attempt was served from (RUPAM; others kCpu).
  ResourceKind queue = ResourceKind::kCpu;
  std::string reason;
  /// How many nodes the scheduler weighed for this task.
  int candidates_considered = 0;
  /// The candidate nodes, in the order the scheduler ranked them.
  std::vector<NodeId> candidate_nodes;
  std::string detail;
};

class DecisionAudit {
 public:
  void record(DispatchDecision decision) { decisions_.push_back(std::move(decision)); }

  const std::vector<DispatchDecision>& decisions() const { return decisions_; }
  std::size_t size() const { return decisions_.size(); }

  /// Registers the name behind a PoolId so exports can resolve the pool
  /// column. SchedulerBase calls this from attach() (backfilling every
  /// pool interned so far) and again on each later intern — recording a
  /// decision itself never touches strings.
  void note_pool(PoolId id, std::string_view name);
  /// Name behind `id`; "" when invalid or never registered.
  const std::string& pool_name(PoolId id) const;

  /// RFC 4180 CSV with a header row; candidate_nodes joins with ';'.
  void write_csv(std::ostream& os) const;
  /// JSON array of record objects.
  void write_json(std::ostream& os) const;

 private:
  std::vector<DispatchDecision> decisions_;
  /// Dense PoolId → name, filled via note_pool.
  std::vector<std::string> pool_names_;
};

}  // namespace rupam
