#include "obs/overhead.hpp"

namespace rupam {

std::string_view to_string(ProfileSection section) {
  switch (section) {
    case ProfileSection::kDispatch: return "dispatch";
    case ProfileSection::kHeapMaintenance: return "heap_maintenance";
    case ProfileSection::kHeartbeat: return "heartbeat";
    case ProfileSection::kEnqueue: return "enqueue";
  }
  return "?";
}

}  // namespace rupam
