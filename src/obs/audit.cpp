#include "obs/audit.hpp"

#include "common/json_writer.hpp"
#include "common/table.hpp"

namespace rupam {
namespace {

std::string join_nodes(const std::vector<NodeId>& nodes) {
  std::string out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ';';
    out += std::to_string(nodes[i]);
  }
  return out;
}

}  // namespace

void DecisionAudit::note_pool(PoolId id, std::string_view name) {
  if (!id.valid()) return;
  if (pool_names_.size() <= id.index()) pool_names_.resize(id.index() + 1);
  pool_names_[id.index()] = name;
}

const std::string& DecisionAudit::pool_name(PoolId id) const {
  static const std::string kUnknown;
  if (!id.valid() || id.index() >= pool_names_.size()) return kUnknown;
  return pool_names_[id.index()];
}

void DecisionAudit::write_csv(std::ostream& os) const {
  CsvWriter csv(os);
  csv.write_row({"time", "scheduler", "stage", "task", "attempt", "node", "locality", "pool",
                 "speculative", "queue", "reason", "candidates_considered", "candidate_nodes",
                 "detail"});
  for (const auto& d : decisions_) {
    csv.write_row({format_fixed(d.time, 6), d.scheduler, std::to_string(d.stage),
                   std::to_string(d.task), std::to_string(d.attempt), std::to_string(d.node),
                   std::string(to_string(d.locality)), pool_name(d.pool),
                   d.speculative ? "1" : "0",
                   std::string(to_string(d.queue)), d.reason,
                   std::to_string(d.candidates_considered), join_nodes(d.candidate_nodes),
                   d.detail});
  }
}

void DecisionAudit::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_array();
  for (const auto& d : decisions_) {
    w.begin_object();
    w.key("time").raw(json_number(d.time, 9));
    w.key("scheduler").value(d.scheduler);
    w.key("stage").value(d.stage);
    w.key("task").value(static_cast<long long>(d.task));
    w.key("attempt").value(d.attempt);
    w.key("node").value(d.node);
    w.key("locality").value(to_string(d.locality));
    w.key("pool").value(pool_name(d.pool));
    w.key("speculative").value(d.speculative);
    w.key("queue").value(to_string(d.queue));
    w.key("reason").value(d.reason);
    w.key("candidates_considered").value(d.candidates_considered);
    w.key("candidate_nodes").begin_array();
    for (NodeId n : d.candidate_nodes) w.value(n);
    w.end_array();
    w.key("detail").value(d.detail);
    w.end_object();
  }
  w.end_array();
  os << "\n";
}

}  // namespace rupam
