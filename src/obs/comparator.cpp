#include "obs/comparator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/json_reader.hpp"
#include "common/json_writer.hpp"
#include "common/table.hpp"

namespace rupam {
namespace {

bool contains(std::string_view key, std::string_view needle) {
  return key.find(needle) != std::string_view::npos;
}

/// metric name → (base mean, CI half-width). CI is 0 for flat reports.
struct MetricPoint {
  double mean = 0.0;
  double ci95 = 0.0;
};
using MetricMap = std::map<std::string, MetricPoint>;

void flatten_bench(const JsonValue& doc, MetricMap& out) {
  for (const auto& [key, value] : doc.as_object()) {
    if (!value.is_number() || !metric_is_comparable(key)) continue;
    out[key] = MetricPoint{value.as_number(), 0.0};
  }
}

std::string cell_key(const JsonValue& cell) {
  auto str = [&](const char* k) -> std::string {
    const JsonValue* v = cell.find(k);
    return v != nullptr && v->is_string() ? v->as_string() : std::string();
  };
  auto num = [&](const char* k) -> std::string {
    const JsonValue* v = cell.find(k);
    return v != nullptr && v->is_number() ? format_number(v->as_number()) : std::string();
  };
  return "cell[" + str("scheduler") + ",n=" + num("fleet_size") + ",rate=" +
         num("arrival_rate") + ",fault=" + str("fault_plan") + ",elastic=" + str("elastic") +
         "]";
}

void flatten_matrix(const JsonValue& doc, MetricMap& out) {
  static constexpr const char* kAggregates[] = {"makespan_s", "mean_jct_s", "p50_jct_s",
                                                "p95_jct_s", "avg_cpu_util"};
  for (const JsonValue& cell : doc.find("cells")->as_array()) {
    std::string prefix = cell_key(cell) + ".";
    for (const char* name : kAggregates) {
      const JsonValue* agg = cell.find(name);
      if (agg == nullptr || !agg->is_object()) continue;
      const JsonValue* mean = agg->find("mean");
      const JsonValue* ci = agg->find("ci95");
      if (mean == nullptr || !mean->is_number()) continue;
      out[prefix + name] =
          MetricPoint{mean->as_number(),
                      ci != nullptr && ci->is_number() ? ci->as_number() : 0.0};
    }
    // Per-cell analyzer rollups compare as plain numbers when present.
    const JsonValue* analyzer = cell.find("analyzer");
    if (analyzer != nullptr && analyzer->is_object()) {
      const JsonValue* stragglers = analyzer->find("stragglers");
      if (stragglers != nullptr && stragglers->is_number()) {
        out[prefix + "analyzer.stragglers"] = MetricPoint{stragglers->as_number(), 0.0};
      }
    }
  }
}

MetricMap flatten(const JsonValue& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("comparator: document is not a JSON object");
  }
  MetricMap out;
  const JsonValue* cells = doc.find("cells");
  if (cells != nullptr && cells->is_array()) {
    flatten_matrix(doc, out);
  } else {
    flatten_bench(doc, out);
  }
  return out;
}

}  // namespace

std::string_view to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "regressed";
    case Verdict::kWithinNoise: return "within_noise";
  }
  return "?";
}

bool metric_is_comparable(std::string_view key) {
  // Identity / configuration values, not performance metrics. Hardware
  // shape (core count, starvation flag) is machine identity: two runs on
  // different runners legitimately differ there.
  for (std::string_view skip : {"seed", "replication", "threads", "iterations", "n_nodes",
                                "apps", "jobs_total", "hardware_concurrency",
                                "core_starved"}) {
    if (contains(key, skip)) return false;
  }
  return true;
}

bool metric_lower_is_better(std::string_view key) {
  // Higher-is-better metrics; everything else (times, costs, allocation
  // counts, RSS, failure counts, straggler counts) regresses when it grows.
  for (std::string_view up : {"speedup", "throughput", "events_per_s", "per_core_efficiency",
                              "util", "efficiency", "locality_fraction", "hit_rate"}) {
    if (contains(key, up)) return false;
  }
  return true;
}

ComparisonReport compare_runs(const JsonValue& base, const JsonValue& test,
                              const ComparisonConfig& config) {
  MetricMap base_metrics = flatten(base);
  MetricMap test_metrics = flatten(test);

  // Scaling verdicts (speedup, per-core efficiency) are meaningless when
  // either run executed on a core-starved machine — drop them from both
  // sides so a shared CI runner cannot fail a baseline captured on a full
  // machine (or vice versa).
  auto core_starved = [](const JsonValue& doc) {
    if (!doc.is_object()) return false;
    const JsonValue* v = doc.find("core_starved");
    if (v == nullptr) return false;
    return (v->is_bool() && v->as_bool()) || (v->is_number() && v->as_number() != 0.0);
  };
  if (core_starved(base) || core_starved(test)) {
    auto scaling = [](const std::string& key) {
      return contains(key, "speedup") || contains(key, "efficiency");
    };
    for (auto it = base_metrics.begin(); it != base_metrics.end();) {
      it = scaling(it->first) ? base_metrics.erase(it) : std::next(it);
    }
    for (auto it = test_metrics.begin(); it != test_metrics.end();) {
      it = scaling(it->first) ? test_metrics.erase(it) : std::next(it);
    }
  }

  ComparisonReport report;
  for (const auto& [key, b] : base_metrics) {
    auto it = test_metrics.find(key);
    if (it == test_metrics.end()) {
      report.only_in_base.push_back(key);
      continue;
    }
    const MetricPoint& t = it->second;
    MetricDelta d;
    d.key = key;
    d.base = b.mean;
    d.base_ci = b.ci95;
    d.test = t.mean;
    d.test_ci = t.ci95;
    d.delta = t.mean - b.mean;
    d.delta_pct = b.mean != 0.0 ? d.delta / std::abs(b.mean) * 100.0 : 0.0;
    d.lower_is_better = metric_lower_is_better(key);
    double magnitude = std::max(std::abs(b.mean), std::abs(t.mean));
    bool significant = std::abs(d.delta) > b.ci95 + t.ci95 &&
                       std::abs(d.delta) > config.rel_tolerance * magnitude;
    if (!significant) {
      d.verdict = Verdict::kWithinNoise;
      ++report.within_noise;
    } else if ((d.delta < 0.0) == d.lower_is_better) {
      d.verdict = Verdict::kImproved;
      ++report.improved;
    } else {
      d.verdict = Verdict::kRegressed;
      ++report.regressed;
    }
    report.deltas.push_back(std::move(d));
  }
  for (const auto& [key, t] : test_metrics) {
    if (base_metrics.find(key) == base_metrics.end()) report.only_in_test.push_back(key);
  }
  return report;
}

ComparisonReport compare_json_text(const std::string& base_text, const std::string& test_text,
                                   const ComparisonConfig& config) {
  return compare_runs(parse_json(base_text), parse_json(test_text), config);
}

void write_comparison_json(const ComparisonReport& report, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.key("improved").value(static_cast<unsigned long long>(report.improved));
  w.key("regressed").value(static_cast<unsigned long long>(report.regressed));
  w.key("within_noise").value(static_cast<unsigned long long>(report.within_noise));
  w.key("metrics").begin_array();
  for (const MetricDelta& d : report.deltas) {
    w.begin_object();
    w.key("key").value(d.key);
    w.key("base").raw(json_number(d.base, 9));
    w.key("base_ci95").raw(json_number(d.base_ci, 9));
    w.key("test").raw(json_number(d.test, 9));
    w.key("test_ci95").raw(json_number(d.test_ci, 9));
    w.key("delta").raw(json_number(d.delta, 9));
    w.key("delta_pct").raw(json_number(d.delta_pct, 9));
    w.key("lower_is_better").value(d.lower_is_better);
    w.key("verdict").value(to_string(d.verdict));
    w.end_object();
  }
  w.end_array();
  w.key("only_in_base").begin_array();
  for (const std::string& k : report.only_in_base) w.value(k);
  w.end_array();
  w.key("only_in_test").begin_array();
  for (const std::string& k : report.only_in_test) w.value(k);
  w.end_array();
  w.end_object();
  os << "\n";
}

void print_comparison(const ComparisonReport& report, std::ostream& os) {
  TextTable table({"metric", "base", "test", "delta%", "verdict"});
  for (const MetricDelta& d : report.deltas) {
    table.add_row({d.key, format_number(d.base), format_number(d.test),
                   format_fixed(d.delta_pct, 2), std::string(to_string(d.verdict))});
  }
  table.print(os);
  os << report.improved << " improved, " << report.regressed << " regressed, "
     << report.within_noise << " within noise";
  if (!report.only_in_base.empty() || !report.only_in_test.empty()) {
    os << " (" << report.only_in_base.size() << " only in base, " << report.only_in_test.size()
       << " only in test)";
  }
  os << "\n";
}

}  // namespace rupam
