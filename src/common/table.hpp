// ASCII table and CSV renderers used by the benchmark harnesses to print
// paper-style tables and figure data series.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rupam {

/// Column-aligned plain-text table. Cells are strings; callers format
/// numbers with format_number()/format_fixed() helpers below.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Render with a header rule and column padding.
  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Write rows as CSV (comma-separated, minimal quoting).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

/// Fixed-point formatting, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);
/// Human-friendly: trims trailing zeros, e.g. "2.5", "37.7", "1200".
std::string format_number(double value);

}  // namespace rupam
