#include "common/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rupam {

std::string json_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view in) { return "\"" + json_escape(in) + "\""; }

std::string json_number(double value, int precision) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

JsonWriter::JsonWriter(std::ostream& os, bool pretty) : os_(os), pretty_(pretty) {}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already handled comma + indent
  }
  if (!stack_.empty()) {
    Frame& top = stack_.back();
    if (!top.array) {
      throw std::logic_error("JsonWriter: value inside an object requires key()");
    }
    if (!top.first) os_ << ',';
    top.first = false;
    newline_indent();
  } else if (started_) {
    throw std::logic_error("JsonWriter: multiple top-level values");
  }
  started_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame{/*array=*/false, /*first=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().array || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame{/*array=*/true, /*first=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || !stack_.back().array) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back().array || key_pending_) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  Frame& top = stack_.back();
  if (!top.first) os_ << ',';
  top.first = false;
  newline_indent();
  os_ << json_quote(name) << (pretty_ ? ": " : ":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view rendered) {
  before_value();
  os_ << rendered;
  return *this;
}

}  // namespace rupam
