#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rupam {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  std::uint32_t xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

double Rng::uniform() {
  // 53-bit mantissa from a 64-bit draw; result in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Rejection-free multiply-shift (Lemire); tiny modulo bias is irrelevant
  // for simulation workload synthesis but determinism is preserved exactly.
  return static_cast<std::uint64_t>(uniform() * static_cast<double>(n)) % n;
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::clamped_normal(double mean, double stddev, double lo, double hi) {
  double v = normal(mean, stddev);
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

Rng Rng::split() { return Rng(next_u64(), next_u64()); }

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  double u = rng.uniform();
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rupam
