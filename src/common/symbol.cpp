#include "common/symbol.hpp"

namespace rupam {

std::uint32_t SymbolTable::intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(names_.size());
  auto [inserted, ok] = ids_.emplace(std::string(name), id);
  names_.push_back(&inserted->first);
  return id;
}

std::uint32_t SymbolTable::find(std::string_view name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

}  // namespace rupam
