// Minimal JSON parser for configuration inputs (fleet specs). The repo
// deliberately has no third-party dependencies, so this implements just
// the JSON value model: objects, arrays, strings, numbers, bool, null.
// Strict where it matters for config files — trailing garbage, duplicate
// keys and malformed literals are errors with position information.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace rupam {

class JsonValue;

/// Thrown on malformed input; `what()` carries a byte offset.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Ordered map keeps error messages and round-trips deterministic.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field lookup; returns nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(Array a);
  static JsonValue make_object(Object o);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse one JSON document; throws JsonParseError on malformed input
/// (including trailing non-whitespace and duplicate object keys).
JsonValue parse_json(const std::string& text);

}  // namespace rupam
