// Statistics helpers used by the metrics/reporting layer: running moments,
// percentiles, and small-sample 95% confidence intervals (the paper reports
// the average of 5 runs with a 95% CI, Fig 5).
#pragma once

#include <cstddef>
#include <vector>

namespace rupam {

/// Numerically stable (Welford) running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Half-width of the two-sided 95% confidence interval of the mean for n
/// samples with sample stddev s, using the Student-t quantile.
double confidence_interval_95(double stddev, std::size_t n);

/// Percentile (linear interpolation) of an unsorted sample; p in [0, 100].
/// Copies the sample — prefer percentile_inplace when the caller owns a
/// scratch vector it no longer needs ordered.
double percentile(std::vector<double> values, double p);

/// Same statistic, computed in place with nth_element (O(n) instead of a
/// copy + O(n log n) sort). Reorders `values` arbitrarily.
double percentile_inplace(std::vector<double>& values, double p);

double mean_of(const std::vector<double>& values);
double stddev_of(const std::vector<double>& values);

}  // namespace rupam
