// Core identifier and enum types shared across all rupam modules.
#pragma once

#include <cstdint>
#include <string_view>

namespace rupam {

/// Simulation time in seconds. All simulated durations/timestamps use this.
using SimTime = double;

/// Byte counts (data sizes, bandwidth work amounts).
using Bytes = double;

/// Abstract CPU work: core-seconds at the reference clock frequency.
using CpuWork = double;

using NodeId = std::int32_t;
using ExecutorId = std::int32_t;
using JobId = std::int32_t;
using StageId = std::int32_t;
using TaskId = std::int64_t;
using AttemptId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// The resource dimensions RUPAM tracks (Table I of the paper).
/// Order matters: the Dispatcher round-robins over these in this order.
enum class ResourceKind : std::uint8_t {
  kCpu = 0,
  kMemory = 1,
  kDisk = 2,
  kNetwork = 3,
  kGpu = 4,
};
inline constexpr int kNumResourceKinds = 5;

inline std::string_view to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu: return "CPU";
    case ResourceKind::kMemory: return "MEM";
    case ResourceKind::kDisk: return "I/O";
    case ResourceKind::kNetwork: return "NET";
    case ResourceKind::kGpu: return "GPU";
  }
  return "?";
}

/// Spark data-locality levels, best-first (paper §III-C1).
enum class Locality : std::uint8_t {
  kProcessLocal = 0,
  kNodeLocal = 1,
  kRackLocal = 2,
  kAny = 3,
};
inline constexpr int kNumLocalityLevels = 4;

inline std::string_view to_string(Locality level) {
  switch (level) {
    case Locality::kProcessLocal: return "PROCESS_LOCAL";
    case Locality::kNodeLocal: return "NODE_LOCAL";
    case Locality::kRackLocal: return "RACK_LOCAL";
    case Locality::kAny: return "ANY";
  }
  return "?";
}

}  // namespace rupam
