// Minimal leveled logger. Simulation components log with the simulated
// timestamp so traces read like real Spark driver logs. Disabled (kWarn)
// by default so benchmark output stays clean.
#pragma once

#include <sstream>
#include <string>

#include "common/types.hpp"

namespace rupam {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  /// Emit one line: "[ 12.345s] [INFO ] message".
  static void write(LogLevel level, SimTime now, const std::string& message);
};

namespace log_detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace log_detail

#define RUPAM_LOG(lvl_, now_, ...)                                                     \
  do {                                                                                 \
    if (static_cast<int>(lvl_) >= static_cast<int>(::rupam::Logger::level())) {        \
      ::rupam::Logger::write(lvl_, now_, ::rupam::log_detail::concat(__VA_ARGS__));    \
    }                                                                                  \
  } while (0)

#define RUPAM_DEBUG(now, ...) RUPAM_LOG(::rupam::LogLevel::kDebug, now, __VA_ARGS__)
#define RUPAM_INFO(now, ...) RUPAM_LOG(::rupam::LogLevel::kInfo, now, __VA_ARGS__)
#define RUPAM_WARN(now, ...) RUPAM_LOG(::rupam::LogLevel::kWarn, now, __VA_ARGS__)

}  // namespace rupam
