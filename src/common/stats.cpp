#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rupam {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::size_t total = n_ + other.n_;
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
  mean_ = (na * mean_ + nb * other.mean_) / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double confidence_interval_95(double stddev, std::size_t n) {
  if (n < 2) return 0.0;
  // Two-sided 97.5% Student-t quantiles for small df; converges to 1.96.
  static constexpr double kT[] = {0.0,   12.706, 4.303, 3.182, 2.776, 2.571,
                                  2.447, 2.365,  2.306, 2.262, 2.228};
  std::size_t df = n - 1;
  double t = df < std::size(kT) ? kT[df] : 1.96 + 2.6 / static_cast<double>(df);
  return t * stddev / std::sqrt(static_cast<double>(n));
}

double percentile(std::vector<double> values, double p) { return percentile_inplace(values, p); }

double percentile_inplace(std::vector<double>& values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  auto lo_it = values.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(values.begin(), lo_it, values.end());
  double lo_val = *lo_it;
  if (hi == lo || frac == 0.0) return lo_val;
  // The hi rank is the minimum of the suffix nth_element left above lo.
  double hi_val = *std::min_element(lo_it + 1, values.end());
  return lo_val * (1.0 - frac) + hi_val * frac;
}

double mean_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

}  // namespace rupam
