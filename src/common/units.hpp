// Unit helpers: byte sizes, bandwidths, time constants.
#pragma once

#include "common/types.hpp"

namespace rupam {

inline constexpr Bytes kKiB = 1024.0;
inline constexpr Bytes kMiB = 1024.0 * kKiB;
inline constexpr Bytes kGiB = 1024.0 * kMiB;
inline constexpr Bytes kTiB = 1024.0 * kGiB;

/// Network bandwidths are quoted in decimal bits/s (1 GbE = 1e9 bit/s).
constexpr Bytes gbit_per_s(double gbit) { return gbit * 1e9 / 8.0; }
constexpr Bytes mbit_per_s(double mbit) { return mbit * 1e6 / 8.0; }

constexpr Bytes mib_per_s(double mib) { return mib * kMiB; }

constexpr SimTime milliseconds(double ms) { return ms / 1000.0; }
constexpr SimTime seconds(double s) { return s; }
constexpr SimTime minutes(double m) { return m * 60.0; }

constexpr double to_gib(Bytes b) { return b / kGiB; }
constexpr double to_mib(Bytes b) { return b / kMiB; }

}  // namespace rupam
