#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace rupam {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width does not match header");
  }
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    const std::string& cell = cells[i];
    if (cell.find_first_of(",\"\n\r") != std::string::npos) {
      os_ << '"';
      for (char ch : cell) {
        if (ch == '"') os_ << '"';
        os_ << ch;
      }
      os_ << '"';
    } else {
      os_ << cell;
    }
  }
  os_ << '\n';
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_number(double value) {
  std::string s = format_fixed(value, 2);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s.empty() ? "0" : s;
}

}  // namespace rupam
