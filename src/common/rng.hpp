// Deterministic random number generation for the simulator.
//
// All stochastic behaviour in the simulation flows from one Rng seeded per
// run, so a (seed, configuration) pair fully determines every result.
#pragma once

#include <cstdint>
#include <vector>

namespace rupam {

/// PCG32: small, fast, statistically solid, fully deterministic across
/// platforms (unlike std::mt19937 paired with std:: distributions, whose
/// outputs are implementation-defined).
class Rng {
 public:
  using result_type = std::uint32_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  result_type operator()() { return next_u32(); }
  std::uint32_t next_u32();
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (deterministic; caches the spare).
  double normal();
  double normal(double mean, double stddev);
  /// Normal truncated to [lo, hi] by clamping (keeps determinism simple).
  double clamped_normal(double mean, double stddev, double lo, double hi);

  double exponential(double rate);
  double lognormal(double mu, double sigma);

  /// Derive an independent child generator (for per-component streams).
  Rng split();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Zipf-distributed integers in [0, n). Used for data-skew models:
/// partition sizes in real Spark stages are heavy-tailed (paper §II-B2).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  std::size_t operator()(Rng& rng) const;
  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace rupam
