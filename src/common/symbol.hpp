// Interned symbol table: the backbone of the allocation-free dispatch
// path. Hot scheduler structures (per-pool fair-share state, the task-
// characteristics DB) key on small dense integer ids instead of strings;
// the owning table translates back to the human-readable name only at
// observation boundaries (trace/audit export, log lines).
//
// Ids are dense and never recycled: the first distinct name interned gets
// 0, the next 1, and so on, so `std::vector` indexed by id is the natural
// per-symbol store. Tables are per-instance, never global — concurrent
// simulations (the sweep worker pool) each own their scheduler and its
// tables, so a process-wide registry would be a data race and a
// cross-run determinism leak.
//
// Costs: intern is amortized O(1) (one hash probe; one string copy on
// first sighting only), id→name is O(1) with no allocation, and find()
// never allocates (heterogeneous string_view lookup).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rupam {

inline constexpr std::uint32_t kInvalidSymbol = 0xffffffffu;

/// Typed wrapper so a PoolId cannot be passed where a StageNameId is
/// expected. Default-constructed ids are invalid (resolve to "" at export
/// boundaries).
template <class Tag>
struct SymbolId {
  std::uint32_t value = kInvalidSymbol;

  constexpr SymbolId() = default;
  constexpr explicit SymbolId(std::uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalidSymbol; }
  /// Dense vector index; only meaningful when valid().
  constexpr std::size_t index() const { return value; }

  friend constexpr bool operator==(SymbolId a, SymbolId b) { return a.value == b.value; }
  friend constexpr bool operator!=(SymbolId a, SymbolId b) { return a.value != b.value; }
  friend constexpr bool operator<(SymbolId a, SymbolId b) { return a.value < b.value; }
};

struct PoolNameTag;
struct StageNameTag;
/// Scheduling-pool name (sched/pool.hpp); 0 is always kDefaultPool.
using PoolId = SymbolId<PoolNameTag>;
/// Stage name as used by DB_task_char's (stage name, partition) key.
using StageNameId = SymbolId<StageNameTag>;

class SymbolTable {
 public:
  /// Id of `name`, interning it on first sighting.
  std::uint32_t intern(std::string_view name);
  /// Id of `name` without interning; kInvalidSymbol when never seen.
  std::uint32_t find(std::string_view name) const;
  /// O(1) reverse lookup. `id` must be a value this table returned.
  const std::string& name(std::uint32_t id) const { return *names_[id]; }
  std::size_t size() const { return names_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };

  std::unordered_map<std::string, std::uint32_t, Hash, Eq> ids_;
  /// id → key in ids_ (node-based map: element addresses survive rehash).
  std::vector<const std::string*> names_;
};

/// SymbolTable whose ids carry the tag of one symbol family.
template <class Tag>
class TypedSymbolTable {
 public:
  SymbolId<Tag> intern(std::string_view name) { return SymbolId<Tag>(table_.intern(name)); }
  SymbolId<Tag> find(std::string_view name) const { return SymbolId<Tag>(table_.find(name)); }
  const std::string& name(SymbolId<Tag> id) const { return table_.name(id.value); }
  std::size_t size() const { return table_.size(); }

 private:
  SymbolTable table_;
};

}  // namespace rupam
