#include "common/json_reader.hpp"

#include <cctype>
#include <cstdlib>

namespace rupam {

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("JSON value is not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("JSON value is not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) throw std::runtime_error("JSON value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(Array a) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::make_object(Object o) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(o);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError("JSON parse error at offset " + std::to_string(pos_) + ": " +
                         message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("malformed literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("malformed literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("malformed literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object fields;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(fields));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      if (fields.count(key) > 0) fail("duplicate object key '" + key + "'");
      skip_whitespace();
      expect(':');
      fields.emplace(std::move(key), parse_value());
      skip_whitespace();
      char c = peek();
      ++pos_;
      if (c == '}') return JsonValue::make_object(std::move(fields));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      char c = peek();
      ++pos_;
      if (c == ']') return JsonValue::make_array(std::move(items));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("malformed \\u escape");
          }
          // Config files are ASCII in practice; encode BMP code points as
          // UTF-8 and reject surrogates rather than pairing them.
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape unsupported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      fail("malformed number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed number fraction");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed number exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    return JsonValue::make_number(std::strtod(text_.c_str() + start, nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace rupam
