// Minimal streaming JSON writer shared by every exporter that emits JSON
// by hand (chrome-tracing traces, BENCH_*.json sidecars, the metrics and
// scheduler-audit expositions). One escaping routine, one comma/indent
// state machine — so the emitters cannot drift apart on escaping rules.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rupam {

/// Escape a string for inclusion inside a JSON string literal (no quotes
/// added): ", \, and all control characters below 0x20.
std::string json_escape(std::string_view in);

/// `json_escape` wrapped in double quotes.
std::string json_quote(std::string_view in);

/// Render a double as a JSON number. Non-finite values (which JSON cannot
/// represent) become 0.
std::string json_number(double value, int precision = 6);

/// Streaming writer with automatic commas and 2-space indentation:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("count").value(3);
///   w.key("items").begin_array().value("a").value("b").end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = true);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be followed by exactly one value or
  /// container. Throws std::logic_error outside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(bool v);
  /// Pre-rendered JSON (a number formatted elsewhere, a nested literal).
  JsonWriter& raw(std::string_view rendered);

  /// All containers closed.
  bool complete() const { return stack_.empty() && started_; }

 private:
  struct Frame {
    bool array = false;
    bool first = true;
  };

  void before_value();
  void newline_indent();

  std::ostream& os_;
  bool pretty_;
  bool started_ = false;
  bool key_pending_ = false;
  std::vector<Frame> stack_;
};

}  // namespace rupam
