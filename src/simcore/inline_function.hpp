// Move-only `void()` callable with small-buffer-optimized storage.
//
// The event queue stores one callback per scheduled event; with
// std::function every schedule_*() heap-allocates the capture. Almost all
// kernel callbacks capture a `this` pointer plus a couple of scalars or a
// shared_ptr, so a 48-byte inline buffer keeps the common case off the
// allocator entirely. Oversized captures still work — they fall back to a
// single heap allocation, visible via heap_allocated() so the Simulator
// can count them (KernelStats::callback_heap_allocs) and benches can
// assert the hot path stays allocation-free.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rupam {

class InlineFunction {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  InlineFunction() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    construct<D>(std::forward<F>(fn));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  void operator()() { invoke_(buf_); }
  explicit operator bool() const { return invoke_ != nullptr; }

  /// True when the capture exceeded kInlineBytes and lives on the heap
  /// (moves transfer ownership of the same allocation, so this is stable
  /// across moves).
  bool heap_allocated() const { return heap_; }

  void reset() {
    if (manage_) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
    heap_ = false;
  }

 private:
  enum class Op { kDestroy, kMove };
  using Invoker = void (*)(void*);
  using Manager = void (*)(Op, void* self, void* dest);

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D, typename F>
  void construct(F&& fn) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); };
      manage_ = [](Op op, void* self, void* dest) {
        D* s = std::launder(reinterpret_cast<D*>(self));
        if (op == Op::kDestroy) {
          s->~D();
        } else {
          ::new (dest) D(std::move(*s));
          s->~D();
        }
      };
    } else {
      heap_ = true;
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); };
      manage_ = [](Op op, void* self, void* dest) {
        D** s = std::launder(reinterpret_cast<D**>(self));
        if (op == Op::kDestroy) {
          delete *s;
        } else {
          ::new (dest) D*(*s);  // steal the pointer; source is abandoned
        }
      };
    }
  }

  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    if (manage_) manage_(Op::kMove, other.buf_, buf_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = false;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  Invoker invoke_ = nullptr;
  Manager manage_ = nullptr;
  bool heap_ = false;
};

}  // namespace rupam
