// Discrete-event simulation kernel.
//
// Components schedule callbacks at absolute or relative simulated times and
// may cancel them (resource models reschedule completion events whenever the
// set of contending claims changes). Event ordering is (time, insertion
// sequence), so same-time events run in FIFO order and runs are fully
// deterministic.
//
// Hot-path layout: event records live in a slot-reusing arena (steady-state
// scheduling allocates nothing), an indexed binary heap of slot indices
// orders them, and cancel() removes the record from the heap in O(log n) —
// no tombstones survive, so cancel-heavy churn cannot bloat the queue.
// Handles carry a generation counter instead of a per-event shared_ptr:
// a handle whose slot has been reused simply stops matching. Callbacks use
// InlineFunction, so common capture sizes never touch the allocator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "simcore/inline_function.hpp"
#include "simcore/kernel_stats.hpp"

namespace rupam {

class Simulator;

/// Cancellation token for a scheduled event. Default-constructed handles are
/// inert; cancel() on an already-fired or cancelled event is a no-op. A
/// handle weakly references the Simulator that issued it, so it must not be
/// used after that Simulator is destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint64_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}
  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

class Simulator {
 public:
  using Callback = InlineFunction;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `when` (>= now()).
  EventHandle schedule_at(SimTime when, Callback fn);
  /// Schedule `fn` `delay` seconds from now (delay >= 0).
  EventHandle schedule_after(SimTime delay, Callback fn);

  /// Run until the event queue drains or `until` is reached, whichever is
  /// first. Returns the number of events executed.
  std::size_t run(SimTime until = kForever);
  /// Execute at most one event. Returns false if the queue is empty.
  bool step();

  /// True when no live events remain (cancelled events are removed
  /// immediately, so this is exact).
  bool empty() const { return heap_.empty(); }
  /// Time of the next event to fire, or kForever when the queue is empty.
  /// Between step() calls the simulation is quiescent, so this is the
  /// replay layer's event-boundary probe: advancing while
  /// next_event_time() <= T replays exactly the events a straight run
  /// would have executed by T.
  SimTime next_event_time() const {
    return heap_.empty() ? kForever : arena_[heap_[0]].time;
  }
  /// Live events currently queued — cancellations shrink this immediately.
  std::size_t pending_events() const { return heap_.size(); }
  /// High-watermark of pending_events() over this simulator's lifetime.
  std::size_t peak_pending_events() const { return peak_pending_; }
  std::size_t executed_events() const { return executed_; }

  /// Per-instance kernel work/allocation counters. Instances are fully
  /// isolated: concurrent Simulators in one process never share state.
  const KernelStats& stats() const { return stats_; }

  static constexpr SimTime kForever = 1e300;

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNullIndex = 0xffffffffu;

  struct Event {
    SimTime time = 0.0;
    std::uint64_t seq = 0;
    /// Bumped whenever the slot is released; handles whose generation no
    /// longer matches are stale (event fired, was cancelled, or slot reused).
    std::uint64_t generation = 0;
    std::uint32_t heap_pos = kNullIndex;
    std::uint32_t next_free = kNullIndex;
    Callback fn;
  };

  bool event_before(std::uint32_t a, std::uint32_t b) const {
    const Event& ea = arena_[a];
    const Event& eb = arena_[b];
    if (ea.time != eb.time) return ea.time < eb.time;
    return ea.seq < eb.seq;
  }

  void heap_sift_up(std::size_t pos);
  void heap_sift_down(std::size_t pos);
  void heap_push(std::uint32_t slot);
  void heap_remove(std::size_t pos);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  bool event_pending(std::uint32_t slot, std::uint64_t generation) const {
    return slot < arena_.size() && arena_[slot].generation == generation;
  }
  void cancel_event(std::uint32_t slot, std::uint64_t generation);

  std::vector<Event> arena_;          // slot-reusing event records
  std::vector<std::uint32_t> heap_;   // binary heap of slots, (time, seq) order
  std::uint32_t free_head_ = kNullIndex;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t peak_pending_ = 0;
  KernelStats stats_;
};

}  // namespace rupam
