// Discrete-event simulation kernel.
//
// Components schedule callbacks at absolute or relative simulated times and
// may cancel them (resource models reschedule completion events whenever the
// set of contending claims changes). Event ordering is (time, insertion
// sequence), so same-time events run in FIFO order and runs are fully
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace rupam {

class Simulator;

/// Cancellation token for a scheduled event. Default-constructed handles are
/// inert; cancel() on an already-fired or cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  bool pending() const;

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `when` (>= now()).
  EventHandle schedule_at(SimTime when, Callback fn);
  /// Schedule `fn` `delay` seconds from now (delay >= 0).
  EventHandle schedule_after(SimTime delay, Callback fn);

  /// Run until the event queue drains or `until` is reached, whichever is
  /// first. Returns the number of events executed.
  std::size_t run(SimTime until = kForever);
  /// Execute at most one event. Returns false if the queue is empty.
  bool step();

  bool empty() const;
  std::size_t executed_events() const { return executed_; }

  static constexpr SimTime kForever = 1e300;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace rupam
