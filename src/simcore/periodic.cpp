#include "simcore/periodic.hpp"

#include <algorithm>
#include <stdexcept>

namespace rupam {

PeriodicTaskSet::PeriodicTaskSet(Simulator& sim, SimTime period) : sim_(sim), period_(period) {
  if (period <= 0.0) throw std::invalid_argument("PeriodicTaskSet: period must be > 0");
}

std::size_t PeriodicTaskSet::add(SimTime phase, std::function<void()> fn) {
  if (running_) throw std::logic_error("PeriodicTaskSet: cannot add members while running");
  if (phase < 0.0 || phase >= period_) {
    throw std::invalid_argument("PeriodicTaskSet: phase outside [0, period)");
  }
  members_.push_back(Member{phase, 0.0, std::move(fn)});
  return members_.size() - 1;
}

void PeriodicTaskSet::start() {
  if (running_) return;
  running_ = true;
  if (members_.empty()) return;
  order_.resize(members_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::stable_sort(order_.begin(), order_.end(), [this](std::size_t a, std::size_t b) {
    return members_[a].phase < members_[b].phase;
  });
  for (Member& m : members_) m.next_due = sim_.now() + m.phase;
  cursor_ = 0;
  arm();
}

void PeriodicTaskSet::stop() {
  running_ = false;
  handle_.cancel();
}

void PeriodicTaskSet::arm() {
  handle_ = sim_.schedule_at(members_[order_[cursor_]].next_due, [this] { fire(); });
}

void PeriodicTaskSet::fire() {
  if (!running_) return;
  Member& m = members_[order_[cursor_]];
  m.next_due += period_;  // == now + period: the fire time was exact
  cursor_ = (cursor_ + 1) % order_.size();
  // Re-arm before running the member so the next timer's queue position
  // precedes any same-time events the member schedules — exactly where a
  // self-rescheduling timer pushed one period earlier would sit.
  arm();
  m.fn();
}

}  // namespace rupam
