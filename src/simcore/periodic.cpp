#include "simcore/periodic.hpp"

#include <algorithm>
#include <stdexcept>

namespace rupam {

PeriodicTaskSet::PeriodicTaskSet(Simulator& sim, SimTime period) : sim_(sim), period_(period) {
  if (period <= 0.0) throw std::invalid_argument("PeriodicTaskSet: period must be > 0");
}

std::size_t PeriodicTaskSet::add(SimTime phase, std::function<void()> fn) {
  if (running_) throw std::logic_error("PeriodicTaskSet: cannot add members while running");
  if (phase < 0.0 || phase >= period_) {
    throw std::invalid_argument("PeriodicTaskSet: phase outside [0, period)");
  }
  members_.push_back(Member{phase, 0.0, std::move(fn), true});
  ++active_;
  return members_.size() - 1;
}

std::size_t PeriodicTaskSet::join(SimTime phase, std::function<void()> fn) {
  if (!running_) return add(phase, std::move(fn));
  if (phase < 0.0 || phase >= period_) {
    throw std::invalid_argument("PeriodicTaskSet: phase outside [0, period)");
  }
  members_.push_back(Member{phase, sim_.now() + phase, std::move(fn), true});
  ++active_;
  std::size_t idx = members_.size() - 1;
  normalize();
  // The ring, read from the front, is sorted by next_due (firing order).
  // Insert after any member with an equal deadline: an already-queued timer
  // beats one scheduled right now, matching kernel FIFO order.
  SimTime due = members_[idx].next_due;
  std::size_t pos = 0;
  while (pos < order_.size() && members_[order_[pos]].next_due <= due) ++pos;
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(pos), idx);
  if (pos == 0) {
    handle_.cancel();
    arm();
  }
  return idx;
}

bool PeriodicTaskSet::leave(std::size_t member) {
  if (member >= members_.size() || !members_[member].active) return false;
  members_[member].active = false;
  --active_;
  if (!running_) return true;
  normalize();
  auto it = std::find(order_.begin(), order_.end(), member);
  if (it == order_.end()) return true;
  bool was_front = it == order_.begin();
  order_.erase(it);
  if (was_front) {
    handle_.cancel();
    if (!order_.empty()) arm();
  }
  return true;
}

void PeriodicTaskSet::start() {
  if (running_) return;
  running_ = true;
  order_.clear();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].active) order_.push_back(i);
  }
  if (order_.empty()) return;
  std::stable_sort(order_.begin(), order_.end(), [this](std::size_t a, std::size_t b) {
    return members_[a].phase < members_[b].phase;
  });
  for (Member& m : members_) m.next_due = sim_.now() + m.phase;
  cursor_ = 0;
  arm();
}

void PeriodicTaskSet::stop() {
  running_ = false;
  handle_.cancel();
}

void PeriodicTaskSet::arm() {
  handle_ = sim_.schedule_at(members_[order_[cursor_]].next_due, [this] { fire(); });
}

void PeriodicTaskSet::fire() {
  if (!running_) return;
  Member& m = members_[order_[cursor_]];
  m.next_due += period_;  // == now + period: the fire time was exact
  cursor_ = (cursor_ + 1) % order_.size();
  // Re-arm before running the member so the next timer's queue position
  // precedes any same-time events the member schedules — exactly where a
  // self-rescheduling timer pushed one period earlier would sit.
  arm();
  m.fn();
}

// Rotate the firing ring so cursor_ == 0, making "firing order" and "vector
// order" coincide for membership edits. O(n), only on join/leave.
void PeriodicTaskSet::normalize() {
  if (cursor_ == 0) return;
  std::rotate(order_.begin(), order_.begin() + static_cast<std::ptrdiff_t>(cursor_), order_.end());
  cursor_ = 0;
}

}  // namespace rupam
