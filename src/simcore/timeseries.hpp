// Time-series recording for utilization plots (Figs 2, 8, 9).
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace rupam {

/// A (time, value) series with helpers the figure harnesses need:
/// per-bucket resampling, means, and cross-series stddev.
class TimeSeries {
 public:
  struct Point {
    SimTime time;
    double value;
  };

  void add(SimTime time, double value);

  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  double mean() const;
  double max() const;

  /// Average `value` within consecutive buckets of width `dt` covering
  /// [0, horizon). Buckets with no samples carry the previous bucket value.
  std::vector<double> resample(SimTime dt, SimTime horizon) const;

 private:
  std::vector<Point> points_;
};

/// Per-timestep standard deviation across N aligned series (Fig 9: the
/// utilization balance across cluster nodes).
std::vector<double> cross_series_stddev(const std::vector<std::vector<double>>& series);

}  // namespace rupam
