#include "simcore/kernel_stats.hpp"

namespace rupam {

KernelStats& kernel_stats() {
  static KernelStats stats;
  return stats;
}

void reset_kernel_stats() { kernel_stats() = KernelStats{}; }

}  // namespace rupam
