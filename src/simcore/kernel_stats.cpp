#include "simcore/kernel_stats.hpp"

namespace rupam {

KernelStats& KernelStats::operator+=(const KernelStats& other) {
  events_scheduled += other.events_scheduled;
  events_executed += other.events_executed;
  events_cancelled += other.events_cancelled;
  arena_slot_allocs += other.arena_slot_allocs;
  callback_heap_allocs += other.callback_heap_allocs;
  return *this;
}

}  // namespace rupam
