// Tallies of simulation-kernel work and allocator traffic.
//
// Each Simulator owns one KernelStats instance (Simulator::stats()), so
// concurrent simulations in one process — the sweep orchestrator runs
// thousands — never share a counter. Benches snapshot the stats of the
// Simulation(s) they measured into the bench JSON sidecar (bench_common
// JsonReport::record_kernel), so BENCH_*.json captures memory behaviour
// alongside wall time.
#pragma once

#include <cstdint>

namespace rupam {

struct KernelStats {
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  /// Event-arena growth: slots constructed (reused slots don't count).
  std::uint64_t arena_slot_allocs = 0;
  /// Callbacks whose captures exceeded the inline buffer and fell back to
  /// the heap (see InlineFunction::kInlineBytes).
  std::uint64_t callback_heap_allocs = 0;

  /// Accumulate another simulator's counters (bench aggregation).
  KernelStats& operator+=(const KernelStats& other);
};

}  // namespace rupam
