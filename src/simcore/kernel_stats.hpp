// Process-wide tallies of simulation-kernel work and allocator traffic.
//
// Simulations are single-threaded, so these are plain counters. Benches
// reset them around a measured region to report allocations/event; the
// bench JSON sidecar (bench_common) snapshots them into every report so
// BENCH_*.json captures memory behaviour alongside wall time.
#pragma once

#include <cstdint>

namespace rupam {

struct KernelStats {
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  /// Event-arena growth: slots constructed (reused slots don't count).
  std::uint64_t arena_slot_allocs = 0;
  /// Callbacks whose captures exceeded the inline buffer and fell back to
  /// the heap (see InlineFunction::kInlineBytes).
  std::uint64_t callback_heap_allocs = 0;
};

KernelStats& kernel_stats();
void reset_kernel_stats();

}  // namespace rupam
