// Coalesced periodic timers.
//
// A PeriodicTaskSet runs N members on a shared period, each at a fixed
// phase offset, while occupying exactly ONE kernel event-queue entry at any
// moment: the set keeps its own cyclic firing order and re-arms a single
// event for the next member due. An N-node fleet's heartbeats therefore
// cost O(1) queue residency instead of O(N) self-rescheduling timers.
//
// Firing times are bit-identical to the self-rescheduling pattern they
// replace: a member's first firing is now + phase (as schedule_after(phase)
// would produce) and each subsequent firing is previous + period (as
// schedule_after(period) from inside the callback would produce).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "simcore/simulator.hpp"

namespace rupam {

class PeriodicTaskSet {
 public:
  PeriodicTaskSet(Simulator& sim, SimTime period);

  /// Register a member firing at now+phase, now+phase+period, ... once the
  /// set is started. Phase must lie in [0, period). Members cannot be added
  /// while running (use join() for that). Returns the member's index.
  std::size_t add(SimTime phase, std::function<void()> fn);

  /// Register a member at runtime. Before start() this is add(); while the
  /// set is running the member's first firing is now+phase — exactly what a
  /// freshly created self-rescheduling timer would produce — and the single
  /// armed queue entry is preserved. Must not be called re-entrantly from a
  /// member callback of this set (leave() is fine there). Returns the
  /// member's index.
  std::size_t join(SimTime phase, std::function<void()> fn);

  /// Retire a member at runtime: it never fires again and is excluded from
  /// any future start(). Safe to call from inside a member callback. Returns
  /// false if the index is unknown or already retired.
  bool leave(std::size_t member);

  /// True while the member is registered and not retired.
  bool member_active(std::size_t member) const {
    return member < members_.size() && members_[member].active;
  }

  /// Arm the set (first firings land within one period). Restarting after
  /// stop() re-bases every member's phase on the current time.
  void start();
  void stop();

  bool running() const { return running_; }
  SimTime period() const { return period_; }
  /// Members that can still fire (retired members are excluded).
  std::size_t size() const { return active_; }
  /// Kernel event-queue entries this set occupies: 1 while armed, else 0 —
  /// independent of member count.
  std::size_t queue_entries() const { return handle_.pending() ? 1u : 0u; }

 private:
  struct Member {
    SimTime phase;
    SimTime next_due = 0.0;
    std::function<void()> fn;
    bool active = true;
  };

  void arm();
  void fire();
  void normalize();

  Simulator& sim_;
  SimTime period_;
  bool running_ = false;
  std::size_t active_ = 0;          // members not yet retired
  std::vector<Member> members_;     // append-only; indices are stable
  std::vector<std::size_t> order_;  // active member indices in firing order
  std::size_t cursor_ = 0;          // next entry of order_ to fire
  EventHandle handle_;
};

}  // namespace rupam
