#include "simcore/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace rupam {

void EventHandle::cancel() {
  if (sim_) sim_->cancel_event(slot_, generation_);
}

bool EventHandle::pending() const { return sim_ && sim_->event_pending(slot_, generation_); }

void Simulator::heap_sift_up(std::size_t pos) {
  std::uint32_t slot = heap_[pos];
  while (pos > 0) {
    std::size_t parent = (pos - 1) / 2;
    if (!event_before(slot, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    arena_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = slot;
  arena_[slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::heap_sift_down(std::size_t pos) {
  std::uint32_t slot = heap_[pos];
  std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && event_before(heap_[child + 1], heap_[child])) ++child;
    if (!event_before(heap_[child], slot)) break;
    heap_[pos] = heap_[child];
    arena_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = child;
  }
  heap_[pos] = slot;
  arena_[slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::heap_push(std::uint32_t slot) {
  heap_.push_back(slot);
  if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
  heap_sift_up(heap_.size() - 1);
}

void Simulator::heap_remove(std::size_t pos) {
  std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    arena_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    heap_.pop_back();
    // The migrated slot may need to move either way relative to `pos`.
    heap_sift_down(pos);
    heap_sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNullIndex) {
    std::uint32_t slot = free_head_;
    free_head_ = arena_[slot].next_free;
    arena_[slot].next_free = kNullIndex;
    return slot;
  }
  arena_.emplace_back();
  ++stats_.arena_slot_allocs;
  return static_cast<std::uint32_t>(arena_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Event& ev = arena_[slot];
  ++ev.generation;  // invalidate outstanding handles
  ev.heap_pos = kNullIndex;
  ev.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::cancel_event(std::uint32_t slot, std::uint64_t generation) {
  if (!event_pending(slot, generation)) return;
  Event& ev = arena_[slot];
  std::size_t pos = ev.heap_pos;
  heap_remove(pos);
  ev.fn.reset();  // release captured state now, not at pop time
  release_slot(slot);
  ++stats_.events_cancelled;
}

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) throw std::invalid_argument("schedule_at: time in the past");
  std::uint32_t slot = acquire_slot();
  Event& ev = arena_[slot];
  ev.time = when;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  if (ev.fn.heap_allocated()) ++stats_.callback_heap_allocs;
  heap_push(slot);
  ++stats_.events_scheduled;
  return EventHandle(this, slot, ev.generation);
}

EventHandle Simulator::schedule_after(SimTime delay, Callback fn) {
  if (delay < 0.0) throw std::invalid_argument("schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  std::uint32_t slot = heap_[0];
  Event& ev = arena_[slot];
  now_ = ev.time;
  Callback fn = std::move(ev.fn);
  heap_remove(0);
  release_slot(slot);
  ++executed_;
  ++stats_.events_executed;
  if (fn) fn();
  return true;
}

std::size_t Simulator::run(SimTime until) {
  std::size_t count = 0;
  while (!heap_.empty()) {
    if (arena_[heap_[0]].time > until) break;
    step();
    ++count;
  }
  if (now_ < until && until < kForever) now_ = until;
  return count;
}

}  // namespace rupam
