#include "simcore/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace rupam {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const { return state_ && !state_->cancelled && !state_->fired; }

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) throw std::invalid_argument("schedule_at: time in the past");
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Event{when, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

EventHandle Simulator::schedule_after(SimTime delay, Callback fn) {
  if (delay < 0.0) throw std::invalid_argument("schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.state->cancelled) continue;
    now_ = ev.time;
    ev.state->fired = true;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run(SimTime until) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    // Peek past cancelled events without executing them.
    const Event& top = queue_.top();
    if (top.state->cancelled) {
      queue_.pop();
      continue;
    }
    if (top.time > until) break;
    if (step()) ++count;
  }
  if (now_ < until && until < kForever) now_ = until;
  return count;
}

bool Simulator::empty() const {
  // Note: may report false when only cancelled events remain; run() skips
  // those, so callers that loop on run() terminate regardless.
  return queue_.empty();
}

}  // namespace rupam
