#include "simcore/timeseries.hpp"

#include <algorithm>
#include <stdexcept>

namespace rupam {

void TimeSeries::add(SimTime time, double value) {
  if (!points_.empty() && time < points_.back().time) {
    throw std::invalid_argument("TimeSeries: non-monotonic timestamp");
  }
  points_.push_back({time, value});
}

double TimeSeries::mean() const {
  RunningStats s;
  for (const auto& p : points_) s.add(p.value);
  return s.mean();
}

double TimeSeries::max() const {
  double m = 0.0;
  for (const auto& p : points_) m = std::max(m, p.value);
  return m;
}

std::vector<double> TimeSeries::resample(SimTime dt, SimTime horizon) const {
  if (dt <= 0.0) throw std::invalid_argument("resample: dt must be > 0");
  auto buckets = static_cast<std::size_t>(horizon / dt) + 1;
  std::vector<double> sums(buckets, 0.0);
  std::vector<std::size_t> counts(buckets, 0);
  for (const auto& p : points_) {
    auto b = static_cast<std::size_t>(p.time / dt);
    if (b >= buckets) continue;
    sums[b] += p.value;
    ++counts[b];
  }
  std::vector<double> out(buckets, 0.0);
  double last = 0.0;
  for (std::size_t b = 0; b < buckets; ++b) {
    if (counts[b] > 0) last = sums[b] / static_cast<double>(counts[b]);
    out[b] = last;
  }
  return out;
}

std::vector<double> cross_series_stddev(const std::vector<std::vector<double>>& series) {
  if (series.empty()) return {};
  std::size_t len = series.front().size();
  for (const auto& s : series) {
    if (s.size() != len) throw std::invalid_argument("cross_series_stddev: unaligned series");
  }
  std::vector<double> out(len, 0.0);
  for (std::size_t t = 0; t < len; ++t) {
    RunningStats st;
    for (const auto& s : series) st.add(s[t]);
    out[t] = st.stddev();
  }
  return out;
}

}  // namespace rupam
