#include "exec/block_cache.hpp"

#include <stdexcept>

namespace rupam {

BlockCache::BlockCache(Bytes capacity) : capacity_(capacity) {
  if (capacity < 0.0) throw std::invalid_argument("BlockCache: negative capacity");
}

void BlockCache::notify(const std::string& key, bool present) {
  if (listener_) listener_(key, present);
}

Bytes BlockCache::evict_for(Bytes needed) {
  Bytes evicted = 0.0;
  while (used_ + needed > capacity_ && !lru_.empty()) {
    std::string victim = lru_.back();
    auto it = entries_.find(victim);
    used_ -= it->second.size;
    evicted += it->second.size;
    entries_.erase(it);
    lru_.pop_back();
    notify(victim, false);
  }
  evicted_total_ += evicted;
  return evicted;
}

Bytes BlockCache::put(const std::string& key, Bytes size) {
  if (size < 0.0) throw std::invalid_argument("BlockCache: negative block size");
  if (size > capacity_) return 0.0;  // uncacheable: Spark skips, no eviction storm
  auto it = entries_.find(key);
  bool refresh = it != entries_.end();
  if (refresh) {
    used_ -= it->second.size;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  Bytes evicted = evict_for(size);
  lru_.push_front(key);
  entries_.emplace(key, Entry{size, lru_.begin()});
  used_ += size;
  if (!refresh) notify(key, true);  // refresh = no membership change
  return evicted;
}

bool BlockCache::contains(const std::string& key) const { return entries_.count(key) > 0; }

bool BlockCache::touch(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  return true;
}

void BlockCache::remove(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  used_ -= it->second.size;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  notify(key, false);
}

void BlockCache::clear() {
  std::list<std::string> keys = std::move(lru_);
  lru_.clear();
  entries_.clear();
  used_ = 0.0;
  for (const std::string& key : keys) notify(key, false);
}

}  // namespace rupam
