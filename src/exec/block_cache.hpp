// LRU RDD block cache (Spark's storage memory region).
//
// Iterative workloads persist intermediate RDDs; whether the next
// iteration's read is a PROCESS_LOCAL memory hit or a disk/network miss
// depends on whether the block survived LRU eviction — which depends on
// the executor heap size, the lever RUPAM's dynamic executor sizing pulls.
#pragma once

#include <functional>
#include <list>
#include <string>
#include <unordered_map>

#include "common/types.hpp"

namespace rupam {

class BlockCache {
 public:
  /// Membership-change notification: fired once per key whose presence in
  /// the cache changed (insert of a new key, eviction, remove, clear).
  /// Refreshing an already-cached key fires nothing. Schedulers use this
  /// to maintain a block → nodes inverse index without probing.
  using ChangeListener = std::function<void(const std::string& key, bool present)>;

  explicit BlockCache(Bytes capacity);

  /// Insert (or refresh) a block, evicting LRU blocks to make room.
  /// Blocks larger than the whole cache are not stored.
  /// Returns the number of bytes evicted to fit the block.
  Bytes put(const std::string& key, Bytes size);

  /// Probe without touching recency.
  bool contains(const std::string& key) const;
  /// Probe and mark as most recently used.
  bool touch(const std::string& key);

  void remove(const std::string& key);
  void clear();

  void set_change_listener(ChangeListener listener) { listener_ = std::move(listener); }

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  std::size_t blocks() const { return entries_.size(); }
  Bytes evicted_total() const { return evicted_total_; }

 private:
  struct Entry {
    Bytes size;
    std::list<std::string>::iterator lru_it;
  };

  Bytes evict_for(Bytes needed);
  void notify(const std::string& key, bool present);

  ChangeListener listener_;
  Bytes capacity_;
  Bytes used_ = 0.0;
  Bytes evicted_total_ = 0.0;
  std::list<std::string> lru_;  // front = most recent
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace rupam
