#include "exec/gc_model.hpp"

#include <algorithm>

namespace rupam {

SimTime GcModel::gc_time(Bytes allocated, Bytes heap_capacity, double occupancy) const {
  if (allocated <= 0.0 || heap_capacity <= 0.0) return 0.0;
  double occ = std::clamp(occupancy, 0.0, 1.0);
  double scan = params_.scan_factor * occ * occ * (heap_capacity / params_.reference_heap);
  return allocated / params_.throughput * (1.0 + scan);
}

}  // namespace rupam
