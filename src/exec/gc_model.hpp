// JVM garbage-collection cost model.
//
// Needed to reproduce Fig 7's GC column: SQL pays *more* GC under RUPAM
// (bigger heaps → longer full-heap scans at high occupancy), while LR pays
// *less* (bigger heaps → the iteration cache fits → less allocation churn).
//
// Model: a task that allocates A bytes on an executor whose heap is `heap`
// bytes at occupancy `occ` spends
//   gc_time = A / throughput * (1 + scan_factor * occ^2 * heap / 16 GiB)
// in collection. The first term is generational copying cost proportional
// to allocation volume; the second captures full-heap scans whose cost
// grows with heap size and pressure (paper §IV-D's explanation verbatim:
// "JAVA spending more time to search the whole JVM memory space for GC").
#pragma once

#include "common/types.hpp"
#include "common/units.hpp"

namespace rupam {

struct GcModelParams {
  /// Bytes of young-gen churn collected per second of GC work.
  Bytes throughput = 6.0 * kGiB;
  /// Weight of the occupancy/heap-size dependent full-scan term.
  double scan_factor = 1.2;
  /// Heap size at which the scan term has weight 1.
  Bytes reference_heap = 16.0 * kGiB;
};

class GcModel {
 public:
  explicit GcModel(GcModelParams params = {}) : params_(params) {}

  /// GC seconds charged to a task that allocates `allocated` bytes while
  /// the heap is `heap_capacity` bytes large at fractional occupancy `occ`.
  SimTime gc_time(Bytes allocated, Bytes heap_capacity, double occupancy) const;

  const GcModelParams& params() const { return params_; }

 private:
  GcModelParams params_;
};

}  // namespace rupam
