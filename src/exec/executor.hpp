// Executor: the per-node JVM that runs tasks (Spark worker side).
//
// Responsibilities:
//  * Task slots (default Spark admits one task per core; RUPAM bypasses
//    slots and admits by measured resources — the scheduler decides, the
//    executor just reports).
//  * Unified memory: execution reservations + LRU block cache share the
//    heap; execution pressure evicts cached blocks (Spark's unified memory
//    manager). Exceeding the heap OOM-kills the largest task after a GC
//    thrash window; blowing far past it kills the whole executor (the
//    paper's "catastrophic failure of the Spark worker").
//  * The task phase state machine: input read → shuffle read → compute
//    (+GC) → cache output → shuffle write → result send, each phase a
//    claim on the node's fair-share resources.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/memory_pool.hpp"
#include "cluster/node.hpp"
#include "common/rng.hpp"
#include "exec/block_cache.hpp"
#include "exec/gc_model.hpp"
#include "obs/spans.hpp"
#include "tasks/task.hpp"
#include "tasks/task_metrics.hpp"

namespace rupam {

class Executor;

struct ExecutorConfig {
  Bytes heap = 14.0 * kGiB;
  /// Fraction of heap usable by the block cache (storage region).
  double storage_fraction = 0.4;
  /// Concurrent task slots (Spark: node cores).
  int task_slots = 8;
  GcModelParams gc;
  /// Heap-overrun factor at which the OS kills the JVM.
  double jvm_kill_factor = 1.25;
  /// GC-thrash window between detecting heap pressure and resolving it.
  SimTime oom_grace = 2.0;
  /// Worker restart time after an executor loss.
  SimTime restart_delay = 20.0;
  /// Effective memory bandwidth for reading cached blocks.
  Bytes memory_read_bw = 8.0 * kGiB;
};

struct LaunchOptions {
  bool use_gpu = false;
  Locality locality = Locality::kAny;
  SimTime submit_time = 0.0;
  AttemptId attempt = 0;
};

/// One task attempt in flight. Owned by the executor while running.
class TaskExecution : public std::enable_shared_from_this<TaskExecution> {
 public:
  using FinishFn = std::function<void(const TaskMetrics&)>;
  using FailFn = std::function<void(const TaskSpec&, AttemptId, const std::string& reason)>;

  TaskExecution(Executor& executor, TaskSpec spec, LaunchOptions opts, FinishFn on_finish,
                FailFn on_fail);

  const TaskSpec& spec() const { return spec_; }
  AttemptId attempt() const { return opts_.attempt; }
  const TaskMetrics& metrics() const { return metrics_; }
  bool running() const { return state_ == State::kRunning; }
  Bytes reserved_memory() const { return reserved_; }
  /// OOM-able (user object) part of the reservation.
  Bytes unmanaged_reserved() const { return unmanaged_; }
  /// Managed memory the arbitrator could not grant; spilled to disk.
  Bytes spill_bytes() const { return spill_bytes_; }
  bool uses_gpu() const { return gpu_held_; }
  SimTime launch_time() const { return metrics_.launch_time; }

  /// Abort this attempt. If `notify` is true the failure callback fires
  /// (OOM, executor loss); speculation kills pass false (losing copies are
  /// discarded silently, as in Spark).
  void kill(const std::string& reason, bool notify);

 private:
  friend class Executor;
  enum class State { kRunning, kFinished, kKilled };

  /// Phase-span recording (no-ops while the executor has no SpanTrace).
  /// obs_begin/obs_end bracket the common sequential phases; obs_span
  /// emits an arbitrary interval (GC tails, spill shares, queued time).
  void obs_span(TaskPhase phase, SimTime start, SimTime end, double arg,
                bool truncated = false);
  void obs_begin(TaskPhase phase);
  void obs_end(double arg);

  void start();
  void start_input_read();
  void start_shuffle_disk_read();
  void start_shuffle_net_read();
  void start_compute();
  void finish_compute(SimTime started);
  void start_shuffle_write();
  void start_output_send();
  void complete();
  void clear_claim();

  Executor& executor_;
  TaskSpec spec_;
  LaunchOptions opts_;
  FinishFn on_finish_;
  FailFn on_fail_;
  TaskMetrics metrics_;
  State state_ = State::kRunning;

  Bytes reserved_ = 0.0;
  Bytes unmanaged_ = 0.0;
  Bytes spill_bytes_ = 0.0;
  bool gpu_held_ = false;
  bool input_cache_miss_ = false;

  // At most one outstanding resource claim or timer at a time.
  FairShareResource* claim_resource_ = nullptr;
  FairShareResource::ClaimId claim_id_ = 0;
  EventHandle timer_;

  // Current phase for span recording, so kill() can close a truncated
  // span. Only meaningful while the executor has a SpanTrace attached.
  TaskPhase obs_phase_ = TaskPhase::kQueued;
  SimTime obs_phase_start_ = 0.0;
  bool obs_in_phase_ = false;
};

class Executor {
 public:
  using LostFn = std::function<void(ExecutorId)>;
  using ReadyFn = std::function<void(ExecutorId)>;

  Executor(Simulator& sim, Node& node, ExecutorId id, ExecutorConfig config, Rng rng);

  ExecutorId id() const { return id_; }
  Node& node() { return node_; }
  const ExecutorConfig& config() const { return config_; }

  /// Launch a task attempt. The caller (scheduler) decides admission; the
  /// executor never refuses for memory (real Spark JVMs cannot), only when
  /// it is down. Returns nullptr while restarting.
  std::shared_ptr<TaskExecution> launch(const TaskSpec& spec, LaunchOptions opts,
                                        TaskExecution::FinishFn on_finish,
                                        TaskExecution::FailFn on_fail);

  bool alive() const { return alive_; }
  int running_tasks() const { return static_cast<int>(running_.size()); }
  int free_slots() const;
  Bytes heap_used() const { return exec_memory_.used() + cache_.used(); }
  Bytes heap() const { return config_.heap; }
  double occupancy() const { return heap_used() / config_.heap; }

  BlockCache& cache() { return cache_; }
  const std::vector<std::shared_ptr<TaskExecution>>& running() const { return running_; }

  /// Kill the running attempt of `task` if present (straggler relocation /
  /// losing speculative copy). Returns true if something was killed.
  bool kill_task(TaskId task, const std::string& reason, bool notify);

  void set_lost_handler(LostFn fn) { on_lost_ = std::move(fn); }
  void set_ready_handler(ReadyFn fn) { on_ready_ = std::move(fn); }
  /// "Does any peer executor hold cached block K?" A local miss with a
  /// peer hit is a remote block fetch (no recompute); a cluster-wide miss
  /// means the partition was evicted and must be recomputed + re-cached.
  void set_peer_cache_probe(std::function<bool(const std::string&)> probe) {
    peer_cache_probe_ = std::move(probe);
  }
  bool peer_has_block(const std::string& key) const {
    return peer_cache_probe_ && peer_cache_probe_(key);
  }

  std::size_t oom_kills() const { return oom_kills_; }
  std::size_t executor_losses() const { return executor_losses_; }

  /// Optional task-phase span sink (not owned; may be null). While
  /// attached, every task attempt records queued/IO/compute/GC/spill
  /// spans. Pure recording — never schedules simulator events.
  void set_span_trace(SpanTrace* spans) { span_trace_ = spans; }
  SpanTrace* span_trace() const { return span_trace_; }

  /// Fault injection: hard-kill the worker (tasks fail with notify, cache
  /// invalidated). Unlike an organic JVM loss, no self-restart is
  /// scheduled — the injector revives the node with force_restart().
  void crash(const std::string& reason = "ExecutorLostFailure (node crash)");
  /// Revive a crashed worker immediately. No-op while alive.
  void force_restart();

 private:
  friend class TaskExecution;

  Simulator& sim() { return sim_; }
  void reserve_memory(Bytes amount);
  void release_memory(Bytes amount);
  void check_memory_pressure();
  void resolve_memory_pressure();
  void terminate(const std::string& reason);
  void lose_executor();
  void restart();
  void detach(TaskExecution* exec);

  Simulator& sim_;
  Node& node_;
  ExecutorId id_;
  ExecutorConfig config_;
  Rng rng_;
  MemoryPool exec_memory_;  // execution region accounting (can overflow)
  BlockCache cache_;
  GcModel gc_;
  bool alive_ = true;
  std::vector<std::shared_ptr<TaskExecution>> running_;
  EventHandle pressure_timer_;
  LostFn on_lost_;
  ReadyFn on_ready_;
  std::function<bool(const std::string&)> peer_cache_probe_;
  SpanTrace* span_trace_ = nullptr;
  std::size_t oom_kills_ = 0;
  std::size_t executor_losses_ = 0;
};

}  // namespace rupam
