#include "exec/executor.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rupam {

// ---------------------------------------------------------------- Executor

Executor::Executor(Simulator& sim, Node& node, ExecutorId id, ExecutorConfig config, Rng rng)
    : sim_(sim),
      node_(node),
      id_(id),
      config_(config),
      rng_(rng),
      exec_memory_(config.heap),
      cache_(config.heap * config.storage_fraction),
      gc_(config.gc) {
  node_.add_memory_reporter([this] { return heap_used(); });
}

int Executor::free_slots() const {
  if (!alive_) return 0;
  return std::max(0, config_.task_slots - running_tasks());
}

std::shared_ptr<TaskExecution> Executor::launch(const TaskSpec& spec, LaunchOptions opts,
                                                TaskExecution::FinishFn on_finish,
                                                TaskExecution::FailFn on_fail) {
  if (!alive_) return nullptr;
  auto exec = std::make_shared<TaskExecution>(*this, spec, opts, std::move(on_finish),
                                              std::move(on_fail));
  running_.push_back(exec);
  exec->start();
  return exec;
}

bool Executor::kill_task(TaskId task, const std::string& reason, bool notify) {
  for (const auto& exec : running_) {
    if (exec->spec().id == task && exec->running()) {
      exec->kill(reason, notify);
      return true;
    }
  }
  return false;
}

void Executor::reserve_memory(Bytes amount) {
  // JVMs do not admission-check: allocation proceeds and pressure is
  // resolved afterwards (OOM or process death), as in the paper's §III-C3.
  exec_memory_.force_reserve(amount);
  check_memory_pressure();
}

void Executor::release_memory(Bytes amount) { exec_memory_.release(amount); }

void Executor::check_memory_pressure() {
  if (heap_used() <= config_.heap) return;
  if (pressure_timer_.pending()) return;
  // The JVM thrashes in GC for a grace window before anything dies; more
  // tasks can pile on meanwhile (this is how default Spark occasionally
  // loses whole workers on low-memory nodes).
  pressure_timer_ = sim_.schedule_after(config_.oom_grace, [this] { resolve_memory_pressure(); });
}

void Executor::resolve_memory_pressure() {
  if (!alive_) return;
  if (heap_used() > config_.heap * config_.jvm_kill_factor) {
    lose_executor();
    return;
  }
  // OOM-kill unmanaged-memory tasks until the heap fits. Managed-only
  // tasks are never victims — their memory was granted within the heap
  // (shortfalls spilled), so they cannot be what overflows. Victims are
  // chosen newest-first: the allocation that trips the exhausted heap is
  // the one that throws, and earlier residents survive — which also lets
  // a retried heavy task eventually land on a quiet executor and finish
  // instead of being executed last forever.
  while (heap_used() > config_.heap) {
    TaskExecution* victim = nullptr;
    for (auto it = running_.rbegin(); it != running_.rend(); ++it) {
      if ((*it)->running() && (*it)->unmanaged_reserved() > 0.0) {
        victim = it->get();
        break;
      }
    }
    if (victim == nullptr) break;
    ++oom_kills_;
    RUPAM_INFO(sim_.now(), "executor ", id_, ": OOM-killing task ", victim->spec().id);
    victim->kill("java.lang.OutOfMemoryError", /*notify=*/true);
  }
}

void Executor::terminate(const std::string& reason) {
  ++executor_losses_;
  alive_ = false;
  // Kill everything; iterate over a copy since kill() detaches.
  auto snapshot = running_;
  for (const auto& exec : snapshot) {
    if (exec->running()) exec->kill(reason, /*notify=*/true);
  }
  cache_.clear();
  pressure_timer_.cancel();
  if (on_lost_) on_lost_(id_);
}

void Executor::lose_executor() {
  RUPAM_WARN(sim_.now(), "executor ", id_, " lost (JVM killed by OS), restarting in ",
             config_.restart_delay, "s");
  terminate("ExecutorLostFailure");
  sim_.schedule_after(config_.restart_delay, [this] { restart(); });
}

void Executor::crash(const std::string& reason) {
  if (!alive_) return;  // already down (organic loss or overlapping fault)
  RUPAM_WARN(sim_.now(), "executor ", id_, " crashed (injected fault)");
  terminate(reason);
}

void Executor::restart() {
  // An organically scheduled restart must not revive a worker whose node
  // is crash-injected offline; the injector's recover step does that.
  if (alive_ || !node_.online()) return;
  alive_ = true;
  if (on_ready_) on_ready_(id_);
}

void Executor::force_restart() {
  if (alive_) return;
  alive_ = true;
  if (on_ready_) on_ready_(id_);
}

void Executor::detach(TaskExecution* exec) {
  auto it = std::find_if(running_.begin(), running_.end(),
                         [exec](const auto& p) { return p.get() == exec; });
  if (it != running_.end()) running_.erase(it);
}

// ----------------------------------------------------------- TaskExecution

TaskExecution::TaskExecution(Executor& executor, TaskSpec spec, LaunchOptions opts,
                             FinishFn on_finish, FailFn on_fail)
    : executor_(executor),
      spec_(std::move(spec)),
      opts_(opts),
      on_finish_(std::move(on_finish)),
      on_fail_(std::move(on_fail)) {
  metrics_.task = spec_.id;
  metrics_.stage = spec_.stage;
  metrics_.stage_name = spec_.stage_name;
  metrics_.partition = spec_.partition;
  metrics_.node = executor_.node().id();
  metrics_.locality = opts_.locality;
  metrics_.submit_time = opts_.submit_time;
  metrics_.peak_memory = spec_.peak_memory;
}

void TaskExecution::obs_span(TaskPhase phase, SimTime start, SimTime end, double arg,
                             bool truncated) {
  if (executor_.span_trace_ == nullptr) return;
  PhaseSpan s;
  s.start = start;
  s.end = end;
  s.phase = phase;
  s.stage = spec_.stage;
  s.task = spec_.id;
  s.attempt = opts_.attempt;
  s.node = executor_.node().id();
  s.arg = arg;
  s.truncated = truncated;
  executor_.span_trace_->record(s);
}

void TaskExecution::obs_begin(TaskPhase phase) {
  if (executor_.span_trace_ == nullptr) return;
  obs_phase_ = phase;
  obs_phase_start_ = executor_.sim().now();
  obs_in_phase_ = true;
}

void TaskExecution::obs_end(double arg) {
  if (!obs_in_phase_) return;
  obs_in_phase_ = false;
  obs_span(obs_phase_, obs_phase_start_, executor_.sim().now(), arg);
}

void TaskExecution::start() {
  metrics_.launch_time = executor_.sim().now();
  metrics_.scheduler_delay = metrics_.launch_time - metrics_.submit_time;
  obs_span(TaskPhase::kQueued, metrics_.submit_time, metrics_.launch_time,
           metrics_.scheduler_delay);
  // Managed execution memory is arbitrated: a task gets at most what the
  // heap still holds and *spills* the shortfall to disk (Spark semantics —
  // managed memory never OOMs). Unmanaged user objects are allocated
  // unconditionally; those are the allocations that kill tasks and JVMs.
  Bytes headroom = std::max(0.0, executor_.heap() - executor_.heap_used());
  Bytes request = spec_.peak_memory;
  if (spec_.elastic_memory_fraction > 0.0) {
    // Opportunistic growth is bounded: a hash table will not expand past a
    // small multiple of its working set however large the heap is.
    Bytes grab = spec_.elastic_memory_fraction * std::max(0.0, headroom - request);
    request += std::min(grab, 2.0 * spec_.peak_memory);
  }
  Bytes granted = std::min(request, headroom);
  spill_bytes_ = request - granted;
  unmanaged_ = spec_.unmanaged_memory;
  reserved_ = granted + unmanaged_;
  metrics_.peak_memory = request + unmanaged_;
  executor_.reserve_memory(reserved_);
  if (opts_.use_gpu && spec_.gpu_accelerable) {
    // Fall back to the CPU when every device is busy — default Spark does
    // not know about GPUs, so its GPU tasks race for devices via the BLAS
    // library and the losers take the slow CPU path.
    gpu_held_ = executor_.node().gpus().try_acquire();
  }
  metrics_.used_gpu = gpu_held_;
  start_input_read();
}

void TaskExecution::clear_claim() {
  claim_resource_ = nullptr;
  claim_id_ = 0;
}

void TaskExecution::start_input_read() {
  if (state_ != State::kRunning) return;
  if (spec_.input_bytes <= 0.0) {
    start_shuffle_disk_read();
    return;
  }
  SimTime started = executor_.sim().now();
  obs_begin(TaskPhase::kInputRead);
  auto self = shared_from_this();
  auto done = [this, self, started] {
    clear_claim();
    metrics_.input_read_time = executor_.sim().now() - started;
    obs_end(spec_.input_bytes);
    start_shuffle_disk_read();
  };
  NodeId here = executor_.node().id();
  bool cached_here =
      !spec_.input_cache_key.empty() && executor_.cache().touch(spec_.input_cache_key);
  bool cached_on_peer = !spec_.input_cache_key.empty() && !cached_here &&
                        executor_.peer_has_block(spec_.input_cache_key);
  // Recompute + re-cache only when the block is gone cluster-wide; a peer
  // hit is just a remote block-manager fetch.
  input_cache_miss_ = !spec_.input_cache_key.empty() && !cached_here && !cached_on_peer;
  if (cached_here) {
    // PROCESS_LOCAL memory read.
    timer_ = executor_.sim().schedule_after(
        spec_.input_bytes / executor_.config().memory_read_bw, done);
  } else if (spec_.prefers(here)) {
    claim_resource_ = &executor_.node().disk_read();
    claim_id_ = claim_resource_->start(spec_.input_bytes, 1.0, done);
  } else {
    // Remote block (HDFS replica elsewhere, or a peer executor's cached
    // partition): fetched over this node's NIC.
    claim_resource_ = &executor_.node().net();
    claim_id_ = claim_resource_->start(spec_.input_bytes, 1.0, done);
  }
}

void TaskExecution::start_shuffle_disk_read() {
  if (state_ != State::kRunning) return;
  Bytes local = spec_.shuffle_read_bytes * (1.0 - spec_.shuffle_remote_fraction);
  if (local <= 0.0) {
    start_shuffle_net_read();
    return;
  }
  SimTime started = executor_.sim().now();
  obs_begin(TaskPhase::kShuffleDiskRead);
  auto self = shared_from_this();
  claim_resource_ = &executor_.node().disk_read();
  claim_id_ = claim_resource_->start(local, 1.0, [this, self, started, local] {
    clear_claim();
    SimTime dt = executor_.sim().now() - started;
    metrics_.shuffle_read_time += dt;
    metrics_.shuffle_disk_time += dt;
    obs_end(local);
    start_shuffle_net_read();
  });
}

void TaskExecution::start_shuffle_net_read() {
  if (state_ != State::kRunning) return;
  Bytes remote = spec_.shuffle_read_bytes * spec_.shuffle_remote_fraction;
  if (remote <= 0.0) {
    start_compute();
    return;
  }
  SimTime started = executor_.sim().now();
  obs_begin(TaskPhase::kShuffleNetRead);
  auto self = shared_from_this();
  claim_resource_ = &executor_.node().net();
  claim_id_ = claim_resource_->start(remote, 1.0, [this, self, started, remote] {
    clear_claim();
    SimTime dt = executor_.sim().now() - started;
    metrics_.shuffle_read_time += dt;
    metrics_.shuffle_net_time += dt;
    obs_end(remote);
    start_compute();
  });
}

void TaskExecution::start_compute() {
  if (state_ != State::kRunning) return;
  SimTime started = executor_.sim().now();
  obs_begin(TaskPhase::kCompute);
  auto self = shared_from_this();
  auto done = [this, self, started] {
    clear_claim();
    finish_compute(started);
  };
  // GC work scales with this task's allocation churn and the executor's
  // current heap pressure (see GcModel).
  Bytes churn = spec_.input_bytes + spec_.shuffle_read_bytes + spec_.shuffle_write_bytes +
                0.5 * spec_.peak_memory;
  SimTime gc_t = executor_.gc_.gc_time(churn, executor_.heap(), executor_.occupancy());
  if (gpu_held_) {
    // Dedicated device: deterministic service time; GC still happens on the
    // host while the device computes, so only the longer of the two shows.
    SimTime dev = spec_.compute / spec_.gpu_speedup;
    metrics_.gc_time += gc_t;
    timer_ = executor_.sim().schedule_after(std::max(dev, gc_t), done);
    return;
  }
  double speed = executor_.node().spec().core_speed();
  double gc_work = gc_t * speed;  // gc_t wall-seconds on this node's core
  metrics_.gc_time += gc_t;       // refined in finish_compute by actual wall share
  claim_resource_ = &executor_.node().cpu();
  claim_id_ = claim_resource_->start(spec_.compute + gc_work, speed, done);
}

void TaskExecution::finish_compute(SimTime started) {
  SimTime wall = executor_.sim().now() - started;
  // Split the measured wall time between GC and useful compute in
  // proportion to the work amounts charged in start_compute().
  SimTime gc_est = metrics_.gc_time;
  SimTime gc_wall = std::min(wall, gc_est);
  if (!gpu_held_) {
    double speed = executor_.node().spec().core_speed();
    double total_work = spec_.compute + gc_est * speed;
    if (total_work > 0.0) gc_wall = wall * (gc_est * speed / total_work);
  }
  metrics_.gc_time = gc_wall;
  metrics_.compute_time = std::max(0.0, wall - gc_wall) + metrics_.input_read_time;
  metrics_.serialization_time = spec_.serialization_fraction * metrics_.compute_time;
  if (obs_in_phase_) {
    // Compute span over the whole service interval, with the GC share as a
    // nested span at the tail (where a real JVM's stop-the-world pauses
    // cluster once the heap fills).
    obs_in_phase_ = false;
    SimTime now = executor_.sim().now();
    obs_span(TaskPhase::kCompute, started, now, std::max(0.0, wall - gc_wall));
    if (gc_wall > 0.0) obs_span(TaskPhase::kGc, now - gc_wall, now, gc_wall);
  }

  Bytes evicted = 0.0;
  if (!spec_.cache_output_key.empty() && spec_.cache_output_bytes > 0.0) {
    evicted += executor_.cache().put(spec_.cache_output_key, spec_.cache_output_bytes);
  }
  if (input_cache_miss_ && spec_.input_bytes > 0.0) {
    // Read-through re-caching (Spark recomputes an evicted persisted
    // partition and stores it again): future reads on this node become
    // PROCESS_LOCAL, but under heap pressure this is exactly the LRU
    // churn the paper blames for default Spark's GC overhead on LR.
    evicted += executor_.cache().put(spec_.input_cache_key, spec_.input_bytes);
  }
  if (evicted > 0.0) {
    executor_.check_memory_pressure();
    SimTime churn_t = executor_.gc_.gc_time(evicted, executor_.heap(), executor_.occupancy());
    if (churn_t > 0.0) {
      metrics_.gc_time += churn_t;
      obs_begin(TaskPhase::kGc);
      auto self = shared_from_this();
      timer_ = executor_.sim().schedule_after(churn_t, [this, self, churn_t] {
        obs_end(churn_t);
        start_shuffle_write();
      });
      return;
    }
  }
  start_shuffle_write();
}

void TaskExecution::start_shuffle_write() {
  if (state_ != State::kRunning) return;
  // Ungranted managed memory spills: the spilled bytes are written out and
  // merged back, charged here as extra disk-write work.
  Bytes bytes = spec_.shuffle_write_bytes + 2.0 * spill_bytes_;
  if (bytes <= 0.0) {
    start_output_send();
    return;
  }
  SimTime started = executor_.sim().now();
  obs_begin(TaskPhase::kShuffleWrite);
  auto self = shared_from_this();
  claim_resource_ = &executor_.node().disk_write();
  claim_id_ = claim_resource_->start(bytes, 1.0, [this, self, started, bytes] {
    clear_claim();
    SimTime dt = executor_.sim().now() - started;
    metrics_.shuffle_write_time += dt;
    metrics_.shuffle_disk_time += dt;
    obs_end(bytes);
    if (spill_bytes_ > 0.0 && executor_.span_trace_ != nullptr && bytes > 0.0) {
      // The tail share of the write attributable to spill merge I/O.
      SimTime spill_dt = dt * (2.0 * spill_bytes_ / bytes);
      obs_span(TaskPhase::kSpill, executor_.sim().now() - spill_dt, executor_.sim().now(),
               spill_bytes_);
    }
    start_output_send();
  });
}

void TaskExecution::start_output_send() {
  if (state_ != State::kRunning) return;
  if (spec_.output_bytes <= 0.0) {
    complete();
    return;
  }
  SimTime started = executor_.sim().now();
  obs_begin(TaskPhase::kOutputSend);
  auto self = shared_from_this();
  claim_resource_ = &executor_.node().net();
  claim_id_ = claim_resource_->start(spec_.output_bytes, 1.0, [this, self, started] {
    clear_claim();
    SimTime dt = executor_.sim().now() - started;
    metrics_.output_time = dt;
    metrics_.shuffle_net_time += dt;
    obs_end(spec_.output_bytes);
    complete();
  });
}

void TaskExecution::complete() {
  if (state_ != State::kRunning) return;
  state_ = State::kFinished;
  metrics_.finish_time = executor_.sim().now();
  executor_.release_memory(reserved_);
  reserved_ = 0.0;
  if (gpu_held_) {
    executor_.node().gpus().release();
    gpu_held_ = false;
  }
  auto self = shared_from_this();
  executor_.detach(this);
  if (on_finish_) on_finish_(metrics_);
}

void TaskExecution::kill(const std::string& reason, bool notify) {
  if (state_ != State::kRunning) return;
  state_ = State::kKilled;
  if (obs_in_phase_) {
    // Close the open phase as truncated so partial attempts still render.
    obs_in_phase_ = false;
    obs_span(obs_phase_, obs_phase_start_, executor_.sim().now(), 0.0, /*truncated=*/true);
  }
  if (claim_resource_ != nullptr) {
    claim_resource_->cancel(claim_id_);
    clear_claim();
  }
  timer_.cancel();
  executor_.release_memory(reserved_);
  reserved_ = 0.0;
  if (gpu_held_) {
    executor_.node().gpus().release();
    gpu_held_ = false;
  }
  metrics_.failed = true;
  metrics_.failure_reason = reason;
  metrics_.finish_time = executor_.sim().now();
  auto self = shared_from_this();
  executor_.detach(this);
  if (notify && on_fail_) on_fail_(spec_, opts_.attempt, reason);
}

}  // namespace rupam
