#include "faults/fault_injector.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace rupam {

FaultInjector::FaultInjector(FaultInjectorEnv env, FaultPlan plan)
    : env_(std::move(env)), plan_(std::move(plan)) {
  if (env_.sim == nullptr || env_.cluster == nullptr) {
    throw std::invalid_argument("FaultInjector: null environment");
  }
  if (!env_.executors.empty() && env_.executors.size() != env_.cluster->size()) {
    throw std::invalid_argument("FaultInjector: executor list must match cluster size");
  }
  plan_.validate(env_.cluster->size());
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector: already armed");
  armed_ = true;
  for (const FaultEvent& e : plan_.events) {
    env_.sim->schedule_at(e.time, [this, e] { apply(e); });
  }
}

void FaultInjector::trace_event(const FaultEvent& e, const std::string& detail) {
  if (env_.trace == nullptr) return;
  TraceEvent t;
  t.time = env_.sim->now();
  t.type = TraceEventType::kFaultInjected;
  t.node = e.node;
  t.duration = e.duration;
  t.detail = detail;
  env_.trace->record(std::move(t));
}

void FaultInjector::apply(const FaultEvent& e) {
  ++injected_;
  if (metrics_ != nullptr) {
    metrics_
        ->counter("rupam_sim_faults_injected_total",
                  {{"kind", std::string(to_string(e.kind))}}, "Fault events applied")
        .inc();
  }
  trace_event(e, e.describe());
  RUPAM_WARN(env_.sim->now(), "fault: ", e.describe());
  switch (e.kind) {
    case FaultKind::kCrash:
      crash_node(e.node);
      if (e.duration > 0.0) {
        env_.sim->schedule_after(e.duration, [this, node = e.node] { recover_node(node); });
      }
      break;
    case FaultKind::kRecover:
      recover_node(e.node);
      break;
    case FaultKind::kSlowdown:
      scale_resource(e.node, e.resource, e.factor);
      if (e.duration > 0.0) {
        env_.sim->schedule_after(e.duration, [this, node = e.node, res = e.resource] {
          scale_resource(node, res, 1.0);
        });
      }
      break;
    case FaultKind::kHeartbeatDrop:
      if (env_.heartbeats == nullptr) {
        throw std::logic_error("FaultInjector: hbdrop event but no heartbeat service");
      }
      env_.heartbeats->set_dropped(e.node, true);
      if (e.duration > 0.0) {
        env_.sim->schedule_after(e.duration, [this, node = e.node] {
          env_.heartbeats->set_dropped(node, false);
        });
      }
      break;
    case FaultKind::kDiskDegrade:
      scale_resource(e.node, ResourceKind::kDisk, e.factor);
      break;
    case FaultKind::kSpotRevoke:
      // Drain immediately (no new launches; running tasks may still
      // finish inside the notice window), then reclaim for good.
      env_.cluster->begin_drain(e.node);
      env_.sim->schedule_after(e.duration, [this, node = e.node] { revoke_node(node); });
      break;
  }
}

void FaultInjector::crash_node(NodeId node) {
  if (!env_.cluster->member(node)) return;  // decommissioned nodes can't crash
  Node& n = env_.cluster->node(node);
  if (!n.online()) return;  // double-crash is a no-op
  ++crashes_;
  n.set_online(false);
  if (static_cast<std::size_t>(node) < env_.executors.size()) {
    env_.executors[static_cast<std::size_t>(node)]->crash();
  }
  // Map outputs on the node are gone; the DAG decides what to recompute.
  if (env_.dag != nullptr) {
    partitions_resubmitted_ += env_.dag->on_node_lost(node);
  }
}

void FaultInjector::recover_node(NodeId node) {
  // Decommissioned nodes are gone for good: a stale recovery (e.g. the
  // auto-recover scheduled by a crash that raced a spot reclaim) must not
  // resurrect them.
  if (!env_.cluster->member(node)) return;
  Node& n = env_.cluster->node(node);
  if (n.online()) return;
  ++recoveries_;
  n.set_online(true);
  if (static_cast<std::size_t>(node) < env_.executors.size()) {
    env_.executors[static_cast<std::size_t>(node)]->force_restart();
  }
  RUPAM_INFO(env_.sim->now(), "fault: node ", node, " back online");
}

void FaultInjector::revoke_node(NodeId node) {
  if (!env_.cluster->member(node)) return;  // already reclaimed
  ++spot_revocations_;
  // Membership listeners run first (scheduler purges its per-node indexes,
  // the app layer kills the executor and retires heartbeat/sampler rows);
  // the direct executor/DAG pokes below make standalone use — injector
  // without the app-layer listener — behave identically. Both are
  // idempotent.
  env_.cluster->decommission(node);
  if (static_cast<std::size_t>(node) < env_.executors.size()) {
    env_.executors[static_cast<std::size_t>(node)]->crash();
  }
  if (env_.dag != nullptr) {
    partitions_resubmitted_ += env_.dag->on_node_lost(node);
  }
  RUPAM_INFO(env_.sim->now(), "fault: node ", node, " spot-reclaimed");
}

void FaultInjector::scale_resource(NodeId node, ResourceKind resource, double factor) {
  Node& n = env_.cluster->node(node);
  switch (resource) {
    case ResourceKind::kCpu:
      n.cpu().set_capacity_scale(factor);
      break;
    case ResourceKind::kNetwork:
      n.net().set_capacity_scale(factor);
      break;
    case ResourceKind::kDisk:
      n.disk_read().set_capacity_scale(factor);
      n.disk_write().set_capacity_scale(factor);
      break;
    default:
      throw std::logic_error("FaultInjector: unthrottlable resource");
  }
}

}  // namespace rupam
