// Declarative fault plans for the chaos harness.
//
// A FaultPlan is a time-ordered list of injectable events — node crashes
// (with optional timed recovery), transient capacity slowdowns, heartbeat
// drop windows, and permanent disk degradation. Plans come from three
// places: hand-written specs (`--faults` on the CLI, or test fixtures),
// the seeded chaos generator (`--chaos SEED`), or direct construction in
// tests. Everything is deterministic: the same spec or seed always yields
// the same plan, and the simulator replays it identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rupam {

enum class FaultKind : std::uint8_t {
  kCrash,          // node goes offline, executor dies, map outputs lost
  kRecover,        // node comes back (also scheduled implicitly by kCrash)
  kSlowdown,       // one resource's capacity scaled by `factor` for `duration`
  kHeartbeatDrop,  // beats swallowed for `duration` (node keeps running)
  kDiskDegrade,    // permanent disk capacity scale (failing spindle)
  kSpotRevoke,     // spot-market reclaim: drain now, decommission after notice
};

std::string_view to_string(FaultKind kind);

struct FaultEvent {
  SimTime time = 0.0;
  FaultKind kind = FaultKind::kCrash;
  NodeId node = kInvalidNode;
  /// kCrash: downtime before auto-recovery (0 = stays down until an
  /// explicit kRecover). kSlowdown/kHeartbeatDrop: how long the fault
  /// lasts (0 = permanent). kSpotRevoke: the revocation notice — seconds
  /// between the drain signal and the permanent decommission (0 = the
  /// node vanishes immediately). Ignored by kRecover/kDiskDegrade.
  SimTime duration = 0.0;
  /// Capacity scale in (0, 1] for kSlowdown/kDiskDegrade.
  double factor = 1.0;
  /// Which resource kSlowdown throttles (kCpu, kDisk, or kNetwork).
  ResourceKind resource = ResourceKind::kCpu;

  std::string describe() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  /// Throws std::invalid_argument on out-of-range nodes, non-positive
  /// factors, negative times/durations, or a slowdown of an unthrottlable
  /// resource.
  void validate(std::size_t num_nodes) const;
  /// Stable sort by (time, node, kind) so replay order is deterministic
  /// regardless of authoring order.
  void sort();
};

/// Parse the CLI fault spec: semicolon-separated events of the form
///   kind@time[:key=value]...
/// with kinds crash|recover|slow|hbdrop|degrade|spot and keys
///   node=N  down=SECONDS  for=SECONDS  notice=SECONDS  factor=F
///   res=cpu|disk|net
/// e.g. "crash@60:node=3:down=40;spot@90:node=5:notice=30".
/// Throws std::invalid_argument with a message naming the bad token.
FaultPlan parse_fault_spec(const std::string& spec);

/// Seeded random plan for chaos testing: a handful of crashes (on distinct
/// nodes, never more than half the cluster), slowdowns, heartbeat-drop
/// windows and disk degradations, all bounded so any workload that
/// finishes fault-free also finishes under chaos. Same (seed, num_nodes,
/// horizon) → same plan.
FaultPlan make_chaos_plan(std::uint64_t seed, std::size_t num_nodes, SimTime horizon = 240.0);

}  // namespace rupam
