#include "faults/fault_plan.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/table.hpp"

namespace rupam {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kSlowdown: return "slow";
    case FaultKind::kHeartbeatDrop: return "hbdrop";
    case FaultKind::kDiskDegrade: return "degrade";
    case FaultKind::kSpotRevoke: return "spot";
  }
  return "?";
}

std::string FaultEvent::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " node=" << node;
  switch (kind) {
    case FaultKind::kCrash:
      if (duration > 0.0) os << " down=" << format_fixed(duration, 3);
      break;
    case FaultKind::kRecover:
      break;
    case FaultKind::kSlowdown:
      os << " res=" << to_string(resource) << " factor=" << format_fixed(factor, 3);
      if (duration > 0.0) os << " for=" << format_fixed(duration, 3);
      break;
    case FaultKind::kHeartbeatDrop:
      if (duration > 0.0) os << " for=" << format_fixed(duration, 3);
      break;
    case FaultKind::kDiskDegrade:
      os << " factor=" << format_fixed(factor, 3);
      break;
    case FaultKind::kSpotRevoke:
      os << " notice=" << format_fixed(duration, 3);
      break;
  }
  return os.str();
}

void FaultPlan::validate(std::size_t num_nodes) const {
  for (const auto& e : events) {
    if (e.time < 0.0) throw std::invalid_argument("FaultPlan: negative event time");
    if (e.duration < 0.0) throw std::invalid_argument("FaultPlan: negative duration");
    if (e.node < 0 || static_cast<std::size_t>(e.node) >= num_nodes) {
      throw std::invalid_argument("FaultPlan: node " + std::to_string(e.node) +
                                  " out of range for " + std::to_string(num_nodes) +
                                  "-node cluster");
    }
    if (e.kind == FaultKind::kSlowdown || e.kind == FaultKind::kDiskDegrade) {
      if (e.factor <= 0.0 || e.factor > 1.0) {
        throw std::invalid_argument("FaultPlan: capacity factor must be in (0, 1]");
      }
    }
    if (e.kind == FaultKind::kSlowdown && e.resource != ResourceKind::kCpu &&
        e.resource != ResourceKind::kDisk && e.resource != ResourceKind::kNetwork) {
      throw std::invalid_argument("FaultPlan: slowdown resource must be cpu, disk, or net");
    }
  }
}

void FaultPlan::sort() {
  std::stable_sort(events.begin(), events.end(), [](const FaultEvent& a, const FaultEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.node != b.node) return a.node < b.node;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
}

namespace {

std::vector<std::string> split(const std::string& in, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : in) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

double parse_number(const std::string& token, const std::string& what) {
  try {
    std::size_t pos = 0;
    double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault spec: bad " + what + " '" + token + "'");
  }
}

}  // namespace

FaultPlan parse_fault_spec(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& item : split(spec, ';')) {
    if (item.empty()) continue;
    auto at = item.find('@');
    if (at == std::string::npos) {
      throw std::invalid_argument("fault spec: missing '@time' in '" + item + "'");
    }
    FaultEvent e;
    std::string kind = item.substr(0, at);
    if (kind == "crash") {
      e.kind = FaultKind::kCrash;
    } else if (kind == "recover") {
      e.kind = FaultKind::kRecover;
    } else if (kind == "slow") {
      e.kind = FaultKind::kSlowdown;
    } else if (kind == "hbdrop") {
      e.kind = FaultKind::kHeartbeatDrop;
    } else if (kind == "degrade") {
      e.kind = FaultKind::kDiskDegrade;
    } else if (kind == "spot") {
      e.kind = FaultKind::kSpotRevoke;
    } else {
      throw std::invalid_argument("fault spec: unknown kind '" + kind + "'");
    }
    auto fields = split(item.substr(at + 1), ':');
    e.time = parse_number(fields[0], "time");
    bool has_node = false;
    for (std::size_t i = 1; i < fields.size(); ++i) {
      auto eq = fields[i].find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("fault spec: expected key=value, got '" + fields[i] + "'");
      }
      std::string key = fields[i].substr(0, eq);
      std::string value = fields[i].substr(eq + 1);
      if (key == "node") {
        e.node = static_cast<NodeId>(parse_number(value, "node"));
        has_node = true;
      } else if (key == "down" || key == "for" || key == "notice") {
        e.duration = parse_number(value, "duration");
      } else if (key == "factor") {
        e.factor = parse_number(value, "factor");
      } else if (key == "res") {
        if (value == "cpu") {
          e.resource = ResourceKind::kCpu;
        } else if (value == "disk") {
          e.resource = ResourceKind::kDisk;
        } else if (value == "net") {
          e.resource = ResourceKind::kNetwork;
        } else {
          throw std::invalid_argument("fault spec: res must be cpu, disk, or net (got '" +
                                      value + "')");
        }
      } else {
        throw std::invalid_argument("fault spec: unknown key '" + key + "'");
      }
    }
    if (!has_node) {
      throw std::invalid_argument("fault spec: '" + item + "' needs node=N");
    }
    plan.events.push_back(e);
  }
  plan.sort();
  return plan;
}

FaultPlan make_chaos_plan(std::uint64_t seed, std::size_t num_nodes, SimTime horizon) {
  if (num_nodes == 0) throw std::invalid_argument("make_chaos_plan: empty cluster");
  FaultPlan plan;
  Rng rng(seed, /*stream=*/0x9e3779b97f4a7c15ULL);

  // Crashes: at most half the cluster (rounded down, min 1 when the
  // cluster has more than one node), each on a distinct node with a
  // bounded downtime so capacity always returns.
  std::size_t max_crashes = num_nodes >= 2 ? num_nodes / 2 : 0;
  std::size_t n_crashes = max_crashes > 0 ? 1 + rng.uniform_index(max_crashes) : 0;
  std::set<NodeId> crashed;
  for (std::size_t i = 0; i < n_crashes; ++i) {
    NodeId node = static_cast<NodeId>(rng.uniform_index(num_nodes));
    if (!crashed.insert(node).second) continue;  // distinct nodes only
    FaultEvent e;
    e.kind = FaultKind::kCrash;
    e.node = node;
    e.time = rng.uniform(5.0, horizon * 0.6);
    e.duration = rng.uniform(20.0, 60.0);
    plan.events.push_back(e);
  }

  // Slowdowns: 1–3 transient throttles of cpu/disk/net.
  std::size_t n_slow = 1 + rng.uniform_index(3);
  constexpr ResourceKind kThrottlable[] = {ResourceKind::kCpu, ResourceKind::kDisk,
                                           ResourceKind::kNetwork};
  for (std::size_t i = 0; i < n_slow; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSlowdown;
    e.node = static_cast<NodeId>(rng.uniform_index(num_nodes));
    e.time = rng.uniform(5.0, horizon * 0.7);
    e.duration = rng.uniform(15.0, 60.0);
    e.factor = rng.uniform(0.2, 0.7);
    e.resource = kThrottlable[rng.uniform_index(3)];
    plan.events.push_back(e);
  }

  // Heartbeat drops: 0–2 windows long enough to trip liveness (> 3
  // missed beats at the default 1 s period) but always clearing.
  std::size_t n_drops = rng.uniform_index(3);
  for (std::size_t i = 0; i < n_drops; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kHeartbeatDrop;
    e.node = static_cast<NodeId>(rng.uniform_index(num_nodes));
    e.time = rng.uniform(5.0, horizon * 0.7);
    e.duration = rng.uniform(2.0, 10.0);
    plan.events.push_back(e);
  }

  // Disk degradation: at most one failing spindle, never below 40%.
  if (rng.uniform_index(2) == 1) {
    FaultEvent e;
    e.kind = FaultKind::kDiskDegrade;
    e.node = static_cast<NodeId>(rng.uniform_index(num_nodes));
    e.time = rng.uniform(5.0, horizon * 0.5);
    e.factor = rng.uniform(0.4, 0.8);
    plan.events.push_back(e);
  }

  plan.sort();
  plan.validate(num_nodes);
  return plan;
}

}  // namespace rupam
