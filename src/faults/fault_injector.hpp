// FaultInjector: replays a FaultPlan against a live simulation.
//
// Each event is scheduled on the simulator at its plan time; applying it
// flips the corresponding lever (Node::set_online + Executor::crash,
// FairShareResource::set_capacity_scale, HeartbeatService::set_dropped)
// and, on a crash, tells the DagScheduler which map outputs died so the
// FetchFailed recovery path resubmits the lost partitions. Recovery events
// for bounded faults (crash downtime, slowdown/hbdrop windows) are
// scheduled automatically.
//
// Spot revocation (kSpotRevoke) is different from a crash: the node is
// drained through the cluster lifecycle immediately (no new launches) and
// permanently decommissioned when the notice window expires — it never
// recovers, and membership listeners (scheduler, heartbeats, sampler) see
// the transition rather than a silent offline flip.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/heartbeat.hpp"
#include "dag/dag_scheduler.hpp"
#include "exec/executor.hpp"
#include "faults/fault_plan.hpp"
#include "metrics/event_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

struct FaultInjectorEnv {
  Simulator* sim = nullptr;
  Cluster* cluster = nullptr;
  /// One executor per node, indexed by NodeId (same as SchedulerEnv).
  std::vector<Executor*> executors;
  /// Optional: needed for kHeartbeatDrop events.
  HeartbeatService* heartbeats = nullptr;
  /// Optional: crash events invalidate map outputs through it.
  DagScheduler* dag = nullptr;
  /// Optional structured trace (kFaultInjected per applied event).
  EventTrace* trace = nullptr;
};

class FaultInjector {
 public:
  /// Validates the plan against the cluster size; throws on a bad plan.
  FaultInjector(FaultInjectorEnv env, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every plan event on the simulator. Call once, before run().
  void arm();

  /// Optional metrics registry (not owned): faults_injected_total{kind}.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  const FaultPlan& plan() const { return plan_; }
  std::size_t injected() const { return injected_; }
  std::size_t crashes() const { return crashes_; }
  std::size_t recoveries() const { return recoveries_; }
  /// Spot reclaims that completed (node permanently decommissioned).
  std::size_t spot_revocations() const { return spot_revocations_; }
  /// Partitions the DAG resubmitted because a crash ate their map output.
  std::size_t partitions_resubmitted() const { return partitions_resubmitted_; }

 private:
  void apply(const FaultEvent& e);
  void crash_node(NodeId node);
  void recover_node(NodeId node);
  void revoke_node(NodeId node);
  void scale_resource(NodeId node, ResourceKind resource, double factor);
  void trace_event(const FaultEvent& e, const std::string& detail);

  FaultInjectorEnv env_;
  FaultPlan plan_;
  MetricsRegistry* metrics_ = nullptr;
  bool armed_ = false;
  std::size_t injected_ = 0;
  std::size_t crashes_ = 0;
  std::size_t recoveries_ = 0;
  std::size_t spot_revocations_ = 0;
  std::size_t partitions_resubmitted_ = 0;
};

}  // namespace rupam
