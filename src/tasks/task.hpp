// Task description: the unit of scheduling.
//
// A task is one partition's worth of a stage. Its resource demands are the
// quantities the paper's Task Manager observes (Table I, right side): input
// and shuffle volumes, compute work, peak memory, and GPU affinity.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace rupam {

struct TaskSpec {
  TaskId id = 0;
  JobId job = 0;
  StageId stage = 0;
  /// Stable stage identity across jobs/iterations — the key space of
  /// DB_task_char is (application, stage name, partition).
  std::string stage_name;
  int partition = 0;

  /// ShuffleMapTask (map side) vs ResultTask (reduce/collect side).
  bool is_shuffle_map = true;

  /// Input read from stable storage (0 for purely shuffle-fed stages).
  Bytes input_bytes = 0.0;
  /// Cache key of the input RDD partition, empty when the input is not a
  /// cached RDD. A hit in the local executor makes the read PROCESS_LOCAL.
  std::string input_cache_key;

  /// Shuffle fetch volume and how much of it crosses the network.
  Bytes shuffle_read_bytes = 0.0;
  double shuffle_remote_fraction = 0.0;

  /// CPU demand in core-seconds at the reference clock.
  CpuWork compute = 0.0;
  /// Fraction of compute time that is (de)serialization (Fig 3 category).
  double serialization_fraction = 0.1;

  Bytes shuffle_write_bytes = 0.0;
  /// Result bytes sent back to the driver (ResultTask).
  Bytes output_bytes = 0.0;

  /// Peak *managed* execution memory (Spark's memory manager arbitrates
  /// this part: a shortfall makes the task spill to disk, never die).
  Bytes peak_memory = 64.0 * 1024 * 1024;
  /// Unmanaged (user-object) memory the JVM cannot arbitrate — join rows,
  /// adjacency structures. This is the part that OOM-kills tasks and, at
  /// scale, whole executors (the paper's PageRank failures under Spark).
  Bytes unmanaged_memory = 0.0;
  /// Opportunistic extra memory: fraction of the executor's free heap the
  /// task will additionally grab (hash joins / aggregations expand to the
  /// room they find — this is why RUPAM's bigger executors show higher
  /// memory usage in Fig 8(b)).
  double elastic_memory_fraction = 0.0;

  /// Full footprint — what RUPAM's memory guard checks (Table I
  /// peakmemory covers everything the task touches).
  Bytes total_memory() const { return peak_memory + unmanaged_memory; }

  bool gpu_accelerable = false;
  /// Compute speedup when run on one GPU vs one reference core.
  double gpu_speedup = 12.0;

  /// Output block to pin in the executor cache (iterative workloads).
  std::string cache_output_key;
  Bytes cache_output_bytes = 0.0;

  /// Nodes holding this task's input block(s).
  std::vector<NodeId> preferred_nodes;

  bool prefers(NodeId node) const;
  std::string describe() const;
};

}  // namespace rupam
