#include "tasks/task_metrics.hpp"

#include <algorithm>

namespace rupam {

SimTime TaskMetrics::dominant_io_time() const {
  return std::max(shuffle_read_time, shuffle_write_time);
}

}  // namespace rupam
