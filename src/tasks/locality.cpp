#include "tasks/locality.hpp"

namespace rupam {

Locality locality_of(const TaskSpec& task, NodeId node, const CacheProbe& cache_probe) {
  if (!task.input_cache_key.empty() && cache_probe && cache_probe(node, task.input_cache_key)) {
    return Locality::kProcessLocal;
  }
  if (task.prefers(node)) return Locality::kNodeLocal;
  // Result tasks with no block preference read shuffle output from
  // everywhere: treat as ANY (matches Spark's no-pref semantics).
  return Locality::kAny;
}

}  // namespace rupam
