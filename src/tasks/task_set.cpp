#include "tasks/task_set.hpp"

#include <stdexcept>

namespace rupam {

void TaskSet::validate() const {
  for (const auto& t : tasks) {
    if (t.stage != stage) throw std::invalid_argument("TaskSet: task stage mismatch");
    if (t.compute < 0.0 || t.input_bytes < 0.0 || t.shuffle_read_bytes < 0.0 ||
        t.shuffle_write_bytes < 0.0 || t.output_bytes < 0.0 || t.peak_memory < 0.0) {
      throw std::invalid_argument("TaskSet: negative resource demand");
    }
    if (t.shuffle_remote_fraction < 0.0 || t.shuffle_remote_fraction > 1.0) {
      throw std::invalid_argument("TaskSet: bad shuffle_remote_fraction");
    }
    if (t.serialization_fraction < 0.0 || t.serialization_fraction > 1.0) {
      throw std::invalid_argument("TaskSet: bad serialization_fraction");
    }
  }
}

}  // namespace rupam
