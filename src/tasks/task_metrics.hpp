// Per-attempt execution metrics, mirroring what Spark's listener bus exposes
// and what RUPAM's Task Manager records (Table I, right side).
#pragma once

#include <string>

#include "common/types.hpp"

namespace rupam {

struct TaskMetrics {
  TaskId task = 0;
  StageId stage = 0;
  std::string stage_name;
  int partition = 0;
  NodeId node = kInvalidNode;
  Locality locality = Locality::kAny;

  SimTime submit_time = 0.0;  // entered the scheduler
  SimTime launch_time = 0.0;  // started on an executor
  SimTime finish_time = 0.0;

  SimTime scheduler_delay = 0.0;
  SimTime input_read_time = 0.0;    // folded into compute in Spark's UI
  SimTime shuffle_read_time = 0.0;  // network + local-disk fetch
  SimTime compute_time = 0.0;       // includes (de)serialization, per paper
  SimTime serialization_time = 0.0;
  SimTime gc_time = 0.0;
  SimTime shuffle_write_time = 0.0;
  SimTime output_time = 0.0;  // result transfer to driver

  /// Split of I/O wait by medium, for Fig 7's shuffle-disk / shuffle-net.
  SimTime shuffle_net_time = 0.0;
  SimTime shuffle_disk_time = 0.0;

  Bytes peak_memory = 0.0;
  bool used_gpu = false;
  bool failed = false;
  std::string failure_reason;

  SimTime run_time() const { return finish_time - launch_time; }
  SimTime total_time() const { return finish_time - submit_time; }

  /// The dominant resource implied by this attempt (paper Algorithm 1 input).
  SimTime dominant_io_time() const;
};

}  // namespace rupam
