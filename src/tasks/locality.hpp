// Data-locality computation (Spark's PROCESS/NODE/RACK/ANY ladder).
#pragma once

#include <functional>

#include "common/types.hpp"
#include "tasks/task.hpp"

namespace rupam {

/// Answers "does node N hold cached block K in its executor?"
using CacheProbe = std::function<bool(NodeId, const std::string&)>;

/// Locality of running `task` on `node`. PROCESS_LOCAL requires the input
/// RDD block cached in that node's executor; NODE_LOCAL requires the input
/// block on the node's storage. Single-rack cluster: RACK_LOCAL never
/// occurs (paper Table V note: "all workloads have zero RACK_LOCAL tasks").
Locality locality_of(const TaskSpec& task, NodeId node, const CacheProbe& cache_probe);

/// True when `a` is at least as good (as local) as `b`.
inline bool locality_at_least(Locality a, Locality b) {
  return static_cast<int>(a) <= static_cast<int>(b);
}

}  // namespace rupam
