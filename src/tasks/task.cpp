#include "tasks/task.hpp"

#include <algorithm>
#include <sstream>

namespace rupam {

bool TaskSpec::prefers(NodeId node) const {
  return std::find(preferred_nodes.begin(), preferred_nodes.end(), node) !=
         preferred_nodes.end();
}

std::string TaskSpec::describe() const {
  std::ostringstream oss;
  oss << "task " << id << " [" << stage_name << "#" << partition << "]"
      << (is_shuffle_map ? " map" : " result") << " compute=" << compute
      << " shufR=" << shuffle_read_bytes << " shufW=" << shuffle_write_bytes
      << " mem=" << peak_memory << (gpu_accelerable ? " gpu" : "");
  return oss.str();
}

}  // namespace rupam
