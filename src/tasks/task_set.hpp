// A TaskSet is all tasks of one stage attempt, handed from the DAG
// scheduler to the task scheduler (mirrors Spark's TaskSet).
#pragma once

#include <string>
#include <vector>

#include "tasks/task.hpp"

namespace rupam {

struct TaskSet {
  JobId job = 0;
  StageId stage = 0;
  std::string stage_name;
  /// Fair-scheduler pool this taskset is billed to (empty = the default
  /// pool). Set per tenant by the workload driver; the cross-job policy in
  /// SchedulerBase orders tasksets by pool (see sched/pool.hpp).
  std::string pool;
  bool is_shuffle_map = true;
  std::vector<TaskSpec> tasks;

  std::size_t size() const { return tasks.size(); }
  bool empty() const { return tasks.empty(); }

  /// Sanity checks (consistent ids, nonnegative demands). Throws on error.
  void validate() const;
};

}  // namespace rupam
