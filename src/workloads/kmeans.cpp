// KMeans: GPU-accelerable iterative clustering. Distance computation per
// iteration can run on a GPU (NVBLAS-style) or on the CPU; with repeating
// stage names RUPAM learns the GPU affinity after the first round and
// races CPU copies when devices are busy — the paper reports 2.49x.
#include "workloads/presets.hpp"

namespace rupam {

Application make_kmeans(const std::vector<NodeId>& nodes, const WorkloadParams& params) {
  Application app;
  app.name = "KMeans";
  WorkloadBuilder builder(nodes, params.seed, params.placement_weights);

  int partitions = std::max(64, static_cast<int>(params.input_gb * 64.0));
  Bytes part_bytes = params.input_gb * kGiB / partitions;

  JobProfile load;
  load.name = "km-load";
  StageProfile load_map;
  load_map.name = "km-load";
  load_map.num_tasks = partitions;
  load_map.reads_blocks = true;
  load_map.input_bytes = part_bytes;
  load_map.compute = 8.0;
  load_map.shuffle_write_bytes = 1.0 * kMiB;
  load_map.peak_memory = 512.0 * kMiB;
  load_map.caches_output = "km_points";
  load_map.cache_bytes = part_bytes * 5.0;
  load.stages.push_back(load_map);
  builder.add_job(app, load);

  for (int it = 0; it < std::max(1, params.iterations); ++it) {
    JobProfile iter;
    iter.name = "km-iteration-" + std::to_string(it);

    StageProfile assign;
    assign.name = "km-assign";
    assign.num_tasks = partitions;
    assign.reads_cached = "km_points";
    assign.input_bytes = part_bytes * 5.0;
    assign.compute = 80.0;  // distance kernel: BLAS-friendly
    assign.gpu = true;
    assign.gpu_speedup = 12.0;
    assign.shuffle_write_bytes = 1.5 * kMiB;
    assign.peak_memory = 512.0 * kMiB;
    assign.skew_cv = 0.25;
    assign.heavy_tail = 0.08;
    iter.stages.push_back(assign);

    StageProfile update;
    update.name = "km-update";
    update.num_tasks = 16;
    update.is_shuffle_map = false;
    update.shuffle_read_bytes = 1.5 * kMiB * partitions / 16.0;
    update.compute = 1.5;
    update.output_bytes = 1.0 * kMiB;
    update.peak_memory = 256.0 * kMiB;
    update.parents = {0};
    iter.stages.push_back(update);
    builder.add_job(app, iter);
  }
  app.validate();
  return app;
}

}  // namespace rupam
