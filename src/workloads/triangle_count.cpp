// Triangle Count: repeated expand/count join rounds over a cached graph.
// Stage names repeat across rounds, so like the other multi-round
// workloads it benefits from DB_task_char history (the paper's ~2.1x
// multi-iteration group).
#include "workloads/presets.hpp"

namespace rupam {

Application make_triangle_count(const std::vector<NodeId>& nodes,
                                const WorkloadParams& params) {
  Application app;
  app.name = "TC";
  WorkloadBuilder builder(nodes, params.seed, params.placement_weights);

  int partitions = std::max(48, static_cast<int>(params.input_gb * 160.0));
  Bytes part_bytes = params.input_gb * kGiB / partitions;

  JobProfile load;
  load.name = "tc-load";
  StageProfile load_map;
  load_map.name = "tc-load";
  load_map.num_tasks = partitions;
  load_map.reads_blocks = true;
  load_map.input_bytes = part_bytes;
  load_map.compute = 5.0;
  load_map.shuffle_write_bytes = 2.0 * kMiB;
  load_map.peak_memory = 512.0 * kMiB;
  load_map.caches_output = "tc_graph";
  load_map.cache_bytes = part_bytes * 5.0;
  load.stages.push_back(load_map);
  builder.add_job(app, load);

  int rounds = std::max(1, params.iterations);
  for (int r = 0; r < rounds; ++r) {
    JobProfile round;
    round.name = "tc-round-" + std::to_string(r);

    StageProfile expand;
    expand.name = "tc-expand";  // stable across rounds
    expand.num_tasks = partitions;
    expand.reads_cached = "tc_graph";
    expand.input_bytes = part_bytes * 5.0;
    expand.compute = 16.0;
    expand.shuffle_write_bytes = 56.0 * kMiB;
    expand.peak_memory = 768.0 * kMiB;
    expand.unmanaged_memory = 512.0 * kMiB;
    expand.skew_cv = 0.35;
    expand.heavy_tail = 0.08;
    round.stages.push_back(expand);

    StageProfile count;
    count.name = "tc-count";
    count.num_tasks = partitions;
    count.is_shuffle_map = false;
    count.shuffle_read_bytes = 56.0 * kMiB;
    count.compute = 12.0;
    count.peak_memory = 640.0 * kMiB;
    count.unmanaged_memory = 384.0 * kMiB;
    count.output_bytes = 512.0 * kKiB;
    count.skew_cv = 0.3;
    count.parents = {0};
    round.stages.push_back(count);
    builder.add_job(app, round);
  }
  app.validate();
  return app;
}

}  // namespace rupam
