#include "workloads/skew.hpp"

#include <cmath>
#include <stdexcept>

namespace rupam {

double skew_factor(Rng& rng, double cv, double heavy_tail) {
  if (cv < 0.0) throw std::invalid_argument("skew_factor: negative cv");
  double factor = 1.0;
  if (cv > 0.0) {
    // Lognormal with E[X] = 1: mu = -sigma^2 / 2.
    double sigma = std::sqrt(std::log(1.0 + cv * cv));
    factor = rng.lognormal(-0.5 * sigma * sigma, sigma);
  }
  if (heavy_tail > 0.0 && rng.uniform() < heavy_tail) factor *= 4.0;
  return factor;
}

std::vector<double> zipf_partition_sizes(Rng& rng, std::size_t partitions, double total,
                                         double exponent) {
  if (partitions == 0) throw std::invalid_argument("zipf_partition_sizes: no partitions");
  std::vector<double> weights(partitions);
  double sum = 0.0;
  for (std::size_t i = 0; i < partitions; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    sum += weights[i];
  }
  // Shuffle which partition gets which rank so the hot partition's id is
  // not always 0 (deterministic Fisher-Yates).
  for (std::size_t i = partitions; i > 1; --i) {
    std::size_t j = rng.uniform_index(i);
    std::swap(weights[i - 1], weights[j]);
  }
  for (auto& w : weights) w = w / sum * total;
  return weights;
}

}  // namespace rupam
