// Logistic Regression (SparkBench "LR"): the canonical iterative ML
// workload. One load job caches the training points; every following
// iteration is a compute-dominated gradient map over the cached RDD plus
// a small tree-aggregation. Stage names repeat across iterations, so
// DB_task_char warms up — this workload drives Fig 6.
#include "workloads/presets.hpp"

namespace rupam {

Application make_logistic_regression(const std::vector<NodeId>& nodes,
                                     const WorkloadParams& params) {
  Application app;
  app.name = "LR";
  WorkloadBuilder builder(nodes, params.seed, params.placement_weights);

  int partitions = std::max(64, static_cast<int>(params.input_gb * 64.0));
  Bytes part_bytes = params.input_gb * kGiB / partitions;

  // Load + first pass: read from blocks, deserialize, cache.
  JobProfile load;
  load.name = "lr-load";
  StageProfile load_map;
  load_map.name = "lr-load";
  load_map.num_tasks = partitions;
  load_map.reads_blocks = true;
  load_map.input_bytes = part_bytes;
  load_map.compute = 12.0;
  load_map.shuffle_write_bytes = 1.0 * kMiB;
  load_map.peak_memory = 512.0 * kMiB;
  load_map.caches_output = "lr_points";
  load_map.cache_bytes = part_bytes * 5.0;  // boxed-object expansion of raw rows
  load_map.skew_cv = 0.25;
  load.stages.push_back(load_map);

  StageProfile load_agg;
  load_agg.name = "lr-aggregate";
  load_agg.num_tasks = 24;
  load_agg.is_shuffle_map = false;
  load_agg.compute = 1.5;
  load_agg.shuffle_read_bytes = static_cast<double>(partitions) / 24.0 * 1.0 * kMiB;
  load_agg.output_bytes = 1.0 * kMiB;
  load_agg.peak_memory = 256.0 * kMiB;
  load_agg.parents = {0};
  load.stages.push_back(load_agg);
  builder.add_job(app, load);

  // Gradient iterations over the cached points.
  for (int it = 1; it < std::max(1, params.iterations); ++it) {
    JobProfile iter;
    iter.name = "lr-iteration-" + std::to_string(it);
    StageProfile grad;
    grad.name = "lr-gradient";  // stable name: DB_task_char key
    grad.num_tasks = partitions;
    grad.reads_cached = "lr_points";
    grad.input_bytes = part_bytes * 5.0;
    grad.compute = 30.0;
    grad.shuffle_write_bytes = 1.0 * kMiB;
    grad.peak_memory = 640.0 * kMiB;
    grad.skew_cv = 0.3;
    grad.heavy_tail = 0.08;  // hot partitions dominate the wave
    iter.stages.push_back(grad);

    StageProfile agg = load_agg;  // same shape & name every iteration
    agg.parents = {0};
    iter.stages.push_back(agg);
    builder.add_job(app, iter);
  }
  app.validate();
  return app;
}

}  // namespace rupam
