// Data-skew models for per-task demand variation (paper §II-B2: tasks in
// one stage differ by large factors due to data skew and shuffles).
#pragma once

#include "common/rng.hpp"

namespace rupam {

/// Multiplicative demand factor with mean ~1: lognormal with coefficient
/// of variation `cv`, plus a heavy tail — with probability `heavy_tail`
/// the task is a ~4x outlier (a hot partition).
double skew_factor(Rng& rng, double cv, double heavy_tail);

/// Zipf-weighted partition sizes summing to `total` (hot-key shuffles).
std::vector<double> zipf_partition_sizes(Rng& rng, std::size_t partitions, double total,
                                         double exponent);

}  // namespace rupam
