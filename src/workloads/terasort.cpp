// TeraSort: the disk-bound sort benchmark. Map reads input blocks and
// spills sorted runs; reduce fetches its range and writes the sorted
// output back to stable storage. No iteration structure — RUPAM's benefit
// comes from steering the I/O-heavy tasks to SSD nodes and limiting disk
// stacking, hence the paper's moderate 1.32x.
#include "workloads/presets.hpp"

namespace rupam {

Application make_terasort(const std::vector<NodeId>& nodes, const WorkloadParams& params) {
  Application app;
  app.name = "TeraSort";
  WorkloadBuilder builder(nodes, params.seed, params.placement_weights);

  int partitions = std::max(64, static_cast<int>(params.input_gb * 8.0));  // 128 MiB splits
  Bytes part_bytes = params.input_gb * kGiB / partitions;

  JobProfile job;
  job.name = "terasort";
  StageProfile map;
  map.name = "ts-map";
  map.num_tasks = partitions;
  map.reads_blocks = true;
  map.input_bytes = part_bytes;
  map.compute = 6.0;
  map.shuffle_write_bytes = part_bytes * 0.95;
  map.peak_memory = 320.0 * kMiB;
  map.skew_cv = 0.15;
  job.stages.push_back(map);

  StageProfile reduce;
  reduce.name = "ts-reduce";
  reduce.num_tasks = partitions;
  reduce.is_shuffle_map = false;
  reduce.shuffle_read_bytes = part_bytes * 0.95;
  reduce.compute = 4.0;
  reduce.shuffle_write_bytes = part_bytes;  // sorted output to local storage
  reduce.output_bytes = 64.0 * kKiB;
  reduce.peak_memory = 256.0 * kMiB;
  reduce.unmanaged_memory = 128.0 * kMiB;  // hot key ranges build user-side buffers
  reduce.skew_cv = 0.3;
  reduce.heavy_tail = 0.05;  // hot key ranges
  reduce.parents = {0};
  job.stages.push_back(reduce);
  builder.add_job(app, job);
  app.validate();
  return app;
}

}  // namespace rupam
