// SQL: a sequence of independent analytic queries (scan → shuffle join →
// result). Each query has distinct stage names, so DB_task_char carries
// nothing across queries — matching the paper's "one iteration per SQL
// query" explanation for the modest 1.19x speedup and the *higher* GC
// under RUPAM (join hash tables expand into the bigger executors).
#include "workloads/presets.hpp"

namespace rupam {

Application make_sql(const std::vector<NodeId>& nodes, const WorkloadParams& params) {
  Application app;
  app.name = "SQL";
  WorkloadBuilder builder(nodes, params.seed, params.placement_weights);

  int queries = std::max(1, params.iterations);
  int scan_tasks = std::max(48, static_cast<int>(params.input_gb * 8.0 / queries));
  Bytes part_bytes = params.input_gb * kGiB / (static_cast<double>(queries) * scan_tasks);

  for (int q = 0; q < queries; ++q) {
    std::string suffix = "-q" + std::to_string(q);
    JobProfile job;
    job.name = "sql-query" + suffix;

    StageProfile scan;
    scan.name = "sql-scan" + suffix;
    scan.num_tasks = scan_tasks;
    scan.reads_blocks = true;
    scan.input_bytes = part_bytes;
    scan.compute = 8.0;
    scan.shuffle_write_bytes = part_bytes * 0.25;
    scan.peak_memory = 320.0 * kMiB;
    scan.skew_cv = 0.2;
    job.stages.push_back(scan);

    StageProfile join;
    join.name = "sql-join" + suffix;
    join.num_tasks = std::max(24, scan_tasks / 3);
    join.shuffle_read_bytes =
        part_bytes * 0.25 * scan_tasks / std::max(24, scan_tasks / 3);
    join.compute = 14.0;
    join.shuffle_write_bytes = 24.0 * kMiB;
    join.peak_memory = 768.0 * kMiB;
    join.unmanaged_memory = 256.0 * kMiB;
    join.elastic_memory_fraction = 0.2;  // hash tables grow into free heap
    join.skew_cv = 0.35;
    join.heavy_tail = 0.06;  // skewed join keys
    join.parents = {0};
    job.stages.push_back(join);

    StageProfile result;
    result.name = "sql-result" + suffix;
    result.num_tasks = 24;
    result.is_shuffle_map = false;
    result.shuffle_read_bytes = 24.0 * kMiB * join.num_tasks / 24.0;
    result.compute = 2.5;
    result.output_bytes = 4.0 * kMiB;
    result.peak_memory = 384.0 * kMiB;
    result.parents = {1};
    job.stages.push_back(result);
    builder.add_job(app, job);
  }
  app.validate();
  return app;
}

}  // namespace rupam
