// Gramian Matrix (A^T * A over an 8K x 8K matrix): the single-pass
// GPU-accelerable kernel from the paper's BLAS study [37]. One job, one
// wave — DB_task_char never warms up, so RUPAM barely beats default Spark
// here (the paper reports only +1.4%).
#include "workloads/presets.hpp"

namespace rupam {

Application make_gramian(const std::vector<NodeId>& nodes, const WorkloadParams& params) {
  Application app;
  app.name = "GM";
  WorkloadBuilder builder(nodes, params.seed, params.placement_weights);

  int blocks = std::max(32, static_cast<int>(params.input_gb * 96.0));
  Bytes part_bytes = params.input_gb * kGiB / blocks;

  JobProfile job;
  job.name = "gramian";
  StageProfile multiply;
  multiply.name = "gm-block-multiply";
  multiply.num_tasks = blocks;
  multiply.reads_blocks = true;
  multiply.input_bytes = part_bytes;
  multiply.compute = 60.0;  // dense BLAS-3 kernel
  multiply.gpu = true;
  multiply.gpu_speedup = 10.0;
  multiply.shuffle_write_bytes = 20.0 * kMiB;
  multiply.peak_memory = 1.2 * kGiB;
  multiply.skew_cv = 0.1;
  job.stages.push_back(multiply);

  StageProfile reduce;
  reduce.name = "gm-reduce";
  reduce.num_tasks = 32;
  reduce.is_shuffle_map = false;
  reduce.shuffle_read_bytes = 20.0 * kMiB * blocks / 32.0;
  reduce.compute = 8.0;
  reduce.output_bytes = 12.0 * kMiB;
  reduce.peak_memory = 1.0 * kGiB;
  reduce.parents = {0};
  job.stages.push_back(reduce);
  builder.add_job(app, job);
  app.validate();
  return app;
}

}  // namespace rupam
