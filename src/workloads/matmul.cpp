// 4K x 4K dense matrix multiplication — the §II-B motivational kernel.
// Stage structure follows the paper's Fig 2 narrative: a CPU spike and
// network activity while partitioning the input, memory staying high
// throughout, CPU-dominated block products late, network again in the
// final reduce, low disk reads but visible shuffle writes.
#include "workloads/presets.hpp"

namespace rupam {

Application make_matmul(const std::vector<NodeId>& nodes, const WorkloadParams& params) {
  Application app;
  app.name = "MatMul";
  WorkloadBuilder builder(nodes, params.seed, params.placement_weights);

  // 4K x 4K doubles = 128 MiB per input matrix.
  int blocks = 48;
  Bytes matrix_bytes = params.input_gb > 0.0 ? params.input_gb * kGiB : 256.0 * kMiB;
  Bytes part_bytes = matrix_bytes / blocks;

  JobProfile job;
  job.name = "matmul";

  StageProfile partition;
  partition.name = "mm-partition";
  partition.num_tasks = blocks;
  partition.reads_blocks = true;
  partition.input_bytes = part_bytes;
  partition.compute = 8.0;  // early CPU spike: parse + block split
  partition.shuffle_write_bytes = part_bytes * 1.5;
  partition.peak_memory = 1.5 * kGiB;
  partition.skew_cv = 0.1;
  job.stages.push_back(partition);

  StageProfile multiply;
  multiply.name = "mm-multiply";
  multiply.num_tasks = blocks;
  multiply.shuffle_read_bytes = part_bytes * 1.5;
  multiply.compute = 45.0;  // the actual block products dominate late
  multiply.shuffle_write_bytes = part_bytes;
  multiply.peak_memory = 2.5 * kGiB;
  multiply.skew_cv = 0.15;
  multiply.parents = {0};
  job.stages.push_back(multiply);

  StageProfile reduce;
  reduce.name = "mm-reduce";
  reduce.num_tasks = 12;
  reduce.is_shuffle_map = false;
  reduce.shuffle_read_bytes = part_bytes * blocks / 16.0;
  reduce.compute = 3.0;
  reduce.output_bytes = 16.0 * kMiB;  // result back to the driver
  reduce.peak_memory = 1.0 * kGiB;
  reduce.parents = {1};
  job.stages.push_back(reduce);
  builder.add_job(app, job);
  app.validate();
  return app;
}

}  // namespace rupam
