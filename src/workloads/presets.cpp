#include "workloads/presets.hpp"

#include <stdexcept>

namespace rupam {

const std::vector<WorkloadPreset>& table3_workloads() {
  static const std::vector<WorkloadPreset> presets = {
      {"LR", "Logistic Regression", 6.0, 5, &make_logistic_regression},
      {"TeraSort", "TeraSort", 40.0, 1, &make_terasort},
      {"SQL", "SQL", 35.0, 3, &make_sql},
      {"PR", "PageRank", 0.95, 5, &make_pagerank},
      {"TC", "Triangle Count", 0.95, 3, &make_triangle_count},
      {"GM", "Gramian Matrix", 0.96, 1, &make_gramian},
      {"KMeans", "KMeans", 3.7, 5, &make_kmeans},
  };
  return presets;
}

const WorkloadPreset& workload_preset(const std::string& name) {
  for (const auto& p : table3_workloads()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("workload_preset: unknown workload '" + name + "'");
}

Application build_workload(const WorkloadPreset& preset, const std::vector<NodeId>& nodes,
                           std::uint64_t seed, int iterations_override,
                           std::vector<double> placement_weights) {
  WorkloadParams params;
  params.input_gb = preset.input_gb;
  params.iterations = iterations_override > 0 ? iterations_override : preset.iterations;
  params.seed = seed;
  params.placement_weights = std::move(placement_weights);
  return preset.factory(nodes, params);
}

}  // namespace rupam
