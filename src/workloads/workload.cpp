#include "workloads/workload.hpp"

#include <cmath>
#include <stdexcept>

#include "dag/rdd.hpp"
#include "workloads/skew.hpp"

namespace rupam {

WorkloadBuilder::WorkloadBuilder(std::vector<NodeId> nodes, std::uint64_t seed,
                                 std::vector<double> placement_weights)
    : nodes_(std::move(nodes)),
      placement_weights_(std::move(placement_weights)),
      seed_(seed),
      rng_(seed, 0x9e3779b97f4a7c15ULL) {
  if (nodes_.empty()) throw std::invalid_argument("WorkloadBuilder: no nodes");
  if (!placement_weights_.empty() && placement_weights_.size() != nodes_.size()) {
    throw std::invalid_argument("WorkloadBuilder: weights/nodes size mismatch");
  }
}

namespace {
// FNV-1a over the stage name and partition: per-partition skew must be a
// stable property of the *data*, identical across iterations (the same
// hot partition is hot every pass) — that stability is what makes
// DB_task_char's per-task history predictive.
std::uint64_t partition_seed(std::uint64_t base, const std::string& stage_name,
                             int partition) {
  std::uint64_t h = 14695981039346656037ULL ^ base;
  auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (char c : stage_name) mix(static_cast<unsigned char>(c));
  for (int i = 0; i < 4; ++i) mix(static_cast<unsigned char>(partition >> (8 * i)));
  return h;
}
}  // namespace

TaskSpec WorkloadBuilder::build_task(const StageProfile& p, StageId stage, int partition,
                                     const std::vector<std::vector<NodeId>>& placement) {
  Rng task_rng(partition_seed(seed_, p.name, partition), 0x5851f42d4c957f2dULL);
  double f = skew_factor(task_rng, p.skew_cv, p.heavy_tail);
  TaskSpec t;
  t.id = next_task_++;
  t.stage = stage;
  t.stage_name = p.name;
  t.partition = partition;
  t.is_shuffle_map = p.is_shuffle_map;
  t.compute = p.compute * f;
  t.input_bytes = p.input_bytes * f;
  t.shuffle_read_bytes = p.shuffle_read_bytes * f;
  t.shuffle_write_bytes = p.shuffle_write_bytes * f;
  t.output_bytes = p.output_bytes * f;
  // Memory footprints grow sublinearly with data skew (hash structures
  // amortize), so damp the factor — keeps 4x compute whales from becoming
  // unschedulable 4x memory whales.
  double mem_f = std::sqrt(f);
  t.peak_memory = p.peak_memory * mem_f;
  t.unmanaged_memory = p.unmanaged_memory * mem_f;
  t.elastic_memory_fraction = p.elastic_memory_fraction;
  t.serialization_fraction = p.serialization_fraction;
  t.gpu_accelerable = p.gpu;
  t.gpu_speedup = p.gpu_speedup;
  // In a >1 node cluster, (n-1)/n of shuffle input lives on other nodes.
  t.shuffle_remote_fraction =
      nodes_.size() > 1
          ? static_cast<double>(nodes_.size() - 1) / static_cast<double>(nodes_.size())
          : 0.0;
  if (!placement.empty()) {
    t.preferred_nodes = placement[static_cast<std::size_t>(partition)];
  }
  if (!p.reads_cached.empty()) {
    t.input_cache_key = p.reads_cached + "_" + std::to_string(partition);
  }
  if (!p.caches_output.empty()) {
    t.cache_output_key = p.caches_output + "_" + std::to_string(partition);
    t.cache_output_bytes = p.cache_bytes * f;
  }
  return t;
}

void WorkloadBuilder::add_job(Application& app, const JobProfile& profile) {
  Job job;
  job.id = next_job_++;
  job.name = profile.name;
  std::vector<StageId> stage_ids(profile.stages.size());
  for (std::size_t s = 0; s < profile.stages.size(); ++s) {
    const StageProfile& p = profile.stages[s];
    if (p.num_tasks <= 0) throw std::invalid_argument("StageProfile: num_tasks <= 0");
    Stage stage;
    stage.id = next_stage_++;
    stage_ids[s] = stage.id;
    stage.name = p.name;
    stage.is_shuffle_map = p.is_shuffle_map;
    for (int parent : p.parents) {
      if (parent < 0 || static_cast<std::size_t>(parent) >= s) {
        throw std::invalid_argument("StageProfile: parent must precede the stage");
      }
      stage.parents.push_back(stage_ids[static_cast<std::size_t>(parent)]);
    }
    std::vector<std::vector<NodeId>> placement;
    if (p.reads_blocks) {
      placement = place_blocks(static_cast<std::size_t>(p.num_tasks), nodes_, 2, rng_,
                               placement_weights_);
    }
    stage.tasks.job = job.id;
    stage.tasks.stage = stage.id;
    stage.tasks.stage_name = p.name;
    stage.tasks.is_shuffle_map = p.is_shuffle_map;
    for (int i = 0; i < p.num_tasks; ++i) {
      TaskSpec t = build_task(p, stage.id, i, placement);
      t.job = job.id;
      stage.tasks.tasks.push_back(std::move(t));
    }
    stage.validate();
    job.stages.push_back(std::move(stage));
  }
  job.validate();
  app.jobs.push_back(std::move(job));
}

}  // namespace rupam
