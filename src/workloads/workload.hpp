// Workload synthesis: SparkBench-like applications (paper Table III).
//
// A workload is described as stage profiles (per-task resource demands +
// DAG wiring + skew model) from which a deterministic generator builds an
// Application. Demands are calibrated so each workload reproduces the
// resource signature the paper reports (e.g. PageRank = memory + shuffle
// heavy; Gramian = single-iteration GPU compute; TeraSort = disk bound).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dag/job.hpp"

namespace rupam {

/// Per-task demand profile of one stage.
struct StageProfile {
  std::string name;
  int num_tasks = 1;
  bool is_shuffle_map = true;

  CpuWork compute = 1.0;  // reference-core-seconds, mean
  Bytes input_bytes = 0.0;
  Bytes shuffle_read_bytes = 0.0;
  Bytes shuffle_write_bytes = 0.0;
  Bytes output_bytes = 0.0;
  Bytes peak_memory = 64.0 * kMiB;
  Bytes unmanaged_memory = 0.0;
  double elastic_memory_fraction = 0.0;
  double serialization_fraction = 0.1;

  bool gpu = false;
  double gpu_speedup = 12.0;

  /// Input comes from stable-storage blocks placed across the cluster
  /// (gives the tasks NODE_LOCAL preferences).
  bool reads_blocks = false;
  /// Input is a cached RDD produced earlier under this key prefix.
  std::string reads_cached;
  /// Output partition is cached under this key prefix.
  std::string caches_output;
  Bytes cache_bytes = 0.0;

  /// Lognormal coefficient of variation on per-task demands (§II-B2:
  /// tasks in one stage differ due to data skew).
  double skew_cv = 0.2;
  /// Fraction of tasks with ~4x demand (heavy-tail skew).
  double heavy_tail = 0.0;

  /// Parent stage indices within the same job description.
  std::vector<int> parents;
};

/// One job = a DAG of stage profiles (indices are intra-job).
struct JobProfile {
  std::string name;
  std::vector<StageProfile> stages;
};

/// Knobs shared by every generator.
struct WorkloadParams {
  double input_gb = 1.0;
  int iterations = 5;
  std::uint64_t seed = 42;
  /// Per-node block-placement weights (HDFS stores blocks proportionally
  /// to datanode capacity). Empty = uniform.
  std::vector<double> placement_weights;
};

/// Stateful generator: allocates globally unique stage/task ids and owns
/// the deterministic RNG used for skew and block placement.
class WorkloadBuilder {
 public:
  WorkloadBuilder(std::vector<NodeId> nodes, std::uint64_t seed,
                  std::vector<double> placement_weights = {});

  /// Append a job built from `profile` to `app`.
  void add_job(Application& app, const JobProfile& profile);

  Rng& rng() { return rng_; }

 private:
  TaskSpec build_task(const StageProfile& p, StageId stage, int partition,
                      const std::vector<std::vector<NodeId>>& placement);

  std::vector<NodeId> nodes_;
  std::vector<double> placement_weights_;
  std::uint64_t seed_;
  Rng rng_;
  StageId next_stage_ = 0;
  TaskId next_task_ = 0;
  JobId next_job_ = 0;
};

/// Factory signature every workload implements.
using WorkloadFactory = Application (*)(const std::vector<NodeId>& nodes,
                                        const WorkloadParams& params);

}  // namespace rupam
