// PageRank: the memory- and shuffle-heavy iterative graph workload. Joins
// between the cached edge list and the rank vector demand multi-GB task
// memory — on default Spark's weakest-node-sized executors this drives
// OOM kills and occasional whole-worker losses (the paper's 2.5x worst
// case and its large error bars); RUPAM's memory guard + dynamic executor
// sizing avoid them.
#include "workloads/presets.hpp"

namespace rupam {

Application make_pagerank(const std::vector<NodeId>& nodes, const WorkloadParams& params) {
  Application app;
  app.name = "PR";
  WorkloadBuilder builder(nodes, params.seed, params.placement_weights);

  int partitions = std::max(24, static_cast<int>(params.input_gb * 80.0));
  Bytes part_bytes = params.input_gb * kGiB / partitions;

  JobProfile load;
  load.name = "pr-load";
  StageProfile load_map;
  load_map.name = "pr-load";
  load_map.num_tasks = partitions;
  load_map.reads_blocks = true;
  load_map.input_bytes = part_bytes;
  load_map.compute = 5.0;
  load_map.shuffle_write_bytes = 2.0 * kMiB;
  load_map.peak_memory = 640.0 * kMiB;
  load_map.caches_output = "pr_graph";
  load_map.cache_bytes = part_bytes * 5.0;  // adjacency expansion
  load.stages.push_back(load_map);
  builder.add_job(app, load);

  for (int it = 0; it < std::max(1, params.iterations); ++it) {
    JobProfile iter;
    iter.name = "pr-iteration-" + std::to_string(it);

    StageProfile contrib;
    contrib.name = "pr-contrib";
    contrib.num_tasks = partitions;
    contrib.reads_cached = "pr_graph";
    contrib.input_bytes = part_bytes * 5.0;
    contrib.compute = 10.0;
    contrib.shuffle_write_bytes = 40.0 * kMiB;
    contrib.peak_memory = 1.0 * kGiB;
    contrib.unmanaged_memory = 1.0 * kGiB;  // edge/rank join rows live on the user heap
    contrib.elastic_memory_fraction = 0.1;
    contrib.skew_cv = 0.3;
    contrib.heavy_tail = 0.06;  // high-degree vertices
    iter.stages.push_back(contrib);

    StageProfile rank;
    rank.name = "pr-rank";
    rank.num_tasks = partitions;
    rank.is_shuffle_map = false;
    rank.shuffle_read_bytes = 40.0 * kMiB;
    rank.compute = 6.0;
    rank.peak_memory = 768.0 * kMiB;
    rank.unmanaged_memory = 512.0 * kMiB;
    rank.output_bytes = 1.0 * kMiB;
    rank.skew_cv = 0.3;
    rank.parents = {0};
    iter.stages.push_back(rank);
    builder.add_job(app, iter);
  }
  app.validate();
  return app;
}

}  // namespace rupam
