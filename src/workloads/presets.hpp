// Workload factories (paper Table III) and the named registry the
// benchmark harnesses use.
//
// Calibration note: per-task demands are expressed in reference-core
// seconds and bytes, chosen so each workload reproduces the paper's
// resource signature and the relative Spark-vs-RUPAM behaviour — not the
// authors' absolute runtimes (our substrate is a simulator).
#pragma once

#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace rupam {

/// Iterative ML: compute-heavy map over a cached point set per iteration,
/// tiny gradient aggregation. Table III: 6 GB input.
Application make_logistic_regression(const std::vector<NodeId>& nodes,
                                     const WorkloadParams& params);

/// Sort: disk-bound map (read+shuffle spill) and reduce (fetch+HDFS
/// write). Table III: 40 GB input.
Application make_terasort(const std::vector<NodeId>& nodes, const WorkloadParams& params);

/// Analytics queries: `iterations` independent scan→join→result queries
/// with distinct stage names (no cross-query history). Table III: 35 GB.
Application make_sql(const std::vector<NodeId>& nodes, const WorkloadParams& params);

/// Graph: memory- and shuffle-heavy iterative ranking over a cached
/// graph. Table III: 0.95 GB (500K vertices).
Application make_pagerank(const std::vector<NodeId>& nodes, const WorkloadParams& params);

/// Graph: repeated expand/count join rounds over a cached graph.
/// Table III: 0.95 GB (500K vertices).
Application make_triangle_count(const std::vector<NodeId>& nodes,
                                const WorkloadParams& params);

/// GPU-accelerable single-pass kernel (A^T * A). Table III: 0.96 GB
/// (8K x 8K matrix). One iteration — nothing for DB_task_char to learn.
Application make_gramian(const std::vector<NodeId>& nodes, const WorkloadParams& params);

/// GPU-accelerable iterative clustering over cached points. Table III:
/// 3.7 GB input.
Application make_kmeans(const std::vector<NodeId>& nodes, const WorkloadParams& params);

/// The §II-B motivational kernel: 4K x 4K dense matrix multiplication
/// (load → multiply → reduce), used for Fig 2's utilization timeline.
Application make_matmul(const std::vector<NodeId>& nodes, const WorkloadParams& params);

/// Table III entry: name, factory, and paper-default parameters.
struct WorkloadPreset {
  std::string name;        // e.g. "LR"
  std::string long_name;   // e.g. "Logistic Regression"
  double input_gb = 1.0;
  int iterations = 1;
  WorkloadFactory factory = nullptr;
};

/// The seven Table III workloads, in the paper's order.
const std::vector<WorkloadPreset>& table3_workloads();

/// Lookup by short name ("LR", "TeraSort", "SQL", "PR", "TC", "GM",
/// "KMeans"). Throws on unknown names.
const WorkloadPreset& workload_preset(const std::string& name);

/// Build a preset's application with a given seed (and optional iteration
/// override, used by the Fig 6 sweep). `placement_weights`, when given,
/// bias HDFS-style block placement per node (see place_blocks).
Application build_workload(const WorkloadPreset& preset, const std::vector<NodeId>& nodes,
                           std::uint64_t seed, int iterations_override = 0,
                           std::vector<double> placement_weights = {});

}  // namespace rupam
