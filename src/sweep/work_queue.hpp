// Bounded-unbounded MPMC work queue for the sweep orchestrator's worker
// pool, in the spirit of the Worker<Scheduler, CommandRef> + queue idiom
// (SNIPPETS.md). Producers push items and close() the queue when the grid
// is fully enqueued; workers block in pop() until an item arrives or the
// queue is closed and drained. Deliberately mutex+condvar (not lock-free):
// each item is a whole discrete-event simulation, so queue overhead is
// noise, and the simple implementation is easy to reason about under
// ThreadSanitizer.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

namespace rupam {

template <typename T>
class WorkQueue {
 public:
  /// Enqueue one item. Push after close() is a programming error; items
  /// pushed then are silently dropped by design (the queue is draining).
  void push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
  }

  /// Blocking dequeue. Returns false — forever, for every caller — once
  /// the queue is closed and drained; that is the workers' exit signal.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// No more pushes are coming: wake every blocked worker so the pool can
  /// drain the remaining items and exit.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rupam
