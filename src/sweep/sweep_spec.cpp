#include "sweep/sweep_spec.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json_reader.hpp"
#include "common/json_writer.hpp"
#include "faults/fault_plan.hpp"
#include "workloads/presets.hpp"

namespace rupam {

std::size_t SweepSpec::cell_index(const CellCoord& c) const {
  return (((c.scheduler * fleet_sizes.size() + c.fleet) * arrival_rates.size() + c.rate) *
              fault_plans.size() +
          c.fault) *
             elastic_modes.size() +
         c.elastic;
}

CellCoord SweepSpec::cell_at(std::size_t index) const {
  CellCoord c;
  c.elastic = index % elastic_modes.size();
  index /= elastic_modes.size();
  c.fault = index % fault_plans.size();
  index /= fault_plans.size();
  c.rate = index % arrival_rates.size();
  index /= arrival_rates.size();
  c.fleet = index % fleet_sizes.size();
  c.scheduler = index / fleet_sizes.size();
  return c;
}

namespace {

[[noreturn]] void spec_error(const std::string& message) {
  throw std::runtime_error("sweep spec: " + message);
}

}  // namespace

std::string_view scheduler_cli_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSpark: return "spark";
    case SchedulerKind::kRupam: return "rupam";
    case SchedulerKind::kStageAware: return "stageaware";
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kHeft: return "heft";
  }
  return "?";
}

void SweepSpec::validate() const {
  if (replications < 1) spec_error("replications must be >= 1");
  if (duration <= 0.0) spec_error("duration must be > 0");
  if (tenants < 1) spec_error("tenants must be >= 1");
  if (iterations_override < 0) spec_error("iterations must be >= 0");
  for (int n : fleet_sizes) {
    // 12 is the Hydra preset; anything else goes through scaled_hydra_fleet,
    // which needs one node per class.
    if (n != 12 && n < 3) spec_error("fleet_sizes entries must be 12 or >= 3");
  }
  for (double r : arrival_rates) {
    if (r <= 0.0) spec_error("arrival_rates entries must be > 0");
  }
  for (const std::string& plan : fault_plans) {
    if (plan.empty()) continue;
    try {
      parse_fault_spec(plan);
    } catch (const std::exception& e) {
      spec_error("fault plan '" + plan + "': " + e.what());
    }
  }
  for (const std::string& name : mix) {
    try {
      workload_preset(name);
    } catch (const std::exception& e) {
      spec_error(e.what());
    }
  }
  for (const std::string& mode : elastic_modes) {
    bool autoscale = false, preempt = false;
    if (!parse_elastic_mode(mode, autoscale, preempt)) {
      spec_error("elastic entry '" + mode +
                 "' must be \"\", \"autoscale\", \"preempt\", or \"autoscale+preempt\"");
    }
  }
}

bool parse_elastic_mode(const std::string& mode, bool& autoscale, bool& preempt) {
  autoscale = false;
  preempt = false;
  if (mode.empty()) return true;
  if (mode == "autoscale") {
    autoscale = true;
  } else if (mode == "preempt") {
    preempt = true;
  } else if (mode == "autoscale+preempt") {
    autoscale = true;
    preempt = true;
  } else {
    return false;
  }
  return true;
}

std::uint64_t sweep_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_run_seed(std::uint64_t base_seed, std::size_t scheduler_idx,
                              std::size_t fleet_idx, std::size_t rate_idx,
                              std::size_t fault_idx, int replication) {
  // Absorb one coordinate per round so (1, 0) and (0, 1) in adjacent axes
  // cannot collide the way a plain xor of indices would.
  std::uint64_t h = sweep_mix64(base_seed ^ 0x53574545502d3131ULL);  // "SWEEP-11"
  h = sweep_mix64(h ^ static_cast<std::uint64_t>(scheduler_idx));
  h = sweep_mix64(h ^ static_cast<std::uint64_t>(fleet_idx));
  h = sweep_mix64(h ^ static_cast<std::uint64_t>(rate_idx));
  h = sweep_mix64(h ^ static_cast<std::uint64_t>(fault_idx));
  h = sweep_mix64(h ^ static_cast<std::uint64_t>(replication));
  return h != 0 ? h : 1;
}

std::uint64_t derive_run_seed(const SweepSpec& spec, const CellCoord& cell, int replication) {
  std::uint64_t h = derive_run_seed(spec.base_seed, cell.scheduler, cell.fleet, cell.rate,
                                    cell.fault, replication);
  // Elastic index 0 is the static default: no extra fold, so legacy
  // 4-axis sweeps keep their pinned seeds bit for bit.
  if (cell.elastic > 0) {
    h = sweep_mix64(h ^ (0x454c415354494331ULL +  // "ELASTIC1"
                         static_cast<std::uint64_t>(cell.elastic)));
    if (h == 0) h = 1;
  }
  return h;
}

FleetSpec sweep_fleet_spec(int nodes, std::uint64_t base_seed) {
  if (nodes == 12) return hydra_fleet_spec();
  return scaled_hydra_fleet(nodes, sweep_mix64(base_seed ^ static_cast<std::uint64_t>(nodes)));
}

namespace {

double require_number(const JsonValue& v, const std::string& what) {
  if (!v.is_number()) spec_error(what + " must be a number");
  return v.as_number();
}

std::uint64_t require_u64(const JsonValue& v, const std::string& what) {
  double d = require_number(v, what);
  if (d < 0.0) spec_error(what + " must be >= 0");
  return static_cast<std::uint64_t>(d);
}

int require_int(const JsonValue& v, const std::string& what) {
  double d = require_number(v, what);
  int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) spec_error(what + " must be an integer");
  return i;
}

const std::string& require_string(const JsonValue& v, const std::string& what) {
  if (!v.is_string()) spec_error(what + " must be a string");
  return v.as_string();
}

const JsonValue::Array& require_array(const JsonValue& v, const std::string& what) {
  if (!v.is_array()) spec_error(what + " must be an array");
  return v.as_array();
}

}  // namespace

SweepSpec parse_sweep_json(const std::string& text) {
  JsonValue root = parse_json(text);
  if (!root.is_object()) spec_error("top level must be an object");
  SweepSpec spec;
  for (const auto& [key, value] : root.as_object()) {
    if (key == "name") {
      spec.name = require_string(value, "name");
    } else if (key == "base_seed") {
      spec.base_seed = require_u64(value, "base_seed");
    } else if (key == "replications") {
      spec.replications = require_int(value, "replications");
    } else if (key == "schedulers") {
      spec.schedulers.clear();
      for (const JsonValue& v : require_array(value, "schedulers")) {
        const std::string& name = require_string(v, "schedulers entry");
        auto kind = scheduler_kind_from_name(name);
        if (!kind) spec_error("unknown scheduler '" + name + "'");
        spec.schedulers.push_back(*kind);
      }
    } else if (key == "fleet_sizes") {
      spec.fleet_sizes.clear();
      for (const JsonValue& v : require_array(value, "fleet_sizes")) {
        spec.fleet_sizes.push_back(require_int(v, "fleet_sizes entry"));
      }
    } else if (key == "arrival_rates") {
      spec.arrival_rates.clear();
      for (const JsonValue& v : require_array(value, "arrival_rates")) {
        spec.arrival_rates.push_back(require_number(v, "arrival_rates entry"));
      }
    } else if (key == "fault_plans") {
      spec.fault_plans.clear();
      for (const JsonValue& v : require_array(value, "fault_plans")) {
        spec.fault_plans.push_back(require_string(v, "fault_plans entry"));
      }
    } else if (key == "elastic") {
      spec.elastic_modes.clear();
      for (const JsonValue& v : require_array(value, "elastic")) {
        spec.elastic_modes.push_back(require_string(v, "elastic entry"));
      }
    } else if (key == "duration") {
      spec.duration = require_number(value, "duration");
    } else if (key == "tenants") {
      spec.tenants = require_int(value, "tenants");
    } else if (key == "pool_policy") {
      const std::string& name = require_string(value, "pool_policy");
      if (name == "fifo") {
        spec.pool_policy = PoolPolicy::kFifo;
      } else if (name == "fair") {
        spec.pool_policy = PoolPolicy::kFair;
      } else {
        spec_error("unknown pool_policy '" + name + "'");
      }
    } else if (key == "mix") {
      spec.mix.clear();
      for (const JsonValue& v : require_array(value, "mix")) {
        spec.mix.push_back(require_string(v, "mix entry"));
      }
    } else if (key == "iterations") {
      spec.iterations_override = require_int(value, "iterations");
    } else if (key == "max_apps") {
      spec.max_apps = static_cast<std::size_t>(require_u64(value, "max_apps"));
    } else if (key == "sample_utilization") {
      if (!value.is_bool()) spec_error("sample_utilization must be a bool");
      spec.sample_utilization = value.as_bool();
    } else if (key == "analyze") {
      if (!value.is_bool()) spec_error("analyze must be a bool");
      spec.analyze = value.as_bool();
    } else {
      spec_error("unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

SweepSpec load_sweep_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot read sweep spec '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  try {
    return parse_sweep_json(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::string sweep_to_json(const SweepSpec& spec) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("name").value(spec.name);
  w.key("base_seed").value(static_cast<unsigned long long>(spec.base_seed));
  w.key("replications").value(spec.replications);
  w.key("schedulers").begin_array();
  for (SchedulerKind kind : spec.schedulers) w.value(scheduler_cli_name(kind));
  w.end_array();
  w.key("fleet_sizes").begin_array();
  for (int n : spec.fleet_sizes) w.value(n);
  w.end_array();
  w.key("arrival_rates").begin_array();
  for (double r : spec.arrival_rates) w.value(r);
  w.end_array();
  w.key("fault_plans").begin_array();
  for (const std::string& p : spec.fault_plans) w.value(p);
  w.end_array();
  w.key("elastic").begin_array();
  for (const std::string& m : spec.elastic_modes) w.value(m);
  w.end_array();
  w.key("duration").value(spec.duration);
  w.key("tenants").value(spec.tenants);
  w.key("pool_policy").value(spec.pool_policy == PoolPolicy::kFair ? "fair" : "fifo");
  w.key("mix").begin_array();
  for (const std::string& m : spec.mix) w.value(m);
  w.end_array();
  w.key("iterations").value(spec.iterations_override);
  w.key("max_apps").value(static_cast<unsigned long long>(spec.max_apps));
  w.key("sample_utilization").value(spec.sample_utilization);
  w.key("analyze").value(spec.analyze);
  w.end_object();
  return os.str();
}

}  // namespace rupam
