#include "sweep/orchestrator.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "app/simulation.hpp"
#include "common/json_writer.hpp"
#include "common/stats.hpp"
#include "faults/fault_plan.hpp"
#include "sweep/work_queue.hpp"

namespace rupam {

MetricAggregate aggregate_metric(const std::vector<double>& values) {
  MetricAggregate agg;
  RunningStats stats;
  for (double v : values) stats.add(v);
  agg.n = stats.count();
  agg.mean = stats.mean();
  agg.ci95 = confidence_interval_95(stats.stddev(), stats.count());
  agg.min = stats.min();
  agg.max = stats.max();
  return agg;
}

void CellResult::aggregate() {
  failed = 0;
  std::vector<double> makespans, means, p50s, p95s, utils;
  makespans.reserve(reps.size());
  for (const RunResult& r : reps) {
    if (!r.ok) {
      ++failed;
      continue;
    }
    makespans.push_back(r.makespan);
    means.push_back(r.mean_jct);
    p50s.push_back(r.p50_jct);
    p95s.push_back(r.p95_jct);
    utils.push_back(r.avg_cpu_util);
  }
  makespan = aggregate_metric(makespans);
  mean_jct = aggregate_metric(means);
  p50_jct = aggregate_metric(p50s);
  p95_jct = aggregate_metric(p95s);
  utilization = aggregate_metric(utils);

  analyzed = false;
  analyzer = AnalyzerSummary{};
  std::size_t analyzed_reps = 0;
  for (const RunResult& r : reps) {
    if (!r.ok || !r.analyzed) continue;
    analyzed = true;
    ++analyzed_reps;
    analyzer.stragglers += r.analyzer.stragglers;
    for (std::size_t c = 0; c < analyzer.by_cause.size(); ++c) {
      analyzer.by_cause[c] += r.analyzer.by_cause[c];
    }
    analyzer.critical_path += r.analyzer.critical_path;
  }
  if (analyzed_reps > 1) {
    // Counts stay summed; the attribution reads best as a per-run mean.
    double n = static_cast<double>(analyzed_reps);
    PhaseAttribution& a = analyzer.critical_path;
    a.queueing /= n;
    a.input_read /= n;
    a.shuffle_read /= n;
    a.compute /= n;
    a.gc /= n;
    a.shuffle_write /= n;
    a.spill /= n;
    a.output_send /= n;
    a.driver /= n;
  }
}

std::size_t SweepMatrix::total_runs() const {
  std::size_t n = 0;
  for (const CellResult& c : cells) n += c.reps.size();
  return n;
}

std::size_t SweepMatrix::failed_runs() const {
  std::size_t n = 0;
  for (const CellResult& c : cells) n += c.failed;
  return n;
}

KernelStats SweepMatrix::kernel_total() const {
  KernelStats total;
  for (const CellResult& c : cells) {
    for (const RunResult& r : c.reps) total += r.kernel;
  }
  return total;
}

RunResult run_sweep_cell(const SweepSpec& spec, const CellCoord& cell, int replication,
                         std::uint64_t seed) {
  RunResult r;
  r.seed = seed;
  r.replication = replication;

  SimulationConfig cfg;
  cfg.scheduler = spec.schedulers.at(cell.scheduler);
  FleetSpec fleet = sweep_fleet_spec(spec.fleet_sizes.at(cell.fleet), spec.base_seed);
  cfg.nodes = generate_fleet(fleet);
  if (fleet.switch_bandwidth > 0.0) cfg.switch_bandwidth = fleet.switch_bandwidth;
  cfg.pools.policy = spec.pool_policy;
  cfg.sample_utilization = spec.sample_utilization;
  const std::string& plan = spec.fault_plans.at(cell.fault);
  if (!plan.empty()) cfg.faults = parse_fault_spec(plan);
  const std::string& elastic = spec.elastic_modes.at(cell.elastic);
  bool autoscale = false, preempt = false;
  parse_elastic_mode(elastic, autoscale, preempt);  // validated by the spec
  cfg.autoscale.enabled = autoscale;
  cfg.preemption.enabled = preempt;
  if (spec.analyze) {
    cfg.enable_analysis = true;
    cfg.enable_spans = true;
    cfg.enable_audit = true;
    cfg.enable_trace = true;
  }
  cfg.seed = seed;

  ArrivalConfig arrivals;
  arrivals.rate = spec.arrival_rates.at(cell.rate);
  arrivals.duration = spec.duration;
  arrivals.tenants = spec.tenants;
  arrivals.seed = seed;
  arrivals.iterations_override = spec.iterations_override;
  arrivals.mix = spec.mix;
  arrivals.max_apps = spec.max_apps;

  Simulation sim(cfg);
  SubmissionStream stream = make_poisson_stream(arrivals, sim.cluster().node_ids());
  r.apps = stream.size();
  if (!stream.empty()) {
    TenantRunReport report = sim.run(stream);
    r.makespan = report.makespan;
    r.jobs = report.jobs.size();
    r.mean_jct = report.overall.mean;
    r.p50_jct = report.overall.p50;
    r.p95_jct = report.overall.p95;
    r.p99_jct = report.overall.p99;
    r.mean_queueing = report.overall.mean_queueing;
    if (sim.sampler() != nullptr) r.avg_cpu_util = sim.sampler()->avg_cpu_util();
    if (spec.analyze) {
      r.analyzer = summarize_diagnosis(analyze_run(sim.run_artifacts()));
      r.analyzed = true;
    }
  }
  r.kernel = sim.sim().stats();
  r.ok = true;
  return r;
}

namespace {

struct WorkItem {
  std::size_t cell = 0;
  int replication = 0;
};

}  // namespace

SweepMatrix run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  spec.validate();

  SweepMatrix matrix;
  matrix.spec = spec;
  matrix.cells.resize(spec.cell_count());
  const std::size_t total = spec.total_runs();
  for (std::size_t i = 0; i < matrix.cells.size(); ++i) {
    matrix.cells[i].coord = spec.cell_at(i);
    matrix.cells[i].reps.resize(static_cast<std::size_t>(spec.replications));
  }
  if (total == 0) return matrix;

  WorkQueue<WorkItem> queue;
  for (std::size_t cell = 0; cell < matrix.cells.size(); ++cell) {
    for (int rep = 0; rep < spec.replications; ++rep) {
      queue.push(WorkItem{cell, rep});
    }
  }
  queue.close();

  auto runner = options.runner
                    ? options.runner
                    : std::function<RunResult(const SweepSpec&, const CellCoord&, int,
                                              std::uint64_t)>(run_sweep_cell);

  int threads = options.threads;
  if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  threads = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads), total));

  std::mutex progress_mutex;
  std::size_t done = 0;
  auto worker = [&] {
    WorkItem item;
    while (queue.pop(item)) {
      CellResult& cell = matrix.cells[item.cell];
      // Each (cell, replication) slot is written by exactly one worker —
      // results are disjoint, so no lock is needed around the write.
      RunResult& slot = cell.reps[static_cast<std::size_t>(item.replication)];
      std::uint64_t seed = derive_run_seed(spec, cell.coord, item.replication);
      if (options.controller != nullptr && options.controller->stop_requested()) {
        slot.ok = false;
        slot.error = "cancelled";
        slot.seed = seed;
        slot.replication = item.replication;
      } else {
        try {
          slot = runner(spec, cell.coord, item.replication, seed);
        } catch (const std::exception& e) {
          slot = RunResult{};
          slot.error = e.what();
          slot.seed = seed;
          slot.replication = item.replication;
        } catch (...) {
          slot = RunResult{};
          slot.error = "unknown error";
          slot.seed = seed;
          slot.replication = item.replication;
        }
      }
      {
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++done;
        if (options.on_progress) options.on_progress(done, total);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  // Aggregation runs single-threaded after the join, in grid order — the
  // matrix (and its JSON) is independent of which worker ran which cell.
  for (CellResult& cell : matrix.cells) cell.aggregate();
  return matrix;
}

namespace {

void write_aggregate(JsonWriter& w, const char* name, const MetricAggregate& agg) {
  w.key(name).begin_object();
  w.key("n").value(static_cast<unsigned long long>(agg.n));
  w.key("mean").value(agg.mean);
  w.key("ci95").value(agg.ci95);
  w.key("min").value(agg.min);
  w.key("max").value(agg.max);
  w.end_object();
}

}  // namespace

void SweepMatrix::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("name").value(spec.name);
  w.key("base_seed").value(static_cast<unsigned long long>(spec.base_seed));
  w.key("replications").value(spec.replications);
  w.key("duration").value(spec.duration);
  w.key("tenants").value(spec.tenants);
  w.key("pool_policy").value(spec.pool_policy == PoolPolicy::kFair ? "fair" : "fifo");
  w.key("total_runs").value(static_cast<unsigned long long>(total_runs()));
  w.key("failed_runs").value(static_cast<unsigned long long>(failed_runs()));
  w.key("cells").begin_array();
  for (const CellResult& cell : cells) {
    w.begin_object();
    w.key("scheduler").value(scheduler_cli_name(spec.schedulers.at(cell.coord.scheduler)));
    w.key("fleet_size").value(spec.fleet_sizes.at(cell.coord.fleet));
    w.key("arrival_rate").value(spec.arrival_rates.at(cell.coord.rate));
    w.key("fault_plan").value(spec.fault_plans.at(cell.coord.fault));
    w.key("elastic").value(spec.elastic_modes.at(cell.coord.elastic));
    w.key("failed").value(static_cast<unsigned long long>(cell.failed));
    w.key("runs").begin_array();
    for (const RunResult& r : cell.reps) {
      w.begin_object();
      w.key("replication").value(r.replication);
      w.key("seed").value(static_cast<unsigned long long>(r.seed));
      w.key("ok").value(r.ok);
      if (!r.ok) {
        w.key("error").value(r.error);
      } else {
        w.key("apps").value(static_cast<unsigned long long>(r.apps));
        w.key("jobs").value(static_cast<unsigned long long>(r.jobs));
        w.key("makespan_s").value(r.makespan);
        w.key("mean_jct_s").value(r.mean_jct);
        w.key("p50_jct_s").value(r.p50_jct);
        w.key("p95_jct_s").value(r.p95_jct);
        w.key("p99_jct_s").value(r.p99_jct);
        w.key("mean_queueing_s").value(r.mean_queueing);
        w.key("avg_cpu_util").value(r.avg_cpu_util);
        if (r.analyzed) {
          w.key("analyzer");
          write_analyzer_summary_json(r.analyzer, w);
        }
      }
      w.end_object();
    }
    w.end_array();
    write_aggregate(w, "makespan_s", cell.makespan);
    write_aggregate(w, "mean_jct_s", cell.mean_jct);
    write_aggregate(w, "p50_jct_s", cell.p50_jct);
    write_aggregate(w, "p95_jct_s", cell.p95_jct);
    write_aggregate(w, "avg_cpu_util", cell.utilization);
    if (cell.analyzed) {
      w.key("analyzer");
      write_analyzer_summary_json(cell.analyzer, w);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

std::string SweepMatrix::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace rupam
