// Parallel sweep orchestrator: execute every (cell, replication) run of a
// SweepSpec grid on a fixed-size std::thread worker pool fed by an MPMC
// work queue, and collect results into a stable-ordered matrix.
//
// Determinism contract: each run's seed is derived purely from (base_seed,
// cell coordinates, replication index) and results land in preassigned
// slots (cell-major, replication-minor), so the aggregated matrix — and
// its JSON serialization — is byte-identical regardless of worker count or
// completion order. Simulations share nothing (KernelStats is
// per-Simulator; every run builds its own cluster/scheduler/RNG streams),
// which is what makes the pool safe in the first place.
//
// Failure isolation: a cell that throws is recorded as an error entry
// (ok=false, the exception message) and the pool keeps draining; a
// SweepController lets a caller stop early, in which case the not-yet-run
// entries are marked "cancelled" rather than dropped, keeping the matrix
// shape intact.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/analyzer.hpp"
#include "simcore/kernel_stats.hpp"
#include "sweep/sweep_spec.hpp"

namespace rupam {

/// Outcome of one (cell, replication) run.
struct RunResult {
  bool ok = false;
  std::string error;  // non-empty iff !ok ("cancelled" for unrun entries)
  std::uint64_t seed = 0;
  int replication = 0;

  double makespan = 0.0;  // first submission → last application finish
  std::size_t apps = 0;
  std::size_t jobs = 0;
  double mean_jct = 0.0;
  double p50_jct = 0.0;
  double p95_jct = 0.0;
  double p99_jct = 0.0;
  double mean_queueing = 0.0;
  double avg_cpu_util = 0.0;  // fraction; 0 when sampling is off
  KernelStats kernel{};       // this run's Simulator counters
  /// Filled when the spec's `analyze` flag is on: straggler counts by
  /// cause and the summed critical-path attribution for this run.
  bool analyzed = false;
  AnalyzerSummary analyzer{};
};

/// Mean and small-sample 95% CI (Student-t) over n replication values.
struct MetricAggregate {
  std::size_t n = 0;
  double mean = 0.0;
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

MetricAggregate aggregate_metric(const std::vector<double>& values);

/// One grid cell: its coordinates, every replication's RunResult (ordered
/// by replication index) and the per-metric aggregates over the ok runs.
struct CellResult {
  CellCoord coord;
  std::vector<RunResult> reps;
  std::size_t failed = 0;  // reps with ok == false

  MetricAggregate makespan;
  MetricAggregate mean_jct;
  MetricAggregate p50_jct;
  MetricAggregate p95_jct;
  MetricAggregate utilization;
  /// Analyzer rollup over the ok reps (counts summed, critical path
  /// averaged); `analyzed` is true when at least one rep carried one.
  bool analyzed = false;
  AnalyzerSummary analyzer{};

  /// Recompute `failed` and the aggregates from `reps`.
  void aggregate();
};

struct SweepMatrix {
  SweepSpec spec;
  std::vector<CellResult> cells;  // spec.cell_count() entries, row-major

  std::size_t total_runs() const;
  std::size_t failed_runs() const;
  /// Summed kernel counters across every run (bench footers).
  KernelStats kernel_total() const;

  /// Deterministic matrix serialization: same spec → byte-identical output
  /// at any worker count.
  void write_json(std::ostream& os) const;
  std::string to_json() const;
};

/// Cooperative early-stop shared between the caller and the worker pool.
class SweepController {
 public:
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_{false};
};

struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). The pool is
  /// never larger than the number of runs.
  int threads = 1;
  /// Optional external cancel: once stop is requested, queued runs drain
  /// as "cancelled" error entries instead of executing.
  SweepController* controller = nullptr;
  /// Called after every finished run, serialized by the orchestrator
  /// (never concurrently): (runs_done, runs_total).
  std::function<void(std::size_t, std::size_t)> on_progress;
  /// Test seam: replaces the real per-run simulation. Receives the spec,
  /// cell coordinates, replication index and derived seed.
  std::function<RunResult(const SweepSpec&, const CellCoord&, int, std::uint64_t)> runner;
};

/// The real per-run body: build the cell's fleet + Simulation, draw the
/// Poisson submission stream and run it to completion. Throws on
/// configuration errors (callers — the pool — convert that to an error
/// entry).
RunResult run_sweep_cell(const SweepSpec& spec, const CellCoord& cell, int replication,
                         std::uint64_t seed);

/// Execute the whole grid and return the aggregated, stable-ordered
/// matrix. Validates the spec first (throws std::runtime_error on bad
/// specs). Degenerate grids (an empty axis) return an empty matrix.
SweepMatrix run_sweep(const SweepSpec& spec, const SweepOptions& options = {});

}  // namespace rupam
