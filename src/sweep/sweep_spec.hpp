// Parameter-sweep grid specification: the capacity-planning matrix a
// cluster operator runs — scheduler × fleet size × arrival rate × fault
// plan, each cell replicated N times with derived seeds.
//
// A SweepSpec fully determines every run in the sweep: cell coordinates
// are indices into the four axis vectors (row-major, scheduler outermost,
// fault plan innermost) and each (cell, replication) pair hashes to its
// own seed via derive_run_seed — a pure function of (base_seed, axis
// indices, replication), so results are bit-identical no matter how many
// worker threads execute the grid or in which order cells finish.
// Specs are loadable from small JSON files (schema in DESIGN.md §11) and
// exposed on the CLI via --sweep.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/fleet.hpp"
#include "common/types.hpp"
#include "sched/factory.hpp"
#include "sched/pool.hpp"

namespace rupam {

/// Position of one cell in the grid: indices into the spec's axis vectors.
struct CellCoord {
  std::size_t scheduler = 0;
  std::size_t fleet = 0;
  std::size_t rate = 0;
  std::size_t fault = 0;
  std::size_t elastic = 0;
};

struct SweepSpec {
  std::string name = "sweep";
  std::uint64_t base_seed = 1;
  int replications = 5;

  /// Grid axes. Empty vectors are legal (a degenerate grid with zero
  /// cells); the parser only fills defaults for axes the JSON omits.
  std::vector<SchedulerKind> schedulers{SchedulerKind::kSpark, SchedulerKind::kRupam};
  std::vector<int> fleet_sizes{12};
  std::vector<double> arrival_rates{0.05};
  /// Fault specs (faults/fault_plan.hpp syntax); "" = fault-free.
  std::vector<std::string> fault_plans{std::string()};
  /// Elastic-fleet modes: "" (static), "autoscale", "preempt", or
  /// "autoscale+preempt". The default single-"" axis reproduces legacy
  /// 4-axis sweeps cell for cell, seed for seed.
  std::vector<std::string> elastic_modes{std::string()};

  /// Per-run knobs shared by every cell.
  SimTime duration = 600.0;  // arrival generation horizon
  int tenants = 2;
  PoolPolicy pool_policy = PoolPolicy::kFifo;
  std::vector<std::string> mix;  // workload short names; empty = Table III
  int iterations_override = 0;
  std::size_t max_apps = 0;
  bool sample_utilization = true;
  /// Run the post-run analyzer on every run and carry per-run / per-cell
  /// straggler + critical-path summaries in the matrix (JSON key
  /// "analyze"). Off by default: analysis records spans/audit/trace per
  /// run, which costs memory at large grid sizes.
  bool analyze = false;

  std::size_t cell_count() const {
    return schedulers.size() * fleet_sizes.size() * arrival_rates.size() * fault_plans.size() *
           elastic_modes.size();
  }
  std::size_t total_runs() const { return cell_count() * static_cast<std::size_t>(replications); }

  /// Row-major linearization (scheduler, fleet, rate, fault, elastic).
  std::size_t cell_index(const CellCoord& c) const;
  CellCoord cell_at(std::size_t index) const;

  /// Throws std::runtime_error with a field-specific message when the
  /// spec cannot run (bad replication count, non-positive rates, fleet
  /// sizes below the generator's minimum, malformed fault plans, ...).
  void validate() const;
};

/// Lower-case CLI/JSON name ("spark", "rupam", ...) — the round-trip
/// partner of scheduler_kind_from_name (to_string() is display-cased).
std::string_view scheduler_cli_name(SchedulerKind kind);

/// splitmix64 finalizer — the mixing primitive behind seed derivation.
std::uint64_t sweep_mix64(std::uint64_t x);

/// Seed for one (cell, replication) run: a pure hash of (base_seed, axis
/// indices, replication index). Never returns 0 (0 is "disabled" for some
/// seed knobs). Pinned by tests/test_sweep.cpp — changing this function
/// invalidates every recorded sweep.
std::uint64_t derive_run_seed(std::uint64_t base_seed, std::size_t scheduler_idx,
                              std::size_t fleet_idx, std::size_t rate_idx,
                              std::size_t fault_idx, int replication);
/// The spec-level overload also folds in the elastic axis — but only for
/// non-default modes (elastic index > 0), so every seed a 4-axis sweep
/// ever recorded is still produced verbatim.
std::uint64_t derive_run_seed(const SweepSpec& spec, const CellCoord& cell, int replication);

/// Decode an elastic-mode axis value ("", "autoscale", "preempt",
/// "autoscale+preempt") into its two toggles; returns false on anything
/// else.
bool parse_elastic_mode(const std::string& mode, bool& autoscale, bool& preempt);

/// The cluster a sweep cell runs on: the canned Hydra testbed at 12 nodes,
/// scaled_hydra_fleet otherwise, with a per-size seed derived from
/// base_seed so every cell sharing a fleet size sees the identical fleet.
FleetSpec sweep_fleet_spec(int nodes, std::uint64_t base_seed);

/// Parse a JSON sweep spec (schema in DESIGN.md §11). Unknown keys and
/// type mismatches are errors; throws std::runtime_error.
SweepSpec parse_sweep_json(const std::string& text);

/// Read and parse a spec file; throws std::runtime_error (with the path)
/// on IO or parse failure.
SweepSpec load_sweep_file(const std::string& path);

/// Serialize a spec to JSON that parse_sweep_json maps back to an
/// equivalent spec (round-trip stable).
std::string sweep_to_json(const SweepSpec& spec);

}  // namespace rupam
