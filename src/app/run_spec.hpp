// RunSpec: the declarative description of one simulation run — workload,
// scheduler, fleet, faults, tenancy and elasticity — with a strict JSON
// round-trip (parse_run_spec_json / run_spec_to_json), the FleetSpec /
// SweepSpec idiom. It is the single source of truth the CLI, checkpoints
// and the replay layer all build a Simulation from:
//
//   RunSpec spec = load_run_spec_file("run.json");
//   Simulation sim(make_simulation_config(spec));
//   Application app = make_run_application(spec, sim);
//   sim.run(app);
//
// Observability switches (traces, metrics, audit, analysis) are output
// routing, not run identity — they never perturb the simulated event
// sequence — so they stay on SimulationConfig/CliOptions and are NOT part
// of a RunSpec. Schema in DESIGN.md §14.
#pragma once

#include <optional>
#include <string>

#include "cluster/fleet.hpp"
#include "common/types.hpp"
#include "sched/factory.hpp"
#include "sched/pool.hpp"

namespace rupam {

struct SimulationConfig;
class Simulation;
struct Application;

struct RunSpec {
  std::string workload = "PR";     // Table III short name
  bool workload_explicit = false;  // serialized only when set (CLI parity)
  SchedulerKind scheduler = SchedulerKind::kRupam;
  /// Fleet by reference (JSON file path) or by value (embedded spec) —
  /// at most one; both empty = the 12-node Hydra preset. Checkpoints
  /// always embed by value so they stay self-describing.
  std::string fleet;
  std::optional<FleetSpec> fleet_spec;
  int iterations = 0;  // 0 = preset default
  std::uint64_t seed = 1;
  bool sample_utilization = false;
  std::string faults;            // fault spec (faults/fault_plan.hpp)
  std::uint64_t chaos_seed = 0;  // non-zero: merge a seeded chaos plan
  /// Multi-tenant mode (> 0): open-loop Poisson arrivals at this rate.
  double arrivals = 0.0;
  int tenants = 2;
  PoolPolicy pool_policy = PoolPolicy::kFifo;
  SimTime duration = 600.0;  // arrival generation horizon
  double diurnal = 0.0;      // arrival shape amplitude, [0, 1]
  SimTime diurnal_period = 120.0;
  int autoscale = 0;  // > 0: max minted nodes
  std::string spot_plan;
  bool preempt = false;

  /// Field-level sanity checks (same limits the CLI enforces); throws
  /// std::runtime_error with a field-specific message.
  void validate() const;
};

/// Parse a JSON run spec. Strict: unknown keys, type mismatches and
/// malformed nested specs (fleet, fault plans) all throw
/// std::runtime_error.
RunSpec parse_run_spec_json(const std::string& text);

/// Same, from an already-parsed value — checkpoints embed their RunSpec
/// under a "run" key.
RunSpec parse_run_spec_value(const JsonValue& doc);

/// Serialize so that parse(serialize(spec)) == spec and a second
/// serialize is byte-identical (round-trip stable).
std::string run_spec_to_json(const RunSpec& spec);

/// Write the spec as one JSON object into an in-progress writer.
void write_run_spec_json(const RunSpec& spec, JsonWriter& w);

/// Read and parse a spec file; throws std::runtime_error (with the path)
/// on IO or parse failure.
RunSpec load_run_spec_file(const std::string& path);

/// Everything about the run the simulator needs: scheduler, generated
/// fleet, parsed fault plan (spot plan merged in), pools, autoscaling,
/// preemption, seed. Observability flags are left at their defaults for
/// the caller to set. Throws std::runtime_error on an invalid spec.
SimulationConfig make_simulation_config(const RunSpec& spec);

/// Build the single application the spec describes against `sim`'s
/// cluster (preset workload, spec seed/iterations, HDFS placement
/// weights). Throws std::runtime_error for multi-tenant specs
/// (arrivals > 0) — those runs draw a submission stream instead.
Application make_run_application(const RunSpec& spec, Simulation& sim);

}  // namespace rupam
