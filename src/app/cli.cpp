#include "app/cli.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "cluster/fleet.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "faults/fault_plan.hpp"
#include "metrics/locality_counter.hpp"
#include "obs/comparator.hpp"
#include "replay/whatif.hpp"
#include "sweep/orchestrator.hpp"
#include "workloads/presets.hpp"

namespace rupam {

std::string cli_usage() {
  return "usage: rupam_sim [options]\n"
         "  --config RUN.json      load a declarative run spec (schema in DESIGN.md §14);\n"
         "                         every other flag overrides its fields\n"
         "  --workload NAME        LR|TeraSort|SQL|PR|TC|GM|KMeans (default PR)\n"
         "  --scheduler NAME       spark|rupam|stageaware|fifo|heft (default rupam)\n"
         "  --fleet PATH           JSON fleet spec: generate the cluster from node-class\n"
         "                         mixes instead of the 12-node Hydra preset (schema in\n"
         "                         DESIGN.md §9)\n"
         "  --iterations N         override the preset iteration count\n"
         "  --repetitions N        seeded repetitions, reports mean +- 95% CI\n"
         "  --seed N               base seed (default 1)\n"
         "  --sample               sample per-node utilization\n"
         "  --trace-csv PATH       dump the scheduling event trace as CSV\n"
         "  --trace-chrome PATH    dump a chrome://tracing JSON timeline\n"
         "  --trace-perfetto PATH  dump per-attempt task-phase spans (queued, shuffle\n"
         "                         read, compute, GC, spill, write) as a Perfetto trace\n"
         "  --metrics-out PATH     dump the metrics registry; '.json' writes JSON,\n"
         "                         anything else Prometheus text exposition\n"
         "  --explain PATH         record one audit row per scheduling decision\n"
         "                         (chosen node, reason, candidates); '.json' writes\n"
         "                         JSON, anything else CSV\n"
         "  --analyze PATH         post-run diagnosis JSON: per-job critical paths with\n"
         "                         phase attribution and stragglers joined to causes\n"
         "                         (enables spans/audit/trace; schema in DESIGN.md §13)\n"
         "  --analyze-k K          straggler threshold: service time > K x stage median\n"
         "                         (default 1.5)\n"
         "  --compare BASE TEST    diff two run reports (BENCH_*.json or sweep matrices)\n"
         "                         with CI-aware improved/regressed/within-noise verdicts,\n"
         "                         then exit (no simulation)\n"
         "  --compare-out PATH     write the comparison JSON here\n"
         "  --compare-strict       exit 1 when --compare finds any regression\n"
         "  --compare-tolerance F  relative significance floor for --compare (default\n"
         "                         0.02; CI wall-clock gates want a looser one)\n"
         "  --faults SPEC          inject faults, e.g. 'crash@60:node=3:down=40;\n"
         "                         slow@30:node=0:res=cpu:factor=0.3:for=60'\n"
         "  --chaos SEED           inject a seeded random fault plan\n"
         "  --sweep SPEC.json      run a parameter-sweep grid (scheduler x fleet size x\n"
         "                         arrival rate x fault plan, replicated with derived\n"
         "                         seeds) on a worker pool; writes one JSON result\n"
         "                         matrix (schema in DESIGN.md §11)\n"
         "  --sweep-threads N      sweep worker threads (default: hardware concurrency)\n"
         "  --sweep-out PATH       write the sweep matrix here instead of stdout\n"
         "  --arrivals RATE        multi-tenant mode: open-loop Poisson application\n"
         "                         arrivals at RATE apps/s (--workload restricts the\n"
         "                         mix; default draws from all of Table III)\n"
         "  --tenants N            tenant pools for --arrivals (default 2)\n"
         "  --pool-policy NAME     fifo|fair cross-job scheduling policy (default fifo)\n"
         "  --duration T           arrival generation horizon in seconds (default 600)\n"
         "  --diurnal AMP          shape --arrivals diurnally: rate follows\n"
         "                         1 + AMP*sin(2*pi*t/period), AMP in [0, 1]\n"
         "  --diurnal-period T     diurnal wave period in seconds (default 120)\n"
         "  --autoscale MAX        elastic fleet: provision up to MAX extra nodes under\n"
         "                         task-backlog pressure, drain them when idle\n"
         "  --spot-plan SPEC       spot revocations (fault-spec grammar, spot events\n"
         "                         only), e.g. 'spot@60:node=3:notice=20'\n"
         "  --preempt              fair-share preemption: kill-and-resubmit tasks of\n"
         "                         pools above their share when another pool starves\n"
         "                         (needs --pool-policy fair)\n"
         "  --checkpoint-at T      capture a checkpoint at simulated time T: replays the\n"
         "                         run deterministically to T and pins every dispatch\n"
         "                         decision made so far (format in DESIGN.md §14)\n"
         "  --checkpoint-out PATH  write the checkpoint JSON here\n"
         "  --restore PATH         restore a checkpoint: replay to its time, verify the\n"
         "                         pinned decision prefix, then run to completion; with\n"
         "                         --branch / --whatif it supplies the run spec instead\n"
         "  --branch SPEC          counterfactual branch: node:stage=S:task=T:node=N\n"
         "                         [:attempt=A], scheduler=NAME, or suppress:kind=K\n"
         "                         [:node=N] (K: crash|slow|hbdrop|degrade|spot); runs\n"
         "                         base + branch and diffs the outcomes\n"
         "  --branch-out PATH      write the branch report JSON here\n"
         "  --whatif DIAG.json     what-if advisor: take a --analyze diagnosis, replay\n"
         "                         counterfactuals for the top straggler causes, rank\n"
         "                         them by seconds of p95 JCT saved\n"
         "  --whatif-out PATH      write the ranked findings JSON here (default stdout)\n"
         "  --report-out PATH      write the run's flat outcome JSON (feeds --compare)\n"
         "  --list                 list available workloads\n"
         "  --help                 this text\n";
}

std::optional<SchedulerKind> scheduler_from_name(const std::string& name) {
  return scheduler_kind_from_name(name);
}

RunSpec run_spec_from_cli(const CliOptions& options) {
  RunSpec s;
  s.workload = options.workload;
  s.workload_explicit = options.workload_explicit;
  s.scheduler = options.scheduler;
  s.fleet = options.fleet;
  s.fleet_spec = options.fleet_spec;
  if (!s.fleet.empty()) s.fleet_spec.reset();  // an explicit --fleet wins
  s.iterations = options.iterations;
  s.seed = options.seed;
  s.sample_utilization = options.sample_utilization;
  s.faults = options.faults;
  s.chaos_seed = options.chaos_seed;
  s.arrivals = options.arrivals;
  s.tenants = options.tenants;
  s.pool_policy = options.pool_policy;
  s.duration = options.duration;
  s.diurnal = options.diurnal;
  s.diurnal_period = options.diurnal_period;
  s.autoscale = options.autoscale;
  s.spot_plan = options.spot_plan;
  s.preempt = options.preempt;
  return s;
}

CliOptions cli_from_run_spec(const RunSpec& spec) {
  CliOptions o;
  o.workload = spec.workload;
  o.workload_explicit = spec.workload_explicit;
  o.scheduler = spec.scheduler;
  o.fleet = spec.fleet;
  o.fleet_spec = spec.fleet_spec;
  o.iterations = spec.iterations;
  o.seed = spec.seed;
  o.sample_utilization = spec.sample_utilization;
  o.faults = spec.faults;
  o.chaos_seed = spec.chaos_seed;
  o.arrivals = spec.arrivals;
  o.tenants = spec.tenants;
  o.pool_policy = spec.pool_policy;
  o.duration = spec.duration;
  o.diurnal = spec.diurnal;
  o.diurnal_period = spec.diurnal_period;
  o.autoscale = spec.autoscale;
  o.spot_plan = spec.spot_plan;
  o.preempt = spec.preempt;
  return o;
}

std::optional<CliOptions> parse_cli(const std::vector<std::string>& args, std::ostream& err) {
  CliOptions opts;
  // --config supplies defaults; it is applied before the flag loop so
  // every other flag overrides it, wherever it sits on the command line.
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] != "--config") continue;
    if (i + 1 >= args.size()) {
      err << "missing value for --config\n";
      return std::nullopt;
    }
    if (!opts.config.empty()) {
      err << "--config given twice\n";
      return std::nullopt;
    }
    try {
      RunSpec spec = load_run_spec_file(args[i + 1]);
      spec.validate();
      opts = cli_from_run_spec(spec);
    } catch (const std::exception& e) {
      err << e.what() << "\n";
      return std::nullopt;
    }
    opts.config = args[i + 1];
  }
  auto need_value = [&](std::size_t i) -> bool {
    if (i + 1 >= args.size()) {
      err << "missing value for " << args[i] << "\n";
      return false;
    }
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      opts.help = true;
    } else if (a == "--list") {
      opts.list_workloads = true;
    } else if (a == "--sample") {
      opts.sample_utilization = true;
    } else if (a == "--workload") {
      if (!need_value(i)) return std::nullopt;
      opts.workload = args[++i];
      opts.workload_explicit = true;
    } else if (a == "--scheduler") {
      if (!need_value(i)) return std::nullopt;
      auto kind = scheduler_from_name(args[++i]);
      if (!kind) {
        err << "unknown scheduler '" << args[i] << "'\n";
        return std::nullopt;
      }
      opts.scheduler = *kind;
    } else if (a == "--fleet") {
      if (!need_value(i)) return std::nullopt;
      opts.fleet = args[++i];
    } else if (a == "--iterations") {
      if (!need_value(i)) return std::nullopt;
      opts.iterations = std::atoi(args[++i].c_str());
      if (opts.iterations < 0) {
        err << "iterations must be >= 0\n";
        return std::nullopt;
      }
    } else if (a == "--repetitions") {
      if (!need_value(i)) return std::nullopt;
      opts.repetitions = std::atoi(args[++i].c_str());
      if (opts.repetitions < 1) {
        err << "repetitions must be >= 1\n";
        return std::nullopt;
      }
    } else if (a == "--seed") {
      if (!need_value(i)) return std::nullopt;
      opts.seed = static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    } else if (a == "--trace-csv") {
      if (!need_value(i)) return std::nullopt;
      opts.trace_csv = args[++i];
    } else if (a == "--trace-chrome") {
      if (!need_value(i)) return std::nullopt;
      opts.trace_chrome = args[++i];
    } else if (a == "--trace-perfetto") {
      if (!need_value(i)) return std::nullopt;
      opts.trace_perfetto = args[++i];
    } else if (a == "--metrics-out") {
      if (!need_value(i)) return std::nullopt;
      opts.metrics_out = args[++i];
    } else if (a == "--explain") {
      if (!need_value(i)) return std::nullopt;
      opts.explain_out = args[++i];
    } else if (a == "--analyze") {
      if (!need_value(i)) return std::nullopt;
      opts.analyze_out = args[++i];
    } else if (a == "--analyze-k") {
      if (!need_value(i)) return std::nullopt;
      opts.analyze_k = std::atof(args[++i].c_str());
      if (opts.analyze_k <= 1.0) {
        err << "analyze-k must be > 1\n";
        return std::nullopt;
      }
    } else if (a == "--compare") {
      if (i + 2 >= args.size()) {
        err << "--compare takes two paths: BASE TEST\n";
        return std::nullopt;
      }
      opts.compare_base = args[++i];
      opts.compare_test = args[++i];
    } else if (a == "--compare-out") {
      if (!need_value(i)) return std::nullopt;
      opts.compare_out = args[++i];
    } else if (a == "--compare-strict") {
      opts.compare_strict = true;
    } else if (a == "--compare-tolerance") {
      if (!need_value(i)) return std::nullopt;
      opts.compare_tolerance = std::atof(args[++i].c_str());
      if (opts.compare_tolerance < 0.0) {
        err << "--compare-tolerance takes a non-negative fraction\n";
        return std::nullopt;
      }
    } else if (a == "--faults") {
      if (!need_value(i)) return std::nullopt;
      opts.faults = args[++i];
      try {
        parse_fault_spec(opts.faults);  // fail fast on malformed specs
      } catch (const std::exception& e) {
        err << e.what() << "\n";
        return std::nullopt;
      }
    } else if (a == "--chaos") {
      if (!need_value(i)) return std::nullopt;
      opts.chaos_seed = static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
      if (opts.chaos_seed == 0) {
        err << "chaos seed must be non-zero\n";
        return std::nullopt;
      }
    } else if (a == "--sweep") {
      if (!need_value(i)) return std::nullopt;
      opts.sweep = args[++i];
    } else if (a == "--sweep-threads") {
      if (!need_value(i)) return std::nullopt;
      opts.sweep_threads = std::atoi(args[++i].c_str());
      if (opts.sweep_threads < 0) {
        err << "sweep threads must be >= 0\n";
        return std::nullopt;
      }
    } else if (a == "--sweep-out") {
      if (!need_value(i)) return std::nullopt;
      opts.sweep_out = args[++i];
    } else if (a == "--arrivals") {
      if (!need_value(i)) return std::nullopt;
      opts.arrivals = std::atof(args[++i].c_str());
      if (opts.arrivals <= 0.0) {
        err << "arrival rate must be > 0\n";
        return std::nullopt;
      }
    } else if (a == "--tenants") {
      if (!need_value(i)) return std::nullopt;
      opts.tenants = std::atoi(args[++i].c_str());
      if (opts.tenants < 1) {
        err << "tenants must be >= 1\n";
        return std::nullopt;
      }
    } else if (a == "--pool-policy") {
      if (!need_value(i)) return std::nullopt;
      const std::string& name = args[++i];
      if (name == "fifo") {
        opts.pool_policy = PoolPolicy::kFifo;
      } else if (name == "fair") {
        opts.pool_policy = PoolPolicy::kFair;
      } else {
        err << "unknown pool policy '" << name << "'\n";
        return std::nullopt;
      }
    } else if (a == "--duration") {
      if (!need_value(i)) return std::nullopt;
      opts.duration = std::atof(args[++i].c_str());
      if (opts.duration <= 0.0) {
        err << "duration must be > 0\n";
        return std::nullopt;
      }
    } else if (a == "--diurnal") {
      if (!need_value(i)) return std::nullopt;
      opts.diurnal = std::atof(args[++i].c_str());
      if (opts.diurnal < 0.0 || opts.diurnal > 1.0) {
        err << "diurnal amplitude must be in [0, 1]\n";
        return std::nullopt;
      }
    } else if (a == "--diurnal-period") {
      if (!need_value(i)) return std::nullopt;
      opts.diurnal_period = std::atof(args[++i].c_str());
      if (opts.diurnal_period <= 0.0) {
        err << "diurnal period must be > 0\n";
        return std::nullopt;
      }
    } else if (a == "--autoscale") {
      if (!need_value(i)) return std::nullopt;
      opts.autoscale = std::atoi(args[++i].c_str());
      if (opts.autoscale < 1) {
        err << "autoscale max nodes must be >= 1\n";
        return std::nullopt;
      }
    } else if (a == "--spot-plan") {
      if (!need_value(i)) return std::nullopt;
      opts.spot_plan = args[++i];
      try {
        FaultPlan plan = parse_fault_spec(opts.spot_plan);
        for (const FaultEvent& e : plan.events) {
          if (e.kind != FaultKind::kSpotRevoke) {
            err << "--spot-plan only takes spot events (got '"
                << to_string(e.kind) << "')\n";
            return std::nullopt;
          }
        }
      } catch (const std::exception& e) {
        err << e.what() << "\n";
        return std::nullopt;
      }
    } else if (a == "--preempt") {
      opts.preempt = true;
    } else if (a == "--config") {
      if (!need_value(i)) return std::nullopt;
      ++i;  // applied in the pre-pass above
    } else if (a == "--checkpoint-at") {
      if (!need_value(i)) return std::nullopt;
      opts.checkpoint_at = std::atof(args[++i].c_str());
      if (opts.checkpoint_at < 0.0) {
        err << "checkpoint time must be >= 0\n";
        return std::nullopt;
      }
    } else if (a == "--checkpoint-out") {
      if (!need_value(i)) return std::nullopt;
      opts.checkpoint_out = args[++i];
    } else if (a == "--restore") {
      if (!need_value(i)) return std::nullopt;
      opts.restore = args[++i];
    } else if (a == "--branch") {
      if (!need_value(i)) return std::nullopt;
      opts.branch = args[++i];
      try {
        parse_branch_spec(opts.branch);  // fail fast on malformed specs
      } catch (const std::exception& e) {
        err << e.what() << "\n";
        return std::nullopt;
      }
    } else if (a == "--branch-out") {
      if (!need_value(i)) return std::nullopt;
      opts.branch_out = args[++i];
    } else if (a == "--whatif") {
      if (!need_value(i)) return std::nullopt;
      opts.whatif = args[++i];
    } else if (a == "--whatif-out") {
      if (!need_value(i)) return std::nullopt;
      opts.whatif_out = args[++i];
    } else if (a == "--report-out") {
      if (!need_value(i)) return std::nullopt;
      opts.report_out = args[++i];
    } else {
      err << "unknown argument '" << a << "'\n";
      return std::nullopt;
    }
  }
  return opts;
}

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Load --fleet (or the --config-embedded fleet spec) and override the
/// cluster layout; returns false (after writing to err) when the spec is
/// unreadable or invalid.
bool apply_fleet(SimulationConfig& cfg, const CliOptions& options, std::ostream& err) {
  try {
    if (!options.fleet.empty()) {
      FleetSpec spec = load_fleet_file(options.fleet);
      cfg.nodes = generate_fleet(spec);
      if (spec.switch_bandwidth > 0.0) cfg.switch_bandwidth = spec.switch_bandwidth;
    } else if (options.fleet_spec) {
      options.fleet_spec->validate();
      cfg.nodes = generate_fleet(*options.fleet_spec);
      if (options.fleet_spec->switch_bandwidth > 0.0) {
        cfg.switch_bandwidth = options.fleet_spec->switch_bandwidth;
      }
    }
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return false;
  }
  return true;
}

void apply_observability_flags(SimulationConfig& cfg, const CliOptions& options) {
  cfg.enable_metrics = !options.metrics_out.empty();
  cfg.enable_audit = !options.explain_out.empty();
  cfg.enable_spans = !options.trace_perfetto.empty();
  if (!options.analyze_out.empty() || !options.report_out.empty()) {
    // The analyzer joins spans x audit x event trace x JCT records, so
    // --analyze (and the outcome summary behind --report-out) implies all
    // of them. Callers set enable_trace before calling this, so the
    // assignments here are the final word.
    cfg.enable_analysis = true;
    cfg.enable_spans = true;
    cfg.enable_audit = true;
    cfg.enable_trace = true;
  }
}

/// Write --trace-csv / --trace-chrome for a finished run. Returns 0, or 2
/// if a path could not be opened.
int write_event_traces(Simulation& sim, const CliOptions& options, std::ostream& err) {
  if (sim.trace() == nullptr) return 0;
  if (!options.trace_csv.empty()) {
    std::ofstream f(options.trace_csv);
    if (!f) {
      err << "cannot open " << options.trace_csv << "\n";
      return 2;
    }
    sim.trace()->write_csv(f);
  }
  if (!options.trace_chrome.empty()) {
    std::ofstream f(options.trace_chrome);
    if (!f) {
      err << "cannot open " << options.trace_chrome << "\n";
      return 2;
    }
    sim.trace()->write_chrome_tracing(f);
  }
  return 0;
}

/// Write --report-out (the comparator-ready flat outcome) for a finished
/// full-observability run. Returns 0, or 2 on an unopenable path.
int write_report_out(Simulation& sim, SimTime makespan, const CliOptions& options,
                     std::ostream& err) {
  if (options.report_out.empty()) return 0;
  RunOutcome outcome = summarize_outcome(sim, makespan, options.analyze_k);
  std::ofstream f(options.report_out);
  if (!f) {
    err << "cannot open " << options.report_out << "\n";
    return 2;
  }
  f << outcome_to_json(outcome);
  return 0;
}

/// Wire --autoscale / --spot-plan / --preempt into the config. The spot
/// plan merges into whatever --faults already contributed.
bool apply_elastic(SimulationConfig& cfg, const CliOptions& options, std::ostream& err) {
  if (options.autoscale > 0) {
    cfg.autoscale.enabled = true;
    cfg.autoscale.max_nodes = options.autoscale;
  }
  cfg.preemption.enabled = options.preempt;
  if (!options.spot_plan.empty()) {
    try {
      FaultPlan plan = parse_fault_spec(options.spot_plan);
      cfg.faults.events.insert(cfg.faults.events.end(), plan.events.begin(),
                               plan.events.end());
      cfg.faults.sort();
    } catch (const std::exception& e) {
      err << e.what() << "\n";
      return false;
    }
  }
  return true;
}

/// Write --metrics-out / --explain / --trace-perfetto / --analyze outputs
/// for a finished run. Returns 0, or 2 if any path could not be opened.
int write_observability(Simulation& sim, const CliOptions& options, std::ostream& out,
                        std::ostream& err) {
  auto write_to = [&err](const std::string& path, auto&& writer) -> bool {
    std::ofstream f(path);
    if (!f) {
      err << "cannot open " << path << "\n";
      return false;
    }
    writer(f);
    return true;
  };
  if (!options.metrics_out.empty() && sim.metrics() != nullptr) {
    bool ok = write_to(options.metrics_out, [&](std::ostream& f) {
      if (has_suffix(options.metrics_out, ".json")) {
        sim.metrics()->write_json(f);
      } else {
        sim.metrics()->write_prometheus(f);
      }
    });
    if (!ok) return 2;
  }
  if (!options.explain_out.empty() && sim.audit() != nullptr) {
    bool ok = write_to(options.explain_out, [&](std::ostream& f) {
      if (has_suffix(options.explain_out, ".json")) {
        sim.audit()->write_json(f);
      } else {
        sim.audit()->write_csv(f);
      }
    });
    if (!ok) return 2;
  }
  if (!options.trace_perfetto.empty() && sim.spans() != nullptr) {
    bool ok = write_to(options.trace_perfetto,
                       [&](std::ostream& f) { sim.spans()->write_perfetto(f); });
    if (!ok) return 2;
  }
  if (!options.analyze_out.empty()) {
    AnalyzerConfig acfg;
    acfg.straggler_k = options.analyze_k;
    RunDiagnosis diag = analyze_run(sim.run_artifacts(), acfg);
    bool ok = write_to(options.analyze_out,
                       [&](std::ostream& f) { write_diagnosis_json(diag, f); });
    if (!ok) return 2;
    print_diagnosis(diag, out);
  }
  return 0;
}

int run_compare_cli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  auto slurp = [&err](const std::string& path, std::string& into) -> bool {
    std::ifstream f(path);
    if (!f) {
      err << "cannot open " << path << "\n";
      return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    into = ss.str();
    return true;
  };
  std::string base, test;
  if (!slurp(options.compare_base, base) || !slurp(options.compare_test, test)) return 2;
  ComparisonReport report;
  ComparisonConfig config;
  if (options.compare_tolerance >= 0.0) config.rel_tolerance = options.compare_tolerance;
  try {
    report = compare_json_text(base, test, config);
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }
  if (!options.compare_out.empty()) {
    std::ofstream f(options.compare_out);
    if (!f) {
      err << "cannot open " << options.compare_out << "\n";
      return 2;
    }
    write_comparison_json(report, f);
  }
  print_comparison(report, out);
  return options.compare_strict && report.has_regressions() ? 1 : 0;
}

int run_sweep_cli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  SweepSpec spec;
  try {
    spec = load_sweep_file(options.sweep);
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }

  SweepOptions sweep_opts;
  sweep_opts.threads = options.sweep_threads;
  sweep_opts.on_progress = [&err](std::size_t done, std::size_t total) {
    err << "[sweep] " << done << "/" << total << " runs\n";
  };
  SweepMatrix matrix = run_sweep(spec, sweep_opts);

  if (options.sweep_out.empty()) {
    matrix.write_json(out);
  } else {
    std::ofstream f(options.sweep_out);
    if (!f) {
      err << "cannot open " << options.sweep_out << "\n";
      return 2;
    }
    matrix.write_json(f);
    out << "sweep '" << spec.name << "': " << matrix.cells.size() << " cells, "
        << matrix.total_runs() << " runs (" << matrix.failed_runs() << " failed) -> "
        << options.sweep_out << "\n";
  }
  return matrix.failed_runs() == 0 ? 0 : 1;
}

int run_multi_tenant(const CliOptions& options, std::ostream& out, std::ostream& err) {
  if (!options.report_out.empty()) {
    err << "--report-out is single-run only (multi-tenant runs have no flat outcome)\n";
    return 2;
  }
  SimulationConfig cfg;
  cfg.scheduler = options.scheduler;
  cfg.seed = options.seed;
  cfg.pools.policy = options.pool_policy;
  cfg.sample_utilization = options.sample_utilization;
  cfg.enable_trace = !options.trace_csv.empty() || !options.trace_chrome.empty();
  apply_observability_flags(cfg, options);
  if (!apply_fleet(cfg, options, err)) return 2;
  if (!options.faults.empty()) {
    try {
      cfg.faults = parse_fault_spec(options.faults);
    } catch (const std::exception& e) {
      err << e.what() << "\n";
      return 2;
    }
  }
  cfg.chaos_seed = options.chaos_seed;
  if (!apply_elastic(cfg, options, err)) return 2;
  std::optional<Simulation> sim_storage;
  try {
    sim_storage.emplace(cfg);
  } catch (const std::invalid_argument& e) {
    err << e.what() << "\n";
    return 2;
  }
  Simulation& sim = *sim_storage;

  ArrivalConfig arrivals;
  arrivals.rate = options.arrivals;
  arrivals.duration = options.duration;
  arrivals.tenants = options.tenants;
  arrivals.seed = options.seed;
  arrivals.iterations_override = options.iterations;
  arrivals.diurnal_amplitude = options.diurnal;
  arrivals.diurnal_period = options.diurnal_period;
  if (options.workload_explicit) arrivals.mix = {options.workload};
  SubmissionStream stream;
  try {
    stream = make_poisson_stream(arrivals, sim.cluster().node_ids());
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }
  if (stream.empty()) {
    err << "no arrivals drawn — raise --arrivals or --duration\n";
    return 2;
  }

  TenantRunReport report = sim.run(stream);
  out << stream.size() << " applications (" << report.jobs.size() << " jobs) under "
      << to_string(options.scheduler) << ", " << to_string(options.pool_policy)
      << " pools (arrivals=" << options.arrivals << "/s, tenants=" << options.tenants
      << ", duration=" << format_fixed(options.duration, 0) << "s)\n";
  out << "makespan: " << format_fixed(report.makespan, 1) << " s\n";
  const JctSummary& o = report.overall;
  out << "JCT: mean=" << format_fixed(o.mean, 1) << "s p50=" << format_fixed(o.p50, 1)
      << "s p95=" << format_fixed(o.p95, 1) << "s p99=" << format_fixed(o.p99, 1)
      << "s max=" << format_fixed(o.max, 1)
      << "s queueing=" << format_fixed(o.mean_queueing, 1) << "s\n";
  for (const auto& [pool, s] : report.per_pool) {
    out << "pool " << (pool.empty() ? "default" : pool) << ": jobs=" << s.count
        << " mean=" << format_fixed(s.mean, 1) << "s p95=" << format_fixed(s.p95, 1)
        << "s queueing=" << format_fixed(s.mean_queueing, 1) << "s\n";
  }
  if (options.chaos_seed != 0 || !options.faults.empty() || !options.spot_plan.empty()) {
    out << "recomputed_partitions=" << sim.recomputed_partitions() << "\n";
    if (sim.injector() != nullptr && sim.injector()->spot_revocations() > 0) {
      out << "spot_revocations=" << sim.injector()->spot_revocations() << "\n";
    }
  }
  if (sim.autoscaler() != nullptr) {
    out << "autoscale: scale_ups=" << sim.autoscaler()->scale_ups()
        << " scale_downs=" << sim.autoscaler()->scale_downs()
        << " provisioned_cost=" << format_fixed(sim.cluster().provisioned_cost(sim.sim().now()), 2)
        << "\n";
  }
  if (options.preempt) {
    out << "preemptions=" << sim.scheduler().preemptions() << "\n";
  }
  int rc = write_event_traces(sim, options, err);
  if (rc != 0) return rc;
  return write_observability(sim, options, out, err);
}

int run_checkpoint_cli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  if (options.checkpoint_out.empty()) {
    err << "--checkpoint-at needs --checkpoint-out PATH\n";
    return 2;
  }
  if (options.repetitions != 1) {
    err << "checkpointing is single-run — drop --repetitions\n";
    return 2;
  }
  try {
    RunSpec spec = run_spec_from_cli(options);
    spec.validate();
    Checkpoint cp = capture_checkpoint(spec, options.checkpoint_at);
    std::ofstream f(options.checkpoint_out);
    if (!f) {
      err << "cannot open " << options.checkpoint_out << "\n";
      return 2;
    }
    f << checkpoint_to_json(cp);
    out << "checkpoint @ t=" << format_fixed(cp.time, 3) << "s: " << cp.pins.size()
        << " pinned decisions -> " << options.checkpoint_out << "\n";
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }
}

int run_restore_cli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  try {
    Checkpoint cp = load_checkpoint_file(options.restore);
    SimulationConfig base;
    base.enable_trace = !options.trace_csv.empty() || !options.trace_chrome.empty();
    apply_observability_flags(base, options);
    ReplayRun run = restore_checkpoint(cp, base);
    SimTime makespan = run.sim->finish();
    out << "restored " << options.restore << " @ t=" << format_fixed(cp.time, 3) << "s ("
        << cp.pins.size() << " pins verified)\n"
        << "makespan: " << format_fixed(makespan, 1) << " s\n";
    int rc = write_event_traces(*run.sim, options, err);
    if (rc != 0) return rc;
    rc = write_observability(*run.sim, options, out, err);
    if (rc != 0) return rc;
    return write_report_out(*run.sim, makespan, options, err);
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }
}

/// The RunSpec a replay mode (--branch / --whatif) operates on: the
/// checkpoint's embedded spec when --restore names one, else the flags.
RunSpec replay_run_spec(const CliOptions& options) {
  RunSpec spec = options.restore.empty() ? run_spec_from_cli(options)
                                         : load_checkpoint_file(options.restore).run;
  spec.validate();
  return spec;
}

int run_branch_cli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  try {
    BranchSpec branch = parse_branch_spec(options.branch);
    RunSpec spec = replay_run_spec(options);
    BranchReport report = run_branch(spec, branch, nullptr, options.analyze_k);
    if (!options.branch_out.empty()) {
      std::ofstream f(options.branch_out);
      if (!f) {
        err << "cannot open " << options.branch_out << "\n";
        return 2;
      }
      write_branch_report_json(report, f);
    }
    out << "branch '" << branch.label << "' vs " << report.base.scheduler << " base:\n"
        << "  p95 JCT " << format_fixed(report.base.jct.p95, 3) << "s -> "
        << format_fixed(report.branch.jct.p95, 3) << "s (saving "
        << format_fixed(report.p95_jct_saving(), 3) << "s)\n"
        << "  makespan " << format_fixed(report.base.makespan, 3) << "s -> "
        << format_fixed(report.branch.makespan, 3) << "s\n";
    print_comparison(report.comparison, out);
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }
}

int run_whatif_cli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  std::ifstream f(options.whatif);
  if (!f) {
    err << "cannot open " << options.whatif << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  try {
    std::vector<DiagnosedStraggler> stragglers = parse_diagnosis_stragglers(buf.str());
    RunSpec spec = replay_run_spec(options);
    WhatIfConfig wcfg;
    wcfg.analyze_k = options.analyze_k;
    wcfg.threads = options.sweep_threads;
    WhatIfReport report = advise_whatif(spec, stragglers, wcfg);
    if (!options.whatif_out.empty()) {
      std::ofstream wf(options.whatif_out);
      if (!wf) {
        err << "cannot open " << options.whatif_out << "\n";
        return 2;
      }
      write_whatif_json(report, wf);
    } else {
      write_whatif_json(report, out);
    }
    out << "what-if: base " << report.base.scheduler << " p95 JCT "
        << format_fixed(report.base.jct.p95, 3) << "s, " << stragglers.size()
        << " diagnosed stragglers, " << report.findings.size() << " counterfactuals:\n";
    for (const WhatIfFinding& finding : report.findings) {
      out << "  " << finding.branch.label << ": p95 saving "
          << format_fixed(finding.p95_jct_saving, 3) << " s (" << finding.motivation << ")\n";
    }
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }
}

}  // namespace

int run_cli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  if (options.help) {
    out << cli_usage();
    return 0;
  }
  if (options.list_workloads) {
    for (const auto& p : table3_workloads()) {
      out << p.name << "\t" << p.long_name << "\t" << p.input_gb << " GB\t"
          << p.iterations << " iterations\n";
    }
    return 0;
  }
  if (!options.compare_base.empty()) {
    return run_compare_cli(options, out, err);
  }
  if (!options.sweep.empty()) {
    return run_sweep_cli(options, out, err);
  }
  if (!options.whatif.empty()) {
    return run_whatif_cli(options, out, err);
  }
  if (!options.branch.empty()) {
    return run_branch_cli(options, out, err);
  }
  if (!options.restore.empty()) {
    return run_restore_cli(options, out, err);
  }
  if (options.checkpoint_at >= 0.0) {
    return run_checkpoint_cli(options, out, err);
  }
  if (options.arrivals > 0.0) {
    if (options.workload_explicit) {
      try {
        workload_preset(options.workload);  // fail fast on unknown names
      } catch (const std::exception& e) {
        err << e.what() << "\n";
        return 2;
      }
    }
    return run_multi_tenant(options, out, err);
  }

  const WorkloadPreset* preset = nullptr;
  try {
    preset = &workload_preset(options.workload);
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }

  RunningStats makespans;
  LocalityCounts locality{};
  std::size_t failures = 0, oom = 0, losses = 0, relocations = 0;
  std::size_t faults_injected = 0, blacklists = 0, recomputed = 0, spot_revocations = 0;
  double cpu = 0.0, mem = 0.0;

  for (int rep = 0; rep < options.repetitions; ++rep) {
    SimulationConfig cfg;
    cfg.scheduler = options.scheduler;
    cfg.seed = options.seed + static_cast<std::uint64_t>(rep);
    cfg.sample_utilization = options.sample_utilization;
    cfg.enable_trace = !options.trace_csv.empty() || !options.trace_chrome.empty();
    apply_observability_flags(cfg, options);
    if (!apply_fleet(cfg, options, err)) return 2;
    if (!options.faults.empty()) {
      try {
        cfg.faults = parse_fault_spec(options.faults);
      } catch (const std::exception& e) {
        err << e.what() << "\n";
        return 2;
      }
    }
    cfg.chaos_seed = options.chaos_seed;
    if (!apply_elastic(cfg, options, err)) return 2;
    // The injector validates the plan against the cluster size (node ids,
    // factors) — surface that as a CLI error, not an uncaught exception.
    std::optional<Simulation> sim_storage;
    try {
      sim_storage.emplace(cfg);
    } catch (const std::invalid_argument& e) {
      err << e.what() << "\n";
      return 2;
    }
    Simulation& sim = *sim_storage;
    Application app = build_workload(*preset, sim.cluster().node_ids(), cfg.seed,
                                     options.iterations, hdfs_placement_weights(sim.cluster()));
    SimTime makespan = sim.run(app);
    makespans.add(makespan);
    LocalityCounts counts = count_locality(sim.scheduler().completed());
    for (int l = 0; l < kNumLocalityLevels; ++l) locality[l] += counts[l];
    failures += sim.scheduler().failures().size();
    oom += sim.total_oom_kills();
    losses += sim.total_executor_losses();
    relocations += sim.scheduler().relocations();
    if (sim.injector() != nullptr) {
      faults_injected += sim.injector()->injected();
      spot_revocations += sim.injector()->spot_revocations();
    }
    blacklists += sim.scheduler().blacklist_events();
    recomputed += sim.recomputed_partitions();
    if (const UtilizationSampler* s = sim.sampler()) {
      cpu += s->avg_cpu_util();
      mem += s->avg_memory_used();
    }
    // Traces and observability exports come from the last repetition.
    if (rep == options.repetitions - 1) {
      int rc = write_event_traces(sim, options, err);
      if (rc != 0) return rc;
      rc = write_observability(sim, options, out, err);
      if (rc != 0) return rc;
      rc = write_report_out(sim, makespan, options, err);
      if (rc != 0) return rc;
    }
  }

  out << preset->long_name << " under " << to_string(options.scheduler) << " ("
      << options.repetitions << " run" << (options.repetitions > 1 ? "s" : "") << ")\n";
  out << "makespan: " << format_fixed(makespans.mean(), 1) << " s";
  if (options.repetitions > 1) {
    out << " +- " << format_fixed(confidence_interval_95(makespans.stddev(), makespans.count()), 1)
        << " (95% CI)";
  }
  out << "\nlocality: PROCESS=" << locality[0] << " NODE=" << locality[1]
      << " RACK=" << locality[2] << " ANY=" << locality[3] << "\n"
      << "failures=" << failures << " oom_kills=" << oom << " executor_losses=" << losses
      << " relocations=" << relocations << "\n";
  if (!options.faults.empty() || !options.spot_plan.empty() || options.chaos_seed != 0) {
    out << "faults_injected=" << faults_injected << " blacklists=" << blacklists
        << " recomputed_partitions=" << recomputed;
    if (!options.spot_plan.empty()) out << " spot_revocations=" << spot_revocations;
    out << "\n";
  }
  if (options.sample_utilization) {
    double n = static_cast<double>(options.repetitions);
    out << "avg cpu=" << format_fixed(cpu / n * 100.0, 1)
        << "% avg mem=" << format_fixed(mem / n / kGiB, 1) << " GB\n";
  }
  return 0;
}

}  // namespace rupam
