#include "app/run_spec.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "app/simulation.hpp"
#include "faults/fault_plan.hpp"
#include "sweep/sweep_spec.hpp"
#include "workloads/presets.hpp"

namespace rupam {

namespace {

[[noreturn]] void spec_error(const std::string& message) {
  throw std::runtime_error("run spec: " + message);
}

double require_number(const JsonValue& v, const std::string& what) {
  if (!v.is_number()) spec_error(what + " must be a number");
  return v.as_number();
}

std::uint64_t require_u64(const JsonValue& v, const std::string& what) {
  double d = require_number(v, what);
  if (d < 0.0 || d != std::floor(d)) spec_error(what + " must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

int require_int(const JsonValue& v, const std::string& what) {
  double d = require_number(v, what);
  int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) spec_error(what + " must be an integer");
  return i;
}

const std::string& require_string(const JsonValue& v, const std::string& what) {
  if (!v.is_string()) spec_error(what + " must be a string");
  return v.as_string();
}

bool require_bool(const JsonValue& v, const std::string& what) {
  if (!v.is_bool()) spec_error(what + " must be a bool");
  return v.as_bool();
}

}  // namespace

void RunSpec::validate() const {
  if (!fleet.empty() && fleet_spec.has_value()) {
    spec_error("give \"fleet\" (a path) or \"fleet_spec\" (inline), not both");
  }
  try {
    workload_preset(workload);
  } catch (const std::exception& e) {
    spec_error(e.what());
  }
  if (iterations < 0) spec_error("iterations must be >= 0");
  if (arrivals < 0.0) spec_error("arrivals must be >= 0");
  if (tenants < 1) spec_error("tenants must be >= 1");
  if (duration <= 0.0) spec_error("duration must be > 0");
  if (diurnal < 0.0 || diurnal > 1.0) spec_error("diurnal must be in [0, 1]");
  if (diurnal_period <= 0.0) spec_error("diurnal_period must be > 0");
  if (autoscale < 0) spec_error("autoscale must be >= 0");
  if (fleet_spec.has_value()) {
    try {
      fleet_spec->validate();
    } catch (const std::exception& e) {
      spec_error(std::string("fleet_spec: ") + e.what());
    }
  }
  if (!faults.empty()) {
    try {
      parse_fault_spec(faults);
    } catch (const std::exception& e) {
      spec_error(std::string("faults: ") + e.what());
    }
  }
  if (!spot_plan.empty()) {
    FaultPlan plan;
    try {
      plan = parse_fault_spec(spot_plan);
    } catch (const std::exception& e) {
      spec_error(std::string("spot_plan: ") + e.what());
    }
    for (const FaultEvent& e : plan.events) {
      if (e.kind != FaultKind::kSpotRevoke) {
        spec_error("spot_plan only takes spot events (got '" +
                   std::string(to_string(e.kind)) + "')");
      }
    }
  }
}

RunSpec parse_run_spec_json(const std::string& text) {
  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const JsonParseError& e) {
    spec_error(e.what());
  }
  return parse_run_spec_value(doc);
}

RunSpec parse_run_spec_value(const JsonValue& doc) {
  if (!doc.is_object()) spec_error("top level must be an object");
  RunSpec spec;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "workload") {
      spec.workload = require_string(value, "workload");
      spec.workload_explicit = true;
    } else if (key == "scheduler") {
      const std::string& name = require_string(value, "scheduler");
      auto kind = scheduler_kind_from_name(name);
      if (!kind) spec_error("unknown scheduler '" + name + "'");
      spec.scheduler = *kind;
    } else if (key == "fleet") {
      spec.fleet = require_string(value, "fleet");
    } else if (key == "fleet_spec") {
      try {
        spec.fleet_spec = parse_fleet_value(value);
      } catch (const std::exception& e) {
        spec_error(std::string("fleet_spec: ") + e.what());
      }
    } else if (key == "iterations") {
      spec.iterations = require_int(value, "iterations");
    } else if (key == "seed") {
      spec.seed = require_u64(value, "seed");
    } else if (key == "sample_utilization") {
      spec.sample_utilization = require_bool(value, "sample_utilization");
    } else if (key == "faults") {
      spec.faults = require_string(value, "faults");
    } else if (key == "chaos_seed") {
      spec.chaos_seed = require_u64(value, "chaos_seed");
    } else if (key == "arrivals") {
      spec.arrivals = require_number(value, "arrivals");
    } else if (key == "tenants") {
      spec.tenants = require_int(value, "tenants");
    } else if (key == "pool_policy") {
      const std::string& name = require_string(value, "pool_policy");
      if (name == "fifo") {
        spec.pool_policy = PoolPolicy::kFifo;
      } else if (name == "fair") {
        spec.pool_policy = PoolPolicy::kFair;
      } else {
        spec_error("unknown pool_policy '" + name + "'");
      }
    } else if (key == "duration") {
      spec.duration = require_number(value, "duration");
    } else if (key == "diurnal") {
      spec.diurnal = require_number(value, "diurnal");
    } else if (key == "diurnal_period") {
      spec.diurnal_period = require_number(value, "diurnal_period");
    } else if (key == "autoscale") {
      spec.autoscale = require_int(value, "autoscale");
    } else if (key == "spot_plan") {
      spec.spot_plan = require_string(value, "spot_plan");
    } else if (key == "preempt") {
      spec.preempt = require_bool(value, "preempt");
    } else {
      spec_error("unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

RunSpec load_run_spec_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot read run spec '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  try {
    return parse_run_spec_json(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_run_spec_json(const RunSpec& spec, JsonWriter& w) {
  w.begin_object();
  // "workload" doubles as the explicitness marker (parse sets
  // workload_explicit), mirroring the CLI where an unstated --workload
  // leaves multi-tenant runs free to draw from the whole Table III mix.
  if (spec.workload_explicit) w.key("workload").value(spec.workload);
  w.key("scheduler").value(scheduler_cli_name(spec.scheduler));
  if (!spec.fleet.empty()) w.key("fleet").value(spec.fleet);
  if (spec.fleet_spec.has_value()) {
    w.key("fleet_spec");
    write_fleet_json(*spec.fleet_spec, w);
  }
  w.key("iterations").value(spec.iterations);
  w.key("seed").value(static_cast<unsigned long long>(spec.seed));
  w.key("sample_utilization").value(spec.sample_utilization);
  if (!spec.faults.empty()) w.key("faults").value(spec.faults);
  w.key("chaos_seed").value(static_cast<unsigned long long>(spec.chaos_seed));
  w.key("arrivals").raw(json_number(spec.arrivals, 12));
  w.key("tenants").value(spec.tenants);
  w.key("pool_policy").value(spec.pool_policy == PoolPolicy::kFair ? "fair" : "fifo");
  w.key("duration").raw(json_number(spec.duration, 12));
  w.key("diurnal").raw(json_number(spec.diurnal, 12));
  w.key("diurnal_period").raw(json_number(spec.diurnal_period, 12));
  w.key("autoscale").value(spec.autoscale);
  if (!spec.spot_plan.empty()) w.key("spot_plan").value(spec.spot_plan);
  w.key("preempt").value(spec.preempt);
  w.end_object();
}

std::string run_spec_to_json(const RunSpec& spec) {
  std::ostringstream os;
  JsonWriter w(os);
  write_run_spec_json(spec, w);
  os << "\n";
  return os.str();
}

SimulationConfig make_simulation_config(const RunSpec& spec) {
  spec.validate();
  SimulationConfig cfg;
  cfg.scheduler = spec.scheduler;
  cfg.seed = spec.seed;
  cfg.sample_utilization = spec.sample_utilization;
  cfg.pools.policy = spec.pool_policy;
  const FleetSpec* fleet = spec.fleet_spec ? &*spec.fleet_spec : nullptr;
  FleetSpec loaded;
  if (!spec.fleet.empty()) {
    loaded = load_fleet_file(spec.fleet);
    fleet = &loaded;
  }
  if (fleet != nullptr) {
    cfg.nodes = generate_fleet(*fleet);
    if (fleet->switch_bandwidth > 0.0) cfg.switch_bandwidth = fleet->switch_bandwidth;
  }
  if (!spec.faults.empty()) cfg.faults = parse_fault_spec(spec.faults);
  if (!spec.spot_plan.empty()) {
    FaultPlan plan = parse_fault_spec(spec.spot_plan);
    cfg.faults.events.insert(cfg.faults.events.end(), plan.events.begin(), plan.events.end());
    cfg.faults.sort();
  }
  cfg.chaos_seed = spec.chaos_seed;
  if (spec.autoscale > 0) {
    cfg.autoscale.enabled = true;
    cfg.autoscale.max_nodes = spec.autoscale;
  }
  cfg.preemption.enabled = spec.preempt;
  return cfg;
}

Application make_run_application(const RunSpec& spec, Simulation& sim) {
  if (spec.arrivals > 0.0) {
    throw std::runtime_error(
        "run spec: arrivals > 0 describes a submission stream, not a single application");
  }
  const WorkloadPreset& preset = workload_preset(spec.workload);
  return build_workload(preset, sim.cluster().node_ids(), spec.seed, spec.iterations,
                        hdfs_placement_weights(sim.cluster()));
}

}  // namespace rupam
