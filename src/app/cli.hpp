// Command-line driver behind the `rupam_sim` tool: parse arguments, run
// one (workload, scheduler) simulation, print a report, optionally dump
// traces. Kept in the library so it is unit-testable.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "app/run_spec.hpp"
#include "app/simulation.hpp"

namespace rupam {

struct CliOptions {
  std::string workload = "PR";    // Table III short name
  bool workload_explicit = false;  // user passed --workload
  SchedulerKind scheduler = SchedulerKind::kRupam;
  /// JSON fleet-spec path (see cluster/fleet.hpp); empty = Hydra preset.
  std::string fleet;
  int iterations = 0;  // 0 = preset default
  int repetitions = 1;
  std::uint64_t seed = 1;
  bool sample_utilization = false;
  std::string trace_csv;     // write the event trace here if non-empty
  std::string trace_chrome;  // chrome://tracing JSON path
  /// Perfetto task-phase span trace path (enables span recording).
  std::string trace_perfetto;
  /// Metrics exposition path: ".json" → JSON, else Prometheus text.
  std::string metrics_out;
  /// Dispatch-decision audit path: ".json" → JSON, else CSV.
  std::string explain_out;
  /// Post-run diagnosis path (critical paths + straggler causes). Enables
  /// spans, audit, event trace and JCT collection for the run.
  std::string analyze_out;
  double analyze_k = 1.5;  // straggler threshold for --analyze
  /// Comparator mode: diff two run reports / sweep matrices and exit.
  std::string compare_base;
  std::string compare_test;
  std::string compare_out;      // comparison JSON path; empty = table only
  bool compare_strict = false;  // exit 1 when any metric regressed
  /// Relative significance floor for --compare (ComparisonConfig default
  /// when unset). Wall-clock benches on shared runners want a loose one.
  double compare_tolerance = -1.0;  // < 0: use the comparator default
  std::string faults;        // fault spec (see faults/fault_plan.hpp)
  std::uint64_t chaos_seed = 0;  // non-zero: add a seeded chaos plan
  /// Sweep mode: path to a JSON SweepSpec (see sweep/sweep_spec.hpp);
  /// non-empty runs the whole grid on a worker pool and writes one JSON
  /// result matrix, ignoring the single-run options above.
  std::string sweep;
  int sweep_threads = 0;  // 0 = hardware concurrency
  std::string sweep_out;  // matrix path; empty = stdout
  /// Multi-tenant mode (> 0): open-loop Poisson application arrivals at
  /// this rate (apps per simulated second).
  double arrivals = 0.0;
  int tenants = 2;                             // tenant pools for --arrivals
  PoolPolicy pool_policy = PoolPolicy::kFifo;  // cross-job policy
  SimTime duration = 600.0;                    // arrival generation horizon
  /// Diurnal arrival shape (0 = flat Poisson; see ArrivalConfig).
  double diurnal = 0.0;
  SimTime diurnal_period = 120.0;
  /// > 0: enable pending-pressure autoscaling with this many max minted
  /// nodes (default "spot" class).
  int autoscale = 0;
  /// Spot revocation plan: fault-spec grammar, spot events only
  /// (e.g. "spot@60:node=3:notice=20"); merged into --faults.
  std::string spot_plan;
  /// Enable fair-share preemption (needs --pool-policy fair to bite).
  bool preempt = false;
  /// Declarative run spec (--config run.json): loaded first, every other
  /// flag overrides its fields (see app/run_spec.hpp).
  std::string config;
  /// Fleet embedded by value in a --config spec. Only --config sets this
  /// (no flag form); an explicit --fleet path overrides it.
  std::optional<FleetSpec> fleet_spec;
  /// >= 0: capture a checkpoint at this simulated time (see
  /// replay/checkpoint.hpp) and write it to `checkpoint_out`.
  SimTime checkpoint_at = -1.0;
  std::string checkpoint_out;
  /// Checkpoint path: restore (verify the pinned decision prefix) and run
  /// to completion; with --branch / --whatif it supplies the RunSpec.
  std::string restore;
  /// Counterfactual branch spec (grammar in replay/branch.hpp).
  std::string branch;
  std::string branch_out;  // branch report JSON path; empty = table only
  /// What-if advisor mode: path to a --analyze diagnosis JSON.
  std::string whatif;
  std::string whatif_out;  // ranked findings JSON path; empty = stdout
  /// Write the run's flat outcome JSON (comparator-ready) here.
  std::string report_out;
  bool list_workloads = false;
  bool help = false;
};

/// Parse argv. Returns std::nullopt and writes a message to `err` on
/// invalid input. Recognized flags:
///   --config RUN.json
///   --workload NAME --scheduler spark|rupam|stageaware|fifo|heft --fleet PATH
///   --iterations N --repetitions N --seed N --sample
///   --trace-csv PATH --trace-chrome PATH --trace-perfetto PATH
///   --metrics-out PATH --explain PATH --analyze PATH --analyze-k K
///   --report-out PATH
///   --compare BASE TEST --compare-out PATH --compare-strict
///   --compare-tolerance F
///   --faults SPEC --chaos SEED
///   --arrivals RATE --tenants N --pool-policy fifo|fair --duration T
///   --diurnal AMP --diurnal-period T
///   --autoscale MAX --spot-plan SPEC --preempt
///   --sweep SPEC.json --sweep-threads N --sweep-out PATH
///   --checkpoint-at T --checkpoint-out PATH --restore PATH
///   --branch SPEC --branch-out PATH --whatif DIAG.json --whatif-out PATH
///   --list --help
std::optional<CliOptions> parse_cli(const std::vector<std::string>& args, std::ostream& err);

/// Thin forwarder to scheduler_kind_from_name (sched/factory.hpp).
std::optional<SchedulerKind> scheduler_from_name(const std::string& name);

/// CliOptions → RunSpec projection (the run-identity fields only;
/// observability and output paths stay behind).
RunSpec run_spec_from_cli(const CliOptions& options);

/// RunSpec → CliOptions: the --config defaults later flags override.
CliOptions cli_from_run_spec(const RunSpec& spec);

/// Run per the options; returns the process exit code.
int run_cli(const CliOptions& options, std::ostream& out, std::ostream& err);

std::string cli_usage();

}  // namespace rupam
