#include "app/simulation.hpp"

#include <algorithm>
#include <stdexcept>

#include "cluster/presets.hpp"
#include "common/log.hpp"

namespace rupam {

std::vector<double> hdfs_placement_weights(const Cluster& cluster) {
  std::vector<double> weights;
  weights.reserve(cluster.size());
  for (NodeId id : cluster.node_ids()) {
    weights.push_back(cluster.node(id).spec().disk_capacity / kGiB);
  }
  return weights;
}

Simulation::Simulation(SimulationConfig config) : config_(std::move(config)) {
  cluster_ = std::make_unique<Cluster>(sim_, config_.switch_bandwidth);
  if (config_.nodes.empty()) {
    build_hydra(*cluster_);
  } else {
    for (const auto& spec : config_.nodes) cluster_->add_node(spec);
  }

  // Executor sizing policy — the lever behind Fig 8(b)'s memory numbers:
  // default Spark must fit the weakest node everywhere; RUPAM sizes each
  // executor to its node.
  Bytes static_heap =
      std::max(1.0 * kGiB, cluster_->min_node_memory() - config_.executor_memory_headroom);
  Rng rng(config_.seed, 0x2545f4914f6cdd1dULL);
  for (NodeId id : cluster_->node_ids()) {
    Node& node = cluster_->node(id);
    ExecutorConfig ec;
    ec.heap = config_.scheduler == SchedulerKind::kRupam
                  ? std::max(1.0 * kGiB, node.spec().memory - config_.executor_memory_headroom)
                  : static_heap;
    ec.storage_fraction = config_.storage_fraction;
    ec.task_slots = node.spec().cores;
    ec.gc = config_.gc;
    ec.oom_grace = config_.oom_grace;
    executors_.push_back(std::make_unique<Executor>(sim_, node, id, ec, rng.split()));
  }

  for (auto& e : executors_) {
    e->set_peer_cache_probe([this, self = e.get()](const std::string& key) {
      for (const auto& other : executors_) {
        if (other.get() != self && other->cache().contains(key)) return true;
      }
      return false;
    });
  }

  SchedulerEnv env;
  env.sim = &sim_;
  env.cluster = cluster_.get();
  for (auto& e : executors_) env.executors.push_back(e.get());

  SchedulerConfig sched_cfg;
  sched_cfg.rupam = config_.rupam;
  sched_cfg.spark = config_.spark;
  scheduler_ = make_scheduler(config_.scheduler, std::move(env), sched_cfg);
  rupam_ = dynamic_cast<RupamScheduler*>(scheduler_.get());
  scheduler_->configure_speculation(config_.speculation);
  scheduler_->configure_pools(config_.pools);
  scheduler_->configure_preemption(config_.preemption);

  heartbeats_ = std::make_unique<HeartbeatService>(*cluster_, config_.heartbeat_period);
  heartbeats_->subscribe([this](const NodeMetrics& metrics) {
    OverheadProfiler::Scope scope(profiler_, ProfileSection::kHeartbeat);
    scheduler_->on_heartbeat(metrics);
  });

  dag_ = std::make_unique<DagScheduler>(
      sim_, [this](const TaskSet& set) { scheduler_->submit(set); });
  dag_->set_resubmit([this](const TaskSet& set) { scheduler_->resubmit(set); });
  scheduler_->set_partition_success_handler(
      [this](StageId stage, int partition, const TaskMetrics& metrics) {
        dag_->on_partition_success(stage, partition, metrics.node);
      });

  if (config_.sample_utilization) {
    sampler_ = std::make_unique<UtilizationSampler>(*cluster_, config_.sample_period);
  }
  Observers observers;
  if (config_.enable_trace) {
    trace_ = std::make_unique<EventTrace>();
    observers.trace = trace_.get();
  }
  if (config_.enable_metrics) {
    metrics_ = std::make_unique<MetricsRegistry>();
    observers.metrics = metrics_.get();
    dag_->set_metrics(metrics_.get());
  }
  if (config_.enable_audit) {
    audit_ = std::make_unique<DecisionAudit>();
    observers.audit = audit_.get();
  }
  scheduler_->attach(observers);
  if (config_.enable_spans) {
    spans_ = std::make_unique<SpanTrace>();
    for (auto& e : executors_) e->set_span_trace(spans_.get());
  }

  FaultPlan plan = config_.faults;
  if (config_.chaos_seed != 0) {
    FaultPlan chaos =
        make_chaos_plan(config_.chaos_seed, cluster_->size(), config_.chaos_horizon);
    plan.events.insert(plan.events.end(), chaos.events.begin(), chaos.events.end());
    plan.sort();
  }
  FaultToleranceConfig ft = config_.fault_tolerance;
  ft.heartbeat_period = config_.heartbeat_period;
  if (!plan.empty()) ft.enabled = true;  // faults imply blacklist + liveness
  scheduler_->configure_fault_tolerance(ft);
  if (!plan.empty()) {
    FaultInjectorEnv fenv;
    fenv.sim = &sim_;
    fenv.cluster = cluster_.get();
    for (auto& e : executors_) fenv.executors.push_back(e.get());
    fenv.heartbeats = heartbeats_.get();
    fenv.dag = dag_.get();
    fenv.trace = trace_.get();
    injector_ = std::make_unique<FaultInjector>(std::move(fenv), std::move(plan));
    injector_->set_metrics(metrics_.get());
    injector_->arm();
  }

  // Membership side effects: the scheduler subscribed first (inside its
  // own constructor), so by the time this listener runs its indexes are
  // already reconciled and it's safe to crash the executor / retire rows.
  elastic_rng_ = Rng(config_.seed, /*stream=*/0x656c617374696331ULL);  // "elastic1"
  membership_token_ = cluster_->subscribe_membership(
      [this](NodeId node, NodeLifecycle state) { handle_membership(node, state); });

  if (config_.autoscale.enabled) {
    AutoscalerEnv aenv;
    aenv.sim = &sim_;
    aenv.cluster = cluster_.get();
    aenv.mix = config_.autoscale_class;
    if (aenv.mix.name.empty()) {
      aenv.mix.name = "spot";
      aenv.mix.base = hulk_spec();
    }
    aenv.pending_tasks = [this] { return scheduler_->pending_tasks(); };
    aenv.free_slots = [this] { return scheduler_->free_slots_total(); };
    aenv.node_running = [this](NodeId id) {
      auto idx = static_cast<std::size_t>(id);
      if (idx >= executors_.size()) return 0;
      Executor* e = executors_[idx].get();
      return e->alive() ? static_cast<int>(e->running_tasks()) : 0;
    };
    aenv.provision = [this](NodeSpec spec, SimTime boot_delay) {
      return provision_node(std::move(spec), boot_delay);
    };
    AutoscaleConfig acfg = config_.autoscale;
    if (acfg.seed == 0) acfg.seed = config_.seed;
    autoscaler_ = std::make_unique<Autoscaler>(std::move(aenv), acfg);
  }
}

Simulation::~Simulation() {
  if (autoscaler_) autoscaler_->stop();
  if (heartbeats_) heartbeats_->stop();
  if (sampler_) sampler_->stop();
  cluster_->unsubscribe_membership(membership_token_);
}

NodeId Simulation::provision_node(NodeSpec spec, SimTime boot_delay) {
  NodeId id = cluster_->provision_node(std::move(spec), boot_delay);
  Node& node = cluster_->node(id);
  // Same sizing policy as construction: default Spark uses the static
  // heap frozen at startup; RUPAM sizes to the node.
  Bytes static_heap =
      std::max(1.0 * kGiB, cluster_->min_node_memory() - config_.executor_memory_headroom);
  ExecutorConfig ec;
  ec.heap = config_.scheduler == SchedulerKind::kRupam
                ? std::max(1.0 * kGiB, node.spec().memory - config_.executor_memory_headroom)
                : static_heap;
  ec.storage_fraction = config_.storage_fraction;
  ec.task_slots = node.spec().cores;
  ec.gc = config_.gc;
  ec.oom_grace = config_.oom_grace;
  executors_.push_back(std::make_unique<Executor>(sim_, node, id, ec, elastic_rng_.split()));
  Executor* exec = executors_.back().get();
  exec->set_peer_cache_probe([this, self = exec](const std::string& key) {
    for (const auto& other : executors_) {
      if (other.get() != self && other->cache().contains(key)) return true;
    }
    return false;
  });
  if (spans_) exec->set_span_trace(spans_.get());
  // Registered before the boot event fires, so when the node turns live
  // the scheduler already has a slot-accounting row for it.
  scheduler_->register_executor(exec);
  return id;
}

void Simulation::trace_membership(NodeId node, TraceEventType type) {
  if (!trace_) return;
  TraceEvent t;
  t.time = sim_.now();
  t.type = type;
  t.node = node;
  t.detail = cluster_->node(node).spec().name;
  trace_->record(std::move(t));
}

void Simulation::handle_membership(NodeId node, NodeLifecycle state) {
  switch (state) {
    case NodeLifecycle::kProvisioning:
      trace_membership(node, TraceEventType::kNodeProvisioned);
      break;
    case NodeLifecycle::kLive:
      if (heartbeats_) heartbeats_->node_joined(node);
      if (sampler_) sampler_->node_joined(node);
      trace_membership(node, TraceEventType::kNodeJoined);
      break;
    case NodeLifecycle::kDraining:
      trace_membership(node, TraceEventType::kNodeDraining);
      break;
    case NodeLifecycle::kDecommissioned: {
      // Kill the executor (running attempts fail through the usual lost
      // path), invalidate its map outputs, retire its heartbeat slot and
      // sampler row. All idempotent — the fault injector may have done
      // some of this already.
      auto idx = static_cast<std::size_t>(node);
      if (idx < executors_.size()) executors_[idx]->crash();
      if (dag_) dag_->on_node_lost(node);
      if (heartbeats_) heartbeats_->node_left(node);
      if (sampler_) sampler_->node_left(node);
      trace_membership(node, TraceEventType::kNodeDecommissioned);
      break;
    }
  }
}

SimTime Simulation::run(const Application& app) {
  begin(app);
  return finish();
}

void Simulation::begin(const Application& app) {
  if (run_active_) {
    throw std::runtime_error("Simulation: begin() while another run is active");
  }
  app.validate();
  register_stage_parents(app);
  // Analysis wants per-job JCT records even on the single-app path; the
  // observers only copy ids into the accountant, so enabling them leaves
  // the simulated event sequence untouched.
  jct_.reset();
  if (config_.enable_analysis) {
    jct_.emplace();
    dag_->set_job_observer([this](const DagScheduler::JobStats& s) {
      jct_->note_finished(s.job, s.app, s.pool, s.name, s.submitted, s.finished);
    });
    scheduler_->set_launch_observer(
        [this](JobId job, SimTime now) { jct_->note_launch(job, now); });
  }
  run_app_name_ = app.name;
  run_started_ = sim_.now();
  run_done_ = false;
  run_finished_at_ = 0.0;
  run_steps_ = 0;
  run_active_ = true;
  heartbeats_->start();
  if (sampler_) sampler_->start();
  if (autoscaler_) autoscaler_->start();
  // DAG announcement (no-op for every scheduler without precomputed
  // priorities) strictly precedes the first stage submission.
  scheduler_->register_dag(app);
  dag_->run(app, [this] {
    run_done_ = true;
    run_finished_at_ = sim_.now();
  });
}

void Simulation::step_once() {
  if (!sim_.step()) {
    throw std::runtime_error("Simulation: event queue drained before completion");
  }
  if (sim_.now() - run_started_ > config_.max_sim_time) {
    throw std::runtime_error("Simulation: exceeded max_sim_time — likely unschedulable");
  }
  if (++run_steps_ % 10000000 == 0) {
    RUPAM_WARN(sim_.now(), "simulation still running after ", run_steps_, " events (t=",
               sim_.now(), "s) — possible scheduling livelock");
  }
}

bool Simulation::advance_until(SimTime t) {
  if (!run_active_) throw std::runtime_error("Simulation: advance_until() without begin()");
  // Events strictly after t stay queued, so the simulation pauses at the
  // same quiescent point a straight run passes through at time t.
  while (!run_done_ && sim_.next_event_time() <= t) step_once();
  return run_done_;
}

SimTime Simulation::finish() {
  if (!run_active_) throw std::runtime_error("Simulation: finish() without begin()");
  while (!run_done_) step_once();
  if (autoscaler_) autoscaler_->stop();
  heartbeats_->stop();
  if (sampler_) sampler_->stop();
  snapshot_gauges();
  if (config_.enable_analysis) {
    dag_->set_job_observer(nullptr);
    scheduler_->set_launch_observer(nullptr);
    analysis_jobs_.insert(analysis_jobs_.end(), jct_->jobs().begin(), jct_->jobs().end());
    jct_.reset();
  }
  run_active_ = false;
  RUPAM_INFO(sim_.now(), scheduler_->name(), " finished '", run_app_name_, "' in ",
             run_finished_at_ - run_started_, "s");
  return run_finished_at_ - run_started_;
}

TenantRunReport Simulation::run(const SubmissionStream& stream) {
  if (stream.empty()) return {};
  for (const TimedSubmission& s : stream.items()) {
    s.app.validate();
    register_stage_parents(s.app);
  }
  JctAccountant jct;
  dag_->set_job_observer([&jct](const DagScheduler::JobStats& s) {
    jct.note_finished(s.job, s.app, s.pool, s.name, s.submitted, s.finished);
  });
  scheduler_->set_launch_observer(
      [&jct](JobId job, SimTime now) { jct.note_launch(job, now); });

  SimTime started = sim_.now();
  SimTime finished_at = started;
  std::size_t remaining = stream.size();
  heartbeats_->start();
  if (sampler_) sampler_->start();
  if (autoscaler_) autoscaler_->start();
  for (const TimedSubmission& s : stream.items()) {
    sim_.schedule_at(started + s.at, [this, &s, &remaining, &finished_at] {
      // Same announce-before-submit contract as the single-app path, per
      // arriving application (still a no-op for rank-free schedulers).
      scheduler_->register_dag(s.app);
      dag_->submit_app(s.app, [this, &remaining, &finished_at] {
        --remaining;
        finished_at = sim_.now();
      });
    });
  }
  std::size_t steps = 0;
  while (remaining > 0) {
    if (!sim_.step()) {
      throw std::runtime_error(
          "Simulation: event queue drained before all applications finished");
    }
    if (sim_.now() - started > config_.max_sim_time) {
      throw std::runtime_error("Simulation: exceeded max_sim_time — likely unschedulable");
    }
    if (++steps % 10000000 == 0) {
      RUPAM_WARN(sim_.now(), "simulation still running after ", steps, " events (t=",
                 sim_.now(), "s) — possible scheduling livelock");
    }
  }
  if (autoscaler_) autoscaler_->stop();
  heartbeats_->stop();
  if (sampler_) sampler_->stop();
  snapshot_gauges();
  dag_->set_job_observer(nullptr);
  scheduler_->set_launch_observer(nullptr);

  TenantRunReport report;
  report.makespan = finished_at - started;
  report.jobs = jct.jobs();
  report.overall = jct.overall();
  report.per_pool = jct.by_pool();
  if (config_.enable_analysis) {
    analysis_jobs_.insert(analysis_jobs_.end(), report.jobs.begin(), report.jobs.end());
  }
  RUPAM_INFO(sim_.now(), scheduler_->name(), " finished ", stream.size(), " applications (",
             report.jobs.size(), " jobs) in ", report.makespan, "s");
  return report;
}

void Simulation::register_stage_parents(const Application& app) {
  if (!spans_ && !config_.enable_analysis) return;
  for (const auto& job : app.jobs) {
    for (const auto& stage : job.stages) {
      if (spans_ && !stage.parents.empty()) spans_->set_stage_parents(stage.id, stage.parents);
      if (config_.enable_analysis) {
        stage_job_[stage.id] = job.id;
        if (!stage.parents.empty()) analysis_stage_parents_[stage.id] = stage.parents;
      }
    }
  }
}

RunArtifacts Simulation::run_artifacts() const {
  RunArtifacts a;
  a.spans = spans_.get();
  a.audit = audit_.get();
  a.trace = trace_.get();
  a.jobs = analysis_jobs_;
  a.stage_job = stage_job_;
  a.stage_parents = analysis_stage_parents_;
  a.nodes.reserve(executors_.size());
  // Node ids are dense and never reused, so every executor ever created —
  // including ones whose node has since been decommissioned — maps to a
  // NodeSpec the cluster still holds.
  for (std::size_t i = 0; i < executors_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    const NodeSpec& spec = cluster_->node(id).spec();
    a.nodes.push_back({id, spec.name, spec.node_class, spec.cpu_perf, spec.gpus});
  }
  return a;
}

void Simulation::snapshot_gauges() {
  if (!metrics_) return;
  // busy_seconds() integrates from simulator start, so the busy fraction is
  // taken over total simulated time — valid across repeated run() calls.
  SimTime elapsed = sim_.now();
  for (NodeId id : cluster_->node_ids()) {
    Node& node = cluster_->node(id);
    std::string label = std::to_string(id);
    auto busy = [&](const char* resource, FairShareResource& r) {
      double f = elapsed > 0.0 ? std::min(1.0, r.busy_seconds() / elapsed) : 0.0;
      metrics_
          ->gauge("rupam_sim_node_busy_fraction", {{"node", label}, {"resource", resource}},
                  "Fraction of simulated time the resource had at least one active claim")
          .set(f);
    };
    busy("cpu", node.cpu());
    busy("net", node.net());
    busy("disk_read", node.disk_read());
    busy("disk_write", node.disk_write());
  }
  metrics_->gauge("rupam_sim_oom_kills", {}, "Task attempts killed by the memory guard")
      .set(static_cast<double>(total_oom_kills()));
  metrics_->gauge("rupam_sim_executor_losses", {}, "Executors lost to GC death spirals")
      .set(static_cast<double>(total_executor_losses()));
}

std::size_t Simulation::total_oom_kills() const {
  std::size_t n = 0;
  for (const auto& e : executors_) n += e->oom_kills();
  return n;
}

std::size_t Simulation::total_executor_losses() const {
  std::size_t n = 0;
  for (const auto& e : executors_) n += e->executor_losses();
  return n;
}

std::size_t Simulation::recomputed_partitions() const { return dag_->recomputed_partitions(); }

}  // namespace rupam
