// Public façade: wire a cluster, executors, a scheduler, heartbeats and
// samplers together and run one Spark application to completion.
//
//   rupam::SimulationConfig cfg;
//   cfg.scheduler = rupam::SchedulerKind::kRupam;   // or kSpark
//   rupam::Simulation sim(cfg);                      // 12-node Hydra default
//   auto app = rupam::build_workload(rupam::workload_preset("PR"),
//                                    sim.cluster().node_ids(), /*seed=*/1);
//   rupam::SimTime makespan = sim.run(app);
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "app/arrivals.hpp"
#include "cluster/autoscaler.hpp"
#include "cluster/cluster.hpp"
#include "cluster/heartbeat.hpp"
#include "dag/dag_scheduler.hpp"
#include "exec/executor.hpp"
#include "faults/fault_injector.hpp"
#include "metrics/jct.hpp"
#include "metrics/utilization_sampler.hpp"
#include "obs/analyzer.hpp"
#include "obs/audit.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/overhead.hpp"
#include "obs/spans.hpp"
#include "sched/factory.hpp"

namespace rupam {

/// HDFS-style block placement weights: proportional to each node's
/// storage capacity (pass to build_workload).
std::vector<double> hdfs_placement_weights(const Cluster& cluster);

struct SimulationConfig {
  SchedulerKind scheduler = SchedulerKind::kSpark;

  /// Cluster layout; empty = the paper's 12-node Hydra cluster.
  std::vector<NodeSpec> nodes;
  Bytes switch_bandwidth = gbit_per_s(1.0);

  /// Default Spark sizes every executor for the weakest node; RUPAM sizes
  /// per node ("dynamic executor memory", §III-C2). Both leave this much
  /// headroom for OS+JVM overhead.
  Bytes executor_memory_headroom = 2.0 * kGiB;
  double storage_fraction = 0.3;
  GcModelParams gc;
  /// GC-thrash window before an overfilled executor resolves (OOM/loss).
  SimTime oom_grace = 2.0;

  SimTime heartbeat_period = 1.0;
  SpeculationConfig speculation;
  RupamConfig rupam;
  SparkScheduler::Config spark;
  /// Cross-job scheduling policy and pool definitions (FIFO by default —
  /// identical to single-tenant behaviour).
  PoolConfig pools;
  /// Fair-share preemption (off by default; needs kFair pools).
  PreemptionConfig preemption;

  /// Pending-pressure autoscaling (off by default). When enabled, nodes
  /// of `autoscale_class` are minted/drained at runtime; an empty class
  /// name falls back to a hulk-derived "spot" template.
  AutoscaleConfig autoscale;
  NodeClassMix autoscale_class;

  bool sample_utilization = false;
  SimTime sample_period = 1.0;
  /// Record a structured scheduling-event trace (CSV / chrome-tracing
  /// exportable via Simulation::trace()).
  bool enable_trace = false;

  /// Observability layer (src/obs/). All three default off; when off the
  /// simulation takes no extra allocations and produces byte-identical
  /// traces. `enable_metrics` wires a MetricsRegistry through the DAG
  /// scheduler, task scheduler, fault injector and cluster; `enable_audit`
  /// records one DispatchDecision per launch; `enable_spans` records
  /// per-attempt task-phase spans exportable as a Perfetto trace.
  bool enable_metrics = false;
  bool enable_audit = false;
  bool enable_spans = false;
  /// Collect the extra joins analyze_run needs (per-job JCT records and
  /// stage→job / stage→parents maps) so run_artifacts() is complete.
  /// Recording only copies ids at job completion — it schedules no
  /// simulator events, so enabling it never perturbs the simulated run.
  bool enable_analysis = false;

  /// Declarative fault plan to replay (see faults/fault_plan.hpp).
  FaultPlan faults;
  /// Non-zero: merge in a seeded random chaos plan.
  std::uint64_t chaos_seed = 0;
  SimTime chaos_horizon = 240.0;
  /// Blacklisting + missed-heartbeat liveness. Auto-enabled whenever a
  /// fault plan or chaos seed is configured; heartbeat_period is always
  /// taken from the field above.
  FaultToleranceConfig fault_tolerance;

  /// Safety valve: abort runs that exceed this much simulated time.
  SimTime max_sim_time = 48.0 * 3600.0;

  std::uint64_t seed = 1;
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Run `app` to completion; returns the makespan in simulated seconds.
  /// Throws std::runtime_error if max_sim_time is exceeded. Exactly
  /// begin(app) followed by finish() — the incremental API below exists
  /// for the replay layer, which needs to pause at event boundaries.
  SimTime run(const Application& app);

  /// Incremental run — same semantics as run(app), split at quiescent
  /// points so callers (checkpointing, src/replay/) can stop mid-run:
  ///
  ///   sim.begin(app);
  ///   sim.advance_until(t);   // fires every event with time <= t
  ///   ... capture state ...
  ///   SimTime makespan = sim.finish();
  ///
  /// `app` must outlive the run (the DAG scheduler keeps a pointer).
  /// begin() submits and starts services; advance_until() returns true
  /// once the application completed; finish() runs to completion, stops
  /// services and returns the makespan. A straight begin+finish executes
  /// the identical event sequence as run(app).
  void begin(const Application& app);
  bool advance_until(SimTime t);
  SimTime finish();
  /// True between begin() and finish().
  bool run_active() const { return run_active_; }

  /// Replay seam passthrough (see SchedulerBase::set_dispatch_interceptor).
  void set_dispatch_interceptor(SchedulerBase::DispatchInterceptor fn) {
    scheduler_->set_dispatch_interceptor(std::move(fn));
  }

  /// Multi-tenant entry point: run every timed submission in `stream` to
  /// completion (applications overlap according to their arrival times and
  /// the configured pool policy) and return per-job JCT accounting. The
  /// stream must outlive the call.
  TenantRunReport run(const SubmissionStream& stream);

  Simulator& sim() { return sim_; }
  Cluster& cluster() { return *cluster_; }
  SchedulerBase& scheduler() { return *scheduler_; }
  /// Non-null when the scheduler is RUPAM.
  RupamScheduler* rupam_scheduler() { return rupam_; }
  Executor& executor(NodeId node) { return *executors_.at(static_cast<std::size_t>(node)); }
  const UtilizationSampler* sampler() const { return sampler_.get(); }
  /// Non-null when enable_trace was set.
  const EventTrace* trace() const { return trace_.get(); }
  /// Non-null when a fault plan or chaos seed was configured.
  const FaultInjector* injector() const { return injector_.get(); }
  DagScheduler& dag() { return *dag_; }
  HeartbeatService& heartbeats() { return *heartbeats_; }
  /// Non-null when autoscaling was enabled.
  Autoscaler* autoscaler() { return autoscaler_.get(); }

  /// Add a node (and its executor, sized by the configured policy) to the
  /// running simulation. The node boots for `boot_delay` seconds, then
  /// goes live and joins heartbeats/sampling; every subscribed layer sees
  /// the membership transition. This is the autoscaler's provision hook,
  /// public so tests can exercise mid-run joins directly.
  NodeId provision_node(NodeSpec spec, SimTime boot_delay);

  /// Non-null when enable_metrics was set. End-of-run gauges (busy
  /// fractions, OOM totals) are refreshed by each run() before it returns.
  MetricsRegistry* metrics() { return metrics_.get(); }
  /// Non-null when enable_audit was set: one record per task launch.
  DecisionAudit* audit() { return audit_.get(); }
  /// Non-null when enable_spans was set.
  SpanTrace* spans() { return spans_.get(); }
  /// Bundle every recorded artifact for analyze_run. Jobs accumulate
  /// across run() calls when enable_analysis is set; node facts cover
  /// every executor ever registered, decommissioned ones included.
  RunArtifacts run_artifacts() const;
  /// Attach a host wall-clock profiler to the scheduler's decision path
  /// and the heartbeat pump (not owned; pass nullptr to detach).
  void set_profiler(OverheadProfiler* profiler) {
    profiler_ = profiler;
    Observers o = scheduler_->observers();
    o.profiler = profiler;
    scheduler_->attach(o);
  }

  std::size_t total_oom_kills() const;
  std::size_t total_executor_losses() const;
  /// Partitions recomputed because a crash destroyed their map output.
  std::size_t recomputed_partitions() const;

 private:
  SimulationConfig config_;
  Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<Executor>> executors_;
  std::unique_ptr<HeartbeatService> heartbeats_;
  std::unique_ptr<SchedulerBase> scheduler_;
  RupamScheduler* rupam_ = nullptr;
  std::unique_ptr<DagScheduler> dag_;
  std::unique_ptr<UtilizationSampler> sampler_;
  std::unique_ptr<Autoscaler> autoscaler_;
  std::unique_ptr<EventTrace> trace_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<DecisionAudit> audit_;
  std::unique_ptr<SpanTrace> spans_;
  OverheadProfiler* profiler_ = nullptr;
  /// Incremental-run state (begin/advance_until/finish).
  std::optional<JctAccountant> jct_;
  std::string run_app_name_;
  SimTime run_started_ = 0.0;
  SimTime run_finished_at_ = 0.0;
  std::size_t run_steps_ = 0;
  bool run_done_ = false;
  bool run_active_ = false;
  /// Analysis joins (filled only when config_.enable_analysis).
  std::vector<JobCompletion> analysis_jobs_;
  std::map<StageId, JobId> stage_job_;
  std::map<StageId, std::vector<StageId>> analysis_stage_parents_;
  /// Jitter stream for runtime-provisioned executors — separate from the
  /// construction-time stream so elastic runs never perturb the initial
  /// executors' draws (golden traces depend on them).
  Rng elastic_rng_{0, 0};
  std::size_t membership_token_ = 0;

  void register_stage_parents(const Application& app);
  /// Fire one event; throws on drained queue / max_sim_time overrun.
  void step_once();
  void handle_membership(NodeId node, NodeLifecycle state);
  void trace_membership(NodeId node, TraceEventType type);
  void snapshot_gauges();
};

}  // namespace rupam
