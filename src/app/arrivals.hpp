// Open-loop workload driver for the multi-tenant regime.
//
// A SubmissionStream is a list of (arrival time, application) pairs whose
// job/stage/task ids and RDD cache keys have been remapped into disjoint
// namespaces (WorkloadBuilder numbers every application from zero, so two
// concurrently running applications would otherwise collide in the task
// scheduler's stage table and in the executors' block caches).
//
// make_poisson_stream generates arrivals open-loop: exponential
// inter-arrival times at a fixed rate, workloads drawn from a mix (default:
// the paper's Table III set), round-robined across N tenant pools. All
// randomness flows from one seeded Rng, so a (config, seed) pair fully
// determines the stream — and therefore the whole run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/job.hpp"

namespace rupam {

/// One application plus the simulated time its driver connects.
struct TimedSubmission {
  SimTime at = 0.0;
  Application app;
};

class SubmissionStream {
 public:
  /// Append `app` arriving at `at` (seconds from run start), billed to
  /// `pool`. Remaps the application's ids past every earlier submission and
  /// prefixes its cache keys with a per-submission tag so same-workload
  /// tenants do not share cached RDDs.
  void add(SimTime at, Application app, const std::string& pool = "");

  const std::vector<TimedSubmission>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  std::vector<TimedSubmission> items_;
  JobId next_job_ = 0;
  StageId next_stage_ = 0;
  TaskId next_task_ = 0;
};

struct ArrivalConfig {
  /// Mean application arrival rate (apps per simulated second).
  double rate = 0.05;
  /// Generation horizon: arrivals are drawn until this time.
  SimTime duration = 600.0;
  /// Tenant pools; arrival k lands in pool "tenant<k mod tenants>".
  int tenants = 2;
  std::uint64_t seed = 1;
  /// Override per-workload iteration counts (0 = preset default).
  int iterations_override = 0;
  /// Workload short names to draw from; empty = all of Table III.
  std::vector<std::string> mix;
  /// Hard cap on generated applications (0 = unlimited within duration).
  std::size_t max_apps = 0;
  /// Diurnal load shape: instantaneous rate follows
  ///   rate * (1 + diurnal_amplitude * sin(2*pi*t / diurnal_period)),
  /// sampled by thinning. Amplitude 0 (the default) keeps the plain
  /// Poisson draw sequence byte-identical; amplitude must stay in [0, 1].
  double diurnal_amplitude = 0.0;
  SimTime diurnal_period = 120.0;
};

/// Draw an open-loop Poisson arrival process over the workload mix.
SubmissionStream make_poisson_stream(const ArrivalConfig& config,
                                     const std::vector<NodeId>& nodes);

/// Same, but appending to an existing stream — lets a harness submit
/// hand-built applications (e.g. a batch job at t=0) ahead of the drawn
/// arrivals, which matters under FIFO: cross-job priority follows job ids,
/// i.e. the order submissions were added.
void append_poisson_arrivals(SubmissionStream& stream, const ArrivalConfig& config,
                             const std::vector<NodeId>& nodes);

}  // namespace rupam
