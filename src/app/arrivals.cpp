#include "app/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

/// Highest id of each kind in `app`; the next submission's ids start one
/// past these.
struct IdCeiling {
  JobId job = -1;
  StageId stage = -1;
  TaskId task = -1;
};

IdCeiling id_ceiling(const Application& app) {
  IdCeiling c;
  for (const Job& job : app.jobs) {
    c.job = std::max(c.job, job.id);
    for (const Stage& stage : job.stages) {
      c.stage = std::max(c.stage, stage.id);
      for (const TaskSpec& task : stage.tasks.tasks) c.task = std::max(c.task, task.id);
    }
  }
  return c;
}

}  // namespace

void SubmissionStream::add(SimTime at, Application app, const std::string& pool) {
  std::string tag = "a" + std::to_string(items_.size()) + "_";
  offset_ids(app, next_job_, next_stage_, next_task_, tag);
  if (!pool.empty()) assign_pool(app, pool);
  IdCeiling c = id_ceiling(app);
  next_job_ = std::max(next_job_, static_cast<JobId>(c.job + 1));
  next_stage_ = std::max(next_stage_, static_cast<StageId>(c.stage + 1));
  next_task_ = std::max(next_task_, static_cast<TaskId>(c.task + 1));
  items_.push_back(TimedSubmission{at, std::move(app)});
}

SubmissionStream make_poisson_stream(const ArrivalConfig& config,
                                     const std::vector<NodeId>& nodes) {
  SubmissionStream stream;
  append_poisson_arrivals(stream, config, nodes);
  return stream;
}

void append_poisson_arrivals(SubmissionStream& stream, const ArrivalConfig& config,
                             const std::vector<NodeId>& nodes) {
  if (config.rate <= 0.0) throw std::invalid_argument("arrival rate must be > 0");
  if (config.tenants <= 0) throw std::invalid_argument("tenants must be > 0");
  if (config.diurnal_amplitude < 0.0 || config.diurnal_amplitude > 1.0) {
    throw std::invalid_argument("diurnal amplitude must be in [0, 1]");
  }
  if (config.diurnal_amplitude > 0.0 && config.diurnal_period <= 0.0) {
    throw std::invalid_argument("diurnal period must be > 0");
  }
  std::vector<std::string> mix = config.mix;
  if (mix.empty()) {
    for (const WorkloadPreset& preset : table3_workloads()) mix.push_back(preset.name);
  }
  const bool diurnal = config.diurnal_amplitude > 0.0;
  const double peak_rate = config.rate * (1.0 + config.diurnal_amplitude);
  const double two_pi = 6.283185307179586;
  Rng rng(config.seed, 0x9e3779b97f4a7c15ULL);
  SimTime t = 0.0;
  std::size_t k = 0;
  while (true) {
    if (diurnal) {
      // Thinning: candidates at the peak rate, kept with probability
      // rate(t)/peak. The extra draws only happen on this branch, so the
      // legacy amplitude-0 stream is untouched.
      bool accepted = false;
      while (!accepted) {
        t += rng.exponential(peak_rate);
        if (t > config.duration) break;
        double rate_t = config.rate *
                        (1.0 + config.diurnal_amplitude *
                                   std::sin(two_pi * t / config.diurnal_period));
        accepted = rng.uniform() * peak_rate < rate_t;
      }
    } else {
      t += rng.exponential(config.rate);
    }
    if (t > config.duration) break;
    if (config.max_apps != 0 && k >= config.max_apps) break;
    const WorkloadPreset& preset = workload_preset(mix[rng.uniform_index(mix.size())]);
    Application app =
        build_workload(preset, nodes, rng.next_u64(), config.iterations_override);
    app.name += "#" + std::to_string(k);
    std::string pool = "tenant" + std::to_string(k % static_cast<std::size_t>(config.tenants));
    stream.add(t, std::move(app), pool);
    ++k;
  }
}

}  // namespace rupam
