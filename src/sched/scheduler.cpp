#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "sched/speculation.hpp"

namespace rupam {

bool SchedulerBase::TaskState::has_attempt_on(NodeId node) const {
  return std::any_of(live.begin(), live.end(),
                     [node](const Attempt& a) { return a.node == node; });
}

bool SchedulerBase::TaskState::has_gpu_attempt() const {
  return std::any_of(live.begin(), live.end(), [](const Attempt& a) { return a.gpu; });
}

SchedulerBase::SchedulerBase(SchedulerEnv env) : env_(std::move(env)) {
  if (env_.sim == nullptr || env_.cluster == nullptr) {
    throw std::invalid_argument("SchedulerBase: null environment");
  }
  if (env_.executors.size() != env_.cluster->size()) {
    throw std::invalid_argument("SchedulerBase: executor list must match cluster size");
  }
  intern_pool(kDefaultPool);  // PoolId 0, always
  live_attempts_.assign(env_.executors.size(), {});
  for (Executor* e : env_.executors) wire_executor(e);
  // Subscribing in the base constructor means the scheduler's indexes are
  // reconciled before any later subscriber (the Simulation's side-effect
  // listener) reacts to the same transition.
  membership_token_ = env_.cluster->subscribe_membership(
      [this](NodeId node, NodeLifecycle state) { handle_membership(node, state); });
}

SchedulerBase::~SchedulerBase() {
  env_.cluster->unsubscribe_membership(membership_token_);
  for (Executor* e : env_.executors) e->cache().set_change_listener(nullptr);
  speculation_timer_.cancel();
  fault_tolerance_timer_.cancel();
  preemption_timer_.cancel();
}

void SchedulerBase::wire_executor(Executor* e) {
  if (e == nullptr) throw std::invalid_argument("SchedulerBase: null executor");
  NodeId node = e->node().id();
  maybe_free_.insert(node);
  e->set_ready_handler([this, node](ExecutorId) {
    note_node_maybe_free(node);
    request_dispatch();
  });
  e->set_lost_handler([this, e](ExecutorId id) {
    trace(TraceEventType::kExecutorLost, -1, -1, 0, e->node().id(),
          "executor " + std::to_string(id) + " lost");
    request_dispatch();
  });
  e->cache().set_change_listener([this, node](const std::string& key, bool present) {
    on_cache_change(node, key, present);
  });
}

void SchedulerBase::register_executor(Executor* exec) {
  if (exec == nullptr) throw std::invalid_argument("SchedulerBase: null executor");
  if (static_cast<std::size_t>(exec->node().id()) != env_.executors.size()) {
    throw std::invalid_argument("SchedulerBase: executors must register in NodeId order");
  }
  env_.executors.push_back(exec);
  live_attempts_.push_back({});
  wire_executor(exec);
}

void SchedulerBase::handle_membership(NodeId node, NodeLifecycle state) {
  switch (state) {
    case NodeLifecycle::kProvisioning:
      break;  // nothing to index yet: the executor registers separately
    case NodeLifecycle::kLive:
      note_node_maybe_free(node);
      node_membership_changed(node, state);
      request_dispatch();
      break;
    case NodeLifecycle::kDraining:
      // No new work: drop from the candidate set now (node_usable would
      // filter it anyway, but keeping it would re-scan it every round).
      maybe_free_.erase(node);
      node_membership_changed(node, state);
      break;
    case NodeLifecycle::kDecommissioned:
      // Purge every per-node structure so the timed un-blacklist path and
      // the liveness sweep can never resurrect a departed node.
      maybe_free_.erase(node);
      blacklisted_until_.erase(node);
      recent_failures_.erase(node);
      liveness_.forget(node);
      node_membership_changed(node, state);
      request_dispatch();
      break;
  }
}

void SchedulerBase::configure_fault_tolerance(const FaultToleranceConfig& cfg) {
  fault_tolerance_ = cfg;
  if (cfg.enabled) {
    liveness_.configure({cfg.heartbeat_period, cfg.missed_heartbeats_dead});
  }
  fault_tolerance_changed();
}

bool SchedulerBase::node_usable(NodeId node) const {
  // Lifecycle gate first: draining/decommissioned/provisioning nodes never
  // take new work, independent of the fault-tolerance machinery. Static
  // fleets are always live, so this is a no-op for them.
  if (!cluster().schedulable(node)) return false;
  if (!fault_tolerance_.enabled) return true;
  if (liveness_.dead(node)) return false;
  auto it = blacklisted_until_.find(node);
  return it == blacklisted_until_.end() || sim().now() >= it->second;
}

bool SchedulerBase::node_blacklisted(NodeId node) const {
  auto it = blacklisted_until_.find(node);
  return it != blacklisted_until_.end() && sim().now() < it->second;
}

Executor* SchedulerBase::executor(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= env_.executors.size()) return nullptr;
  return env_.executors[static_cast<std::size_t>(node)];
}

bool SchedulerBase::launchable(const TaskState& task) const {
  return task.pending && !task.finished && sim().now() >= task.not_before;
}

void SchedulerBase::configure_pools(PoolConfig cfg) {
  pools_ = std::move(cfg);
  // Pools interned before this call (at minimum kDefaultPool) pick up
  // their configured weight/minShare in the dense mirror.
  for (std::uint32_t i = 0; i < pool_symbols_.size(); ++i) {
    pool_specs_[i] = pools_.spec(pool_symbols_.name(PoolId(i)));
  }
}

PoolId SchedulerBase::intern_pool(std::string_view name) {
  std::size_t before = pool_symbols_.size();
  PoolId id = pool_symbols_.intern(name);
  if (pool_symbols_.size() == before) return id;  // already known
  pool_specs_.push_back(pools_.spec(pool_symbols_.name(id)));
  pool_running_.push_back(0);
  starved_since_.push_back(-1.0);
  pool_seen_stamp_.push_back(0);
  // Recompute lexicographic ranks — O(P log P), once per distinct pool
  // name over a run, so the fair_less tie-break never compares strings.
  std::size_t n = pool_symbols_.size();
  std::vector<std::uint32_t> by_name(n);
  for (std::uint32_t i = 0; i < n; ++i) by_name[i] = i;
  std::sort(by_name.begin(), by_name.end(), [this](std::uint32_t a, std::uint32_t b) {
    return pool_symbols_.name(PoolId(a)) < pool_symbols_.name(PoolId(b));
  });
  pool_lex_rank_.resize(n);
  for (std::uint32_t rank = 0; rank < n; ++rank) {
    pool_lex_rank_[by_name[rank]] = rank;
  }
  if (audit_ != nullptr) audit_->note_pool(id, pool_symbols_.name(id));
  return id;
}

int SchedulerBase::pool_running_tasks(const std::string& pool) const {
  PoolId id = pool_symbols_.find(pool);
  return id.valid() ? pool_running_[id.index()] : 0;
}

const std::vector<PoolId>& SchedulerBase::fair_pool_order() {
  // Live-attempt counts come from the incrementally maintained per-pool
  // tally — a live attempt always belongs to an active stage (stages are
  // erased only once fully drained), so this matches summing over stages_.
  pool_snapshot_scratch_.clear();
  ++pool_stamp_;
  for (const auto& [id, stage] : stages_) {
    std::size_t p = stage.pool.index();
    if (pool_seen_stamp_[p] == pool_stamp_) continue;
    pool_seen_stamp_[p] = pool_stamp_;
    const PoolSpec& spec = pool_specs_[p];
    pool_snapshot_scratch_.push_back(
        PoolIdSnapshot{stage.pool, pool_lex_rank_[p], pool_running_[p], spec.weight,
                       spec.min_share});
  }
  std::sort(pool_snapshot_scratch_.begin(), pool_snapshot_scratch_.end(),
            [](const PoolIdSnapshot& a, const PoolIdSnapshot& b) { return fair_less(a, b); });
  pool_order_scratch_.clear();
  for (const PoolIdSnapshot& snap : pool_snapshot_scratch_) {
    pool_order_scratch_.push_back(snap.id);
  }
  return pool_order_scratch_;
}

const std::vector<SchedulerBase::StageState*>& SchedulerBase::schedulable_stages() {
  stage_order_scratch_.clear();
  for (auto& [id, stage] : stages_) stage_order_scratch_.push_back(&stage);
  auto fifo_less = [](const StageState* a, const StageState* b) {
    if (a->set.job != b->set.job) return a->set.job < b->set.job;
    return a->set.stage < b->set.stage;
  };
  if (pools_.policy == PoolPolicy::kFifo) {
    // Spark FIFO: job priority (submission order) first, then stage id —
    // identical to the historical stage-id map order for one application.
    std::sort(stage_order_scratch_.begin(), stage_order_scratch_.end(), fifo_less);
    return stage_order_scratch_;
  }
  const std::vector<PoolId>& order = fair_pool_order();
  if (pool_rank_scratch_.size() < pool_symbols_.size()) {
    pool_rank_scratch_.resize(pool_symbols_.size());
  }
  for (std::size_t i = 0; i < order.size(); ++i) pool_rank_scratch_[order[i].index()] = i;
  std::sort(stage_order_scratch_.begin(), stage_order_scratch_.end(),
            [this, &fifo_less](const StageState* a, const StageState* b) {
              std::size_t ra = pool_rank_scratch_[a->pool.index()];
              std::size_t rb = pool_rank_scratch_[b->pool.index()];
              if (ra != rb) return ra < rb;
              return fifo_less(a, b);  // FIFO within a pool
            });
  return stage_order_scratch_;
}

Locality SchedulerBase::locality_for(const TaskSpec& spec, NodeId node) const {
  return locality_of(spec, node, [this](NodeId n, const std::string& key) {
    Executor* e = executor(n);
    return e != nullptr && e->cache().contains(key);
  });
}

void SchedulerBase::attach(const Observers& observers) {
  observers_ = observers;
  trace_ = observers.trace;
  audit_ = observers.audit;
  profiler_ = observers.profiler;
  if (audit_ != nullptr) {
    // Backfill the audit's PoolId → name table for pools interned before
    // the sink was attached; later interns notify incrementally.
    for (std::uint32_t i = 0; i < pool_symbols_.size(); ++i) {
      audit_->note_pool(PoolId(i), pool_symbols_.name(PoolId(i)));
    }
  }
  bind_metrics(observers.metrics);
}

void SchedulerBase::bind_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    launch_counters_ = {};
    failure_counter_ = dispatch_counter_ = relocation_counter_ = nullptr;
    blacklist_add_counter_ = blacklist_remove_counter_ = nullptr;
    gc_seconds_counter_ = nullptr;
    delay_histogram_ = runtime_histogram_ = nullptr;
    return;
  }
  for (int l = 0; l < kNumLocalityLevels; ++l) {
    for (int spec = 0; spec < 2; ++spec) {
      launch_counters_[static_cast<std::size_t>(l * 2 + spec)] = &metrics->counter(
          "rupam_sim_tasks_launched_total",
          {{"locality", std::string(to_string(static_cast<Locality>(l)))},
           {"speculative", spec != 0 ? "true" : "false"}},
          "Task attempts launched by the scheduler");
    }
  }
  failure_counter_ = &metrics->counter("rupam_sim_task_failures_total", {},
                                       "Failed task attempts (OOM, executor loss)");
  dispatch_counter_ = &metrics->counter("rupam_sim_dispatch_rounds_total", {},
                                        "try_dispatch rounds executed");
  relocation_counter_ = &metrics->counter("rupam_sim_task_relocations_total", {},
                                          "Straggler relocations (kill + relaunch)");
  blacklist_add_counter_ =
      &metrics->counter("rupam_sim_blacklist_events_total", {{"action", "add"}},
                        "Node blacklist additions and expiries");
  blacklist_remove_counter_ =
      &metrics->counter("rupam_sim_blacklist_events_total", {{"action", "remove"}},
                        "Node blacklist additions and expiries");
  gc_seconds_counter_ = &metrics->counter("rupam_sim_gc_seconds_total", {},
                                          "Simulated GC time across successful attempts");
  delay_histogram_ = &metrics->histogram("rupam_sim_scheduler_delay_seconds",
                                         {0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0}, {},
                                         "Submit-to-launch delay of successful attempts");
  runtime_histogram_ = &metrics->histogram("rupam_sim_task_runtime_seconds",
                                           {1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0},
                                           {}, "Runtime of successful attempts");
}

void SchedulerBase::explain_next_launch(Explain explain) {
  if (audit_ == nullptr) return;
  pending_explain_ = std::move(explain);
  has_explain_ = true;
}

void SchedulerBase::submit(const TaskSet& task_set) {
  OverheadProfiler::Scope profile(profiler_, ProfileSection::kEnqueue);
  task_set.validate();
  StageState stage;
  stage.set = task_set;
  stage.pool = intern_pool(task_set.pool.empty() ? std::string_view(kDefaultPool)
                                                 : std::string_view(task_set.pool));
  stage.submit_time = sim().now();
  stage.remaining = task_set.size();
  stage.tasks.reserve(task_set.size());
  for (const auto& spec : task_set.tasks) {
    TaskState ts;
    ts.spec = spec;
    ts.submit_time = sim().now();
    stage.pending_index.insert(stage.pending_index.end(), stage.tasks.size());
    stage.tasks.push_back(std::move(ts));
  }
  auto [it, inserted] = stages_.emplace(task_set.stage, std::move(stage));
  if (!inserted) throw std::logic_error("SchedulerBase: stage already active");
  trace(TraceEventType::kStageSubmitted, task_set.stage, -1, 0, kInvalidNode,
        task_set.stage_name);
  stage_submitted(it->second);
  if (speculation_.enabled && !speculation_timer_.pending()) {
    speculation_timer_ =
        sim().schedule_after(speculation_.interval, [this] { speculation_tick(); });
  }
  if (fault_tolerance_.enabled && !fault_tolerance_timer_.pending()) {
    fault_tolerance_timer_ =
        sim().schedule_after(fault_tolerance_.check_interval, [this] { fault_tolerance_tick(); });
  }
  if (preemption_.enabled && !preemption_timer_.pending()) {
    preemption_timer_ =
        sim().schedule_after(preemption_.interval, [this] { preemption_tick(); });
  }
  request_dispatch();
}

void SchedulerBase::on_heartbeat(const NodeMetrics& metrics) {
  if (fault_tolerance_.enabled && liveness_.heartbeat(metrics.node, sim().now())) {
    trace(TraceEventType::kNodeRecovered, -1, -1, 0, metrics.node, "heartbeats resumed");
    RUPAM_INFO(sim().now(), name(), ": node ", metrics.node, " recovered (heartbeats resumed)");
    note_node_maybe_free(metrics.node);
  }
  request_dispatch();
}

void SchedulerBase::fault_tolerance_tick() {
  SimTime now = sim().now();
  for (NodeId node : liveness_.sweep(now)) {
    trace(TraceEventType::kNodeDead, -1, -1, 0, node, "missed heartbeats");
    RUPAM_WARN(now, name(), ": node ", node, " declared dead (missed heartbeats)");
  }
  for (auto it = blacklisted_until_.begin(); it != blacklisted_until_.end();) {
    if (now >= it->second) {
      trace(TraceEventType::kNodeUnblacklisted, -1, -1, 0, it->first, "blacklist expired");
      RUPAM_INFO(now, name(), ": node ", it->first, " un-blacklisted");
      ++unblacklist_count_;
      if (blacklist_remove_counter_ != nullptr) blacklist_remove_counter_->inc();
      recent_failures_.erase(it->first);
      note_node_maybe_free(it->first);
      it = blacklisted_until_.erase(it);
      request_dispatch();
    } else {
      ++it;
    }
  }
  fault_tolerance_timer_ =
      sim().schedule_after(fault_tolerance_.check_interval, [this] { fault_tolerance_tick(); });
}

void SchedulerBase::note_node_failure(NodeId node) {
  if (!fault_tolerance_.enabled) return;
  // Failures racing a decommission (the executor teardown notifies after
  // the membership purge) must not re-enter the node into the blacklist.
  if (!cluster().member(node)) return;
  SimTime now = sim().now();
  auto& times = recent_failures_[node];
  std::erase_if(times,
                [&](SimTime t) { return t < now - fault_tolerance_.failure_window; });
  times.push_back(now);
  if (static_cast<int>(times.size()) < fault_tolerance_.blacklist_max_failures) return;
  if (blacklisted_until_.count(node) > 0) return;
  // Never blacklist the last usable node — a fully-blacklisted cluster
  // would deadlock the job (Spark aborts instead; we keep running).
  bool other_usable = false;
  for (std::size_t n = 0; n < cluster().size(); ++n) {
    NodeId other = static_cast<NodeId>(n);
    if (other != node && node_usable(other)) {
      other_usable = true;
      break;
    }
  }
  if (!other_usable) return;
  blacklisted_until_[node] = now + fault_tolerance_.blacklist_duration;
  ++blacklist_count_;
  if (blacklist_add_counter_ != nullptr) blacklist_add_counter_->inc();
  trace(TraceEventType::kNodeBlacklisted, -1, -1, 0, node,
        std::to_string(times.size()) + " failures in window");
  RUPAM_WARN(now, name(), ": node ", node, " blacklisted until ",
             now + fault_tolerance_.blacklist_duration);
}

void SchedulerBase::resubmit(const TaskSet& task_set) {
  auto it = stages_.find(task_set.stage);
  if (it == stages_.end()) {
    // Stage already drained: re-activate it with just the lost partitions.
    for (const auto& spec : task_set.tasks) {
      trace(TraceEventType::kPartitionResubmitted, task_set.stage, spec.id, 0, kInvalidNode,
            "stage re-activated");
    }
    submit(task_set);
    return;
  }
  StageState& stage = it->second;
  for (const auto& spec : task_set.tasks) {
    TaskState* found = nullptr;
    for (auto& task : stage.tasks) {
      if (task.spec.id == spec.id) {
        found = &task;
        break;
      }
    }
    if (found == nullptr) {
      // The active stage is itself a partial resubmission that lacks this
      // partition (two crashes hit the same stage): graft the task in.
      stage.set.tasks.push_back(spec);
      TaskState ts;
      ts.spec = spec;
      ts.submit_time = sim().now();
      stage.tasks.push_back(std::move(ts));
      ++stage.remaining;
      trace(TraceEventType::kPartitionResubmitted, task_set.stage, spec.id, 0, kInvalidNode,
            "grafted into partial stage");
      set_task_pending(stage, stage.tasks.size() - 1, true);
      task_relaunchable(stage, stage.tasks.back());
      continue;
    }
    if (!found->finished) continue;  // already being recomputed
    found->finished = false;
    set_task_pending(stage, static_cast<std::size_t>(found - stage.tasks.data()), true);
    found->not_before = sim().now();
    ++stage.remaining;
    trace(TraceEventType::kPartitionResubmitted, task_set.stage, spec.id, 0, kInvalidNode,
          "map output lost");
    task_relaunchable(stage, *found);
  }
  request_dispatch();
}

void SchedulerBase::trace(TraceEventType type, StageId stage, TaskId task, AttemptId attempt,
                          NodeId node, std::string detail, SimTime duration) {
  if (trace_ == nullptr) return;
  TraceEvent e;
  e.time = sim().now();
  e.type = type;
  e.stage = stage;
  e.task = task;
  e.attempt = attempt;
  e.node = node;
  e.detail = std::move(detail);
  e.duration = duration;
  trace_->record(std::move(e));
}

void SchedulerBase::request_dispatch() {
  if (dispatch_requested_) return;
  dispatch_requested_ = true;
  sim().schedule_after(0.0, [this] {
    dispatch_requested_ = false;
    ++dispatch_rounds_;
    ++dispatch_work_.rounds;
    // What the pre-index O(nodes × tasks) sweep would have cost this round
    // — the baseline the indexed work counters are measured against.
    std::size_t total_tasks = 0;
    for (const auto& [id, stage] : stages_) total_tasks += stage.tasks.size();
    dispatch_work_.full_scan_equivalent += cluster().size() * total_tasks;
    if (dispatch_counter_ != nullptr) dispatch_counter_->inc();
    if (profiler_ != nullptr && profiler_->counting_allocs()) {
      // Allocation accounting (bench-only: a replaced operator new feeds
      // the counter). Rounds that launch nothing are the steady state the
      // zero-allocation gate covers; launch rounds allocate the attempt's
      // execution state by design.
      std::uint64_t allocs_before = profiler_->read_allocs();
      std::size_t launches_before = launches_;
      {
        OverheadProfiler::Scope profile(profiler_, ProfileSection::kDispatch);
        try_dispatch();
      }
      profiler_->note_dispatch_allocs(launches_ != launches_before,
                                      profiler_->read_allocs() - allocs_before);
    } else {
      OverheadProfiler::Scope profile(profiler_, ProfileSection::kDispatch);
      try_dispatch();
    }
  });
}

bool SchedulerBase::launch_task(StageState& stage, TaskState& task, NodeId node, bool use_gpu,
                                bool speculative, ResourceKind kind) {
  // Consume any staged rationale up front so a failed launch cannot leak
  // its explanation onto the next (unrelated) launch.
  Explain explain = std::move(pending_explain_);
  bool explained = has_explain_;
  has_explain_ = false;
  pending_explain_ = Explain{};
  StageId stage_id = stage.set.stage;
  // Replay seam: a branch override may redirect this one launch. The
  // interceptor sees the prospective attempt id (next_attempt is only
  // consumed further down, once the launch is committed to an executor).
  if (interceptor_) {
    if (std::optional<NodeId> forced =
            interceptor_(stage_id, task.spec.id, task.next_attempt, node)) {
      node = *forced;
    }
  }
  if (!node_usable(node)) return false;
  Executor* exec = executor(node);
  if (exec == nullptr || !exec->alive()) return false;
  std::size_t task_index = static_cast<std::size_t>(&task - stage.tasks.data());

  LaunchOptions opts;
  opts.use_gpu = use_gpu && task.spec.gpu_accelerable;
  opts.locality = locality_for(task.spec, node);
  opts.submit_time = speculative ? sim().now() : task.submit_time;
  opts.attempt = task.next_attempt++;
  AttemptId attempt_id = opts.attempt;

  auto handle = exec->launch(
      task.spec, opts,
      [this, stage_id, task_index, attempt_id](const TaskMetrics& metrics) {
        handle_success(stage_id, task_index, attempt_id, metrics);
      },
      [this, stage_id, task_index, attempt_id](const TaskSpec&, AttemptId,
                                               const std::string& reason) {
        handle_failure(stage_id, task_index, attempt_id, reason);
      });
  if (handle == nullptr) return false;

  task.live.push_back(Attempt{attempt_id, node, opts.use_gpu, kind, handle});
  note_attempt_started(node, kind, stage);
  ++launches_;
  {
    std::size_t idx = static_cast<std::size_t>(static_cast<int>(opts.locality)) * 2 +
                      (speculative ? 1 : 0);
    if (launch_counters_[idx] != nullptr) launch_counters_[idx]->inc();
  }
  if (audit_ != nullptr) {
    DispatchDecision d;
    d.time = sim().now();
    d.scheduler = name();
    d.stage = stage_id;
    d.task = task.spec.id;
    d.attempt = attempt_id;
    d.node = node;
    d.locality = opts.locality;
    d.pool = stage.pool;
    d.speculative = speculative;
    d.queue = kind;
    if (explained) {
      d.reason = std::move(explain.reason);
      d.detail = std::move(explain.detail);
      d.candidates_considered = explain.candidates;
      d.candidate_nodes = std::move(explain.candidate_nodes);
    } else {
      // Subclass gave no rationale (direct launch path): still auditable.
      d.reason = speculative ? "speculative_copy" : "direct_launch";
      d.candidates_considered = 1;
      d.candidate_nodes = {node};
    }
    audit_->record(std::move(d));
  }
  if (trace_ != nullptr) {
    // Detail string built only when a sink will record it — with tracing
    // off, the launch path constructs no strings at all.
    trace(speculative ? TraceEventType::kSpeculativeLaunched : TraceEventType::kTaskLaunched,
          stage_id, task.spec.id, attempt_id, node, std::string(to_string(opts.locality)));
  }
  if (on_task_launch_) on_task_launch_(stage.set.job, sim().now());
  if (!speculative) set_task_pending(stage, task_index, false);
  stage.last_launch = sim().now();
  RUPAM_DEBUG(sim().now(), name(), ": launched task ", task.spec.id, " attempt ", attempt_id,
              " on node ", node, speculative ? " (speculative)" : "",
              opts.use_gpu ? " [gpu]" : "");
  return true;
}

bool SchedulerBase::relocate_task(StageState& stage, TaskState& task,
                                  const std::string& reason) {
  if (task.finished || task.live.empty()) return false;
  // Kill every live attempt silently and put the task back in the queue.
  auto live = task.live;
  for (auto& attempt : live) {
    attempt.exec->kill(reason, /*notify=*/false);
    note_attempt_ended(attempt.node, attempt.kind, stage);
    note_node_maybe_free(attempt.node);
  }
  if (trace_ != nullptr) {
    trace(TraceEventType::kTaskRelocated, stage.set.stage, task.spec.id,
          task.live.front().id, task.live.front().node, reason);
  }
  task.live.clear();
  set_task_pending(stage, static_cast<std::size_t>(&task - stage.tasks.data()), true);
  ++relocations_;
  if (relocation_counter_ != nullptr) relocation_counter_->inc();
  task_relaunchable(stage, task);
  request_dispatch();
  return true;
}

bool SchedulerBase::preempt_task(StageState& stage, TaskState& task) {
  if (task.finished || task.live.empty()) return false;
  auto live = task.live;
  if (trace_ != nullptr) {
    trace(TraceEventType::kTaskPreempted, stage.set.stage, task.spec.id, live.front().id,
          live.front().node, "fair-share reclaim from pool " + pool_name(stage.pool));
  }
  for (auto& attempt : live) {
    attempt.exec->kill("preempted", /*notify=*/false);
    note_attempt_ended(attempt.node, attempt.kind, stage);
    note_node_maybe_free(attempt.node);
  }
  task.live.clear();
  set_task_pending(stage, static_cast<std::size_t>(&task - stage.tasks.data()), true);
  ++preemptions_;
  RUPAM_INFO(sim().now(), name(), ": preempted task ", task.spec.id, " (pool ",
             pool_name(stage.pool), ")");
  task_relaunchable(stage, task);
  request_dispatch();
  return true;
}

void SchedulerBase::handle_success(StageId stage_id, std::size_t task_index, AttemptId attempt,
                                   const TaskMetrics& metrics) {
  auto it = stages_.find(stage_id);
  if (it == stages_.end()) return;
  StageState& stage = it->second;
  TaskState& task = stage.tasks.at(task_index);
  // Drop this attempt from the live list (its slot is free now either way,
  // even when a sibling copy already won).
  for (const auto& a : task.live) {
    if (a.id != attempt) continue;
    note_attempt_ended(a.node, a.kind, stage);
    note_node_maybe_free(a.node);
    break;
  }
  std::erase_if(task.live, [attempt](const Attempt& a) { return a.id == attempt; });
  if (task.finished) return;  // a sibling copy already won
  task.finished = true;
  set_task_pending(stage, task_index, false);
  // First finisher wins: abort the losing copies (Spark kills them).
  for (auto& other : task.live) {
    other.exec->kill("attempt superseded", /*notify=*/false);
    note_attempt_ended(other.node, other.kind, stage);
    note_node_maybe_free(other.node);
  }
  task.live.clear();

  if (trace_ != nullptr) {
    trace(TraceEventType::kTaskFinished, stage_id, metrics.task, attempt, metrics.node,
          std::string(to_string(metrics.locality)), metrics.run_time());
  }
  if (delay_histogram_ != nullptr) delay_histogram_->observe(metrics.scheduler_delay);
  if (runtime_histogram_ != nullptr) runtime_histogram_->observe(metrics.run_time());
  if (gc_seconds_counter_ != nullptr) gc_seconds_counter_->inc(metrics.gc_time);
  completed_.push_back(metrics);
  stage.finished_runtimes.push_back(metrics.run_time());
  --stage.remaining;
  task_succeeded(stage, task, metrics);
  if (on_partition_success_) {
    on_partition_success_(stage_id, metrics.partition, metrics);
  }
  if (stage.remaining == 0) {
    RUPAM_DEBUG(sim().now(), name(), ": stage ", stage_id, " drained");
    stage_removed(stage);
    stages_.erase(stage_id);
  }
  request_dispatch();
}

void SchedulerBase::handle_failure(StageId stage_id, std::size_t task_index, AttemptId attempt,
                                   const std::string& reason) {
  auto it = stages_.find(stage_id);
  if (it == stages_.end()) return;
  StageState& stage = it->second;
  TaskState& task = stage.tasks.at(task_index);
  NodeId failed_node = kInvalidNode;
  for (const auto& a : task.live) {
    if (a.id == attempt) {
      failed_node = a.node;
      note_attempt_ended(a.node, a.kind, stage);
      note_node_maybe_free(a.node);
      break;
    }
  }
  std::erase_if(task.live, [attempt](const Attempt& a) { return a.id == attempt; });
  if (task.finished) return;

  TaskMetrics failure;
  failure.task = task.spec.id;
  failure.stage = stage_id;
  failure.stage_name = stage.set.stage_name;
  failure.partition = task.spec.partition;
  failure.node = failed_node;
  failure.failed = true;
  failure.failure_reason = reason;
  failure.finish_time = sim().now();
  failed_.push_back(failure);
  if (failure_counter_ != nullptr) failure_counter_->inc();
  trace(TraceEventType::kTaskFailed, stage_id, task.spec.id, attempt, kInvalidNode, reason);

  ++task.failures;
  RUPAM_INFO(sim().now(), name(), ": task ", task.spec.id, " attempt ", attempt, " failed (",
             reason, "), failure #", task.failures);
  if (task.live.empty()) set_task_pending(stage, task_index, true);  // relaunch
  // Exponential retry backoff: a crash-looping task (e.g. OOM on a packed
  // node) must not be re-stuffed into the same wave instantly.
  task.not_before =
      sim().now() + std::min(30.0, std::exp2(static_cast<double>(task.failures)));
  if (fault_tolerance_.enabled && failed_node != kInvalidNode) {
    note_node_failure(failed_node);
  }
  task_failed(stage, task, reason);
  request_dispatch();
}

void SchedulerBase::speculation_tick() {
  if (!stages_.empty()) request_dispatch();
  speculation_timer_ =
      sim().schedule_after(speculation_.interval, [this] { speculation_tick(); });
}

std::size_t SchedulerBase::pending_tasks() const {
  std::size_t n = 0;
  for (const auto& [id, stage] : stages_) n += stage.pending_index.size();
  return n;
}

int SchedulerBase::free_slots_total() const {
  int total = 0;
  for (std::size_t i = 0; i < env_.executors.size(); ++i) {
    if (!cluster().schedulable(static_cast<NodeId>(i))) continue;
    Executor* e = env_.executors[i];
    if (e != nullptr && e->alive()) total += e->free_slots();
  }
  return total;
}

std::map<std::string, double> SchedulerBase::fair_share_targets() const {
  // Cold reporting API (autoscaler, tests): materializes the dense
  // per-pool state back into a name-keyed map. Active pools: anything
  // currently running attempts or holding demand.
  std::map<std::string, double> targets;
  for (std::uint32_t i = 0; i < pool_symbols_.size(); ++i) {
    if (pool_running_[i] > 0) targets.emplace(pool_symbols_.name(PoolId(i)), 0.0);
  }
  for (const auto& [id, stage] : stages_) {
    if (!stage.pending_index.empty()) targets.emplace(pool_name(stage.pool), 0.0);
  }
  double total_weight = 0.0;
  for (const auto& [pool, t] : targets) total_weight += pools_.spec(pool).weight;
  if (targets.empty() || total_weight <= 0.0) return targets;
  int running_total = 0;
  for (int n : pool_running_) {
    if (n > 0) running_total += n;
  }
  double capacity = static_cast<double>(running_total + free_slots_total());
  for (auto& [pool, t] : targets) {
    t = capacity * pools_.spec(pool).weight / total_weight;
  }
  return targets;
}

void SchedulerBase::preemption_tick() {
  preemption_timer_ =
      sim().schedule_after(preemption_.interval, [this] { preemption_tick(); });
  if (pools_.policy != PoolPolicy::kFair || stages_.empty()) {
    std::fill(starved_since_.begin(), starved_since_.end(), -1.0);
    return;
  }
  SimTime now = sim().now();
  std::size_t n = pool_symbols_.size();
  // Dense per-pool demand, then the active-pool list in lexicographic
  // name order — the iteration order the historical std::map version used,
  // which decides starvation refresh order, `due` order, and first-max
  // victim ties.
  if (pool_demand_scratch_.size() < n) pool_demand_scratch_.resize(n);
  std::fill(pool_demand_scratch_.begin(), pool_demand_scratch_.end(), 0);
  for (const auto& [id, stage] : stages_) {
    pool_demand_scratch_[stage.pool.index()] += stage.pending_index.size();
  }
  active_pools_scratch_.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (pool_running_[i] > 0 || pool_demand_scratch_[i] > 0) {
      active_pools_scratch_.push_back(PoolId(i));
    }
  }
  std::sort(active_pools_scratch_.begin(), active_pools_scratch_.end(),
            [this](PoolId a, PoolId b) {
              return pool_lex_rank_[a.index()] < pool_lex_rank_[b.index()];
            });
  // Weighted fair-share targets over the active pools.
  if (pool_target_scratch_.size() < n) pool_target_scratch_.resize(n);
  double total_weight = 0.0;
  int running_total = 0;
  for (PoolId pool : active_pools_scratch_) {
    total_weight += pool_specs_[pool.index()].weight;
    running_total += pool_running_[pool.index()];
  }
  double capacity = static_cast<double>(running_total + free_slots_total());
  for (PoolId pool : active_pools_scratch_) {
    pool_target_scratch_[pool.index()] =
        total_weight <= 0.0 ? 0.0
                            : capacity * pool_specs_[pool.index()].weight / total_weight;
  }
  // Refresh starvation clocks: a pool is starved while it has demand and
  // runs below its fair share.
  due_scratch_.clear();
  for (PoolId pool : active_pools_scratch_) {
    std::size_t i = pool.index();
    bool starved = pool_demand_scratch_[i] > 0 &&
                   static_cast<double>(pool_running_[i]) + 0.5 < pool_target_scratch_[i];
    if (!starved) {
      starved_since_[i] = -1.0;
      continue;
    }
    if (starved_since_[i] < 0.0) {
      starved_since_[i] = now;
    } else if (now - starved_since_[i] >= preemption_.starvation_timeout) {
      due_scratch_.push_back(pool);
    }
  }
  if (due_scratch_.empty()) return;
  // Victim pool: the one furthest above its share, with hysteresis.
  int kills_left = preemption_.max_kills_per_round;
  for (PoolId starved_pool : due_scratch_) {
    if (kills_left <= 0) break;
    PoolId victim;
    double worst_excess = 0.0;
    for (PoolId pool : active_pools_scratch_) {
      if (pool == starved_pool) continue;
      double target = pool_target_scratch_[pool.index()];
      double over = static_cast<double>(pool_running_[pool.index()]) -
                    std::max(target * preemption_.share_slack, target + 0.5);
      if (over > worst_excess) {
        worst_excess = over;
        victim = pool;
      }
    }
    if (!victim.valid()) continue;
    // Kill the victim pool's newest attempts first: least wasted work.
    preempt_candidates_scratch_.clear();
    for (auto& [id, stage] : stages_) {
      if (stage.pool != victim) continue;
      for (std::size_t i = 0; i < stage.tasks.size(); ++i) {
        TaskState& task = stage.tasks[i];
        if (task.finished || task.live.empty()) continue;
        SimTime newest = 0.0;
        for (const auto& a : task.live) newest = std::max(newest, a.exec->launch_time());
        preempt_candidates_scratch_.emplace_back(newest, &stage, i);
      }
    }
    std::sort(preempt_candidates_scratch_.begin(), preempt_candidates_scratch_.end(),
              [](const auto& a, const auto& b) { return std::get<0>(a) > std::get<0>(b); });
    std::size_t want = static_cast<std::size_t>(
        std::max(0.0, pool_target_scratch_[starved_pool.index()] -
                          static_cast<double>(pool_running_[starved_pool.index()])));
    std::size_t killed = 0;
    for (const auto& [launched, stage, index] : preempt_candidates_scratch_) {
      if (kills_left <= 0 || killed >= std::max<std::size_t>(want, 1)) break;
      if (preempt_task(*stage, stage->tasks[index])) {
        --kills_left;
        ++killed;
      }
    }
    if (killed > 0) starved_since_[starved_pool.index()] = -1.0;  // fresh timeout
  }
}

const std::vector<std::pair<StageId, std::size_t>>& SchedulerBase::find_speculatable() {
  speculatable_scratch_.clear();
  if (!speculation_.enabled) return speculatable_scratch_;
  SpeculationRule rule{speculation_.quantile, speculation_.multiplier, 0.1};
  overdue_scratch_.clear();
  for (auto& [stage_id, stage] : stages_) {
    SimTime threshold =
        straggler_threshold(stage.finished_runtimes, stage.tasks.size(), rule, runtime_scratch_);
    if (threshold < 0.0) continue;
    for (std::size_t i = 0; i < stage.tasks.size(); ++i) {
      TaskState& task = stage.tasks[i];
      if (task.finished || task.live.size() != 1) continue;
      if (speculated_.count(task.spec.id) > 0) continue;
      SimTime elapsed = sim().now() - task.live.front().exec->launch_time();
      if (is_straggler(elapsed, threshold)) {
        overdue_scratch_.push_back({elapsed / threshold, {stage_id, i}});
      }
    }
  }
  // Most-overdue first: the worst stragglers get the next copy slots.
  std::sort(overdue_scratch_.begin(), overdue_scratch_.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  speculatable_scratch_.reserve(overdue_scratch_.size());
  for (const auto& [ratio, ref] : overdue_scratch_) speculatable_scratch_.push_back(ref);
  return speculatable_scratch_;
}

void SchedulerBase::note_speculative_launch(TaskId task) {
  speculated_.insert(task);
  ++straggler_copies_;
}

void SchedulerBase::set_task_pending(StageState& stage, std::size_t index, bool pending) {
  stage.tasks[index].pending = pending;
  bool changed = pending ? stage.pending_index.insert(index).second
                         : stage.pending_index.erase(index) > 0;
  if (changed) task_pending_changed(stage, index, pending);
}

SchedulerBase::TaskState* SchedulerBase::next_launchable(StageState& stage) {
  SimTime now = sim().now();
  for (std::size_t index : stage.pending_index) {
    ++dispatch_work_.task_checks;
    TaskState& task = stage.tasks[index];
    if (now < task.not_before) continue;  // retry backoff
    return &task;
  }
  return nullptr;
}

void SchedulerBase::note_node_maybe_free(NodeId node) {
  if (node < 0 || static_cast<std::size_t>(node) >= env_.executors.size()) return;
  maybe_free_.insert(node);
}

int SchedulerBase::live_attempts(NodeId node, ResourceKind kind) const {
  if (node < 0 || static_cast<std::size_t>(node) >= live_attempts_.size()) return 0;
  return live_attempts_[static_cast<std::size_t>(node)][static_cast<std::size_t>(kind)];
}

void SchedulerBase::note_attempt_started(NodeId node, ResourceKind kind,
                                         const StageState& stage) {
  if (node >= 0 && static_cast<std::size_t>(node) < live_attempts_.size()) {
    ++live_attempts_[static_cast<std::size_t>(node)][static_cast<std::size_t>(kind)];
  }
  ++pool_running_[stage.pool.index()];
}

void SchedulerBase::note_attempt_ended(NodeId node, ResourceKind kind,
                                       const StageState& stage) {
  if (node >= 0 && static_cast<std::size_t>(node) < live_attempts_.size()) {
    --live_attempts_[static_cast<std::size_t>(node)][static_cast<std::size_t>(kind)];
  }
  --pool_running_[stage.pool.index()];
}

const std::set<NodeId>* SchedulerBase::nodes_caching(const std::string& key) const {
  auto it = cache_locations_.find(key);
  return it == cache_locations_.end() ? nullptr : &it->second;
}

void SchedulerBase::on_cache_change(NodeId node, const std::string& key, bool present) {
  if (present) {
    cache_locations_[key].insert(node);
  } else {
    auto it = cache_locations_.find(key);
    if (it != cache_locations_.end()) {
      it->second.erase(node);
      if (it->second.empty()) cache_locations_.erase(it);
    }
  }
  cache_block_changed(node, key, present);
}

}  // namespace rupam
