#include "sched/rupam/rupam_scheduler.hpp"

#include <algorithm>
#include <optional>

#include "common/log.hpp"

namespace rupam {

RupamScheduler::RupamScheduler(SchedulerEnv env, RupamConfig config)
    : SchedulerBase(std::move(env)),
      config_(config),
      tm_(db_, TaskManagerConfig{config.res_factor, config.mem_queue_threshold}) {
  for (NodeId id : cluster().node_ids()) {
    if (cluster().node(id).gpus().total() > 0) gpu_nodes_.push_back(id);
  }
}

void RupamScheduler::on_heartbeat(const NodeMetrics& metrics) {
  {
    OverheadProfiler::Scope profile(profiler(), ProfileSection::kHeapMaintenance);
    rm_.record(metrics, sim().now());
  }
  check_memory_straggler(metrics);
  SchedulerBase::on_heartbeat(metrics);
}

void RupamScheduler::fault_tolerance_changed() {
  if (fault_tolerance_.enabled) {
    rm_.configure_liveness(
        {fault_tolerance_.heartbeat_period, fault_tolerance_.missed_heartbeats_dead});
  }
}

void RupamScheduler::node_membership_changed(NodeId node, NodeLifecycle state) {
  if (state == NodeLifecycle::kLive) {
    // Joined (or finished booting): index its devices. Keep gpu_nodes_
    // sorted so iteration order matches the construction-time scan.
    if (cluster().node(node).gpus().total() > 0 &&
        !std::binary_search(gpu_nodes_.begin(), gpu_nodes_.end(), node)) {
      gpu_nodes_.insert(std::upper_bound(gpu_nodes_.begin(), gpu_nodes_.end(), node), node);
    }
  } else if (state == NodeLifecycle::kDecommissioned) {
    gpu_nodes_.erase(std::remove(gpu_nodes_.begin(), gpu_nodes_.end(), node),
                     gpu_nodes_.end());
    rm_.forget(node);
  }
}

void RupamScheduler::stage_submitted(StageState& stage) {
  for (std::size_t i = 0; i < stage.tasks.size(); ++i) {
    tm_.enqueue(stage.tasks[i].spec, stage.set.stage, i);
  }
}

void RupamScheduler::task_pending_changed(StageState& stage, std::size_t index, bool pending) {
  // Keep the TM queues in lock-step with the task's state: a launched
  // task's refs park (the GPU queue still races them); a failed or
  // relocated task's refs come back at their original queue positions.
  if (pending) {
    tm_.note_pending_again(stage.set.stage, index);
  } else {
    tm_.note_launched(stage.set.stage, index);
  }
}

void RupamScheduler::task_succeeded(StageState& stage, TaskState& task,
                                    const TaskMetrics& metrics) {
  tm_.record_completion(task.spec, metrics);
  tm_.note_finished(stage.set.stage, static_cast<std::size_t>(&task - stage.tasks.data()));
  relocating_.erase(task.spec.id);
}

void RupamScheduler::task_failed(StageState& stage, TaskState& task, const std::string&) {
  relocating_.erase(task.spec.id);
  if (task.pending) {
    // Re-characterize with whatever the DB knows now and requeue.
    tm_.enqueue(task.spec, stage.set.stage, static_cast<std::size_t>(&task - stage.tasks.data()));
  }
}

void RupamScheduler::task_relaunchable(StageState& stage, TaskState& task) {
  tm_.enqueue(task.spec, stage.set.stage, static_cast<std::size_t>(&task - stage.tasks.data()));
}

void RupamScheduler::seed_monitor() {
  // The heartbeat stream is the architectural source of RM data; a
  // dispatch round additionally refreshes the snapshot so admission checks
  // (memory guard, over-commit limits) never race a 1-second-stale view.
  // Ids are dense 0..size()-1, so an index walk replaces node_ids()'s
  // freshly-built vector on this per-round path.
  std::size_t n = cluster().size();
  for (std::size_t i = 0; i < n; ++i) {
    NodeId id = static_cast<NodeId>(i);
    if (!cluster().member(id)) continue;  // decommissioned: no RM row
    rm_.record(cluster().node(id).metrics());
  }
}

bool RupamScheduler::node_available(const NodeMetrics& metrics, ResourceKind kind) const {
  if (!node_usable(metrics.node)) return false;
  Executor* exec = executor(metrics.node);
  if (exec == nullptr || !exec->alive()) return false;
  if (!config_.overcommit) return exec->free_slots() > 0;  // slot semantics (ablation)
  Node& node = cluster().node(metrics.node);
  double cap = config_.max_tasks_per_core * node.spec().cores + config_.overcommit_slack;
  if (exec->running_tasks() >= static_cast<int>(cap)) return false;
  // Node-health gates from real-time utilization (the RM metrics): a node
  // whose disk or NIC queue is already deep takes no further work of any
  // kind — HDDs lose aggregate throughput under deep queues, so piling on
  // is strictly counterproductive. This is the "avoid resource
  // contention" behaviour of §III-B applied at admission time.
  auto disk_active = std::max(node.disk_read().active(), node.disk_write().active());
  std::size_t disk_gate = node.spec().has_ssd ? 48 : 16;
  if (disk_active >= disk_gate) return false;
  if (node.net().active() >= 32) return false;
  // Admission counts what the dispatcher has *committed* per resource
  // queue, not instantaneous phase occupancy: a CPU-bound task in its
  // shuffle-read phase still owns its future CPU slot. Over-commit comes
  // from admitting across queues — e.g. a core-saturated node still takes
  // disk-, net-, memory- or GPU-bound work (paper §III-C2).
  int committed = live_attempts(metrics.node, kind);
  switch (kind) {
    case ResourceKind::kCpu:
      return committed < node.spec().cores;
    case ResourceKind::kMemory:
      return metrics.free_memory > 512.0 * kMiB &&
             committed < std::max(2, node.spec().cores / 4);
    case ResourceKind::kDisk:
      return committed < (node.spec().has_ssd ? config_.max_disk_tasks_ssd
                                              : config_.max_disk_tasks_hdd);
    case ResourceKind::kNetwork:
      return committed < config_.max_net_tasks;
    case ResourceKind::kGpu:
      return metrics.gpus_idle > 0;
  }
  return false;
}

bool RupamScheduler::any_idle_gpu() const {
  for (NodeId id : gpu_nodes_) {
    if (cluster().node(id).gpus().idle() > 0) return true;
  }
  return false;
}

const std::vector<RupamScheduler::Row>& RupamScheduler::collect_rows(ResourceKind kind) {
  std::vector<Row>& rows = rows_scratch_;
  rows.clear();
  auto resolve = [this](const TaskManager::PendingRef& ref, StageState** stage_out,
                        TaskState** task_out) {
    auto it = stages_.find(ref.stage);
    if (it == stages_.end()) return false;
    StageState& stage = it->second;
    if (ref.task_index >= stage.tasks.size()) return false;
    TaskState& task = stage.tasks[ref.task_index];
    if (task.spec.id != ref.task || task.finished) return false;
    *stage_out = &stage;
    *task_out = &task;
    return true;
  };
  auto add = [&](const TaskManager::PendingRef& ref) {
    StageState* stage = nullptr;
    TaskState* task = nullptr;
    if (!resolve(ref, &stage, &task)) return;
    note_task_checks(1);
    // The ref carries the interned stage name, so the DB lookup hashes one
    // 64-bit key instead of the stage-name string.
    if (launchable(*task)) {
      rows.push_back(Row{stage, task, false, db_.lookup(ref.name, task->spec.partition)});
      return;
    }
    if (kind == ResourceKind::kGpu && config_.gpu_cpu_race && !task->live.empty() &&
        !task->has_gpu_attempt()) {
      // Task is racing on a CPU; a device opened up — offer the GPU copy.
      rows.push_back(Row{stage, task, true, db_.lookup(ref.name, task->spec.partition)});
    }
  };
  const TaskManager::Queue& active = tm_.active(kind);
  if (kind == ResourceKind::kGpu && config_.gpu_cpu_race) {
    // Merge active and parked refs in enqueue order: a parked GPU ref is a
    // task already racing on a CPU that a freed device may poach.
    const TaskManager::Queue& parked = tm_.parked(kind);
    auto ait = active.begin();
    auto pit = parked.begin();
    while (ait != active.end() || pit != parked.end()) {
      if (pit == parked.end() || (ait != active.end() && ait->first < pit->first)) {
        add((ait++)->second);
      } else {
        add((pit++)->second);
      }
    }
  } else {
    for (const auto& [seq, ref] : active) add(ref);
  }
  // CPU round may also take pending GPU tasks when no device is idle
  // anywhere — the CPU side of the dual-run race (§III-C3, BLAS example).
  if (kind == ResourceKind::kCpu && config_.gpu_cpu_race && !any_idle_gpu()) {
    for (const auto& [seq, ref] : tm_.active(ResourceKind::kGpu)) {
      StageState* stage = nullptr;
      TaskState* task = nullptr;
      if (!resolve(ref, &stage, &task)) continue;
      note_task_checks(1);
      if (!launchable(*task)) continue;
      rows.push_back(Row{stage, task, false, db_.lookup(ref.name, task->spec.partition)});
    }
  }
  return rows;
}

RupamScheduler::Pick RupamScheduler::pick_from_rows(const std::vector<Row>& rows, NodeId node) {
  Bytes free_mem = cluster().node(node).free_memory();
  bool node_has_idle_gpu = cluster().node(node).gpus().idle() > 0;
  std::vector<DispatchTaskView>& views = views_scratch_;
  views.clear();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TaskSpec& spec = rows[i].task->spec;
    DispatchTaskView v;
    v.index = i;
    v.peak_memory = spec.total_memory();
    v.locality = locality_for(spec, node);
    if (const TaskCharRecord* rec = rows[i].rec) {
      // The best-node lock is meaningless for a GPU task when the node's
      // devices are all busy — its best runtime came from the GPU.
      if (!rec->gpu || node_has_idle_gpu) {
        v.opt_executor = rec->opt_executor;
        v.history_size = rec->history_resources.size();
      }
      v.expected_cost = rec->compute_time + rec->shuffle_read + rec->shuffle_write;
    }
    views.push_back(v);
  }
  DispatcherPolicy policy{config_.opt_executor_lock, config_.memory_guard,
                          config_.memory_guard_headroom};
  std::optional<std::size_t> chosen;
  if (pools_.policy == PoolPolicy::kFair) {
    for (std::size_t p : by_pool_used_) by_pool_[p].clear();
    by_pool_used_.clear();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::size_t p = pool_of(*rows[i].stage).index();
      if (by_pool_.size() <= p) by_pool_.resize(p + 1);  // first sight of a pool
      if (by_pool_[p].empty()) by_pool_used_.push_back(p);
      by_pool_[p].push_back(views[i]);
    }
  }
  if (by_pool_used_.size() > 1) {
    // FAIR: Algorithm 2 runs within one pool at a time, pools tried in
    // fair-share order, so the neediest pool has first claim on the node.
    for (PoolId pool : fair_pool_order()) {
      std::size_t p = pool.index();
      if (p >= by_pool_.size() || by_pool_[p].empty()) continue;
      chosen = algorithm2_select(by_pool_[p], node, free_mem, policy);
      if (chosen) break;
    }
  } else {
    chosen = algorithm2_select(views, node, free_mem, policy);
  }
  if (!chosen) return {};
  const Row& row = rows[*chosen];
  return Pick{row.stage, row.task, row.race};
}

const std::vector<RupamScheduler::SpecCandidate>& RupamScheduler::collect_speculative(
    ResourceKind kind) {
  std::vector<SpecCandidate>& out = spec_scratch_;
  out.clear();
  for (auto [stage_id, task_index] : find_speculatable()) {
    auto it = stages_.find(stage_id);
    if (it == stages_.end()) continue;
    StageState& stage = it->second;
    TaskState& task = stage.tasks[task_index];
    // Match the straggler's bottleneck to the resource round, so the copy
    // runs where that resource is most capable.
    ResourceKind bottleneck = ResourceKind::kCpu;
    if (const TaskCharRecord* rec = db_.lookup(task.spec.stage_name, task.spec.partition)) {
      bottleneck = tm_.bottleneck(*rec);
    }
    if (bottleneck != kind) continue;
    out.push_back(SpecCandidate{&stage, &task});
  }
  return out;
}

RupamScheduler::Pick RupamScheduler::pick_speculative(
    const std::vector<SpecCandidate>& candidates, NodeId node) {
  if (candidates.empty()) return {};
  Bytes free_mem = cluster().node(node).free_memory();
  for (const SpecCandidate& c : candidates) {
    if (c.task->has_attempt_on(node)) continue;
    if (config_.memory_guard &&
        c.task->spec.total_memory() + config_.memory_guard_headroom > free_mem) {
      continue;
    }
    return Pick{c.stage, c.task, /*gpu_race_copy=*/true};
  }
  return {};
}

bool RupamScheduler::dispatch_possible() const {
  for (std::size_t k = 0; k < kNumResourceKinds; ++k) {
    if (!tm_.active(static_cast<ResourceKind>(k)).empty()) return true;
  }
  // A parked GPU ref can still yield a race copy when a device frees up.
  if (config_.gpu_cpu_race && !tm_.parked(ResourceKind::kGpu).empty()) return true;
  if (speculation_.enabled) {
    // Mirror of straggler_threshold()'s early-out: a stage can yield
    // speculatables only once `quantile` of its tasks have finished.
    for (const auto& [id, stage] : stages_) {
      if (!stage.finished_runtimes.empty() &&
          static_cast<double>(stage.finished_runtimes.size()) >=
              speculation_.quantile * static_cast<double>(stage.tasks.size())) {
        return true;
      }
    }
  }
  return false;
}

void RupamScheduler::try_dispatch() {
  if (stages_.empty() || !dispatch_possible()) return;
  {
    OverheadProfiler::Scope profile(profiler(), ProfileSection::kHeapMaintenance);
    seed_monitor();
    rm_.sweep_dead(sim().now());
  }
  int misses = 0;
  while (misses < kNumResourceKinds) {
    ResourceKind kind = round_robin_.next();
    // One row collection per kind-visit: no task state changes while the
    // node walk runs (a launch breaks it), so per-node re-collection would
    // repeat identical work for every ranked node.
    const std::vector<Row>& rows = collect_rows(kind);
    const std::vector<SpecCandidate>* speculative = nullptr;
    auto speculatable = [&]() -> const std::vector<SpecCandidate>& {
      if (speculative == nullptr) speculative = &collect_speculative(kind);
      return *speculative;
    };
    bool launched = false;
    if (!rows.empty() || !speculatable().empty()) {
      {
        OverheadProfiler::Scope profile(profiler(), ProfileSection::kHeapMaintenance);
        rm_.ranked_into(
            kind, [this, kind](const NodeMetrics& m) { return node_available(m, kind); },
            rank_rows_scratch_, ranked_scratch_);
      }
      const std::vector<NodeId>& nodes = ranked_scratch_;
      // Walk the priority queue until a node accepts a task; launch at
      // most one task per kind-visit so no resource type is starved.
      for (std::size_t rank = 0; rank < nodes.size(); ++rank) {
        NodeId node = nodes[rank];
        Pick pick = rows.empty() ? Pick{} : pick_from_rows(rows, node);
        bool speculative_copy = false;
        if (pick.task == nullptr) {
          pick = pick_speculative(speculatable(), node);
          speculative_copy = pick.task != nullptr;
        }
        if (pick.task == nullptr) continue;
        bool use_gpu =
            pick.task->spec.gpu_accelerable && cluster().node(node).gpus().idle() > 0;
        bool as_copy = pick.gpu_race_copy;
        if (audit_enabled()) {
          // Bottleneck tag: the characterization that routed this task to a
          // per-resource queue (Algorithm 1); for never-seen tasks the queue
          // itself is the tag.
          ResourceKind tag = kind;
          if (const TaskCharRecord* rec =
                  db_.lookup(pick.task->spec.stage_name, pick.task->spec.partition)) {
            tag = tm_.bottleneck(*rec);
          }
          Explain e;
          e.reason = speculative_copy ? "rupam_speculative"
                     : as_copy        ? "rupam_gpu_race"
                                      : "rupam_heap_match";
          e.detail = "tag=" + std::string(to_string(tag)) +
                     " queue=" + std::string(to_string(kind)) +
                     " rank=" + std::to_string(rank);
          e.candidates = static_cast<int>(nodes.size());
          e.candidate_nodes = nodes;
          explain_next_launch(std::move(e));
        }
        if (!launch_task(*pick.stage, *pick.task, node, use_gpu, as_copy, kind)) continue;
        if (as_copy) {
          if (speculative_copy) {
            note_speculative_launch(pick.task->spec.id);
          } else {
            ++gpu_races_;
          }
        }
        launched = true;
        break;
      }
    }
    misses = launched ? 0 : misses + 1;
  }
}

void RupamScheduler::check_memory_straggler(const NodeMetrics& metrics) {
  if (!config_.memory_straggler) return;
  if (metrics.free_memory >= config_.low_memory_watermark) return;
  Executor* exec = executor(metrics.node);
  if (exec == nullptr || exec->running_tasks() < 2) return;
  // Rate-limit per node: relocation is a remedial action, not a policy —
  // killing the top consumer every heartbeat would thrash.
  auto it = last_relocation_.find(metrics.node);
  if (it != last_relocation_.end() && sim().now() - it->second < 10.0) return;

  // Find the largest memory consumer on this node across active stages.
  StageState* victim_stage = nullptr;
  TaskState* victim = nullptr;
  Bytes victim_mem = 0.0;
  for (auto& [id, stage] : stages_) {
    for (auto& task : stage.tasks) {
      if (task.finished || relocating_.count(task.spec.id) > 0) continue;
      for (const auto& attempt : task.live) {
        if (attempt.node != metrics.node) continue;
        if (attempt.exec->reserved_memory() > victim_mem) {
          victim_mem = attempt.exec->reserved_memory();
          victim_stage = &stage;
          victim = &task;
        }
      }
    }
  }
  if (victim == nullptr) return;
  RUPAM_INFO(sim().now(), "RUPAM: memory straggler — relocating task ", victim->spec.id,
             " off node ", metrics.node);
  relocating_.insert(victim->spec.id);
  last_relocation_[metrics.node] = sim().now();
  relocate_task(*victim_stage, *victim, "memory straggler");
}

}  // namespace rupam
