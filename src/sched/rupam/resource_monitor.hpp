// RUPAM's Resource Monitor (RM, paper §III-B1).
//
// A central Monitor records the per-node metrics that the distributed
// Collectors piggy-back on heartbeats (our HeartbeatService). For each
// scheduling round it materializes one priority queue per resource type,
// ordered by capacity/capability descending, then utilization ascending —
// "most powerful first, least used first". Queues are rebuilt per round,
// matching the paper's design of emptying them between offer rounds.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/node.hpp"

namespace rupam {

class ResourceMonitor {
 public:
  /// Ingest one heartbeat (the paper's executordataMap analogue).
  void record(const NodeMetrics& metrics);

  const NodeMetrics* latest(NodeId node) const;
  bool has(NodeId node) const { return latest(node) != nullptr; }
  std::size_t tracked_nodes() const { return latest_.size(); }
  void clear() { latest_.clear(); }

  /// The per-resource priority queue: nodes passing `admit`, best first.
  std::vector<NodeId> ranked(ResourceKind kind,
                             const std::function<bool(const NodeMetrics&)>& admit) const;

 private:
  std::unordered_map<NodeId, NodeMetrics> latest_;
};

}  // namespace rupam
