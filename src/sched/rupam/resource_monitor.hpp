// RUPAM's Resource Monitor (RM, paper §III-B1).
//
// A central Monitor records the per-node metrics that the distributed
// Collectors piggy-back on heartbeats (our HeartbeatService). For each
// scheduling round it materializes one priority queue per resource type,
// ordered by capacity/capability descending, then utilization ascending —
// "most powerful first, least used first". Queues are rebuilt per round,
// matching the paper's design of emptying them between offer rounds.
//
// With liveness configured, the heartbeat-path record() overload also
// stamps last-seen times so the RM can declare silent nodes dead and drop
// them from every queue (RUPAM's own view of node failure, independent of
// the base scheduler's blacklist).
#pragma once

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/liveness.hpp"
#include "cluster/node.hpp"

namespace rupam {

class ResourceMonitor {
 public:
  /// Ingest one metrics snapshot (the paper's executordataMap analogue).
  /// Does not touch liveness — used by dispatch-round refreshes.
  void record(const NodeMetrics& metrics);
  /// Heartbeat-path ingest: also stamps the node's last-seen time.
  void record(const NodeMetrics& metrics, SimTime now);

  /// Enable missed-heartbeat detection (disabled until configured).
  void configure_liveness(const LivenessConfig& cfg);
  bool liveness_enabled() const { return liveness_enabled_; }
  /// Declare silent nodes dead; returns the newly-dead ones.
  std::vector<NodeId> sweep_dead(SimTime now);
  bool dead(NodeId node) const { return liveness_enabled_ && liveness_.dead(node); }

  const NodeMetrics* latest(NodeId node) const;
  bool has(NodeId node) const { return latest(node) != nullptr; }
  std::size_t tracked_nodes() const { return latest_.size(); }
  void clear() {
    latest_.clear();
    liveness_.clear();
  }
  /// Drop one node's row entirely (decommissioned: no metrics, no liveness
  /// state, never ranked again).
  void forget(NodeId node) {
    latest_.erase(node);
    liveness_.forget(node);
  }

  /// The per-resource priority queue: live nodes passing `admit`, best
  /// first.
  std::vector<NodeId> ranked(ResourceKind kind,
                             const std::function<bool(const NodeMetrics&)>& admit) const;

  /// Dispatch-path variant of ranked(): identical ordering, but fills
  /// caller-owned scratch instead of returning a fresh vector, and takes
  /// the admission predicate as a template parameter so large captures
  /// never round-trip through std::function's heap fallback.
  template <class Admit>
  void ranked_into(ResourceKind kind, Admit&& admit, std::vector<const NodeMetrics*>& rows,
                   std::vector<NodeId>& out) const {
    rows.clear();
    for (const auto& [id, m] : latest_) {
      if (dead(id)) continue;
      if (admit(m)) rows.push_back(&m);
    }
    std::sort(rows.begin(), rows.end(), [kind](const NodeMetrics* a, const NodeMetrics* b) {
      double ca = a->capability(kind), cb = b->capability(kind);
      if (ca != cb) return ca > cb;
      double ua = a->utilization(kind), ub = b->utilization(kind);
      if (ua != ub) return ua < ub;
      return a->node < b->node;  // deterministic tie-break
    });
    out.clear();
    for (const NodeMetrics* row : rows) out.push_back(row->node);
  }

 private:
  std::unordered_map<NodeId, NodeMetrics> latest_;
  NodeLivenessTracker liveness_;
  bool liveness_enabled_ = false;
};

}  // namespace rupam
