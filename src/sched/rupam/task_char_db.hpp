// DB_task_char (paper §III-B2): persistent task-characteristics store.
//
// Keyed by (stage name, partition) — stable across iterations and job
// re-runs, which is why RUPAM's benefit grows with iteration count
// (Fig 6). Records the Table I task metrics plus the best-node lock
// (optexecutor / historyresource) used by Algorithm 2.
//
// Stage names are interned once (StageNameId) and the record map keys on
// the packed (id, partition) pair, so the dispatch-path lookup hashes one
// 64-bit integer instead of concatenating strings. The historical string
// API survives on top as a non-interning find — a stage name containing
// any delimiter character ('#', ':') can never alias another stage's
// records, because the key is the interned id, not a joined string.
//
// The paper serializes DB writes through a helper thread with a write
// queue that reads are served from first; inside a discrete-event
// simulation all accesses are already serialized, so the map below is the
// functional equivalent of queue+thread without the plumbing.
#pragma once

#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/symbol.hpp"
#include "common/types.hpp"
#include "tasks/task_metrics.hpp"

namespace rupam {

struct TaskCharRecord {
  int runs = 0;
  // Smoothed Table I metrics from completed attempts.
  SimTime compute_time = 0.0;
  SimTime shuffle_read = 0.0;
  SimTime shuffle_write = 0.0;
  Bytes peak_memory = 0.0;
  bool gpu = false;
  // Best observed placement (paper: optexecutor) and its runtime.
  NodeId opt_executor = kInvalidNode;
  SimTime best_runtime = std::numeric_limits<double>::infinity();
  // Resource bottlenecks observed over the task's life (historyresource).
  std::set<ResourceKind> history_resources;
};

class TaskCharDb {
 public:
  // ---- String API (cold paths, tests): resolves through the interner.
  const TaskCharRecord* lookup(const std::string& stage_name, int partition) const;

  /// Fold one completed attempt into the record (exponential smoothing so
  /// the "most updated information" dominates, per §III-B2).
  TaskCharRecord& update(const std::string& stage_name, int partition,
                         const TaskMetrics& metrics, ResourceKind bottleneck);

  /// Mark a whole stage as GPU-accelerated (the paper marks all tasks of a
  /// stage GPU once RM sees any of them touch a device).
  void mark_stage_gpu(const std::string& stage_name);
  bool stage_uses_gpu(const std::string& stage_name) const;

  // ---- Id API (dispatch path): O(1), never allocates.
  /// Intern a stage name (TaskManager does this once per enqueue).
  StageNameId intern_stage(std::string_view stage_name);
  /// Id of a stage name without interning; invalid when never seen.
  StageNameId find_stage(std::string_view stage_name) const {
    return stage_names_.find(stage_name);
  }
  const TaskCharRecord* lookup(StageNameId stage, int partition) const;
  bool stage_uses_gpu(StageNameId stage) const {
    return stage.valid() && stage.index() < gpu_stages_.size() &&
           gpu_stages_[stage.index()] != 0;
  }

  void clear();
  std::size_t size() const { return records_.size(); }

 private:
  /// (StageNameId, partition) packed into one hashable word. Partition is
  /// an int in practice ≥ 0 and < 2^32 per stage; the id occupies the
  /// high half, so distinct stages can never collide whatever their names.
  static std::uint64_t key(StageNameId stage, int partition) {
    return (static_cast<std::uint64_t>(stage.value) << 32) |
           static_cast<std::uint32_t>(partition);
  }
  /// splitmix64 finalizer — the identity hash std::hash<uint64_t> usually
  /// is would cluster (stage << 32 | partition) keys into few buckets.
  struct KeyHash {
    std::size_t operator()(std::uint64_t x) const {
      x += 0x9e3779b97f4a7c15ull;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

  TypedSymbolTable<StageNameTag> stage_names_;
  std::unordered_map<std::uint64_t, TaskCharRecord, KeyHash> records_;
  /// Dense StageNameId → uses-GPU flag.
  std::vector<std::uint8_t> gpu_stages_;
};

}  // namespace rupam
