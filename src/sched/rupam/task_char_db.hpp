// DB_task_char (paper §III-B2): persistent task-characteristics store.
//
// Keyed by (stage name, partition) — stable across iterations and job
// re-runs, which is why RUPAM's benefit grows with iteration count
// (Fig 6). Records the Table I task metrics plus the best-node lock
// (optexecutor / historyresource) used by Algorithm 2.
//
// The paper serializes DB writes through a helper thread with a write
// queue that reads are served from first; inside a discrete-event
// simulation all accesses are already serialized, so the map below is the
// functional equivalent of queue+thread without the plumbing.
#pragma once

#include <limits>
#include <set>
#include <string>
#include <unordered_map>

#include "common/types.hpp"
#include "tasks/task_metrics.hpp"

namespace rupam {

struct TaskCharRecord {
  int runs = 0;
  // Smoothed Table I metrics from completed attempts.
  SimTime compute_time = 0.0;
  SimTime shuffle_read = 0.0;
  SimTime shuffle_write = 0.0;
  Bytes peak_memory = 0.0;
  bool gpu = false;
  // Best observed placement (paper: optexecutor) and its runtime.
  NodeId opt_executor = kInvalidNode;
  SimTime best_runtime = std::numeric_limits<double>::infinity();
  // Resource bottlenecks observed over the task's life (historyresource).
  std::set<ResourceKind> history_resources;
};

class TaskCharDb {
 public:
  const TaskCharRecord* lookup(const std::string& stage_name, int partition) const;

  /// Fold one completed attempt into the record (exponential smoothing so
  /// the "most updated information" dominates, per §III-B2).
  TaskCharRecord& update(const std::string& stage_name, int partition,
                         const TaskMetrics& metrics, ResourceKind bottleneck);

  /// Mark a whole stage as GPU-accelerated (the paper marks all tasks of a
  /// stage GPU once RM sees any of them touch a device).
  void mark_stage_gpu(const std::string& stage_name);
  bool stage_uses_gpu(const std::string& stage_name) const;

  void clear();
  std::size_t size() const { return records_.size(); }

 private:
  static std::string key(const std::string& stage_name, int partition);

  std::unordered_map<std::string, TaskCharRecord> records_;
  std::set<std::string> gpu_stages_;
};

}  // namespace rupam
