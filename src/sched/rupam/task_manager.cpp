#include "sched/rupam/task_manager.hpp"

#include <algorithm>
#include <stdexcept>

namespace rupam {

TaskManager::TaskManager(TaskCharDb& db, TaskManagerConfig config) : db_(db), config_(config) {
  if (config_.res_factor <= 0.0) throw std::invalid_argument("TaskManager: res_factor <= 0");
}

ResourceKind TaskManager::bottleneck(SimTime compute_time, SimTime shuffle_read,
                                     SimTime shuffle_write, bool gpu) const {
  // Algorithm 1, line for line.
  if (gpu) return ResourceKind::kGpu;
  if (compute_time > config_.res_factor * std::max(shuffle_read, shuffle_write)) {
    return ResourceKind::kCpu;
  }
  if (shuffle_read > config_.res_factor * shuffle_write) return ResourceKind::kNetwork;
  return ResourceKind::kDisk;
}

ResourceKind TaskManager::bottleneck(const TaskCharRecord& rec) const {
  return bottleneck(rec.compute_time, rec.shuffle_read, rec.shuffle_write, rec.gpu);
}

ResourceKind TaskManager::bottleneck(const TaskMetrics& metrics, bool gpu) const {
  return bottleneck(metrics.compute_time, metrics.shuffle_read_time,
                    metrics.shuffle_write_time, gpu || metrics.used_gpu);
}

std::vector<ResourceKind> TaskManager::classify(const TaskSpec& spec) const {
  std::vector<ResourceKind> kinds;
  const TaskCharRecord* rec = db_.lookup(spec.stage_name, spec.partition);
  bool stage_gpu = db_.stage_uses_gpu(spec.stage_name) || spec.gpu_accelerable;
  if (rec != nullptr) {
    kinds.push_back(bottleneck(rec->compute_time, rec->shuffle_read, rec->shuffle_write,
                               rec->gpu || stage_gpu));
    if (rec->peak_memory > config_.mem_queue_threshold) {
      kinds.push_back(ResourceKind::kMemory);
    }
    return kinds;
  }
  if (stage_gpu) {
    kinds.push_back(ResourceKind::kGpu);
    return kinds;
  }
  if (spec.is_shuffle_map) {
    // First sighting of a map task: "bounded by all types of resources".
    kinds = {ResourceKind::kCpu, ResourceKind::kMemory, ResourceKind::kDisk,
             ResourceKind::kNetwork};
    return kinds;
  }
  // First sighting of a reduce/result task: network bound (shuffle fetch +
  // result send), relaxed by TM in later iterations once metrics exist.
  kinds.push_back(ResourceKind::kNetwork);
  return kinds;
}

void TaskManager::enqueue(const TaskSpec& spec, StageId stage, std::size_t task_index) {
  std::vector<Slot>& slots = slots_[{stage, task_index}];
  StageNameId name = db_.intern_stage(spec.stage_name);
  for (ResourceKind kind : classify(spec)) {
    std::uint64_t seq = next_seq_++;
    active_[static_cast<std::size_t>(kind)].emplace(
        seq, PendingRef{stage, task_index, spec.id, name});
    slots.push_back(Slot{kind, seq});
  }
}

void TaskManager::note_launched(StageId stage, std::size_t task_index) {
  auto it = slots_.find({stage, task_index});
  if (it == slots_.end()) return;
  for (const Slot& slot : it->second) {
    Queue& from = active_[static_cast<std::size_t>(slot.kind)];
    auto node = from.extract(slot.seq);
    if (!node.empty()) parked_[static_cast<std::size_t>(slot.kind)].insert(std::move(node));
  }
}

void TaskManager::note_pending_again(StageId stage, std::size_t task_index) {
  auto it = slots_.find({stage, task_index});
  if (it == slots_.end()) return;
  for (const Slot& slot : it->second) {
    Queue& from = parked_[static_cast<std::size_t>(slot.kind)];
    auto node = from.extract(slot.seq);
    // Re-inserting under the original seq restores the queue position.
    if (!node.empty()) active_[static_cast<std::size_t>(slot.kind)].insert(std::move(node));
  }
}

void TaskManager::note_finished(StageId stage, std::size_t task_index) {
  auto it = slots_.find({stage, task_index});
  if (it == slots_.end()) return;
  for (const Slot& slot : it->second) {
    active_[static_cast<std::size_t>(slot.kind)].erase(slot.seq);
    parked_[static_cast<std::size_t>(slot.kind)].erase(slot.seq);
  }
  slots_.erase(it);
}

const TaskManager::Queue& TaskManager::active(ResourceKind kind) const {
  return active_[static_cast<std::size_t>(kind)];
}

const TaskManager::Queue& TaskManager::parked(ResourceKind kind) const {
  return parked_[static_cast<std::size_t>(kind)];
}

void TaskManager::clear_queues() {
  for (auto& q : active_) q.clear();
  for (auto& q : parked_) q.clear();
  slots_.clear();
  next_seq_ = 0;
}

void TaskManager::record_completion(const TaskSpec& spec, const TaskMetrics& metrics) {
  ResourceKind kind = bottleneck(metrics, spec.gpu_accelerable && metrics.used_gpu);
  db_.update(spec.stage_name, spec.partition, metrics, kind);
  if (metrics.used_gpu) db_.mark_stage_gpu(spec.stage_name);
}

}  // namespace rupam
