// RUPAM: the heterogeneity-aware task scheduler (paper §III).
//
// Wires the three components together:
//   ResourceMonitor — per-node metrics from extended heartbeats;
//   TaskManager     — Algorithm 1 characterization + per-resource queues
//                     backed by DB_task_char;
//   Dispatcher      — Algorithm 2 node/task matching with round-robin
//                     resource fairness, memory guard, optexecutor lock.
// Plus the §III-C mechanisms: utilization-based over-commit (a node is
// available as long as the offered resource has headroom, not when a core
// slot frees), memory-straggler relocation, and the CPU↔GPU dual-run race.
//
// Dispatch is indexed: per-resource admission reads the base scheduler's
// live-attempt counters (O(1) per node instead of a scan over every
// attempt), and the candidate rows for a kind-visit are collected once
// from the TaskManager's active queue — within a kind-visit no task state
// changes until a launch breaks the node walk, so the per-node rebuild of
// the old code did identical work N times.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "sched/rupam/dispatcher.hpp"
#include "sched/rupam/resource_monitor.hpp"
#include "sched/rupam/task_char_db.hpp"
#include "sched/rupam/task_manager.hpp"
#include "sched/scheduler.hpp"

namespace rupam {

struct RupamConfig {
  /// Algorithm 1 sensitivity.
  double res_factor = 2.0;
  /// Tasks above this peak memory also join the MEM queue.
  Bytes mem_queue_threshold = 1.0 * kGiB;
  /// Free-memory level below which RM flags a memory straggler.
  Bytes low_memory_watermark = 768.0 * kMiB;
  /// Safety margin the memory guard keeps free beyond a task's footprint.
  Bytes memory_guard_headroom = 768.0 * kMiB;
  /// Per-resource admission limits for over-commit: maximum concurrent
  /// phases the dispatcher will stack on one node per resource.
  /// SSDs sustain deep I/O queues; HDDs thrash — the dispatcher stacks
  /// accordingly (this is where "schedule I/O tasks to SSD nodes" bites).
  int max_disk_tasks_ssd = 16;
  int max_disk_tasks_hdd = 6;
  int max_net_tasks = 12;
  /// Hard per-node cap (sanity bound on over-commit).
  double max_tasks_per_core = 1.0;
  /// Flat extra slots on top of the per-core cap (lets a core-saturated
  /// node still take a few mismatched-resource tasks, e.g. GPU work).
  int overcommit_slack = 8;
  /// Feature toggles (ablation benches flip these).
  bool opt_executor_lock = true;
  bool memory_guard = true;
  bool memory_straggler = true;
  bool gpu_cpu_race = true;
  bool overcommit = true;
};

class RupamScheduler : public SchedulerBase {
 public:
  RupamScheduler(SchedulerEnv env, RupamConfig config = {});

  std::string name() const override { return "RUPAM"; }

  void on_heartbeat(const NodeMetrics& metrics) override;

  /// Exposed so experiments can clear DB_task_char between repetitions
  /// (the paper clears it after each of the five Fig-5 runs).
  TaskCharDb& db() { return db_; }
  const RupamConfig& config() const { return config_; }
  ResourceMonitor& resource_monitor() { return rm_; }
  std::size_t gpu_races() const { return gpu_races_; }

 protected:
  void try_dispatch() override;
  void fault_tolerance_changed() override;
  void node_membership_changed(NodeId node, NodeLifecycle state) override;
  void stage_submitted(StageState& stage) override;
  void task_pending_changed(StageState& stage, std::size_t index, bool pending) override;
  void task_succeeded(StageState& stage, TaskState& task, const TaskMetrics& metrics) override;
  void task_failed(StageState& stage, TaskState& task, const std::string& reason) override;
  void task_relaunchable(StageState& stage, TaskState& task) override;

 private:
  struct Pick {
    StageState* stage = nullptr;
    TaskState* task = nullptr;
    bool gpu_race_copy = false;
  };
  /// One candidate of a kind-visit: a waiting task (or a running CPU copy
  /// the GPU queue may race) with its DB record resolved once.
  struct Row {
    StageState* stage = nullptr;
    TaskState* task = nullptr;
    bool race = false;
    const TaskCharRecord* rec = nullptr;
  };
  struct SpecCandidate {
    StageState* stage = nullptr;
    TaskState* task = nullptr;
  };

  /// Can `node` take one more task whose bottleneck is `kind`?
  bool node_available(const NodeMetrics& metrics, ResourceKind kind) const;
  /// All rows the `kind` queue offers this kind-visit, in queue order:
  /// active refs that are launchable, plus (GPU queue under racing) parked
  /// refs whose running task a freed device may poach, plus (CPU queue
  /// when no device is idle anywhere) the GPU queue's launchable refs.
  /// Returns a reference into reused scratch — valid until the next call.
  const std::vector<Row>& collect_rows(ResourceKind kind);
  /// Algorithm 2 over the collected rows for one node.
  Pick pick_from_rows(const std::vector<Row>& rows, NodeId node);
  /// Stragglers whose bottleneck matches `kind` (straggler path of
  /// Algorithm 2), computed once per kind-visit. Reference into scratch.
  const std::vector<SpecCandidate>& collect_speculative(ResourceKind kind);
  Pick pick_speculative(const std::vector<SpecCandidate>& candidates, NodeId node);
  /// Cheap pre-check: could any kind-visit possibly launch something?
  bool dispatch_possible() const;
  bool any_idle_gpu() const;
  void check_memory_straggler(const NodeMetrics& metrics);
  void seed_monitor();

  RupamConfig config_;
  TaskCharDb db_;
  TaskManager tm_;
  ResourceMonitor rm_;
  ResourceRoundRobin round_robin_;
  std::size_t gpu_races_ = 0;
  std::vector<NodeId> gpu_nodes_;  // nodes that physically carry devices
  std::set<TaskId> relocating_;  // guards repeated straggler kills per wave
  std::map<NodeId, SimTime> last_relocation_;  // per-node relocation rate limit

  // Dispatch-path scratch, reused across rounds: capacity settles at the
  // workload's high-water mark, after which kind-visits never allocate.
  std::vector<Row> rows_scratch_;
  std::vector<SpecCandidate> spec_scratch_;
  std::vector<DispatchTaskView> views_scratch_;
  /// Dense PoolId.index() → per-pool views (FAIR bucketing). Buckets keep
  /// their capacity across rounds; `by_pool_used_` lists the dirty ones so
  /// clearing is O(pools seen this call), not O(all pools ever).
  std::vector<std::vector<DispatchTaskView>> by_pool_;
  std::vector<std::size_t> by_pool_used_;
  std::vector<const NodeMetrics*> rank_rows_scratch_;
  std::vector<NodeId> ranked_scratch_;
};

}  // namespace rupam
