#include "sched/rupam/resource_monitor.hpp"

#include <algorithm>

namespace rupam {

void ResourceMonitor::record(const NodeMetrics& metrics) { latest_[metrics.node] = metrics; }

void ResourceMonitor::record(const NodeMetrics& metrics, SimTime now) {
  latest_[metrics.node] = metrics;
  if (liveness_enabled_) liveness_.heartbeat(metrics.node, now);
}

void ResourceMonitor::configure_liveness(const LivenessConfig& cfg) {
  liveness_.configure(cfg);
  liveness_enabled_ = true;
}

std::vector<NodeId> ResourceMonitor::sweep_dead(SimTime now) {
  if (!liveness_enabled_) return {};
  return liveness_.sweep(now);
}

const NodeMetrics* ResourceMonitor::latest(NodeId node) const {
  auto it = latest_.find(node);
  return it == latest_.end() ? nullptr : &it->second;
}

std::vector<NodeId> ResourceMonitor::ranked(
    ResourceKind kind, const std::function<bool(const NodeMetrics&)>& admit) const {
  std::vector<const NodeMetrics*> rows;
  rows.reserve(latest_.size());
  for (const auto& [id, m] : latest_) {
    if (dead(id)) continue;
    if (!admit || admit(m)) rows.push_back(&m);
  }
  std::sort(rows.begin(), rows.end(), [kind](const NodeMetrics* a, const NodeMetrics* b) {
    double ca = a->capability(kind), cb = b->capability(kind);
    if (ca != cb) return ca > cb;
    double ua = a->utilization(kind), ub = b->utilization(kind);
    if (ua != ub) return ua < ub;
    return a->node < b->node;  // deterministic tie-break
  });
  std::vector<NodeId> out(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) out[i] = rows[i]->node;
  return out;
}

}  // namespace rupam
