#include "sched/rupam/task_char_db.hpp"

namespace rupam {
namespace {
// Weight of the newest observation; history decays geometrically.
constexpr double kAlpha = 0.5;

double smooth(double old_value, double new_value, int runs) {
  if (runs <= 0) return new_value;
  return (1.0 - kAlpha) * old_value + kAlpha * new_value;
}
}  // namespace

std::string TaskCharDb::key(const std::string& stage_name, int partition) {
  return stage_name + "#" + std::to_string(partition);
}

const TaskCharRecord* TaskCharDb::lookup(const std::string& stage_name, int partition) const {
  auto it = records_.find(key(stage_name, partition));
  return it == records_.end() ? nullptr : &it->second;
}

TaskCharRecord& TaskCharDb::update(const std::string& stage_name, int partition,
                                   const TaskMetrics& metrics, ResourceKind bottleneck) {
  TaskCharRecord& rec = records_[key(stage_name, partition)];
  rec.compute_time = smooth(rec.compute_time, metrics.compute_time, rec.runs);
  rec.shuffle_read = smooth(rec.shuffle_read, metrics.shuffle_read_time, rec.runs);
  rec.shuffle_write = smooth(rec.shuffle_write, metrics.shuffle_write_time, rec.runs);
  rec.peak_memory = smooth(rec.peak_memory, metrics.peak_memory, rec.runs);
  rec.gpu = rec.gpu || metrics.used_gpu;
  rec.history_resources.insert(bottleneck);
  if (metrics.run_time() < rec.best_runtime) {
    rec.best_runtime = metrics.run_time();
    rec.opt_executor = metrics.node;
  }
  ++rec.runs;
  return rec;
}

void TaskCharDb::mark_stage_gpu(const std::string& stage_name) { gpu_stages_.insert(stage_name); }

bool TaskCharDb::stage_uses_gpu(const std::string& stage_name) const {
  return gpu_stages_.count(stage_name) > 0;
}

void TaskCharDb::clear() {
  records_.clear();
  gpu_stages_.clear();
}

}  // namespace rupam
