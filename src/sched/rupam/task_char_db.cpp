#include "sched/rupam/task_char_db.hpp"

#include <algorithm>

namespace rupam {
namespace {
// Weight of the newest observation; history decays geometrically.
constexpr double kAlpha = 0.5;

double smooth(double old_value, double new_value, int runs) {
  if (runs <= 0) return new_value;
  return (1.0 - kAlpha) * old_value + kAlpha * new_value;
}
}  // namespace

StageNameId TaskCharDb::intern_stage(std::string_view stage_name) {
  StageNameId id = stage_names_.intern(stage_name);
  if (gpu_stages_.size() < stage_names_.size()) gpu_stages_.resize(stage_names_.size(), 0);
  return id;
}

const TaskCharRecord* TaskCharDb::lookup(StageNameId stage, int partition) const {
  if (!stage.valid()) return nullptr;
  auto it = records_.find(key(stage, partition));
  return it == records_.end() ? nullptr : &it->second;
}

const TaskCharRecord* TaskCharDb::lookup(const std::string& stage_name, int partition) const {
  return lookup(stage_names_.find(stage_name), partition);
}

TaskCharRecord& TaskCharDb::update(const std::string& stage_name, int partition,
                                   const TaskMetrics& metrics, ResourceKind bottleneck) {
  TaskCharRecord& rec = records_[key(intern_stage(stage_name), partition)];
  rec.compute_time = smooth(rec.compute_time, metrics.compute_time, rec.runs);
  rec.shuffle_read = smooth(rec.shuffle_read, metrics.shuffle_read_time, rec.runs);
  rec.shuffle_write = smooth(rec.shuffle_write, metrics.shuffle_write_time, rec.runs);
  rec.peak_memory = smooth(rec.peak_memory, metrics.peak_memory, rec.runs);
  rec.gpu = rec.gpu || metrics.used_gpu;
  rec.history_resources.insert(bottleneck);
  if (metrics.run_time() < rec.best_runtime) {
    rec.best_runtime = metrics.run_time();
    rec.opt_executor = metrics.node;
  }
  ++rec.runs;
  return rec;
}

void TaskCharDb::mark_stage_gpu(const std::string& stage_name) {
  gpu_stages_[intern_stage(stage_name).index()] = 1;
}

bool TaskCharDb::stage_uses_gpu(const std::string& stage_name) const {
  return stage_uses_gpu(stage_names_.find(stage_name));
}

void TaskCharDb::clear() {
  records_.clear();
  // Interned names survive a clear (ids stay stable across the paper's
  // per-run DB resets); only the learned state is dropped.
  std::fill(gpu_stages_.begin(), gpu_stages_.end(), 0);
}

}  // namespace rupam
