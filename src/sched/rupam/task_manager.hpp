// RUPAM's Task Manager (TM, paper §III-B2 + Algorithm 1).
//
// Characterizes tasks into per-resource pending queues:
//  * known tasks (present in DB_task_char) are classified by Algorithm 1
//    over their recorded metrics;
//  * first-time map tasks are assumed bounded by every resource
//    (enqueued in all queues);
//  * first-time reduce/result tasks are assumed network-bound.
// Queues are drained by the Dispatcher and reset between waves.
#pragma once

#include <array>
#include <vector>

#include "common/units.hpp"
#include "sched/rupam/task_char_db.hpp"
#include "tasks/task.hpp"

namespace rupam {

struct TaskManagerConfig {
  /// Res_factor (Algorithm 1): sensitivity of bottleneck classification.
  double res_factor = 2.0;
  /// Tasks with peak memory above this also join the MEM queue (extension
  /// of Algorithm 1's 4-way split to the paper's 5 resource queues).
  Bytes mem_queue_threshold = 1.0 * kGiB;
};

class TaskManager {
 public:
  struct PendingRef {
    StageId stage = 0;
    std::size_t task_index = 0;
    TaskId task = 0;
  };

  TaskManager(TaskCharDb& db, TaskManagerConfig config = {});

  /// Algorithm 1 over recorded/observed characteristics.
  ResourceKind bottleneck(SimTime compute_time, SimTime shuffle_read, SimTime shuffle_write,
                          bool gpu) const;
  ResourceKind bottleneck(const TaskCharRecord& rec) const;
  ResourceKind bottleneck(const TaskMetrics& metrics, bool gpu) const;

  /// Which queues a (re)submitted task belongs to.
  std::vector<ResourceKind> classify(const TaskSpec& spec) const;

  /// Enqueue into all queues classify() names.
  void enqueue(const TaskSpec& spec, StageId stage, std::size_t task_index);

  std::vector<PendingRef>& queue(ResourceKind kind);
  const std::vector<PendingRef>& queue(ResourceKind kind) const;
  void clear_queues();

  /// Fold a completed attempt into DB_task_char; marks the stage GPU when
  /// a device was used (the paper tags all tasks of that stage).
  void record_completion(const TaskSpec& spec, const TaskMetrics& metrics);

  TaskCharDb& db() { return db_; }
  const TaskManagerConfig& config() const { return config_; }

 private:
  TaskCharDb& db_;
  TaskManagerConfig config_;
  std::array<std::vector<PendingRef>, kNumResourceKinds> queues_;
};

}  // namespace rupam
