// RUPAM's Task Manager (TM, paper §III-B2 + Algorithm 1).
//
// Characterizes tasks into per-resource pending queues:
//  * known tasks (present in DB_task_char) are classified by Algorithm 1
//    over their recorded metrics;
//  * first-time map tasks are assumed bounded by every resource
//    (enqueued in all queues);
//  * first-time reduce/result tasks are assumed network-bound.
//
// Queues are kept incrementally instead of rebuilt per dispatch: each
// queue splits into an *active* half (refs whose task is waiting) and a
// *parked* half (refs whose task is running — kept because the attempt
// may fail, and because the GPU queue races parked refs). Refs move
// between halves on launch/failure under their original sequence number,
// so restored refs keep their queue position. Row collection per
// kind-visit is therefore O(active of that kind), not O(all unfinished
// tasks).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sched/rupam/task_char_db.hpp"
#include "tasks/task.hpp"

namespace rupam {

struct TaskManagerConfig {
  /// Res_factor (Algorithm 1): sensitivity of bottleneck classification.
  double res_factor = 2.0;
  /// Tasks with peak memory above this also join the MEM queue (extension
  /// of Algorithm 1's 4-way split to the paper's 5 resource queues).
  Bytes mem_queue_threshold = 1.0 * kGiB;
};

class TaskManager {
 public:
  struct PendingRef {
    StageId stage = 0;
    std::size_t task_index = 0;
    TaskId task = 0;
    /// Interned stage name (assigned at enqueue) — lets the dispatch path
    /// hit DB_task_char without re-hashing the stage-name string.
    StageNameId name;
  };
  /// Sequence number → ref, ordered by enqueue time. A task re-enqueued
  /// after a failure legitimately holds several refs per queue (the old
  /// restored ones plus the re-characterized ones), matching the paper's
  /// "characterize again on retry" behaviour.
  using Queue = std::map<std::uint64_t, PendingRef>;

  TaskManager(TaskCharDb& db, TaskManagerConfig config = {});

  /// Algorithm 1 over recorded/observed characteristics.
  ResourceKind bottleneck(SimTime compute_time, SimTime shuffle_read, SimTime shuffle_write,
                          bool gpu) const;
  ResourceKind bottleneck(const TaskCharRecord& rec) const;
  ResourceKind bottleneck(const TaskMetrics& metrics, bool gpu) const;

  /// Which queues a (re)submitted task belongs to.
  std::vector<ResourceKind> classify(const TaskSpec& spec) const;

  /// Enqueue into the active half of all queues classify() names.
  void enqueue(const TaskSpec& spec, StageId stage, std::size_t task_index);

  /// The task at (stage, task_index) started running: park its refs.
  void note_launched(StageId stage, std::size_t task_index);
  /// The task went back to pending (attempt failed / was relocated):
  /// restore its parked refs at their original queue positions.
  void note_pending_again(StageId stage, std::size_t task_index);
  /// The task finished: drop every ref it holds.
  void note_finished(StageId stage, std::size_t task_index);

  const Queue& active(ResourceKind kind) const;
  const Queue& parked(ResourceKind kind) const;
  void clear_queues();

  /// Fold a completed attempt into DB_task_char; marks the stage GPU when
  /// a device was used (the paper tags all tasks of that stage).
  void record_completion(const TaskSpec& spec, const TaskMetrics& metrics);

  TaskCharDb& db() { return db_; }
  const TaskManagerConfig& config() const { return config_; }

 private:
  struct Slot {
    ResourceKind kind;
    std::uint64_t seq;
  };

  TaskCharDb& db_;
  TaskManagerConfig config_;
  std::array<Queue, kNumResourceKinds> active_;
  std::array<Queue, kNumResourceKinds> parked_;
  /// (stage, task_index) → every ref the task holds across queues.
  std::map<std::pair<StageId, std::size_t>, std::vector<Slot>> slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rupam
