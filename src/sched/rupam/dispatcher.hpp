// RUPAM's Dispatcher selection rule (paper Algorithm 2), factored as pure
// logic over task views so it is unit-testable in isolation.
//
// Given the tasks of one resource queue and one candidate node (the head
// of that resource's priority queue), pick:
//   1. a task whose history covers all five resources and whose
//      best-observed executor is this node — even past the memory guard
//      (the "optexecutor lock", §III-C1);
//   2. otherwise, skip tasks whose peak memory exceeds the node's free
//      memory (the OOM guard, §III-C);
//   3. among the rest: a task locked to this node, then a PROCESS_LOCAL
//      task, then the task with the best locality.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace rupam {

struct DispatchTaskView {
  std::size_t index = 0;  // caller-side handle
  Bytes peak_memory = 0.0;
  NodeId opt_executor = kInvalidNode;
  std::size_t history_size = 0;  // distinct bottleneck resources observed
  Locality locality = Locality::kAny;
  /// Expected cost from DB_task_char (recorded compute time); 0 when
  /// unknown. Among tasks locked to the offered node the most expensive
  /// runs first (LPT) — the whole point of locking a hot task to the
  /// fastest node is to start it before the wave fills.
  double expected_cost = 0.0;
};

struct DispatcherPolicy {
  bool opt_executor_lock = true;
  bool memory_guard = true;
  /// Safety margin the guard keeps free on top of the task's footprint.
  Bytes memory_headroom = 0.0;
};

/// Returns the chosen task's `index`, or nullopt if nothing fits.
std::optional<std::size_t> algorithm2_select(const std::vector<DispatchTaskView>& tasks,
                                             NodeId node, Bytes node_free_memory,
                                             const DispatcherPolicy& policy = {});

/// Round-robin cursor over resource kinds ("dequeue one node from each
/// resource queue at a time ... so no task with a single resource type is
/// starved").
class ResourceRoundRobin {
 public:
  ResourceKind next();
  ResourceKind peek() const { return static_cast<ResourceKind>(cursor_); }

 private:
  std::size_t cursor_ = 0;
};

}  // namespace rupam
