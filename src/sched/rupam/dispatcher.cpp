#include "sched/rupam/dispatcher.hpp"

namespace rupam {

std::optional<std::size_t> algorithm2_select(const std::vector<DispatchTaskView>& tasks,
                                             NodeId node, Bytes node_free_memory,
                                             const DispatcherPolicy& policy) {
  // Selection tiers:
  //   1. task locked to this node (immediately),
  //   2. PROCESS_LOCAL task (immediately),
  //   3. best-locality task that is not locked to another node,
  //   4. best-locality task locked elsewhere (only when nothing else fits,
  //      so locks steer placement without starving idle nodes).
  const DispatchTaskView* best_locked_here = nullptr;
  const DispatchTaskView* best_free = nullptr;  // PROCESS_LOCAL ranks first here
  const DispatchTaskView* best_locked_elsewhere = nullptr;
  for (const auto& task : tasks) {
    bool locked_here = policy.opt_executor_lock && task.opt_executor == node;
    bool locked_elsewhere = policy.opt_executor_lock && task.opt_executor != kInvalidNode &&
                            task.opt_executor != node;
    if (policy.memory_guard &&
        task.peak_memory + policy.memory_headroom > node_free_memory) {
      // Memory guard, with the paper's single exception: a fully
      // characterized task locked to this node runs here regardless.
      if (locked_here && task.history_size >= kNumResourceKinds) return task.index;
      continue;
    }
    if (locked_here) {
      if (best_locked_here == nullptr || task.expected_cost > best_locked_here->expected_cost) {
        best_locked_here = &task;
      }
      continue;
    }
    const DispatchTaskView*& slot = locked_elsewhere ? best_locked_elsewhere : best_free;
    if (slot == nullptr || static_cast<int>(task.locality) < static_cast<int>(slot->locality)) {
      slot = &task;
    }
  }
  if (best_locked_here != nullptr) return best_locked_here->index;
  if (best_free != nullptr) return best_free->index;
  if (best_locked_elsewhere != nullptr) return best_locked_elsewhere->index;
  return std::nullopt;
}

ResourceKind ResourceRoundRobin::next() {
  auto kind = static_cast<ResourceKind>(cursor_);
  cursor_ = (cursor_ + 1) % kNumResourceKinds;
  return kind;
}

}  // namespace rupam
