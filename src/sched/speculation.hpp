// Pure straggler-detection logic (Spark's speculative execution rule,
// paper §III-C3): once `quantile` of a stage's tasks have finished, any
// task running longer than `multiplier` x the median finished runtime is a
// straggler. Kept as free functions so properties can be tested directly.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace rupam {

struct SpeculationRule {
  double quantile = 0.75;
  double multiplier = 1.5;
  /// Floor so sub-100ms stages don't speculate on noise.
  SimTime min_threshold = 0.1;
};

/// Returns a straggler runtime threshold, or a negative value when the
/// stage has not yet finished enough tasks to judge.
SimTime straggler_threshold(const std::vector<double>& finished_runtimes,
                            std::size_t total_tasks, const SpeculationRule& rule);

/// Same rule using a caller-owned scratch buffer for the median, so a hot
/// caller (the per-round speculation scan) allocates nothing once the
/// scratch capacity has warmed up. `scratch` is clobbered.
SimTime straggler_threshold(const std::vector<double>& finished_runtimes,
                            std::size_t total_tasks, const SpeculationRule& rule,
                            std::vector<double>& scratch);

bool is_straggler(SimTime elapsed, SimTime threshold);

}  // namespace rupam
