#include "sched/spark/spark_scheduler.hpp"

#include <algorithm>

#include "sched/offers.hpp"

namespace rupam {

SparkScheduler::SparkScheduler(SchedulerEnv env) : SparkScheduler(std::move(env), Config()) {}

SparkScheduler::SparkScheduler(SchedulerEnv env, Config config)
    : SchedulerBase(std::move(env)), config_(config) {}

Locality SparkScheduler::allowed_level(StageState& stage) const {
  // Walk the stage's achievable levels; each level is granted
  // `locality_wait` seconds since the last launch before relaxing.
  std::vector<Locality> levels = valid_locality_levels(stage.set);
  SimTime reference = std::max(stage.submit_time, stage.last_launch);
  SimTime waited = sim().now() - reference;
  auto hops = config_.locality_wait > 0.0
                  ? static_cast<std::size_t>(waited / config_.locality_wait)
                  : levels.size();
  std::size_t idx = std::min(hops, levels.size() - 1);
  return levels[idx];
}

SparkScheduler::Candidate SparkScheduler::pick_task_for(
    NodeId node, const std::vector<StageState*>& ordered) {
  Candidate best;
  for (StageState* sp : ordered) {  // cross-job pool-policy order
    StageState& stage = *sp;
    Locality allowed = allowed_level(stage);
    Candidate stage_best;
    for (auto& task : stage.tasks) {
      if (!launchable(task)) continue;
      Locality loc = locality_for(task.spec, node);
      if (!locality_at_least(loc, allowed)) continue;
      if (stage_best.task == nullptr ||
          static_cast<int>(loc) < static_cast<int>(stage_best.locality)) {
        stage_best = Candidate{&stage, &task, loc};
      }
      if (stage_best.locality == Locality::kProcessLocal) break;
    }
    if (stage_best.task != nullptr) return stage_best;  // first taskset in policy order
  }
  return best;
}

void SparkScheduler::try_dispatch() {
  auto ids = cluster().node_ids();
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Re-rank tasksets each offer round: under FAIR the launches of the
    // previous round shift every pool's share.
    std::vector<StageState*> ordered = schedulable_stages();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      // Rotate the starting node between rounds: Spark shuffles offers so
      // one node does not soak up every wave.
      NodeId node = ids[(i + offer_rotation_) % ids.size()];
      Executor* exec = executor(node);
      if (exec == nullptr || exec->free_slots() <= 0 || !node_usable(node)) continue;
      Candidate c = pick_task_for(node, ordered);
      if (c.task == nullptr) continue;
      if (audit_enabled()) {
        // The delay-scheduling story: which level the stage was allowed to
        // relax to vs. the level actually taken on this offer.
        Locality allowed = allowed_level(*c.stage);
        Explain e;
        e.reason = "spark_delay_scheduling";
        e.detail = "allowed=" + std::string(to_string(allowed)) +
                   " taken=" + std::string(to_string(c.locality));
        std::vector<NodeId> offers;
        for (NodeId n : ids) {
          Executor* ne = executor(n);
          if (ne != nullptr && ne->free_slots() > 0 && node_usable(n)) offers.push_back(n);
        }
        e.candidates = static_cast<int>(offers.size());
        e.candidate_nodes = std::move(offers);
        explain_next_launch(std::move(e));
      }
      // Spark tries the GPU path whenever the application's library would
      // (it has no device awareness; contention falls back to CPU inside
      // the executor).
      if (launch_task(*c.stage, *c.task, node, c.task->spec.gpu_accelerable,
                      /*speculative=*/false)) {
        progressed = true;
      }
    }
    ++offer_rotation_;
  }
  if (launch_speculative_copies()) {
    // A speculative launch can free no slot, so no re-loop is needed.
  }
}

bool SparkScheduler::launch_speculative_copies() {
  bool launched = false;
  for (auto [stage_id, task_index] : find_speculatable()) {
    auto it = stages_.find(stage_id);
    if (it == stages_.end()) continue;
    StageState& stage = it->second;
    TaskState& task = stage.tasks[task_index];
    for (NodeId node : cluster().node_ids()) {
      Executor* exec = executor(node);
      if (exec == nullptr || exec->free_slots() <= 0 || !node_usable(node)) continue;
      if (task.has_attempt_on(node)) continue;  // copy must land elsewhere
      if (audit_enabled()) {
        Explain e;
        e.reason = "spark_speculative";
        e.detail = "straggler copy off node " + std::to_string(task.live.empty()
                                                                   ? kInvalidNode
                                                                   : task.live.front().node);
        e.candidates = 1;
        e.candidate_nodes = {node};
        explain_next_launch(std::move(e));
      }
      if (launch_task(stage, task, node, task.spec.gpu_accelerable, /*speculative=*/true)) {
        note_speculative_launch(task.spec.id);
        launched = true;
        break;
      }
    }
  }
  return launched;
}

}  // namespace rupam
