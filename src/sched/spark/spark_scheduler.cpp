#include "sched/spark/spark_scheduler.hpp"

#include <algorithm>

#include "sched/offers.hpp"

namespace rupam {

SparkScheduler::SparkScheduler(SchedulerEnv env) : SparkScheduler(std::move(env), Config()) {}

SparkScheduler::SparkScheduler(SchedulerEnv env, Config config)
    : SchedulerBase(std::move(env)), config_(config) {}

void SparkScheduler::rebuild_levels(StageIdx& idx) {
  idx.levels.clear();
  if (idx.any_cached) idx.levels.push_back(Locality::kProcessLocal);
  if (idx.any_preferred) idx.levels.push_back(Locality::kNodeLocal);
  idx.levels.push_back(Locality::kAny);
}

void SparkScheduler::index_task(StageState& stage, StageIdx& idx, std::size_t i) {
  const TaskSpec& spec = stage.tasks[i].spec;
  for (NodeId n : spec.preferred_nodes) idx.prefer[n].insert(i);
  if (!spec.input_cache_key.empty()) {
    idx.by_key[spec.input_cache_key].insert(i);
    if (const std::set<NodeId>* nodes = nodes_caching(spec.input_cache_key)) {
      for (NodeId n : *nodes) idx.cached[n].insert(i);
    }
  }
  bool widened = (!spec.input_cache_key.empty() && !idx.any_cached) ||
                 (!spec.preferred_nodes.empty() && !idx.any_preferred);
  idx.any_cached = idx.any_cached || !spec.input_cache_key.empty();
  idx.any_preferred = idx.any_preferred || !spec.preferred_nodes.empty();
  if (widened) rebuild_levels(idx);
}

void SparkScheduler::deindex_task(StageState& stage, StageIdx& idx, std::size_t i) {
  const TaskSpec& spec = stage.tasks[i].spec;
  for (NodeId n : spec.preferred_nodes) {
    auto it = idx.prefer.find(n);
    if (it == idx.prefer.end()) continue;
    it->second.erase(i);
    if (it->second.empty()) idx.prefer.erase(it);
  }
  if (spec.input_cache_key.empty()) return;
  auto kit = idx.by_key.find(spec.input_cache_key);
  if (kit != idx.by_key.end()) {
    kit->second.erase(i);
    if (kit->second.empty()) idx.by_key.erase(kit);
  }
  if (const std::set<NodeId>* nodes = nodes_caching(spec.input_cache_key)) {
    for (NodeId n : *nodes) {
      auto it = idx.cached.find(n);
      if (it == idx.cached.end()) continue;
      it->second.erase(i);
      if (it->second.empty()) idx.cached.erase(it);
    }
  }
}

void SparkScheduler::stage_submitted(StageState& stage) {
  StageIdx& idx = index_[stage.set.stage];
  for (std::size_t i = 0; i < stage.tasks.size(); ++i) index_task(stage, idx, i);
  rebuild_levels(idx);
}

void SparkScheduler::stage_removed(StageState& stage) { index_.erase(stage.set.stage); }

void SparkScheduler::task_pending_changed(StageState& stage, std::size_t index, bool pending) {
  auto it = index_.find(stage.set.stage);
  if (it == index_.end()) return;
  if (pending) {
    index_task(stage, it->second, index);
  } else {
    deindex_task(stage, it->second, index);
  }
}

void SparkScheduler::cache_block_changed(NodeId node, const std::string& key, bool present) {
  for (auto& [sid, idx] : index_) {
    auto kit = idx.by_key.find(key);
    if (kit == idx.by_key.end()) continue;
    if (present) {
      auto& bucket = idx.cached[node];
      for (std::size_t i : kit->second) bucket.insert(i);
    } else {
      auto cit = idx.cached.find(node);
      if (cit == idx.cached.end()) continue;
      for (std::size_t i : kit->second) cit->second.erase(i);
      if (cit->second.empty()) idx.cached.erase(cit);
    }
  }
}

Locality SparkScheduler::allowed_level(const StageState& stage, const StageIdx& idx) const {
  // Walk the stage's achievable levels; each level is granted
  // `locality_wait` seconds since the last launch before relaxing.
  SimTime reference = std::max(stage.submit_time, stage.last_launch);
  SimTime waited = sim().now() - reference;
  auto hops = config_.locality_wait > 0.0
                  ? static_cast<std::size_t>(waited / config_.locality_wait)
                  : idx.levels.size();
  std::size_t i = std::min(hops, idx.levels.size() - 1);
  return idx.levels[i];
}

SparkScheduler::Candidate SparkScheduler::indexed_pick(StageState& stage, StageIdx& idx,
                                                       NodeId node, Locality allowed) {
  // Tier 1: tasks whose input block is cached on this node (PROCESS_LOCAL).
  auto cit = idx.cached.find(node);
  if (cit != idx.cached.end()) {
    for (std::size_t i : cit->second) {
      note_task_checks(1);
      TaskState& task = stage.tasks[i];
      if (launchable(task)) return Candidate{&stage, &task, Locality::kProcessLocal};
    }
  }
  // Tier 2: preferred-node tasks. Any launchable entry here that were also
  // cache-local would have been returned by tier 1, so these are exactly
  // NODE_LOCAL on this node.
  if (locality_at_least(Locality::kNodeLocal, allowed)) {
    auto pit = idx.prefer.find(node);
    if (pit != idx.prefer.end()) {
      for (std::size_t i : pit->second) {
        note_task_checks(1);
        TaskState& task = stage.tasks[i];
        if (launchable(task)) return Candidate{&stage, &task, Locality::kNodeLocal};
      }
    }
  }
  // Tier 3: any pending task. With tiers 1–2 drained, every launchable
  // task left is ANY on this node.
  if (allowed == Locality::kAny) {
    if (TaskState* task = next_launchable(stage)) {
      return Candidate{&stage, task, Locality::kAny};
    }
  }
  return Candidate{};
}

SparkScheduler::Candidate SparkScheduler::pick_task_for(
    NodeId node, const std::vector<StageState*>& ordered) {
  for (StageState* sp : ordered) {  // cross-job pool-policy order
    StageState& stage = *sp;
    auto it = index_.find(stage.set.stage);
    if (it == index_.end()) continue;
    Candidate c = indexed_pick(stage, it->second, node, allowed_level(stage, it->second));
    if (c.task != nullptr) return c;  // first taskset in policy order
  }
  return Candidate{};
}

void SparkScheduler::try_dispatch() {
  if (stages_.empty()) return;
  std::size_t n = cluster().size();
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Re-rank tasksets each offer round: under FAIR the launches of the
    // previous round shift every pool's share.
    const std::vector<StageState*>& ordered = schedulable_stages();
    // Rotate the starting node between rounds: Spark shuffles offers so
    // one node does not soak up every wave.
    NodeId start = static_cast<NodeId>(offer_rotation_ % n);
    for_each_ready_node(start, [&](NodeId node, Executor&) {
      Candidate c = pick_task_for(node, ordered);
      if (c.task == nullptr) return true;
      if (audit_enabled()) {
        // The delay-scheduling story: which level the stage was allowed to
        // relax to vs. the level actually taken on this offer.
        Locality allowed = allowed_level(*c.stage, index_.at(c.stage->set.stage));
        Explain e;
        e.reason = "spark_delay_scheduling";
        e.detail = "allowed=" + std::string(to_string(allowed)) +
                   " taken=" + std::string(to_string(c.locality));
        std::vector<NodeId> offers;
        for (NodeId cand : cluster().node_ids()) {
          Executor* ne = executor(cand);
          if (ne != nullptr && ne->free_slots() > 0 && node_usable(cand)) {
            offers.push_back(cand);
          }
        }
        e.candidates = static_cast<int>(offers.size());
        e.candidate_nodes = std::move(offers);
        explain_next_launch(std::move(e));
      }
      // Spark tries the GPU path whenever the application's library would
      // (it has no device awareness; contention falls back to CPU inside
      // the executor).
      if (launch_task(*c.stage, *c.task, node, c.task->spec.gpu_accelerable,
                      /*speculative=*/false)) {
        progressed = true;
      }
      return true;
    });
    ++offer_rotation_;
  }
  if (launch_speculative_copies()) {
    // A speculative launch can free no slot, so no re-loop is needed.
  }
}

bool SparkScheduler::launch_speculative_copies() {
  bool launched = false;
  for (auto [stage_id, task_index] : find_speculatable()) {
    auto it = stages_.find(stage_id);
    if (it == stages_.end()) continue;
    StageState& stage = it->second;
    TaskState& task = stage.tasks[task_index];
    for_each_ready_node(0, [&](NodeId node, Executor&) {
      if (task.has_attempt_on(node)) return true;  // copy must land elsewhere
      if (audit_enabled()) {
        Explain e;
        e.reason = "spark_speculative";
        e.detail = "straggler copy off node " + std::to_string(task.live.empty()
                                                                   ? kInvalidNode
                                                                   : task.live.front().node);
        e.candidates = 1;
        e.candidate_nodes = {node};
        explain_next_launch(std::move(e));
      }
      if (launch_task(stage, task, node, task.spec.gpu_accelerable, /*speculative=*/true)) {
        note_speculative_launch(task.spec.id);
        launched = true;
        return false;
      }
      return true;
    });
  }
  return launched;
}

}  // namespace rupam
