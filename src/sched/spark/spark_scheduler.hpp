// Default Spark task scheduler (the paper's baseline).
//
// Semantics reproduced from Spark 2.2:
//  * one task per CPU core — a node is schedulable iff it has a free slot;
//  * purely locality-driven task choice with delay scheduling
//    (spark.locality.wait per level, only over levels the set can achieve);
//  * no awareness of memory, disk type, network speed, or GPUs;
//  * static executor sizing (the application sets one heap size that must
//    fit the weakest node — see SimulationConfig);
//  * speculative execution (spark.speculation) re-launches stragglers on
//    any node with a free slot.
#pragma once

#include "sched/scheduler.hpp"

namespace rupam {

class SparkScheduler : public SchedulerBase {
 public:
  struct Config {
    /// spark.locality.wait — dwell time per locality level.
    SimTime locality_wait = 3.0;
  };

  explicit SparkScheduler(SchedulerEnv env);
  SparkScheduler(SchedulerEnv env, Config config);

  std::string name() const override { return "Spark"; }

 protected:
  void try_dispatch() override;

 private:
  struct Candidate {
    StageState* stage = nullptr;
    TaskState* task = nullptr;
    Locality locality = Locality::kAny;
  };

  /// Best pending task for `node` across active stages (cross-job pool
  /// policy order), honoring each stage's currently allowed locality level.
  Candidate pick_task_for(NodeId node, const std::vector<StageState*>& ordered);
  Locality allowed_level(StageState& stage) const;
  bool launch_speculative_copies();

  Config config_;
  std::size_t offer_rotation_ = 0;
};

}  // namespace rupam
