// Default Spark task scheduler (the paper's baseline).
//
// Semantics reproduced from Spark 2.2:
//  * one task per CPU core — a node is schedulable iff it has a free slot;
//  * purely locality-driven task choice with delay scheduling
//    (spark.locality.wait per level, only over levels the set can achieve);
//  * no awareness of memory, disk type, network speed, or GPUs;
//  * static executor sizing (the application sets one heap size that must
//    fit the weakest node — see SimulationConfig);
//  * speculative execution (spark.speculation) re-launches stragglers on
//    any node with a free slot.
//
// Dispatch is indexed: per stage, pending tasks are bucketed by preferred
// node and by live cache location (maintained from task-pending and
// block-cache change events), so an offer costs O(launches · log N)
// instead of rescanning every task per node.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace rupam {

class SparkScheduler : public SchedulerBase {
 public:
  struct Config {
    /// spark.locality.wait — dwell time per locality level.
    SimTime locality_wait = 3.0;
  };

  explicit SparkScheduler(SchedulerEnv env);
  SparkScheduler(SchedulerEnv env, Config config);

  std::string name() const override { return "Spark"; }

 protected:
  void try_dispatch() override;
  void stage_submitted(StageState& stage) override;
  void stage_removed(StageState& stage) override;
  void task_pending_changed(StageState& stage, std::size_t index, bool pending) override;
  void cache_block_changed(NodeId node, const std::string& key, bool present) override;

 private:
  struct Candidate {
    StageState* stage = nullptr;
    TaskState* task = nullptr;
    Locality locality = Locality::kAny;
  };

  /// Per-stage locality index over *pending* task indices. The achievable
  /// locality levels are over all tasks of the set (matching
  /// valid_locality_levels), so the flags only ever widen.
  struct StageIdx {
    bool any_cached = false;
    bool any_preferred = false;
    std::vector<Locality> levels;
    /// node → pending indices with node in preferred_nodes.
    std::map<NodeId, std::set<std::size_t>> prefer;
    /// node → pending indices whose input block is cached there now.
    std::map<NodeId, std::set<std::size_t>> cached;
    /// input cache key → pending indices (cache-event fan-in).
    std::map<std::string, std::set<std::size_t>, std::less<>> by_key;
  };

  void rebuild_levels(StageIdx& idx);
  void index_task(StageState& stage, StageIdx& idx, std::size_t i);
  void deindex_task(StageState& stage, StageIdx& idx, std::size_t i);

  /// Best pending task for `node` across active stages (cross-job pool
  /// policy order), honoring each stage's currently allowed locality level.
  Candidate pick_task_for(NodeId node, const std::vector<StageState*>& ordered);
  /// Best pending task of one stage for `node` at `allowed` or better:
  /// cache-local bucket first, then preferred bucket, then any pending.
  Candidate indexed_pick(StageState& stage, StageIdx& idx, NodeId node, Locality allowed);
  Locality allowed_level(const StageState& stage, const StageIdx& idx) const;
  bool launch_speculative_copies();

  Config config_;
  std::size_t offer_rotation_ = 0;
  std::map<StageId, StageIdx> index_;
};

}  // namespace rupam
