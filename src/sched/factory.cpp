#include "sched/factory.hpp"

#include <stdexcept>

#include "sched/baselines/capability_scheduler.hpp"
#include "sched/baselines/fifo_scheduler.hpp"
#include "sched/baselines/heft_scheduler.hpp"

namespace rupam {

std::string_view to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSpark: return "Spark";
    case SchedulerKind::kRupam: return "RUPAM";
    case SchedulerKind::kStageAware: return "StageAware";
    case SchedulerKind::kFifo: return "FIFO";
    case SchedulerKind::kHeft: return "HEFT";
  }
  return "?";
}

std::optional<SchedulerKind> scheduler_kind_from_name(const std::string& name) {
  if (name == "spark") return SchedulerKind::kSpark;
  if (name == "rupam") return SchedulerKind::kRupam;
  if (name == "stageaware") return SchedulerKind::kStageAware;
  if (name == "fifo") return SchedulerKind::kFifo;
  if (name == "heft") return SchedulerKind::kHeft;
  return std::nullopt;
}

std::unique_ptr<SchedulerBase> make_scheduler(SchedulerKind kind, SchedulerEnv env,
                                              const SchedulerConfig& config) {
  switch (kind) {
    case SchedulerKind::kRupam:
      return std::make_unique<RupamScheduler>(std::move(env), config.rupam);
    case SchedulerKind::kStageAware:
      return std::make_unique<CapabilityScheduler>(std::move(env));
    case SchedulerKind::kFifo:
      return std::make_unique<FifoScheduler>(std::move(env));
    case SchedulerKind::kHeft:
      return std::make_unique<HeftScheduler>(std::move(env));
    case SchedulerKind::kSpark:
      return std::make_unique<SparkScheduler>(std::move(env), config.spark);
  }
  throw std::invalid_argument("make_scheduler: unknown SchedulerKind");
}

std::unique_ptr<SchedulerBase> make_scheduler(const std::string& name, SchedulerEnv env,
                                              const SchedulerConfig& config) {
  std::optional<SchedulerKind> kind = scheduler_kind_from_name(name);
  if (!kind) {
    throw std::invalid_argument("make_scheduler: unknown scheduler '" + name +
                                "' (expected spark|rupam|stageaware|fifo|heft)");
  }
  return make_scheduler(*kind, std::move(env), config);
}

}  // namespace rupam
