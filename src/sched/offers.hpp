// Worker-offer helpers shared by schedulers.
#pragma once

#include <vector>

#include "cluster/node.hpp"
#include "tasks/task_set.hpp"

namespace rupam {

/// One schedulable node in a dispatch round.
struct WorkerOffer {
  NodeId node = kInvalidNode;
  int free_slots = 0;
  NodeMetrics metrics;
};

/// The locality levels a task set can actually achieve, best-first and
/// always ending in ANY. Spark's delay scheduling only waits on levels
/// that exist: a set with no cached input never waits at PROCESS_LOCAL.
std::vector<Locality> valid_locality_levels(const TaskSet& set);

}  // namespace rupam
