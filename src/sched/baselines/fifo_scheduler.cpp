#include "sched/baselines/fifo_scheduler.hpp"

namespace rupam {

void FifoScheduler::try_dispatch() {
  if (stages_.empty()) return;
  std::size_t n = cluster().size();
  bool progressed = true;
  while (progressed) {
    progressed = false;
    const std::vector<StageState*>& ordered = schedulable_stages();
    NodeId start = static_cast<NodeId>(rotation_ % n);
    for_each_ready_node(start, [&](NodeId node, Executor&) {
      for (StageState* sp : ordered) {
        StageState& stage = *sp;
        TaskState* next = next_launchable(stage);
        if (next == nullptr) continue;
        if (audit_enabled()) {
          Explain e;
          e.reason = "fifo_first_free_slot";
          e.detail = "rotation=" + std::to_string(rotation_ % n);
          e.candidates = 1;
          e.candidate_nodes = {node};
          explain_next_launch(std::move(e));
        }
        if (launch_task(stage, *next, node, next->spec.gpu_accelerable,
                        /*speculative=*/false)) {
          progressed = true;
        }
        break;  // earliest taskset in policy order only
      }
      return true;  // one launch per node per pass
    });
    ++rotation_;
  }
  for (auto [stage_id, task_index] : find_speculatable()) {
    auto it = stages_.find(stage_id);
    if (it == stages_.end()) continue;
    StageState& stage = it->second;
    TaskState& task = stage.tasks[task_index];
    for_each_ready_node(0, [&](NodeId node, Executor&) {
      if (task.has_attempt_on(node)) return true;
      if (audit_enabled()) {
        Explain e;
        e.reason = "fifo_speculative";
        e.candidates = 1;
        e.candidate_nodes = {node};
        explain_next_launch(std::move(e));
      }
      if (launch_task(stage, task, node, task.spec.gpu_accelerable, /*speculative=*/true)) {
        note_speculative_launch(task.spec.id);
        return false;
      }
      return true;
    });
  }
}

}  // namespace rupam
