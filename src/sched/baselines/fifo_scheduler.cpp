#include "sched/baselines/fifo_scheduler.hpp"

namespace rupam {

void FifoScheduler::try_dispatch() {
  auto ids = cluster().node_ids();
  bool progressed = true;
  while (progressed) {
    progressed = false;
    std::vector<StageState*> ordered = schedulable_stages();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      NodeId node = ids[(i + rotation_) % ids.size()];
      Executor* exec = executor(node);
      if (exec == nullptr || exec->free_slots() <= 0 || !node_usable(node)) continue;
      for (StageState* sp : ordered) {
        StageState& stage = *sp;
        TaskState* next = nullptr;
        for (auto& task : stage.tasks) {
          if (launchable(task)) {
            next = &task;
            break;
          }
        }
        if (next == nullptr) continue;
        if (audit_enabled()) {
          Explain e;
          e.reason = "fifo_first_free_slot";
          e.detail = "rotation=" + std::to_string(rotation_ % ids.size());
          e.candidates = 1;
          e.candidate_nodes = {node};
          explain_next_launch(std::move(e));
        }
        if (launch_task(stage, *next, node, next->spec.gpu_accelerable,
                        /*speculative=*/false)) {
          progressed = true;
        }
        break;  // earliest taskset in policy order only
      }
    }
    ++rotation_;
  }
  for (auto [stage_id, task_index] : find_speculatable()) {
    auto it = stages_.find(stage_id);
    if (it == stages_.end()) continue;
    StageState& stage = it->second;
    TaskState& task = stage.tasks[task_index];
    for (NodeId node : ids) {
      Executor* exec = executor(node);
      if (exec == nullptr || exec->free_slots() <= 0 || !node_usable(node) ||
          task.has_attempt_on(node)) {
        continue;
      }
      if (audit_enabled()) {
        Explain e;
        e.reason = "fifo_speculative";
        e.candidates = 1;
        e.candidate_nodes = {node};
        explain_next_launch(std::move(e));
      }
      if (launch_task(stage, task, node, task.spec.gpu_accelerable, /*speculative=*/true)) {
        note_speculative_launch(task.spec.id);
        break;
      }
    }
  }
}

}  // namespace rupam
