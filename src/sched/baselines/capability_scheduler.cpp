#include "sched/baselines/capability_scheduler.hpp"

#include <algorithm>

namespace rupam {

CapabilityScheduler::CapabilityScheduler(SchedulerEnv env)
    : CapabilityScheduler(std::move(env), Config()) {}

CapabilityScheduler::CapabilityScheduler(SchedulerEnv env, Config config)
    : SchedulerBase(std::move(env)), config_(config) {}

ResourceKind CapabilityScheduler::stage_bottleneck(const std::string& stage_name) const {
  auto it = profiles_.find(stage_name);
  if (it == profiles_.end() || it->second.samples == 0) {
    // No evidence yet: assume generic computation (the assumption the
    // paper's motivational study falsifies).
    return ResourceKind::kCpu;
  }
  const StageProfileEstimate& p = it->second;
  double n = static_cast<double>(p.samples);
  if (p.gpu) return ResourceKind::kGpu;
  double compute = p.compute / n;
  double read = p.shuffle_read / n;
  double write = p.shuffle_write / n;
  if (compute > config_.res_factor * std::max(read, write)) return ResourceKind::kCpu;
  if (read > config_.res_factor * write) return ResourceKind::kNetwork;
  return ResourceKind::kDisk;
}

void CapabilityScheduler::task_succeeded(StageState& stage, TaskState&,
                                         const TaskMetrics& metrics) {
  StageProfileEstimate& p = profiles_[stage.set.stage_name];
  ++p.samples;
  p.compute += metrics.compute_time;
  p.shuffle_read += metrics.shuffle_read_time;
  p.shuffle_write += metrics.shuffle_write_time;
  p.gpu = p.gpu || metrics.used_gpu;
}

std::vector<NodeId> CapabilityScheduler::ranked_nodes(ResourceKind kind) const {
  std::vector<NodeId> ids = cluster().node_ids();
  std::vector<std::pair<double, NodeId>> scored;
  scored.reserve(ids.size());
  for (NodeId id : ids) {
    if (!cluster().schedulable(id)) continue;  // draining/decommissioned
    NodeMetrics m = cluster().node(id).metrics();
    // Capability first; break ties toward the emptier executor so the
    // stage spreads instead of serializing on the single best node.
    Executor* exec = executor(id);
    double load = exec != nullptr ? static_cast<double>(exec->running_tasks()) : 0.0;
    scored.push_back({-m.capability(kind) * 1000.0 + load, id});
  }
  std::sort(scored.begin(), scored.end());
  std::vector<NodeId> out(scored.size());
  for (std::size_t i = 0; i < scored.size(); ++i) out[i] = scored[i].second;
  return out;
}

const std::vector<NodeId>& CapabilityScheduler::ranked_free_nodes(ResourceKind kind) {
  scored_scratch_.clear();
  for_each_ready_node(0, [&](NodeId id, Executor& exec) {
    NodeMetrics m = cluster().node(id).metrics();
    scored_scratch_.push_back(
        {-m.capability(kind) * 1000.0 + static_cast<double>(exec.running_tasks()), id});
    return true;
  });
  std::sort(scored_scratch_.begin(), scored_scratch_.end());
  ranked_scratch_.clear();
  for (const auto& [score, id] : scored_scratch_) ranked_scratch_.push_back(id);
  return ranked_scratch_;
}

void CapabilityScheduler::try_dispatch() {
  if (stages_.empty()) return;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (StageState* sp : schedulable_stages()) {
      StageState& stage = *sp;
      // One placement per round: the best node with a free slot takes the
      // next pending task of this stage — locality is ignored entirely
      // ("nodes are ranked by capability, tasks are interchangeable").
      TaskState* next = next_launchable(stage);
      if (next == nullptr) continue;
      ResourceKind kind = stage_bottleneck(stage.set.stage_name);
      // The audit exposes the rank index and full candidate list, so only
      // rank every node while an audit sink is attached; the fast path
      // ranks just the maybe-free set (same comparator, same winner).
      std::vector<NodeId> audited;  // empty unless an audit sink is attached
      if (audit_enabled()) audited = ranked_nodes(kind);
      const std::vector<NodeId>& ranked = audit_enabled() ? audited : ranked_free_nodes(kind);
      for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
        NodeId node = ranked[rank];
        Executor* exec = executor(node);
        if (exec == nullptr || exec->free_slots() <= 0 || !node_usable(node)) continue;
        if (kind == ResourceKind::kGpu && cluster().node(node).gpus().idle() == 0) continue;
        if (audit_enabled()) {
          Explain e;
          e.reason = "capability_rank";
          e.detail = "tag=" + std::string(to_string(kind)) + " rank=" + std::to_string(rank);
          e.candidates = static_cast<int>(ranked.size());
          e.candidate_nodes = ranked;
          explain_next_launch(std::move(e));
        }
        if (launch_task(stage, *next, node, next->spec.gpu_accelerable,
                        /*speculative=*/false, kind)) {
          progressed = true;
        }
        break;  // re-rank after each launch
      }
    }
  }
  // Standard speculative execution, copies on the stage's best nodes.
  for (auto [stage_id, task_index] : find_speculatable()) {
    auto it = stages_.find(stage_id);
    if (it == stages_.end()) continue;
    StageState& stage = it->second;
    TaskState& task = stage.tasks[task_index];
    for (NodeId node : ranked_free_nodes(stage_bottleneck(stage.set.stage_name))) {
      Executor* exec = executor(node);
      if (exec == nullptr || exec->free_slots() <= 0 || !node_usable(node)) continue;
      if (task.has_attempt_on(node)) continue;
      if (audit_enabled()) {
        Explain e;
        e.reason = "capability_speculative";
        e.detail = "tag=" + std::string(to_string(stage_bottleneck(stage.set.stage_name)));
        e.candidates = 1;
        e.candidate_nodes = {node};
        explain_next_launch(std::move(e));
      }
      if (launch_task(stage, task, node, task.spec.gpu_accelerable, /*speculative=*/true)) {
        note_speculative_launch(task.spec.id);
        break;
      }
    }
  }
}

}  // namespace rupam
