// Locality- and heterogeneity-oblivious FIFO baseline: tasks go to the
// first node with a free slot, in submission order. A lower bound that
// quantifies how much even plain Spark's locality awareness buys.
#pragma once

#include "sched/scheduler.hpp"

namespace rupam {

class FifoScheduler : public SchedulerBase {
 public:
  explicit FifoScheduler(SchedulerEnv env) : SchedulerBase(std::move(env)) {}

  std::string name() const override { return "FIFO"; }

 protected:
  void try_dispatch() override;

 private:
  std::size_t rotation_ = 0;
};

}  // namespace rupam
