#include "sched/baselines/heft_scheduler.hpp"

#include <algorithm>
#include <limits>

namespace rupam {

HeftScheduler::HeftScheduler(SchedulerEnv env) : SchedulerBase(std::move(env)) {}

double HeftScheduler::exec_cost(const TaskSpec& task, const NodeSpec& node) {
  double compute = task.gpu_accelerable && node.gpus > 0
                       ? task.compute / std::max(1.0, task.gpu_speedup)
                       : task.compute / std::max(0.05, node.cpu_perf);
  double input = node.disk_read_bw > 0.0 ? task.input_bytes / node.disk_read_bw : 0.0;
  double remote = task.shuffle_read_bytes * task.shuffle_remote_fraction;
  double local = task.shuffle_read_bytes - remote;
  double shuffle_read = (node.net_bandwidth > 0.0 ? remote / node.net_bandwidth : 0.0) +
                        (node.disk_read_bw > 0.0 ? local / node.disk_read_bw : 0.0);
  double shuffle_write =
      node.disk_write_bw > 0.0 ? task.shuffle_write_bytes / node.disk_write_bw : 0.0;
  return compute + input + shuffle_read + shuffle_write;
}

double HeftScheduler::avg_stage_cost(const Stage& stage) const {
  if (stage.tasks.empty()) return 0.0;
  const std::vector<NodeId> ids = cluster().node_ids();
  if (ids.empty()) return 0.0;
  double total = 0.0;
  for (const TaskSpec& task : stage.tasks.tasks) {
    double over_nodes = 0.0;
    for (NodeId id : ids) over_nodes += exec_cost(task, cluster().node(id).spec());
    total += over_nodes / static_cast<double>(ids.size());
  }
  return total / static_cast<double>(stage.tasks.size());
}

void HeftScheduler::register_dag(const Application& app) {
  for (const Job& job : app.jobs) {
    // Edges point parent → child; rank flows from the sinks backwards.
    std::map<StageId, std::vector<StageId>> children;
    std::map<StageId, const Stage*> by_id;
    for (const Stage& stage : job.stages) {
      by_id[stage.id] = &stage;
      for (StageId parent : stage.parents) children[parent].push_back(stage.id);
    }
    // Stage ids within a job are acyclic by construction (parents precede
    // children); iterating highest-id-first guarantees every child's rank
    // exists before its parents ask for it.
    std::vector<const Stage*> order;
    order.reserve(job.stages.size());
    for (const Stage& stage : job.stages) order.push_back(&stage);
    std::sort(order.begin(), order.end(),
              [](const Stage* a, const Stage* b) { return a->id > b->id; });
    for (const Stage* stage : order) {
      double down = 0.0;
      auto kids = children.find(stage->id);
      if (kids != children.end()) {
        for (StageId child : kids->second) {
          auto it = rank_.find(child);
          if (it != rank_.end()) down = std::max(down, it->second);
        }
      }
      rank_[stage->id] = avg_stage_cost(*stage) + down;
    }
  }
}

double HeftScheduler::upward_rank(StageId stage) const {
  auto it = rank_.find(stage);
  return it != rank_.end() ? it->second : 0.0;
}

NodeId HeftScheduler::best_free_node(const TaskSpec& task) {
  NodeId best = kInvalidNode;
  double best_cost = std::numeric_limits<double>::infinity();
  for_each_ready_node(0, [&](NodeId id, Executor& exec) {
    note_node_visit();
    if (exec.free_slots() <= 0) return true;
    double cost = exec_cost(task, cluster().node(id).spec());
    // Ring order visits ascending NodeId from 0, so strict < breaks cost
    // ties toward the lowest id — the same order the audit ranking uses.
    if (cost < best_cost) {
      best_cost = cost;
      best = id;
    }
    return true;
  });
  return best;
}

void HeftScheduler::try_dispatch() {
  if (stages_.empty()) return;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Pool policy picks which jobs are offered resources; within that
    // offer, HEFT's upward rank decides the stage order (equal-rank stages
    // keep the policy's order via the explicit position tie-break).
    const std::vector<StageState*>& ordered = schedulable_stages();
    order_scratch_.clear();
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      order_scratch_.push_back(RankedStage{upward_rank(ordered[i]->set.stage), i, ordered[i]});
    }
    std::sort(order_scratch_.begin(), order_scratch_.end(),
              [](const RankedStage& a, const RankedStage& b) {
                if (a.rank != b.rank) return a.rank > b.rank;
                return a.pos < b.pos;
              });
    for (const RankedStage& rs : order_scratch_) {
      StageState& stage = *rs.stage;
      TaskState* next = next_launchable(stage);
      if (next == nullptr) continue;
      NodeId node = best_free_node(next->spec);
      if (node == kInvalidNode) continue;
      if (audit_enabled()) {
        // Full EFT ranking over every schedulable node for the audit
        // trail; the winner matches best_free_node's (same cost table,
        // same lowest-id tie-break).
        std::vector<std::pair<double, NodeId>> scored;
        for (NodeId id : cluster().node_ids()) {
          if (!cluster().schedulable(id)) continue;
          scored.push_back({exec_cost(next->spec, cluster().node(id).spec()), id});
        }
        std::sort(scored.begin(), scored.end());
        Explain e;
        e.reason = "heft_eft";
        e.detail = "rank_u=" + std::to_string(upward_rank(stage.set.stage));
        e.candidates = static_cast<int>(scored.size());
        e.candidate_nodes.reserve(scored.size());
        for (const auto& [cost, id] : scored) e.candidate_nodes.push_back(id);
        explain_next_launch(std::move(e));
      }
      if (launch_task(stage, *next, node, next->spec.gpu_accelerable,
                      /*speculative=*/false)) {
        progressed = true;
      }
    }
  }
  // Stock speculative execution: copies go to the cheapest free node.
  for (auto [stage_id, task_index] : find_speculatable()) {
    auto it = stages_.find(stage_id);
    if (it == stages_.end()) continue;
    StageState& stage = it->second;
    TaskState& task = stage.tasks[task_index];
    NodeId node = best_free_node(task.spec);
    if (node == kInvalidNode || task.has_attempt_on(node)) continue;
    if (audit_enabled()) {
      Explain e;
      e.reason = "heft_speculative";
      e.candidates = 1;
      e.candidate_nodes = {node};
      explain_next_launch(std::move(e));
    }
    if (launch_task(stage, task, node, task.spec.gpu_accelerable, /*speculative=*/true)) {
      note_speculative_launch(task.spec.id);
    }
  }
}

}  // namespace rupam
