// Stage-level heterogeneity-aware baseline.
//
// Represents the class of prior schedulers the paper positions RUPAM
// against (§I/§II: approaches that "often make the assumption that ...
// tasks in the same Map/Reduce stage would have same resource consumption
// patterns" and "optimize for a dominant resource bottleneck for tasks in
// a Map/Reduce stage"). It is heterogeneity-aware — it ranks nodes by
// capability for the stage's dominant resource — but characterizes at
// stage granularity, with no per-task history, no memory guard, no
// over-commit, and no GPU/CPU racing. The gap between this baseline and
// RUPAM isolates the value of RUPAM's per-task treatment.
#pragma once

#include <map>
#include <string>

#include "sched/rupam/task_manager.hpp"
#include "sched/scheduler.hpp"

namespace rupam {

class CapabilityScheduler : public SchedulerBase {
 public:
  struct Config {
    /// Algorithm-1-style sensitivity used for the stage-level classifier.
    double res_factor = 2.0;
  };

  explicit CapabilityScheduler(SchedulerEnv env);
  CapabilityScheduler(SchedulerEnv env, Config config);

  std::string name() const override { return "StageAware"; }

  /// Stage-level profile inferred from completed tasks of a stage name.
  struct StageProfileEstimate {
    int samples = 0;
    SimTime compute = 0.0;
    SimTime shuffle_read = 0.0;
    SimTime shuffle_write = 0.0;
    bool gpu = false;
  };
  /// The dominant resource this scheduler currently assumes for a stage
  /// (CPU until evidence arrives — the "generic computation" default).
  ResourceKind stage_bottleneck(const std::string& stage_name) const;

 protected:
  void try_dispatch() override;
  void task_succeeded(StageState& stage, TaskState& task, const TaskMetrics& metrics) override;

 private:
  /// Nodes ordered best-first for `kind`, by static capability then load.
  std::vector<NodeId> ranked_nodes(ResourceKind kind) const;
  /// Same ranking restricted to nodes with a free slot (the maybe-free
  /// set) — the dispatch fast path. The comparator is identical, so the
  /// first admissible node matches the full ranking's. Returns a reference
  /// into reused scratch, valid until the next call.
  const std::vector<NodeId>& ranked_free_nodes(ResourceKind kind);

  Config config_;
  std::map<std::string, StageProfileEstimate> profiles_;
  // Dispatch-path scratch: capacity persists across rounds.
  std::vector<std::pair<double, NodeId>> scored_scratch_;
  std::vector<NodeId> ranked_scratch_;
};

}  // namespace rupam
