// HEFT-style list scheduler — the classic heterogeneous workflow baseline
// (Topcuoglu et al., "Performance-Effective and Low-Complexity Task
// Scheduling for Heterogeneous Computing").
//
// Stages are prioritized by upward rank over the job's stage DAG:
//
//   rank_u(s) = avg_cost(s) + max over children c of rank_u(c)
//
// where avg_cost(s) is the stage's mean task execution cost averaged over
// the heterogeneous node cost table (per-node cpu_perf, NIC bandwidth and
// disk bandwidths from NodeSpec). Communication cost is folded into the
// child's avg_cost: in this simulator shuffle-fetch time is part of the
// child task's service time, so a separate edge term would double-count
// it (DESIGN.md §14 states the rank definition).
//
// Dispatch walks ready stages in descending rank and places each task on
// the free node with the earliest finish time — with only currently free
// slots admissible, EFT reduces to the minimum execution cost over free
// nodes (occupied nodes have unknowable ready times at dispatch instant).
//
// Like the other baselines it keeps the stock Spark mechanisms it does
// not replace: per-core slots, retry, speculative execution.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace rupam {

class HeftScheduler : public SchedulerBase {
 public:
  explicit HeftScheduler(SchedulerEnv env);

  std::string name() const override { return "HEFT"; }

  /// Precompute upward ranks for every stage of `app` (Simulation calls
  /// this before the first stage is submitted).
  void register_dag(const Application& app) override;

  /// rank_u of a stage; 0 for stages never announced via register_dag
  /// (they fall back to submission order among themselves).
  double upward_rank(StageId stage) const;

  /// Estimated execution cost of `task` on `node` (seconds): compute at
  /// the node's measured per-core speed (GPU path when both sides have
  /// one) plus input/shuffle volumes over the node's disk and NIC
  /// bandwidths. This is the heterogeneous cost table behind both the
  /// ranks and the EFT choice.
  static double exec_cost(const TaskSpec& task, const NodeSpec& node);

 protected:
  void try_dispatch() override;

 private:
  double avg_stage_cost(const Stage& stage) const;
  /// Best free node for `task` by exec_cost, ties to the lowest NodeId;
  /// kInvalidNode when no free slot exists.
  NodeId best_free_node(const TaskSpec& task);

  std::map<StageId, double> rank_;
  /// Rank-order scratch: rank is resolved once per stage per round, and
  /// sorting (rank desc, policy position asc) with plain std::sort matches
  /// stable_sort's output without its temporary-buffer allocation.
  struct RankedStage {
    double rank = 0.0;
    std::size_t pos = 0;
    StageState* stage = nullptr;
  };
  std::vector<RankedStage> order_scratch_;
};

}  // namespace rupam
