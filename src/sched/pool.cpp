#include "sched/pool.hpp"

#include <algorithm>

namespace rupam {

std::string_view to_string(PoolPolicy policy) {
  switch (policy) {
    case PoolPolicy::kFifo: return "FIFO";
    case PoolPolicy::kFair: return "FAIR";
  }
  return "?";
}

const PoolSpec& PoolConfig::spec(const std::string& name) const {
  static const PoolSpec kDefault{};
  auto it = pools.find(name);
  return it == pools.end() ? kDefault : it->second;
}

bool fair_less(const PoolSnapshot& a, const PoolSnapshot& b) {
  bool a_needy = a.running < a.min_share;
  bool b_needy = b.running < b.min_share;
  double a_min_ratio =
      static_cast<double>(a.running) / static_cast<double>(std::max(a.min_share, 1));
  double b_min_ratio =
      static_cast<double>(b.running) / static_cast<double>(std::max(b.min_share, 1));
  double a_weight_ratio = static_cast<double>(a.running) / std::max(a.weight, 1e-9);
  double b_weight_ratio = static_cast<double>(b.running) / std::max(b.weight, 1e-9);
  if (a_needy && !b_needy) return true;
  if (!a_needy && b_needy) return false;
  if (a_needy && b_needy) {
    if (a_min_ratio != b_min_ratio) return a_min_ratio < b_min_ratio;
  } else if (a_weight_ratio != b_weight_ratio) {
    return a_weight_ratio < b_weight_ratio;
  }
  return a.name < b.name;
}

std::vector<std::string> fair_order(std::vector<PoolSnapshot> pools) {
  std::sort(pools.begin(), pools.end(),
            [](const PoolSnapshot& a, const PoolSnapshot& b) { return fair_less(a, b); });
  std::vector<std::string> out;
  out.reserve(pools.size());
  for (const auto& p : pools) out.push_back(p.name);
  return out;
}

}  // namespace rupam
