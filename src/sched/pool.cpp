#include "sched/pool.hpp"

#include <algorithm>

namespace rupam {

std::string_view to_string(PoolPolicy policy) {
  switch (policy) {
    case PoolPolicy::kFifo: return "FIFO";
    case PoolPolicy::kFair: return "FAIR";
  }
  return "?";
}

const PoolSpec& PoolConfig::spec(const std::string& name) const {
  static const PoolSpec kDefault{};
  auto it = pools.find(name);
  return it == pools.end() ? kDefault : it->second;
}

namespace {

// Spark's FairSchedulingAlgorithm without the name tie-break: negative
// when a schedules first, positive when b does, 0 when the numeric inputs
// tie (caller falls through to its name / lex-rank tie-break).
int fair_compare(int a_running, double a_weight, int a_min_share,
                 int b_running, double b_weight, int b_min_share) {
  bool a_needy = a_running < a_min_share;
  bool b_needy = b_running < b_min_share;
  double a_min_ratio =
      static_cast<double>(a_running) / static_cast<double>(std::max(a_min_share, 1));
  double b_min_ratio =
      static_cast<double>(b_running) / static_cast<double>(std::max(b_min_share, 1));
  double a_weight_ratio = static_cast<double>(a_running) / std::max(a_weight, 1e-9);
  double b_weight_ratio = static_cast<double>(b_running) / std::max(b_weight, 1e-9);
  if (a_needy && !b_needy) return -1;
  if (!a_needy && b_needy) return 1;
  if (a_needy && b_needy) {
    if (a_min_ratio != b_min_ratio) return a_min_ratio < b_min_ratio ? -1 : 1;
  } else if (a_weight_ratio != b_weight_ratio) {
    return a_weight_ratio < b_weight_ratio ? -1 : 1;
  }
  return 0;
}

}  // namespace

bool fair_less(const PoolSnapshot& a, const PoolSnapshot& b) {
  int cmp = fair_compare(a.running, a.weight, a.min_share, b.running, b.weight, b.min_share);
  if (cmp != 0) return cmp < 0;
  return a.name < b.name;
}

bool fair_less(const PoolIdSnapshot& a, const PoolIdSnapshot& b) {
  int cmp = fair_compare(a.running, a.weight, a.min_share, b.running, b.weight, b.min_share);
  if (cmp != 0) return cmp < 0;
  return a.lex_rank < b.lex_rank;
}

std::vector<std::string> fair_order(std::vector<PoolSnapshot> pools) {
  std::sort(pools.begin(), pools.end(),
            [](const PoolSnapshot& a, const PoolSnapshot& b) { return fair_less(a, b); });
  std::vector<std::string> out;
  out.reserve(pools.size());
  for (const auto& p : pools) out.push_back(p.name);
  return out;
}

}  // namespace rupam
