#include "sched/speculation.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace rupam {

SimTime straggler_threshold(const std::vector<double>& finished_runtimes,
                            std::size_t total_tasks, const SpeculationRule& rule) {
  if (total_tasks == 0 || finished_runtimes.empty()) return -1.0;
  double finished = static_cast<double>(finished_runtimes.size());
  if (finished < rule.quantile * static_cast<double>(total_tasks)) return -1.0;
  double median = percentile(finished_runtimes, 50.0);
  return std::max(rule.multiplier * median, rule.min_threshold);
}

SimTime straggler_threshold(const std::vector<double>& finished_runtimes,
                            std::size_t total_tasks, const SpeculationRule& rule,
                            std::vector<double>& scratch) {
  if (total_tasks == 0 || finished_runtimes.empty()) return -1.0;
  double finished = static_cast<double>(finished_runtimes.size());
  if (finished < rule.quantile * static_cast<double>(total_tasks)) return -1.0;
  scratch.assign(finished_runtimes.begin(), finished_runtimes.end());
  double median = percentile_inplace(scratch, 50.0);
  return std::max(rule.multiplier * median, rule.min_threshold);
}

bool is_straggler(SimTime elapsed, SimTime threshold) {
  return threshold >= 0.0 && elapsed > threshold;
}

}  // namespace rupam
