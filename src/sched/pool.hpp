// Cross-job scheduling pools: Spark's FIFO and FAIR TaskSet-ordering
// policies (spark.scheduler.mode, fairscheduler.xml pools).
//
// A pool groups the TaskSets of one tenant (or job class). Under FIFO the
// scheduler drains tasksets in (job, stage) submission order; under FAIR
// each pool is ranked every dispatch round by Spark's fair-sharing rule
// over its currently running tasks (minShare first, then min-share ratio,
// then running/weight), and tasksets inside a pool stay FIFO. The ranking
// itself is pure logic so the unit tests can exercise weights, minShare
// and tie-breaks without a cluster.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/symbol.hpp"

namespace rupam {

enum class PoolPolicy {
  kFifo = 0,  // Spark's default: strict (job, stage) submission order
  kFair,      // weighted fair sharing across pools, FIFO within a pool
};

std::string_view to_string(PoolPolicy policy);

/// One pool's fair-share parameters (fairscheduler.xml <pool> entry).
struct PoolSpec {
  double weight = 1.0;
  int min_share = 0;  // cores the pool is owed before fair sharing kicks in
};

/// Cross-job scheduling configuration handed to SchedulerBase. Pools not
/// present in `pools` use the default PoolSpec (weight 1, no min share) —
/// exactly how Spark treats pools that fairscheduler.xml does not name.
struct PoolConfig {
  PoolPolicy policy = PoolPolicy::kFifo;
  std::map<std::string, PoolSpec> pools;

  const PoolSpec& spec(const std::string& name) const;
};

/// A pool's live state at one dispatch round — the inputs of Spark's
/// FairSchedulingAlgorithm.comparator.
struct PoolSnapshot {
  std::string name;
  int running = 0;  // tasks of this pool currently occupying cores
  double weight = 1.0;
  int min_share = 0;
};

/// Spark's FairSchedulingAlgorithm: pools below their minShare come first
/// (ordered by runningTasks/minShare), then the rest by runningTasks/weight;
/// final tie-break is the pool name, which keeps the order deterministic.
bool fair_less(const PoolSnapshot& a, const PoolSnapshot& b);

/// Pool names in fair-schedule order (most-starved first).
std::vector<std::string> fair_order(std::vector<PoolSnapshot> pools);

/// Allocation-free counterpart of PoolSnapshot for the hot dispatch path:
/// the pool is an interned PoolId, and the name tie-break is carried as a
/// precomputed lexicographic rank (see SchedulerBase::pool_lex_rank_) so
/// comparing two snapshots never touches the strings.
struct PoolIdSnapshot {
  PoolId id;
  std::uint32_t lex_rank = 0;  // rank of the pool name in lexicographic order
  int running = 0;
  double weight = 1.0;
  int min_share = 0;
};

/// fair_less over interned snapshots. Identical ordering to the string
/// overload as long as lex_rank reflects lexicographic name order.
bool fair_less(const PoolIdSnapshot& a, const PoolIdSnapshot& b);

/// Name under which a taskset with no explicit pool is scheduled.
inline constexpr const char* kDefaultPool = "default";

}  // namespace rupam
