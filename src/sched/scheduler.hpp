// Task-scheduler base: bookkeeping shared by the default Spark scheduler
// and RUPAM — task/stage state, attempt wiring, retry-on-failure, kill-the-
// loser semantics for speculative copies, and straggler detection.
//
// Subclasses implement try_dispatch(): examine cluster state, pick tasks,
// call launch_task(). Dispatch is requested (coalesced into a single event
// at the current simulation time) whenever anything changes: stage
// submission, task completion/failure, heartbeat, executor restart.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/liveness.hpp"
#include "common/symbol.hpp"
#include "dag/job.hpp"
#include "exec/executor.hpp"
#include "metrics/event_trace.hpp"
#include "obs/audit.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/overhead.hpp"
#include "sched/pool.hpp"
#include "simcore/simulator.hpp"
#include "tasks/locality.hpp"
#include "tasks/task_set.hpp"

namespace rupam {

struct SchedulerEnv {
  Simulator* sim = nullptr;
  Cluster* cluster = nullptr;
  /// One executor per node, indexed by NodeId.
  std::vector<Executor*> executors;
};

/// Spark's speculative-execution knobs (spark.speculation.*).
struct SpeculationConfig {
  bool enabled = true;
  SimTime interval = 1.0;    // check period
  double quantile = 0.75;    // fraction of tasks that must have finished
  double multiplier = 1.5;   // straggler = runtime > multiplier * median
};

/// Every observation sink a scheduler can feed, in one struct. None are
/// owned; a null field means "detached". Build one Observers and pass it
/// to SchedulerBase::attach — the one way sinks are wired (the old
/// per-sink setters are gone).
struct Observers {
  /// Structured scheduling-event trace.
  EventTrace* trace = nullptr;
  /// Metrics registry: binds the scheduler's series (launch/failure
  /// counters, blacklist churn, delay/runtime histograms).
  MetricsRegistry* metrics = nullptr;
  /// Dispatch-decision audit: one DispatchDecision per launch_task.
  DecisionAudit* audit = nullptr;
  /// Host wall-clock profiler: times every try_dispatch round and
  /// taskset submission.
  OverheadProfiler* profiler = nullptr;
};

/// Node-level fault tolerance: missed-heartbeat liveness plus failure
/// blacklisting (Spark's spark.blacklist.*). Disabled by default — as in
/// Spark 2.2 — so fault-free runs schedule no extra timer events and stay
/// bit-identical to earlier seeds.
struct FaultToleranceConfig {
  bool enabled = false;
  SimTime heartbeat_period = 1.0;     // must match the HeartbeatService
  int missed_heartbeats_dead = 3;     // node is dead after this many misses
  int blacklist_max_failures = 3;     // failures within the window → blacklist
  SimTime failure_window = 60.0;
  SimTime blacklist_duration = 120.0; // timed un-blacklist
  SimTime check_interval = 1.0;       // dead-sweep / expiry period
};

/// Spark-style dynamic slot reclaim under FAIR pools: a pool running below
/// its weighted fair share for `starvation_timeout` gets slots back by
/// killing the newest attempts of the most over-share pool (checkpoint-free
/// kill-and-resubmit — the task requeues with its original submit time, so
/// the wasted work lands in its JCT). Disabled by default: fair-share-only
/// runs schedule no extra timer events and stay bit-identical.
struct PreemptionConfig {
  bool enabled = false;
  SimTime interval = 2.0;            // reclaim-check period
  SimTime starvation_timeout = 6.0;  // below-share this long → preempt
  int max_kills_per_round = 2;       // kill budget per check
  /// Only pools above share_slack × fair share lose attempts (hysteresis:
  /// never preempt a pool sitting at its exact share).
  double share_slack = 1.2;
};

class SchedulerBase {
 public:
  using PartitionSuccessFn =
      std::function<void(StageId stage, int partition, const TaskMetrics&)>;

  explicit SchedulerBase(SchedulerEnv env);
  virtual ~SchedulerBase();

  SchedulerBase(const SchedulerBase&) = delete;
  SchedulerBase& operator=(const SchedulerBase&) = delete;

  virtual std::string name() const = 0;

  /// Entry point from the DAG scheduler.
  void submit(const TaskSet& task_set);
  /// Entry point from the heartbeat service.
  virtual void on_heartbeat(const NodeMetrics& metrics);

  void set_partition_success_handler(PartitionSuccessFn fn) {
    on_partition_success_ = std::move(fn);
  }
  void configure_speculation(SpeculationConfig cfg) { speculation_ = cfg; }
  void configure_fault_tolerance(const FaultToleranceConfig& cfg);
  void configure_preemption(const PreemptionConfig& cfg) { preemption_ = cfg; }
  const PreemptionConfig& preemption() const { return preemption_; }
  /// Cross-job scheduling policy (FIFO default, FAIR pools for
  /// multi-tenant runs). See sched/pool.hpp. Refreshes the dense per-pool
  /// spec mirror for pools already interned.
  void configure_pools(PoolConfig cfg);
  const PoolConfig& pools() const { return pools_; }
  /// Observer fired on every task launch with the owning job — the JCT
  /// accountant derives per-job queueing delay from the first launch.
  void set_launch_observer(std::function<void(JobId, SimTime)> fn) {
    on_task_launch_ = std::move(fn);
  }
  /// Attach (or detach, with null fields) every observation sink at once.
  /// This is the only sink-wiring entry point — the per-sink forwarders
  /// that once shadowed it are gone.
  void attach(const Observers& observers);
  const Observers& observers() const { return observers_; }

  /// Replay seam (counterfactual branching, src/replay/): consulted once
  /// per launch_task call with the scheduler's chosen placement and the
  /// prospective attempt id; returning a node replaces the choice for
  /// that one launch. Unset by default — the null check is the only cost,
  /// so recorded traces stay byte-identical.
  using DispatchInterceptor =
      std::function<std::optional<NodeId>(StageId stage, TaskId task, AttemptId attempt,
                                          NodeId chosen)>;
  void set_dispatch_interceptor(DispatchInterceptor fn) { interceptor_ = std::move(fn); }

  /// Whole-DAG visibility hook: Simulation announces each application
  /// before its first stage is submitted. The base class ignores it;
  /// rank-based schedulers (HEFT) precompute per-stage priorities here.
  virtual void register_dag(const Application& app) { (void)app; }

  /// Task attempts launched (primary + speculative), all time.
  std::size_t launches() const { return launches_; }
  /// try_dispatch rounds executed.
  std::size_t dispatch_rounds() const { return dispatch_rounds_; }

  /// Revive finished tasks whose map outputs were lost to a node crash; if
  /// the stage already drained, the partial stage is submitted afresh.
  /// Wired to DagScheduler::set_resubmit.
  void resubmit(const TaskSet& task_set);

  /// Neither dead (missed heartbeats) nor blacklisted. Always true while
  /// fault tolerance is disabled.
  bool node_usable(NodeId node) const;
  bool node_blacklisted(NodeId node) const;
  std::size_t blacklist_events() const { return blacklist_count_; }
  std::size_t unblacklist_events() const { return unblacklist_count_; }
  const FaultToleranceConfig& fault_tolerance() const { return fault_tolerance_; }

  /// Successful task attempts, in completion order (feeds every figure).
  const std::vector<TaskMetrics>& completed() const { return completed_; }
  /// Failed attempts (OOM, executor loss) — not straggler relocations.
  const std::vector<TaskMetrics>& failures() const { return failed_; }
  std::size_t straggler_copies() const { return straggler_copies_; }
  std::size_t relocations() const { return relocations_; }
  /// Fair-share reclaim kills (kill-and-resubmit, not failures).
  std::size_t preemptions() const { return preemptions_; }
  std::size_t active_stages() const { return stages_.size(); }

  /// Tasks waiting for a primary launch across all active stages — the
  /// autoscaler's pending-pressure signal.
  std::size_t pending_tasks() const;
  /// Free executor slots on schedulable (live) member nodes.
  int free_slots_total() const;

  /// Wire the executor of a node that joined after construction. Must be
  /// called in NodeId order (the executor list stays dense, indexed by
  /// NodeId) and before the node's kLive transition fires.
  void register_executor(Executor* exec);

  /// Weighted fair-share slot targets per pool over the pools that are
  /// currently active (running or with demand). Keyed by pool name;
  /// capacity is running attempts + free slots on live nodes.
  std::map<std::string, double> fair_share_targets() const;

  /// Tasks of `pool` currently occupying slots (live attempts, including
  /// speculative copies) — the fair-share "running cores" input.
  int pool_running_tasks(const std::string& pool) const;

  /// Dispatch-cost accounting for the indexed hot paths. `node_visits` and
  /// `task_checks` count actual work done inside try_dispatch rounds;
  /// `full_scan_equivalent` accumulates what the pre-index O(nodes × tasks)
  /// sweep would have cost per round, so the ratio is the speedup.
  struct DispatchWorkCounters {
    std::size_t rounds = 0;
    std::size_t node_visits = 0;
    std::size_t task_checks = 0;
    std::size_t full_scan_equivalent = 0;
  };
  const DispatchWorkCounters& dispatch_work() const { return dispatch_work_; }

 protected:
  struct Attempt {
    AttemptId id = 0;
    NodeId node = kInvalidNode;
    bool gpu = false;
    /// Resource queue this attempt was dispatched from (RUPAM admission
    /// accounting; Spark leaves it at the default).
    ResourceKind kind = ResourceKind::kCpu;
    std::shared_ptr<TaskExecution> exec;
  };
  struct TaskState {
    TaskSpec spec;
    SimTime submit_time = 0.0;
    bool pending = true;  // needs a (re)launch of the primary attempt
    bool finished = false;
    int failures = 0;
    /// Retry backoff after failures: not relaunchable before this time.
    SimTime not_before = 0.0;
    AttemptId next_attempt = 0;
    std::vector<Attempt> live;

    bool has_attempt_on(NodeId node) const;
    bool has_gpu_attempt() const;
  };
  struct StageState {
    TaskSet set;
    /// Interned pool id (assigned in submit; "" maps to kDefaultPool).
    PoolId pool;
    SimTime submit_time = 0.0;
    std::vector<TaskState> tasks;
    std::size_t remaining = 0;
    std::vector<double> finished_runtimes;
    /// Indices with pending && !finished, ascending. Tasks in retry
    /// backoff stay in the set (filtered at query time by launchable()).
    std::set<std::size_t> pending_index;
    // Spark delay-scheduling state.
    int allowed_locality = 0;
    SimTime last_launch = 0.0;
  };

  /// Subclass hook: launch whatever fits right now.
  virtual void try_dispatch() = 0;

  /// Active stages in cross-job policy order: FIFO = ascending (job,
  /// stage) submission order; FAIR = pools ranked by weighted fair share
  /// over running tasks (minShare first), FIFO within a pool. Schedulers
  /// walk this instead of stages_ so pool policy decides which job's
  /// taskset is offered resources before per-node placement logic runs.
  /// Returns a reference into member scratch, valid until the next call
  /// (each dispatch round recomputes; never iterate two results at once).
  const std::vector<StageState*>& schedulable_stages();

  /// The pool a stage is billed to (interned at submit; "" → kDefaultPool).
  static PoolId pool_of(const StageState& stage) { return stage.pool; }
  /// Name behind an interned pool id — O(1), no allocation.
  const std::string& pool_name(PoolId id) const { return pool_symbols_.name(id); }

  /// Pool ids in fair-schedule order over the currently active stages.
  /// Reference into member scratch, valid until the next call.
  const std::vector<PoolId>& fair_pool_order();
  /// Subclass hooks around the task life cycle.
  virtual void stage_submitted(StageState& stage) { (void)stage; }
  virtual void task_succeeded(StageState& stage, TaskState& task, const TaskMetrics& metrics) {
    (void)stage, (void)task, (void)metrics;
  }
  virtual void task_failed(StageState& stage, TaskState& task, const std::string& reason) {
    (void)stage, (void)task, (void)reason;
  }
  virtual void task_relaunchable(StageState& stage, TaskState& task) {
    (void)stage, (void)task;
  }
  /// Fired whenever a task's membership in stage.pending_index changes
  /// (launch clears it, failure/relocation/resubmit restore it). Not fired
  /// for the initial population at submit — build stage indexes in
  /// stage_submitted instead.
  virtual void task_pending_changed(StageState& stage, std::size_t index, bool pending) {
    (void)stage, (void)index, (void)pending;
  }
  /// Fired just before a drained stage is erased from stages_.
  virtual void stage_removed(StageState& stage) { (void)stage; }
  /// Fired when block `key` appears on / disappears from `node`'s cache
  /// (after cache_locations_ was updated).
  virtual void cache_block_changed(NodeId node, const std::string& key, bool present) {
    (void)node, (void)key, (void)present;
  }
  /// Called after configure_fault_tolerance (RUPAM forwards the liveness
  /// settings to its ResourceMonitor).
  virtual void fault_tolerance_changed() {}
  /// Fired on every cluster lifecycle transition, after the base class has
  /// already reconciled its own indexes (maybe-free set, blacklist,
  /// liveness). Subclasses drop or add their per-node structures here
  /// (RUPAM: monitor rows, GPU node list; StageAware: capability ranking).
  virtual void node_membership_changed(NodeId node, NodeLifecycle state) {
    (void)node, (void)state;
  }

  /// Placement rationale a subclass stages for the launch_task call it is
  /// about to make (consumed by that call, success or failure). `reason`
  /// is a stable token from the vocabulary in DESIGN.md §8; `detail`
  /// carries scheduler-specific key=value context.
  struct Explain {
    std::string reason;
    std::string detail;
    int candidates = 0;
    std::vector<NodeId> candidate_nodes;
  };
  /// Stage the rationale for the next launch_task. No-op (and the caller
  /// should skip building strings) while auditing is off.
  void explain_next_launch(Explain explain);
  /// True when an audit sink is attached — schedulers gate rationale
  /// string-building on this.
  bool audit_enabled() const { return audit_ != nullptr; }
  /// True when a trace sink is attached — launch paths gate trace-detail
  /// string construction on this (lazy-observability contract, DESIGN §15).
  bool tracing() const { return trace_ != nullptr; }
  /// Attached profiler (may be null) for subclass-specific sections.
  OverheadProfiler* profiler() const { return profiler_; }

  /// Launch an attempt of `task` on `node`. `speculative` marks extra
  /// copies (primary pending flag untouched). Returns false if the
  /// executor is down. `kind` tags the attempt for per-resource admission
  /// accounting.
  bool launch_task(StageState& stage, TaskState& task, NodeId node, bool use_gpu,
                   bool speculative, ResourceKind kind = ResourceKind::kCpu);

  /// Kill a running attempt and put the task back in the pending pool
  /// (RUPAM's straggler relocation, §III-C3). Returns false if not running.
  bool relocate_task(StageState& stage, TaskState& task, const std::string& reason);

  /// Fair-share reclaim: kill every live attempt of `task` and requeue it
  /// (traced as kTaskPreempted, counted in preemptions(), no failure or
  /// blacklist accounting). Returns false if nothing was running.
  bool preempt_task(StageState& stage, TaskState& task);

  Locality locality_for(const TaskSpec& spec, NodeId node) const;
  Executor* executor(NodeId node) const;
  /// Task is waiting for its primary attempt and past any retry backoff.
  bool launchable(const TaskState& task) const;
  Simulator& sim() const { return *env_.sim; }
  Cluster& cluster() const { return *env_.cluster; }

  /// Lowest-index launchable task of `stage`, via pending_index — the
  /// indexed equivalent of "first launchable task scanning from 0".
  /// Backoff tasks are skipped (and counted as task_checks).
  TaskState* next_launchable(StageState& stage);

  /// Visit nodes that may have a free slot, in NodeId ring order starting
  /// at `start`, until `visit` returns false. Nodes whose executor is down
  /// or slot-full are lazily dropped from the candidate set (they re-enter
  /// via note_node_maybe_free); unusable (dead/blacklisted) nodes are
  /// skipped but kept, since un-blacklisting is time-based, not evented.
  /// Equivalent to the pre-index `ids[(i + rotation) % n]` sweep
  /// restricted to nodes that pass the free/alive checks. A template so
  /// the per-round visitor lambda never lands in a heap-backed
  /// std::function (the dispatch path is allocation-free).
  template <class Visit>
  void for_each_ready_node(NodeId start, Visit&& visit) {
    // Two arcs of the NodeId ring: [start, end) then [begin, start).
    auto sweep = [&](std::set<NodeId>::iterator it, std::set<NodeId>::iterator end) {
      while (it != end) {
        NodeId node = *it;
        Executor* exec = executor(node);
        if (exec == nullptr || !exec->alive() || exec->free_slots() <= 0) {
          it = maybe_free_.erase(it);
          continue;
        }
        ++it;
        if (!node_usable(node)) continue;
        ++dispatch_work_.node_visits;
        if (!visit(node, *exec)) return false;
      }
      return true;
    };
    if (!sweep(maybe_free_.lower_bound(start), maybe_free_.end())) return;
    sweep(maybe_free_.begin(), maybe_free_.lower_bound(start));
  }
  /// Superset of the nodes with a free slot (lazy deletion — callers must
  /// re-check free_slots/alive/usable at use).
  const std::set<NodeId>& maybe_free_nodes() const { return maybe_free_; }
  /// Re-add `node` to the maybe-free set (slot may have opened).
  void note_node_maybe_free(NodeId node);

  /// Live attempts dispatched from `kind`'s queue currently on `node` —
  /// O(1) replacement for scanning every stage's attempt lists (RUPAM
  /// admission accounting).
  int live_attempts(NodeId node, ResourceKind kind) const;

  /// Executors caching block `key` right now (null if none). Maintained
  /// incrementally from BlockCache change events.
  const std::set<NodeId>* nodes_caching(const std::string& key) const;

  /// True if `task` already received its one speculative copy.
  bool already_speculated(TaskId task) const { return speculated_.count(task) > 0; }

  /// Work accounting inside try_dispatch (see DispatchWorkCounters).
  void note_node_visit() { ++dispatch_work_.node_visits; }
  void note_task_checks(std::size_t n) { dispatch_work_.task_checks += n; }

  /// Coalesced dispatch request.
  void request_dispatch();

  /// Tasks eligible for a speculative copy right now: (stage, task index).
  /// Reference into member scratch, valid until the next call.
  const std::vector<std::pair<StageId, std::size_t>>& find_speculatable();
  /// Records that a speculative copy was launched (stats + dedup).
  void note_speculative_launch(TaskId task);

  /// One failed attempt attributed to `node`; blacklists it once the
  /// failure count inside the window crosses the threshold. Protected so
  /// the blacklist unit tests can drive it directly.
  void note_node_failure(NodeId node);

  SchedulerEnv env_;
  std::map<StageId, StageState> stages_;
  SpeculationConfig speculation_;
  FaultToleranceConfig fault_tolerance_;
  PreemptionConfig preemption_;
  PoolConfig pools_;

 private:
  void handle_success(StageId stage_id, std::size_t task_index, AttemptId attempt,
                      const TaskMetrics& metrics);
  void handle_failure(StageId stage_id, std::size_t task_index, AttemptId attempt,
                      const std::string& reason);
  void speculation_tick();
  void fault_tolerance_tick();
  void preemption_tick();
  /// Base-class reconciliation for a cluster lifecycle transition; runs
  /// before the node_membership_changed subclass hook.
  void handle_membership(NodeId node, NodeLifecycle state);
  /// Shared wiring for construction-time and runtime-registered executors.
  void wire_executor(Executor* exec);

  /// Intern a pool name, growing every dense PoolId-indexed mirror and
  /// recomputing lexicographic ranks on first sighting (rare: once per
  /// distinct pool name over a run). Notifies an attached audit sink so
  /// exports can resolve the pool column.
  PoolId intern_pool(std::string_view name);

  /// Set task.pending, keep stage.pending_index in sync, and fire
  /// task_pending_changed when set membership actually changed.
  void set_task_pending(StageState& stage, std::size_t index, bool pending);
  void on_cache_change(NodeId node, const std::string& key, bool present);
  void note_attempt_started(NodeId node, ResourceKind kind, const StageState& stage);
  void note_attempt_ended(NodeId node, ResourceKind kind, const StageState& stage);

  void trace(TraceEventType type, StageId stage, TaskId task, AttemptId attempt, NodeId node,
             std::string detail, SimTime duration = 0.0);

  void bind_metrics(MetricsRegistry* metrics);

  PartitionSuccessFn on_partition_success_;
  std::function<void(JobId, SimTime)> on_task_launch_;
  /// Replay override consulted in launch_task (null in normal runs).
  DispatchInterceptor interceptor_;
  /// Attached sinks; trace_/audit_/profiler_ mirror observers_ for the
  /// hot paths (metrics are consumed via the bound series pointers).
  Observers observers_;
  EventTrace* trace_ = nullptr;
  DecisionAudit* audit_ = nullptr;
  OverheadProfiler* profiler_ = nullptr;
  Explain pending_explain_;
  bool has_explain_ = false;
  std::size_t launches_ = 0;
  std::size_t dispatch_rounds_ = 0;
  // Series bound once in bind_metrics (via attach); null while metrics are off.
  std::array<Counter*, kNumLocalityLevels * 2> launch_counters_{};
  Counter* failure_counter_ = nullptr;
  Counter* dispatch_counter_ = nullptr;
  Counter* relocation_counter_ = nullptr;
  Counter* blacklist_add_counter_ = nullptr;
  Counter* blacklist_remove_counter_ = nullptr;
  Counter* gc_seconds_counter_ = nullptr;
  Histogram* delay_histogram_ = nullptr;
  Histogram* runtime_histogram_ = nullptr;
  std::vector<TaskMetrics> completed_;
  std::vector<TaskMetrics> failed_;
  std::set<TaskId> speculated_;
  /// Superset of nodes with a free slot (lazy deletion; see
  /// for_each_ready_node).
  std::set<NodeId> maybe_free_;
  /// Per-node live-attempt counts by dispatch kind.
  std::vector<std::array<int, kNumResourceKinds>> live_attempts_;
  /// Interned pool names; id 0 is always kDefaultPool. Per-scheduler, so
  /// concurrent sweep simulations never share state.
  TypedSymbolTable<PoolNameTag> pool_symbols_;
  /// Dense PoolId-indexed mirrors, grown by intern_pool.
  std::vector<PoolSpec> pool_specs_;
  /// PoolId → rank of its name in lexicographic order (the fair_less
  /// name tie-break without the strings).
  std::vector<std::uint32_t> pool_lex_rank_;
  /// Live attempts per pool (fair-share "running cores"), by PoolId.
  std::vector<int> pool_running_;
  /// Active-pool dedup stamps for the per-round pool scans.
  std::vector<std::uint64_t> pool_seen_stamp_;
  std::uint64_t pool_stamp_ = 0;
  // Reused per-round scratch buffers (DESIGN §15 "Dispatch data layout"):
  // cleared, refilled and returned by reference each round, so the steady
  // state allocates nothing once capacities have warmed up.
  std::vector<PoolIdSnapshot> pool_snapshot_scratch_;
  std::vector<PoolId> pool_order_scratch_;
  std::vector<std::size_t> pool_rank_scratch_;
  std::vector<StageState*> stage_order_scratch_;
  std::vector<std::pair<StageId, std::size_t>> speculatable_scratch_;
  std::vector<std::pair<double, std::pair<StageId, std::size_t>>> overdue_scratch_;
  std::vector<double> runtime_scratch_;
  // Preemption-scan scratch (same shape: dense by PoolId).
  std::vector<PoolId> active_pools_scratch_;
  std::vector<double> pool_target_scratch_;
  std::vector<std::size_t> pool_demand_scratch_;
  std::vector<PoolId> due_scratch_;
  std::vector<std::tuple<SimTime, StageState*, std::size_t>> preempt_candidates_scratch_;
  /// Block key → nodes caching it (from BlockCache change events).
  std::map<std::string, std::set<NodeId>> cache_locations_;
  DispatchWorkCounters dispatch_work_;
  std::size_t straggler_copies_ = 0;
  std::size_t relocations_ = 0;
  std::size_t preemptions_ = 0;
  bool dispatch_requested_ = false;
  EventHandle speculation_timer_;
  EventHandle fault_tolerance_timer_;
  EventHandle preemption_timer_;
  /// PoolId → time it fell below fair share; < 0 = not starved (cleared
  /// when served/reclaimed).
  std::vector<SimTime> starved_since_;
  /// Cluster membership subscription (unsubscribed in the destructor).
  std::size_t membership_token_ = 0;
  NodeLivenessTracker liveness_;
  std::map<NodeId, std::vector<SimTime>> recent_failures_;
  std::map<NodeId, SimTime> blacklisted_until_;
  std::size_t blacklist_count_ = 0;
  std::size_t unblacklist_count_ = 0;
};

}  // namespace rupam
