#include "sched/offers.hpp"

namespace rupam {

std::vector<Locality> valid_locality_levels(const TaskSet& set) {
  bool any_cached = false;
  bool any_preferred = false;
  for (const auto& t : set.tasks) {
    if (!t.input_cache_key.empty()) any_cached = true;
    if (!t.preferred_nodes.empty()) any_preferred = true;
  }
  std::vector<Locality> levels;
  if (any_cached) levels.push_back(Locality::kProcessLocal);
  if (any_preferred) levels.push_back(Locality::kNodeLocal);
  levels.push_back(Locality::kAny);
  return levels;
}

}  // namespace rupam
