// Single construction point for every task scheduler. The rest of the
// code base (Simulation, CLI, benches, tests) names schedulers via
// SchedulerKind or the CLI string and calls make_scheduler — there are
// no per-call-site if/switch construction chains.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "sched/rupam/rupam_scheduler.hpp"
#include "sched/scheduler.hpp"
#include "sched/spark/spark_scheduler.hpp"

namespace rupam {

enum class SchedulerKind {
  kSpark,       // the paper's baseline: locality-only, per-core slots
  kRupam,       // the paper's contribution
  kStageAware,  // prior-work proxy: heterogeneity-aware, stage-granular
  kFifo,        // oblivious lower bound
  kHeft,        // classic workflow baseline: upward-rank list scheduling
};

std::string_view to_string(SchedulerKind kind);

/// Map a CLI name (spark|rupam|stageaware|fifo|heft) to its kind; nullopt
/// for unknown names.
std::optional<SchedulerKind> scheduler_kind_from_name(const std::string& name);

/// Per-scheduler tuning knobs. Schedulers only read their own section, so
/// one struct can be shared across a whole experiment sweep.
struct SchedulerConfig {
  RupamConfig rupam;
  SparkScheduler::Config spark;
};

/// Construct a scheduler of `kind` over `env`.
std::unique_ptr<SchedulerBase> make_scheduler(SchedulerKind kind, SchedulerEnv env,
                                              const SchedulerConfig& config = {});

/// String-named variant for CLI-style call sites; throws
/// std::invalid_argument on an unknown name.
std::unique_ptr<SchedulerBase> make_scheduler(const std::string& name, SchedulerEnv env,
                                              const SchedulerConfig& config = {});

}  // namespace rupam
