#include "cluster/fair_share_resource.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace rupam {
namespace {
// A claim is complete once its remaining service time drops below this.
// The criterion must be time-based, not work-based: residual work after
// repeated progress integration can imply an ETA smaller than the
// floating-point resolution of the current timestamp, and a work-only
// epsilon then freezes simulated time in a zero-delay event loop.
constexpr double kTimeEpsilon = 1e-9;
}  // namespace

FairShareResource::FairShareResource(Simulator& sim, std::string name, double capacity,
                                     double per_claim_cap, double concurrency_penalty)
    : sim_(sim),
      name_(std::move(name)),
      capacity_(capacity),
      per_claim_cap_(per_claim_cap),
      concurrency_penalty_(concurrency_penalty) {
  if (capacity_ <= 0.0 || per_claim_cap_ <= 0.0) {
    throw std::invalid_argument("FairShareResource: capacity must be > 0");
  }
  if (concurrency_penalty_ < 0.0) {
    throw std::invalid_argument("FairShareResource: negative concurrency penalty");
  }
  last_update_ = sim_.now();
}

double FairShareResource::effective_capacity() const {
  double scaled = capacity_ * capacity_scale_;
  if (claims_.size() <= 1) return scaled;
  return scaled / (1.0 + concurrency_penalty_ * static_cast<double>(claims_.size() - 1));
}

double FairShareResource::share_rate() const {
  if (claims_.empty()) return 0.0;
  return std::min(per_claim_cap_ * capacity_scale_,
                  effective_capacity() / static_cast<double>(claims_.size()));
}

void FairShareResource::integrate_progress() {
  SimTime now = sim_.now();
  double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0.0 || claims_.empty()) return;
  busy_seconds_ += dt;
  double base = share_rate();
  virtual_clock_ += base * dt;
  for (auto& [id, claim] : claims_) {
    double drained = base * claim.speed_factor * dt;
    drained = std::min(drained, claim.remaining);
    claim.remaining -= drained;
    drained_ += drained;
  }
}

FairShareResource::ClaimId FairShareResource::start(double work, double speed_factor,
                                                    CompletionFn on_complete) {
  if (speed_factor <= 0.0) throw std::invalid_argument("FairShareResource: speed_factor <= 0");
  integrate_progress();
  ClaimId id = next_id_++;
  double eta_key = virtual_clock_ + std::max(work, 0.0) / speed_factor;
  claims_.emplace(id, Claim{std::max(work, 0.0), speed_factor, eta_key, std::move(on_complete)});
  eta_index_.emplace(eta_key, id);
  reschedule();
  return id;
}

void FairShareResource::set_capacity_scale(double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("FairShareResource: capacity scale must be in (0, 1]");
  }
  integrate_progress();
  capacity_scale_ = scale;
  reschedule();
}

void FairShareResource::cancel(ClaimId id) {
  auto it = claims_.find(id);
  if (it == claims_.end()) return;
  integrate_progress();
  eta_index_.erase({it->second.eta_key, id});
  claims_.erase(it);
  reschedule();
}

void FairShareResource::reschedule() {
  if (claims_.empty()) {
    pending_event_.cancel();
    pending_time_ = -1.0;
    return;
  }
  double base = share_rate();
  // The index front is the earliest finisher; its ETA is evaluated with the
  // same expression the former full scan used, so the scheduled time (and
  // thus every golden trace) is bit-identical.
  const Claim& front = claims_.find(eta_index_.begin()->second)->second;
  double rate = base * front.speed_factor;
  double delay = std::max(front.remaining / rate, 0.0);
  SimTime when = sim_.now() + delay;
  if (pending_event_.pending() && when == pending_time_) {
    // Same completion instant as the already-queued event (common when
    // several claims start at one dispatch tick on a cap-bound resource):
    // keep the queued event instead of churning the kernel heap.
    return;
  }
  pending_event_.cancel();
  pending_event_ = sim_.schedule_after(delay, [this] { on_completion_event(); });
  pending_time_ = when;
}

void FairShareResource::on_completion_event() {
  integrate_progress();
  double base = share_rate();
  std::vector<CompletionFn> finished;
  for (auto it = claims_.begin(); it != claims_.end();) {
    double rate = base * it->second.speed_factor;
    if (it->second.remaining <= rate * kTimeEpsilon) {
      finished.push_back(std::move(it->second.on_complete));
      drained_ += it->second.remaining;
      eta_index_.erase({it->second.eta_key, it->first});
      it = claims_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();
  // Callbacks run after internal state is consistent; they may start new
  // claims on this resource (each start() reschedules safely).
  for (auto& fn : finished) {
    if (fn) fn();
  }
}

double FairShareResource::utilization() const {
  if (claims_.empty()) return 0.0;
  if (per_claim_cap_ >= capacity_) {
    // A single claim can saturate this resource (NIC, disk), so "fraction
    // of capacity in use" is binary and useless for ranking. Report a
    // queue-depth proxy instead: 0 when idle, approaching 1 with depth.
    double n = static_cast<double>(claims_.size());
    return n / (n + 4.0);
  }
  double used = std::min(capacity_, per_claim_cap_ * static_cast<double>(claims_.size()));
  return used / capacity_;
}

double FairShareResource::current_rate() const {
  double base = share_rate();
  double total = 0.0;
  for (const auto& [id, claim] : claims_) total += base * claim.speed_factor;
  return total;
}

double FairShareResource::total_drained() {
  // Integrating advances last_update_ but leaves every claim's ETA (and
  // thus the pending completion event) unchanged, so no reschedule —
  // querying must not perturb event ordering. (This used to cancel and
  // re-push the completion event with a fresh sequence number, letting a
  // read-only query reorder same-time events.)
  integrate_progress();
  return drained_;
}

double FairShareResource::busy_seconds() {
  // Same integrate-only contract as total_drained().
  integrate_progress();
  return busy_seconds_;
}

}  // namespace rupam
