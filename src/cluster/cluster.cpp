#include "cluster/cluster.hpp"

#include <algorithm>

namespace rupam {

const char* to_string(NodeLifecycle state) {
  switch (state) {
    case NodeLifecycle::kProvisioning: return "provisioning";
    case NodeLifecycle::kLive: return "live";
    case NodeLifecycle::kDraining: return "draining";
    case NodeLifecycle::kDecommissioned: return "decommissioned";
  }
  return "?";
}

Cluster::Cluster(Simulator& sim, Bytes switch_bandwidth)
    : sim_(sim), switch_bandwidth_(switch_bandwidth) {
  if (switch_bandwidth <= 0.0) throw std::invalid_argument("Cluster: bad switch bandwidth");
}

NodeId Cluster::add_node(NodeSpec spec) {
  auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(sim_, id, std::move(spec), switch_bandwidth_));
  memberships_.push_back(Membership{NodeLifecycle::kLive, sim_.now(), 0.0});
  ++member_count_;
  min_memory_dirty_ = true;
  return id;
}

NodeId Cluster::provision_node(NodeSpec spec, SimTime boot_delay) {
  if (boot_delay < 0.0) throw std::invalid_argument("Cluster: negative boot delay");
  auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(sim_, id, std::move(spec), switch_bandwidth_));
  nodes_.back()->set_online(false);
  memberships_.push_back(Membership{NodeLifecycle::kProvisioning, sim_.now(), 0.0});
  ++member_count_;
  min_memory_dirty_ = true;
  notify(id, NodeLifecycle::kProvisioning);
  sim_.schedule_after(boot_delay, [this, id] {
    Membership& m = membership(id);
    // A node drained or revoked mid-boot never comes online.
    if (m.state != NodeLifecycle::kProvisioning) return;
    m.state = NodeLifecycle::kLive;
    node(id).set_online(true);
    notify(id, NodeLifecycle::kLive);
  });
  return id;
}

void Cluster::begin_drain(NodeId id) {
  Membership& m = membership(id);
  if (m.state == NodeLifecycle::kDraining || m.state == NodeLifecycle::kDecommissioned) return;
  m.state = NodeLifecycle::kDraining;
  notify(id, NodeLifecycle::kDraining);
}

void Cluster::decommission(NodeId id) {
  Membership& m = membership(id);
  if (m.state == NodeLifecycle::kDecommissioned) return;
  m.state = NodeLifecycle::kDecommissioned;
  m.left_at = sim_.now();
  --member_count_;
  node(id).set_online(false);
  min_memory_dirty_ = true;
  notify(id, NodeLifecycle::kDecommissioned);
}

NodeLifecycle Cluster::lifecycle(NodeId id) const { return membership(id).state; }

bool Cluster::member(NodeId id) const {
  return membership(id).state != NodeLifecycle::kDecommissioned;
}

bool Cluster::schedulable(NodeId id) const {
  return membership(id).state == NodeLifecycle::kLive;
}

std::size_t Cluster::subscribe_membership(MembershipListener listener) {
  std::size_t token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void Cluster::unsubscribe_membership(std::size_t token) {
  listeners_.erase(std::remove_if(listeners_.begin(), listeners_.end(),
                                  [token](const auto& p) { return p.first == token; }),
                   listeners_.end());
}

void Cluster::notify(NodeId id, NodeLifecycle state) {
  // Index-based walk: a listener may subscribe another listener while we
  // iterate (new subscribers do not see the in-flight event).
  std::size_t count = listeners_.size();
  for (std::size_t i = 0; i < count && i < listeners_.size(); ++i) {
    listeners_[i].second(id, state);
  }
}

Cluster::Membership& Cluster::membership(NodeId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= memberships_.size()) {
    throw std::out_of_range("Cluster::membership: bad id");
  }
  return memberships_[static_cast<std::size_t>(id)];
}

const Cluster::Membership& Cluster::membership(NodeId id) const {
  return const_cast<Cluster*>(this)->membership(id);
}

Node& Cluster::node(NodeId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    throw std::out_of_range("Cluster::node: bad id");
  }
  return *nodes_[static_cast<std::size_t>(id)];
}

const Node& Cluster::node(NodeId id) const {
  return const_cast<Cluster*>(this)->node(id);
}

std::vector<NodeId> Cluster::node_ids() const {
  std::vector<NodeId> ids(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) ids[i] = static_cast<NodeId>(i);
  return ids;
}

std::vector<NodeId> Cluster::nodes_of_class(const std::string& node_class) const {
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (memberships_[i].state == NodeLifecycle::kDecommissioned) continue;
    if (nodes_[i]->spec().node_class == node_class) ids.push_back(static_cast<NodeId>(i));
  }
  return ids;
}

Bytes Cluster::min_node_memory() const {
  if (!min_memory_dirty_) return min_memory_cache_;
  Bytes m = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (memberships_[i].state == NodeLifecycle::kDecommissioned) continue;
    if (first || nodes_[i]->spec().memory < m) m = nodes_[i]->spec().memory;
    first = false;
  }
  min_memory_cache_ = m;
  min_memory_dirty_ = false;
  return m;
}

double Cluster::provisioned_cost(SimTime now) const {
  double cost = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    double hourly = nodes_[i]->spec().hourly_cost;
    if (hourly <= 0.0) continue;
    const Membership& m = memberships_[i];
    SimTime until = m.state == NodeLifecycle::kDecommissioned ? m.left_at : now;
    if (until > m.joined_at) cost += hourly * (until - m.joined_at) / 3600.0;
  }
  return cost;
}

}  // namespace rupam
