#include "cluster/cluster.hpp"

#include <algorithm>

namespace rupam {

Cluster::Cluster(Simulator& sim, Bytes switch_bandwidth)
    : sim_(sim), switch_bandwidth_(switch_bandwidth) {
  if (switch_bandwidth <= 0.0) throw std::invalid_argument("Cluster: bad switch bandwidth");
}

NodeId Cluster::add_node(NodeSpec spec) {
  auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(sim_, id, std::move(spec), switch_bandwidth_));
  return id;
}

Node& Cluster::node(NodeId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    throw std::out_of_range("Cluster::node: bad id");
  }
  return *nodes_[static_cast<std::size_t>(id)];
}

const Node& Cluster::node(NodeId id) const {
  return const_cast<Cluster*>(this)->node(id);
}

std::vector<NodeId> Cluster::node_ids() const {
  std::vector<NodeId> ids(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) ids[i] = static_cast<NodeId>(i);
  return ids;
}

std::vector<NodeId> Cluster::nodes_of_class(const std::string& node_class) const {
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->spec().node_class == node_class) ids.push_back(static_cast<NodeId>(i));
  }
  return ids;
}

Bytes Cluster::min_node_memory() const {
  Bytes m = 0.0;
  bool first = true;
  for (const auto& n : nodes_) {
    if (first || n->spec().memory < m) m = n->spec().memory;
    first = false;
  }
  return m;
}

}  // namespace rupam
