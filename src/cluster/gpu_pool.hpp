// Exclusive-use accelerator devices on a node (stack nodes carry one
// NVIDIA Tesla each in the paper's Hydra cluster).
#pragma once

#include <stdexcept>

namespace rupam {

class GpuPool {
 public:
  explicit GpuPool(int devices) : total_(devices), idle_(devices) {
    if (devices < 0) throw std::invalid_argument("GpuPool: negative device count");
  }

  int total() const { return total_; }
  int idle() const { return idle_; }
  int busy() const { return total_ - idle_; }

  /// Try to take one device; returns false when none is idle.
  bool try_acquire();
  void release();

 private:
  int total_;
  int idle_;
};

}  // namespace rupam
