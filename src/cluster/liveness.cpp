#include "cluster/liveness.hpp"

#include <stdexcept>

namespace rupam {

NodeLivenessTracker::NodeLivenessTracker(LivenessConfig config) { configure(config); }

void NodeLivenessTracker::configure(LivenessConfig config) {
  if (config.heartbeat_period <= 0.0) {
    throw std::invalid_argument("NodeLivenessTracker: heartbeat period must be > 0");
  }
  if (config.missed_heartbeats_dead < 1) {
    throw std::invalid_argument("NodeLivenessTracker: missed threshold must be >= 1");
  }
  config_ = config;
}

bool NodeLivenessTracker::heartbeat(NodeId node, SimTime now) {
  State& s = nodes_[node];
  s.last_heartbeat = now;
  bool revived = s.dead;
  s.dead = false;
  return revived;
}

std::vector<NodeId> NodeLivenessTracker::sweep(SimTime now) {
  std::vector<NodeId> newly_dead;
  SimTime timeout =
      config_.heartbeat_period * static_cast<double>(config_.missed_heartbeats_dead);
  for (auto& [id, s] : nodes_) {
    if (!s.dead && now - s.last_heartbeat > timeout) {
      s.dead = true;
      newly_dead.push_back(id);
    }
  }
  return newly_dead;
}

bool NodeLivenessTracker::dead(NodeId node) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.dead;
}

}  // namespace rupam
