// Cluster presets used by the paper's experiments.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/node_spec.hpp"

namespace rupam {

/// Node classes of the Hydra cluster (paper Table II).
NodeSpec thor_spec();   // 8-core AMD FX-8320E @3.2 GHz, 16 GB, 1 GbE, SSD
NodeSpec hulk_spec();   // 32-core AMD Opteron 6380 @2.5 GHz, 64 GB, 10 GbE, HDD
NodeSpec stack_spec();  // 16-core Intel Xeon E5620 @2.4 GHz, 48 GB, 1 GbE, HDD, GPU

/// Populate `cluster` with the 12-node Hydra layout: 6× thor, 4× hulk,
/// 2× stack (paper §IV). Returns the node ids in creation order.
std::vector<NodeId> build_hydra(Cluster& cluster);

/// The 2-node motivational setup of §II-B: both 16 cores / 48 GB;
/// node-1 at 1.6 GHz with 1 GbE, node-2 at 2.4 GHz with 10 GbE.
/// The switch must be >= 10 GbE for the asymmetry to matter, so callers
/// should construct the Cluster with switch_bandwidth = gbit_per_s(10).
std::vector<NodeId> build_motivation_pair(Cluster& cluster);

}  // namespace rupam
