#include "cluster/presets.hpp"

#include "cluster/fleet.hpp"

namespace rupam {

NodeSpec thor_spec() {
  NodeSpec s;
  s.node_class = "thor";
  s.cores = 8;
  s.cpu_ghz = 3.2;  // AMD FX-8320E
  s.cpu_perf = 3.5;  // SysBench shows thor ~5x the others per run (Table IV)
  s.memory = 16 * kGiB;
  s.net_bandwidth = gbit_per_s(1.0);
  s.has_ssd = true;  // 512 GB Crucial SSD
  s.disk_read_bw = mib_per_s(510);
  s.disk_write_bw = mib_per_s(460);
  s.disk_capacity = 512.0 * kGiB;
  s.gpus = 0;
  return s;
}

NodeSpec hulk_spec() {
  NodeSpec s;
  s.node_class = "hulk";
  s.cores = 32;
  s.cpu_ghz = 2.5;  // AMD Opteron 6380
  s.cpu_perf = 1.1;  // SysBench: slightly better than stack (Table IV)
  s.memory = 64 * kGiB;
  s.net_bandwidth = gbit_per_s(10.0);
  s.has_ssd = false;  // 1 TB Seagate HDD
  s.disk_read_bw = mib_per_s(160);
  s.disk_write_bw = mib_per_s(150);
  s.gpus = 0;
  return s;
}

NodeSpec stack_spec() {
  NodeSpec s;
  s.node_class = "stack";
  s.cores = 16;
  s.cpu_ghz = 2.4;  // Intel Xeon E5620
  s.cpu_perf = 1.0;  // reference core
  s.memory = 48 * kGiB;
  s.net_bandwidth = gbit_per_s(1.0);
  s.has_ssd = false;
  s.disk_read_bw = mib_per_s(155);
  s.disk_write_bw = mib_per_s(145);
  s.gpus = 1;  // NVIDIA Tesla C2050
  return s;
}

std::vector<NodeId> build_hydra(Cluster& cluster) {
  return build_fleet(cluster, hydra_fleet_spec());
}

std::vector<NodeId> build_motivation_pair(Cluster& cluster) {
  std::vector<NodeId> ids;
  NodeSpec n1;
  n1.name = "node-1";
  n1.node_class = "slow-cpu";
  n1.cores = 16;
  n1.cpu_ghz = 1.6;
  n1.cpu_perf = 0.67;
  n1.memory = 48 * kGiB;
  n1.net_bandwidth = gbit_per_s(1.0);
  n1.has_ssd = false;
  ids.push_back(cluster.add_node(std::move(n1)));

  NodeSpec n2;
  n2.name = "node-2";
  n2.node_class = "fast-cpu";
  n2.cores = 16;
  n2.cpu_ghz = 2.4;
  n2.cpu_perf = 1.0;
  n2.memory = 48 * kGiB;
  n2.net_bandwidth = gbit_per_s(10.0);
  n2.has_ssd = false;
  ids.push_back(cluster.add_node(std::move(n2)));
  return ids;
}

}  // namespace rupam
