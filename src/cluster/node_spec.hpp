// Static hardware description of a cluster node (paper Table II).
#pragma once

#include <string>

#include "common/types.hpp"
#include "common/units.hpp"

namespace rupam {

/// Reference CPU frequency: CpuWork is expressed in core-seconds at this
/// clock. A core at 2× the reference executes CpuWork at 2× rate.
inline constexpr double kReferenceGhz = 2.0;

struct NodeSpec {
  std::string name;        // e.g. "thor3"
  std::string node_class;  // e.g. "thor" | "hulk" | "stack"

  int cores = 1;
  double cpu_ghz = kReferenceGhz;
  /// Measured per-core performance index relative to the reference core
  /// (clock alone understates real differences — the paper's SysBench run
  /// shows thor ~5x faster than stack/hulk despite a 1.3x clock gap).
  double cpu_perf = 1.0;

  Bytes memory = 16 * kGiB;

  /// Nominal NIC bandwidth (Table II). The switch can cap the achievable
  /// rate below this (Table IV: a 1 GbE switch levels every node).
  Bytes net_bandwidth = gbit_per_s(1.0);

  bool has_ssd = false;
  Bytes disk_read_bw = mib_per_s(150);
  Bytes disk_write_bw = mib_per_s(140);
  /// Storage capacity — drives HDFS-style block placement share.
  Bytes disk_capacity = 1024.0 * kGiB;

  int gpus = 0;
  /// Speedup of a GPU-accelerable compute phase versus one reference core.
  double gpu_speedup = 12.0;

  /// Cost-units per hour of fleet membership (cloud billing model). Zero
  /// for on-prem nodes; the elastic-fleet cost gates only count nodes with
  /// a positive rate (see Cluster::provisioned_cost).
  double hourly_cost = 0.0;

  /// Relative single-core speed versus the reference core.
  double core_speed() const { return cpu_perf; }

  std::string describe() const;
};

}  // namespace rupam
