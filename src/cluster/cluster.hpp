// A set of simulated nodes behind a shared switch.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

class Cluster {
 public:
  /// `switch_bandwidth` caps every NIC's achievable rate (Table IV shows a
  /// 1 GbE fabric leveling nominally-10GbE hulk nodes to ~940 Mbit/s).
  Cluster(Simulator& sim, Bytes switch_bandwidth = gbit_per_s(1.0));

  NodeId add_node(NodeSpec spec);

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  std::size_t size() const { return nodes_.size(); }

  std::vector<NodeId> node_ids() const;
  std::vector<NodeId> nodes_of_class(const std::string& node_class) const;

  Simulator& sim() { return sim_; }

  /// Smallest node memory in the cluster — default Spark sizes every
  /// executor to fit the weakest node (paper §IV: 14 GB for 16 GB thor).
  Bytes min_node_memory() const;

 private:
  Simulator& sim_;
  Bytes switch_bandwidth_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace rupam
