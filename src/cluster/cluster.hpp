// A set of simulated nodes behind a shared switch.
//
// Membership is a runtime lifecycle, not a construction-time constant:
// nodes added with add_node() start live, while provision_node() models a
// cloud instance that boots asynchronously. Every lifecycle transition is
// pushed to membership subscribers so no layer above the cluster holds a
// stale NodeId snapshot. NodeIds are never reused: a decommissioned node
// keeps its id (and its Node object, for post-mortem inspection) but drops
// out of every membership-aware query.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cluster/node.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

/// Node lifecycle: provisioning → live → draining → decommissioned.
/// Draining nodes finish their running tasks but accept no new work;
/// decommissioning is permanent (unlike a crash, which can recover).
enum class NodeLifecycle : std::uint8_t {
  kProvisioning,
  kLive,
  kDraining,
  kDecommissioned,
};

const char* to_string(NodeLifecycle state);

class Cluster {
 public:
  /// Called after every lifecycle transition with the node and its NEW
  /// state. The cluster's own bookkeeping (online flag, membership caches)
  /// is updated before listeners run, so they observe the post-transition
  /// world.
  using MembershipListener = std::function<void(NodeId, NodeLifecycle)>;

  /// `switch_bandwidth` caps every NIC's achievable rate (Table IV shows a
  /// 1 GbE fabric leveling nominally-10GbE hulk nodes to ~940 Mbit/s).
  Cluster(Simulator& sim, Bytes switch_bandwidth = gbit_per_s(1.0));

  /// Add a node that is live immediately. No membership notification fires:
  /// static fleets built at t=0 behave exactly as before the lifecycle
  /// existed.
  NodeId add_node(NodeSpec spec);

  /// Add a node in kProvisioning state (offline); after `boot_delay` it
  /// flips to kLive and comes online. Notifies kProvisioning now and kLive
  /// at boot completion. The id is assigned (and the Node constructed)
  /// immediately so callers can wire executors before boot finishes.
  NodeId provision_node(NodeSpec spec, SimTime boot_delay);

  /// Move a live (or still-provisioning) node to kDraining: it accepts no
  /// new tasks but keeps running the ones it has. No-op if already draining
  /// or decommissioned.
  void begin_drain(NodeId id);

  /// Permanently remove a node from membership: offline, never schedulable
  /// again. Idempotent. Subscribers are responsible for the fallout
  /// (killing the executor, resubmitting lost map outputs, retiring the
  /// heartbeat wheel entry).
  void decommission(NodeId id);

  NodeLifecycle lifecycle(NodeId id) const;
  /// Member = not decommissioned (provisioning and draining nodes count).
  bool member(NodeId id) const;
  /// Schedulable = live right now: the only state that may receive new
  /// tasks. (Crashed-but-live nodes are filtered separately by liveness.)
  bool schedulable(NodeId id) const;
  std::size_t member_count() const { return member_count_; }

  /// Subscribe to lifecycle transitions; returns a token for unsubscribe.
  /// Listeners run in subscription order.
  std::size_t subscribe_membership(MembershipListener listener);
  void unsubscribe_membership(std::size_t token);

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  /// Nodes ever created, including decommissioned ones. NodeId is always a
  /// valid index below size().
  std::size_t size() const { return nodes_.size(); }

  /// All ids ever created (dense 0..size()-1). Callers that must skip
  /// departed nodes filter with member()/schedulable().
  std::vector<NodeId> node_ids() const;
  /// Current members of the class (decommissioned nodes excluded).
  std::vector<NodeId> nodes_of_class(const std::string& node_class) const;

  Simulator& sim() { return sim_; }

  /// Smallest node memory among current members — default Spark sizes every
  /// executor to fit the weakest node (paper §IV: 14 GB for 16 GB thor).
  /// Cached; invalidated on every membership change.
  Bytes min_node_memory() const;

  /// Accumulated fleet cost in cost-units: sum over all nodes ever created
  /// of spec().hourly_cost × membership hours (join → decommission, or
  /// join → `now` for nodes still in the fleet).
  double provisioned_cost(SimTime now) const;

 private:
  struct Membership {
    NodeLifecycle state = NodeLifecycle::kLive;
    SimTime joined_at = 0.0;
    SimTime left_at = 0.0;  // meaningful only once decommissioned
  };

  void notify(NodeId id, NodeLifecycle state);
  Membership& membership(NodeId id);
  const Membership& membership(NodeId id) const;

  Simulator& sim_;
  Bytes switch_bandwidth_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Membership> memberships_;
  std::size_t member_count_ = 0;
  std::vector<std::pair<std::size_t, MembershipListener>> listeners_;
  std::size_t next_listener_token_ = 0;
  mutable Bytes min_memory_cache_ = 0.0;
  mutable bool min_memory_dirty_ = true;
};

}  // namespace rupam
