#include "cluster/node_spec.hpp"

#include <sstream>

namespace rupam {

std::string NodeSpec::describe() const {
  std::ostringstream oss;
  oss << name << " (" << node_class << "): " << cores << " cores @ " << cpu_ghz << " GHz, "
      << to_gib(memory) << " GB RAM, " << net_bandwidth * 8.0 / 1e9 << " GbE, "
      << (has_ssd ? "SSD" : "HDD") << ", " << gpus << " GPU(s)";
  return oss.str();
}

}  // namespace rupam
