// Periodic worker → master heartbeats carrying piggy-backed resource
// metrics (RUPAM's "extended heartbeat", paper §III-B1). Listeners get one
// callback per node per period; beats are staggered deterministically so no
// two nodes report at the exact same instant.
//
// All N per-node timers ride on a single PeriodicTaskSet, so the service
// occupies one kernel event-queue entry regardless of cluster size.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "simcore/periodic.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

class HeartbeatService {
 public:
  using Listener = std::function<void(const NodeMetrics&)>;

  HeartbeatService(Cluster& cluster, SimTime period = 1.0);

  void subscribe(Listener listener);

  /// Begin emitting heartbeats (first beats land within one period). Only
  /// current cluster members get a wheel entry; nodes that join later are
  /// added with node_joined().
  void start();
  void stop();

  /// Give a newly joined node a wheel entry (no-op before start(), or if
  /// the node already beats). Its phase is a deterministic golden-ratio
  /// stagger of the id, so join order never shifts other nodes' beats.
  void node_joined(NodeId node);
  /// Retire a decommissioned node's wheel entry: it never beats again, not
  /// even as a silent cycle (no ghost beats).
  void node_left(NodeId node);
  /// True while the node owns a live wheel entry.
  bool beating(NodeId node) const;

  /// Fault-injection lever: while dropped, a node's beats are swallowed
  /// (the node keeps running — this models a flaky master link, not a
  /// crash). Offline nodes (Node::online() == false) are silent too.
  void set_dropped(NodeId node, bool dropped);
  bool dropped(NodeId node) const;

  SimTime period() const { return period_; }
  /// Kernel event-queue entries the service occupies (1 while running).
  std::size_t queue_entries() const { return timers_ ? timers_->queue_entries() : 0u; }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  void beat(NodeId id);
  SimTime joiner_phase(NodeId id) const;

  Cluster& cluster_;
  SimTime period_;
  bool running_ = false;
  std::vector<Listener> listeners_;
  std::unique_ptr<PeriodicTaskSet> timers_;
  std::vector<bool> dropped_;
  std::vector<std::size_t> slots_;  // NodeId -> wheel member index
};

}  // namespace rupam
