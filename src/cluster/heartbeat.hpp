// Periodic worker → master heartbeats carrying piggy-backed resource
// metrics (RUPAM's "extended heartbeat", paper §III-B1). Listeners get one
// callback per node per period; beats are staggered deterministically so no
// two nodes report at the exact same instant.
#pragma once

#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

class HeartbeatService {
 public:
  using Listener = std::function<void(const NodeMetrics&)>;

  HeartbeatService(Cluster& cluster, SimTime period = 1.0);

  void subscribe(Listener listener);

  /// Begin emitting heartbeats (first beats land within one period).
  void start();
  void stop();

  SimTime period() const { return period_; }

 private:
  void beat(NodeId id);

  Cluster& cluster_;
  SimTime period_;
  bool running_ = false;
  std::vector<Listener> listeners_;
  std::vector<EventHandle> pending_;
};

}  // namespace rupam
