// Periodic worker → master heartbeats carrying piggy-backed resource
// metrics (RUPAM's "extended heartbeat", paper §III-B1). Listeners get one
// callback per node per period; beats are staggered deterministically so no
// two nodes report at the exact same instant.
#pragma once

#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

class HeartbeatService {
 public:
  using Listener = std::function<void(const NodeMetrics&)>;

  HeartbeatService(Cluster& cluster, SimTime period = 1.0);

  void subscribe(Listener listener);

  /// Begin emitting heartbeats (first beats land within one period).
  void start();
  void stop();

  /// Fault-injection lever: while dropped, a node's beats are swallowed
  /// (the node keeps running — this models a flaky master link, not a
  /// crash). Offline nodes (Node::online() == false) are silent too.
  void set_dropped(NodeId node, bool dropped);
  bool dropped(NodeId node) const;

  SimTime period() const { return period_; }

 private:
  void beat(NodeId id);

  Cluster& cluster_;
  SimTime period_;
  bool running_ = false;
  std::vector<Listener> listeners_;
  std::vector<EventHandle> pending_;
  std::vector<bool> dropped_;
};

}  // namespace rupam
