// Fair-share contention model for a rate-based resource (CPU, NIC, disk).
//
// A claim carries an amount of work (core-seconds or bytes) and drains at
//   rate = speed_factor * min(per_claim_cap, capacity / n_active).
// Whenever the active set changes, progress is integrated and the earliest
// completion event is rescheduled. This makes resource contention an
// emergent property of the simulation — the effect RUPAM exploits.
//
// The earliest finisher is tracked incrementally: every active claim drains
// its normalized work (remaining / speed_factor) at the same capacity-side
// rate, so ordering claims by "virtual clock at admission + normalized
// work" is invariant under both elapsed time and capacity changes. The
// reschedule path reads the front of that index in O(log n) instead of
// scanning all claims, and skips the cancel/repush entirely when the
// earliest completion time is unchanged (bit-exact comparison).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/types.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

class FairShareResource {
 public:
  using ClaimId = std::uint64_t;
  using CompletionFn = std::function<void()>;

  /// `capacity` is total units/s; `per_claim_cap` limits what one claim can
  /// draw (one core for CPU; typically == capacity for NIC/disk).
  /// `concurrency_penalty` models media whose aggregate throughput DROPS
  /// under concurrent streams (HDD seek thrash): effective capacity =
  /// capacity / (1 + penalty * (n_active - 1)). 0 = ideally sharable
  /// (CPU, NIC, SSD).
  FairShareResource(Simulator& sim, std::string name, double capacity, double per_claim_cap,
                    double concurrency_penalty = 0.0);

  /// Begin draining `work` units; `on_complete` fires when it reaches zero.
  /// `speed_factor` scales this claim's rate (CPU frequency ratio, GPU
  /// speedup). Zero-work claims complete on the next event.
  ClaimId start(double work, double speed_factor, CompletionFn on_complete);

  /// Abort a claim (task killed/race lost). No-op if already finished.
  void cancel(ClaimId id);

  /// Throttle (or restore) the deliverable capacity: effective capacity
  /// and per-claim cap are both multiplied by `scale` in (0, 1]. In-flight
  /// claims keep their integrated progress and are rescheduled at the new
  /// rate — this is the fault injector's transient-slowdown lever.
  void set_capacity_scale(double scale);
  double capacity_scale() const { return capacity_scale_; }

  /// Number of in-flight claims.
  std::size_t active() const { return claims_.size(); }
  /// Fraction of capacity currently in use, in [0, 1].
  double utilization() const;
  /// Aggregate drain rate in units/s (e.g. NIC bytes/s), including speed
  /// factors — this is what a monitoring agent would measure.
  double current_rate() const;
  /// Total units drained since construction (integrated lazily; querying
  /// must not perturb event ordering).
  double total_drained();
  /// Simulated seconds during which at least one claim was active
  /// (integrated lazily). Busy fraction = busy_seconds() / elapsed time.
  double busy_seconds();

  /// Currently deliverable capacity (nominal spec x throttle scale).
  double capacity() const { return capacity_ * capacity_scale_; }
  double nominal_capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

 private:
  struct Claim {
    double remaining;
    double speed_factor;
    /// Completion key in the eta index: virtual clock at admission plus
    /// normalized work (see header comment). Constant for the claim's life.
    double eta_key;
    CompletionFn on_complete;
  };

  double effective_capacity() const;
  double share_rate() const;  // capacity-side rate per claim, pre speed factor
  void integrate_progress();
  void reschedule();
  void on_completion_event();

  Simulator& sim_;
  std::string name_;
  double capacity_;
  double per_claim_cap_;
  double concurrency_penalty_;
  double capacity_scale_ = 1.0;
  std::map<ClaimId, Claim> claims_;
  /// Claims ordered by eta_key: the front is always the earliest finisher.
  std::set<std::pair<double, ClaimId>> eta_index_;
  /// Integral of share_rate() over time — the pace at which every active
  /// claim's normalized work drains.
  double virtual_clock_ = 0.0;
  ClaimId next_id_ = 1;
  SimTime last_update_ = 0.0;
  double drained_ = 0.0;
  double busy_seconds_ = 0.0;
  EventHandle pending_event_;
  SimTime pending_time_ = -1.0;  // absolute time of the pending completion
};

}  // namespace rupam
