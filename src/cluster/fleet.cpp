#include "cluster/fleet.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "cluster/presets.hpp"
#include "common/json_reader.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"

namespace rupam {

namespace {

[[noreturn]] void spec_error(const std::string& message) {
  throw std::runtime_error("fleet spec: " + message);
}

void check_jitter(const std::string& cls, const char* field, double j) {
  if (j < 0.0 || j >= 1.0) {
    spec_error("class '" + cls + "': " + field + " must be in [0, 1), got " +
               std::to_string(j));
  }
}

}  // namespace

int FleetSpec::total_nodes() const {
  int total = 0;
  for (const NodeClassMix& mix : classes) total += mix.count;
  return total;
}

void FleetSpec::validate() const {
  if (name.empty()) spec_error("name must be non-empty");
  if (classes.empty()) spec_error("at least one node class is required");
  std::set<std::string> seen;
  for (const NodeClassMix& mix : classes) {
    if (mix.name.empty()) spec_error("every class needs a name");
    if (!seen.insert(mix.name).second) {
      spec_error("duplicate class name '" + mix.name + "'");
    }
    if (mix.count <= 0) {
      spec_error("class '" + mix.name + "': count must be positive");
    }
    if (mix.base.cores < 1) {
      spec_error("class '" + mix.name + "': cores must be >= 1");
    }
    if (mix.base.cpu_ghz <= 0.0 || mix.base.cpu_perf <= 0.0) {
      spec_error("class '" + mix.name + "': cpu_ghz and cpu_perf must be positive");
    }
    if (mix.base.memory <= 0.0) {
      spec_error("class '" + mix.name + "': memory must be positive");
    }
    if (mix.base.net_bandwidth <= 0.0) {
      spec_error("class '" + mix.name + "': net bandwidth must be positive");
    }
    if (mix.base.disk_read_bw <= 0.0 || mix.base.disk_write_bw <= 0.0) {
      spec_error("class '" + mix.name + "': disk bandwidth must be positive");
    }
    if (mix.base.gpus < 0) {
      spec_error("class '" + mix.name + "': gpus must be >= 0");
    }
    if (mix.base.hourly_cost < 0.0) {
      spec_error("class '" + mix.name + "': hourly_cost must be >= 0");
    }
    check_jitter(mix.name, "cpu_jitter", mix.cpu_jitter);
    check_jitter(mix.name, "mem_jitter", mix.mem_jitter);
    check_jitter(mix.name, "net_jitter", mix.net_jitter);
    check_jitter(mix.name, "disk_jitter", mix.disk_jitter);
    if (mix.gpu_fraction > 1.0) {
      spec_error("class '" + mix.name + "': gpu_fraction must be <= 1");
    }
  }
}

NodeSpec generate_node(const NodeClassMix& mix, Rng& rng, int index) {
  NodeSpec s = mix.base;
  s.node_class = mix.name;
  s.name = mix.name + std::to_string(index + 1);
  // Draws happen unconditionally, in a fixed order, so switching one
  // jitter knob on or off never perturbs the other fields.
  double cpu = rng.uniform(1.0 - mix.cpu_jitter, 1.0 + mix.cpu_jitter);
  double mem = rng.uniform(1.0 - mix.mem_jitter, 1.0 + mix.mem_jitter);
  double net = rng.uniform(1.0 - mix.net_jitter, 1.0 + mix.net_jitter);
  double dsk = rng.uniform(1.0 - mix.disk_jitter, 1.0 + mix.disk_jitter);
  double gpu_draw = rng.uniform();
  s.cpu_ghz *= cpu;
  s.cpu_perf *= cpu;
  s.memory *= mem;
  s.net_bandwidth *= net;
  s.disk_read_bw *= dsk;
  s.disk_write_bw *= dsk;
  if (mix.gpu_fraction >= 0.0 && gpu_draw >= mix.gpu_fraction) s.gpus = 0;
  return s;
}

std::vector<NodeSpec> generate_fleet(const FleetSpec& spec) {
  spec.validate();
  std::vector<NodeSpec> out;
  out.reserve(static_cast<std::size_t>(spec.total_nodes()));
  Rng root(spec.seed, /*stream=*/0x666c6565745f7631ULL);  // "fleet_v1"
  for (const NodeClassMix& mix : spec.classes) {
    // One child stream per class so adding a class never reshuffles the
    // nodes generated for the classes before it.
    Rng rng = root.split();
    for (int i = 0; i < mix.count; ++i) {
      out.push_back(generate_node(mix, rng, i));
    }
  }
  return out;
}

std::vector<NodeId> build_fleet(Cluster& cluster, const FleetSpec& spec) {
  std::vector<NodeId> ids;
  for (NodeSpec& s : generate_fleet(spec)) {
    ids.push_back(cluster.add_node(std::move(s)));
  }
  return ids;
}

FleetSpec hydra_fleet_spec() {
  FleetSpec spec;
  spec.name = "hydra";
  spec.seed = 1;
  spec.switch_bandwidth = gbit_per_s(1.0);
  NodeClassMix thor;
  thor.name = "thor";
  thor.count = 6;
  thor.base = thor_spec();
  NodeClassMix hulk;
  hulk.name = "hulk";
  hulk.count = 4;
  hulk.base = hulk_spec();
  NodeClassMix stack;
  stack.name = "stack";
  stack.count = 2;
  stack.base = stack_spec();
  spec.classes = {thor, hulk, stack};
  return spec;
}

FleetSpec scaled_hydra_fleet(int nodes, std::uint64_t seed) {
  if (nodes < 3) throw std::runtime_error("scaled_hydra_fleet: need >= 3 nodes");
  FleetSpec spec = hydra_fleet_spec();
  spec.name = "hydra-x" + std::to_string(nodes);
  spec.seed = seed;
  // Preserve Hydra's 6:4:2 mix; stack absorbs the rounding remainder so
  // every fleet still has at least one GPU-bearing node.
  int thor = nodes / 2;
  int hulk = nodes / 3;
  int stack = nodes - thor - hulk;
  spec.classes[0].count = thor;
  spec.classes[1].count = hulk;
  spec.classes[2].count = stack;
  // Mild intra-class spread: real fleets of "identical" machines differ a
  // few percent in clock and disk throughput.
  for (NodeClassMix& mix : spec.classes) {
    mix.cpu_jitter = 0.05;
    mix.disk_jitter = 0.05;
  }
  return spec;
}

namespace {

double require_number(const JsonValue& v, const std::string& what) {
  if (!v.is_number()) spec_error(what + " must be a number");
  return v.as_number();
}

int require_int(const JsonValue& v, const std::string& what) {
  double d = require_number(v, what);
  if (d != std::floor(d)) spec_error(what + " must be an integer");
  return static_cast<int>(d);
}

NodeSpec base_template(const std::string& name) {
  if (name == "thor") return thor_spec();
  if (name == "hulk") return hulk_spec();
  if (name == "stack") return stack_spec();
  spec_error("unknown base template '" + name + "' (expected thor|hulk|stack)");
}

NodeClassMix parse_class(const JsonValue& v) {
  if (!v.is_object()) spec_error("each entry in \"classes\" must be an object");
  NodeClassMix mix;
  // Object keys iterate in sorted order, so "base" is always applied
  // before any per-field override regardless of file order.
  for (const auto& [key, val] : v.as_object()) {
    if (key == "name") {
      if (!val.is_string()) spec_error("class name must be a string");
      mix.name = val.as_string();
    } else if (key == "base") {
      if (!val.is_string()) spec_error("class base must be a string");
      mix.base = base_template(val.as_string());
    } else if (key == "count") {
      mix.count = require_int(val, "count");
    } else if (key == "cores") {
      mix.base.cores = require_int(val, "cores");
    } else if (key == "cpu_ghz") {
      mix.base.cpu_ghz = require_number(val, "cpu_ghz");
    } else if (key == "cpu_perf") {
      mix.base.cpu_perf = require_number(val, "cpu_perf");
    } else if (key == "memory_gb") {
      mix.base.memory = require_number(val, "memory_gb") * kGiB;
    } else if (key == "net_gbps") {
      mix.base.net_bandwidth = gbit_per_s(require_number(val, "net_gbps"));
    } else if (key == "ssd") {
      if (!val.is_bool()) spec_error("ssd must be a bool");
      mix.base.has_ssd = val.as_bool();
    } else if (key == "disk_read_mbps") {
      mix.base.disk_read_bw = mib_per_s(require_number(val, "disk_read_mbps"));
    } else if (key == "disk_write_mbps") {
      mix.base.disk_write_bw = mib_per_s(require_number(val, "disk_write_mbps"));
    } else if (key == "disk_capacity_gb") {
      mix.base.disk_capacity = require_number(val, "disk_capacity_gb") * kGiB;
    } else if (key == "gpus") {
      mix.base.gpus = require_int(val, "gpus");
    } else if (key == "gpu_speedup") {
      mix.base.gpu_speedup = require_number(val, "gpu_speedup");
    } else if (key == "hourly_cost") {
      mix.base.hourly_cost = require_number(val, "hourly_cost");
    } else if (key == "cpu_jitter") {
      mix.cpu_jitter = require_number(val, "cpu_jitter");
    } else if (key == "mem_jitter") {
      mix.mem_jitter = require_number(val, "mem_jitter");
    } else if (key == "net_jitter") {
      mix.net_jitter = require_number(val, "net_jitter");
    } else if (key == "disk_jitter") {
      mix.disk_jitter = require_number(val, "disk_jitter");
    } else if (key == "gpu_fraction") {
      mix.gpu_fraction = require_number(val, "gpu_fraction");
    } else {
      spec_error("unknown class key '" + key + "'");
    }
  }
  if (mix.name.empty()) spec_error("every class needs a \"name\"");
  // node_class follows the mix name, even for preset-derived classes.
  mix.base.node_class = mix.name;
  return mix;
}

}  // namespace

FleetSpec parse_fleet_json(const std::string& text) {
  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const JsonParseError& e) {
    spec_error(e.what());
  }
  return parse_fleet_value(doc);
}

FleetSpec parse_fleet_value(const JsonValue& doc) {
  if (!doc.is_object()) spec_error("top level must be an object");
  FleetSpec spec;
  bool have_classes = false;
  for (const auto& [key, val] : doc.as_object()) {
    if (key == "name") {
      if (!val.is_string()) spec_error("name must be a string");
      spec.name = val.as_string();
    } else if (key == "seed") {
      double d = require_number(val, "seed");
      if (d < 0.0 || d != std::floor(d)) spec_error("seed must be a non-negative integer");
      spec.seed = static_cast<std::uint64_t>(d);
    } else if (key == "switch_gbps") {
      spec.switch_bandwidth = gbit_per_s(require_number(val, "switch_gbps"));
    } else if (key == "classes") {
      if (!val.is_array()) spec_error("classes must be an array");
      for (const JsonValue& c : val.as_array()) spec.classes.push_back(parse_class(c));
      have_classes = true;
    } else {
      spec_error("unknown top-level key '" + key + "'");
    }
  }
  if (!have_classes) spec_error("missing \"classes\" array");
  spec.validate();
  return spec;
}

FleetSpec load_fleet_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fleet spec: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_fleet_json(buf.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " (in '" + path + "')");
  }
}

std::string fleet_to_json(const FleetSpec& spec) {
  std::ostringstream os;
  JsonWriter w(os);
  write_fleet_json(spec, w);
  os << "\n";
  return os.str();
}

void write_fleet_json(const FleetSpec& spec, JsonWriter& w) {
  w.begin_object();
  w.key("name").value(spec.name);
  w.key("seed").value(static_cast<unsigned long long>(spec.seed));
  if (spec.switch_bandwidth > 0.0) {
    w.key("switch_gbps").raw(json_number(spec.switch_bandwidth * 8.0 / 1e9, 12));
  }
  w.key("classes").begin_array();
  for (const NodeClassMix& mix : spec.classes) {
    w.begin_object();
    w.key("name").value(mix.name);
    w.key("count").value(mix.count);
    w.key("cores").value(mix.base.cores);
    w.key("cpu_ghz").raw(json_number(mix.base.cpu_ghz, 12));
    w.key("cpu_perf").raw(json_number(mix.base.cpu_perf, 12));
    w.key("memory_gb").raw(json_number(to_gib(mix.base.memory), 12));
    w.key("net_gbps").raw(json_number(mix.base.net_bandwidth * 8.0 / 1e9, 12));
    w.key("ssd").value(mix.base.has_ssd);
    w.key("disk_read_mbps").raw(json_number(to_mib(mix.base.disk_read_bw), 12));
    w.key("disk_write_mbps").raw(json_number(to_mib(mix.base.disk_write_bw), 12));
    w.key("disk_capacity_gb").raw(json_number(to_gib(mix.base.disk_capacity), 12));
    w.key("gpus").value(mix.base.gpus);
    w.key("gpu_speedup").raw(json_number(mix.base.gpu_speedup, 12));
    w.key("hourly_cost").raw(json_number(mix.base.hourly_cost, 12));
    w.key("cpu_jitter").raw(json_number(mix.cpu_jitter, 12));
    w.key("mem_jitter").raw(json_number(mix.mem_jitter, 12));
    w.key("net_jitter").raw(json_number(mix.net_jitter, 12));
    w.key("disk_jitter").raw(json_number(mix.disk_jitter, 12));
    w.key("gpu_fraction").raw(json_number(mix.gpu_fraction, 12));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace rupam
