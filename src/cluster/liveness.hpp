// Missed-heartbeat liveness tracking (Spark's HeartbeatReceiver timeout).
//
// A node is marked dead once it has gone `missed_heartbeats_dead` whole
// heartbeat periods without reporting; the first heartbeat after that
// revives it. Pure bookkeeping — callers decide when to sweep and what a
// dead node means (schedulers stop offering work to it).
#pragma once

#include <map>
#include <vector>

#include "common/types.hpp"

namespace rupam {

struct LivenessConfig {
  SimTime heartbeat_period = 1.0;
  /// Whole periods without a heartbeat before a node is declared dead.
  int missed_heartbeats_dead = 3;
};

class NodeLivenessTracker {
 public:
  explicit NodeLivenessTracker(LivenessConfig config = {});

  void configure(LivenessConfig config);
  const LivenessConfig& config() const { return config_; }

  /// Record a heartbeat from `node`. Returns true if the node was dead and
  /// this beat revived it.
  bool heartbeat(NodeId node, SimTime now);

  /// Declare dead every tracked node silent past the threshold. Returns
  /// the newly-dead nodes in ascending id order.
  std::vector<NodeId> sweep(SimTime now);

  bool dead(NodeId node) const;
  std::size_t tracked() const { return nodes_.size(); }
  void clear() { nodes_.clear(); }
  /// Stop tracking a node entirely (decommissioned: it is neither dead nor
  /// alive, it is gone). Future sweeps never report it.
  void forget(NodeId node) { nodes_.erase(node); }

 private:
  struct State {
    SimTime last_heartbeat = 0.0;
    bool dead = false;
  };

  LivenessConfig config_;
  std::map<NodeId, State> nodes_;  // ordered: deterministic sweep output
};

}  // namespace rupam
