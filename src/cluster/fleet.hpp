// Parameterized cluster generation: scale Table II-style heterogeneity
// from the 12-node Hydra testbed to arbitrary fleet sizes.
//
// A FleetSpec is a list of node classes (count + template NodeSpec +
// seeded per-node jitter). The same (spec, seed) pair always generates
// the same NodeSpecs, so fleets are as reproducible as the presets.
// Specs are loadable from small JSON files (see DESIGN.md §9 for the
// schema) and exposed on the CLI via --fleet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/node_spec.hpp"
#include "common/json_reader.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"

namespace rupam {

/// One homogeneous-by-template slice of the fleet. Jitter fields are
/// fractional half-widths: cpu_jitter = 0.05 draws a per-node factor
/// uniform in [0.95, 1.05) applied to cpu_ghz and cpu_perf. Zero means
/// every node is an exact copy of `base`.
struct NodeClassMix {
  std::string name;  // node_class; nodes are named "<name>1", "<name>2", ...
  int count = 0;
  NodeSpec base;

  double cpu_jitter = 0.0;   // cpu_ghz, cpu_perf
  double mem_jitter = 0.0;   // memory
  double net_jitter = 0.0;   // net_bandwidth
  double disk_jitter = 0.0;  // disk_read_bw, disk_write_bw

  /// Fraction of nodes in this class that carry `base.gpus` GPUs (the
  /// rest get none). Negative (the default) means every node gets
  /// `base.gpus` — no sampling.
  double gpu_fraction = -1.0;
};

struct FleetSpec {
  std::string name = "fleet";
  std::uint64_t seed = 1;
  /// Fabric bandwidth for the generated cluster; <= 0 means "use the
  /// caller's default" (the CLI default or --switch-gbps).
  Bytes switch_bandwidth = 0.0;
  std::vector<NodeClassMix> classes;

  int total_nodes() const;
  /// Throws std::runtime_error with a field-specific message when the
  /// spec cannot generate a sane cluster.
  void validate() const;
};

/// Generate the per-node specs. Deterministic: depends only on the spec
/// contents (including seed), never on global state.
std::vector<NodeSpec> generate_fleet(const FleetSpec& spec);

/// Generate one node of `mix` with per-node jitter drawn from `rng` —
/// the exact draw sequence generate_fleet uses, exposed so the
/// autoscaler can mint node `index` of a class mid-run and get the same
/// spec a bigger static fleet would have had. `index` is zero-based;
/// the node is named "<mix.name><index+1>".
NodeSpec generate_node(const NodeClassMix& mix, Rng& rng, int index);

/// Generate and add every node to `cluster`; returns ids in creation
/// order (class order, then index within class — like build_hydra).
std::vector<NodeId> build_fleet(Cluster& cluster, const FleetSpec& spec);

/// The canned 12-node Hydra testbed as a FleetSpec: 6x thor + 4x hulk +
/// 2x stack with zero jitter. generate_fleet(hydra_fleet_spec()) is
/// byte-identical to build_hydra's specs.
FleetSpec hydra_fleet_spec();

/// Hydra's 6:4:2 class ratio scaled to `nodes` total nodes with mild
/// intra-class jitter — the workhorse of bench/scale_fleet.
FleetSpec scaled_hydra_fleet(int nodes, std::uint64_t seed);

/// Parse a JSON fleet spec (schema in DESIGN.md §9). Unknown keys and
/// type mismatches are errors; throws std::runtime_error.
FleetSpec parse_fleet_json(const std::string& text);

/// Same, from an already-parsed JSON value — lets enclosing documents
/// (RunSpec's "fleet_spec", checkpoints) embed a fleet inline.
FleetSpec parse_fleet_value(const JsonValue& doc);

/// Write the spec as one JSON object into an in-progress writer (the
/// embedding counterpart of parse_fleet_value). fleet_to_json is this
/// plus a trailing newline on a fresh writer.
void write_fleet_json(const FleetSpec& spec, JsonWriter& w);

/// Read and parse a spec file; throws std::runtime_error (with the path)
/// on IO or parse failure.
FleetSpec load_fleet_file(const std::string& path);

/// Serialize a spec to JSON that parse_fleet_json maps back to an
/// equivalent spec (round-trip stable).
std::string fleet_to_json(const FleetSpec& spec);

}  // namespace rupam
