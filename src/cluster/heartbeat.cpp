#include "cluster/heartbeat.hpp"

namespace rupam {

HeartbeatService::HeartbeatService(Cluster& cluster, SimTime period)
    : cluster_(cluster), period_(period) {
  if (period <= 0.0) throw std::invalid_argument("HeartbeatService: period must be > 0");
}

void HeartbeatService::subscribe(Listener listener) { listeners_.push_back(std::move(listener)); }

void HeartbeatService::start() {
  if (running_) return;
  running_ = true;
  pending_.assign(cluster_.size(), EventHandle{});
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    // Deterministic stagger: node i beats at phase i/n of the period.
    SimTime phase = period_ * static_cast<double>(i) / static_cast<double>(cluster_.size());
    pending_[i] = cluster_.sim().schedule_after(phase, [this, id] { beat(id); });
  }
}

void HeartbeatService::stop() {
  running_ = false;
  for (auto& h : pending_) h.cancel();
  pending_.clear();
}

void HeartbeatService::set_dropped(NodeId node, bool dropped) {
  auto idx = static_cast<std::size_t>(node);
  if (idx >= cluster_.size()) throw std::out_of_range("HeartbeatService: bad node id");
  if (dropped_.size() < cluster_.size()) dropped_.resize(cluster_.size(), false);
  dropped_[idx] = dropped;
}

bool HeartbeatService::dropped(NodeId node) const {
  auto idx = static_cast<std::size_t>(node);
  return idx < dropped_.size() && dropped_[idx];
}

void HeartbeatService::beat(NodeId id) {
  if (!running_) return;
  // A silenced node still reschedules its beat so reporting resumes the
  // period after the fault clears.
  if (cluster_.node(id).online() && !dropped(id)) {
    NodeMetrics metrics = cluster_.node(id).metrics();
    for (const auto& listener : listeners_) listener(metrics);
  }
  pending_[static_cast<std::size_t>(id)] =
      cluster_.sim().schedule_after(period_, [this, id] { beat(id); });
}

}  // namespace rupam
