#include "cluster/heartbeat.hpp"

#include <cmath>
#include <stdexcept>

namespace rupam {

HeartbeatService::HeartbeatService(Cluster& cluster, SimTime period)
    : cluster_(cluster), period_(period) {
  if (period <= 0.0) throw std::invalid_argument("HeartbeatService: period must be > 0");
}

void HeartbeatService::subscribe(Listener listener) { listeners_.push_back(std::move(listener)); }

void HeartbeatService::start() {
  if (running_) return;
  running_ = true;
  timers_ = std::make_unique<PeriodicTaskSet>(cluster_.sim(), period_);
  slots_.assign(cluster_.size(), kNoSlot);
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_.member(id)) continue;
    // Deterministic stagger: node i beats at phase i/n of the period.
    SimTime phase = period_ * static_cast<double>(i) / static_cast<double>(cluster_.size());
    slots_[i] = timers_->add(phase, [this, id] { beat(id); });
  }
  timers_->start();
}

void HeartbeatService::stop() {
  running_ = false;
  if (timers_) timers_->stop();
  timers_.reset();
  slots_.clear();
}

SimTime HeartbeatService::joiner_phase(NodeId id) const {
  // Golden-ratio stagger: low-discrepancy over [0, period) as ids grow, and
  // a pure function of the id, so the phase never depends on join order or
  // on how many nodes currently beat.
  double frac = static_cast<double>(id) * 0.61803398874989485;
  frac -= std::floor(frac);
  SimTime phase = period_ * frac;
  return phase < period_ ? phase : 0.0;
}

void HeartbeatService::node_joined(NodeId node) {
  if (!running_ || !timers_) return;
  auto idx = static_cast<std::size_t>(node);
  if (idx >= cluster_.size()) throw std::out_of_range("HeartbeatService: bad node id");
  if (slots_.size() < cluster_.size()) slots_.resize(cluster_.size(), kNoSlot);
  if (slots_[idx] != kNoSlot) return;  // already beating
  slots_[idx] = timers_->join(joiner_phase(node), [this, node] { beat(node); });
}

void HeartbeatService::node_left(NodeId node) {
  if (!running_ || !timers_) return;
  auto idx = static_cast<std::size_t>(node);
  if (idx >= slots_.size() || slots_[idx] == kNoSlot) return;
  timers_->leave(slots_[idx]);
  slots_[idx] = kNoSlot;
}

bool HeartbeatService::beating(NodeId node) const {
  auto idx = static_cast<std::size_t>(node);
  return running_ && timers_ && idx < slots_.size() && slots_[idx] != kNoSlot &&
         timers_->member_active(slots_[idx]);
}

void HeartbeatService::set_dropped(NodeId node, bool dropped) {
  auto idx = static_cast<std::size_t>(node);
  if (idx >= cluster_.size()) throw std::out_of_range("HeartbeatService: bad node id");
  if (dropped_.size() < cluster_.size()) dropped_.resize(cluster_.size(), false);
  dropped_[idx] = dropped;
}

bool HeartbeatService::dropped(NodeId node) const {
  auto idx = static_cast<std::size_t>(node);
  return idx < dropped_.size() && dropped_[idx];
}

void HeartbeatService::beat(NodeId id) {
  if (!running_) return;
  // A silenced node's slot still cycles in the task set, so reporting
  // resumes the period after the fault clears.
  if (cluster_.node(id).online() && !dropped(id)) {
    NodeMetrics metrics = cluster_.node(id).metrics();
    for (const auto& listener : listeners_) listener(metrics);
  }
}

}  // namespace rupam
