// Capacity-style memory accounting (no rate): claims either fit or fail.
#pragma once

#include <stdexcept>

#include "common/types.hpp"

namespace rupam {

class MemoryPool {
 public:
  explicit MemoryPool(Bytes capacity) : capacity_(capacity) {
    if (capacity < 0.0) throw std::invalid_argument("MemoryPool: negative capacity");
  }

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes free() const { return capacity_ - used_; }
  double occupancy() const { return capacity_ > 0.0 ? used_ / capacity_ : 1.0; }

  /// Reserve `amount`; returns false (and reserves nothing) if it overflows.
  bool try_reserve(Bytes amount) {
    if (amount < 0.0) throw std::invalid_argument("MemoryPool: negative reserve");
    if (used_ + amount > capacity_) return false;
    used_ += amount;
    return true;
  }

  /// Reserve unconditionally (models a JVM that allocates past safe levels
  /// and later dies); used_ may exceed capacity afterwards.
  void force_reserve(Bytes amount) {
    if (amount < 0.0) throw std::invalid_argument("MemoryPool: negative reserve");
    used_ += amount;
  }

  void release(Bytes amount) {
    if (amount < 0.0) throw std::invalid_argument("MemoryPool: negative release");
    used_ -= amount;
    if (used_ < 0.0) used_ = 0.0;
  }

  bool overcommitted() const { return used_ > capacity_; }

 private:
  Bytes capacity_;
  Bytes used_ = 0.0;
};

}  // namespace rupam
