// Pending-pressure autoscaler: Spark-style dynamic allocation at the
// node level.
//
// Every `interval` seconds the autoscaler compares the scheduler's task
// backlog against the fleet's free slots. Sustained backlog provisions
// fresh nodes from a FleetSpec class template (same seeded jitter draws
// a bigger static fleet would have used, so minted nodes are
// reproducible); sustained idleness drains the most recently minted
// node and decommissions it once its last task finishes. Only nodes the
// autoscaler minted are ever drained — the base fleet is untouchable.
//
// The autoscaler never talks to the scheduler or executors directly:
// the composition root (Simulation) hands it probe and provision
// closures, keeping src/cluster free of sched/exec dependencies.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/fleet.hpp"
#include "common/rng.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

struct AutoscaleConfig {
  bool enabled = false;
  /// Seconds between policy evaluations.
  SimTime interval = 5.0;
  /// Provision when backlog (pending tasks minus free slots) reaches
  /// this many tasks.
  double scale_up_pressure = 2.0;
  /// Nodes minted per scale-up trigger.
  int scale_up_step = 1;
  /// Provisioning latency for minted nodes (cloud boot + executor
  /// registration).
  SimTime boot_delay = 8.0;
  /// A minted node idle this long (and no backlog) gets drained.
  SimTime idle_drain_after = 30.0;
  /// Ceiling on minted nodes alive at once (provisioning + live +
  /// draining).
  int max_nodes = 8;
  /// Seed for the minted nodes' jitter stream (0 = the composition root
  /// substitutes its own run seed).
  std::uint64_t seed = 0;
};

struct AutoscalerEnv {
  Simulator* sim = nullptr;
  Cluster* cluster = nullptr;
  /// Class template minted nodes are drawn from.
  NodeClassMix mix;
  /// Scheduler probes (wired by the composition root).
  std::function<std::size_t()> pending_tasks;
  std::function<int()> free_slots;
  /// Running tasks on one node (0 when the executor is down or absent).
  std::function<int(NodeId)> node_running;
  /// Create the node AND its executor; must leave the node provisioning
  /// with the given boot delay and return its id.
  std::function<NodeId(NodeSpec, SimTime)> provision;
};

class Autoscaler {
 public:
  /// Throws std::invalid_argument on null env members or a bad config.
  Autoscaler(AutoscalerEnv env, AutoscaleConfig config);

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;
  ~Autoscaler();

  /// Arm the periodic policy tick. Call once, before run().
  void start();
  void stop();

  const AutoscaleConfig& config() const { return config_; }
  /// Minted nodes currently provisioning, live, or draining.
  std::size_t owned_alive() const;
  std::size_t scale_ups() const { return scale_ups_; }
  std::size_t scale_downs() const { return scale_downs_; }
  /// Every node id this autoscaler ever minted, in mint order.
  const std::vector<NodeId>& minted() const { return minted_; }

 private:
  void tick();
  void scale_up(double backlog);
  void scale_down();

  AutoscalerEnv env_;
  AutoscaleConfig config_;
  Rng rng_;
  EventHandle timer_;
  std::vector<NodeId> minted_;
  /// First tick at which each owned live node was seen idle; erased the
  /// moment it runs something again.
  std::map<NodeId, SimTime> idle_since_;
  int next_index_ = 0;
  std::size_t scale_ups_ = 0;
  std::size_t scale_downs_ = 0;
};

}  // namespace rupam
