#include "cluster/autoscaler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"

namespace rupam {

Autoscaler::Autoscaler(AutoscalerEnv env, AutoscaleConfig config)
    : env_(std::move(env)),
      config_(config),
      rng_(config.seed, /*stream=*/0x6175746f73636131ULL) {  // "autosca1"
  if (env_.sim == nullptr || env_.cluster == nullptr) {
    throw std::invalid_argument("Autoscaler: null environment");
  }
  if (!env_.pending_tasks || !env_.free_slots || !env_.node_running || !env_.provision) {
    throw std::invalid_argument("Autoscaler: missing probe or provision hook");
  }
  if (config_.interval <= 0.0) throw std::invalid_argument("Autoscaler: interval must be > 0");
  if (config_.scale_up_step < 1) {
    throw std::invalid_argument("Autoscaler: scale_up_step must be >= 1");
  }
  if (config_.max_nodes < 0) throw std::invalid_argument("Autoscaler: max_nodes must be >= 0");
  if (env_.mix.name.empty()) throw std::invalid_argument("Autoscaler: node class needs a name");
  // Minted nodes continue the class's numbering after the static fleet
  // ("spot7" when the base fleet ends at "spot6").
  next_index_ = static_cast<int>(env_.cluster->nodes_of_class(env_.mix.name).size());
}

Autoscaler::~Autoscaler() { stop(); }

void Autoscaler::start() {
  if (timer_.pending()) throw std::logic_error("Autoscaler: already started");
  timer_ = env_.sim->schedule_after(config_.interval, [this] { tick(); });
}

void Autoscaler::stop() { timer_.cancel(); }

std::size_t Autoscaler::owned_alive() const {
  std::size_t n = 0;
  for (NodeId id : minted_) {
    if (env_.cluster->member(id)) ++n;
  }
  return n;
}

void Autoscaler::tick() {
  timer_ = env_.sim->schedule_after(config_.interval, [this] { tick(); });
  double backlog = static_cast<double>(env_.pending_tasks()) -
                   static_cast<double>(env_.free_slots());
  // Reap drained nodes whose last task finished, whatever the backlog —
  // a draining node can't take work, so keeping it is pure cost.
  for (auto it = minted_.rbegin(); it != minted_.rend(); ++it) {
    NodeId id = *it;
    if (!env_.cluster->member(id)) continue;
    if (env_.cluster->lifecycle(id) != NodeLifecycle::kDraining) continue;
    if (env_.node_running(id) > 0) continue;
    env_.cluster->decommission(id);
    RUPAM_INFO(env_.sim->now(), "autoscale: node ", id, " decommissioned");
  }
  if (backlog >= config_.scale_up_pressure) {
    idle_since_.clear();  // under pressure nothing is idle for long
    scale_up(backlog);
  } else {
    scale_down();
  }
}

void Autoscaler::scale_up(double backlog) {
  int capacity = config_.max_nodes - static_cast<int>(owned_alive());
  int want = std::min(config_.scale_up_step, capacity);
  for (int i = 0; i < want; ++i) {
    NodeSpec spec = generate_node(env_.mix, rng_, next_index_++);
    NodeId id = env_.provision(std::move(spec), config_.boot_delay);
    minted_.push_back(id);
    ++scale_ups_;
    RUPAM_INFO(env_.sim->now(), "autoscale: provisioning node ", id, " (backlog ",
               backlog, ")");
  }
}

void Autoscaler::scale_down() {
  SimTime now = env_.sim->now();
  // Refresh idle clocks for the minted nodes that could take work.
  for (NodeId id : minted_) {
    bool live = env_.cluster->member(id) &&
                env_.cluster->lifecycle(id) == NodeLifecycle::kLive &&
                env_.cluster->node(id).online();
    if (!live || env_.node_running(id) > 0) {
      idle_since_.erase(id);
      continue;
    }
    idle_since_.try_emplace(id, now);
  }
  // Drain at most one node per tick, newest first (LIFO keeps the
  // longest-lived minted nodes — the ones with warm caches — around).
  for (auto it = minted_.rbegin(); it != minted_.rend(); ++it) {
    NodeId id = *it;
    auto idle = idle_since_.find(id);
    if (idle == idle_since_.end()) continue;
    if (now - idle->second < config_.idle_drain_after) continue;
    env_.cluster->begin_drain(id);
    idle_since_.erase(idle);
    ++scale_downs_;
    RUPAM_INFO(now, "autoscale: draining idle node ", id);
    break;
  }
}

}  // namespace rupam
