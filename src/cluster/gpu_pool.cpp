#include "cluster/gpu_pool.hpp"

namespace rupam {

bool GpuPool::try_acquire() {
  if (idle_ == 0) return false;
  --idle_;
  return true;
}

void GpuPool::release() {
  if (idle_ >= total_) throw std::logic_error("GpuPool: release without acquire");
  ++idle_;
}

}  // namespace rupam
