#include "cluster/node.hpp"

#include <algorithm>

namespace rupam {

double NodeMetrics::capability(ResourceKind kind) const {
  switch (kind) {
    case ResourceKind::kCpu:
      // Per-core speed, the paper's `cpufreq` metric: a CPU-bound task's
      // latency depends on the core it gets, not the node's aggregate.
      // Spread across equal nodes comes from the utilization tie-break.
      return cpu_perf;
    case ResourceKind::kMemory:
      return free_memory;
    case ResourceKind::kDisk:
      // SSD nodes sort ahead of HDD nodes; capacity dominates utilization.
      return has_ssd ? 2.0 : 1.0;
    case ResourceKind::kNetwork:
      return net_bandwidth;
    case ResourceKind::kGpu:
      return static_cast<double>(gpus_idle);
  }
  return 0.0;
}

double NodeMetrics::utilization(ResourceKind kind) const {
  switch (kind) {
    case ResourceKind::kCpu: return cpu_util;
    case ResourceKind::kMemory: return memory > 0.0 ? 1.0 - free_memory / memory : 1.0;
    case ResourceKind::kDisk: return disk_util;
    case ResourceKind::kNetwork: return net_util;
    case ResourceKind::kGpu:
      return gpus_total > 0 ? 1.0 - static_cast<double>(gpus_idle) / gpus_total : 1.0;
  }
  return 1.0;
}

Node::Node(Simulator& sim, NodeId id, NodeSpec spec, Bytes net_cap)
    : sim_(sim),
      id_(id),
      spec_(std::move(spec)),
      cpu_(sim, spec_.name + "/cpu", static_cast<double>(spec_.cores), 1.0),
      net_(sim, spec_.name + "/net", std::min(spec_.net_bandwidth, net_cap),
           std::min(spec_.net_bandwidth, net_cap)),
      // HDDs lose aggregate throughput to seek thrash under concurrent
      // streams; SSDs barely notice. This nonlinearity is what makes
      // slot-blind stacking of I/O tasks on HDD nodes expensive.
      disk_read_(sim, spec_.name + "/disk-r", spec_.disk_read_bw, spec_.disk_read_bw,
                 spec_.has_ssd ? 0.005 : 0.05),
      disk_write_(sim, spec_.name + "/disk-w", spec_.disk_write_bw, spec_.disk_write_bw,
                  spec_.has_ssd ? 0.005 : 0.05),
      gpus_(spec_.gpus) {}

void Node::add_memory_reporter(std::function<Bytes()> reporter) {
  memory_reporters_.push_back(std::move(reporter));
}

Bytes Node::memory_in_use() const {
  Bytes used = kOsReserved;
  for (const auto& reporter : memory_reporters_) used += reporter();
  return used;
}

Bytes Node::free_memory() const { return std::max(0.0, spec_.memory - memory_in_use()); }

NodeMetrics Node::metrics() const {
  NodeMetrics m;
  m.node = id_;
  m.cpu_ghz = spec_.cpu_ghz;
  // A throttled CPU (fault injection / thermal misbehaviour) shows up in
  // the heartbeat as reduced per-core speed, so capability-ranked
  // schedulers demote the node while the slowdown lasts.
  m.cpu_perf = spec_.cpu_perf * cpu_.capacity_scale();
  m.cores = spec_.cores;
  m.has_ssd = spec_.has_ssd;
  m.net_bandwidth = net_.capacity();
  m.memory = spec_.memory;
  m.gpus_total = gpus_.total();
  m.cpu_util = cpu_.utilization();
  m.disk_util = 0.5 * (disk_read_.utilization() + disk_write_.utilization());
  m.net_util = net_.utilization();
  m.free_memory = free_memory();
  m.gpus_idle = gpus_.idle();
  return m;
}

}  // namespace rupam
