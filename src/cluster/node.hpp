// A simulated cluster node: heterogeneous CPU, NIC, disk, GPUs, memory.
//
// Rate resources are FairShareResource instances, so contention between
// concurrently running task phases emerges from the event model. Memory is
// tracked by the executors hosted on the node; the node aggregates their
// usage for its heartbeat metrics (RUPAM Table I, left side).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/fair_share_resource.hpp"
#include "cluster/gpu_pool.hpp"
#include "cluster/node_spec.hpp"
#include "common/types.hpp"
#include "simcore/simulator.hpp"

namespace rupam {

/// Snapshot a node reports in its (extended) heartbeat.
struct NodeMetrics {
  NodeId node = kInvalidNode;
  // Static properties (sent once at registration in the paper; carried in
  // every snapshot here for simplicity — the payload is tiny either way).
  double cpu_ghz = 0.0;
  double cpu_perf = 1.0;
  int cores = 0;
  bool has_ssd = false;
  Bytes net_bandwidth = 0.0;
  Bytes memory = 0.0;
  int gpus_total = 0;
  // Real-time properties.
  double cpu_util = 0.0;   // [0, 1]
  double disk_util = 0.0;  // [0, 1]
  double net_util = 0.0;   // [0, 1]
  Bytes free_memory = 0.0;
  int gpus_idle = 0;

  /// Capability score used to order RUPAM's per-resource priority queues:
  /// higher capacity first, then lower utilization (paper §III-B1).
  double capability(ResourceKind kind) const;
  double utilization(ResourceKind kind) const;
};

class Node {
 public:
  /// `net_cap` lets the shared switch limit the achievable NIC rate below
  /// the nominal spec (Table IV: a 1 GbE fabric levels all nodes).
  Node(Simulator& sim, NodeId id, NodeSpec spec, Bytes net_cap);

  NodeId id() const { return id_; }
  const NodeSpec& spec() const { return spec_; }

  /// Crash/recover lever for the fault injector: an offline node emits no
  /// heartbeats (its executor is downed separately). Default online.
  bool online() const { return online_; }
  void set_online(bool online) { online_ = online; }

  FairShareResource& cpu() { return cpu_; }
  FairShareResource& net() { return net_; }
  FairShareResource& disk_read() { return disk_read_; }
  FairShareResource& disk_write() { return disk_write_; }
  GpuPool& gpus() { return gpus_; }
  const FairShareResource& cpu() const { return cpu_; }
  const FairShareResource& net() const { return net_; }

  /// Executors call this to expose their live memory usage; the node sums
  /// all reporters when computing free memory.
  void add_memory_reporter(std::function<Bytes()> reporter);
  Bytes memory_in_use() const;
  Bytes free_memory() const;

  NodeMetrics metrics() const;

  /// Cumulative drained bytes, for utilization samplers (Figs 2 and 8).
  Bytes net_bytes_total() { return net_.total_drained(); }
  Bytes disk_bytes_total() { return disk_read_.total_drained() + disk_write_.total_drained(); }

  /// OS + JVM overhead modelled as reserved memory on every node.
  static constexpr Bytes kOsReserved = 1.0 * kGiB;

 private:
  Simulator& sim_;
  NodeId id_;
  NodeSpec spec_;
  bool online_ = true;
  FairShareResource cpu_;
  FairShareResource net_;
  FairShareResource disk_read_;
  FairShareResource disk_write_;
  GpuPool gpus_;
  std::vector<std::function<Bytes()>> memory_reporters_;
};

}  // namespace rupam
