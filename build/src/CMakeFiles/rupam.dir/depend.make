# Empty dependencies file for rupam.
# This may be replaced when dependencies are built.
