file(REMOVE_RECURSE
  "librupam.a"
)
