
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/cli.cpp" "src/CMakeFiles/rupam.dir/app/cli.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/app/cli.cpp.o.d"
  "/root/repo/src/app/simulation.cpp" "src/CMakeFiles/rupam.dir/app/simulation.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/app/simulation.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/rupam.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/fair_share_resource.cpp" "src/CMakeFiles/rupam.dir/cluster/fair_share_resource.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/cluster/fair_share_resource.cpp.o.d"
  "/root/repo/src/cluster/gpu_pool.cpp" "src/CMakeFiles/rupam.dir/cluster/gpu_pool.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/cluster/gpu_pool.cpp.o.d"
  "/root/repo/src/cluster/heartbeat.cpp" "src/CMakeFiles/rupam.dir/cluster/heartbeat.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/cluster/heartbeat.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/CMakeFiles/rupam.dir/cluster/node.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/cluster/node.cpp.o.d"
  "/root/repo/src/cluster/node_spec.cpp" "src/CMakeFiles/rupam.dir/cluster/node_spec.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/cluster/node_spec.cpp.o.d"
  "/root/repo/src/cluster/presets.cpp" "src/CMakeFiles/rupam.dir/cluster/presets.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/cluster/presets.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/rupam.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/rupam.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/rupam.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/rupam.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/common/table.cpp.o.d"
  "/root/repo/src/dag/dag_scheduler.cpp" "src/CMakeFiles/rupam.dir/dag/dag_scheduler.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/dag/dag_scheduler.cpp.o.d"
  "/root/repo/src/dag/job.cpp" "src/CMakeFiles/rupam.dir/dag/job.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/dag/job.cpp.o.d"
  "/root/repo/src/dag/rdd.cpp" "src/CMakeFiles/rupam.dir/dag/rdd.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/dag/rdd.cpp.o.d"
  "/root/repo/src/dag/stage.cpp" "src/CMakeFiles/rupam.dir/dag/stage.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/dag/stage.cpp.o.d"
  "/root/repo/src/exec/block_cache.cpp" "src/CMakeFiles/rupam.dir/exec/block_cache.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/exec/block_cache.cpp.o.d"
  "/root/repo/src/exec/executor.cpp" "src/CMakeFiles/rupam.dir/exec/executor.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/exec/executor.cpp.o.d"
  "/root/repo/src/exec/gc_model.cpp" "src/CMakeFiles/rupam.dir/exec/gc_model.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/exec/gc_model.cpp.o.d"
  "/root/repo/src/metrics/breakdown.cpp" "src/CMakeFiles/rupam.dir/metrics/breakdown.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/metrics/breakdown.cpp.o.d"
  "/root/repo/src/metrics/event_trace.cpp" "src/CMakeFiles/rupam.dir/metrics/event_trace.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/metrics/event_trace.cpp.o.d"
  "/root/repo/src/metrics/experiment.cpp" "src/CMakeFiles/rupam.dir/metrics/experiment.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/metrics/experiment.cpp.o.d"
  "/root/repo/src/metrics/locality_counter.cpp" "src/CMakeFiles/rupam.dir/metrics/locality_counter.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/metrics/locality_counter.cpp.o.d"
  "/root/repo/src/metrics/utilization_sampler.cpp" "src/CMakeFiles/rupam.dir/metrics/utilization_sampler.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/metrics/utilization_sampler.cpp.o.d"
  "/root/repo/src/sched/baselines/capability_scheduler.cpp" "src/CMakeFiles/rupam.dir/sched/baselines/capability_scheduler.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/sched/baselines/capability_scheduler.cpp.o.d"
  "/root/repo/src/sched/baselines/fifo_scheduler.cpp" "src/CMakeFiles/rupam.dir/sched/baselines/fifo_scheduler.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/sched/baselines/fifo_scheduler.cpp.o.d"
  "/root/repo/src/sched/offers.cpp" "src/CMakeFiles/rupam.dir/sched/offers.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/sched/offers.cpp.o.d"
  "/root/repo/src/sched/rupam/dispatcher.cpp" "src/CMakeFiles/rupam.dir/sched/rupam/dispatcher.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/sched/rupam/dispatcher.cpp.o.d"
  "/root/repo/src/sched/rupam/resource_monitor.cpp" "src/CMakeFiles/rupam.dir/sched/rupam/resource_monitor.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/sched/rupam/resource_monitor.cpp.o.d"
  "/root/repo/src/sched/rupam/rupam_scheduler.cpp" "src/CMakeFiles/rupam.dir/sched/rupam/rupam_scheduler.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/sched/rupam/rupam_scheduler.cpp.o.d"
  "/root/repo/src/sched/rupam/task_char_db.cpp" "src/CMakeFiles/rupam.dir/sched/rupam/task_char_db.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/sched/rupam/task_char_db.cpp.o.d"
  "/root/repo/src/sched/rupam/task_manager.cpp" "src/CMakeFiles/rupam.dir/sched/rupam/task_manager.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/sched/rupam/task_manager.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/rupam.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sched/spark/spark_scheduler.cpp" "src/CMakeFiles/rupam.dir/sched/spark/spark_scheduler.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/sched/spark/spark_scheduler.cpp.o.d"
  "/root/repo/src/sched/speculation.cpp" "src/CMakeFiles/rupam.dir/sched/speculation.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/sched/speculation.cpp.o.d"
  "/root/repo/src/simcore/simulator.cpp" "src/CMakeFiles/rupam.dir/simcore/simulator.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/simcore/simulator.cpp.o.d"
  "/root/repo/src/simcore/timeseries.cpp" "src/CMakeFiles/rupam.dir/simcore/timeseries.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/simcore/timeseries.cpp.o.d"
  "/root/repo/src/tasks/locality.cpp" "src/CMakeFiles/rupam.dir/tasks/locality.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/tasks/locality.cpp.o.d"
  "/root/repo/src/tasks/task.cpp" "src/CMakeFiles/rupam.dir/tasks/task.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/tasks/task.cpp.o.d"
  "/root/repo/src/tasks/task_metrics.cpp" "src/CMakeFiles/rupam.dir/tasks/task_metrics.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/tasks/task_metrics.cpp.o.d"
  "/root/repo/src/tasks/task_set.cpp" "src/CMakeFiles/rupam.dir/tasks/task_set.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/tasks/task_set.cpp.o.d"
  "/root/repo/src/workloads/gramian.cpp" "src/CMakeFiles/rupam.dir/workloads/gramian.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/workloads/gramian.cpp.o.d"
  "/root/repo/src/workloads/kmeans.cpp" "src/CMakeFiles/rupam.dir/workloads/kmeans.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/workloads/kmeans.cpp.o.d"
  "/root/repo/src/workloads/logistic_regression.cpp" "src/CMakeFiles/rupam.dir/workloads/logistic_regression.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/workloads/logistic_regression.cpp.o.d"
  "/root/repo/src/workloads/matmul.cpp" "src/CMakeFiles/rupam.dir/workloads/matmul.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/workloads/matmul.cpp.o.d"
  "/root/repo/src/workloads/pagerank.cpp" "src/CMakeFiles/rupam.dir/workloads/pagerank.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/workloads/pagerank.cpp.o.d"
  "/root/repo/src/workloads/presets.cpp" "src/CMakeFiles/rupam.dir/workloads/presets.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/workloads/presets.cpp.o.d"
  "/root/repo/src/workloads/skew.cpp" "src/CMakeFiles/rupam.dir/workloads/skew.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/workloads/skew.cpp.o.d"
  "/root/repo/src/workloads/sql.cpp" "src/CMakeFiles/rupam.dir/workloads/sql.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/workloads/sql.cpp.o.d"
  "/root/repo/src/workloads/terasort.cpp" "src/CMakeFiles/rupam.dir/workloads/terasort.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/workloads/terasort.cpp.o.d"
  "/root/repo/src/workloads/triangle_count.cpp" "src/CMakeFiles/rupam.dir/workloads/triangle_count.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/workloads/triangle_count.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/rupam.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/rupam.dir/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
