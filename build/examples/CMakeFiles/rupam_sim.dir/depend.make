# Empty dependencies file for rupam_sim.
# This may be replaced when dependencies are built.
