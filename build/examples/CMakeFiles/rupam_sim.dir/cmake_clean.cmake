file(REMOVE_RECURSE
  "CMakeFiles/rupam_sim.dir/rupam_sim.cpp.o"
  "CMakeFiles/rupam_sim.dir/rupam_sim.cpp.o.d"
  "rupam_sim"
  "rupam_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rupam_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
