file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_cluster_tour.dir/heterogeneous_cluster_tour.cpp.o"
  "CMakeFiles/heterogeneous_cluster_tour.dir/heterogeneous_cluster_tour.cpp.o.d"
  "heterogeneous_cluster_tour"
  "heterogeneous_cluster_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_cluster_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
