# Empty compiler generated dependencies file for heterogeneous_cluster_tour.
# This may be replaced when dependencies are built.
