# Empty dependencies file for fig3_pagerank_breakdown.
# This may be replaced when dependencies are built.
