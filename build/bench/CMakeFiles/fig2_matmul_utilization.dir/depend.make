# Empty dependencies file for fig2_matmul_utilization.
# This may be replaced when dependencies are built.
