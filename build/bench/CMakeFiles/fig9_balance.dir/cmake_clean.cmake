file(REMOVE_RECURSE
  "CMakeFiles/fig9_balance.dir/fig9_balance.cpp.o"
  "CMakeFiles/fig9_balance.dir/fig9_balance.cpp.o.d"
  "fig9_balance"
  "fig9_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
