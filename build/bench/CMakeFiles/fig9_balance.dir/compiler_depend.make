# Empty compiler generated dependencies file for fig9_balance.
# This may be replaced when dependencies are built.
