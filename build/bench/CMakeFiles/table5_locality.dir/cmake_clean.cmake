file(REMOVE_RECURSE
  "CMakeFiles/table5_locality.dir/table5_locality.cpp.o"
  "CMakeFiles/table5_locality.dir/table5_locality.cpp.o.d"
  "table5_locality"
  "table5_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
