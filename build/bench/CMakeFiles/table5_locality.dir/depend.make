# Empty dependencies file for table5_locality.
# This may be replaced when dependencies are built.
