# Empty dependencies file for ablation_rupam.
# This may be replaced when dependencies are built.
