file(REMOVE_RECURSE
  "CMakeFiles/ablation_rupam.dir/ablation_rupam.cpp.o"
  "CMakeFiles/ablation_rupam.dir/ablation_rupam.cpp.o.d"
  "ablation_rupam"
  "ablation_rupam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rupam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
