# Empty dependencies file for table4_hardware.
# This may be replaced when dependencies are built.
