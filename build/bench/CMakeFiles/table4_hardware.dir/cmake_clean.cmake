file(REMOVE_RECURSE
  "CMakeFiles/table4_hardware.dir/table4_hardware.cpp.o"
  "CMakeFiles/table4_hardware.dir/table4_hardware.cpp.o.d"
  "table4_hardware"
  "table4_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
