file(REMOVE_RECURSE
  "CMakeFiles/fig6_iterations.dir/fig6_iterations.cpp.o"
  "CMakeFiles/fig6_iterations.dir/fig6_iterations.cpp.o.d"
  "fig6_iterations"
  "fig6_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
