# Empty dependencies file for fig6_iterations.
# This may be replaced when dependencies are built.
