file(REMOVE_RECURSE
  "CMakeFiles/micro_scheduler_overhead.dir/micro_scheduler_overhead.cpp.o"
  "CMakeFiles/micro_scheduler_overhead.dir/micro_scheduler_overhead.cpp.o.d"
  "micro_scheduler_overhead"
  "micro_scheduler_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scheduler_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
