# Empty compiler generated dependencies file for rupam_tests.
# This may be replaced when dependencies are built.
