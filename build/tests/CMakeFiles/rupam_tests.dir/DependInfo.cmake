
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/rupam_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_block_cache.cpp" "tests/CMakeFiles/rupam_tests.dir/test_block_cache.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_block_cache.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/rupam_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/rupam_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_dag.cpp" "tests/CMakeFiles/rupam_tests.dir/test_dag.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_dag.cpp.o.d"
  "/root/repo/tests/test_dispatcher.cpp" "tests/CMakeFiles/rupam_tests.dir/test_dispatcher.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_dispatcher.cpp.o.d"
  "/root/repo/tests/test_e2e.cpp" "tests/CMakeFiles/rupam_tests.dir/test_e2e.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_e2e.cpp.o.d"
  "/root/repo/tests/test_event_trace.cpp" "tests/CMakeFiles/rupam_tests.dir/test_event_trace.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_event_trace.cpp.o.d"
  "/root/repo/tests/test_executor.cpp" "tests/CMakeFiles/rupam_tests.dir/test_executor.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_executor.cpp.o.d"
  "/root/repo/tests/test_fair_share.cpp" "tests/CMakeFiles/rupam_tests.dir/test_fair_share.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_fair_share.cpp.o.d"
  "/root/repo/tests/test_gc_model.cpp" "tests/CMakeFiles/rupam_tests.dir/test_gc_model.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_gc_model.cpp.o.d"
  "/root/repo/tests/test_locality_speculation.cpp" "tests/CMakeFiles/rupam_tests.dir/test_locality_speculation.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_locality_speculation.cpp.o.d"
  "/root/repo/tests/test_memory_gpu.cpp" "tests/CMakeFiles/rupam_tests.dir/test_memory_gpu.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_memory_gpu.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/rupam_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/rupam_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_resource_monitor.cpp" "tests/CMakeFiles/rupam_tests.dir/test_resource_monitor.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_resource_monitor.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/rupam_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_rupam_scheduler.cpp" "tests/CMakeFiles/rupam_tests.dir/test_rupam_scheduler.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_rupam_scheduler.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/rupam_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/rupam_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_spark_scheduler.cpp" "tests/CMakeFiles/rupam_tests.dir/test_spark_scheduler.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_spark_scheduler.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/rupam_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/rupam_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_task_manager.cpp" "tests/CMakeFiles/rupam_tests.dir/test_task_manager.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_task_manager.cpp.o.d"
  "/root/repo/tests/test_timeseries.cpp" "tests/CMakeFiles/rupam_tests.dir/test_timeseries.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_timeseries.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/rupam_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/rupam_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rupam.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
