#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "cluster/fair_share_resource.hpp"

namespace rupam {
namespace {

TEST(FairShare, SingleClaimServiceTime) {
  Simulator sim;
  FairShareResource disk(sim, "disk", 100.0, 100.0);
  SimTime done = -1.0;
  disk.start(500.0, 1.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 5.0);
}

TEST(FairShare, TwoEqualClaimsShare) {
  Simulator sim;
  FairShareResource disk(sim, "disk", 100.0, 100.0);
  SimTime d1 = -1.0, d2 = -1.0;
  disk.start(500.0, 1.0, [&] { d1 = sim.now(); });
  disk.start(500.0, 1.0, [&] { d2 = sim.now(); });
  sim.run();
  // Each gets 50 units/s -> both finish at 10s.
  EXPECT_DOUBLE_EQ(d1, 10.0);
  EXPECT_DOUBLE_EQ(d2, 10.0);
}

TEST(FairShare, PerClaimCapLimitsSingleClaim) {
  Simulator sim;
  // 8-core CPU: one claim draws at most 1 core.
  FairShareResource cpu(sim, "cpu", 8.0, 1.0);
  SimTime done = -1.0;
  cpu.start(4.0, 1.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 4.0);
}

TEST(FairShare, NoContentionBelowCoreCount) {
  Simulator sim;
  FairShareResource cpu(sim, "cpu", 8.0, 1.0);
  std::vector<SimTime> done(8, -1.0);
  for (int i = 0; i < 8; ++i) {
    cpu.start(4.0, 1.0, [&done, i, &sim] { done[static_cast<std::size_t>(i)] = sim.now(); });
  }
  sim.run();
  for (SimTime d : done) EXPECT_DOUBLE_EQ(d, 4.0);
}

TEST(FairShare, ContentionBeyondCoreCount) {
  Simulator sim;
  FairShareResource cpu(sim, "cpu", 2.0, 1.0);
  int finished = 0;
  SimTime last = 0.0;
  for (int i = 0; i < 4; ++i) {
    cpu.start(2.0, 1.0, [&] {
      ++finished;
      last = sim.now();
    });
  }
  sim.run();
  // 4 claims x 2 units over a 2-unit/s resource = 4 seconds total.
  EXPECT_EQ(finished, 4);
  EXPECT_DOUBLE_EQ(last, 4.0);
}

TEST(FairShare, SpeedFactorScalesRate) {
  Simulator sim;
  FairShareResource cpu(sim, "cpu", 8.0, 1.0);
  SimTime fast = -1.0, slow = -1.0;
  cpu.start(10.0, 2.0, [&] { fast = sim.now(); });
  cpu.start(10.0, 0.5, [&] { slow = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fast, 5.0);
  EXPECT_DOUBLE_EQ(slow, 20.0);
}

TEST(FairShare, LateArrivalSlowsEarlier) {
  Simulator sim;
  FairShareResource net(sim, "net", 100.0, 100.0);
  SimTime d1 = -1.0;
  net.start(1000.0, 1.0, [&] { d1 = sim.now(); });  // alone: 10s
  sim.schedule_at(5.0, [&] { net.start(1000.0, 1.0, nullptr); });
  sim.run();
  // First 5s at 100/s -> 500 left; then shared 50/s -> 10 more seconds.
  EXPECT_DOUBLE_EQ(d1, 15.0);
}

TEST(FairShare, CancelFreesBandwidth) {
  Simulator sim;
  FairShareResource net(sim, "net", 100.0, 100.0);
  SimTime d1 = -1.0;
  net.start(1000.0, 1.0, [&] { d1 = sim.now(); });
  auto victim = net.start(1000.0, 1.0, [&] { FAIL() << "cancelled claim completed"; });
  sim.schedule_at(5.0, [&] { net.cancel(victim); });
  sim.run();
  // 5s shared (250 done) + 750 at full rate = 12.5s.
  EXPECT_DOUBLE_EQ(d1, 12.5);
}

TEST(FairShare, CancelUnknownIdIsNoop) {
  Simulator sim;
  FairShareResource net(sim, "net", 100.0, 100.0);
  net.cancel(12345);
  EXPECT_EQ(net.active(), 0u);
}

TEST(FairShare, ZeroWorkCompletesImmediately) {
  Simulator sim;
  FairShareResource net(sim, "net", 100.0, 100.0);
  SimTime done = -1.0;
  net.start(0.0, 1.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST(FairShare, TinyResidualWorkTerminates) {
  // Regression: residual work below the float resolution of `now` must
  // complete rather than freeze simulated time (see kTimeEpsilon).
  Simulator sim;
  FairShareResource net(sim, "net", 5e8, 5e8);
  int finished = 0;
  for (int i = 0; i < 7; ++i) {
    net.start(12.0 * 1024 * 1024 * (1.0 + 1e-13 * i), 1.0, [&] { ++finished; });
  }
  std::size_t events = sim.run(1000.0);
  EXPECT_EQ(finished, 7);
  EXPECT_LT(events, 1000u);
}

TEST(FairShare, UtilizationTracksLoad) {
  Simulator sim;
  FairShareResource cpu(sim, "cpu", 8.0, 1.0);
  EXPECT_DOUBLE_EQ(cpu.utilization(), 0.0);
  cpu.start(100.0, 1.0, nullptr);
  EXPECT_DOUBLE_EQ(cpu.utilization(), 1.0 / 8.0);
  for (int i = 0; i < 9; ++i) cpu.start(100.0, 1.0, nullptr);
  EXPECT_DOUBLE_EQ(cpu.utilization(), 1.0);  // saturated past 8 claims
}

TEST(FairShare, SaturatingResourceUsesDepthProxy) {
  Simulator sim;
  FairShareResource disk(sim, "disk", 100.0, 100.0);
  disk.start(1e9, 1.0, nullptr);
  double u1 = disk.utilization();
  disk.start(1e9, 1.0, nullptr);
  double u2 = disk.utilization();
  EXPECT_GT(u1, 0.0);
  EXPECT_LT(u1, 1.0);
  EXPECT_GT(u2, u1);  // deeper queue reports higher utilization
}

TEST(FairShare, ConcurrencyPenaltyDegradesThroughput) {
  Simulator sim;
  FairShareResource hdd(sim, "hdd", 100.0, 100.0, 0.1);
  SimTime done = 0.0;
  int finished = 0;
  for (int i = 0; i < 4; ++i) {
    hdd.start(100.0, 1.0, [&] {
      ++finished;
      done = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(finished, 4);
  // Effective capacity 100/(1+0.1*3) = 76.9/s for 400 units -> 5.2s.
  EXPECT_NEAR(done, 400.0 / (100.0 / 1.3), 1e-9);
}

TEST(FairShare, NoPenaltyForSingleStream) {
  Simulator sim;
  FairShareResource hdd(sim, "hdd", 100.0, 100.0, 0.1);
  SimTime done = -1.0;
  hdd.start(200.0, 1.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 2.0);
}

TEST(FairShare, TotalDrainedConserved) {
  Simulator sim;
  FairShareResource net(sim, "net", 100.0, 100.0);
  for (int i = 0; i < 5; ++i) net.start(100.0, 1.0, nullptr);
  sim.run();
  EXPECT_NEAR(net.total_drained(), 500.0, 1e-6);
}

TEST(FairShare, TotalDrainedIsObservationOnly) {
  // Regression: total_drained() used to call reschedule(), which cancelled
  // and re-pushed the pending completion event. That gave the completion a
  // fresh (later) sequence number, so an unrelated event at the same
  // timestamp jumped ahead of it. Observers must not perturb the trace.
  Simulator sim;
  FairShareResource net(sim, "net", 100.0, 100.0);
  std::vector<std::string> order;
  net.start(500.0, 1.0, [&] { order.push_back("completion"); });  // fires at 5.0, early seq
  sim.schedule_at(5.0, [&] { order.push_back("probe"); });        // same time, later seq
  double drained_at_2 = -1.0;
  sim.schedule_at(2.0, [&] { drained_at_2 = net.total_drained(); });
  sim.run();
  EXPECT_DOUBLE_EQ(drained_at_2, 200.0);
  // The completion kept its original admission order relative to the probe.
  EXPECT_EQ(order, (std::vector<std::string>{"completion", "probe"}));
}

TEST(FairShare, RedundantReschedulesKeepEventOrder) {
  // Admitting a claim that does not change the earliest completion time must
  // not cancel/re-push the pending event: the completion keeps its original
  // sequence number and still fires ahead of a same-time probe.
  Simulator sim;
  FairShareResource cpu(sim, "cpu", 8.0, 1.0);
  std::vector<std::string> order;
  cpu.start(4.0, 1.0, [&] { order.push_back("completion"); });  // finishes at 4.0
  sim.schedule_at(4.0, [&] { order.push_back("probe"); });
  cpu.start(10.0, 1.0, nullptr);  // later ETA: earliest completion unchanged
  sim.run(5.0);
  EXPECT_EQ(order, (std::vector<std::string>{"completion", "probe"}));
}

TEST(FairShare, CancellingEarliestClaimRetargetsCompletion) {
  // The pending event tracks the earliest-ETA claim; cancelling that claim
  // must promote the next one in the index.
  Simulator sim;
  FairShareResource cpu(sim, "cpu", 8.0, 1.0);
  SimTime b_done = -1.0;
  FairShareResource::ClaimId a = cpu.start(2.0, 1.0, [] { FAIL() << "cancelled claim completed"; });
  cpu.start(6.0, 1.0, [&] { b_done = sim.now(); });
  sim.schedule_at(1.0, [&] { cpu.cancel(a); });
  sim.run();
  EXPECT_DOUBLE_EQ(b_done, 6.0);
}

TEST(FairShare, StaggeredChurnMatchesProcessorSharingReference) {
  // Heavy exercise for the incremental earliest-ETA index: 40 claims with
  // mixed speed factors arrive staggered and some are cancelled mid-flight.
  // Completion times are checked against an independent processor-sharing
  // reference integrated directly in the test.
  constexpr int kClaims = 40;
  constexpr double kCapacity = 100.0;
  constexpr double kCancelTime = 6.0;
  struct Spec {
    double arrival, work, speed;
    bool cancelled;
  };
  std::vector<Spec> specs;
  for (int i = 0; i < kClaims; ++i) {
    specs.push_back({0.1 * i, 50.0 + 17.0 * ((i * 7) % 13), 0.5 + 0.25 * (i % 4), i % 5 == 3});
  }

  // Reference: equal capacity split (per-claim cap == capacity here), each
  // active claim drains at share * speed.
  std::vector<double> ref_done(kClaims, -1.0);
  {
    std::vector<double> remaining(kClaims);
    std::vector<bool> active(kClaims, false);
    for (int i = 0; i < kClaims; ++i) {
      remaining[static_cast<std::size_t>(i)] = specs[static_cast<std::size_t>(i)].work;
    }
    double t = 0.0;
    bool cancels_done = false;
    for (int guard = 0; guard < 10000; ++guard) {
      // Process everything due at the current instant: cancels, then arrivals.
      if (!cancels_done && t >= kCancelTime) {
        for (int i = 0; i < kClaims; ++i) {
          if (specs[static_cast<std::size_t>(i)].cancelled) active[static_cast<std::size_t>(i)] = false;
        }
        cancels_done = true;
      }
      for (int i = 0; i < kClaims; ++i) {
        const Spec& s = specs[static_cast<std::size_t>(i)];
        if (!active[static_cast<std::size_t>(i)] && ref_done[static_cast<std::size_t>(i)] < 0.0 &&
            remaining[static_cast<std::size_t>(i)] > 1e-9 && s.arrival <= t &&
            !(s.cancelled && cancels_done)) {
          active[static_cast<std::size_t>(i)] = true;
        }
      }
      int n_active = static_cast<int>(std::count(active.begin(), active.end(), true));
      double share = n_active > 0 ? std::min(kCapacity, kCapacity / n_active) : 0.0;
      double next = std::numeric_limits<double>::infinity();
      for (int i = 0; i < kClaims; ++i) {
        const Spec& s = specs[static_cast<std::size_t>(i)];
        if (!active[static_cast<std::size_t>(i)] && ref_done[static_cast<std::size_t>(i)] < 0.0 &&
            remaining[static_cast<std::size_t>(i)] > 1e-9 && s.arrival > t) {
          next = std::min(next, s.arrival);
        }
        if (active[static_cast<std::size_t>(i)]) {
          next = std::min(next, t + remaining[static_cast<std::size_t>(i)] / (share * s.speed));
        }
      }
      if (!cancels_done && kCancelTime > t) next = std::min(next, kCancelTime);
      if (!std::isfinite(next)) break;
      double dt = next - t;
      for (int i = 0; i < kClaims; ++i) {
        if (active[static_cast<std::size_t>(i)]) {
          remaining[static_cast<std::size_t>(i)] -= share * specs[static_cast<std::size_t>(i)].speed * dt;
        }
      }
      t = next;
      for (int i = 0; i < kClaims; ++i) {
        if (active[static_cast<std::size_t>(i)] && remaining[static_cast<std::size_t>(i)] <= 1e-9) {
          active[static_cast<std::size_t>(i)] = false;
          ref_done[static_cast<std::size_t>(i)] = t;
        }
      }
    }
  }

  Simulator sim;
  FairShareResource res(sim, "res", kCapacity, kCapacity);
  std::vector<SimTime> done(kClaims, -1.0);
  std::vector<FairShareResource::ClaimId> ids(kClaims, 0);
  for (int i = 0; i < kClaims; ++i) {
    const Spec& s = specs[static_cast<std::size_t>(i)];
    sim.schedule_at(s.arrival, [&res, &done, &ids, &sim, s, i] {
      ids[static_cast<std::size_t>(i)] =
          res.start(s.work, s.speed, [&done, &sim, i] { done[static_cast<std::size_t>(i)] = sim.now(); });
    });
  }
  sim.schedule_at(kCancelTime, [&] {
    for (int i = 0; i < kClaims; ++i) {
      if (specs[static_cast<std::size_t>(i)].cancelled && done[static_cast<std::size_t>(i)] < 0.0) {
        res.cancel(ids[static_cast<std::size_t>(i)]);
      }
    }
  });
  sim.run();

  EXPECT_EQ(res.active(), 0u);
  for (int i = 0; i < kClaims; ++i) {
    const Spec& s = specs[static_cast<std::size_t>(i)];
    if (s.cancelled && ref_done[static_cast<std::size_t>(i)] < 0.0) {
      EXPECT_LT(done[static_cast<std::size_t>(i)], 0.0) << "claim " << i << " should have been cancelled";
    } else {
      ASSERT_GE(done[static_cast<std::size_t>(i)], 0.0) << "claim " << i << " never completed";
      EXPECT_NEAR(done[static_cast<std::size_t>(i)], ref_done[static_cast<std::size_t>(i)], 1e-6)
          << "claim " << i;
    }
  }
}

TEST(FairShare, RejectsBadArguments) {
  Simulator sim;
  EXPECT_THROW(FairShareResource(sim, "x", 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(FairShareResource(sim, "x", 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(FairShareResource(sim, "x", 1.0, 1.0, -0.5), std::invalid_argument);
  FairShareResource ok(sim, "ok", 1.0, 1.0);
  EXPECT_THROW(ok.start(1.0, 0.0, nullptr), std::invalid_argument);
}

// Property: with N equal claims, completion time is N * work / capacity
// regardless of N (work conservation).
class WorkConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkConservationTest, MakespanMatchesTotalWork) {
  int n = GetParam();
  Simulator sim;
  FairShareResource r(sim, "r", 50.0, 50.0);
  SimTime last = 0.0;
  for (int i = 0; i < n; ++i) {
    r.start(100.0, 1.0, [&] { last = sim.now(); });
  }
  sim.run();
  EXPECT_NEAR(last, n * 100.0 / 50.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ClaimCounts, WorkConservationTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace rupam
