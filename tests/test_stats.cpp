#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace rupam {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(1);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    double v = rng.normal(10.0, 3.0);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(ConfidenceInterval, ZeroForTinySamples) {
  EXPECT_EQ(confidence_interval_95(5.0, 0), 0.0);
  EXPECT_EQ(confidence_interval_95(5.0, 1), 0.0);
}

TEST(ConfidenceInterval, FiveRunProtocol) {
  // n=5 -> t(4) = 2.776; CI = t * s / sqrt(5).
  double ci = confidence_interval_95(10.0, 5);
  EXPECT_NEAR(ci, 2.776 * 10.0 / std::sqrt(5.0), 1e-9);
}

TEST(ConfidenceInterval, ShrinksWithSampleSize) {
  EXPECT_GT(confidence_interval_95(1.0, 3), confidence_interval_95(1.0, 10));
  EXPECT_GT(confidence_interval_95(1.0, 10), confidence_interval_95(1.0, 100));
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.5);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInP) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng.uniform(0.0, 1000.0));
  double prev = percentile(v, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    double cur = percentile(v, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest, ::testing::Range(1, 9));

TEST(Helpers, MeanAndStddevOf) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.5);
  EXPECT_NEAR(stddev_of(v), std::sqrt(5.0 / 3.0), 1e-12);
}

}  // namespace
}  // namespace rupam
