#include <gtest/gtest.h>

#include <cmath>

#include "simcore/timeseries.hpp"

namespace rupam {
namespace {

TEST(TimeSeries, AddAndQuery) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.add(0.0, 1.0);
  ts.add(1.0, 3.0);
  ts.add(2.0, 5.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.mean(), 3.0);
  EXPECT_DOUBLE_EQ(ts.max(), 5.0);
}

TEST(TimeSeries, RejectsNonMonotonic) {
  TimeSeries ts;
  ts.add(5.0, 1.0);
  EXPECT_THROW(ts.add(4.0, 1.0), std::invalid_argument);
  ts.add(5.0, 2.0);  // equal timestamps are allowed
}

TEST(TimeSeries, ResampleAveragesBuckets) {
  TimeSeries ts;
  ts.add(0.1, 2.0);
  ts.add(0.9, 4.0);   // bucket 0: mean 3
  ts.add(1.5, 10.0);  // bucket 1: 10
  auto r = ts.resample(1.0, 2.0);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 10.0);
  EXPECT_DOUBLE_EQ(r[2], 10.0);  // empty bucket carries the previous value
}

TEST(TimeSeries, ResampleRejectsBadDt) {
  TimeSeries ts;
  EXPECT_THROW(ts.resample(0.0, 10.0), std::invalid_argument);
}

TEST(TimeSeries, ResampleEmptySeriesIsZeros) {
  TimeSeries ts;
  auto r = ts.resample(1.0, 3.0);
  for (double v : r) EXPECT_EQ(v, 0.0);
}

TEST(CrossSeriesStddev, IdenticalSeriesGiveZero) {
  std::vector<std::vector<double>> series{{1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}};
  auto sd = cross_series_stddev(series);
  for (double v : sd) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CrossSeriesStddev, KnownSpread) {
  std::vector<std::vector<double>> series{{0.0, 10.0}, {2.0, 10.0}};
  auto sd = cross_series_stddev(series);
  ASSERT_EQ(sd.size(), 2u);
  EXPECT_NEAR(sd[0], std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(sd[1], 0.0);
}

TEST(CrossSeriesStddev, RejectsUnaligned) {
  std::vector<std::vector<double>> series{{1.0, 2.0}, {1.0}};
  EXPECT_THROW(cross_series_stddev(series), std::invalid_argument);
}

TEST(CrossSeriesStddev, EmptyInput) { EXPECT_TRUE(cross_series_stddev({}).empty()); }

}  // namespace
}  // namespace rupam
