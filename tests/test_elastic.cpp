// Elastic-fleet layer: the runtime membership lifecycle (provisioning →
// live → draining → decommissioned), spot revocation, the pending-pressure
// autoscaler, fair-share preemption, diurnal arrivals, and — most
// importantly — the convergence of every subscribed layer (scheduler
// indexes, heartbeat wheel, liveness, sampler) when nodes join or leave
// mid-run. Every suite here is named Elastic* so CI can select the whole
// layer with `ctest -R '^Elastic'`.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "app/arrivals.hpp"
#include "cluster/autoscaler.hpp"
#include "cluster/fleet.hpp"
#include "cluster/heartbeat.hpp"
#include "cluster/presets.hpp"
#include "fault_invariants.hpp"
#include "faults/fault_plan.hpp"
#include "metrics/utilization_sampler.hpp"
#include "sweep/orchestrator.hpp"
#include "sweep/sweep_spec.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

using Transition = std::pair<NodeId, NodeLifecycle>;

// ------------------------------------------------- cluster lifecycle --

TEST(ElasticLifecycle, ProvisionBootsToLiveWithNotifications) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(thor_spec());
  std::vector<Transition> seen;
  cluster.subscribe_membership([&](NodeId id, NodeLifecycle s) { seen.emplace_back(id, s); });

  NodeId id = cluster.provision_node(hulk_spec(), /*boot_delay=*/5.0);
  EXPECT_EQ(id, 1);
  EXPECT_EQ(cluster.lifecycle(id), NodeLifecycle::kProvisioning);
  EXPECT_TRUE(cluster.member(id));
  EXPECT_FALSE(cluster.schedulable(id));
  EXPECT_FALSE(cluster.node(id).online());
  ASSERT_EQ(seen, (std::vector<Transition>{{id, NodeLifecycle::kProvisioning}}));

  sim.run(4.9);
  EXPECT_EQ(cluster.lifecycle(id), NodeLifecycle::kProvisioning);
  sim.run(5.1);
  EXPECT_EQ(cluster.lifecycle(id), NodeLifecycle::kLive);
  EXPECT_TRUE(cluster.schedulable(id));
  EXPECT_TRUE(cluster.node(id).online());
  EXPECT_EQ(seen, (std::vector<Transition>{{id, NodeLifecycle::kProvisioning},
                                           {id, NodeLifecycle::kLive}}));
  EXPECT_EQ(cluster.member_count(), 2u);
}

TEST(ElasticLifecycle, AddNodeIsSilentAndLiveImmediately) {
  Simulator sim;
  Cluster cluster(sim);
  std::vector<Transition> seen;
  cluster.subscribe_membership([&](NodeId id, NodeLifecycle s) { seen.emplace_back(id, s); });
  NodeId id = cluster.add_node(thor_spec());
  // Static fleets built at t=0 must behave exactly as before the
  // lifecycle existed: live at once, no notification traffic.
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ(cluster.lifecycle(id), NodeLifecycle::kLive);
  EXPECT_TRUE(cluster.schedulable(id));
}

TEST(ElasticLifecycle, DrainAndDecommissionAreOrderedAndIdempotent) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId a = cluster.add_node(thor_spec());
  NodeId b = cluster.add_node(thor_spec());
  std::vector<Transition> seen;
  cluster.subscribe_membership([&](NodeId id, NodeLifecycle s) { seen.emplace_back(id, s); });

  cluster.begin_drain(a);
  EXPECT_EQ(cluster.lifecycle(a), NodeLifecycle::kDraining);
  EXPECT_TRUE(cluster.member(a));        // still finishing its tasks
  EXPECT_FALSE(cluster.schedulable(a));  // but takes no new work
  cluster.begin_drain(a);                // idempotent: one notification
  ASSERT_EQ(seen.size(), 1u);

  cluster.decommission(a);
  cluster.decommission(a);  // idempotent
  EXPECT_EQ(cluster.lifecycle(a), NodeLifecycle::kDecommissioned);
  EXPECT_FALSE(cluster.member(a));
  EXPECT_EQ(cluster.member_count(), 1u);
  cluster.begin_drain(a);  // decommission is permanent
  EXPECT_EQ(cluster.lifecycle(a), NodeLifecycle::kDecommissioned);
  ASSERT_EQ(seen, (std::vector<Transition>{{a, NodeLifecycle::kDraining},
                                           {a, NodeLifecycle::kDecommissioned}}));

  // Ids are never reused: the next node gets a fresh id past the corpse.
  NodeId c = cluster.add_node(thor_spec());
  EXPECT_EQ(c, 2);
  EXPECT_TRUE(cluster.member(b));
  EXPECT_EQ(cluster.size(), 3u);
}

TEST(ElasticLifecycle, UnsubscribeStopsNotifications) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId a = cluster.add_node(thor_spec());
  int calls = 0;
  std::size_t token = cluster.subscribe_membership([&](NodeId, NodeLifecycle) { ++calls; });
  cluster.begin_drain(a);
  EXPECT_EQ(calls, 1);
  cluster.unsubscribe_membership(token);
  cluster.decommission(a);
  EXPECT_EQ(calls, 1);
}

// Satellite regression: membership-aware queries must reflect the current
// fleet, not the construction-time one.
TEST(ElasticLifecycle, MinMemoryAndClassQueriesTrackMembership) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId thor = cluster.add_node(thor_spec());   // 16 GB
  NodeId hulk = cluster.add_node(hulk_spec());   // 64 GB
  EXPECT_DOUBLE_EQ(cluster.min_node_memory(), thor_spec().memory);
  EXPECT_EQ(cluster.nodes_of_class("thor"), std::vector<NodeId>{thor});

  cluster.decommission(thor);
  EXPECT_DOUBLE_EQ(cluster.min_node_memory(), hulk_spec().memory);
  EXPECT_TRUE(cluster.nodes_of_class("thor").empty());
  EXPECT_EQ(cluster.nodes_of_class("hulk"), std::vector<NodeId>{hulk});

  // A provisioning node is already a member: executor sizing must account
  // for it before it even boots.
  NodeId stack = cluster.provision_node(stack_spec(), 10.0);
  EXPECT_DOUBLE_EQ(cluster.min_node_memory(), stack_spec().memory);
  EXPECT_EQ(cluster.nodes_of_class("stack"), std::vector<NodeId>{stack});
}

TEST(ElasticLifecycle, ProvisionedCostCoversMembershipWindows) {
  Simulator sim;
  Cluster cluster(sim);
  NodeSpec paid = hulk_spec();
  paid.hourly_cost = 1.0;
  NodeId a = cluster.add_node(paid);
  cluster.add_node(paid);
  cluster.add_node(thor_spec());  // hourly_cost 0: on-prem, never billed
  (void)a;

  sim.schedule_at(1800.0, [&] { cluster.decommission(a); });
  sim.run(3600.0);
  // Node a billed for half an hour, node b for the full hour.
  EXPECT_NEAR(cluster.provisioned_cost(sim.now()), 1.5, 1e-9);
  // The bill is frozen at decommission time: advancing the clock only
  // accrues cost for nodes still in the fleet.
  EXPECT_NEAR(cluster.provisioned_cost(7200.0), 2.5, 1e-9);
}

// ---------------------------------------------------- heartbeat wheel --

struct HeartbeatHarness {
  Simulator sim;
  Cluster cluster{sim};
  HeartbeatService hb{cluster, 1.0};
  std::map<NodeId, std::vector<SimTime>> beats;

  HeartbeatHarness() {
    cluster.add_node(thor_spec());
    cluster.add_node(thor_spec());
    hb.subscribe([this](const NodeMetrics& m) { beats[m.node].push_back(sim.now()); });
    // Mirror Simulation's membership wiring at unit level.
    cluster.subscribe_membership([this](NodeId id, NodeLifecycle s) {
      if (s == NodeLifecycle::kLive) hb.node_joined(id);
      if (s == NodeLifecycle::kDecommissioned) hb.node_left(id);
    });
  }
};

TEST(ElasticHeartbeat, JoinerBeatsAfterBootWithoutShiftingOthers) {
  HeartbeatHarness h;
  h.hb.start();
  h.sim.run(5.5);
  std::size_t before = h.beats[0].size();
  ASSERT_GE(before, 5u);
  EXPECT_TRUE(h.beats.find(2) == h.beats.end());

  NodeId joined = h.cluster.provision_node(hulk_spec(), /*boot_delay=*/2.0);
  h.sim.run(7.4);
  // Still provisioning (offline): no wheel entry, no beats.
  EXPECT_TRUE(h.beats.find(joined) == h.beats.end());
  h.sim.run(12.5);
  EXPECT_TRUE(h.hb.beating(joined));
  ASSERT_FALSE(h.beats[joined].empty());
  EXPECT_GE(h.beats[joined].front(), 7.5);  // first beat after going live

  // The incumbent nodes' cadence is untouched by the join: still exactly
  // one beat per period.
  EXPECT_EQ(h.beats[0].size(), before + 7);
  // All wheel entries share one kernel queue slot.
  EXPECT_EQ(h.hb.queue_entries(), 1u);
}

// Satellite: a decommissioned node's wheel entry is retired for good — no
// ghost beats, not even silent cycles that would keep the slot occupied.
TEST(ElasticHeartbeat, RetiredNodeNeverBeatsAgain) {
  HeartbeatHarness h;
  h.hb.start();
  h.sim.run(4.5);
  std::size_t before = h.beats[1].size();
  ASSERT_GT(before, 0u);

  h.cluster.decommission(1);
  EXPECT_FALSE(h.hb.beating(1));
  h.sim.run(20.0);
  EXPECT_EQ(h.beats[1].size(), before) << "ghost beats from a decommissioned node";
  EXPECT_TRUE(h.hb.beating(0));
  // node_left is idempotent and safe on already-retired ids.
  h.hb.node_left(1);
  EXPECT_FALSE(h.hb.beating(1));
}

// ------------------------------------------------- utilization sampler --

struct SamplerHarness {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<UtilizationSampler> sampler;

  // The sampler snapshots the fleet at construction (like Simulation
  // does), so the static nodes must exist before it is built.
  explicit SamplerHarness(std::size_t static_nodes = 1) {
    for (std::size_t i = 0; i < static_nodes; ++i) cluster.add_node(thor_spec());
    sampler = std::make_unique<UtilizationSampler>(cluster, 1.0);
    cluster.subscribe_membership([this](NodeId id, NodeLifecycle s) {
      if (s == NodeLifecycle::kLive) sampler->node_joined(id);
      if (s == NodeLifecycle::kDecommissioned) sampler->node_left(id);
    });
  }
};

TEST(ElasticSampler, MidRunJoinStartsSeriesAtJoinInstant) {
  SamplerHarness h;
  h.sampler->start();
  h.sim.run(5.0);
  EXPECT_GE(h.sampler->cpu_util(0).size(), 4u);

  NodeId joined = h.cluster.provision_node(hulk_spec(), /*boot_delay=*/2.0);
  h.sim.run(6.5);  // provisioning: no series allocated, not sampled
  EXPECT_FALSE(h.sampler->sampling(joined));
  EXPECT_THROW(h.sampler->cpu_util(joined), std::out_of_range);

  h.sim.run(12.0);
  EXPECT_TRUE(h.sampler->sampling(joined));
  const TimeSeries& cpu = h.sampler->cpu_util(joined);
  ASSERT_FALSE(cpu.empty());
  // No retroactive zeros: the series starts at the join instant (t=7).
  EXPECT_GE(cpu.points().front().time, 7.0);
}

TEST(ElasticSampler, DecommissionEndsSeriesAtLeaveInstant) {
  SamplerHarness h(2);
  NodeId b = 1;
  h.sampler->start();
  h.sim.run(5.0);
  ASSERT_TRUE(h.sampler->sampling(b));
  h.cluster.decommission(b);
  EXPECT_FALSE(h.sampler->sampling(b));
  std::size_t frozen = h.sampler->cpu_util(b).size();
  h.sim.run(15.0);
  // The series simply ends: averages cover the membership window only.
  EXPECT_EQ(h.sampler->cpu_util(b).size(), frozen);
  EXPECT_GT(h.sampler->cpu_util(0).size(), frozen);
  // Stale ids stay safe.
  h.sampler->node_left(b);
  EXPECT_THROW(h.sampler->node_joined(99), std::out_of_range);
}

// -------------------------------------------- scheduler index hygiene --

class ProbeScheduler : public SchedulerBase {
 public:
  using SchedulerBase::note_node_failure;
  using SchedulerBase::SchedulerBase;
  std::string name() const override { return "probe"; }

 protected:
  void try_dispatch() override {}
};

struct SchedulerHarness {
  Simulator sim;
  Cluster cluster{sim};
  Rng rng{1};
  std::vector<std::unique_ptr<Executor>> executors;
  std::unique_ptr<ProbeScheduler> sched;

  explicit SchedulerHarness(std::size_t nodes = 3) {
    for (std::size_t i = 0; i < nodes; ++i) cluster.add_node(thor_spec());
    SchedulerEnv env;
    env.sim = &sim;
    env.cluster = &cluster;
    for (NodeId id : cluster.node_ids()) {
      executors.push_back(
          std::make_unique<Executor>(sim, cluster.node(id), id, ExecutorConfig{}, rng.split()));
      env.executors.push_back(executors.back().get());
    }
    sched = std::make_unique<ProbeScheduler>(env);
  }

  NodeId provision(SimTime boot_delay) {
    NodeId id = cluster.provision_node(thor_spec(), boot_delay);
    executors.push_back(
        std::make_unique<Executor>(sim, cluster.node(id), id, ExecutorConfig{}, rng.split()));
    sched->register_executor(executors.back().get());
    return id;
  }
};

// Satellite: a node that is blacklisted and then spot-revoked must not be
// resurrected when the blacklist timer would have expired.
TEST(ElasticScheduler, DecommissionedNodeIsNeverResurrectedByUnblacklist) {
  SchedulerHarness h;
  FaultToleranceConfig ft;
  ft.enabled = true;
  ft.blacklist_max_failures = 3;
  ft.blacklist_duration = 120.0;
  h.sched->configure_fault_tolerance(ft);

  for (int i = 0; i < 3; ++i) h.sched->note_node_failure(1);
  ASSERT_TRUE(h.sched->node_blacklisted(1));

  // Spot reclaim lands while the node is blacklisted.
  h.cluster.decommission(1);
  EXPECT_FALSE(h.sched->node_usable(1));
  // The blacklist entry is purged with the membership — so the timed
  // un-blacklist sweep never fires for it...
  EXPECT_FALSE(h.sched->node_blacklisted(1));

  h.sim.schedule_at(130.0, [] {});
  while (h.sim.step()) {
  }
  // ...and past the would-be expiry the node stays unusable: membership,
  // not the blacklist clock, owns the answer now.
  EXPECT_FALSE(h.sched->node_usable(1));
  EXPECT_EQ(h.sched->unblacklist_events(), 0u);
  EXPECT_TRUE(h.sched->node_usable(0));
  EXPECT_TRUE(h.sched->node_usable(2));
}

TEST(ElasticScheduler, FreeSlotsCountOnlySchedulableNodes) {
  SchedulerHarness h(2);
  int per_node = h.executors[0]->free_slots();
  ASSERT_GT(per_node, 0);
  EXPECT_EQ(h.sched->free_slots_total(), 2 * per_node);

  // A provisioning node contributes nothing until it boots...
  NodeId late = h.provision(/*boot_delay=*/5.0);
  EXPECT_EQ(h.sched->free_slots_total(), 2 * per_node);
  h.sim.run(6.0);
  EXPECT_EQ(h.sched->free_slots_total(), 3 * per_node);

  // ...a draining node stops counting immediately...
  h.cluster.begin_drain(late);
  EXPECT_EQ(h.sched->free_slots_total(), 2 * per_node);

  // ...and decommission removes it for good.
  h.cluster.decommission(late);
  EXPECT_EQ(h.sched->free_slots_total(), 2 * per_node);
  EXPECT_FALSE(h.sched->node_usable(late));
}

TEST(ElasticScheduler, RegisterExecutorEnforcesNodeIdOrder) {
  SchedulerHarness h(2);
  NodeId a = h.cluster.provision_node(thor_spec(), 1.0);
  NodeId b = h.cluster.provision_node(thor_spec(), 1.0);
  ASSERT_EQ(b, a + 1);
  Rng rng(9);
  Executor wrong(h.sim, h.cluster.node(b), b, ExecutorConfig{}, rng.split());
  EXPECT_THROW(h.sched->register_executor(&wrong), std::invalid_argument);
  EXPECT_THROW(h.sched->register_executor(nullptr), std::invalid_argument);
  Executor right(h.sim, h.cluster.node(a), a, ExecutorConfig{}, rng.split());
  h.sched->register_executor(&right);  // in order: fine
}

// ------------------------------------------------------- autoscaler --

NodeClassMix burst_mix() {
  NodeClassMix mix;
  mix.name = "burst";
  mix.count = 0;  // count is a static-fleet knob; the autoscaler mints on demand
  mix.base = hulk_spec();
  mix.base.hourly_cost = 1.0;
  mix.cpu_jitter = 0.05;
  return mix;
}

AutoscaleConfig fast_autoscale() {
  AutoscaleConfig cfg;
  cfg.enabled = true;
  cfg.interval = 1.0;
  cfg.scale_up_pressure = 2.0;
  cfg.scale_up_step = 1;
  cfg.boot_delay = 2.0;
  cfg.idle_drain_after = 5.0;
  cfg.max_nodes = 3;
  cfg.seed = 7;
  return cfg;
}

struct AutoscalerHarness {
  Simulator sim;
  Cluster cluster{sim};
  NodeId base;
  std::size_t pending = 0;
  std::map<NodeId, int> running;
  std::unique_ptr<Autoscaler> scaler;

  explicit AutoscalerHarness(AutoscaleConfig cfg = fast_autoscale()) {
    base = cluster.add_node(thor_spec());
    AutoscalerEnv env;
    env.sim = &sim;
    env.cluster = &cluster;
    env.mix = burst_mix();
    env.pending_tasks = [this] { return pending; };
    env.free_slots = [] { return 0; };
    env.node_running = [this](NodeId id) {
      auto it = running.find(id);
      return it == running.end() ? 0 : it->second;
    };
    env.provision = [this](NodeSpec spec, SimTime boot) {
      return cluster.provision_node(std::move(spec), boot);
    };
    scaler = std::make_unique<Autoscaler>(std::move(env), cfg);
  }
};

TEST(ElasticAutoscaler, ValidatesEnvAndConfig) {
  Simulator sim;
  Cluster cluster(sim);
  AutoscalerEnv env;  // everything null/missing
  EXPECT_THROW(Autoscaler(env, fast_autoscale()), std::invalid_argument);

  AutoscalerHarness ok;
  AutoscaleConfig bad = fast_autoscale();
  bad.interval = 0.0;
  {
    AutoscalerHarness h;  // valid env to test config checks in isolation
    AutoscalerEnv env2;
    env2.sim = &h.sim;
    env2.cluster = &h.cluster;
    env2.mix = burst_mix();
    env2.pending_tasks = [] { return std::size_t{0}; };
    env2.free_slots = [] { return 0; };
    env2.node_running = [](NodeId) { return 0; };
    env2.provision = [&h](NodeSpec spec, SimTime boot) {
      return h.cluster.provision_node(std::move(spec), boot);
    };
    EXPECT_THROW(Autoscaler(env2, bad), std::invalid_argument);
    bad = fast_autoscale();
    bad.scale_up_step = 0;
    EXPECT_THROW(Autoscaler(env2, bad), std::invalid_argument);
    AutoscalerEnv unnamed = env2;
    unnamed.mix.name.clear();
    EXPECT_THROW(Autoscaler(unnamed, fast_autoscale()), std::invalid_argument);
  }

  ok.scaler->start();
  EXPECT_THROW(ok.scaler->start(), std::logic_error);  // double start
}

TEST(ElasticAutoscaler, ScalesUpUnderBacklogAndRespectsMaxNodes) {
  AutoscalerHarness h;
  h.pending = 10;
  h.scaler->start();
  h.sim.run(10.0);

  EXPECT_EQ(h.scaler->scale_ups(), 3u);  // capped at max_nodes
  EXPECT_EQ(h.scaler->owned_alive(), 3u);
  ASSERT_EQ(h.scaler->minted().size(), 3u);
  EXPECT_EQ(h.cluster.member_count(), 4u);
  for (std::size_t i = 0; i < h.scaler->minted().size(); ++i) {
    NodeId id = h.scaler->minted()[i];
    EXPECT_EQ(h.cluster.lifecycle(id), NodeLifecycle::kLive);
    const NodeSpec& spec = h.cluster.node(id).spec();
    EXPECT_EQ(spec.node_class, "burst");
    // Minted nodes continue the class numbering: burst1, burst2, ...
    EXPECT_EQ(spec.name, "burst" + std::to_string(i + 1));
    EXPECT_DOUBLE_EQ(spec.hourly_cost, 1.0);
  }
  // Pressure persists but the cap holds.
  h.sim.run(20.0);
  EXPECT_EQ(h.scaler->scale_ups(), 3u);
}

TEST(ElasticAutoscaler, DrainsIdleNodesLifoAndReapsThem) {
  AutoscalerHarness h;
  h.pending = 10;
  h.scaler->start();
  h.sim.run(10.0);
  ASSERT_EQ(h.scaler->owned_alive(), 3u);
  std::vector<NodeId> drained;
  h.cluster.subscribe_membership([&](NodeId id, NodeLifecycle s) {
    if (s == NodeLifecycle::kDraining) drained.push_back(id);
  });

  h.pending = 0;  // trough: everything minted is now idle
  h.sim.run(40.0);
  EXPECT_EQ(h.scaler->scale_downs(), 3u);
  EXPECT_EQ(h.scaler->owned_alive(), 0u);
  for (NodeId id : h.scaler->minted()) {
    EXPECT_EQ(h.cluster.lifecycle(id), NodeLifecycle::kDecommissioned);
  }
  // Newest-first: the drain order is the mint order reversed.
  std::vector<NodeId> expect(h.scaler->minted().rbegin(), h.scaler->minted().rend());
  EXPECT_EQ(drained, expect);
  // The base fleet is untouchable.
  EXPECT_EQ(h.cluster.lifecycle(h.base), NodeLifecycle::kLive);
}

TEST(ElasticAutoscaler, BusyMintedNodeIsNotDrained) {
  AutoscalerHarness h;
  h.pending = 10;
  h.scaler->start();
  h.sim.run(10.0);
  ASSERT_EQ(h.scaler->minted().size(), 3u);
  NodeId busy = h.scaler->minted().front();
  h.running[busy] = 2;
  h.pending = 0;
  h.sim.run(40.0);
  // The two idle nodes went; the busy one survives with its work.
  EXPECT_EQ(h.scaler->owned_alive(), 1u);
  EXPECT_EQ(h.cluster.lifecycle(busy), NodeLifecycle::kLive);

  h.running[busy] = 0;  // its last task finishes
  h.sim.run(55.0);
  EXPECT_EQ(h.scaler->owned_alive(), 0u);
  EXPECT_EQ(h.cluster.lifecycle(busy), NodeLifecycle::kDecommissioned);
}

TEST(ElasticAutoscaler, MintedSpecsAreDeterministicAcrossRuns) {
  auto mint_three = [](std::vector<NodeSpec>& out) {
    AutoscalerHarness h;
    h.pending = 10;
    h.scaler->start();
    h.sim.run(10.0);
    for (NodeId id : h.scaler->minted()) out.push_back(h.cluster.node(id).spec());
  };
  std::vector<NodeSpec> a, b;
  mint_three(a);
  mint_three(b);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].cpu_perf, b[i].cpu_perf);
    EXPECT_DOUBLE_EQ(a[i].cpu_ghz, b[i].cpu_ghz);
    EXPECT_DOUBLE_EQ(a[i].memory, b[i].memory);
  }
  // Jitter is real: not every minted node is a carbon copy of the base.
  bool varied = false;
  for (const NodeSpec& s : a) varied = varied || s.cpu_perf != hulk_spec().cpu_perf;
  EXPECT_TRUE(varied);
}

// ------------------------------------------------------ spot revocation --

TEST(ElasticSpot, SpecParsesDescribesAndValidates) {
  FaultPlan plan = parse_fault_spec("spot@15:node=2:notice=5");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kSpotRevoke);
  EXPECT_DOUBLE_EQ(plan.events[0].time, 15.0);
  EXPECT_EQ(plan.events[0].node, 2);
  EXPECT_DOUBLE_EQ(plan.events[0].duration, 5.0);
  plan.validate(12);
  EXPECT_NE(plan.events[0].describe().find("spot"), std::string::npos);
  EXPECT_THROW(parse_fault_spec("spot@15"), std::invalid_argument);  // no node
}

TEST(ElasticSpot, RevocationDrainsThenPermanentlyDecommissions) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.enable_trace = true;
  cfg.faults = parse_fault_spec("spot@14:node=2:notice=4");
  Simulation sim(cfg);

  NodeLifecycle during_notice = NodeLifecycle::kLive;
  bool alive_during_notice = false;
  sim.sim().schedule_at(16.0, [&] {
    during_notice = sim.cluster().lifecycle(2);
    alive_during_notice = sim.executor(2).alive();
  });

  const WorkloadPreset& preset = workload_preset("TeraSort");
  WorkloadParams params;
  params.input_gb = preset.input_gb / 16.0;
  params.iterations = 1;
  params.seed = 5;
  params.placement_weights = hdfs_placement_weights(sim.cluster());
  Application app = preset.factory(sim.cluster().node_ids(), params);
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 18.0);

  // During the notice window the node drains — no new work, but the
  // executor keeps finishing what it has.
  EXPECT_EQ(during_notice, NodeLifecycle::kDraining);
  EXPECT_TRUE(alive_during_notice);

  ASSERT_NE(sim.injector(), nullptr);
  EXPECT_EQ(sim.injector()->spot_revocations(), 1u);
  EXPECT_EQ(sim.injector()->recoveries(), 0u);  // spot reclaim never recovers
  EXPECT_EQ(sim.cluster().lifecycle(2), NodeLifecycle::kDecommissioned);
  EXPECT_FALSE(sim.executor(2).alive());
  ASSERT_NE(sim.trace(), nullptr);
  EXPECT_EQ(sim.trace()->count(TraceEventType::kNodeDraining), 1u);
  EXPECT_EQ(sim.trace()->count(TraceEventType::kNodeDecommissioned), 1u);
  expect_recovered_completion(sim, app);
}

// --------------------------------------------- mid-run convergence (the
// acceptance test): one node spot-revoked, one provisioned, and every
// subscribed layer must agree on the membership at every probe point.

TEST(ElasticConvergence, MidRunKillAndJoinConvergeAcrossAllLayers) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.enable_trace = true;
  cfg.sample_utilization = true;
  cfg.faults = parse_fault_spec("spot@14:node=2:notice=4");
  Simulation sim(cfg);

  NodeId joined = kInvalidNode;
  sim.sim().schedule_at(8.0, [&] {
    joined = sim.provision_node(hulk_spec(), /*boot_delay=*/4.0);
  });

  struct Probe {
    bool joined_live = false, joined_beating = false, joined_sampled = false;
    bool revoked_member = true, revoked_beating = true, revoked_sampled = true;
    bool revoked_usable = true, revoked_exec_alive = true;
  } at13, at20;
  auto snapshot = [&](Probe& p) {
    p.joined_live = sim.cluster().schedulable(joined);
    p.joined_beating = sim.heartbeats().beating(joined);
    p.joined_sampled = sim.sampler()->sampling(joined);
    p.revoked_member = sim.cluster().member(2);
    p.revoked_beating = sim.heartbeats().beating(2);
    p.revoked_sampled = sim.sampler()->sampling(2);
    p.revoked_usable = sim.scheduler().node_usable(2);
    p.revoked_exec_alive = sim.executor(2).alive();
  };
  sim.sim().schedule_at(13.0, [&] { snapshot(at13); });
  sim.sim().schedule_at(20.0, [&] { snapshot(at20); });

  // Full-size TeraSort: the run must outlast the join (t=12) by enough
  // that the late-joining node demonstrably takes work.
  const WorkloadPreset& preset = workload_preset("TeraSort");
  WorkloadParams params;
  params.input_gb = preset.input_gb;
  params.iterations = 1;
  params.seed = 5;
  params.placement_weights = hdfs_placement_weights(sim.cluster());
  Application app = preset.factory(sim.cluster().node_ids(), params);
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 20.0);
  ASSERT_EQ(joined, 12);

  // t=13: the provisioned node booted (t=12) and every layer admitted it;
  // the doomed node is still a full member.
  EXPECT_TRUE(at13.joined_live);
  EXPECT_TRUE(at13.joined_beating);
  EXPECT_TRUE(at13.joined_sampled);
  EXPECT_TRUE(at13.revoked_member);
  EXPECT_TRUE(at13.revoked_beating);
  EXPECT_TRUE(at13.revoked_usable);

  // t=20: the spot reclaim completed (t=18) and every layer let it go —
  // scheduler indexes, heartbeat wheel, sampler, executor.
  EXPECT_FALSE(at20.revoked_member);
  EXPECT_FALSE(at20.revoked_beating) << "ghost heartbeat-wheel entry";
  EXPECT_FALSE(at20.revoked_sampled);
  EXPECT_FALSE(at20.revoked_usable);
  EXPECT_FALSE(at20.revoked_exec_alive);
  EXPECT_TRUE(at20.joined_live);
  EXPECT_TRUE(at20.joined_beating);

  // The joined node actually worked: completed attempts ran on it.
  std::size_t on_joined = 0;
  for (const TaskMetrics& m : sim.scheduler().completed()) {
    if (m.node == joined) ++on_joined;
  }
  EXPECT_GT(on_joined, 0u);

  ASSERT_NE(sim.trace(), nullptr);
  EXPECT_EQ(sim.trace()->count(TraceEventType::kNodeProvisioned), 1u);
  EXPECT_EQ(sim.trace()->count(TraceEventType::kNodeJoined), 1u);
  EXPECT_EQ(sim.trace()->count(TraceEventType::kNodeDraining), 1u);
  EXPECT_EQ(sim.trace()->count(TraceEventType::kNodeDecommissioned), 1u);
  expect_recovered_completion(sim, app);
}

// ------------------------------------------- end to end: autoscale+preempt --

SimulationConfig elastic_config() {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.seed = 1;
  cfg.pools.policy = PoolPolicy::kFair;

  NodeClassMix base;
  base.name = "base";
  base.count = 4;
  base.base = hulk_spec();
  base.base.hourly_cost = 1.0;
  FleetSpec fleet;
  fleet.name = "elastic-base";
  fleet.seed = 1;
  fleet.classes = {base};
  cfg.nodes = generate_fleet(fleet);

  cfg.autoscale.enabled = true;
  cfg.autoscale.max_nodes = 6;
  cfg.autoscale.scale_up_step = 2;
  cfg.autoscale.boot_delay = 8.0;
  cfg.autoscale.idle_drain_after = 20.0;
  NodeClassMix burst = base;
  burst.name = "burst";
  burst.count = 6;
  cfg.autoscale_class = burst;
  cfg.preemption.enabled = true;
  return cfg;
}

SubmissionStream diurnal_stream(const std::vector<NodeId>& nodes) {
  ArrivalConfig arrivals;
  arrivals.rate = 0.05;
  arrivals.duration = 240.0;
  arrivals.tenants = 3;
  arrivals.seed = 1;
  arrivals.iterations_override = 1;
  arrivals.mix = {"GM", "PR"};
  arrivals.diurnal_amplitude = 1.0;
  arrivals.diurnal_period = 120.0;
  return make_poisson_stream(arrivals, nodes);
}

TEST(ElasticEndToEnd, AutoscaleAndPreemptionEngageAndStayDeterministic) {
  auto run_once = [](SimTime& makespan, std::size_t& ups, std::size_t& downs,
                     std::size_t& preempts, double& cost, std::size_t& jobs) {
    Simulation sim(elastic_config());
    SubmissionStream stream = diurnal_stream(sim.cluster().node_ids());
    TenantRunReport report = sim.run(stream);
    makespan = report.makespan;
    jobs = report.jobs.size();
    ASSERT_NE(sim.autoscaler(), nullptr);
    ups = sim.autoscaler()->scale_ups();
    downs = sim.autoscaler()->scale_downs();
    preempts = sim.scheduler().preemptions();
    cost = sim.cluster().provisioned_cost(sim.sim().now());
  };

  SimTime m1 = 0, m2 = 0;
  std::size_t u1 = 0, u2 = 0, d1 = 0, d2 = 0, p1 = 0, p2 = 0, j1 = 0, j2 = 0;
  double c1 = 0, c2 = 0;
  run_once(m1, u1, d1, p1, c1, j1);
  run_once(m2, u2, d2, p2, c2, j2);

  // The full loop engaged: nodes minted under the waves, drained in the
  // troughs, and the starved pools clawed slots back.
  EXPECT_GT(j1, 0u);
  EXPECT_GT(u1, 0u);
  EXPECT_GT(d1, 0u);
  EXPECT_GT(p1, 0u);
  EXPECT_GT(c1, 0.0);

  // Elastic machinery must not cost determinism.
  EXPECT_DOUBLE_EQ(m1, m2);
  EXPECT_EQ(u1, u2);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(p1, p2);
  EXPECT_DOUBLE_EQ(c1, c2);
  EXPECT_EQ(j1, j2);
}

// -------------------------------------------------------- fleet JSON --

TEST(ElasticFleetJson, HourlyCostRoundTripsAndValidates) {
  FleetSpec spec = hydra_fleet_spec();
  spec.classes[0].base.hourly_cost = 0.75;
  FleetSpec back = parse_fleet_json(fleet_to_json(spec));
  ASSERT_EQ(back.classes.size(), spec.classes.size());
  EXPECT_DOUBLE_EQ(back.classes[0].base.hourly_cost, 0.75);
  EXPECT_DOUBLE_EQ(back.classes[1].base.hourly_cost, 0.0);
  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    EXPECT_EQ(generate_fleet(back)[0].name, generate_fleet(spec)[0].name);
  }
  spec.classes[0].base.hourly_cost = -1.0;
  EXPECT_THROW(spec.validate(), std::runtime_error);
}

TEST(ElasticFleetJson, GenerateNodeMatchesClassNaming) {
  NodeClassMix mix = burst_mix();
  Rng rng(3);
  NodeSpec s = generate_node(mix, rng, 4);
  EXPECT_EQ(s.name, "burst5");  // zero-based index, one-based name
  EXPECT_EQ(s.node_class, "burst");
}

// ---------------------------------------------------- diurnal arrivals --

TEST(ElasticArrivals, DiurnalLoadFollowsTheWaveDeterministically) {
  std::vector<NodeId> nodes{0, 1, 2, 3};
  ArrivalConfig cfg;
  cfg.rate = 0.1;
  cfg.duration = 600.0;
  cfg.tenants = 1;
  cfg.seed = 11;
  cfg.iterations_override = 1;
  cfg.mix = {"KMeans"};
  cfg.diurnal_amplitude = 1.0;
  cfg.diurnal_period = 100.0;

  SubmissionStream a = make_poisson_stream(cfg, nodes);
  SubmissionStream b = make_poisson_stream(cfg, nodes);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 10u);
  std::size_t rising = 0, falling = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    SimTime t = a.items()[i].at;
    EXPECT_DOUBLE_EQ(t, b.items()[i].at);
    EXPECT_LE(t, cfg.duration);
    double phase = t / cfg.diurnal_period;
    (phase - std::floor(phase) < 0.5 ? rising : falling) += 1;
  }
  // sin > 0 over the first half-period: the peaks must draw visibly more
  // arrivals than the troughs.
  EXPECT_GT(rising, falling);
}

TEST(ElasticArrivals, RejectsBadDiurnalShape) {
  std::vector<NodeId> nodes{0};
  ArrivalConfig cfg;
  cfg.mix = {"KMeans"};
  cfg.diurnal_amplitude = 1.5;
  EXPECT_THROW(make_poisson_stream(cfg, nodes), std::invalid_argument);
  cfg.diurnal_amplitude = 0.5;
  cfg.diurnal_period = 0.0;
  EXPECT_THROW(make_poisson_stream(cfg, nodes), std::invalid_argument);
}

// -------------------------------------------------------- sweep axis --

TEST(ElasticSweep, StaticCellsKeepTheirPinnedSeeds) {
  SweepSpec spec;
  spec.base_seed = 99;
  // elastic index 0 (the static default) must reproduce the legacy 4-axis
  // derivation bit for bit — recorded sweeps stay valid.
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t f = 0; f < 2; ++f) {
      CellCoord cell{s, f, 0, 0, 0};
      EXPECT_EQ(derive_run_seed(spec, cell, 3),
                derive_run_seed(spec.base_seed, s, f, 0, 0, 3));
    }
  }
  // Non-default elastic modes fold into the seed and stay distinct.
  CellCoord stat{0, 0, 0, 0, 0}, a{0, 0, 0, 0, 1}, b{0, 0, 0, 0, 2};
  spec.elastic_modes = {"", "autoscale", "autoscale+preempt"};
  std::uint64_t s0 = derive_run_seed(spec, stat, 0);
  std::uint64_t s1 = derive_run_seed(spec, a, 0);
  std::uint64_t s2 = derive_run_seed(spec, b, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s0, s2);
}

TEST(ElasticSweep, ParseElasticModeVocabulary) {
  bool autoscale = true, preempt = true;
  EXPECT_TRUE(parse_elastic_mode("", autoscale, preempt));
  EXPECT_FALSE(autoscale);
  EXPECT_FALSE(preempt);
  EXPECT_TRUE(parse_elastic_mode("autoscale", autoscale, preempt));
  EXPECT_TRUE(autoscale);
  EXPECT_FALSE(preempt);
  EXPECT_TRUE(parse_elastic_mode("preempt", autoscale, preempt));
  EXPECT_FALSE(autoscale);
  EXPECT_TRUE(preempt);
  EXPECT_TRUE(parse_elastic_mode("autoscale+preempt", autoscale, preempt));
  EXPECT_TRUE(autoscale);
  EXPECT_TRUE(preempt);
  EXPECT_FALSE(parse_elastic_mode("turbo", autoscale, preempt));

  SweepSpec spec;
  spec.elastic_modes = {"turbo"};
  EXPECT_THROW(spec.validate(), std::runtime_error);
}

TEST(ElasticSweep, SpecJsonRoundTripsElasticAxis) {
  SweepSpec spec;
  spec.elastic_modes = {"", "autoscale+preempt"};
  SweepSpec back = parse_sweep_json(sweep_to_json(spec));
  EXPECT_EQ(back.elastic_modes, spec.elastic_modes);
  EXPECT_EQ(back.cell_count(), spec.cell_count());
  // The axis is innermost: adjacent linear indices differ in elastic only.
  CellCoord c0 = spec.cell_at(0), c1 = spec.cell_at(1);
  EXPECT_EQ(c0.elastic, 0u);
  EXPECT_EQ(c1.elastic, 1u);
  EXPECT_EQ(c0.scheduler, c1.scheduler);
  EXPECT_EQ(spec.cell_index(c1), 1u);
}

TEST(ElasticSweep, ElasticCellsAreByteIdenticalAcrossThreadCounts) {
  SweepSpec spec;
  spec.base_seed = 7;
  spec.replications = 1;
  spec.schedulers = {SchedulerKind::kRupam};
  spec.fleet_sizes = {12};
  spec.arrival_rates = {0.1};
  spec.fault_plans = {std::string()};
  spec.elastic_modes = {"", "autoscale+preempt"};
  spec.duration = 40.0;
  spec.mix = {"KMeans"};
  spec.max_apps = 2;

  std::string baseline;
  for (int threads : {1, 4}) {
    SweepOptions opts;
    opts.threads = threads;
    std::string json = run_sweep(spec, opts).to_json();
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "elastic cells diverged at " << threads << " threads";
    }
  }
  EXPECT_NE(baseline.find("\"elastic\": \"autoscale+preempt\""), std::string::npos);
}

}  // namespace
}  // namespace rupam
