// Deterministic fault plans against all four schedulers, plus unit tests
// for the FaultPlan spec parser and the chaos-plan generator.
#include <gtest/gtest.h>

#include "fault_invariants.hpp"
#include "faults/fault_plan.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

constexpr SchedulerKind kAllSchedulers[] = {SchedulerKind::kSpark, SchedulerKind::kRupam,
                                            SchedulerKind::kStageAware, SchedulerKind::kFifo};

// Shrunk shuffle-heavy workload: small enough to keep the suite fast,
// large enough that a fault at t≈15 s lands mid-job.
Application shrunk_workload(Simulation& sim, const char* name, std::uint64_t seed) {
  const WorkloadPreset& preset = workload_preset(name);
  WorkloadParams params;
  params.input_gb = preset.input_gb / 16.0;
  params.iterations = std::min(preset.iterations, 2);
  params.seed = seed;
  params.placement_weights = hdfs_placement_weights(sim.cluster());
  return preset.factory(sim.cluster().node_ids(), params);
}

class FaultPlansEverySched : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(FaultPlansEverySched, PermanentCrashMidStage) {
  SimulationConfig cfg;
  cfg.scheduler = GetParam();
  cfg.faults = parse_fault_spec("crash@15:node=2");
  Simulation sim(cfg);
  Application app = shrunk_workload(sim, "TeraSort", 5);
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 15.0) << "fault must land mid-run";
  ASSERT_NE(sim.injector(), nullptr);
  EXPECT_EQ(sim.injector()->crashes(), 1u);
  EXPECT_EQ(sim.injector()->recoveries(), 0u);
  EXPECT_FALSE(sim.executor(2).alive());
  expect_recovered_completion(sim, app);
}

TEST_P(FaultPlansEverySched, CrashThenRecover) {
  SimulationConfig cfg;
  cfg.scheduler = GetParam();
  cfg.faults = parse_fault_spec("crash@15:node=2:down=30");
  Simulation sim(cfg);
  Application app = shrunk_workload(sim, "TeraSort", 5);
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 15.0);
  ASSERT_NE(sim.injector(), nullptr);
  EXPECT_EQ(sim.injector()->crashes(), 1u);
  if (makespan > 45.0) {
    EXPECT_EQ(sim.injector()->recoveries(), 1u);
    EXPECT_TRUE(sim.executor(2).alive());  // back in service
  }
  expect_recovered_completion(sim, app);
}

TEST_P(FaultPlansEverySched, TransientSlowdowns) {
  SimulationConfig cfg;
  cfg.scheduler = GetParam();
  cfg.faults = parse_fault_spec(
      "slow@10:node=0:res=cpu:factor=0.25:for=30;"
      "slow@12:node=5:res=disk:factor=0.5:for=30;"
      "slow@14:node=8:res=net:factor=0.4:for=30");
  Simulation sim(cfg);
  Application app = shrunk_workload(sim, "TeraSort", 5);
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 14.0);
  ASSERT_NE(sim.injector(), nullptr);
  EXPECT_EQ(sim.injector()->injected(), 3u);
  // Throttles lift after their windows; a run outliving them must see
  // full capacity restored.
  if (makespan > 44.0) {
    EXPECT_DOUBLE_EQ(sim.cluster().node(0).cpu().capacity_scale(), 1.0);
    EXPECT_DOUBLE_EQ(sim.cluster().node(8).net().capacity_scale(), 1.0);
  }
  // Slowdowns lose no state: nothing should ever be recomputed.
  EXPECT_EQ(sim.recomputed_partitions(), 0u);
  expect_recovered_completion(sim, app);
}

TEST_P(FaultPlansEverySched, HeartbeatDropWindow) {
  SimulationConfig cfg;
  cfg.scheduler = GetParam();
  cfg.enable_trace = true;
  cfg.faults = parse_fault_spec("hbdrop@10:node=4:for=6");
  Simulation sim(cfg);
  Application app = shrunk_workload(sim, "TeraSort", 5);
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 10.0);
  ASSERT_NE(sim.trace(), nullptr);
  EXPECT_EQ(sim.trace()->count(TraceEventType::kFaultInjected), 1u);
  if (makespan > 20.0) {
    // 6 s of silence at a 1 s heartbeat period trips the 3-missed-beats
    // threshold, and the node must come back once beats resume.
    EXPECT_GE(sim.trace()->count(TraceEventType::kNodeDead), 1u);
    EXPECT_GE(sim.trace()->count(TraceEventType::kNodeRecovered), 1u);
  }
  // The node never actually died: no outputs lost, nothing recomputed.
  EXPECT_EQ(sim.recomputed_partitions(), 0u);
  expect_recovered_completion(sim, app);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, FaultPlansEverySched,
                         ::testing::ValuesIn(kAllSchedulers),
                         [](const ::testing::TestParamInfo<SchedulerKind>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(FaultRecovery, CrashResubmitsLostMapOutputPartitions) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.enable_trace = true;
  cfg.faults = parse_fault_spec("crash@25:node=3");
  Simulation sim(cfg);
  Application app = shrunk_workload(sim, "TeraSort", 5);
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 25.0);
  // TeraSort's map stage finishes well before t=25 on a 12-node cluster,
  // so node 3 holds registered shuffle outputs when it dies.
  EXPECT_GT(sim.recomputed_partitions(), 0u);
  EXPECT_GE(sim.trace()->count(TraceEventType::kPartitionResubmitted),
            sim.recomputed_partitions());
  expect_recovered_completion(sim, app);
}

TEST(FaultPlanSpec, ParsesMultiEventSpecSortedByTime) {
  FaultPlan plan = parse_fault_spec(
      "crash@60:node=3:down=40;slow@30:node=0:res=cpu:factor=0.3:for=60");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kSlowdown);
  EXPECT_DOUBLE_EQ(plan.events[0].time, 30.0);
  EXPECT_EQ(plan.events[0].node, 0);
  EXPECT_EQ(plan.events[0].resource, ResourceKind::kCpu);
  EXPECT_DOUBLE_EQ(plan.events[0].factor, 0.3);
  EXPECT_DOUBLE_EQ(plan.events[0].duration, 60.0);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(plan.events[1].time, 60.0);
  EXPECT_EQ(plan.events[1].node, 3);
  EXPECT_DOUBLE_EQ(plan.events[1].duration, 40.0);
  plan.validate(12);  // must not throw
}

TEST(FaultPlanSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_spec("crash:node=1"), std::invalid_argument);   // no @time
  EXPECT_THROW(parse_fault_spec("meteor@10:node=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash@10"), std::invalid_argument);       // no node
  EXPECT_THROW(parse_fault_spec("crash@abc:node=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("slow@10:node=1:res=gpu"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash@10:node=1:bogus=3"), std::invalid_argument);
}

TEST(FaultPlanSpec, ValidateRejectsOutOfRangeValues) {
  FaultPlan plan = parse_fault_spec("slow@10:node=1:res=cpu:factor=1.5");
  EXPECT_THROW(plan.validate(12), std::invalid_argument);  // factor > 1
  plan = parse_fault_spec("crash@10:node=12");
  EXPECT_THROW(plan.validate(12), std::invalid_argument);  // node out of range
  plan.validate(13);
}

TEST(ChaosPlan, SameSeedSamePlan) {
  FaultPlan a = make_chaos_plan(42, 12);
  FaultPlan b = make_chaos_plan(42, 12);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    EXPECT_DOUBLE_EQ(a.events[i].time, b.events[i].time);
    EXPECT_DOUBLE_EQ(a.events[i].duration, b.events[i].duration);
    EXPECT_DOUBLE_EQ(a.events[i].factor, b.events[i].factor);
  }
  FaultPlan c = make_chaos_plan(43, 12);
  bool differs = a.events.size() != c.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = a.events[i].kind != c.events[i].kind || a.events[i].time != c.events[i].time ||
              a.events[i].node != c.events[i].node;
  }
  EXPECT_TRUE(differs) << "different seeds should give different plans";
}

TEST(ChaosPlan, CrashesBoundedToHalfTheClusterOnDistinctNodes) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    FaultPlan plan = make_chaos_plan(seed, 12);
    plan.validate(12);
    std::set<NodeId> crashed;
    for (const auto& e : plan.events) {
      if (e.kind != FaultKind::kCrash) continue;
      EXPECT_TRUE(crashed.insert(e.node).second) << "seed " << seed << ": repeated crash node";
      EXPECT_GT(e.duration, 0.0) << "chaos crashes must self-recover";
    }
    EXPECT_LE(crashed.size(), 6u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rupam
