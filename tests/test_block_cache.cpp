#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "exec/block_cache.hpp"

namespace rupam {
namespace {

TEST(BlockCache, PutAndProbe) {
  BlockCache cache(100.0);
  EXPECT_DOUBLE_EQ(cache.put("a", 40.0), 0.0);
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_DOUBLE_EQ(cache.used(), 40.0);
}

TEST(BlockCache, EvictsLruToFit) {
  BlockCache cache(100.0);
  cache.put("a", 40.0);
  cache.put("b", 40.0);
  Bytes evicted = cache.put("c", 40.0);  // must evict "a" (LRU)
  EXPECT_DOUBLE_EQ(evicted, 40.0);
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_TRUE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
}

TEST(BlockCache, TouchRefreshesRecency) {
  BlockCache cache(100.0);
  cache.put("a", 40.0);
  cache.put("b", 40.0);
  EXPECT_TRUE(cache.touch("a"));  // "b" becomes LRU
  cache.put("c", 40.0);
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
}

TEST(BlockCache, TouchMissReturnsFalse) {
  BlockCache cache(10.0);
  EXPECT_FALSE(cache.touch("nope"));
}

TEST(BlockCache, OversizedBlockNotStoredNoEvictionStorm) {
  BlockCache cache(100.0);
  cache.put("a", 50.0);
  EXPECT_DOUBLE_EQ(cache.put("huge", 150.0), 0.0);
  EXPECT_FALSE(cache.contains("huge"));
  EXPECT_TRUE(cache.contains("a"));  // nothing was evicted for it
}

TEST(BlockCache, ReplaceSameKeyUpdatesSize) {
  BlockCache cache(100.0);
  cache.put("a", 30.0);
  cache.put("a", 60.0);
  EXPECT_DOUBLE_EQ(cache.used(), 60.0);
  EXPECT_EQ(cache.blocks(), 1u);
}

TEST(BlockCache, RemoveAndClear) {
  BlockCache cache(100.0);
  cache.put("a", 30.0);
  cache.put("b", 30.0);
  cache.remove("a");
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_DOUBLE_EQ(cache.used(), 30.0);
  cache.remove("not-there");  // no-op
  cache.clear();
  EXPECT_EQ(cache.blocks(), 0u);
  EXPECT_DOUBLE_EQ(cache.used(), 0.0);
}

TEST(BlockCache, EvictedTotalAccumulates) {
  BlockCache cache(100.0);
  cache.put("a", 60.0);
  cache.put("b", 60.0);  // evicts a
  cache.put("c", 60.0);  // evicts b
  EXPECT_DOUBLE_EQ(cache.evicted_total(), 120.0);
}

TEST(BlockCache, RejectsNegative) {
  EXPECT_THROW(BlockCache(-1.0), std::invalid_argument);
  BlockCache cache(10.0);
  EXPECT_THROW(cache.put("a", -1.0), std::invalid_argument);
}

// Property: used() never exceeds capacity, whatever the insert sequence.
class CacheInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(CacheInvariantTest, UsedNeverExceedsCapacity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  BlockCache cache(1000.0);
  for (int i = 0; i < 500; ++i) {
    cache.put("k" + std::to_string(rng.uniform_index(50)), rng.uniform(1.0, 400.0));
    ASSERT_LE(cache.used(), cache.capacity() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheInvariantTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace rupam
