// Multi-tenant scheduling core: concurrent applications in one
// DagScheduler, disjoint id namespaces via SubmissionStream, FAIR vs FIFO
// cross-job policies, determinism of the arrival driver, and fault
// recovery with more than one job in flight.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "app/arrivals.hpp"
#include "common/stats.hpp"
#include "fault_invariants.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

TaskSpec make_task(TaskId id, StageId stage, int partition) {
  TaskSpec t;
  t.id = id;
  t.stage = stage;
  t.stage_name = "s" + std::to_string(stage);
  t.partition = partition;
  return t;
}

Stage make_stage(StageId id, int tasks, std::vector<StageId> parents, TaskId base) {
  Stage s;
  s.id = id;
  s.name = "s" + std::to_string(id);
  s.parents = std::move(parents);
  s.tasks.stage = id;
  s.tasks.stage_name = s.name;
  for (int i = 0; i < tasks; ++i) s.tasks.tasks.push_back(make_task(base + i, id, i));
  return s;
}

/// Two-job application occupying ids [base, base+2) for jobs/stages and
/// [10*base, ...) for tasks.
Application two_job_app(const std::string& name, int base) {
  Application app;
  app.name = name;
  for (int j = 0; j < 2; ++j) {
    Job job;
    job.id = base + j;
    job.name = name + "_job" + std::to_string(j);
    job.stages.push_back(make_stage(base + j, 2, {}, 10 * (base + j)));
    app.jobs.push_back(std::move(job));
  }
  return app;
}

struct DagHarness {
  Simulator sim;
  std::vector<StageId> submitted;
  DagScheduler dag{sim, [this](const TaskSet& ts) { submitted.push_back(ts.stage); }};

  void finish_stage(const Application& app, StageId stage) {
    for (const auto& job : app.jobs) {
      for (const auto& s : job.stages) {
        if (s.id != stage) continue;
        for (const auto& t : s.tasks.tasks) dag.on_partition_success(stage, t.partition);
      }
    }
  }
};

TEST(MultiTenantDag, ConcurrentAppsInterleaveButJobsStaySequential) {
  Application a = two_job_app("A", 0);
  Application b = two_job_app("B", 2);
  DagHarness h;
  int done = 0;
  h.dag.submit_app(a, [&] { ++done; });
  h.dag.submit_app(b, [&] { ++done; });

  // Both apps' first jobs are in flight at once...
  EXPECT_EQ(h.submitted, (std::vector<StageId>{0, 2}));
  EXPECT_EQ(h.dag.active_jobs(), 2u);
  EXPECT_EQ(h.dag.active_job_ids(), (std::vector<JobId>{0, 2}));

  // ...but each app's second job waits for its first.
  h.finish_stage(a, 0);
  EXPECT_EQ(h.submitted, (std::vector<StageId>{0, 2, 1}));
  EXPECT_EQ(h.dag.jobs_completed(), 1u);
  EXPECT_EQ(done, 0);

  h.finish_stage(b, 2);
  h.finish_stage(b, 3);
  EXPECT_EQ(done, 1);  // B finished while A's job 1 still runs
  EXPECT_EQ(h.dag.apps_completed(), 1u);
  EXPECT_FALSE(h.dag.finished());

  h.finish_stage(a, 1);
  EXPECT_EQ(done, 2);
  EXPECT_TRUE(h.dag.finished());
  EXPECT_EQ(h.dag.jobs_completed(), 4u);
  EXPECT_EQ(h.dag.apps_completed(), 2u);
}

TEST(MultiTenantDag, RejectsStageIdCollisions) {
  Application a = two_job_app("A", 0);
  Application b = two_job_app("B", 0);  // same stage ids as A
  DagHarness h;
  h.dag.submit_app(a, nullptr);
  EXPECT_THROW(h.dag.submit_app(b, nullptr), std::invalid_argument);
}

TEST(SubmissionStream, RemapsIdsAndCacheKeysDisjointly) {
  std::vector<NodeId> nodes{0, 1, 2, 3};
  const WorkloadPreset& gm = workload_preset("GM");
  SubmissionStream stream;
  stream.add(0.0, build_workload(gm, nodes, 1), "tenant0");
  stream.add(5.0, build_workload(gm, nodes, 1), "tenant1");  // identical build
  ASSERT_EQ(stream.size(), 2u);

  std::map<StageId, int> stage_ids;
  std::map<TaskId, int> task_ids;
  std::vector<std::string> cache_keys[2];
  for (int i = 0; i < 2; ++i) {
    const Application& app = stream.items()[i].app;
    EXPECT_EQ(app.pool, "tenant" + std::to_string(i));
    app.validate();
    for (const Job& job : app.jobs) {
      for (const Stage& stage : job.stages) {
        ++stage_ids[stage.id];
        EXPECT_EQ(stage.tasks.pool, app.pool);
        for (const TaskSpec& task : stage.tasks.tasks) {
          ++task_ids[task.id];
          if (!task.input_cache_key.empty()) cache_keys[i].push_back(task.input_cache_key);
        }
      }
    }
  }
  for (const auto& [id, count] : stage_ids) EXPECT_EQ(count, 1) << "stage id " << id;
  for (const auto& [id, count] : task_ids) EXPECT_EQ(count, 1) << "task id " << id;
  // Same workload, same seed — but namespaced cache keys must not collide.
  for (const std::string& key : cache_keys[0]) {
    EXPECT_EQ(key.rfind("a0_", 0), 0u) << key;
    EXPECT_EQ(std::count(cache_keys[1].begin(), cache_keys[1].end(), key), 0) << key;
  }
}

Application shrunk_workload(Simulation& sim, const char* name, std::uint64_t seed,
                            int iterations = 0, double shrink = 16.0) {
  const WorkloadPreset& preset = workload_preset(name);
  WorkloadParams params;
  params.input_gb = preset.input_gb / shrink;
  params.iterations = iterations > 0 ? iterations : std::min(preset.iterations, 2);
  params.seed = seed;
  return preset.factory(sim.cluster().node_ids(), params);
}

std::string tenant_trace_csv(PoolPolicy policy) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.pools.policy = policy;
  cfg.enable_trace = true;
  Simulation sim(cfg);
  SubmissionStream stream;
  stream.add(0.0, shrunk_workload(sim, "TeraSort", 3), "batch");
  stream.add(2.0, shrunk_workload(sim, "GM", 4), "tenant0");
  stream.add(6.0, shrunk_workload(sim, "GM", 5), "tenant1");
  TenantRunReport report = sim.run(stream);
  EXPECT_EQ(report.jobs.size(), stream.items()[0].app.jobs.size() + 2);
  EXPECT_GT(report.overall.p95, 0.0);
  std::ostringstream csv;
  sim.trace()->write_csv(csv);
  return csv.str();
}

TEST(MultiTenantSimulation, FixedStreamReproducesByteIdenticalTrace) {
  for (PoolPolicy policy : {PoolPolicy::kFifo, PoolPolicy::kFair}) {
    std::string first = tenant_trace_csv(policy);
    std::string second = tenant_trace_csv(policy);
    EXPECT_GT(first.size(), 0u);
    EXPECT_EQ(first, second) << to_string(policy)
                             << ": same stream must replay identically";
  }
}

TEST(MultiTenantSimulation, PoissonDriverIsDeterministic) {
  ArrivalConfig cfg;
  cfg.rate = 0.1;
  cfg.duration = 100.0;
  cfg.tenants = 2;
  cfg.seed = 9;
  std::vector<NodeId> nodes{0, 1, 2, 3};
  SubmissionStream a = make_poisson_stream(cfg, nodes);
  SubmissionStream b = make_poisson_stream(cfg, nodes);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.items()[i].at, b.items()[i].at);
    EXPECT_EQ(a.items()[i].app.name, b.items()[i].app.name);
    EXPECT_EQ(a.items()[i].app.pool, b.items()[i].app.pool);
  }
  cfg.seed = 10;
  SubmissionStream c = make_poisson_stream(cfg, nodes);
  bool identical = c.size() == a.size();
  for (std::size_t i = 0; identical && i < a.size(); ++i) {
    identical = c.items()[i].at == a.items()[i].at;
  }
  EXPECT_FALSE(identical) << "different seeds must draw different arrivals";
}

/// Three small nodes (12 slots total): policy order only matters when jobs
/// actually contend for slots — on full Hydra the shrunk workloads all
/// launch immediately and FIFO/FAIR coincide.
std::vector<NodeSpec> tiny_cluster() {
  std::vector<NodeSpec> nodes;
  for (int i = 0; i < 3; ++i) {
    NodeSpec s;
    s.name = "tiny" + std::to_string(i);
    s.node_class = "tiny";
    s.cores = 4;
    s.cpu_ghz = 2.5;
    s.cpu_perf = 1.0;
    s.memory = 16 * kGiB;
    s.net_bandwidth = gbit_per_s(1.0);
    s.has_ssd = false;
    s.disk_read_bw = mib_per_s(200);
    s.disk_write_bw = mib_per_s(180);
    s.disk_capacity = 500 * kGiB;
    s.gpus = 0;
    nodes.push_back(std::move(s));
  }
  return nodes;
}

double short_job_p95(PoolPolicy policy) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.pools.policy = policy;
  cfg.nodes = tiny_cluster();
  Simulation sim(cfg);
  SubmissionStream stream;
  // A long batch job first (lowest job ids = FIFO priority), then a train
  // of genuinely short jobs (PR /16 runs ~55s solo; the batch ~230s).
  stream.add(0.0, shrunk_workload(sim, "TeraSort", 3, 0, 2.0), "batch");
  for (int i = 0; i < 4; ++i) {
    stream.add(10.0 + 15.0 * i, shrunk_workload(sim, "PR", 10 + i, 1),
               "tenant" + std::to_string(i % 2));
  }
  TenantRunReport report = sim.run(stream);
  std::vector<double> jcts;
  for (const JobCompletion& j : report.jobs) {
    if (j.pool != "batch") jcts.push_back(j.jct());
  }
  EXPECT_GE(jcts.size(), 4u);  // PR submits one job per action (>= 1 per app)
  return percentile(jcts, 95.0);
}

TEST(MultiTenantSimulation, FairShrinksShortJobTailVsFifo) {
  double fifo = short_job_p95(PoolPolicy::kFifo);
  double fair = short_job_p95(PoolPolicy::kFair);
  EXPECT_LT(fair, fifo) << "FAIR must cut the short jobs' p95 JCT under a batch job";
}

TEST(MultiTenantChaos, FaultsWithConcurrentJobsKeepCompletionInvariants) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.chaos_seed = 7;
  Simulation sim(cfg);
  SubmissionStream stream;
  stream.add(0.0, shrunk_workload(sim, "TeraSort", 7), "batch");
  stream.add(5.0, shrunk_workload(sim, "LR", 8), "tenant0");
  TenantRunReport report = sim.run(stream);
  ASSERT_NE(sim.injector(), nullptr);
  EXPECT_FALSE(sim.injector()->plan().empty());

  // The two applications overlapped — at least two jobs were concurrent.
  SimTime batch_start = 1e300, batch_end = 0.0, tenant_start = 1e300, tenant_end = 0.0;
  for (const JobCompletion& j : report.jobs) {
    SimTime& start = j.pool == "batch" ? batch_start : tenant_start;
    SimTime& end = j.pool == "batch" ? batch_end : tenant_end;
    start = std::min(start, j.submitted);
    end = std::max(end, j.finished);
  }
  EXPECT_LT(batch_start, tenant_end);
  EXPECT_LT(tenant_start, batch_end);

  // Every partition of both apps completed exactly 1 + recomputes times.
  std::map<std::pair<StageId, int>, int> completions;
  for (const auto& m : sim.scheduler().completed()) ++completions[{m.stage, m.partition}];
  std::size_t total_tasks = 0;
  for (const TimedSubmission& s : stream.items()) total_tasks += s.app.total_tasks();
  EXPECT_EQ(completions.size(), total_tasks);
  const auto& recomputes = sim.dag().recompute_counts();
  for (const auto& [key, count] : completions) {
    auto it = recomputes.find(key);
    int expected = 1 + (it == recomputes.end() ? 0 : it->second);
    EXPECT_EQ(count, expected) << "stage " << key.first << " partition " << key.second;
  }
  EXPECT_EQ(sim.scheduler().active_stages(), 0u);
  EXPECT_TRUE(sim.dag().finished());
}

}  // namespace
}  // namespace rupam
