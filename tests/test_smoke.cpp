// End-to-end smoke: both schedulers run a small workload to completion on
// the Hydra cluster and every partition completes exactly once.
#include <gtest/gtest.h>

#include "app/simulation.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

TEST(Smoke, SparkRunsPageRank) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  Simulation sim(cfg);
  Application app = build_workload(workload_preset("PR"), sim.cluster().node_ids(), 7, 2);
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 0.0);
  EXPECT_GE(sim.scheduler().completed().size(), app.total_tasks());
}

TEST(Smoke, RupamRunsPageRank) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  Simulation sim(cfg);
  Application app = build_workload(workload_preset("PR"), sim.cluster().node_ids(), 7, 2);
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 0.0);
  EXPECT_GE(sim.scheduler().completed().size(), app.total_tasks());
}

}  // namespace
}  // namespace rupam
