#include <gtest/gtest.h>

#include <sstream>

#include "app/simulation.hpp"
#include "metrics/event_trace.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

TraceEvent event(SimTime t, TraceEventType type, TaskId task = 1) {
  TraceEvent e;
  e.time = t;
  e.type = type;
  e.task = task;
  e.stage = 0;
  e.node = 2;
  e.detail = "d";
  return e;
}

TEST(EventTrace, RecordsAndCounts) {
  EventTrace trace;
  EXPECT_TRUE(trace.empty());
  trace.record(event(0.0, TraceEventType::kTaskLaunched));
  trace.record(event(1.0, TraceEventType::kTaskLaunched));
  trace.record(event(2.0, TraceEventType::kTaskFinished));
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.count(TraceEventType::kTaskLaunched), 2u);
  EXPECT_EQ(trace.count(TraceEventType::kTaskFinished), 1u);
  EXPECT_EQ(trace.count(TraceEventType::kExecutorLost), 0u);
}

TEST(EventTrace, RejectsTimeTravel) {
  EventTrace trace;
  trace.record(event(5.0, TraceEventType::kTaskLaunched));
  EXPECT_THROW(trace.record(event(4.0, TraceEventType::kTaskFinished)),
               std::invalid_argument);
}

TEST(EventTrace, ClearResets) {
  EventTrace trace;
  trace.record(event(0.0, TraceEventType::kTaskLaunched));
  trace.clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.count(TraceEventType::kTaskLaunched), 0u);
  trace.record(event(0.0, TraceEventType::kTaskLaunched));  // reusable
}

TEST(EventTrace, CsvEscapesDetailPerRfc4180) {
  EventTrace trace;
  TraceEvent e = event(1.0, TraceEventType::kFaultInjected);
  e.detail = "crash@60,node=3 said \"down\"\r\nthen recovered";
  trace.record(std::move(e));
  std::ostringstream oss;
  trace.write_csv(oss);
  std::string out = oss.str();
  // Commas, quotes, CR and LF all force quoting; quotes double.
  EXPECT_NE(out.find("\"crash@60,node=3 said \"\"down\"\"\r\nthen recovered\""),
            std::string::npos);
}

TEST(EventTrace, CsvHasHeaderAndRows) {
  EventTrace trace;
  trace.record(event(1.5, TraceEventType::kTaskFailed));
  std::ostringstream oss;
  trace.write_csv(oss);
  std::string out = oss.str();
  EXPECT_NE(out.find("time,type,stage,task"), std::string::npos);
  EXPECT_NE(out.find("task_failed"), std::string::npos);
  EXPECT_NE(out.find("1.500000"), std::string::npos);
}

TEST(EventTrace, ChromeTracingEscapesJson) {
  EventTrace trace;
  TraceEvent e = event(1.0, TraceEventType::kTaskFinished);
  e.detail = "say \"hi\"\\";
  e.duration = 0.5;
  trace.record(e);
  std::ostringstream oss;
  trace.write_chrome_tracing(oss);
  std::string out = oss.str();
  EXPECT_NE(out.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
}

TEST(EventTrace, EndToEndCoversLifecycle) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.enable_trace = true;
  Simulation sim(cfg);
  Application app = build_workload(workload_preset("PR"), sim.cluster().node_ids(), 1, 1,
                                   hdfs_placement_weights(sim.cluster()));
  sim.run(app);
  const EventTrace* trace = sim.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_GT(trace->count(TraceEventType::kStageSubmitted), 0u);
  EXPECT_GE(trace->count(TraceEventType::kTaskLaunched), app.total_tasks());
  EXPECT_EQ(trace->count(TraceEventType::kTaskFinished), app.total_tasks());
  // Events are time-ordered by construction.
  for (std::size_t i = 1; i < trace->events().size(); ++i) {
    ASSERT_GE(trace->events()[i].time, trace->events()[i - 1].time);
  }
}

TEST(EventTrace, DisabledByDefault) {
  SimulationConfig cfg;
  Simulation sim(cfg);
  EXPECT_EQ(sim.trace(), nullptr);
}

}  // namespace
}  // namespace rupam
