// Unit tests for the fault-tolerance primitives: missed-heartbeat
// liveness (NodeLivenessTracker, ResourceMonitor) and SchedulerBase's
// failure-count blacklist with timed un-blacklist.
#include <gtest/gtest.h>

#include "cluster/liveness.hpp"
#include "cluster/presets.hpp"
#include "exec/executor.hpp"
#include "sched/rupam/resource_monitor.hpp"
#include "sched/scheduler.hpp"

namespace rupam {
namespace {

TEST(NodeLiveness, TableDrivenDeadThreshold) {
  struct Case {
    double period;
    int missed;
    SimTime last_beat;
    SimTime now;
    bool expect_dead;
  };
  // Dead iff now - last_beat > period * missed (strictly: the Nth beat may
  // still be in flight at exactly the deadline).
  const Case cases[] = {
      {1.0, 3, 0.0, 3.0, false},   // exactly at the deadline: alive
      {1.0, 3, 0.0, 3.01, true},   // just past: dead
      {1.0, 3, 5.0, 7.9, false},   // recent beat keeps it alive
      {1.0, 1, 0.0, 1.5, true},    // aggressive single-miss config
      {2.0, 3, 0.0, 5.9, false},   // longer period scales the window
      {2.0, 3, 0.0, 6.1, true},
      {0.5, 4, 10.0, 11.9, false},
      {0.5, 4, 10.0, 12.1, true},
  };
  for (const Case& c : cases) {
    NodeLivenessTracker tracker;
    tracker.configure({c.period, c.missed});
    tracker.heartbeat(0, c.last_beat);
    auto newly_dead = tracker.sweep(c.now);
    EXPECT_EQ(tracker.dead(0), c.expect_dead)
        << "period=" << c.period << " missed=" << c.missed << " last=" << c.last_beat
        << " now=" << c.now;
    EXPECT_EQ(newly_dead.size(), c.expect_dead ? 1u : 0u);
  }
}

TEST(NodeLiveness, SweepReportsEachDeathOnceInNodeOrder) {
  NodeLivenessTracker tracker;
  tracker.configure({1.0, 3});
  tracker.heartbeat(2, 0.0);
  tracker.heartbeat(0, 0.0);
  tracker.heartbeat(1, 50.0);
  EXPECT_EQ(tracker.sweep(10.0), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(tracker.sweep(11.0), std::vector<NodeId>{});  // already reported
  EXPECT_TRUE(tracker.dead(0));
  EXPECT_FALSE(tracker.dead(1));
  EXPECT_EQ(tracker.tracked(), 3u);
}

TEST(NodeLiveness, HeartbeatRevivesDeadNode) {
  NodeLivenessTracker tracker;
  tracker.configure({1.0, 3});
  tracker.heartbeat(0, 0.0);
  tracker.sweep(10.0);
  ASSERT_TRUE(tracker.dead(0));
  EXPECT_TRUE(tracker.heartbeat(0, 10.5));  // revive is reported
  EXPECT_FALSE(tracker.dead(0));
  EXPECT_FALSE(tracker.heartbeat(0, 11.0));  // steady-state beat is not
  EXPECT_EQ(tracker.sweep(11.5), std::vector<NodeId>{});
}

TEST(NodeLiveness, UntrackedNodeIsNotDead) {
  NodeLivenessTracker tracker;
  tracker.configure({1.0, 3});
  EXPECT_FALSE(tracker.dead(7));
  EXPECT_EQ(tracker.sweep(100.0), std::vector<NodeId>{});
}

TEST(NodeLiveness, RejectsBadConfig) {
  NodeLivenessTracker tracker;
  EXPECT_THROW(tracker.configure({0.0, 3}), std::invalid_argument);
  EXPECT_THROW(tracker.configure({1.0, 0}), std::invalid_argument);
}

NodeMetrics node_metrics(NodeId id, double perf = 1.0) {
  NodeMetrics m;
  m.node = id;
  m.cpu_perf = perf;
  m.cores = 8;
  m.memory = 16.0 * kGiB;
  m.free_memory = 8.0 * kGiB;
  m.net_bandwidth = gbit_per_s(1.0);
  return m;
}

TEST(ResourceMonitorLiveness, DeadNodesLeaveEveryQueue) {
  ResourceMonitor rm;
  rm.configure_liveness({1.0, 3});
  rm.record(node_metrics(0), /*now=*/0.0);
  rm.record(node_metrics(1), /*now=*/0.0);
  rm.record(node_metrics(1), /*now=*/9.0);  // node 1 keeps beating
  auto newly_dead = rm.sweep_dead(10.0);
  EXPECT_EQ(newly_dead, std::vector<NodeId>{0});
  EXPECT_TRUE(rm.dead(0));
  EXPECT_FALSE(rm.dead(1));
  for (auto kind : {ResourceKind::kCpu, ResourceKind::kMemory, ResourceKind::kDisk,
                    ResourceKind::kNetwork}) {
    EXPECT_EQ(rm.ranked(kind, nullptr), std::vector<NodeId>{1}) << to_string(kind);
  }
}

TEST(ResourceMonitorLiveness, SnapshotRefreshDoesNotRevive) {
  ResourceMonitor rm;
  rm.configure_liveness({1.0, 3});
  rm.record(node_metrics(0), /*now=*/0.0);
  rm.sweep_dead(10.0);
  ASSERT_TRUE(rm.dead(0));
  // The dispatch-round refresh path (no timestamp) must not count as a
  // heartbeat — only real beats revive.
  rm.record(node_metrics(0));
  EXPECT_TRUE(rm.dead(0));
  EXPECT_EQ(rm.ranked(ResourceKind::kCpu, nullptr), std::vector<NodeId>{});
  rm.record(node_metrics(0), /*now=*/10.5);
  EXPECT_FALSE(rm.dead(0));
  EXPECT_EQ(rm.ranked(ResourceKind::kCpu, nullptr), std::vector<NodeId>{0});
}

TEST(ResourceMonitorLiveness, DisabledByDefault) {
  ResourceMonitor rm;
  rm.record(node_metrics(0), /*now=*/0.0);
  EXPECT_EQ(rm.sweep_dead(1000.0), std::vector<NodeId>{});
  EXPECT_FALSE(rm.dead(0));
}

// Minimal concrete scheduler exposing the protected blacklist machinery.
class TestScheduler : public SchedulerBase {
 public:
  using SchedulerBase::note_node_failure;
  using SchedulerBase::SchedulerBase;
  std::string name() const override { return "test"; }

 protected:
  void try_dispatch() override {}
};

struct BlacklistHarness {
  Simulator sim;
  Cluster cluster{sim, gbit_per_s(1.0)};
  std::vector<std::unique_ptr<Executor>> executors;
  std::unique_ptr<TestScheduler> sched;

  explicit BlacklistHarness(std::size_t nodes = 3) {
    Rng rng(1);
    for (std::size_t i = 0; i < nodes; ++i) cluster.add_node(thor_spec());
    SchedulerEnv env;
    env.sim = &sim;
    env.cluster = &cluster;
    for (NodeId id : cluster.node_ids()) {
      executors.push_back(
          std::make_unique<Executor>(sim, cluster.node(id), id, ExecutorConfig{}, rng.split()));
      env.executors.push_back(executors.back().get());
    }
    sched = std::make_unique<TestScheduler>(env);
  }
};

FaultToleranceConfig ft_config() {
  FaultToleranceConfig ft;
  ft.enabled = true;
  ft.blacklist_max_failures = 3;
  ft.failure_window = 60.0;
  ft.blacklist_duration = 120.0;
  return ft;
}

TEST(Blacklist, TableDrivenFailureThreshold) {
  struct Case {
    int failures;
    bool expect_blacklisted;
  };
  for (const auto& c : {Case{1, false}, Case{2, false}, Case{3, true}, Case{5, true}}) {
    BlacklistHarness h;
    h.sched->configure_fault_tolerance(ft_config());
    for (int i = 0; i < c.failures; ++i) h.sched->note_node_failure(1);
    EXPECT_EQ(h.sched->node_blacklisted(1), c.expect_blacklisted)
        << c.failures << " failures";
    EXPECT_EQ(h.sched->node_usable(1), !c.expect_blacklisted);
    EXPECT_TRUE(h.sched->node_usable(0));  // other nodes untouched
    EXPECT_EQ(h.sched->blacklist_events(), c.expect_blacklisted ? 1u : 0u);
  }
}

TEST(Blacklist, DisabledFaultToleranceIgnoresFailures) {
  BlacklistHarness h;
  for (int i = 0; i < 10; ++i) h.sched->note_node_failure(1);
  EXPECT_TRUE(h.sched->node_usable(1));
  EXPECT_EQ(h.sched->blacklist_events(), 0u);
}

TEST(Blacklist, FailuresOutsideWindowAreForgotten) {
  BlacklistHarness h;
  h.sched->configure_fault_tolerance(ft_config());
  h.sched->note_node_failure(1);
  h.sched->note_node_failure(1);
  // Advance past the 60 s window; the two old failures must not count.
  h.sim.schedule_at(100.0, [] {});
  while (h.sim.step()) {
  }
  h.sched->note_node_failure(1);
  h.sched->note_node_failure(1);
  EXPECT_FALSE(h.sched->node_blacklisted(1));
  h.sched->note_node_failure(1);  // third within the fresh window
  EXPECT_TRUE(h.sched->node_blacklisted(1));
}

TEST(Blacklist, TimedUnblacklistRestoresNode) {
  BlacklistHarness h;
  h.sched->configure_fault_tolerance(ft_config());
  for (int i = 0; i < 3; ++i) h.sched->note_node_failure(2);
  ASSERT_TRUE(h.sched->node_blacklisted(2));
  // node_usable flips as soon as the expiry time passes (the periodic
  // sweep also erases the entry, but usability must not wait for it).
  h.sim.schedule_at(120.5, [] {});
  while (h.sim.step()) {
  }
  EXPECT_FALSE(h.sched->node_blacklisted(2));
  EXPECT_TRUE(h.sched->node_usable(2));
}

TEST(Blacklist, NeverBlacklistsLastUsableNode) {
  BlacklistHarness h(2);
  h.sched->configure_fault_tolerance(ft_config());
  for (int i = 0; i < 3; ++i) h.sched->note_node_failure(0);
  ASSERT_TRUE(h.sched->node_blacklisted(0));
  // Node 1 is now the only usable node: it must survive any failure count.
  for (int i = 0; i < 10; ++i) h.sched->note_node_failure(1);
  EXPECT_FALSE(h.sched->node_blacklisted(1));
  EXPECT_TRUE(h.sched->node_usable(1));
}

}  // namespace
}  // namespace rupam
