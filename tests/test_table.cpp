#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace rupam {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"Name", "Value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::string out = t.to_string();
  EXPECT_NE(out.find("| Name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(out.find("|---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(CsvWriter, PlainRow) {
  std::ostringstream oss;
  CsvWriter csv(oss);
  csv.write_row({"a", "b", "c"});
  EXPECT_EQ(oss.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream oss;
  CsvWriter csv(oss);
  csv.write_row({"has,comma", "has\"quote", "plain"});
  EXPECT_EQ(oss.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Format, NumberTrimsZeros) {
  EXPECT_EQ(format_number(2.50), "2.5");
  EXPECT_EQ(format_number(37.70), "37.7");
  EXPECT_EQ(format_number(1200.0), "1200");
  EXPECT_EQ(format_number(0.0), "0");
}

}  // namespace
}  // namespace rupam
