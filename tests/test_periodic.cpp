#include <gtest/gtest.h>

#include <vector>

#include "cluster/heartbeat.hpp"
#include "cluster/presets.hpp"
#include "simcore/periodic.hpp"

namespace rupam {
namespace {

TEST(PeriodicTaskSet, FiresMembersAtPhaseEveryPeriod) {
  Simulator sim;
  PeriodicTaskSet timers(sim, 1.0);
  std::vector<std::pair<int, SimTime>> fired;
  timers.add(0.25, [&] { fired.emplace_back(0, sim.now()); });
  timers.add(0.75, [&] { fired.emplace_back(1, sim.now()); });
  timers.start();
  sim.run(2.0);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0].first, 0);
  EXPECT_DOUBLE_EQ(fired[0].second, 0.25);
  EXPECT_EQ(fired[1].first, 1);
  EXPECT_DOUBLE_EQ(fired[1].second, 0.75);
  EXPECT_EQ(fired[2].first, 0);
  EXPECT_DOUBLE_EQ(fired[2].second, 1.25);
  EXPECT_EQ(fired[3].first, 1);
  EXPECT_DOUBLE_EQ(fired[3].second, 1.75);
}

TEST(PeriodicTaskSet, TimesMatchSelfReschedulingTimers) {
  // The coalesced facility must reproduce the exact firing times of the
  // pattern it replaces: first firing at now + phase (schedule_after(phase)),
  // then prev + period from inside the callback.
  Simulator a;
  std::vector<SimTime> expect;
  struct Rearm {
    Simulator& sim;
    std::vector<SimTime>& out;
    void fire() {
      out.push_back(sim.now());
      sim.schedule_after(0.1, [this] { fire(); });
    }
  } rearm{a, expect};
  a.schedule_after(0.037, [&rearm] { rearm.fire(); });
  a.run(1.0);

  Simulator b;
  std::vector<SimTime> got;
  PeriodicTaskSet timers(b, 0.1);
  timers.add(0.037, [&] { got.push_back(b.now()); });
  timers.start();
  b.run(1.0);

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "firing " << i;  // bit-identical, not just close
  }
}

TEST(PeriodicTaskSet, ManyMembersOccupyOneQueueEntry) {
  Simulator sim;
  PeriodicTaskSet timers(sim, 1.0);
  std::size_t beats = 0;
  for (int i = 0; i < 256; ++i) {
    timers.add((static_cast<double>(i) + 0.5) / 256.0, [&] { ++beats; });
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  timers.start();
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(timers.queue_entries(), 1u);
  sim.run(3.0);
  EXPECT_EQ(beats, 3u * 256u);
  EXPECT_EQ(sim.pending_events(), 1u);  // still just the one armed event
  EXPECT_LE(sim.peak_pending_events(), 2u);
  timers.stop();
  EXPECT_EQ(timers.queue_entries(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(PeriodicTaskSet, StopHaltsAndRestartRebases) {
  Simulator sim;
  PeriodicTaskSet timers(sim, 1.0);
  std::vector<SimTime> fired;
  timers.add(0.5, [&] { fired.push_back(sim.now()); });
  timers.start();
  sim.run(1.0);
  ASSERT_EQ(fired.size(), 1u);
  timers.stop();
  sim.run(5.0);
  EXPECT_EQ(fired.size(), 1u);  // silent while stopped
  timers.start();               // re-bases the phase on now = 5.0
  sim.run(6.0);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[1], 5.5);
}

TEST(PeriodicTaskSet, SamePhaseMembersFireInInsertionOrder) {
  Simulator sim;
  PeriodicTaskSet timers(sim, 1.0);
  std::vector<int> order;
  timers.add(0.5, [&] { order.push_back(0); });
  timers.add(0.25, [&] { order.push_back(1); });
  timers.add(0.5, [&] { order.push_back(2); });
  timers.start();
  sim.run(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(PeriodicTaskSet, RejectsBadArguments) {
  Simulator sim;
  EXPECT_THROW(PeriodicTaskSet(sim, 0.0), std::invalid_argument);
  PeriodicTaskSet timers(sim, 1.0);
  EXPECT_THROW(timers.add(-0.1, [] {}), std::invalid_argument);
  EXPECT_THROW(timers.add(1.0, [] {}), std::invalid_argument);
  timers.add(0.0, [] {});
  timers.start();
  EXPECT_THROW(timers.add(0.5, [] {}), std::logic_error);
}

TEST(Heartbeat, FleetTimersOccupyOneQueueEntry) {
  // The acceptance property of the periodic wheel: an N-node fleet's
  // heartbeat timers must cost O(1) queue residency, not O(N).
  Simulator sim;
  Cluster cluster(sim);
  build_hydra(cluster);  // 12 nodes
  HeartbeatService hb(cluster, 1.0);
  int beats = 0;
  hb.subscribe([&](const NodeMetrics&) { ++beats; });
  std::size_t before = sim.pending_events();
  hb.start();
  EXPECT_EQ(sim.pending_events(), before + 1);  // +1, not +cluster.size()
  EXPECT_EQ(hb.queue_entries(), 1u);
  sim.run(1.99);  // node 0 beats at phase 0, so stop short of t = 2.0
  EXPECT_EQ(beats, 2 * static_cast<int>(cluster.size()));  // every node still beats
  EXPECT_EQ(hb.queue_entries(), 1u);
  hb.stop();
  EXPECT_EQ(hb.queue_entries(), 0u);
}

}  // namespace
}  // namespace rupam
