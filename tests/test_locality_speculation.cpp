#include <gtest/gtest.h>

#include "sched/offers.hpp"
#include "sched/speculation.hpp"
#include "tasks/locality.hpp"

namespace rupam {
namespace {

TEST(Locality, ProcessLocalRequiresCacheHit) {
  TaskSpec t;
  t.input_cache_key = "blk";
  t.preferred_nodes = {1};
  auto cache = [](NodeId n, const std::string&) { return n == 2; };
  EXPECT_EQ(locality_of(t, 2, cache), Locality::kProcessLocal);
  EXPECT_EQ(locality_of(t, 1, cache), Locality::kNodeLocal);
  EXPECT_EQ(locality_of(t, 3, cache), Locality::kAny);
}

TEST(Locality, NoPreferencesMeansAny) {
  TaskSpec t;
  EXPECT_EQ(locality_of(t, 0, nullptr), Locality::kAny);
}

TEST(Locality, OrderingHelper) {
  EXPECT_TRUE(locality_at_least(Locality::kProcessLocal, Locality::kAny));
  EXPECT_TRUE(locality_at_least(Locality::kNodeLocal, Locality::kNodeLocal));
  EXPECT_FALSE(locality_at_least(Locality::kAny, Locality::kNodeLocal));
}

TEST(ValidLevels, OnlyAchievableLevelsListed) {
  TaskSet set;
  set.tasks.push_back(TaskSpec{});
  auto levels = valid_locality_levels(set);
  EXPECT_EQ(levels, (std::vector<Locality>{Locality::kAny}));

  set.tasks[0].preferred_nodes = {0};
  levels = valid_locality_levels(set);
  EXPECT_EQ(levels, (std::vector<Locality>{Locality::kNodeLocal, Locality::kAny}));

  set.tasks[0].input_cache_key = "blk";
  levels = valid_locality_levels(set);
  EXPECT_EQ(levels, (std::vector<Locality>{Locality::kProcessLocal, Locality::kNodeLocal,
                                           Locality::kAny}));
}

TEST(Speculation, NoThresholdBeforeQuantile) {
  SpeculationRule rule;  // 0.75 quantile
  std::vector<double> finished(74, 10.0);
  EXPECT_LT(straggler_threshold(finished, 100, rule), 0.0);
  finished.push_back(10.0);
  EXPECT_GT(straggler_threshold(finished, 100, rule), 0.0);
}

TEST(Speculation, ThresholdIsMultipleOfMedian) {
  SpeculationRule rule;
  std::vector<double> finished{8.0, 10.0, 12.0};
  EXPECT_NEAR(straggler_threshold(finished, 4, rule), 15.0, 1e-12);
}

TEST(Speculation, MinThresholdFloor) {
  SpeculationRule rule;
  std::vector<double> finished{0.001, 0.001, 0.001};
  EXPECT_DOUBLE_EQ(straggler_threshold(finished, 3, rule), rule.min_threshold);
}

TEST(Speculation, EmptyInputs) {
  SpeculationRule rule;
  EXPECT_LT(straggler_threshold({}, 10, rule), 0.0);
  EXPECT_LT(straggler_threshold({1.0}, 0, rule), 0.0);
}

TEST(Speculation, IsStraggler) {
  EXPECT_TRUE(is_straggler(20.0, 15.0));
  EXPECT_FALSE(is_straggler(10.0, 15.0));
  EXPECT_FALSE(is_straggler(100.0, -1.0));  // no threshold yet
}

// Property sweep: threshold scales linearly with the finished runtimes.
class SpeculationScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(SpeculationScaleTest, ThresholdScalesWithRuntimes) {
  double scale = GetParam();
  SpeculationRule rule;
  std::vector<double> base{10.0, 12.0, 14.0, 16.0};
  std::vector<double> scaled;
  for (double v : base) scaled.push_back(v * scale);
  EXPECT_NEAR(straggler_threshold(scaled, 4, rule),
              scale * straggler_threshold(base, 4, rule), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, SpeculationScaleTest, ::testing::Values(1.0, 2.0, 5.0, 10.0));

}  // namespace
}  // namespace rupam
