#include <gtest/gtest.h>

#include "workloads/presets.hpp"
#include "workloads/skew.hpp"

namespace rupam {
namespace {

std::vector<NodeId> twelve_nodes() {
  std::vector<NodeId> nodes(12);
  for (int i = 0; i < 12; ++i) nodes[static_cast<std::size_t>(i)] = i;
  return nodes;
}

TEST(Presets, Table3HasSevenWorkloads) {
  const auto& presets = table3_workloads();
  ASSERT_EQ(presets.size(), 7u);
  EXPECT_EQ(presets[0].name, "LR");
  EXPECT_DOUBLE_EQ(presets[0].input_gb, 6.0);
  EXPECT_DOUBLE_EQ(workload_preset("TeraSort").input_gb, 40.0);
  EXPECT_DOUBLE_EQ(workload_preset("SQL").input_gb, 35.0);
  EXPECT_DOUBLE_EQ(workload_preset("PR").input_gb, 0.95);
  EXPECT_DOUBLE_EQ(workload_preset("TC").input_gb, 0.95);
  EXPECT_DOUBLE_EQ(workload_preset("GM").input_gb, 0.96);
  EXPECT_DOUBLE_EQ(workload_preset("KMeans").input_gb, 3.7);
}

TEST(Presets, UnknownNameThrows) {
  EXPECT_THROW(workload_preset("NotAWorkload"), std::invalid_argument);
}

class AllWorkloadsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AllWorkloadsTest, GeneratesValidApplication) {
  const WorkloadPreset& preset = workload_preset(GetParam());
  Application app = build_workload(preset, twelve_nodes(), 42);
  app.validate();  // throws on inconsistency
  EXPECT_GT(app.total_tasks(), 0u);
  EXPECT_FALSE(app.jobs.empty());
}

TEST_P(AllWorkloadsTest, DeterministicGivenSeed) {
  const WorkloadPreset& preset = workload_preset(GetParam());
  Application a = build_workload(preset, twelve_nodes(), 42);
  Application b = build_workload(preset, twelve_nodes(), 42);
  ASSERT_EQ(a.total_tasks(), b.total_tasks());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    for (std::size_t s = 0; s < a.jobs[j].stages.size(); ++s) {
      const auto& ta = a.jobs[j].stages[s].tasks.tasks;
      const auto& tb = b.jobs[j].stages[s].tasks.tasks;
      for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_DOUBLE_EQ(ta[i].compute, tb[i].compute);
        EXPECT_DOUBLE_EQ(ta[i].peak_memory, tb[i].peak_memory);
        EXPECT_EQ(ta[i].preferred_nodes, tb[i].preferred_nodes);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Table3, AllWorkloadsTest,
                         ::testing::Values("LR", "TeraSort", "SQL", "PR", "TC", "GM",
                                           "KMeans"));

TEST(Workloads, IterativeStageNamesStableAcrossIterations) {
  Application app = build_workload(workload_preset("LR"), twelve_nodes(), 1, 4);
  // All gradient stages share one name — the DB_task_char key space.
  int gradient_stages = 0;
  for (const auto& job : app.jobs) {
    for (const auto& stage : job.stages) {
      if (stage.name == "lr-gradient") ++gradient_stages;
    }
  }
  EXPECT_EQ(gradient_stages, 3);  // iterations 1..3 (load pass is separate)
}

TEST(Workloads, SkewStableAcrossIterations) {
  // The same partition must have the same demand in every iteration — hot
  // data stays hot; this is what makes per-task history predictive.
  Application app = build_workload(workload_preset("LR"), twelve_nodes(), 1, 4);
  std::vector<const Stage*> grads;
  for (const auto& job : app.jobs) {
    for (const auto& stage : job.stages) {
      if (stage.name == "lr-gradient") grads.push_back(&stage);
    }
  }
  ASSERT_GE(grads.size(), 2u);
  for (std::size_t p = 0; p < grads[0]->tasks.size(); ++p) {
    EXPECT_DOUBLE_EQ(grads[0]->tasks.tasks[p].compute, grads[1]->tasks.tasks[p].compute);
  }
}

TEST(Workloads, IterationOverrideChangesJobCount) {
  Application three = build_workload(workload_preset("LR"), twelve_nodes(), 1, 3);
  Application eight = build_workload(workload_preset("LR"), twelve_nodes(), 1, 8);
  EXPECT_LT(three.jobs.size(), eight.jobs.size());
}

TEST(Workloads, GramianIsSingleJobGpu) {
  Application app = build_workload(workload_preset("GM"), twelve_nodes(), 1);
  EXPECT_EQ(app.jobs.size(), 1u);
  EXPECT_TRUE(app.jobs[0].stages[0].tasks.tasks[0].gpu_accelerable);
}

TEST(Workloads, PageRankIsMemoryHeavy) {
  Application app = build_workload(workload_preset("PR"), twelve_nodes(), 1);
  bool found_contrib = false;
  for (const auto& job : app.jobs) {
    for (const auto& stage : job.stages) {
      if (stage.name != "pr-contrib") continue;
      found_contrib = true;
      for (const auto& t : stage.tasks.tasks) EXPECT_GT(t.total_memory(), 1.0 * kGiB);
    }
  }
  EXPECT_TRUE(found_contrib);
}

TEST(Workloads, TerasortMovesItsInputSize) {
  Application app = build_workload(workload_preset("TeraSort"), twelve_nodes(), 1);
  Bytes input = 0.0;
  for (const auto& job : app.jobs) {
    for (const auto& stage : job.stages) {
      for (const auto& t : stage.tasks.tasks) input += t.input_bytes;
    }
  }
  EXPECT_NEAR(to_gib(input), 40.0, 4.0);  // within skew noise
}

TEST(Workloads, MatMulHasThreeStages) {
  WorkloadParams p;
  p.input_gb = 0.25;
  p.seed = 1;
  Application app = make_matmul(twelve_nodes(), p);
  ASSERT_EQ(app.jobs.size(), 1u);
  EXPECT_EQ(app.jobs[0].stages.size(), 3u);
}

TEST(Skew, FactorMeanNearOne) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += skew_factor(rng, 0.3, 0.0);
  EXPECT_NEAR(sum / n, 1.0, 0.03);
}

TEST(Skew, HeavyTailProducesOutliers) {
  Rng rng(5);
  int outliers = 0;
  for (int i = 0; i < 10000; ++i) outliers += skew_factor(rng, 0.1, 0.1) > 3.0;
  EXPECT_NEAR(outliers, 1000, 150);
}

TEST(Skew, ZeroCvIsDeterministicOne) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(skew_factor(rng, 0.0, 0.0), 1.0);
}

TEST(Skew, ZipfSizesSumToTotal) {
  Rng rng(5);
  auto sizes = zipf_partition_sizes(rng, 64, 1000.0, 1.1);
  double sum = 0.0;
  for (double s : sizes) sum += s;
  EXPECT_NEAR(sum, 1000.0, 1e-6);
}

TEST(WorkloadBuilder, RejectsBadInput) {
  EXPECT_THROW(WorkloadBuilder({}, 1), std::invalid_argument);
  EXPECT_THROW(WorkloadBuilder({0, 1}, 1, {1.0}), std::invalid_argument);
  WorkloadBuilder builder({0, 1}, 1);
  Application app;
  JobProfile bad;
  bad.name = "bad";
  StageProfile sp;
  sp.name = "s";
  sp.num_tasks = 0;
  bad.stages.push_back(sp);
  EXPECT_THROW(builder.add_job(app, bad), std::invalid_argument);
}

TEST(WorkloadBuilder, ParentIndicesMustPrecede) {
  WorkloadBuilder builder({0, 1}, 1);
  Application app;
  JobProfile bad;
  bad.name = "bad";
  StageProfile sp;
  sp.name = "s";
  sp.num_tasks = 1;
  sp.parents = {0};  // stage 0 cannot be its own parent
  bad.stages.push_back(sp);
  EXPECT_THROW(builder.add_job(app, bad), std::invalid_argument);
}

}  // namespace
}  // namespace rupam
