// Algorithm 2 selection logic (paper) — pure-logic tests.
#include <gtest/gtest.h>

#include <set>

#include "common/units.hpp"
#include "sched/rupam/dispatcher.hpp"

namespace rupam {
namespace {

DispatchTaskView view(std::size_t index, Locality loc, Bytes mem = 0.0,
                      NodeId opt = kInvalidNode, std::size_t history = 0,
                      double cost = 0.0) {
  DispatchTaskView v;
  v.index = index;
  v.locality = loc;
  v.peak_memory = mem;
  v.opt_executor = opt;
  v.history_size = history;
  v.expected_cost = cost;
  return v;
}

TEST(Algorithm2, EmptyQueueSelectsNothing) {
  EXPECT_FALSE(algorithm2_select({}, 0, 1e12).has_value());
}

TEST(Algorithm2, PrefersBestLocality) {
  std::vector<DispatchTaskView> tasks{
      view(0, Locality::kAny),
      view(1, Locality::kNodeLocal),
      view(2, Locality::kAny),
  };
  EXPECT_EQ(algorithm2_select(tasks, 0, 1e12).value(), 1u);
}

TEST(Algorithm2, ProcessLocalShortCircuits) {
  std::vector<DispatchTaskView> tasks{
      view(0, Locality::kNodeLocal),
      view(1, Locality::kProcessLocal),
      view(2, Locality::kProcessLocal),
  };
  EXPECT_EQ(algorithm2_select(tasks, 0, 1e12).value(), 1u);
}

TEST(Algorithm2, MemoryGuardSkipsOversizedTasks) {
  std::vector<DispatchTaskView> tasks{
      view(0, Locality::kProcessLocal, 10.0 * kGiB),
      view(1, Locality::kAny, 1.0 * kGiB),
  };
  EXPECT_EQ(algorithm2_select(tasks, 0, 2.0 * kGiB).value(), 1u);
}

TEST(Algorithm2, MemoryGuardHeadroom) {
  std::vector<DispatchTaskView> tasks{view(0, Locality::kAny, 1.5 * kGiB)};
  DispatcherPolicy policy;
  policy.memory_headroom = 1.0 * kGiB;
  EXPECT_FALSE(algorithm2_select(tasks, 0, 2.0 * kGiB, policy).has_value());
  policy.memory_headroom = 0.0;
  EXPECT_TRUE(algorithm2_select(tasks, 0, 2.0 * kGiB, policy).has_value());
}

TEST(Algorithm2, FullyCharacterizedLockBypassesMemoryGuard) {
  // The paper's exception: history covers all 5 resources and this node is
  // the best observed executor.
  std::vector<DispatchTaskView> tasks{
      view(0, Locality::kAny, 10.0 * kGiB, /*opt=*/3, /*history=*/5),
  };
  EXPECT_EQ(algorithm2_select(tasks, 3, 1.0 * kGiB).value(), 0u);
  // On a different node the guard still applies.
  EXPECT_FALSE(algorithm2_select(tasks, 4, 1.0 * kGiB).has_value());
}

TEST(Algorithm2, PartialHistoryDoesNotBypassGuard) {
  std::vector<DispatchTaskView> tasks{
      view(0, Locality::kAny, 10.0 * kGiB, /*opt=*/3, /*history=*/3),
  };
  EXPECT_FALSE(algorithm2_select(tasks, 3, 1.0 * kGiB).has_value());
}

TEST(Algorithm2, LockedTaskWinsOverLocality) {
  std::vector<DispatchTaskView> tasks{
      view(0, Locality::kProcessLocal),
      view(1, Locality::kAny, 0.0, /*opt=*/7, /*history=*/1),
  };
  EXPECT_EQ(algorithm2_select(tasks, 7, 1e12).value(), 1u);
}

TEST(Algorithm2, LptAmongLockedTasks) {
  std::vector<DispatchTaskView> tasks{
      view(0, Locality::kAny, 0.0, 7, 1, /*cost=*/5.0),
      view(1, Locality::kAny, 0.0, 7, 1, /*cost=*/50.0),
      view(2, Locality::kAny, 0.0, 7, 1, /*cost=*/20.0),
  };
  EXPECT_EQ(algorithm2_select(tasks, 7, 1e12).value(), 1u);
}

TEST(Algorithm2, TasksLockedElsewhereAreLastResort) {
  std::vector<DispatchTaskView> tasks{
      view(0, Locality::kProcessLocal, 0.0, /*opt=*/9, 1),  // locked to node 9
      view(1, Locality::kAny),                              // free
  };
  // On node 2 the free ANY task beats the locked-elsewhere PROCESS task.
  EXPECT_EQ(algorithm2_select(tasks, 2, 1e12).value(), 1u);
  // With only locked-elsewhere tasks left, they still run (no starvation).
  std::vector<DispatchTaskView> only_locked{view(0, Locality::kAny, 0.0, 9, 1)};
  EXPECT_EQ(algorithm2_select(only_locked, 2, 1e12).value(), 0u);
}

TEST(Algorithm2, LockDisabledByPolicy) {
  std::vector<DispatchTaskView> tasks{
      view(0, Locality::kProcessLocal),
      view(1, Locality::kAny, 0.0, 7, 1),
  };
  DispatcherPolicy policy;
  policy.opt_executor_lock = false;
  EXPECT_EQ(algorithm2_select(tasks, 7, 1e12, policy).value(), 0u);
}

TEST(Algorithm2, GuardDisabledByPolicy) {
  std::vector<DispatchTaskView> tasks{view(0, Locality::kAny, 100.0 * kGiB)};
  DispatcherPolicy policy;
  policy.memory_guard = false;
  EXPECT_TRUE(algorithm2_select(tasks, 0, 1.0, policy).has_value());
}

TEST(RoundRobin, CyclesAllKinds) {
  ResourceRoundRobin rr;
  std::set<ResourceKind> seen;
  for (int i = 0; i < kNumResourceKinds; ++i) seen.insert(rr.next());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumResourceKinds));
  EXPECT_EQ(rr.next(), ResourceKind::kCpu);  // wrapped around
}

}  // namespace
}  // namespace rupam
