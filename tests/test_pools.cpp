// Unit tests for the FAIR cross-job scheduling comparator (Spark's
// FairSchedulingAlgorithm): minShare-starved pools first, then by
// minShare ratio, then by runningTasks/weight, name as the tie-break.
#include <gtest/gtest.h>

#include "sched/pool.hpp"

namespace rupam {
namespace {

PoolSnapshot snap(const std::string& name, int running, double weight = 1.0,
                  int min_share = 0) {
  PoolSnapshot s;
  s.name = name;
  s.running = running;
  s.weight = weight;
  s.min_share = min_share;
  return s;
}

TEST(FairLess, FewerRunningTasksFirst) {
  EXPECT_TRUE(fair_less(snap("a", 1), snap("b", 5)));
  EXPECT_FALSE(fair_less(snap("a", 5), snap("b", 1)));
}

TEST(FairLess, WeightScalesShare) {
  // 6 running at weight 3 (share 2) beats 4 running at weight 1 (share 4).
  EXPECT_TRUE(fair_less(snap("heavy", 6, 3.0), snap("light", 4, 1.0)));
  EXPECT_FALSE(fair_less(snap("light", 4, 1.0), snap("heavy", 6, 3.0)));
}

TEST(FairLess, MinShareStarvedPoolWinsRegardlessOfWeight) {
  // "b" is below its minShare; "a" is not — "b" schedules first even with
  // far fewer running tasks in "a".
  EXPECT_TRUE(fair_less(snap("b", 2, 1.0, 4), snap("a", 0, 100.0)));
  EXPECT_FALSE(fair_less(snap("a", 0, 100.0), snap("b", 2, 1.0, 4)));
}

TEST(FairLess, BothStarvedComparedByMinShareRatio) {
  // 1/10 running/minShare beats 3/4.
  EXPECT_TRUE(fair_less(snap("x", 1, 1.0, 10), snap("y", 3, 1.0, 4)));
  EXPECT_FALSE(fair_less(snap("y", 3, 1.0, 4), snap("x", 1, 1.0, 10)));
}

TEST(FairLess, NameBreaksExactTies) {
  EXPECT_TRUE(fair_less(snap("a", 2), snap("b", 2)));
  EXPECT_FALSE(fair_less(snap("b", 2), snap("a", 2)));
}

TEST(FairOrder, RanksPoolsDeterministically) {
  std::vector<PoolSnapshot> pools = {
      snap("busy", 8),
      snap("starved", 0, 1.0, 2),  // below minShare: always first
      snap("idle", 0),
      snap("weighted", 6, 4.0),  // share 1.5
  };
  std::vector<std::string> order = fair_order(pools);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "starved");
  EXPECT_EQ(order[1], "idle");      // share 0
  EXPECT_EQ(order[2], "weighted");  // share 1.5
  EXPECT_EQ(order[3], "busy");      // share 8
}

TEST(PoolConfig, SpecFallsBackToDefaults) {
  PoolConfig config;
  config.pools["vip"] = PoolSpec{/*weight=*/3.0, /*min_share=*/4};
  EXPECT_DOUBLE_EQ(config.spec("vip").weight, 3.0);
  EXPECT_EQ(config.spec("vip").min_share, 4);
  EXPECT_DOUBLE_EQ(config.spec("unknown").weight, 1.0);
  EXPECT_EQ(config.spec("unknown").min_share, 0);
}

}  // namespace
}  // namespace rupam
