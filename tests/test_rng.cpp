#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace rupam {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u32() == b.next_u32();
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(3.0, 9.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ClampedNormalStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    double v = rng.clamped_normal(0.0, 10.0, -1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(9);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // The child stream must not mirror the parent.
  Rng b(42);
  b.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += child.next_u32() == a.next_u32();
  EXPECT_LT(same, 5);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, SamplesInRangeAndSkewed) {
  double exponent = GetParam();
  ZipfDistribution zipf(100, exponent);
  Rng rng(17);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    std::size_t v = zipf(rng);
    ASSERT_LT(v, 100u);
    counts[v]++;
  }
  // Rank 0 must be the most frequent for any positive exponent.
  EXPECT_EQ(std::distance(counts.begin(), std::max_element(counts.begin(), counts.end())), 0);
  // Heavier exponents concentrate more mass at the head.
  if (exponent >= 1.0) EXPECT_GT(counts[0], counts[50] * 5);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfTest, ::testing::Values(0.5, 0.8, 1.0, 1.5, 2.0));

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument); }

}  // namespace
}  // namespace rupam
