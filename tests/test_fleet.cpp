// FleetSpec generation, JSON round-trip, and the fleet-scale e2e smoke.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "app/simulation.hpp"
#include "cluster/fleet.hpp"
#include "cluster/presets.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

void expect_same_spec(const NodeSpec& a, const NodeSpec& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.node_class, b.node_class);
  EXPECT_EQ(a.cores, b.cores);
  EXPECT_DOUBLE_EQ(a.cpu_ghz, b.cpu_ghz);
  EXPECT_DOUBLE_EQ(a.cpu_perf, b.cpu_perf);
  EXPECT_DOUBLE_EQ(a.memory, b.memory);
  EXPECT_DOUBLE_EQ(a.net_bandwidth, b.net_bandwidth);
  EXPECT_EQ(a.has_ssd, b.has_ssd);
  EXPECT_DOUBLE_EQ(a.disk_read_bw, b.disk_read_bw);
  EXPECT_DOUBLE_EQ(a.disk_write_bw, b.disk_write_bw);
  EXPECT_DOUBLE_EQ(a.disk_capacity, b.disk_capacity);
  EXPECT_EQ(a.gpus, b.gpus);
  EXPECT_DOUBLE_EQ(a.gpu_speedup, b.gpu_speedup);
}

TEST(Fleet, GenerationIsDeterministic) {
  FleetSpec spec = scaled_hydra_fleet(100, /*seed=*/1);
  std::vector<NodeSpec> a = generate_fleet(spec);
  std::vector<NodeSpec> b = generate_fleet(spec);
  ASSERT_EQ(a.size(), 100u);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_same_spec(a[i], b[i]);
}

TEST(Fleet, SeedChangesJitteredFields) {
  std::vector<NodeSpec> a = generate_fleet(scaled_hydra_fleet(50, 1));
  std::vector<NodeSpec> b = generate_fleet(scaled_hydra_fleet(50, 2));
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].cpu_ghz != b[i].cpu_ghz) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Fleet, HydraSpecMatchesHandBuiltPreset) {
  // generate_fleet(hydra_fleet_spec()) must stay byte-identical to
  // build_hydra — the golden traces depend on it.
  Simulator sim;
  Cluster cluster(sim);
  std::vector<NodeId> ids = build_hydra(cluster);
  std::vector<NodeSpec> generated = generate_fleet(hydra_fleet_spec());
  ASSERT_EQ(generated.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    expect_same_spec(generated[i], cluster.node(ids[i]).spec());
  }
}

TEST(Fleet, ScaledFleetKeepsHydraRatioAndGpus) {
  FleetSpec spec = scaled_hydra_fleet(200, 1);
  EXPECT_EQ(spec.total_nodes(), 200);
  std::vector<NodeSpec> nodes = generate_fleet(spec);
  int thor = 0, hulk = 0, stack = 0, gpus = 0;
  for (const NodeSpec& n : nodes) {
    if (n.node_class == "thor") ++thor;
    if (n.node_class == "hulk") ++hulk;
    if (n.node_class == "stack") ++stack;
    gpus += n.gpus;
  }
  EXPECT_EQ(thor, 100);
  EXPECT_EQ(hulk, 66);
  EXPECT_EQ(stack, 34);
  // Every scaled fleet must keep at least one GPU-bearing node, or the
  // RUPAM GPU queue becomes dead code at scale.
  EXPECT_GT(gpus, 0);
}

TEST(Fleet, AddingAClassDoesNotReshuffleEarlierOnes) {
  FleetSpec spec = scaled_hydra_fleet(60, 7);
  std::vector<NodeSpec> before = generate_fleet(spec);
  NodeClassMix extra;
  extra.name = "extra";
  extra.count = 3;
  extra.base = thor_spec();
  spec.classes.push_back(extra);
  std::vector<NodeSpec> after = generate_fleet(spec);
  ASSERT_EQ(after.size(), before.size() + 3u);
  for (std::size_t i = 0; i < before.size(); ++i) {
    expect_same_spec(before[i], after[i]);
  }
}

TEST(Fleet, JsonRoundTripPreservesGeneratedFleet) {
  FleetSpec spec = scaled_hydra_fleet(100, 3);
  FleetSpec parsed = parse_fleet_json(fleet_to_json(spec));
  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.seed, spec.seed);
  std::vector<NodeSpec> a = generate_fleet(spec);
  std::vector<NodeSpec> b = generate_fleet(parsed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_same_spec(a[i], b[i]);
  // And the serialized form is a fixed point.
  EXPECT_EQ(fleet_to_json(spec), fleet_to_json(parsed));
}

TEST(Fleet, ValidateRejectsBadSpecs) {
  FleetSpec ok = hydra_fleet_spec();
  EXPECT_NO_THROW(ok.validate());

  FleetSpec unnamed = ok;
  unnamed.name.clear();
  EXPECT_THROW(unnamed.validate(), std::runtime_error);

  FleetSpec empty = ok;
  empty.classes.clear();
  EXPECT_THROW(empty.validate(), std::runtime_error);

  FleetSpec zero_count = ok;
  zero_count.classes[0].count = 0;
  EXPECT_THROW(zero_count.validate(), std::runtime_error);

  FleetSpec dup = ok;
  dup.classes[1].name = dup.classes[0].name;
  EXPECT_THROW(dup.validate(), std::runtime_error);

  FleetSpec bad_jitter = ok;
  bad_jitter.classes[0].cpu_jitter = 1.0;  // must be < 1
  EXPECT_THROW(bad_jitter.validate(), std::runtime_error);

  FleetSpec bad_mem = ok;
  bad_mem.classes[0].base.memory = 0.0;
  EXPECT_THROW(bad_mem.validate(), std::runtime_error);
}

TEST(Fleet, ParserRejectsMalformedJson) {
  // Unknown keys are errors, not warnings — a typoed jitter knob must not
  // silently produce an un-jittered fleet.
  EXPECT_THROW(parse_fleet_json("{"), std::runtime_error);
  EXPECT_THROW(parse_fleet_json("[1, 2]"), std::runtime_error);
  EXPECT_THROW(parse_fleet_json(R"({"name": "x"})"), std::runtime_error);
  EXPECT_THROW(parse_fleet_json(R"({"name": "x", "bogus": 1, "classes": []})"),
               std::runtime_error);
  EXPECT_THROW(
      parse_fleet_json(
          R"({"name": "x", "classes": [{"name": "a", "base": "thor", "count": 1, "cpu_jitterr": 0.1}]})"),
      std::runtime_error);
  // Type mismatches.
  EXPECT_THROW(parse_fleet_json(R"({"name": 3, "classes": []})"), std::runtime_error);
  EXPECT_THROW(
      parse_fleet_json(R"({"name": "x", "classes": [{"name": "a", "base": "thor", "count": 1.5}]})"),
      std::runtime_error);
  EXPECT_THROW(
      parse_fleet_json(R"({"name": "x", "classes": [{"name": "a", "base": "xeon", "count": 1}]})"),
      std::runtime_error);
  EXPECT_THROW(parse_fleet_json(R"({"name": "x", "seed": -1, "classes": []})"),
               std::runtime_error);
}

TEST(Fleet, ScaledFleetRejectsTinyCounts) {
  EXPECT_THROW(scaled_hydra_fleet(2, 1), std::runtime_error);
}

// All four schedulers complete every task on a generated 200-node fleet.
// TeraSort, not PR: the memory-oblivious baselines are deliberately
// OOM-prone under PR, and at fleet scale that turns a smoke test into a
// livelock reproduction.
TEST(FleetE2E, TwoHundredNodeSmokeAllSchedulers) {
  FleetSpec spec = scaled_hydra_fleet(200, 1);
  std::vector<NodeSpec> nodes = generate_fleet(spec);
  WorkloadPreset preset = workload_preset("TeraSort");
  preset.input_gb = 25.0;  // 200 map + 200 reduce tasks, ~2 waves

  for (SchedulerKind kind : {SchedulerKind::kFifo, SchedulerKind::kSpark,
                             SchedulerKind::kStageAware, SchedulerKind::kRupam}) {
    SimulationConfig cfg;
    cfg.scheduler = kind;
    cfg.nodes = nodes;
    if (spec.switch_bandwidth > 0.0) cfg.switch_bandwidth = spec.switch_bandwidth;
    Simulation sim(cfg);
    Application app =
        build_workload(preset, sim.cluster().node_ids(), /*seed=*/1,
                       /*iterations_override=*/0, hdfs_placement_weights(sim.cluster()));
    SimTime makespan = sim.run(app);
    EXPECT_GT(makespan, 0.0) << sim.scheduler().name();
    std::set<std::pair<StageId, int>> done;
    for (const auto& m : sim.scheduler().completed()) {
      EXPECT_TRUE(done.emplace(m.stage, m.partition).second) << sim.scheduler().name();
    }
    EXPECT_EQ(done.size(), app.total_tasks()) << sim.scheduler().name();
  }
}

// Regression gate for the indexed dispatch paths: on a 200-node fleet the
// per-round work must stay far below a full nodes-x-tasks rescan. FIFO is
// the canary — it had the worst (quadratic) scan before the indexes.
TEST(FleetE2E, IndexedDispatchBeatsFullRescanByTenfold) {
  FleetSpec spec = scaled_hydra_fleet(200, 1);
  std::vector<NodeSpec> nodes = generate_fleet(spec);
  WorkloadPreset preset = workload_preset("TeraSort");
  preset.input_gb = 25.0;

  for (SchedulerKind kind : {SchedulerKind::kFifo, SchedulerKind::kRupam}) {
    SimulationConfig cfg;
    cfg.scheduler = kind;
    cfg.nodes = nodes;
    cfg.speculation.enabled = false;  // straggler scans are a separate subsystem
    Simulation sim(cfg);
    Application app =
        build_workload(preset, sim.cluster().node_ids(), /*seed=*/1,
                       /*iterations_override=*/0, hdfs_placement_weights(sim.cluster()));
    sim.run(app);
    const auto& work = sim.scheduler().dispatch_work();
    EXPECT_GT(work.full_scan_equivalent, 0u) << sim.scheduler().name();
    EXPECT_LE(work.task_checks * 10, work.full_scan_equivalent)
        << sim.scheduler().name() << ": task_checks=" << work.task_checks
        << " full_scan_equivalent=" << work.full_scan_equivalent;
  }
}

}  // namespace
}  // namespace rupam
