// Seeded chaos property tests: random fault plans across schedulers must
// never break completion invariants, and a fixed seed must reproduce a
// byte-identical event trace.
#include <gtest/gtest.h>

#include <sstream>

#include "fault_invariants.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

constexpr SchedulerKind kAllSchedulers[] = {SchedulerKind::kSpark, SchedulerKind::kRupam,
                                            SchedulerKind::kStageAware, SchedulerKind::kFifo};

Application shrunk_workload(Simulation& sim, const char* name, std::uint64_t seed) {
  const WorkloadPreset& preset = workload_preset(name);
  WorkloadParams params;
  params.input_gb = preset.input_gb / 16.0;
  params.iterations = std::min(preset.iterations, 2);
  params.seed = seed;
  params.placement_weights = hdfs_placement_weights(sim.cluster());
  return preset.factory(sim.cluster().node_ids(), params);
}

class ChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeeds, RandomFaultsNeverBreakCompletion) {
  const std::uint64_t seed = GetParam();
  SimulationConfig cfg;
  // Spread the 20 seeds over all four schedulers and two workload shapes
  // (shuffle-heavy TeraSort, iterative LR).
  cfg.scheduler = kAllSchedulers[seed % 4];
  cfg.chaos_seed = seed;
  Simulation sim(cfg);
  Application app = shrunk_workload(sim, seed % 2 == 0 ? "TeraSort" : "LR", seed);
  SimTime makespan = sim.run(app);
  EXPECT_GT(makespan, 0.0);
  ASSERT_NE(sim.injector(), nullptr);
  EXPECT_FALSE(sim.injector()->plan().empty());
  expect_recovered_completion(sim, app);
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, ChaosSeeds,
                         ::testing::Range<std::uint64_t>(1, 21),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

std::string chaos_trace_csv(SchedulerKind scheduler, std::uint64_t chaos_seed) {
  SimulationConfig cfg;
  cfg.scheduler = scheduler;
  cfg.chaos_seed = chaos_seed;
  cfg.enable_trace = true;
  Simulation sim(cfg);
  Application app = shrunk_workload(sim, "TeraSort", 5);
  sim.run(app);
  std::ostringstream csv;
  sim.trace()->write_csv(csv);
  return csv.str();
}

TEST(ChaosDeterminism, FixedSeedReproducesByteIdenticalTrace) {
  for (auto scheduler : {SchedulerKind::kRupam, SchedulerKind::kSpark}) {
    std::string first = chaos_trace_csv(scheduler, 11);
    std::string second = chaos_trace_csv(scheduler, 11);
    EXPECT_GT(first.size(), 0u);
    EXPECT_EQ(first, second) << to_string(scheduler)
                             << ": same chaos seed must replay identically";
  }
}

TEST(ChaosDeterminism, DifferentChaosSeedsDiverge) {
  std::string a = chaos_trace_csv(SchedulerKind::kRupam, 11);
  std::string b = chaos_trace_csv(SchedulerKind::kRupam, 12);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rupam
