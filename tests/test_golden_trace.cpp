// Golden-trace regression: the multi-tenant refactor must not change one
// byte of any fault-free single-application run. The fixtures under
// tests/golden/ were captured from the pre-refactor scheduler with
//   rupam_sim --workload PR --scheduler <s> --iterations 2 --seed 1
// so any drift in event ordering, policy sorting, or id assignment shows
// up as a trace diff here.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "app/cli.hpp"

namespace rupam {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << "cannot open " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

class GoldenTraceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenTraceTest, SingleAppTraceByteIdentical) {
  const char* scheduler = GetParam();
  std::string trace_path =
      ::testing::TempDir() + "/trace_PR_" + scheduler + ".csv";
  CliOptions opts;
  opts.workload = "PR";
  opts.workload_explicit = true;
  opts.scheduler = *scheduler_from_name(scheduler);
  opts.iterations = 2;
  opts.seed = 1;
  opts.trace_csv = trace_path;
  std::ostringstream out, err;
  ASSERT_EQ(run_cli(opts, out, err), 0) << err.str();

  std::string golden_path =
      std::string(RUPAM_TEST_DATA_DIR) + "/golden/trace_PR_" + scheduler + ".csv";
  std::string expected = read_file(golden_path);
  std::string actual = read_file(trace_path);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(actual, expected) << "trace drifted from the pre-refactor golden capture";
  std::remove(trace_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, GoldenTraceTest,
                         ::testing::Values("spark", "rupam", "stageaware", "fifo"));

}  // namespace
}  // namespace rupam
