// Counterfactual replay layer (src/replay/) and the RunSpec API behind it:
// strict round-trips, checkpoint-as-deterministic-re-execution, branch
// grammar and interventions, and the what-if advisor. Suite names all
// start with "Replay" so CI can select them (`ctest -R '^Replay'`) for
// the TSan job — the advisor's worker pool runs here.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "app/cli.hpp"
#include "app/run_spec.hpp"
#include "app/simulation.hpp"
#include "metrics/event_trace.hpp"
#include "replay/branch.hpp"
#include "replay/checkpoint.hpp"
#include "replay/whatif.hpp"

namespace rupam {
namespace {

/// The paper's Fig 3 motivation pair (examples/motivation_fleet.json):
/// one slow-CPU node, one fast-CPU node behind a 10 Gb/s switch.
FleetSpec motivation_fleet() {
  return parse_fleet_json(R"({
    "name": "motivation-pair",
    "seed": 1,
    "switch_gbps": 10,
    "classes": [
      {"name": "slow-cpu", "count": 1, "base": "thor", "cores": 16,
       "cpu_ghz": 1.6, "cpu_perf": 0.67, "memory_gb": 48, "net_gbps": 1,
       "ssd": false},
      {"name": "fast-cpu", "count": 1, "base": "thor", "cores": 16,
       "cpu_ghz": 2.4, "cpu_perf": 1.0, "memory_gb": 48, "net_gbps": 10,
       "ssd": false}
    ]
  })");
}

/// Small, fast, heterogeneity-sensitive run used throughout: SQL under
/// stock Spark on the motivation pair.
RunSpec sql_on_pair() {
  RunSpec spec;
  spec.workload = "SQL";
  spec.workload_explicit = true;
  spec.scheduler = SchedulerKind::kSpark;
  spec.fleet_spec = motivation_fleet();
  return spec;
}

std::string trace_csv(const Simulation& sim) {
  std::ostringstream os;
  sim.trace()->write_csv(os);
  return os.str();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  ASSERT_TRUE(f) << path;
  f << text;
}

// --------------------------------------------------------------------------
// RunSpec: strict JSON round-trip, the single source of truth.

TEST(ReplayRunSpec, RoundTripIsByteIdentical) {
  RunSpec spec = sql_on_pair();
  spec.iterations = 3;
  spec.seed = 42;
  spec.sample_utilization = true;
  spec.faults = "crash@50:node=0:down=40";
  spec.chaos_seed = 7;
  spec.autoscale = 4;
  spec.preempt = true;
  std::string once = run_spec_to_json(spec);
  RunSpec reparsed = parse_run_spec_json(once);
  EXPECT_EQ(run_spec_to_json(reparsed), once);
  EXPECT_EQ(reparsed.workload, "SQL");
  EXPECT_EQ(reparsed.scheduler, SchedulerKind::kSpark);
  EXPECT_EQ(reparsed.seed, 42u);
  ASSERT_TRUE(reparsed.fleet_spec.has_value());
  EXPECT_EQ(reparsed.fleet_spec->classes.size(), 2u);
}

TEST(ReplayRunSpec, DefaultSpecRoundTrips) {
  RunSpec spec;
  std::string once = run_spec_to_json(spec);
  EXPECT_EQ(run_spec_to_json(parse_run_spec_json(once)), once);
  // "workload" is serialized only when explicitly set (CLI parity).
  EXPECT_EQ(once.find("\"workload\""), std::string::npos);
}

TEST(ReplayRunSpec, RejectsUnknownKeys) {
  EXPECT_THROW(parse_run_spec_json(R"({"workload": "PR", "bogus": 1})"), std::runtime_error);
}

TEST(ReplayRunSpec, RejectsMalformedJson) {
  EXPECT_THROW(parse_run_spec_json("{nope"), std::runtime_error);
  EXPECT_THROW(parse_run_spec_json("[1, 2]"), std::runtime_error);
}

TEST(ReplayRunSpec, RejectsInvalidFields) {
  EXPECT_THROW(parse_run_spec_json(R"({"seed": -1})"), std::runtime_error);
  EXPECT_THROW(parse_run_spec_json(R"({"scheduler": "yarn"})"), std::runtime_error);
  RunSpec both;
  both.fleet = "fleet.json";
  both.fleet_spec = motivation_fleet();
  EXPECT_THROW(both.validate(), std::runtime_error);
  RunSpec unknown_workload;
  unknown_workload.workload = "NoSuchWorkload";
  EXPECT_THROW(unknown_workload.validate(), std::runtime_error);
}

TEST(ReplayRunSpec, CliProjectionRoundTrips) {
  RunSpec spec = sql_on_pair();
  spec.seed = 9;
  spec.faults = "crash@50:node=0:down=40";
  RunSpec back = run_spec_from_cli(cli_from_run_spec(spec));
  EXPECT_EQ(run_spec_to_json(back), run_spec_to_json(spec));
}

TEST(ReplayRunSpec, ConfigFlagLoadsAndFlagsOverride) {
  RunSpec spec;
  spec.workload = "SQL";
  spec.workload_explicit = true;
  spec.scheduler = SchedulerKind::kSpark;
  spec.seed = 7;
  std::string path = temp_path("replay_runspec_config.json");
  write_file(path, run_spec_to_json(spec));

  std::ostringstream err;
  auto opts = parse_cli({"--config", path, "--seed", "9"}, err);
  ASSERT_TRUE(opts.has_value()) << err.str();
  EXPECT_EQ(opts->workload, "SQL");
  EXPECT_EQ(opts->scheduler, SchedulerKind::kSpark);
  EXPECT_EQ(opts->seed, 9u);  // flag beats config

  // Position does not matter: flags override wherever --config sits.
  auto opts2 = parse_cli({"--seed", "9", "--config", path}, err);
  ASSERT_TRUE(opts2.has_value()) << err.str();
  EXPECT_EQ(opts2->seed, 9u);

  auto bad = parse_cli({"--config", temp_path("replay_no_such_file.json")}, err);
  EXPECT_FALSE(bad.has_value());
}

// --------------------------------------------------------------------------
// Checkpointing: capture at T, restore, run to end ≡ straight run.

TEST(ReplayCheckpoint, RestoreReproducesStraightRunByteForByte) {
  RunSpec spec = sql_on_pair();

  SimulationConfig obs;
  obs.enable_trace = true;
  ReplayRun straight = start_replay_run(spec, obs);
  SimTime straight_makespan = straight.sim->finish();
  std::string straight_trace = trace_csv(*straight.sim);

  Checkpoint cp = capture_checkpoint(spec, straight_makespan / 2.0);
  EXPECT_GT(cp.pins.size(), 0u);
  ASSERT_TRUE(cp.run.fleet_spec.has_value());  // checkpoints embed the fleet

  ReplayRun restored = restore_checkpoint(cp, obs);
  SimTime restored_makespan = restored.sim->finish();
  EXPECT_DOUBLE_EQ(restored_makespan, straight_makespan);
  EXPECT_EQ(trace_csv(*restored.sim), straight_trace);
}

TEST(ReplayCheckpoint, JsonRoundTripIsByteIdentical) {
  Checkpoint cp = capture_checkpoint(sql_on_pair(), 50.0);
  std::string once = checkpoint_to_json(cp);
  Checkpoint reparsed = parse_checkpoint_json(once);
  EXPECT_EQ(checkpoint_to_json(reparsed), once);
  EXPECT_EQ(reparsed.pins.size(), cp.pins.size());
}

TEST(ReplayCheckpoint, RestoreThrowsOnDivergedPins) {
  Checkpoint cp = capture_checkpoint(sql_on_pair(), 50.0);
  ASSERT_GT(cp.pins.size(), 0u);
  cp.pins.front().node = cp.pins.front().node == 0 ? 1 : 0;
  try {
    restore_checkpoint(cp);
    FAIL() << "tampered pin prefix must not restore";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("diverged"), std::string::npos) << e.what();
  }
}

TEST(ReplayCheckpoint, RejectsMultiTenantSpecs) {
  RunSpec spec = sql_on_pair();
  spec.arrivals = 0.5;
  EXPECT_THROW(capture_checkpoint(spec, 10.0), std::runtime_error);
}

TEST(ReplayCheckpoint, ParserRejectsBadDocuments) {
  EXPECT_THROW(parse_checkpoint_json("{}"), std::runtime_error);  // missing keys
  EXPECT_THROW(parse_checkpoint_json(R"({"format": "other", "time": 1, "run": {}})"),
               std::runtime_error);
  EXPECT_THROW(
      parse_checkpoint_json(
          R"({"format": "rupam-checkpoint-v1", "time": 1, "run": {}, "pins": [[1, 2]]})"),
      std::runtime_error);
}

// --------------------------------------------------------------------------
// Branching: grammar, the dispatch-interceptor seam, suppression.

TEST(ReplayBranch, GrammarParsesAllThreeKinds) {
  BranchSpec node = parse_branch_spec("node:stage=3:task=7:node=1:attempt=2");
  EXPECT_EQ(node.kind, BranchKind::kNodeOverride);
  EXPECT_EQ(node.stage, 3);
  EXPECT_EQ(node.task, 7);
  EXPECT_EQ(node.node, 1);
  EXPECT_EQ(node.attempt, 2);

  BranchSpec sched = parse_branch_spec("scheduler=heft");
  EXPECT_EQ(sched.kind, BranchKind::kScheduler);
  EXPECT_EQ(sched.scheduler, SchedulerKind::kHeft);

  BranchSpec sup = parse_branch_spec("suppress:kind=spot:node=4");
  EXPECT_EQ(sup.kind, BranchKind::kSuppressFault);
  EXPECT_EQ(sup.fault, FaultKind::kSpotRevoke);
  EXPECT_EQ(sup.fault_node, 4);
}

TEST(ReplayBranch, GrammarRejectsMalformedSpecs) {
  EXPECT_THROW(parse_branch_spec(""), std::runtime_error);
  EXPECT_THROW(parse_branch_spec("node:stage=1"), std::runtime_error);  // missing task/node
  EXPECT_THROW(parse_branch_spec("node:stage=x:task=1:node=0"), std::runtime_error);
  EXPECT_THROW(parse_branch_spec("scheduler=yarn"), std::runtime_error);
  EXPECT_THROW(parse_branch_spec("suppress:kind=meteor"), std::runtime_error);
  EXPECT_THROW(parse_branch_spec("suppress:node=1"), std::runtime_error);  // missing kind
  EXPECT_THROW(parse_branch_spec("gibberish"), std::runtime_error);
}

TEST(ReplayBranch, InterceptorForcesOneDispatch) {
  RunSpec spec = sql_on_pair();
  // Find a real early decision, then force its launch onto the other node.
  Checkpoint cp = capture_checkpoint(spec, 50.0);
  ASSERT_GT(cp.pins.size(), 0u);
  const DecisionPin& pin = cp.pins.front();
  NodeId other = pin.node == 0 ? 1 : 0;

  BranchSpec branch;
  branch.kind = BranchKind::kNodeOverride;
  branch.label = "test-override";
  branch.stage = pin.stage;
  branch.task = pin.task;
  branch.attempt = pin.attempt;
  branch.node = other;
  RunOutcome outcome = run_branch_side(spec, branch);
  EXPECT_GT(outcome.makespan, 0.0);

  // The same intervention through the Simulation seam, observed directly.
  SimulationConfig cfg = make_simulation_config(spec);
  cfg.enable_audit = true;
  Simulation sim(cfg);
  sim.set_dispatch_interceptor(
      [&](StageId stage, TaskId task, AttemptId attempt, NodeId) -> std::optional<NodeId> {
        if (stage != pin.stage || task != pin.task || attempt != pin.attempt) {
          return std::nullopt;
        }
        return other;
      });
  Application app = make_run_application(spec, sim);
  sim.run(app);
  bool forced = false;
  for (const DispatchDecision& d : sim.audit()->decisions()) {
    if (d.stage == pin.stage && d.task == pin.task && d.attempt == pin.attempt) {
      EXPECT_EQ(d.node, other);
      forced = true;
      break;
    }
  }
  EXPECT_TRUE(forced);
}

TEST(ReplayBranch, SchedulerBranchSwapsScheduler) {
  RunSpec spec = sql_on_pair();
  BranchSpec branch = parse_branch_spec("scheduler=rupam");
  BranchReport report = run_branch(spec, branch);
  EXPECT_EQ(report.base.scheduler, "Spark");
  EXPECT_EQ(report.branch.scheduler, "RUPAM");
  EXPECT_FALSE(report.comparison.deltas.empty());
  EXPECT_DOUBLE_EQ(report.p95_jct_saving(), report.base.jct.p95 - report.branch.jct.p95);
}

TEST(ReplayBranch, SuppressRemovesTheFault) {
  RunSpec spec = sql_on_pair();
  spec.faults = "crash@40:node=0:down=60";
  RunOutcome base = run_base(spec);
  RunOutcome suppressed = run_branch_side(spec, parse_branch_spec("suppress:kind=crash"));
  EXPECT_GT(base.failures + base.executor_losses + base.recomputed_partitions, 0u);
  EXPECT_EQ(suppressed.executor_losses, 0u);
  EXPECT_EQ(suppressed.recomputed_partitions, 0u);
  // With the crash gone the branch reproduces the fault-free run.
  RunSpec clean = sql_on_pair();
  RunOutcome fault_free = run_base(clean);
  EXPECT_DOUBLE_EQ(suppressed.makespan, fault_free.makespan);
}

TEST(ReplayBranch, SuppressOtherKindKeepsTheFault) {
  RunSpec spec = sql_on_pair();
  spec.faults = "crash@40:node=0:down=60";
  RunOutcome base = run_base(spec);
  RunOutcome other = run_branch_side(spec, parse_branch_spec("suppress:kind=spot"));
  EXPECT_DOUBLE_EQ(other.makespan, base.makespan);  // nothing matched, bit-identical
}

// --------------------------------------------------------------------------
// What-if advisor.

const char* kDiagnosisJson = R"({
  "stragglers": [
    {"stage": 7, "task": 405, "attempt": 0, "node": 0, "node_class": "slow-cpu",
     "duration": 74.5, "stage_median": 21.9, "ratio": 3.4,
     "cause": "slow_node_class", "detail": "class=slow-cpu"},
    {"stage": 7, "task": 406, "attempt": 0, "node": 0, "node_class": "slow-cpu",
     "duration": 30.0, "stage_median": 21.9, "ratio": 1.4,
     "cause": "slow_node_class", "detail": "class=slow-cpu"},
    {"stage": 2, "task": 10, "attempt": 1, "node": 1, "node_class": "fast-cpu",
     "duration": 50.0, "stage_median": 20.0, "ratio": 2.5,
     "cause": "node_fault", "detail": "crash"},
    {"stage": 3, "task": 11, "attempt": 0, "node": 1, "node_class": "fast-cpu",
     "duration": 25.0, "stage_median": 20.0, "ratio": 1.25,
     "cause": "spot_drain", "detail": "revoked"}
  ]
})";

TEST(ReplayWhatif, ParsesDiagnosisStragglers) {
  std::vector<DiagnosedStraggler> s = parse_diagnosis_stragglers(kDiagnosisJson);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0].stage, 7);
  EXPECT_EQ(s[0].task, 405);
  EXPECT_EQ(s[0].cause, "slow_node_class");
  EXPECT_DOUBLE_EQ(s[0].duration, 74.5);
  EXPECT_EQ(s[2].attempt, 1);
}

TEST(ReplayWhatif, ParserRejectsBadDiagnoses) {
  EXPECT_THROW(parse_diagnosis_stragglers("{oops"), std::runtime_error);
  EXPECT_THROW(parse_diagnosis_stragglers(R"({"jobs": []})"), std::runtime_error);
  EXPECT_THROW(parse_diagnosis_stragglers(R"({"stragglers": [{"surprise": 1}]})"),
               std::runtime_error);
}

TEST(ReplayWhatif, ProposesPolicyPerCause) {
  RunSpec spec = sql_on_pair();
  auto proposals =
      propose_branches(spec, parse_diagnosis_stragglers(kDiagnosisJson), /*max_candidates=*/8);
  std::vector<std::string> labels;
  for (const auto& [branch, why] : proposals) {
    (void)why;
    labels.push_back(branch.label);
  }
  // slow_node_class dominates total excess → its candidates come first:
  // redirect the worst blamed dispatch to the fast node, plus RUPAM.
  ASSERT_GE(labels.size(), 5u);
  EXPECT_EQ(labels[0], "node:stage=7:task=405:node=1");
  EXPECT_EQ(labels[1], "scheduler=rupam");
  EXPECT_NE(std::find(labels.begin(), labels.end(), "suppress:kind=crash"), labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "suppress:kind=spot"), labels.end());
  EXPECT_EQ(labels.back(), "scheduler=heft");  // the ever-present yardstick

  // Deduped (two slow_node_class stragglers, one override) and capped.
  auto capped =
      propose_branches(spec, parse_diagnosis_stragglers(kDiagnosisJson), /*max_candidates=*/2);
  EXPECT_EQ(capped.size(), 2u);
}

TEST(ReplayWhatif, AdvisorRanksFindingsBestFirst) {
  RunSpec spec = sql_on_pair();
  WhatIfConfig cfg;
  cfg.max_candidates = 4;
  WhatIfReport report = advise_whatif(spec, parse_diagnosis_stragglers(kDiagnosisJson), cfg);
  EXPECT_EQ(report.base.scheduler, "Spark");
  ASSERT_GT(report.findings.size(), 1u);
  for (std::size_t i = 1; i < report.findings.size(); ++i) {
    EXPECT_GE(report.findings[i - 1].p95_jct_saving, report.findings[i].p95_jct_saving);
  }
  for (const WhatIfFinding& f : report.findings) {
    EXPECT_FALSE(f.motivation.empty());
    EXPECT_GT(f.outcome.makespan, 0.0);
  }
  std::ostringstream os;
  write_whatif_json(report, os);
  EXPECT_NE(os.str().find("\"candidates\""), std::string::npos);
}

TEST(ReplayWhatif, AdvisorIsDeterministicAcrossThreadCounts) {
  RunSpec spec = sql_on_pair();
  auto stragglers = parse_diagnosis_stragglers(kDiagnosisJson);
  WhatIfConfig serial;
  serial.max_candidates = 3;
  serial.threads = 1;
  WhatIfConfig parallel = serial;
  parallel.threads = 4;
  std::ostringstream a, b;
  write_whatif_json(advise_whatif(spec, stragglers, serial), a);
  write_whatif_json(advise_whatif(spec, stragglers, parallel), b);
  EXPECT_EQ(a.str(), b.str());
}

// --------------------------------------------------------------------------
// HEFT baseline rides the same seams.

TEST(ReplayHeft, FactoryAndDeterminism) {
  RunSpec spec = sql_on_pair();
  spec.scheduler = SchedulerKind::kHeft;
  RunOutcome first = run_base(spec);
  EXPECT_EQ(first.scheduler, "HEFT");
  EXPECT_GT(first.makespan, 0.0);
  RunOutcome second = run_base(spec);
  EXPECT_DOUBLE_EQ(second.makespan, first.makespan);
  EXPECT_EQ(second.launches, first.launches);
}

}  // namespace
}  // namespace rupam
