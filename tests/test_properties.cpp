// Cross-cutting property tests: conservation laws and invariants that
// must hold for any seed / configuration.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <sstream>

#include "app/simulation.hpp"
#include "cluster/presets.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

// Work conservation in the fair-share model with random arrivals,
// cancels, and heterogeneous speed factors: total drained equals the sum
// of completed work plus partial progress of cancelled claims, and never
// exceeds capacity * elapsed time.
class FairShareConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(FairShareConservationTest, DrainedBoundedByCapacityTime) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Simulator sim;
  FairShareResource r(sim, "r", 100.0, 25.0);
  double submitted = 0.0;
  double completed_work = 0.0;
  std::vector<FairShareResource::ClaimId> live;
  for (int i = 0; i < 40; ++i) {
    double work = rng.uniform(10.0, 200.0);
    submitted += work;
    sim.schedule_at(rng.uniform(0.0, 20.0), [&, work] {
      live.push_back(r.start(work, rng.uniform(0.5, 2.0),
                             [&completed_work, work] { completed_work += work; }));
    });
  }
  // Random cancels sprinkled in.
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(rng.uniform(5.0, 25.0), [&] {
      if (!live.empty()) {
        r.cancel(live[rng.uniform_index(live.size())]);
      }
    });
  }
  sim.run();
  double drained = r.total_drained();
  EXPECT_LE(drained, submitted + 1e-6);
  EXPECT_GE(drained, completed_work - 1e-6);
  // Work is measured in reference units: a claim with speed_factor s
  // drains s reference units per capacity-second, so the hard ceiling is
  // capacity * max_speed * elapsed.
  EXPECT_LE(drained, 100.0 * 2.0 * sim.now() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareConservationTest, ::testing::Range(1, 13));

// Every scheduler, any seed: each partition completes exactly once, no
// task is double-counted, and failed attempts never appear as winners.
class SchedulerInvariantTest
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, int>> {};

TEST_P(SchedulerInvariantTest, ExactlyOneWinnerPerPartition) {
  auto [kind, seed] = GetParam();
  SimulationConfig cfg;
  cfg.scheduler = kind;
  Simulation sim(cfg);
  Application app =
      build_workload(workload_preset("PR"), sim.cluster().node_ids(),
                     static_cast<std::uint64_t>(seed), 2, hdfs_placement_weights(sim.cluster()));
  sim.run(app);
  std::set<std::pair<StageId, int>> winners;
  for (const auto& m : sim.scheduler().completed()) {
    EXPECT_FALSE(m.failed);
    EXPECT_GE(m.finish_time, m.launch_time);
    EXPECT_GE(m.launch_time, m.submit_time);
    EXPECT_TRUE(winners.emplace(m.stage, m.partition).second);
  }
  EXPECT_EQ(winners.size(), app.total_tasks());
  for (const auto& m : sim.scheduler().failures()) EXPECT_TRUE(m.failed);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, SchedulerInvariantTest,
    ::testing::Combine(::testing::Values(SchedulerKind::kSpark, SchedulerKind::kRupam,
                                         SchedulerKind::kStageAware, SchedulerKind::kFifo),
                       ::testing::Values(1, 2, 3)));

// Breakdown components of every completed task sum to at most the task's
// wall time (phases are sequential), and locality labels are consistent
// with the task's preferences.
TEST(Properties, BreakdownComponentsBoundedByWallTime) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  Simulation sim(cfg);
  Application app = build_workload(workload_preset("TC"), sim.cluster().node_ids(), 5, 1,
                                   hdfs_placement_weights(sim.cluster()));
  sim.run(app);
  for (const auto& m : sim.scheduler().completed()) {
    double phases = m.input_read_time + m.shuffle_read_time +
                    (m.compute_time - m.input_read_time) + m.gc_time + m.shuffle_write_time +
                    m.output_time;
    EXPECT_LE(phases, m.run_time() * 1.0001 + 1e-6);
    EXPECT_GE(m.serialization_time, 0.0);
    EXPECT_LE(m.serialization_time, m.compute_time + 1e-9);
  }
}

// The executor never reports negative free slots or memory, under any
// scheduler, even through OOM storms and restarts.
TEST(Properties, ExecutorAccountingStaysSane) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  Simulation sim(cfg);
  Application app = build_workload(workload_preset("PR"), sim.cluster().node_ids(), 2, 2,
                                   hdfs_placement_weights(sim.cluster()));
  // Probe invariants every simulated second during the run.
  std::function<void()> probe = [&] {
    for (NodeId id : sim.cluster().node_ids()) {
      Executor& e = sim.executor(id);
      ASSERT_GE(e.free_slots(), 0);
      ASSERT_GE(e.heap_used(), 0.0);
      ASSERT_GE(sim.cluster().node(id).free_memory(), 0.0);
    }
    sim.sim().schedule_after(1.0, probe);
  };
  sim.sim().schedule_after(1.0, probe);
  sim.run(app);
}

// Determinism across the entire stack including traces.
TEST(Properties, TraceDeterminism) {
  auto run = [] {
    SimulationConfig cfg;
    cfg.scheduler = SchedulerKind::kRupam;
    cfg.enable_trace = true;
    Simulation sim(cfg);
    Application app = build_workload(workload_preset("GM"), sim.cluster().node_ids(), 9, 1,
                                     hdfs_placement_weights(sim.cluster()));
    sim.run(app);
    std::ostringstream oss;
    sim.trace()->write_csv(oss);
    return oss.str();
  };
  EXPECT_EQ(run(), run());
}

// A cluster of one node still works for every scheduler (degenerate
// topology: no remote shuffle, no placement choice).
TEST(Properties, SingleNodeClusterDegenerateCase) {
  for (auto kind : {SchedulerKind::kSpark, SchedulerKind::kRupam, SchedulerKind::kFifo}) {
    SimulationConfig cfg;
    cfg.scheduler = kind;
    NodeSpec solo = hulk_spec();
    solo.name = "solo";
    cfg.nodes = {solo};
    Simulation sim(cfg);
    WorkloadParams params;
    params.input_gb = 0.1;
    params.iterations = 1;
    params.seed = 1;
    Application app = make_terasort(sim.cluster().node_ids(), params);
    EXPECT_GT(sim.run(app), 0.0);
    EXPECT_EQ(sim.scheduler().completed().size(), app.total_tasks());
  }
}

// max_sim_time is a hard safety valve.
TEST(Properties, MaxSimTimeThrows) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.max_sim_time = 0.5;  // far too small for any workload
  Simulation sim(cfg);
  Application app = build_workload(workload_preset("GM"), sim.cluster().node_ids(), 1, 1,
                                   hdfs_placement_weights(sim.cluster()));
  EXPECT_THROW(sim.run(app), std::runtime_error);
}

}  // namespace
}  // namespace rupam
