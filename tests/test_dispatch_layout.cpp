// Tests for the allocation-free dispatch data layout (DESIGN §15): the
// interned symbol table, TaskCharDb's packed (StageNameId, partition)
// keys, PoolId stability across membership churn, and the id-based FAIR
// pool ordering against the historical string-map algorithm.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "cluster/presets.hpp"
#include "common/symbol.hpp"
#include "exec/executor.hpp"
#include "sched/pool.hpp"
#include "sched/rupam/task_char_db.hpp"
#include "sched/scheduler.hpp"

namespace rupam {
namespace {

// ---------------------------------------------------------------- symbols

TEST(SymbolTable, IdsAreDenseAndStable) {
  TypedSymbolTable<PoolNameTag> table;
  PoolId a = table.intern("alpha");
  PoolId b = table.intern("beta");
  EXPECT_EQ(a.value, 0u);
  EXPECT_EQ(b.value, 1u);
  EXPECT_EQ(table.intern("alpha"), a);  // re-intern is a lookup
  EXPECT_EQ(table.find("beta"), b);
  EXPECT_FALSE(table.find("never-seen").valid());
  EXPECT_EQ(table.name(a), "alpha");
  EXPECT_EQ(table.name(b), "beta");
}

TEST(SymbolTable, SurvivesRehash) {
  TypedSymbolTable<StageNameTag> table;
  std::vector<StageNameId> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(table.intern("stage-" + std::to_string(i)));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(table.name(ids[static_cast<std::size_t>(i)]), "stage-" + std::to_string(i));
  }
}

// ------------------------------------------------------------ TaskCharDb

TaskMetrics metrics_with_compute(double compute) {
  TaskMetrics m;
  m.compute_time = compute;
  return m;
}

TEST(TaskCharDbKeys, DelimiterNamesNeverAlias) {
  // Under the old joined-string key ("name#partition" or "name:partition")
  // a stage name containing the delimiter could collide with another
  // stage's (name, partition) pair. The packed-id key makes that
  // impossible; pin it with the classic collision shapes.
  TaskCharDb db;
  db.update("job:stage", 7, metrics_with_compute(1.0), ResourceKind::kCpu);
  db.update("job", 7, metrics_with_compute(2.0), ResourceKind::kCpu);
  db.update("job:stage:7", 0, metrics_with_compute(3.0), ResourceKind::kCpu);
  db.update("a#1", 2, metrics_with_compute(4.0), ResourceKind::kCpu);
  db.update("a", 12, metrics_with_compute(5.0), ResourceKind::kCpu);
  EXPECT_EQ(db.size(), 5u);
  ASSERT_NE(db.lookup("job:stage", 7), nullptr);
  EXPECT_DOUBLE_EQ(db.lookup("job:stage", 7)->compute_time, 1.0);
  EXPECT_DOUBLE_EQ(db.lookup("job", 7)->compute_time, 2.0);
  EXPECT_DOUBLE_EQ(db.lookup("job:stage:7", 0)->compute_time, 3.0);
  EXPECT_DOUBLE_EQ(db.lookup("a#1", 2)->compute_time, 4.0);
  EXPECT_DOUBLE_EQ(db.lookup("a", 12)->compute_time, 5.0);
  // Pairs never written stay absent even though their joined forms match
  // a written record's joined form.
  EXPECT_EQ(db.lookup("job:stage:7", 7), nullptr);
  EXPECT_EQ(db.lookup("a#1#2", 0), nullptr);
}

TEST(TaskCharDbKeys, GpuMarkRespectsDelimiters) {
  TaskCharDb db;
  db.mark_stage_gpu("g:1");
  EXPECT_TRUE(db.stage_uses_gpu("g:1"));
  EXPECT_FALSE(db.stage_uses_gpu("g"));
  EXPECT_FALSE(db.stage_uses_gpu("g:1:0"));
}

TEST(TaskCharDbKeys, StringAndIdApisAgree) {
  TaskCharDb db;
  db.update("s:0", 3, metrics_with_compute(9.0), ResourceKind::kNetwork);
  StageNameId id = db.find_stage("s:0");
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(db.lookup(id, 3), db.lookup("s:0", 3));
  EXPECT_EQ(db.lookup(id, 4), nullptr);
  EXPECT_EQ(db.lookup(StageNameId(), 3), nullptr);  // invalid id: no record
}

TEST(TaskCharDbKeys, InternedIdsSurviveClear) {
  TaskCharDb db;
  StageNameId id = db.intern_stage("persist");
  db.update("persist", 0, metrics_with_compute(1.0), ResourceKind::kCpu);
  db.clear();
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.lookup(id, 0), nullptr);
  // The interner is not reset: ids held by live TaskManager state stay
  // resolvable, and re-learning lands under the same id.
  EXPECT_EQ(db.find_stage("persist"), id);
  db.update("persist", 0, metrics_with_compute(2.0), ResourceKind::kCpu);
  ASSERT_NE(db.lookup(id, 0), nullptr);
  EXPECT_DOUBLE_EQ(db.lookup(id, 0)->compute_time, 2.0);
}

// -------------------------------------------------------- pool id layout

/// Minimal concrete scheduler exposing the protected pool machinery.
class PoolProbeScheduler : public SchedulerBase {
 public:
  using SchedulerBase::SchedulerBase;
  std::string name() const override { return "pool-probe"; }

  PoolId stage_pool(StageId id) const { return pool_of(stages_.at(id)); }
  const std::string& resolve(PoolId id) const { return pool_name(id); }

  std::vector<std::string> fair_order_names() {
    std::vector<std::string> names;
    for (PoolId id : fair_pool_order()) names.push_back(pool_name(id));
    return names;
  }

  /// Launch up to `n` tasks of `stage` on whatever slots are free, giving
  /// its pool a nonzero running count for the fair-share comparator.
  int launch_n(StageId id, int n) {
    StageState& stage = stages_.at(id);
    int launched = 0;
    for (std::size_t i = 0; i < stage.tasks.size() && launched < n; ++i) {
      TaskState& task = stage.tasks[i];
      if (!launchable(task)) continue;
      for_each_ready_node(0, [&](NodeId node, Executor&) {
        if (launch_task(stage, task, node, /*use_gpu=*/false, /*speculative=*/false)) {
          ++launched;
          return false;
        }
        return true;
      });
    }
    return launched;
  }

 protected:
  void try_dispatch() override {}
};

struct PoolHarness {
  Simulator sim;
  Cluster cluster{sim};
  std::vector<std::unique_ptr<Executor>> executors;
  std::unique_ptr<PoolProbeScheduler> sched;
  StageId next_stage = 0;

  explicit PoolHarness(std::size_t nodes = 4) {
    Rng rng(1);
    for (std::size_t i = 0; i < nodes; ++i) cluster.add_node(thor_spec());
    SchedulerEnv env;
    env.sim = &sim;
    env.cluster = &cluster;
    for (NodeId id : cluster.node_ids()) {
      executors.push_back(
          std::make_unique<Executor>(sim, cluster.node(id), id, ExecutorConfig{}, rng.split()));
      env.executors.push_back(executors.back().get());
    }
    sched = std::make_unique<PoolProbeScheduler>(env);
  }

  /// Submit one taskset billed to `pool`; returns its StageId.
  StageId submit(const std::string& pool, int tasks = 8) {
    TaskSet set;
    set.job = static_cast<JobId>(next_stage);
    set.stage = next_stage;
    set.stage_name = "s" + std::to_string(next_stage);
    set.pool = pool;
    for (int i = 0; i < tasks; ++i) {
      TaskSpec t;
      t.id = static_cast<TaskId>(1000 * next_stage + i);
      t.partition = i;
      t.stage = next_stage;
      t.stage_name = set.stage_name;
      t.compute = 50.0;
      t.peak_memory = 64.0 * kMiB;
      set.tasks.push_back(t);
    }
    sched->submit(set);
    return next_stage++;
  }
};

TEST(PoolIds, DefaultPoolIsIdZero) {
  PoolHarness h;
  StageId s = h.submit("");  // empty pool name bills to kDefaultPool
  EXPECT_EQ(h.sched->stage_pool(s), PoolId(0));
  EXPECT_EQ(h.sched->resolve(PoolId(0)), kDefaultPool);
}

TEST(PoolIds, StableAcrossDecommissionAndMidRunPools) {
  PoolHarness h(4);
  StageId sb = h.submit("tenant-b");  // interned before "tenant-a" on
  StageId sa = h.submit("tenant-a");  // purpose: id order != lex order
  PoolId b = h.sched->stage_pool(sb);
  PoolId a = h.sched->stage_pool(sa);
  ASSERT_NE(a, b);
  EXPECT_EQ(h.sched->resolve(b), "tenant-b");
  EXPECT_EQ(h.sched->resolve(a), "tenant-a");

  // Decommissioning a node purges per-node scheduler state; pool ids and
  // their dense mirrors must be untouched.
  h.cluster.decommission(2);
  EXPECT_EQ(h.sched->stage_pool(sb), b);
  EXPECT_EQ(h.sched->resolve(b), "tenant-b");

  // A pool first seen mid-run gets the next dense id; existing stages
  // and later stages of old pools keep resolving to the same ids.
  StageId sc = h.submit("tenant-c");
  StageId sa2 = h.submit("tenant-a");
  PoolId c = h.sched->stage_pool(sc);
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
  EXPECT_EQ(h.sched->stage_pool(sa2), a);
  EXPECT_EQ(h.sched->resolve(c), "tenant-c");
  EXPECT_EQ(h.sched->resolve(a), "tenant-a");
}

// -------------------------------------------- fair ordering equivalence

TEST(FairPoolOrder, MatchesStringAlgorithmOnRandomizedWorkloads) {
  // Regression for the dense-id rewrite of fair_pool_order(): on random
  // multi-pool workloads (random weights, min shares, running counts and
  // intern orders) the id-based ordering must equal Spark's
  // FairSchedulingAlgorithm run over name-keyed snapshots — the
  // implementation this repo shipped before the dispatch-layout change,
  // still exposed as fair_order() in sched/pool.hpp.
  std::mt19937 rng(42);
  const std::vector<std::string> names = {"etl",  "ml",    "adhoc", "vip",
                                          "bulk", "inter", "batch", "svc"};
  for (int trial = 0; trial < 25; ++trial) {
    PoolHarness h(6);  // 6 × 8 slots: room for every running count below
    std::vector<std::string> pools = names;
    std::shuffle(pools.begin(), pools.end(), rng);
    std::size_t active = 2 + rng() % (pools.size() - 1);
    pools.resize(active);

    PoolConfig config;
    config.policy = PoolPolicy::kFair;
    for (const std::string& pool : pools) {
      if (rng() % 2 == 0) continue;  // half the pools stay on defaults
      PoolSpec spec;
      spec.weight = 0.5 * static_cast<double>(1 + rng() % 8);
      spec.min_share = static_cast<int>(rng() % 5);
      config.pools[pool] = spec;
    }
    h.sched->configure_pools(config);

    for (const std::string& pool : pools) {
      StageId stage = h.submit(pool);
      int want = static_cast<int>(rng() % 6);
      ASSERT_EQ(h.sched->launch_n(stage, want), want) << "trial " << trial;
    }

    std::vector<PoolSnapshot> snapshots;
    for (const std::string& pool : pools) {
      PoolSnapshot snap;
      snap.name = pool;
      snap.running = h.sched->pool_running_tasks(pool);
      snap.weight = h.sched->pools().spec(pool).weight;
      snap.min_share = h.sched->pools().spec(pool).min_share;
      snapshots.push_back(snap);
    }
    std::vector<std::string> expected = fair_order(snapshots);
    EXPECT_EQ(h.sched->fair_order_names(), expected) << "trial " << trial;
    // Scratch reuse must be idempotent between dispatch rounds.
    EXPECT_EQ(h.sched->fair_order_names(), expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rupam
