#include <gtest/gtest.h>

#include "sched/rupam/resource_monitor.hpp"

namespace rupam {
namespace {

NodeMetrics metrics(NodeId id, double perf, int cores, double cpu_util, Bytes free_mem,
                    bool ssd = false, int gpus_idle = 0, int gpus_total = 0) {
  NodeMetrics m;
  m.node = id;
  m.cpu_perf = perf;
  m.cores = cores;
  m.cpu_util = cpu_util;
  m.free_memory = free_mem;
  m.memory = 64.0 * kGiB;
  m.has_ssd = ssd;
  m.net_bandwidth = gbit_per_s(1.0);
  m.gpus_idle = gpus_idle;
  m.gpus_total = gpus_total;
  return m;
}

TEST(ResourceMonitor, RecordsLatestSnapshot) {
  ResourceMonitor rm;
  EXPECT_FALSE(rm.has(0));
  rm.record(metrics(0, 1.0, 8, 0.2, 1.0 * kGiB));
  ASSERT_TRUE(rm.has(0));
  EXPECT_DOUBLE_EQ(rm.latest(0)->cpu_util, 0.2);
  rm.record(metrics(0, 1.0, 8, 0.9, 1.0 * kGiB));
  EXPECT_DOUBLE_EQ(rm.latest(0)->cpu_util, 0.9);
  EXPECT_EQ(rm.tracked_nodes(), 1u);
}

TEST(ResourceMonitor, CpuQueueRanksPerCoreSpeedThenUtilization) {
  ResourceMonitor rm;
  rm.record(metrics(0, 1.0, 32, 0.1, 1.0 * kGiB));  // slow cores, idle
  rm.record(metrics(1, 3.5, 8, 0.9, 1.0 * kGiB));   // fast cores, busy
  rm.record(metrics(2, 3.5, 8, 0.1, 1.0 * kGiB));   // fast cores, idle
  auto ranked = rm.ranked(ResourceKind::kCpu, nullptr);
  EXPECT_EQ(ranked, (std::vector<NodeId>{2, 1, 0}));
}

TEST(ResourceMonitor, MemoryQueueRanksFreeMemory) {
  ResourceMonitor rm;
  rm.record(metrics(0, 1.0, 8, 0.0, 2.0 * kGiB));
  rm.record(metrics(1, 1.0, 8, 0.0, 60.0 * kGiB));
  auto ranked = rm.ranked(ResourceKind::kMemory, nullptr);
  EXPECT_EQ(ranked.front(), 1);
}

TEST(ResourceMonitor, DiskQueueRanksSsdFirst) {
  ResourceMonitor rm;
  rm.record(metrics(0, 1.0, 8, 0.0, 1.0 * kGiB, /*ssd=*/false));
  rm.record(metrics(1, 1.0, 8, 0.0, 1.0 * kGiB, /*ssd=*/true));
  auto ranked = rm.ranked(ResourceKind::kDisk, nullptr);
  EXPECT_EQ(ranked.front(), 1);
}

TEST(ResourceMonitor, GpuQueueRanksIdleDevices) {
  ResourceMonitor rm;
  rm.record(metrics(0, 1.0, 8, 0.0, 1.0 * kGiB, false, 0, 1));
  rm.record(metrics(1, 1.0, 8, 0.0, 1.0 * kGiB, false, 1, 1));
  auto ranked = rm.ranked(ResourceKind::kGpu, nullptr);
  EXPECT_EQ(ranked.front(), 1);
}

TEST(ResourceMonitor, AdmitFilterApplies) {
  ResourceMonitor rm;
  for (NodeId i = 0; i < 5; ++i) rm.record(metrics(i, 1.0, 8, 0.0, 1.0 * kGiB));
  auto ranked =
      rm.ranked(ResourceKind::kCpu, [](const NodeMetrics& m) { return m.node % 2 == 0; });
  EXPECT_EQ(ranked.size(), 3u);
  for (NodeId id : ranked) EXPECT_EQ(id % 2, 0);
}

TEST(ResourceMonitor, DeterministicTieBreakById) {
  ResourceMonitor rm;
  for (NodeId i = 4; i >= 0; --i) rm.record(metrics(i, 1.0, 8, 0.5, 1.0 * kGiB));
  auto ranked = rm.ranked(ResourceKind::kCpu, nullptr);
  EXPECT_EQ(ranked, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(ResourceMonitor, ClearForgets) {
  ResourceMonitor rm;
  rm.record(metrics(0, 1.0, 8, 0.0, 1.0 * kGiB));
  rm.clear();
  EXPECT_EQ(rm.tracked_nodes(), 0u);
  EXPECT_TRUE(rm.ranked(ResourceKind::kCpu, nullptr).empty());
}

}  // namespace
}  // namespace rupam
