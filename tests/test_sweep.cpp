// Parallel sweep engine: grid indexing and JSON round-trip, pinned seed
// derivation (the determinism contract), aggregation math against
// hand-computed values, and the orchestrator's concurrency guarantees —
// full grid coverage, byte-identical matrices at any thread count, error
// isolation, cancellation, and a many-cells-few-workers churn.
//
// Every suite name starts with "Sweep" so CI can run exactly this wall
// under ThreadSanitizer with `ctest -R '^Sweep'`.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "sweep/orchestrator.hpp"
#include "sweep/sweep_spec.hpp"
#include "sweep/work_queue.hpp"

namespace rupam {
namespace {

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.base_seed = 1;
  spec.replications = 2;
  spec.schedulers = {SchedulerKind::kSpark, SchedulerKind::kRupam};
  spec.fleet_sizes = {12, 6};
  spec.arrival_rates = {0.05, 0.2};
  spec.fault_plans = {std::string(), "crash@40:node=1:down=30"};
  spec.duration = 60.0;
  return spec;
}

/// Deterministic fake runner: metrics are pure functions of the seed, so
/// matrices built from it must be byte-identical at any thread count.
RunResult fake_run(const SweepSpec&, const CellCoord&, int replication, std::uint64_t seed) {
  RunResult r;
  r.ok = true;
  r.seed = seed;
  r.replication = replication;
  r.makespan = static_cast<double>(seed % 1000);
  r.mean_jct = static_cast<double>(seed % 100);
  r.p50_jct = static_cast<double>(seed % 50);
  r.p95_jct = static_cast<double>(seed % 200);
  r.avg_cpu_util = static_cast<double>(seed % 97) / 97.0;
  r.apps = 3;
  r.jobs = 9;
  return r;
}

// ---------------------------------------------------------------- grid --

TEST(SweepSpec, CellIndexIsRowMajorAndRoundTrips) {
  SweepSpec spec = tiny_spec();
  ASSERT_EQ(spec.cell_count(), 16u);
  ASSERT_EQ(spec.total_runs(), 32u);
  // Row-major: fault innermost, then rate, fleet, scheduler outermost.
  EXPECT_EQ(spec.cell_index({0, 0, 0, 0}), 0u);
  EXPECT_EQ(spec.cell_index({0, 0, 0, 1}), 1u);
  EXPECT_EQ(spec.cell_index({0, 0, 1, 0}), 2u);
  EXPECT_EQ(spec.cell_index({0, 1, 0, 0}), 4u);
  EXPECT_EQ(spec.cell_index({1, 0, 0, 0}), 8u);
  for (std::size_t i = 0; i < spec.cell_count(); ++i) {
    CellCoord c = spec.cell_at(i);
    EXPECT_EQ(spec.cell_index(c), i);
    EXPECT_LT(c.scheduler, spec.schedulers.size());
    EXPECT_LT(c.fleet, spec.fleet_sizes.size());
    EXPECT_LT(c.rate, spec.arrival_rates.size());
    EXPECT_LT(c.fault, spec.fault_plans.size());
  }
}

TEST(SweepSpec, ValidateRejectsBadFields) {
  SweepSpec spec;
  spec.replications = 0;
  EXPECT_THROW(spec.validate(), std::runtime_error);
  spec = SweepSpec{};
  spec.arrival_rates = {0.0};
  EXPECT_THROW(spec.validate(), std::runtime_error);
  spec = SweepSpec{};
  spec.fleet_sizes = {2};  // below the generator's one-node-per-class floor
  EXPECT_THROW(spec.validate(), std::runtime_error);
  spec = SweepSpec{};
  spec.fault_plans = {"bogus@x"};
  EXPECT_THROW(spec.validate(), std::runtime_error);
  spec = SweepSpec{};
  spec.mix = {"NotAWorkload"};
  EXPECT_THROW(spec.validate(), std::runtime_error);
  EXPECT_NO_THROW(SweepSpec{}.validate());
}

TEST(SweepSpec, JsonRoundTripPreservesEveryField) {
  SweepSpec spec = tiny_spec();
  spec.name = "rt";
  spec.base_seed = 99;
  spec.tenants = 3;
  spec.pool_policy = PoolPolicy::kFair;
  spec.mix = {"TeraSort", "KMeans"};
  spec.iterations_override = 2;
  spec.max_apps = 7;
  spec.sample_utilization = false;

  SweepSpec back = parse_sweep_json(sweep_to_json(spec));
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.base_seed, spec.base_seed);
  EXPECT_EQ(back.replications, spec.replications);
  EXPECT_EQ(back.schedulers, spec.schedulers);
  EXPECT_EQ(back.fleet_sizes, spec.fleet_sizes);
  EXPECT_EQ(back.arrival_rates, spec.arrival_rates);
  EXPECT_EQ(back.fault_plans, spec.fault_plans);
  EXPECT_EQ(back.duration, spec.duration);
  EXPECT_EQ(back.tenants, spec.tenants);
  EXPECT_EQ(back.pool_policy, spec.pool_policy);
  EXPECT_EQ(back.mix, spec.mix);
  EXPECT_EQ(back.iterations_override, spec.iterations_override);
  EXPECT_EQ(back.max_apps, spec.max_apps);
  EXPECT_EQ(back.sample_utilization, spec.sample_utilization);
}

TEST(SweepSpec, ParserRejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(parse_sweep_json(R"({"typo_key": 1})"), std::runtime_error);
  EXPECT_THROW(parse_sweep_json(R"({"schedulers": ["klingon"]})"), std::runtime_error);
  EXPECT_THROW(parse_sweep_json(R"({"pool_policy": "lifo"})"), std::runtime_error);
  EXPECT_THROW(parse_sweep_json(R"({"replications": 2.5})"), std::runtime_error);
  EXPECT_THROW(parse_sweep_json(R"({"replications": 0})"), std::runtime_error);
  EXPECT_THROW(parse_sweep_json(R"([1, 2])"), std::runtime_error);
}

// ---------------------------------------------------------------- seeds --

TEST(SweepSeeds, PinnedDerivations) {
  // The determinism contract: these values may never change, or every
  // recorded sweep (and the golden matrices below) silently reseeds.
  EXPECT_EQ(derive_run_seed(1, 0, 0, 0, 0, 0), 18001451631349089097ULL);
  EXPECT_EQ(derive_run_seed(1, 0, 0, 0, 0, 1), 10045271515754366481ULL);
  EXPECT_EQ(derive_run_seed(1, 1, 0, 0, 0, 0), 11479464008264693683ULL);
  EXPECT_EQ(derive_run_seed(1, 0, 1, 0, 0, 0), 11223904764730650920ULL);
  EXPECT_EQ(derive_run_seed(7, 0, 0, 0, 0, 0), 3751896381585963713ULL);
  EXPECT_EQ(derive_run_seed(42, 1, 2, 3, 4, 5), 13056805346655761088ULL);
  EXPECT_EQ(sweep_mix64(0), 16294208416658607535ULL);
}

TEST(SweepSeeds, DistinctAcrossGridAndReplications) {
  SweepSpec spec = tiny_spec();
  spec.replications = 5;
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < spec.cell_count(); ++i) {
    for (int rep = 0; rep < spec.replications; ++rep) {
      std::uint64_t s = derive_run_seed(spec, spec.cell_at(i), rep);
      EXPECT_NE(s, 0u);
      EXPECT_TRUE(seen.insert(s).second) << "seed collision at cell " << i << " rep " << rep;
    }
  }
  // Per-round absorption: swapping values across adjacent axes must not
  // collide the way xor-of-indices would.
  EXPECT_NE(derive_run_seed(1, 1, 0, 0, 0, 0), derive_run_seed(1, 0, 1, 0, 0, 0));
  EXPECT_NE(derive_run_seed(1, 0, 0, 1, 0, 0), derive_run_seed(1, 0, 0, 0, 1, 0));
  // And a different base seed re-keys the whole grid.
  EXPECT_NE(derive_run_seed(1, 0, 0, 0, 0, 0), derive_run_seed(2, 0, 0, 0, 0, 0));
}

// ----------------------------------------------------------- aggregates --

TEST(SweepAggregate, MatchesHandComputedCi) {
  // {2, 4, 9}: mean 5, sample variance ((-3)^2 + (-1)^2 + 4^2)/2 = 13,
  // ci95 = t(df=2) * s / sqrt(3) = 4.303 * sqrt(13) / sqrt(3).
  MetricAggregate agg = aggregate_metric({2.0, 4.0, 9.0});
  EXPECT_EQ(agg.n, 3u);
  EXPECT_DOUBLE_EQ(agg.mean, 5.0);
  EXPECT_NEAR(agg.ci95, 4.303 * std::sqrt(13.0 / 3.0), 1e-9);
  EXPECT_DOUBLE_EQ(agg.min, 2.0);
  EXPECT_DOUBLE_EQ(agg.max, 9.0);
}

TEST(SweepAggregate, DegenerateSamples) {
  MetricAggregate empty = aggregate_metric({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_EQ(empty.mean, 0.0);
  EXPECT_EQ(empty.ci95, 0.0);

  MetricAggregate one = aggregate_metric({3.5});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 3.5);
  EXPECT_EQ(one.ci95, 0.0);  // no CI from a single sample
  EXPECT_DOUBLE_EQ(one.min, 3.5);
  EXPECT_DOUBLE_EQ(one.max, 3.5);
}

TEST(SweepAggregate, FailedRunsAreExcluded) {
  CellResult cell;
  cell.reps.resize(3);
  cell.reps[0] = fake_run(SweepSpec{}, CellCoord{}, 0, 100);
  cell.reps[1].ok = false;
  cell.reps[1].error = "boom";
  cell.reps[2] = fake_run(SweepSpec{}, CellCoord{}, 2, 300);
  cell.aggregate();
  EXPECT_EQ(cell.failed, 1u);
  EXPECT_EQ(cell.makespan.n, 2u);
  EXPECT_DOUBLE_EQ(cell.makespan.mean, (100.0 + 300.0) / 2.0);
}

// --------------------------------------------------------- orchestrator --

TEST(SweepOrchestrator, CoversEveryCellAndReplicationExactlyOnce) {
  SweepSpec spec = tiny_spec();
  spec.replications = 3;
  std::mutex mu;
  std::set<std::pair<std::size_t, int>> calls;
  SweepOptions opts;
  opts.threads = 4;
  opts.runner = [&](const SweepSpec& s, const CellCoord& c, int rep, std::uint64_t seed) {
    EXPECT_EQ(seed, derive_run_seed(s, c, rep));
    {
      std::lock_guard<std::mutex> lock(mu);
      EXPECT_TRUE(calls.insert({s.cell_index(c), rep}).second);
    }
    return fake_run(s, c, rep, seed);
  };
  SweepMatrix matrix = run_sweep(spec, opts);
  EXPECT_EQ(calls.size(), spec.total_runs());
  ASSERT_EQ(matrix.cells.size(), spec.cell_count());
  for (std::size_t i = 0; i < matrix.cells.size(); ++i) {
    EXPECT_EQ(spec.cell_index(matrix.cells[i].coord), i);
    ASSERT_EQ(matrix.cells[i].reps.size(), 3u);
    for (int rep = 0; rep < 3; ++rep) {
      const RunResult& r = matrix.cells[i].reps[static_cast<std::size_t>(rep)];
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.replication, rep);
      EXPECT_EQ(r.seed, derive_run_seed(spec, matrix.cells[i].coord, rep));
    }
  }
  EXPECT_EQ(matrix.failed_runs(), 0u);
}

TEST(SweepOrchestrator, MatrixJsonIsByteIdenticalAcrossThreadCounts) {
  SweepSpec spec = tiny_spec();
  spec.replications = 3;
  std::string baseline;
  for (int threads : {1, 2, 4, 8}) {
    SweepOptions opts;
    opts.threads = threads;
    opts.runner = fake_run;
    std::string json = run_sweep(spec, opts).to_json();
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "matrix diverged at " << threads << " threads";
    }
  }
  EXPECT_NE(baseline.find("\"total_runs\": 48"), std::string::npos);
}

TEST(SweepOrchestrator, ProgressIsMonotoneAndSerialized) {
  SweepSpec spec = tiny_spec();
  std::size_t last = 0;
  std::size_t calls = 0;
  SweepOptions opts;
  opts.threads = 4;
  opts.runner = fake_run;
  opts.on_progress = [&](std::size_t done, std::size_t total) {
    // The orchestrator serializes progress callbacks, so plain reads and
    // writes here must be safe and `done` strictly increasing.
    EXPECT_EQ(done, last + 1);
    EXPECT_EQ(total, spec.total_runs());
    last = done;
    ++calls;
  };
  run_sweep(spec, opts);
  EXPECT_EQ(calls, spec.total_runs());
}

TEST(SweepOrchestrator, ThrowingCellBecomesErrorEntryNotACrash) {
  SweepSpec spec = tiny_spec();
  spec.replications = 2;
  SweepOptions opts;
  opts.threads = 4;
  opts.runner = [](const SweepSpec& s, const CellCoord& c, int rep, std::uint64_t seed) {
    if (s.cell_index(c) == 5 && rep == 1) throw std::runtime_error("injected failure");
    return fake_run(s, c, rep, seed);
  };
  SweepMatrix matrix = run_sweep(spec, opts);
  EXPECT_EQ(matrix.failed_runs(), 1u);
  const RunResult& bad = matrix.cells[5].reps[1];
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, "injected failure");
  EXPECT_EQ(bad.seed, derive_run_seed(spec, matrix.cells[5].coord, 1));
  // The failed run is excluded from the aggregate but keeps its slot.
  EXPECT_EQ(matrix.cells[5].failed, 1u);
  EXPECT_EQ(matrix.cells[5].makespan.n, 1u);
  EXPECT_EQ(matrix.total_runs(), spec.total_runs());
  // And the matrix still serializes (with the error recorded).
  EXPECT_NE(matrix.to_json().find("injected failure"), std::string::npos);
}

TEST(SweepOrchestrator, ControllerStopDrainsRemainingRunsAsCancelled) {
  SweepSpec spec = tiny_spec();
  spec.replications = 4;  // 64 runs, 2 workers
  SweepController controller;
  std::atomic<int> executed{0};
  SweepOptions opts;
  opts.threads = 2;
  opts.controller = &controller;
  opts.runner = [&](const SweepSpec& s, const CellCoord& c, int rep, std::uint64_t seed) {
    if (executed.fetch_add(1) + 1 >= 6) controller.request_stop();
    return fake_run(s, c, rep, seed);
  };
  SweepMatrix matrix = run_sweep(spec, opts);
  std::size_t ok = 0, cancelled = 0;
  for (const CellResult& cell : matrix.cells) {
    for (const RunResult& r : cell.reps) {
      if (r.ok) {
        ++ok;
      } else {
        EXPECT_EQ(r.error, "cancelled");
        EXPECT_NE(r.seed, 0u);  // slot keeps its derived seed for resumption
        ++cancelled;
      }
    }
  }
  EXPECT_GE(ok, 6u);
  EXPECT_GT(cancelled, 0u);
  EXPECT_EQ(ok + cancelled, spec.total_runs());
  EXPECT_EQ(matrix.failed_runs(), cancelled);
}

TEST(SweepOrchestrator, DegenerateGridsReturnEmptyMatrices) {
  SweepSpec spec = tiny_spec();
  spec.schedulers.clear();
  SweepMatrix matrix = run_sweep(spec);
  EXPECT_EQ(matrix.cells.size(), 0u);
  EXPECT_EQ(matrix.total_runs(), 0u);
  EXPECT_NE(matrix.to_json().find("\"cells\": []"), std::string::npos);

  spec = tiny_spec();
  spec.arrival_rates.clear();
  EXPECT_EQ(run_sweep(spec).total_runs(), 0u);
}

TEST(SweepOrchestrator, RejectsInvalidSpecs) {
  SweepSpec spec = tiny_spec();
  spec.replications = 0;
  EXPECT_THROW(run_sweep(spec), std::runtime_error);
}

// --------------------------------------------------------------- stress --

TEST(SweepStress, ManyCellsFewWorkersWithInjectedFaults) {
  // 120 cells x 3 reps on 3 workers: heavy queue churn, with a
  // deterministic subset of runs failing. The matrix must stay complete,
  // correctly slotted, and byte-identical to a single-threaded pass.
  SweepSpec spec;
  spec.replications = 3;
  spec.schedulers = {SchedulerKind::kSpark, SchedulerKind::kRupam, SchedulerKind::kFifo};
  spec.fleet_sizes = {12, 6, 24, 48, 96};
  spec.arrival_rates = {0.05, 0.1, 0.2, 0.4};
  spec.fault_plans = {std::string(), "crash@40:node=1:down=30"};
  ASSERT_EQ(spec.cell_count(), 120u);

  auto churn_runner = [](const SweepSpec& s, const CellCoord& c, int rep, std::uint64_t seed) {
    if (seed % 7 == 0) throw std::runtime_error("seeded fault");
    return fake_run(s, c, rep, seed);
  };
  SweepOptions fast;
  fast.threads = 3;
  fast.runner = churn_runner;
  SweepMatrix a = run_sweep(spec, fast);

  SweepOptions serial;
  serial.threads = 1;
  serial.runner = churn_runner;
  SweepMatrix b = run_sweep(spec, serial);

  EXPECT_EQ(a.total_runs(), 360u);
  EXPECT_EQ(a.failed_runs(), b.failed_runs());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(SweepStress, WorkQueueDrainsUnderContention) {
  WorkQueue<int> queue;
  constexpr int kItems = 10000;
  for (int i = 0; i < kItems; ++i) queue.push(i);
  queue.close();
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&] {
      int item = 0;
      while (queue.pop(item)) {
        sum.fetch_add(item, std::memory_order_relaxed);
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(popped.load(), kItems);
  EXPECT_EQ(sum.load(), static_cast<long long>(kItems) * (kItems - 1) / 2);
  EXPECT_EQ(queue.size(), 0u);
  int leftover = 0;
  EXPECT_FALSE(queue.pop(leftover));  // closed + drained stays false forever
  queue.push(99);                     // pushes after close are dropped
  EXPECT_EQ(queue.size(), 0u);
}

// ------------------------------------------------------------ real runs --

TEST(SweepRealRun, TinyCellIsDeterministicAndPopulated) {
  // One real simulation per run (kept tiny): the production runner must be
  // repeatable for identical (spec, cell, rep) and fill every metric.
  SweepSpec spec;
  spec.base_seed = 7;
  spec.replications = 1;
  spec.schedulers = {SchedulerKind::kRupam};
  spec.fleet_sizes = {12};
  spec.arrival_rates = {0.1};
  spec.fault_plans = {std::string()};
  spec.duration = 60.0;
  spec.mix = {"KMeans"};
  spec.max_apps = 1;

  CellCoord cell{0, 0, 0, 0};
  std::uint64_t seed = derive_run_seed(spec, cell, 0);
  RunResult r1 = run_sweep_cell(spec, cell, 0, seed);
  RunResult r2 = run_sweep_cell(spec, cell, 0, seed);
  ASSERT_TRUE(r1.ok);
  EXPECT_EQ(r1.apps, 1u);
  EXPECT_GT(r1.jobs, 0u);
  EXPECT_GT(r1.makespan, 0.0);
  EXPECT_GT(r1.mean_jct, 0.0);
  EXPECT_GT(r1.avg_cpu_util, 0.0);
  EXPECT_GT(r1.kernel.events_executed, 0u);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_DOUBLE_EQ(r1.mean_jct, r2.mean_jct);
  EXPECT_EQ(r1.kernel.events_executed, r2.kernel.events_executed);
}

}  // namespace
}  // namespace rupam
