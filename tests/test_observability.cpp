// Tests for the obs/ layer: MetricsRegistry exposition, the dispatch
// decision audit across all four schedulers, task-phase span recording +
// Perfetto export, the overhead profiler, and the CLI flags that expose
// them.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <regex>
#include <sstream>

#include "app/cli.hpp"
#include "app/simulation.hpp"
#include "cluster/presets.hpp"
#include "faults/fault_plan.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/overhead.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

// ---------------------------------------------------------------- helpers

Application one_stage_app(std::vector<TaskSpec> tasks, const std::string& name = "s0",
                          StageId stage_id = 0) {
  Application app;
  Job job;
  job.id = 0;
  job.name = "job";
  Stage stage;
  stage.id = stage_id;
  stage.name = name;
  stage.tasks.stage = stage_id;
  stage.tasks.stage_name = name;
  for (auto& t : tasks) {
    t.stage = stage_id;
    t.stage_name = name;
    stage.tasks.tasks.push_back(t);
  }
  job.stages.push_back(std::move(stage));
  app.jobs.push_back(std::move(job));
  return app;
}

/// Map stage (0) feeding a reduce stage (1) through a shuffle — the
/// smallest app that exercises shuffle-read spans and flow arrows.
Application two_stage_app(int maps = 4, int reduces = 4) {
  Application app;
  Job job;
  job.id = 0;
  job.name = "job";
  Stage map;
  map.id = 0;
  map.name = "map";
  map.is_shuffle_map = true;
  map.tasks.stage = 0;
  map.tasks.stage_name = "map";
  map.tasks.is_shuffle_map = true;
  for (int i = 0; i < maps; ++i) {
    TaskSpec t;
    t.id = i;
    t.stage = 0;
    t.stage_name = "map";
    t.is_shuffle_map = true;
    t.partition = i;
    t.compute = 2.0;
    t.shuffle_write_bytes = 64.0 * kMiB;
    map.tasks.tasks.push_back(t);
  }
  Stage reduce;
  reduce.id = 1;
  reduce.name = "reduce";
  reduce.is_shuffle_map = false;
  reduce.parents = {0};
  reduce.tasks.stage = 1;
  reduce.tasks.stage_name = "reduce";
  reduce.tasks.is_shuffle_map = false;
  for (int i = 0; i < reduces; ++i) {
    TaskSpec t;
    t.id = 100 + i;
    t.stage = 1;
    t.stage_name = "reduce";
    t.partition = i;
    t.compute = 1.0;
    t.is_shuffle_map = false;
    t.shuffle_read_bytes = 32.0 * kMiB;
    t.shuffle_remote_fraction = 0.5;
    reduce.tasks.tasks.push_back(t);
  }
  job.stages.push_back(std::move(map));
  job.stages.push_back(std::move(reduce));
  app.jobs.push_back(std::move(job));
  return app;
}

std::size_t count_substr(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// ------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistry, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c_total", {{"k", "v"}}, "help");
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same (name, labels) returns the same series.
  EXPECT_EQ(&reg.counter("c_total", {{"k", "v"}}), &c);
  EXPECT_NE(&reg.counter("c_total", {{"k", "w"}}), &c);

  Gauge& g = reg.gauge("g");
  g.set(4.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);

  Histogram& h = reg.histogram("h_seconds", {1.0, 5.0});
  h.observe(0.5);
  h.observe(1.0);  // le="1" is inclusive
  h.observe(3.0);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  auto cum = h.cumulative_counts();
  ASSERT_EQ(cum.size(), 3u);  // 1, 5, +Inf
  EXPECT_EQ(cum[0], 2u);
  EXPECT_EQ(cum[1], 3u);
  EXPECT_EQ(cum[2], 4u);
  EXPECT_EQ(reg.series_count(), 4u);
}

TEST(MetricsRegistry, HistogramRejectsMalformedBounds) {
  // Unsorted, duplicate, and non-finite bucket bounds would silently
  // misroute observations; construction must refuse them up front.
  EXPECT_THROW(Histogram({5.0, 1.0}), std::invalid_argument);           // unsorted
  EXPECT_THROW(Histogram({1.0, 1.0, 5.0}), std::invalid_argument);      // duplicate
  EXPECT_THROW(Histogram({1.0, std::numeric_limits<double>::infinity()}),
               std::invalid_argument);                                  // +Inf is implicit
  EXPECT_THROW(Histogram({std::nan("")}), std::invalid_argument);       // NaN
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad_seconds", {2.0, 2.0}), std::invalid_argument);
  // Valid ascending bounds (including an empty set — one +Inf bucket) pass.
  EXPECT_NO_THROW(Histogram({}));
  EXPECT_NO_THROW(Histogram({-1.0, 0.0, 2.5}));
}

TEST(MetricsRegistry, RejectsMalformedNamesAndTypeConflicts) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("1starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space"), std::invalid_argument);
  EXPECT_THROW(reg.counter("ok", {{"bad-label", "v"}}), std::invalid_argument);
  reg.counter("taken");
  EXPECT_THROW(reg.gauge("taken"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("taken", {1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, PrometheusExpositionIsWellFormed) {
  MetricsRegistry reg;
  reg.counter("jobs_total", {}, "Jobs").inc(2.0);
  reg.gauge("busy", {{"node", "3"}, {"res", "cpu"}}, "Busy fraction").set(0.25);
  reg.histogram("delay_seconds", {0.1, 1.0}, {}, "Delay").observe(0.5);
  std::ostringstream os;
  reg.write_prometheus(os);
  std::string text = os.str();

  EXPECT_NE(text.find("# HELP jobs_total Jobs"), std::string::npos);
  EXPECT_NE(text.find("# TYPE jobs_total counter"), std::string::npos);
  EXPECT_NE(text.find("jobs_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE busy gauge"), std::string::npos);
  EXPECT_NE(text.find("busy{node=\"3\",res=\"cpu\"} 0.25"), std::string::npos);
  EXPECT_NE(text.find("# TYPE delay_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("delay_seconds_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("delay_seconds_count 1"), std::string::npos);

  // Every line is a comment or `name{labels} value` / `name value`.
  std::regex sample(R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [^ ]+$)");
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_TRUE(std::regex_match(line, sample)) << "bad exposition line: " << line;
  }
}

TEST(MetricsRegistry, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("c_total", {{"detail", "say \"hi\"\nback\\slash"}}).inc();
  std::ostringstream os;
  reg.write_prometheus(os);
  EXPECT_NE(os.str().find(R"(detail="say \"hi\"\nback\\slash")"), std::string::npos);
}

TEST(MetricsRegistry, JsonExposition) {
  MetricsRegistry reg;
  reg.counter("jobs_total", {}, "Jobs").inc(2.0);
  reg.histogram("delay_seconds", {0.1, 1.0}, {}, "Delay").observe(0.5);
  std::ostringstream os;
  reg.write_json(os);
  std::string text = os.str();
  EXPECT_EQ(text.front(), '{');
  while (!text.empty() && text.back() == '\n') text.pop_back();
  EXPECT_EQ(text.back(), '}');
  EXPECT_NE(text.find("\"jobs_total\""), std::string::npos);
  EXPECT_NE(text.find("\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"delay_seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"histogram\""), std::string::npos);
}

TEST(MetricsRegistry, EndOfRunSimulationMetrics) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.enable_metrics = true;
  Simulation sim(cfg);
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 24; ++i) {
    TaskSpec t;
    t.id = i;
    t.partition = static_cast<int>(i);
    t.compute = 2.0;
    tasks.push_back(t);
  }
  sim.run(one_stage_app(std::move(tasks)));
  ASSERT_NE(sim.metrics(), nullptr);
  std::ostringstream os;
  sim.metrics()->write_prometheus(os);
  std::string text = os.str();
  EXPECT_NE(text.find("rupam_sim_jobs_completed_total 1"), std::string::npos);
  EXPECT_NE(text.find("rupam_sim_stages_completed_total 1"), std::string::npos);
  EXPECT_NE(text.find("rupam_sim_tasks_launched_total"), std::string::npos);
  EXPECT_NE(text.find("rupam_sim_node_busy_fraction"), std::string::npos);
  EXPECT_NE(text.find("rupam_sim_task_runtime_seconds_bucket"), std::string::npos);
  // 24 launches across the locality label sets.
  double launched = 0.0;
  MetricsRegistry& reg = *sim.metrics();
  for (int l = 0; l < kNumLocalityLevels; ++l) {
    for (int s = 0; s < 2; ++s) {
      launched += reg
                      .counter("rupam_sim_tasks_launched_total",
                               {{"locality", std::string(to_string(static_cast<Locality>(l)))},
                                {"speculative", s != 0 ? "true" : "false"}})
                      .value();
    }
  }
  EXPECT_GE(launched, 24.0);
}

// ----------------------------------------------------------------- Audit

TEST(DecisionAudit, CsvEscapesAndJoinsCandidates) {
  DecisionAudit audit;
  DispatchDecision d;
  d.time = 1.25;
  d.scheduler = "RUPAM";
  d.stage = 3;
  d.task = 7;
  d.node = 2;
  d.queue = ResourceKind::kNetwork;
  d.reason = "rupam_heap_match";
  d.detail = "tag=I/O, queue=\"NET\"";  // comma + quotes must be escaped
  d.candidates_considered = 2;
  d.candidate_nodes = {2, 5};
  audit.record(d);
  std::ostringstream os;
  audit.write_csv(os);
  std::string text = os.str();
  EXPECT_NE(text.find("time,scheduler,stage,task,attempt,node,locality,pool,speculative,"
                      "queue,reason,candidates_considered,candidate_nodes,detail"),
            std::string::npos);
  EXPECT_NE(text.find("\"tag=I/O, queue=\"\"NET\"\"\""), std::string::npos);
  EXPECT_NE(text.find("2;5"), std::string::npos);

  std::ostringstream js;
  audit.write_json(js);
  EXPECT_EQ(js.str().front(), '[');
  EXPECT_NE(js.str().find("\"rupam_heap_match\""), std::string::npos);
}

// Count RFC 4180 records: newlines inside quoted fields do not end a row.
std::size_t csv_record_count(const std::string& text) {
  std::size_t records = 0;
  bool quoted = false;
  for (char c : text) {
    if (c == '"') quoted = !quoted;
    if (c == '\n' && !quoted) ++records;
  }
  return records;
}

TEST(DecisionAudit, ElasticFleetExportSurvivesDecommission) {
  // A spot revocation mid-run decommissions a node earlier decisions placed
  // work on. The export must stay valid: those records keep their (now
  // departed) node id, the CSV row count matches the audit size, and a
  // spot-drain reason carrying every RFC 4180 special round-trips escaped.
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.enable_audit = true;
  cfg.enable_trace = true;
  cfg.faults = parse_fault_spec("spot@14:node=2:notice=4");
  Simulation sim(cfg);
  const WorkloadPreset& preset = workload_preset("TeraSort");
  WorkloadParams params;
  params.input_gb = preset.input_gb / 16.0;
  params.iterations = 1;
  params.seed = 5;
  params.placement_weights = hdfs_placement_weights(sim.cluster());
  sim.run(preset.factory(sim.cluster().node_ids(), params));

  ASSERT_EQ(sim.cluster().lifecycle(2), NodeLifecycle::kDecommissioned);
  ASSERT_NE(sim.audit(), nullptr);
  DecisionAudit audit = *sim.audit();  // copy; then append an escape-bait row
  std::size_t on_revoked = 0;
  for (const DispatchDecision& d : audit.decisions()) {
    if (d.node == 2) ++on_revoked;
  }
  EXPECT_GT(on_revoked, 0u) << "no decision ever placed work on the revoked node";

  DispatchDecision drain;
  drain.time = 18.0;
  drain.scheduler = "RUPAM";
  drain.stage = 9;
  drain.task = 1;
  drain.node = 2;
  drain.reason = "spot_drain, notice=\"4s\"";
  drain.detail = "relaunch from node 2,\nqueue=CPU";
  drain.candidates_considered = 1;
  drain.candidate_nodes = {2};
  audit.record(drain);

  std::ostringstream os;
  audit.write_csv(os);
  const std::string text = os.str();
  // Header + one row per decision, even with the embedded newline.
  EXPECT_EQ(csv_record_count(text), audit.size() + 1);
  EXPECT_NE(text.find("\"spot_drain, notice=\"\"4s\"\"\""), std::string::npos);
  EXPECT_NE(text.find("\"relaunch from node 2,\nqueue=CPU\""), std::string::npos);

  std::ostringstream js;
  audit.write_json(js);
  EXPECT_NE(js.str().find("\"spot_drain, notice=\\\"4s\\\"\""), std::string::npos);
  EXPECT_NE(js.str().find("\\n"), std::string::npos);  // newline stays escaped
}

TEST(DecisionAudit, OneRecordPerLaunchForEveryScheduler) {
  for (SchedulerKind kind : {SchedulerKind::kFifo, SchedulerKind::kSpark,
                             SchedulerKind::kStageAware, SchedulerKind::kRupam}) {
    SimulationConfig cfg;
    cfg.scheduler = kind;
    cfg.enable_audit = true;
    Simulation sim(cfg);
    Application app = build_workload(workload_preset("GM"), sim.cluster().node_ids(), 1, 2,
                                     hdfs_placement_weights(sim.cluster()));
    sim.run(app);
    ASSERT_NE(sim.audit(), nullptr);
    EXPECT_EQ(sim.audit()->size(), sim.scheduler().launches())
        << "scheduler " << to_string(kind);
    for (const DispatchDecision& d : sim.audit()->decisions()) {
      EXPECT_FALSE(d.reason.empty());
      EXPECT_GE(d.node, 0);
      EXPECT_GE(d.candidates_considered, 1);
      EXPECT_EQ(d.scheduler, sim.scheduler().name());
    }
  }
}

TEST(DecisionAudit, RupamRecordsTagQueueAndHeapRank) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.enable_audit = true;
  Simulation sim(cfg);
  Application app = build_workload(workload_preset("GM"), sim.cluster().node_ids(), 1, 2,
                                   hdfs_placement_weights(sim.cluster()));
  sim.run(app);
  std::size_t heap_matches = 0;
  for (const DispatchDecision& d : sim.audit()->decisions()) {
    if (d.reason != "rupam_heap_match") continue;
    ++heap_matches;
    EXPECT_NE(d.detail.find("tag="), std::string::npos);
    EXPECT_NE(d.detail.find("queue="), std::string::npos);
    EXPECT_NE(d.detail.find("rank="), std::string::npos);
    EXPECT_FALSE(d.candidate_nodes.empty());
  }
  EXPECT_GT(heap_matches, 0u);
}

TEST(DecisionAudit, GpuTaskPlacedOnGpuNodeFromGpuQueue) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.enable_audit = true;
  cfg.nodes = {thor_spec(), stack_spec()};  // node 1 is the only GPU host
  Simulation sim(cfg);
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 4; ++i) {
    TaskSpec t;
    t.id = i;
    t.partition = static_cast<int>(i);
    t.compute = 30.0;
    t.gpu_accelerable = true;
    tasks.push_back(t);
  }
  sim.run(one_stage_app(std::move(tasks), "gpu_stage"));
  bool gpu_queue_on_gpu_node = false;
  for (const DispatchDecision& d : sim.audit()->decisions()) {
    if (d.queue == ResourceKind::kGpu) {
      EXPECT_EQ(d.node, 1) << "GPU-queue dispatch landed on a GPU-less node";
      gpu_queue_on_gpu_node = true;
    }
  }
  EXPECT_TRUE(gpu_queue_on_gpu_node);
}

TEST(DecisionAudit, SparkRecordsDelaySchedulingLevels) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.enable_audit = true;
  Simulation sim(cfg);
  Application app = build_workload(workload_preset("GM"), sim.cluster().node_ids(), 1, 2,
                                   hdfs_placement_weights(sim.cluster()));
  sim.run(app);
  std::size_t delay_records = 0;
  for (const DispatchDecision& d : sim.audit()->decisions()) {
    if (d.reason != "spark_delay_scheduling") continue;
    ++delay_records;
    EXPECT_NE(d.detail.find("allowed="), std::string::npos);
    EXPECT_NE(d.detail.find("taken="), std::string::npos);
  }
  EXPECT_GT(delay_records, 0u);
}

// ----------------------------------------------------------------- Spans

TEST(SpanTrace, RecordsPhasesForEveryAttempt) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.enable_spans = true;
  Simulation sim(cfg);
  sim.run(two_stage_app());
  SpanTrace* spans = sim.spans();
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->count(TaskPhase::kQueued), 8u);   // 4 maps + 4 reduces
  EXPECT_EQ(spans->count(TaskPhase::kCompute), 8u);
  EXPECT_EQ(spans->count(TaskPhase::kShuffleWrite), 4u);
  EXPECT_GT(spans->count(TaskPhase::kShuffleDiskRead) +
                spans->count(TaskPhase::kShuffleNetRead),
            0u);
  for (const PhaseSpan& s : spans->spans()) {
    EXPECT_LE(s.start, s.end);
    EXPECT_GE(s.node, 0);
  }
}

TEST(SpanTrace, PerfettoExportHasLanesSlicesAndBalancedFlows) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kSpark;
  cfg.enable_spans = true;
  Simulation sim(cfg);
  sim.run(two_stage_app());
  std::ostringstream os;
  sim.spans()->write_perfetto(os);
  std::string text = os.str();
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("process_name"), std::string::npos);   // per-node lanes
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);  // duration slices
  EXPECT_NE(text.find("\"cat\": \"attempt\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\": \"phase\""), std::string::npos);
  // Map → reduce flow arrows: starts and finishes must pair up.
  std::size_t flow_starts = count_substr(text, "\"ph\": \"s\"");
  std::size_t flow_ends = count_substr(text, "\"ph\": \"f\"");
  EXPECT_GT(flow_starts, 0u);
  EXPECT_EQ(flow_starts, flow_ends);
}

TEST(SpanTrace, DisabledByDefaultAndNeverPerturbsResult) {
  SimulationConfig base;
  base.scheduler = SchedulerKind::kRupam;
  Simulation plain(base);
  SimTime t_plain = plain.run(two_stage_app());
  EXPECT_EQ(plain.spans(), nullptr);

  SimulationConfig obs = base;
  obs.enable_spans = true;
  obs.enable_metrics = true;
  obs.enable_audit = true;
  Simulation instrumented(obs);
  SimTime t_obs = instrumented.run(two_stage_app());
  // Instrumentation must not change the simulated outcome at all.
  EXPECT_DOUBLE_EQ(t_plain, t_obs);
}

// -------------------------------------------------------------- Profiler

TEST(OverheadProfiler, CountsDecisionPathSections) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  Simulation sim(cfg);
  OverheadProfiler profiler;
  sim.set_profiler(&profiler);
  Application app = build_workload(workload_preset("GM"), sim.cluster().node_ids(), 1, 2,
                                   hdfs_placement_weights(sim.cluster()));
  sim.run(app);
  EXPECT_EQ(profiler.section(ProfileSection::kDispatch).count,
            static_cast<std::uint64_t>(sim.scheduler().dispatch_rounds()));
  EXPECT_GT(profiler.section(ProfileSection::kEnqueue).count, 0u);
  EXPECT_GT(profiler.section(ProfileSection::kHeartbeat).count, 0u);
  // RUPAM maintains its node heaps on every heartbeat and dispatch.
  EXPECT_GT(profiler.section(ProfileSection::kHeapMaintenance).count, 0u);
  profiler.reset();
  EXPECT_EQ(profiler.section(ProfileSection::kDispatch).count, 0u);
}

TEST(OverheadProfiler, NullScopeIsFree) {
  SectionStats before;
  {
    OverheadProfiler::Scope scope(nullptr, ProfileSection::kDispatch);
  }
  OverheadProfiler profiler;
  {
    OverheadProfiler::Scope scope(&profiler, ProfileSection::kEnqueue);
  }
  EXPECT_EQ(profiler.section(ProfileSection::kEnqueue).count, 1u);
  EXPECT_EQ(profiler.section(ProfileSection::kDispatch).count, before.count);
}

// ------------------------------------------------------------------- CLI

TEST(CliObservability, ParsesFlags) {
  std::ostringstream err;
  auto opts = parse_cli({"--metrics-out", "/tmp/m.prom", "--explain", "/tmp/a.csv",
                         "--trace-perfetto", "/tmp/p.json"},
                        err);
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->metrics_out, "/tmp/m.prom");
  EXPECT_EQ(opts->explain_out, "/tmp/a.csv");
  EXPECT_EQ(opts->trace_perfetto, "/tmp/p.json");
  EXPECT_NE(cli_usage().find("--metrics-out"), std::string::npos);
  EXPECT_NE(cli_usage().find("--explain"), std::string::npos);
  EXPECT_NE(cli_usage().find("--trace-perfetto"), std::string::npos);
}

TEST(CliObservability, WritesAllThreeExports) {
  std::string dir = ::testing::TempDir();
  std::string metrics_path = dir + "rupam_obs_metrics.prom";
  std::string explain_path = dir + "rupam_obs_audit.csv";
  std::string perfetto_path = dir + "rupam_obs_spans.json";
  CliOptions opts;
  opts.workload = "GM";
  opts.iterations = 2;
  opts.metrics_out = metrics_path;
  opts.explain_out = explain_path;
  opts.trace_perfetto = perfetto_path;
  std::ostringstream out, err;
  ASSERT_EQ(run_cli(opts, out, err), 0) << err.str();

  auto slurp = [](const std::string& path) {
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
  };
  std::string metrics = slurp(metrics_path);
  EXPECT_NE(metrics.find("# TYPE rupam_sim_tasks_launched_total counter"),
            std::string::npos);
  std::string audit = slurp(explain_path);
  EXPECT_NE(audit.find("time,scheduler,stage,task"), std::string::npos);
  EXPECT_NE(audit.find("rupam_"), std::string::npos);  // rupam_* reason tokens
  std::string spans = slurp(perfetto_path);
  EXPECT_NE(spans.find("\"traceEvents\""), std::string::npos);
  std::remove(metrics_path.c_str());
  std::remove(explain_path.c_str());
  std::remove(perfetto_path.c_str());
}

TEST(CliObservability, JsonVariantsBySuffix) {
  std::string dir = ::testing::TempDir();
  std::string metrics_path = dir + "rupam_obs_metrics.json";
  std::string explain_path = dir + "rupam_obs_audit.json";
  CliOptions opts;
  opts.workload = "GM";
  opts.iterations = 1;
  opts.scheduler = SchedulerKind::kFifo;
  opts.metrics_out = metrics_path;
  opts.explain_out = explain_path;
  std::ostringstream out, err;
  ASSERT_EQ(run_cli(opts, out, err), 0) << err.str();
  std::ifstream m(metrics_path), a(explain_path);
  std::string mfirst, afirst;
  std::getline(m, mfirst);
  std::getline(a, afirst);
  EXPECT_FALSE(mfirst.empty());
  EXPECT_EQ(mfirst[0], '{');
  EXPECT_FALSE(afirst.empty());
  EXPECT_EQ(afirst[0], '[');
  std::remove(metrics_path.c_str());
  std::remove(explain_path.c_str());
}

}  // namespace
}  // namespace rupam
