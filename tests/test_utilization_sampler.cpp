// Edge cases for UtilizationSampler: zero-length runs, horizons shorter
// than one sampling period, resampling alignment, and pause/resume rate
// accounting. The happy paths live in test_metrics.cpp.
#include <gtest/gtest.h>

#include "cluster/presets.hpp"
#include "metrics/utilization_sampler.hpp"

namespace rupam {
namespace {

TEST(UtilizationSamplerEdge, ZeroLengthRunYieldsEmptySeries) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId id = cluster.add_node(thor_spec());
  UtilizationSampler sampler(cluster, 1.0);
  sampler.start();
  sampler.stop();  // no simulated time elapsed
  EXPECT_TRUE(sampler.cpu_util(id).empty());
  EXPECT_DOUBLE_EQ(sampler.avg_cpu_util(), 0.0);
  EXPECT_DOUBLE_EQ(sampler.avg_net_rate(), 0.0);
  // Resampling an empty series still produces the requested grid, zeroed.
  auto series = sampler.cpu_series(0.0);
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].size(), 1u);
  EXPECT_DOUBLE_EQ(series[0][0], 0.0);
}

TEST(UtilizationSamplerEdge, HorizonShorterThanOnePeriod) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId id = cluster.add_node(thor_spec());
  UtilizationSampler sampler(cluster, 10.0);
  sampler.start();
  cluster.node(id).cpu().start(1000.0, 1.0, nullptr);
  sim.run(3.0);  // stops before the first sample at t=10
  sampler.stop();
  EXPECT_TRUE(sampler.cpu_util(id).empty());
  // A sub-period horizon gives exactly one (empty → zero) bucket.
  auto series = sampler.cpu_series(3.0);
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].size(), 1u);
  EXPECT_DOUBLE_EQ(series[0][0], 0.0);
}

TEST(UtilizationSamplerEdge, ResamplingAlignsSamplesToTheirBuckets) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId id = cluster.add_node(thor_spec());
  UtilizationSampler sampler(cluster, 1.0);
  sampler.start();
  cluster.node(id).cpu().start(1.0e6, 1.0, nullptr);  // busy for the whole run
  sim.run(4.5);  // samples at t = 1, 2, 3, 4
  sampler.stop();
  ASSERT_EQ(sampler.cpu_util(id).size(), 4u);
  auto series = sampler.cpu_series(4.0);
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].size(), 5u);  // buckets [0,1) .. [4,5)
  // No sample fell in [0,1): the bucket back-fills with zero.
  EXPECT_DOUBLE_EQ(series[0][0], 0.0);
  // Each later bucket holds exactly the sample taken at its left edge + 0.
  double busy = sampler.cpu_util(id).points().front().value;
  EXPECT_GT(busy, 0.0);
  for (std::size_t b = 1; b < series[0].size(); ++b) {
    EXPECT_DOUBLE_EQ(series[0][b], busy) << "bucket " << b;
  }
}

TEST(UtilizationSamplerEdge, RestartExcludesTrafficDuringThePause) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId id = cluster.add_node(thor_spec());
  UtilizationSampler sampler(cluster, 1.0);
  sampler.start();
  sim.schedule_at(3.5, [&] { sampler.stop(); });
  // A transfer that happens entirely inside the pause window.
  sim.schedule_at(4.0, [&] { cluster.node(id).net().start(gbit_per_s(0.1), 1.0, nullptr); });
  sim.schedule_at(6.0, [&] { sampler.start(); });
  sim.run(8.5);
  sampler.stop();
  // Samples at 1,2,3 then 7,8 — and none of them should see the paused
  // transfer as a rate spike, because start() re-bases the byte counters.
  EXPECT_EQ(sampler.net_rate(id).size(), 5u);
  for (const auto& p : sampler.net_rate(id).points()) {
    EXPECT_LT(p.value, gbit_per_s(0.01)) << "at t=" << p.time;
  }
}

TEST(UtilizationSamplerEdge, DoubleStartIsIdempotent) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId id = cluster.add_node(thor_spec());
  UtilizationSampler sampler(cluster, 1.0);
  sampler.start();
  sampler.start();  // must not double-schedule the sampling loop
  sim.run(3.5);
  sampler.stop();
  EXPECT_EQ(sampler.cpu_util(id).size(), 3u);
}

}  // namespace
}  // namespace rupam
