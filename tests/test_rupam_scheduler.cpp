// Integration tests for the RUPAM scheduler: memory guard, dynamic
// executor sizing, over-commit, GPU handling, learning across iterations,
// and straggler relocation.
#include <gtest/gtest.h>

#include <algorithm>

#include "app/simulation.hpp"
#include "cluster/presets.hpp"
#include "workloads/presets.hpp"

namespace rupam {
namespace {

Application one_stage_app(std::vector<TaskSpec> tasks, const std::string& name = "s0",
                          StageId stage_id = 0, JobId job_id = 0) {
  Application app;
  Job job;
  job.id = job_id;
  job.name = "job";
  Stage stage;
  stage.id = stage_id;
  stage.name = name;
  stage.tasks.stage = stage_id;
  stage.tasks.stage_name = name;
  for (auto& t : tasks) {
    t.stage = stage_id;
    t.stage_name = name;
    stage.tasks.tasks.push_back(t);
  }
  job.stages.push_back(std::move(stage));
  app.jobs.push_back(std::move(job));
  return app;
}

TaskSpec small_task(TaskId id, double compute = 2.0) {
  TaskSpec t;
  t.id = id;
  t.partition = static_cast<int>(id);
  t.compute = compute;
  t.peak_memory = 128.0 * kMiB;
  return t;
}

TEST(RupamScheduler, RunsAllTasksToCompletion) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  Simulation sim(cfg);
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 50; ++i) tasks.push_back(small_task(i));
  Application app = one_stage_app(std::move(tasks));
  EXPECT_GT(sim.run(app), 0.0);
  EXPECT_EQ(sim.scheduler().completed().size(), 50u);
}

TEST(RupamScheduler, DynamicExecutorSizing) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  Simulation sim(cfg);
  // Per-node heaps: node memory - 2 GiB (paper §III-C2).
  for (NodeId id : sim.cluster().node_ids()) {
    Bytes expected = sim.cluster().node(id).spec().memory - 2.0 * kGiB;
    EXPECT_DOUBLE_EQ(sim.executor(id).heap(), expected);
  }
}

TEST(RupamScheduler, MemoryGuardAvoidsOom) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  Simulation sim(cfg);
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 60; ++i) {
    TaskSpec t = small_task(i, 10.0);
    t.unmanaged_memory = 2.0 * kGiB;  // kills default Spark on thor nodes
    tasks.push_back(t);
  }
  Application app = one_stage_app(std::move(tasks));
  sim.run(app);
  EXPECT_EQ(sim.scheduler().completed().size(), 60u);
  EXPECT_EQ(sim.total_oom_kills(), 0u);
  EXPECT_EQ(sim.total_executor_losses(), 0u);
}

TEST(RupamScheduler, OverCommitOverlapsMismatchedTasks) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.nodes = {thor_spec()};  // one 8-core node
  cfg.nodes[0].name = "solo";
  Simulation sim(cfg);
  // 8 known CPU-bound tasks + 4 known network-bound tasks. With slot
  // scheduling only 8 run at once; over-commit runs the net tasks too.
  RupamScheduler* rupam = sim.rupam_scheduler();
  ASSERT_NE(rupam, nullptr);
  // Pre-teach the DB so classification is immediate.
  for (int p = 0; p < 8; ++p) {
    TaskMetrics m;
    m.compute_time = 50.0;
    rupam->db().update("cpu-stage", p, m, ResourceKind::kCpu);
  }
  for (int p = 0; p < 4; ++p) {
    TaskMetrics m;
    m.shuffle_read_time = 50.0;
    rupam->db().update("net-stage", p, m, ResourceKind::kNetwork);
  }
  Application app;
  Job job;
  job.id = 0;
  Stage cpu_stage;
  cpu_stage.id = 0;
  cpu_stage.name = "cpu-stage";
  cpu_stage.tasks.stage = 0;
  cpu_stage.tasks.stage_name = "cpu-stage";
  for (TaskId i = 0; i < 8; ++i) {
    TaskSpec t = small_task(i, 30.0);
    t.stage = 0;
    t.stage_name = "cpu-stage";
    cpu_stage.tasks.tasks.push_back(t);
  }
  Stage net_stage;
  net_stage.id = 1;
  net_stage.name = "net-stage";
  net_stage.tasks.stage = 1;
  net_stage.tasks.stage_name = "net-stage";
  for (TaskId i = 8; i < 12; ++i) {
    TaskSpec t = small_task(i, 0.1);
    t.stage = 1;
    t.stage_name = "net-stage";
    t.partition = static_cast<int>(i - 8);
    t.shuffle_read_bytes = 100.0 * kMiB;
    t.shuffle_remote_fraction = 1.0;
    net_stage.tasks.tasks.push_back(t);
  }
  job.stages = {cpu_stage, net_stage};
  app.jobs.push_back(job);

  sim.run(app);
  // The net tasks must have overlapped the CPU wave: their finish time is
  // far below the CPU wave length (30/3.5 ≈ 8.6s each, single wave).
  for (const auto& m : sim.scheduler().completed()) {
    if (m.stage == 1) {
      EXPECT_LT(m.finish_time, 9.0);
    }
  }
}

TEST(RupamScheduler, SlotSemanticsWhenOvercommitDisabled) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.rupam.overcommit = false;
  Simulation sim(cfg);
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 40; ++i) tasks.push_back(small_task(i));
  Application app = one_stage_app(std::move(tasks));
  sim.run(app);
  EXPECT_EQ(sim.scheduler().completed().size(), 40u);
}

TEST(RupamScheduler, LearnsAcrossIterations) {
  // Per-iteration windows must shrink as DB_task_char warms (Fig 6).
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  Simulation sim(cfg);
  Application app = build_workload(workload_preset("LR"), sim.cluster().node_ids(), 3, 6,
                                   hdfs_placement_weights(sim.cluster()));
  sim.run(app);
  // Gather per-gradient-stage windows in stage order.
  std::map<StageId, std::pair<SimTime, SimTime>> window;
  for (const auto& m : sim.scheduler().completed()) {
    if (m.stage_name != "lr-gradient") continue;
    auto [it, fresh] = window.try_emplace(m.stage, m.launch_time, m.finish_time);
    it->second.first = std::min(it->second.first, m.launch_time);
    it->second.second = std::max(it->second.second, m.finish_time);
  }
  ASSERT_GE(window.size(), 3u);
  std::vector<double> widths;
  for (const auto& [id, w] : window) widths.push_back(w.second - w.first);
  // Warm DB must make at least one later iteration clearly faster than
  // the cold first one (single-run widths fluctuate, so compare the best).
  double best_late = *std::min_element(widths.begin() + 1, widths.end());
  EXPECT_LT(best_late, widths.front() * 0.95);
}

TEST(RupamScheduler, GpuTasksReachDevices) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  Simulation sim(cfg);
  Application app = build_workload(workload_preset("KMeans"), sim.cluster().node_ids(), 3, 3,
                                   hdfs_placement_weights(sim.cluster()));
  sim.run(app);
  std::size_t gpu_runs = 0;
  for (const auto& m : sim.scheduler().completed()) gpu_runs += m.used_gpu;
  EXPECT_GT(gpu_runs, 0u);
}

TEST(RupamScheduler, MemoryStragglerRelocation) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.nodes = {thor_spec(), thor_spec()};
  cfg.nodes[0].name = "a";
  cfg.nodes[1].name = "b";
  cfg.rupam.memory_guard = false;  // let the node overfill, then relocate
  cfg.oom_grace = 30.0;            // pressure resolves slowly: RM acts first
  Simulation sim(cfg);
  std::vector<TaskSpec> tasks;
  for (TaskId i = 0; i < 10; ++i) {
    TaskSpec t = small_task(i, 60.0);
    t.peak_memory = 0.0;
    t.unmanaged_memory = 3.0 * kGiB;  // 5/node = 15 GiB > 14 GiB heap
    tasks.push_back(t);
  }
  Application app = one_stage_app(std::move(tasks));
  sim.run(app);
  EXPECT_EQ(sim.scheduler().completed().size(), 10u);
  // With two overfilled nodes, RM must have flagged memory stragglers.
  EXPECT_GT(sim.scheduler().relocations(), 0u);
}

TEST(RupamScheduler, FeaturetogglesAreHonored) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  cfg.rupam.memory_straggler = false;
  cfg.rupam.gpu_cpu_race = false;
  cfg.rupam.opt_executor_lock = false;
  Simulation sim(cfg);
  Application app = build_workload(workload_preset("PR"), sim.cluster().node_ids(), 3, 1,
                                   hdfs_placement_weights(sim.cluster()));
  sim.run(app);
  EXPECT_EQ(sim.scheduler().relocations(), 0u);
  EXPECT_EQ(sim.rupam_scheduler()->gpu_races(), 0u);
}

TEST(RupamScheduler, DbClearedBetweenFreshSimulations) {
  SimulationConfig cfg;
  cfg.scheduler = SchedulerKind::kRupam;
  Simulation a(cfg);
  EXPECT_EQ(a.rupam_scheduler()->db().size(), 0u);
  Application app = build_workload(workload_preset("PR"), a.cluster().node_ids(), 3, 1,
                                   hdfs_placement_weights(a.cluster()));
  a.run(app);
  EXPECT_GT(a.rupam_scheduler()->db().size(), 0u);
  Simulation b(cfg);
  EXPECT_EQ(b.rupam_scheduler()->db().size(), 0u);
}

}  // namespace
}  // namespace rupam
