#include <gtest/gtest.h>

#include "cluster/presets.hpp"
#include "metrics/breakdown.hpp"
#include "metrics/locality_counter.hpp"
#include "metrics/utilization_sampler.hpp"

namespace rupam {
namespace {

TaskMetrics metrics_with(Locality loc, bool failed = false) {
  TaskMetrics m;
  m.locality = loc;
  m.failed = failed;
  return m;
}

TEST(LocalityCounter, CountsSuccessesPerLevel) {
  std::vector<TaskMetrics> ms{
      metrics_with(Locality::kProcessLocal), metrics_with(Locality::kProcessLocal),
      metrics_with(Locality::kNodeLocal), metrics_with(Locality::kAny),
      metrics_with(Locality::kAny, /*failed=*/true),  // excluded
  };
  LocalityCounts counts = count_locality(ms);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(Breakdown, AggregatesCategories) {
  TaskMetrics a;
  a.gc_time = 1.0;
  a.compute_time = 10.0;
  a.scheduler_delay = 0.5;
  a.shuffle_disk_time = 2.0;
  a.shuffle_net_time = 3.0;
  TaskMetrics b = a;
  Breakdown sum = aggregate_breakdown({a, b});
  EXPECT_DOUBLE_EQ(sum.gc, 2.0);
  EXPECT_DOUBLE_EQ(sum.compute, 20.0);
  EXPECT_DOUBLE_EQ(sum.scheduler, 1.0);
  EXPECT_DOUBLE_EQ(sum.shuffle_disk, 4.0);
  EXPECT_DOUBLE_EQ(sum.shuffle_net, 6.0);
  EXPECT_DOUBLE_EQ(sum.total(), 33.0);
}

TEST(Breakdown, TaskBreakdownFig3Categories) {
  TaskMetrics m;
  m.task = 9;
  m.node = 2;
  m.compute_time = 10.0;
  m.serialization_time = 1.0;
  m.gc_time = 0.5;
  m.shuffle_read_time = 2.0;
  m.shuffle_write_time = 1.0;
  m.output_time = 0.5;
  m.scheduler_delay = 0.25;
  TaskBreakdown b = task_breakdown(m);
  EXPECT_EQ(b.task, 9);
  EXPECT_DOUBLE_EQ(b.serialization, 1.0);
  EXPECT_DOUBLE_EQ(b.compute, 9.5);  // compute - ser + gc
  EXPECT_DOUBLE_EQ(b.shuffle, 3.5);
  EXPECT_DOUBLE_EQ(b.scheduler_delay, 0.25);
}

TEST(UtilizationSampler, SamplesPeriodically) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId id = cluster.add_node(thor_spec());
  UtilizationSampler sampler(cluster, 1.0);
  sampler.start();
  cluster.node(id).cpu().start(1000.0, 1.0, nullptr);
  sim.run(10.5);
  sampler.stop();
  EXPECT_EQ(sampler.cpu_util(id).size(), 10u);
  EXPECT_GT(sampler.avg_cpu_util(), 0.0);
}

TEST(UtilizationSampler, NetRateMeasuresThroughput) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId id = cluster.add_node(thor_spec());
  UtilizationSampler sampler(cluster, 1.0);
  sampler.start();
  // Saturate the NIC for 5 seconds.
  cluster.node(id).net().start(5.0 * gbit_per_s(1.0), 1.0, nullptr);
  sim.run(10.5);
  sampler.stop();
  // Average over 10s ≈ half the NIC rate.
  EXPECT_NEAR(sampler.avg_net_rate() / gbit_per_s(1.0), 0.5, 0.05);
  EXPECT_NEAR(sampler.net_rate(id).max() / gbit_per_s(1.0), 1.0, 0.05);
}

TEST(UtilizationSampler, MemorySeriesTracksReporters) {
  Simulator sim;
  Cluster cluster(sim);
  NodeId id = cluster.add_node(thor_spec());
  Bytes used = 0.0;
  cluster.node(id).add_memory_reporter([&used] { return used; });
  UtilizationSampler sampler(cluster, 1.0);
  sampler.start();
  sim.schedule_at(5.0, [&] { used = 8.0 * kGiB; });
  sim.run(10.5);
  EXPECT_LT(sampler.memory_used(id).points().front().value, 2.0 * kGiB);
  EXPECT_GT(sampler.memory_used(id).points().back().value, 8.0 * kGiB);
}

TEST(UtilizationSampler, AlignedSeriesForBalanceFigure) {
  Simulator sim;
  Cluster cluster(sim);
  build_hydra(cluster);
  UtilizationSampler sampler(cluster, 1.0);
  sampler.start();
  sim.run(5.5);
  auto series = sampler.cpu_series(5.0);
  EXPECT_EQ(series.size(), 12u);
  auto sd = cross_series_stddev(series);
  EXPECT_EQ(sd.size(), series[0].size());
}

TEST(UtilizationSampler, BadArguments) {
  Simulator sim;
  Cluster cluster(sim);
  cluster.add_node(thor_spec());
  EXPECT_THROW(UtilizationSampler(cluster, 0.0), std::invalid_argument);
  UtilizationSampler sampler(cluster, 1.0);
  EXPECT_THROW(sampler.cpu_util(5), std::out_of_range);
}

}  // namespace
}  // namespace rupam
