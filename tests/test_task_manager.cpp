// Algorithm 1 (task characterization) and DB_task_char behaviour.
#include <gtest/gtest.h>

#include "sched/rupam/task_manager.hpp"

namespace rupam {
namespace {

struct Algo1Case {
  double compute, read, write;
  bool gpu;
  ResourceKind expected;
};

class Algorithm1Test : public ::testing::TestWithParam<Algo1Case> {};

TEST_P(Algorithm1Test, ClassifiesBottleneck) {
  TaskCharDb db;
  TaskManager tm(db, TaskManagerConfig{2.0, 1.0 * kGiB});
  const Algo1Case& c = GetParam();
  EXPECT_EQ(tm.bottleneck(c.compute, c.read, c.write, c.gpu), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRules, Algorithm1Test,
    ::testing::Values(
        // GPU dominates everything.
        Algo1Case{100.0, 1.0, 1.0, true, ResourceKind::kGpu},
        Algo1Case{0.0, 100.0, 0.0, true, ResourceKind::kGpu},
        // compute > Res_factor * max(read, write) -> CPU.
        Algo1Case{10.0, 4.0, 1.0, false, ResourceKind::kCpu},
        Algo1Case{10.0, 0.0, 0.0, false, ResourceKind::kCpu},
        // boundary: compute == 2*max -> NOT CPU (strict >).
        Algo1Case{8.0, 4.0, 0.0, false, ResourceKind::kNetwork},
        // read > Res_factor * write -> NET.
        Algo1Case{1.0, 10.0, 1.0, false, ResourceKind::kNetwork},
        // otherwise DISK.
        Algo1Case{1.0, 4.0, 4.0, false, ResourceKind::kDisk},
        Algo1Case{0.0, 0.0, 10.0, false, ResourceKind::kDisk},
        Algo1Case{0.0, 0.0, 0.0, false, ResourceKind::kDisk}));

TEST(TaskManager, ResFactorChangesSensitivity) {
  TaskCharDb db;
  TaskManager strict(db, TaskManagerConfig{4.0, 1.0 * kGiB});
  TaskManager loose(db, TaskManagerConfig{1.5, 1.0 * kGiB});
  // compute=10, read=4: 10 > 1.5*4 but not > 4*4.
  EXPECT_EQ(loose.bottleneck(10.0, 4.0, 0.0, false), ResourceKind::kCpu);
  EXPECT_EQ(strict.bottleneck(10.0, 4.0, 0.0, false), ResourceKind::kNetwork);
}

TEST(TaskManager, RejectsBadResFactor) {
  TaskCharDb db;
  EXPECT_THROW(TaskManager(db, TaskManagerConfig{0.0, 1.0}), std::invalid_argument);
}

TaskSpec spec_named(const std::string& stage_name, int partition, bool map) {
  TaskSpec t;
  t.stage_name = stage_name;
  t.partition = partition;
  t.is_shuffle_map = map;
  return t;
}

TEST(TaskManager, FirstTimeMapGoesToAllQueues) {
  TaskCharDb db;
  TaskManager tm(db);
  auto kinds = tm.classify(spec_named("map-stage", 0, true));
  EXPECT_EQ(kinds.size(), 4u);  // CPU, MEM, DISK, NET (not GPU)
}

TEST(TaskManager, FirstTimeReduceIsNetworkBound) {
  TaskCharDb db;
  TaskManager tm(db);
  auto kinds = tm.classify(spec_named("reduce-stage", 0, false));
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], ResourceKind::kNetwork);
}

TEST(TaskManager, KnownTaskClassifiedFromRecord) {
  TaskCharDb db;
  TaskManager tm(db);
  TaskMetrics m;
  m.compute_time = 100.0;
  m.shuffle_read_time = 1.0;
  m.shuffle_write_time = 1.0;
  db.update("stage", 0, m, ResourceKind::kCpu);
  auto kinds = tm.classify(spec_named("stage", 0, true));
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], ResourceKind::kCpu);
}

TEST(TaskManager, BigMemoryTasksAlsoJoinMemQueue) {
  TaskCharDb db;
  TaskManager tm(db, TaskManagerConfig{2.0, 1.0 * kGiB});
  TaskMetrics m;
  m.compute_time = 100.0;
  m.peak_memory = 3.0 * kGiB;
  db.update("stage", 0, m, ResourceKind::kCpu);
  auto kinds = tm.classify(spec_named("stage", 0, true));
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[1], ResourceKind::kMemory);
}

TEST(TaskManager, GpuStageMarkingPropagatesToSiblings) {
  TaskCharDb db;
  TaskManager tm(db);
  TaskSpec t = spec_named("gpu-stage", 0, true);
  TaskMetrics m;
  m.used_gpu = true;
  m.compute_time = 5.0;
  tm.record_completion(t, m);
  // A *different* partition of the same stage is now GPU-classified
  // ("marks all the tasks in the same stage to be GPU tasks").
  auto kinds = tm.classify(spec_named("gpu-stage", 17, true));
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], ResourceKind::kGpu);
}

TEST(TaskManager, QueuesEnqueueAndClear) {
  TaskCharDb db;
  TaskManager tm(db);
  tm.enqueue(spec_named("m", 0, true), 1, 0);
  EXPECT_EQ(tm.active(ResourceKind::kCpu).size(), 1u);
  EXPECT_EQ(tm.active(ResourceKind::kNetwork).size(), 1u);
  EXPECT_EQ(tm.active(ResourceKind::kGpu).size(), 0u);
  tm.clear_queues();
  EXPECT_EQ(tm.active(ResourceKind::kCpu).size(), 0u);
}

TEST(TaskManager, ParkAndRestorePreservesQueuePosition) {
  TaskCharDb db;
  TaskManager tm(db);
  tm.enqueue(spec_named("m", 0, true), 1, 0);
  tm.enqueue(spec_named("m", 1, true), 1, 1);
  tm.enqueue(spec_named("m", 2, true), 1, 2);
  ASSERT_EQ(tm.active(ResourceKind::kCpu).size(), 3u);

  // Launch the head task: its refs park in every queue they occupy.
  tm.note_launched(1, 0);
  EXPECT_EQ(tm.active(ResourceKind::kCpu).size(), 2u);
  EXPECT_EQ(tm.parked(ResourceKind::kCpu).size(), 1u);
  EXPECT_EQ(tm.parked(ResourceKind::kNetwork).size(), 1u);

  // A failure restores the refs at their original (front) position.
  tm.note_pending_again(1, 0);
  ASSERT_EQ(tm.active(ResourceKind::kCpu).size(), 3u);
  EXPECT_EQ(tm.parked(ResourceKind::kCpu).size(), 0u);
  EXPECT_EQ(tm.active(ResourceKind::kCpu).begin()->second.task_index, 0u);

  // Finishing drops every ref, parked or active.
  tm.note_launched(1, 1);
  tm.note_finished(1, 1);
  tm.note_finished(1, 0);
  EXPECT_EQ(tm.active(ResourceKind::kCpu).size(), 1u);
  EXPECT_EQ(tm.parked(ResourceKind::kCpu).size(), 0u);
  EXPECT_EQ(tm.active(ResourceKind::kCpu).begin()->second.task_index, 2u);
}

TEST(TaskCharDb, LookupMissReturnsNull) {
  TaskCharDb db;
  EXPECT_EQ(db.lookup("x", 0), nullptr);
}

TEST(TaskCharDb, UpdateSmoothsAndTracksBest) {
  TaskCharDb db;
  TaskMetrics m1;
  m1.compute_time = 10.0;
  m1.node = 3;
  m1.launch_time = 0.0;
  m1.finish_time = 20.0;
  db.update("s", 0, m1, ResourceKind::kCpu);
  const TaskCharRecord* rec = db.lookup("s", 0);
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(rec->compute_time, 10.0);
  EXPECT_EQ(rec->opt_executor, 3);
  EXPECT_DOUBLE_EQ(rec->best_runtime, 20.0);

  TaskMetrics m2;
  m2.compute_time = 20.0;
  m2.node = 5;
  m2.launch_time = 0.0;
  m2.finish_time = 8.0;  // faster -> becomes opt executor
  db.update("s", 0, m2, ResourceKind::kNetwork);
  rec = db.lookup("s", 0);
  EXPECT_DOUBLE_EQ(rec->compute_time, 15.0);  // alpha = 0.5 smoothing
  EXPECT_EQ(rec->opt_executor, 5);
  EXPECT_EQ(rec->runs, 2);
  EXPECT_EQ(rec->history_resources.size(), 2u);
}

TEST(TaskCharDb, SlowerRunDoesNotStealOptExecutor) {
  TaskCharDb db;
  TaskMetrics fast;
  fast.node = 1;
  fast.finish_time = 5.0;
  db.update("s", 0, fast, ResourceKind::kCpu);
  TaskMetrics slow;
  slow.node = 2;
  slow.finish_time = 50.0;
  db.update("s", 0, slow, ResourceKind::kCpu);
  EXPECT_EQ(db.lookup("s", 0)->opt_executor, 1);
}

TEST(TaskCharDb, ClearForgets) {
  TaskCharDb db;
  TaskMetrics m;
  db.update("s", 0, m, ResourceKind::kCpu);
  db.mark_stage_gpu("s");
  EXPECT_EQ(db.size(), 1u);
  db.clear();
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.lookup("s", 0), nullptr);
  EXPECT_FALSE(db.stage_uses_gpu("s"));
}

TEST(TaskCharDb, PartitionsAreIndependent) {
  TaskCharDb db;
  TaskMetrics m;
  db.update("s", 0, m, ResourceKind::kCpu);
  EXPECT_EQ(db.lookup("s", 1), nullptr);
  EXPECT_EQ(db.lookup("t", 0), nullptr);
}

}  // namespace
}  // namespace rupam
